package toposense

import (
	"strings"
	"testing"
)

func TestScenarioQuickstartConverges(t *testing.T) {
	sc := NewScenario(42)
	src := sc.AddNode("source")
	rtr := sc.AddNode("router")
	rxNode := sc.AddNode("receiver")
	sc.Connect(src, rtr, 100e6)
	sc.Connect(rtr, rxNode, 500e3)
	sc.Source(src)
	sc.MustController(src)
	rx := sc.MustReceiver(rxNode)
	sc.MustRun(120 * Second)
	if got := rx.Level(); got < 3 || got > 5 {
		t.Fatalf("level = %d, want ~4 for a 500 Kbps bottleneck", got)
	}
	if !strings.Contains(sc.String(), "3 nodes") {
		t.Errorf("String = %q", sc.String())
	}
	// Run is resumable.
	if err := sc.Run(180 * Second); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if sc.Engine().Now() != 180*Second {
		t.Errorf("Now = %v", sc.Engine().Now())
	}
}

func TestScenarioMultiSession(t *testing.T) {
	sc := NewScenario(7)
	x := sc.AddNode("X")
	y := sc.AddNode("Y")
	sc.Connect(x, y, 1e6) // two sessions x ~4 layers
	var rxs []*Receiver
	for i := 0; i < 2; i++ {
		srcNode := sc.AddNode("src")
		sc.Connect(srcNode, x, 100e6)
		sc.SourceWith(srcNode, SourceConfig{Session: i})
	}
	if _, err := sc.Controller(sc.Network().Nodes()[2]); err != nil { // first source node
		t.Fatalf("Controller: %v", err)
	}
	for i := 0; i < 2; i++ {
		rxNode := sc.AddNode("rx")
		sc.Connect(y, rxNode, 100e6)
		rx, err := sc.ReceiverWith(rxNode, ReceiverConfig{Session: i})
		if err != nil {
			t.Fatalf("ReceiverWith(%d): %v", i, err)
		}
		rxs = append(rxs, rx)
	}
	if err := sc.Run(240 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, rx := range rxs {
		if got := rx.Level(); got < 2 || got > 5 {
			t.Errorf("session %d level = %d", i, got)
		}
	}
}

// TestScenarioErrors pins the builder's misassembly errors: each returns an
// error (not a panic), and the Must* wrappers convert it into a panic.
func TestScenarioErrors(t *testing.T) {
	t.Run("receiver before controller", func(t *testing.T) {
		sc := NewScenario(1)
		n := sc.AddNode("n")
		if _, err := sc.Receiver(n); err == nil {
			t.Fatal("expected error")
		} else if !strings.Contains(err.Error(), "Controller before receivers") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("double controller", func(t *testing.T) {
		sc := NewScenario(1)
		n := sc.AddNode("n")
		sc.Source(n)
		if _, err := sc.Controller(n); err != nil {
			t.Fatalf("first controller: %v", err)
		}
		if _, err := sc.Controller(n); err == nil {
			t.Fatal("expected error")
		} else if !strings.Contains(err.Error(), "already has a controller") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("run without controller", func(t *testing.T) {
		sc := NewScenario(1)
		if err := sc.Run(Second); err == nil {
			t.Fatal("expected error")
		} else if !strings.Contains(err.Error(), "no controller") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("must wrappers panic", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		sc := NewScenario(1)
		n := sc.AddNode("n")
		sc.MustReceiver(n) // no controller yet
	})
	t.Run("must run panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewScenario(1).MustRun(Second)
	})
}

func TestDefaultLayerRates(t *testing.T) {
	r := DefaultLayerRates()
	if len(r) != 6 || r[0] != 32e3 || r[5] != 1024e3 {
		t.Errorf("DefaultLayerRates = %v", r)
	}
}

func TestScenarioAccessors(t *testing.T) {
	sc := NewScenario(1)
	if sc.Engine() == nil || sc.Network() == nil || sc.Domain() == nil {
		t.Fatal("nil accessors")
	}
	a := sc.AddNode("a")
	b := sc.AddNode("b")
	sc.ConnectWith(a, b, LinkConfig{Bandwidth: 1e6, Delay: Millisecond})
	if a.LinkTo(b.ID) == nil {
		t.Error("ConnectWith did not link")
	}
}
