// Package toposense's root benchmarks regenerate (at reduced scale) every
// table and figure of the paper's evaluation, one benchmark per exhibit.
// Each iteration runs a complete simulation; custom metrics expose the
// quantities the paper plots so `go test -bench . -benchmem` doubles as a
// reproduction smoke test:
//
//	maxchg     — maximum subscription changes by any receiver (Figs 6, 7)
//	meanbetw_s — mean seconds between the busiest receiver's changes
//	dev1, dev2 — mean relative deviation from optimal per half (Fig 8)
//	oversub%%  — samples spent over-subscribed at layers 5-6 (Fig 9)
//	dev0, dev8 — deviation with fresh vs 8-second-old topology (Fig 10)
//
// Full paper-scale sweeps: go run ./cmd/topobench
package toposense

import (
	"fmt"
	"testing"

	"toposense/internal/core"
	"toposense/internal/experiments"
	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// benchDuration keeps a single simulation around a quarter of the paper's
// 1200 s so the whole suite stays interactive.
const benchDuration = 300 * sim.Second

// BenchmarkFig6Stability: Topology A, stability of the busiest receiver.
func BenchmarkFig6Stability(b *testing.B) {
	var lastMax, lastBetween float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig6(experiments.Fig6Config{
			Seed:     int64(i + 1),
			Duration: benchDuration,
			PerSet:   []int{2},
			Traffic:  []experiments.Traffic{experiments.CBR},
		})
		lastMax = float64(rows[0].MaxChanges)
		lastBetween = rows[0].MeanBetween.Seconds()
	}
	b.ReportMetric(lastMax, "maxchg")
	b.ReportMetric(lastBetween, "meanbetw_s")
}

// BenchmarkFig7Stability: Topology B, stability of the busiest session.
func BenchmarkFig7Stability(b *testing.B) {
	var lastMax, lastBetween float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig7(experiments.Fig7Config{
			Seed:     int64(i + 1),
			Duration: benchDuration,
			Sessions: []int{4},
			Traffic:  []experiments.Traffic{experiments.VBR3},
		})
		lastMax = float64(rows[0].MaxChanges)
		lastBetween = rows[0].MeanBetween.Seconds()
	}
	b.ReportMetric(lastMax, "maxchg")
	b.ReportMetric(lastBetween, "meanbetw_s")
}

// BenchmarkFig8Fairness: Topology B inter-session fairness, both halves.
func BenchmarkFig8Fairness(b *testing.B) {
	var d1, d2 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig8(experiments.Fig8Config{
			Seed:     int64(i + 1),
			Duration: benchDuration,
			Sessions: []int{4},
			Traffic:  []experiments.Traffic{experiments.CBR},
		})
		d1, d2 = rows[0].DevFirst, rows[0].DevSecond
	}
	b.ReportMetric(d1, "dev1")
	b.ReportMetric(d2, "dev2")
}

// BenchmarkFig9Trace: 4 competing VBR sessions, over-subscription episodes.
func BenchmarkFig9Trace(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig9(experiments.Fig9Config{
			Seed:     int64(i + 1),
			Duration: benchDuration,
		})
		count, total := 0, 0
		for _, lv := range res.Levels {
			for j := 0; j < lv.Len(); j++ {
				_, v := lv.At(j)
				total++
				if v >= 5 {
					count++
				}
			}
		}
		if total > 0 {
			over = 100 * float64(count) / float64(total)
		}
	}
	b.ReportMetric(over, "oversub%")
}

// BenchmarkFig10Staleness: deviation with fresh vs 8-second-old topology.
func BenchmarkFig10Staleness(b *testing.B) {
	var fresh, stale float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig10(experiments.Fig10Config{
			Seed:      int64(i + 1),
			Duration:  benchDuration,
			PerSet:    []int{2},
			Staleness: []sim.Time{0, 8 * sim.Second},
		})
		fresh, stale = rows[0].Deviation, rows[1].Deviation
	}
	b.ReportMetric(fresh, "dev0")
	b.ReportMetric(stale, "dev8")
}

// BenchmarkBaselineRLM: TopoSense vs the receiver-driven baseline.
func BenchmarkBaselineRLM(b *testing.B) {
	var ts, rlm float64
	for i := 0; i < b.N; i++ {
		rows := experiments.RunBaseline(experiments.BaselineConfig{
			Seed:     int64(i + 1),
			Duration: benchDuration,
			PerSet:   2,
			Sessions: 2,
		})
		for _, r := range rows {
			if r.Algo == "TopoSense" {
				ts = r.Deviation
			} else {
				rlm = r.Deviation
			}
		}
	}
	b.ReportMetric(ts, "dev_toposense")
	b.ReportMetric(rlm, "dev_rlm")
}

// BenchmarkTableI measures the Table-I decision-table lookups themselves —
// the per-node cost at the heart of every controller interval.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	sink := core.ActMaintain
	for i := 0; i < b.N; i++ {
		hist := uint8(i) & 7
		rel := core.BWRel(i % 3)
		sink = core.LeafAction(hist, rel)
		sink = core.InternalAction(hist, rel)
	}
	_ = sink
}

// BenchmarkAlgorithmStep measures one full five-stage TopoSense interval on
// a 16-session Topology-B-shaped input, isolated from the packet simulator.
func BenchmarkAlgorithmStep(b *testing.B) {
	cfg := core.NewConfig([]float64{32e3, 64e3, 128e3, 256e3, 512e3, 1024e3})
	alg := core.New(cfg, nil)
	const sessions = 16
	var topos []*core.Topology
	var reports []core.ReceiverState
	for s := 0; s < sessions; s++ {
		src := core.NodeID(100 + s)
		rx := core.NodeID(200 + s)
		topos = append(topos, &core.Topology{
			Session: s, Root: src,
			Parent:    map[core.NodeID]core.NodeID{0: src, 1: 0, rx: 1},
			Children:  map[core.NodeID][]core.NodeID{src: {0}, 0: {1}, 1: {rx}},
			Receivers: map[core.NodeID]bool{rx: true},
		})
		reports = append(reports, core.ReceiverState{
			Node: rx, Session: s, Level: 4, LossRate: 0.08, Bytes: 240_000,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i+1) * cfg.Interval
		alg.Step(core.Input{Now: now, Topologies: topos, Reports: reports})
	}
}

// BenchmarkSimulation measures raw simulator throughput: packet events per
// second on a loaded Topology B, the substrate cost under every experiment.
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := experiments.NewWorldB(4, experiments.WorldConfig{Seed: int64(i + 1), Traffic: experiments.CBR})
		w.Run(30 * sim.Second)
		if i == 0 {
			b.ReportMetric(float64(w.Engine.Fired()), "events/run")
		}
	}
}

// BenchmarkMetricReduction measures the deviation-metric reduction over a
// long subscription trace.
func BenchmarkMetricReduction(b *testing.B) {
	tr := metrics.NewTrace(0, 1)
	for t := sim.Time(1); t < 10_000; t++ {
		tr.Set(t*sim.Second, int(t)%6+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RelativeDeviation(4, 0, 10_000*sim.Second)
	}
}

// BenchmarkAblation quantifies each design decision's contribution on the
// standard Topology-B VBR scenario (see DESIGN.md for the inventory).
func BenchmarkAblation(b *testing.B) {
	varDev := map[string]float64{}
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAblation(experiments.AblationConfig{
			Seed:     int64(i + 1),
			Duration: benchDuration,
			Sessions: 2,
		})
		for _, r := range rows {
			varDev[r.Variant] = r.Deviation
		}
	}
	b.ReportMetric(varDev["full"], "dev_full")
	b.ReportMetric(varDev["pin-any-link"], "dev_pin_any")
	b.ReportMetric(varDev["no-backoff"], "dev_no_backoff")
}

// BenchmarkAlgorithmStepScale measures the controller's per-interval cost
// as session count grows — the computational side of the scalability story
// (the architectural side is domain partitioning, cmd/topobench -fig
// domains).
func BenchmarkAlgorithmStepScale(b *testing.B) {
	for _, sessions := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("sessions-%d", sessions), func(b *testing.B) {
			cfg := core.NewConfig([]float64{32e3, 64e3, 128e3, 256e3, 512e3, 1024e3})
			alg := core.New(cfg, nil)
			var topos []*core.Topology
			var reports []core.ReceiverState
			for s := 0; s < sessions; s++ {
				src := core.NodeID(10_000 + s)
				rx := core.NodeID(20_000 + s)
				topos = append(topos, &core.Topology{
					Session: s, Root: src,
					Parent:    map[core.NodeID]core.NodeID{0: src, 1: 0, rx: 1},
					Children:  map[core.NodeID][]core.NodeID{src: {0}, 0: {1}, 1: {rx}},
					Receivers: map[core.NodeID]bool{rx: true},
				})
				reports = append(reports, core.ReceiverState{
					Node: rx, Session: s, Level: 4, LossRate: 0.08, Bytes: 240_000,
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alg.Step(core.Input{Now: sim.Time(i+1) * cfg.Interval, Topologies: topos, Reports: reports})
			}
		})
	}
}

// BenchmarkMulticastForwarding measures raw packet replication through the
// multicast layer on a 32-receiver tree.
func BenchmarkMulticastForwarding(b *testing.B) {
	w := experiments.NewWorldA(16, experiments.WorldConfig{Seed: 1, Traffic: experiments.CBR})
	w.Run(30 * sim.Second) // receivers joined and climbing
	before := w.Engine.Fired()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(w.Engine.Now() + sim.Second)
	}
	b.StopTimer()
	b.ReportMetric(float64(w.Engine.Fired()-before)/float64(b.N), "events/simsec")
}
