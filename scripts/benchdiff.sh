#!/bin/sh
# benchdiff.sh - capture and compare hot-path microbenchmark runs.
#
# Usage:
#   scripts/benchdiff.sh capture NAME        run bench-micro, save to bench/NAME.txt
#   scripts/benchdiff.sh compare OLD NEW     diff two captures
#   scripts/benchdiff.sh obs-gate            fail if any obs benchmark allocates
#   scripts/benchdiff.sh fanin-gate          fail if an aggregation hot path allocates
#
# Capture before and after a change, then compare:
#   scripts/benchdiff.sh capture base
#   ... hack hack ...
#   scripts/benchdiff.sh capture mine
#   scripts/benchdiff.sh compare base mine
#
# Comparison uses benchstat when it is installed (go install
# golang.org/x/perf/cmd/benchstat@latest); otherwise it falls back to a
# plain side-by-side diff of the benchmark lines, which is enough to
# eyeball ns/op and allocs/op movement.
set -eu

cd "$(dirname "$0")/.."
BENCH_DIR=${BENCH_DIR:-bench}
COUNT=${COUNT:-5}

usage() {
	sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
	exit 2
}

[ $# -ge 1 ] || usage
cmd=$1
shift

case "$cmd" in
capture)
	[ $# -eq 1 ] || usage
	mkdir -p "$BENCH_DIR"
	out="$BENCH_DIR/$1.txt"
	echo "capturing $COUNT samples per benchmark to $out" >&2
	make --no-print-directory bench-micro COUNT="$COUNT" | tee "$out"
	;;
compare)
	[ $# -eq 2 ] || usage
	old="$BENCH_DIR/$1.txt"
	new="$BENCH_DIR/$2.txt"
	for f in "$old" "$new"; do
		[ -f "$f" ] || { echo "missing capture $f (run: $0 capture <name>)" >&2; exit 1; }
	done
	if command -v benchstat >/dev/null 2>&1; then
		benchstat "$old" "$new"
	else
		echo "benchstat not installed; falling back to raw line diff." >&2
		echo "(go install golang.org/x/perf/cmd/benchstat@latest for stats)" >&2
		echo "--- $old"
		grep '^Benchmark' "$old" || true
		echo "+++ $new"
		grep '^Benchmark' "$new" || true
	fi
	;;
obs-gate)
	# The observability layer promises zero allocations on every hot-path
	# instrument, enabled or disabled, and zero overhead beyond one pointer
	# comparison when off. Run its benchmarks with -benchmem and fail on
	# any non-zero allocs/op.
	[ $# -eq 0 ] || usage
	out=$(go test -run '^$' -bench . -benchmem -benchtime 1000x ./internal/obs)
	echo "$out"
	bad=$(echo "$out" | awk '/^Benchmark/ && $(NF-1) + 0 > 0 { print "  " $1 ": " $(NF-1) " allocs/op" }')
	if [ -n "$bad" ]; then
		echo "obs-gate FAILED: observability benchmarks allocated:" >&2
		echo "$bad" >&2
		exit 1
	fi
	echo "obs-gate OK: every observability benchmark at 0 allocs/op" >&2
	;;
fanin-gate)
	# The in-network aggregation layer promises zero allocations on its
	# steady-state hot paths: folding a loss report into an aggregate,
	# merging a child aggregate, and the controller's batched suggestion
	# fan-out. Run those benchmarks with -benchmem and fail on any
	# non-zero allocs/op.
	[ $# -eq 0 ] || usage
	out=$(go test -run '^$' -bench 'BenchmarkAggregate|BenchmarkSuggestionFanout' \
		-benchmem -benchtime 1000x ./internal/report ./internal/controller)
	echo "$out"
	bad=$(echo "$out" | awk '/^Benchmark/ && $(NF-1) + 0 > 0 { print "  " $1 ": " $(NF-1) " allocs/op" }')
	if [ -n "$bad" ]; then
		echo "fanin-gate FAILED: aggregation hot-path benchmarks allocated:" >&2
		echo "$bad" >&2
		exit 1
	fi
	echo "fanin-gate OK: every aggregation hot-path benchmark at 0 allocs/op" >&2
	;;
*)
	usage
	;;
esac
