#!/bin/sh
# benchdiff.sh - capture and compare hot-path microbenchmark runs.
#
# Usage:
#   scripts/benchdiff.sh capture NAME        run bench-micro, save to bench/NAME.txt
#   scripts/benchdiff.sh compare OLD NEW     diff two captures
#
# Capture before and after a change, then compare:
#   scripts/benchdiff.sh capture base
#   ... hack hack ...
#   scripts/benchdiff.sh capture mine
#   scripts/benchdiff.sh compare base mine
#
# Comparison uses benchstat when it is installed (go install
# golang.org/x/perf/cmd/benchstat@latest); otherwise it falls back to a
# plain side-by-side diff of the benchmark lines, which is enough to
# eyeball ns/op and allocs/op movement.
set -eu

cd "$(dirname "$0")/.."
BENCH_DIR=${BENCH_DIR:-bench}
COUNT=${COUNT:-5}

usage() {
	sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
	exit 2
}

[ $# -ge 1 ] || usage
cmd=$1
shift

case "$cmd" in
capture)
	[ $# -eq 1 ] || usage
	mkdir -p "$BENCH_DIR"
	out="$BENCH_DIR/$1.txt"
	echo "capturing $COUNT samples per benchmark to $out" >&2
	make --no-print-directory bench-micro COUNT="$COUNT" | tee "$out"
	;;
compare)
	[ $# -eq 2 ] || usage
	old="$BENCH_DIR/$1.txt"
	new="$BENCH_DIR/$2.txt"
	for f in "$old" "$new"; do
		[ -f "$f" ] || { echo "missing capture $f (run: $0 capture <name>)" >&2; exit 1; }
	done
	if command -v benchstat >/dev/null 2>&1; then
		benchstat "$old" "$new"
	else
		echo "benchstat not installed; falling back to raw line diff." >&2
		echo "(go install golang.org/x/perf/cmd/benchstat@latest for stats)" >&2
		echo "--- $old"
		grep '^Benchmark' "$old" || true
		echo "+++ $new"
		grep '^Benchmark' "$new" || true
	fi
	;;
*)
	usage
	;;
esac
