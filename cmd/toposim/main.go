// Command toposim runs a single TopoSense simulation scenario and reports
// per-receiver outcomes: final subscription level, optimal level, relative
// deviation, change count and loss summary. Useful for exploring parameter
// choices interactively.
//
// The run executes as one experiments.Spec, so it gets the same panic
// containment and run metadata (wall time, events, packets) as the
// topobench sweeps, and -json writes the same BENCH_*.json schema.
//
// Usage:
//
//	toposim -topology A -receivers 4 -traffic vbr3 -duration 600
//	toposim -topology B -sessions 8 -staleness 6
//	toposim -topology B -failat 200 -outage 60   # cut the bottleneck mid-run
//	toposim -topology tiered -seed 3
//	toposim -topo tree,depth=3,branch=8,rxleaf=2 -duration 30   # generated large topology
//	toposim -topo tree,depth=4,branch=10,rxleaf=10 -shards 4    # sharded engine, 4 workers
//	toposim -topo tree,depth=3,branch=8,rxleaf=2 -aggregate     # in-network report aggregation
//	toposim -topo list                           # list registered generators and keys
//	toposim -topology B -sessions 4 -algo rlm    # RLM baseline instead
//	toposim -topology A -json BENCH_simA.json    # machine-readable result
//	toposim -topology B -obs OBS_sim.json        # observability export (.json or .csv)
//	toposim -topology B -flightrec               # dump the flight recorder after the run
//	toposim -topology B -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"toposense/internal/churn"
	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/experiments"
	"toposense/internal/faults"
	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/prof"
	"toposense/internal/receiver"
	"toposense/internal/rlm"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topology"
	"toposense/internal/trace"
)

// receiverRow is one receiver's outcome — the typed rows the run's Result
// carries (and -json exports).
type receiverRow struct {
	Receiver  string  `json:"receiver"`
	Level     int     `json:"final_level"`
	Optimal   int     `json:"optimal"`
	Deviation float64 `json:"rel_deviation"`
	Changes   int     `json:"changes"`
}

// simResult is the run's full payload: per-receiver rows plus the headline.
type simResult struct {
	Rows    []receiverRow `json:"rows"`
	MeanDev float64       `json:"mean_rel_deviation"`
}

func main() {
	topo := flag.String("topology", "A", "A, B or tiered")
	topoSpec := flag.String("topo", "", "topology generator spec name[,key=val,...] resolved against the registry ("+strings.Join(topology.Names(), ", ")+"); overrides -topology; \"list\" prints every generator and its keys")
	receivers := flag.Int("receivers", 2, "topology A: receivers per set; tiered: receivers per leaf")
	sessions := flag.Int("sessions", 4, "topology B: number of competing sessions")
	traffic := flag.String("traffic", "cbr", "cbr, vbr3 or vbr6")
	duration := flag.Float64("duration", 1200, "simulated seconds")
	staleness := flag.Float64("staleness", 0, "topology information staleness in seconds")
	failAt := flag.Float64("failat", 0, "cut the topology's bottleneck link at this simulated second (0 = no failure)")
	outage := flag.Float64("outage", 60, "with -failat: seconds until the link is repaired")
	churnPeriod := flag.Float64("churn", 0, "Poisson membership churn: every receiver alternates joined/departed with this mean period in simulated seconds (0 = no churn)")
	seed := flag.Int64("seed", 1, "simulation seed")
	shards := flag.Int("shards", 0, "engine workers: 0 = single-threaded engine, N >= 1 = sharded engine with N workers")
	aggregate := flag.Bool("aggregate", false, "install the in-network feedback aggregation layer (toposense only)")
	federate := flag.Bool("federate", false, "run the hierarchical control plane: per-domain leaf controllers under a federation parent (toposense only; needs a domain-labelled topology)")
	algo := flag.String("algo", "toposense", "toposense or rlm")
	probe := flag.Bool("probe", false, "use mtrace-style probe-based topology discovery")
	billing := flag.Bool("billing", false, "print the controller's billing ledger (toposense only)")
	tsvDir := flag.String("tsv", "", "directory to write per-receiver level/loss time series as TSV")
	explain := flag.Bool("explain", false, "print the algorithm's per-node decisions for the final interval")
	jsonPath := flag.String("json", "", "write the result + run metadata to this file (e.g. BENCH_sim.json)")
	obsPath := flag.String("obs", "", "enable observability and write its export to this file (.json or .csv)")
	flightrec := flag.Bool("flightrec", false, "enable observability and dump the flight recorder to stderr after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var tr experiments.Traffic
	switch strings.ToLower(*traffic) {
	case "cbr":
		tr = experiments.CBR
	case "vbr3":
		tr = experiments.VBR3
	case "vbr6":
		tr = experiments.VBR6
	default:
		fmt.Fprintf(os.Stderr, "unknown traffic %q\n", *traffic)
		os.Exit(2)
	}
	if *topoSpec == "list" {
		fmt.Print(topology.Usage())
		return
	}
	var topoCfg topology.Config
	topoName := strings.ToUpper(*topo)
	if *topoSpec != "" {
		var err error
		if _, topoCfg, err = topology.Parse(*topoSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		topoName = *topoSpec
	} else {
		switch topoName {
		case "A", "B", "TIERED":
		default:
			fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
			os.Exit(2)
		}
	}
	algoName := strings.ToLower(*algo)
	switch algoName {
	case "toposense", "rlm":
	default:
		fmt.Fprintf(os.Stderr, "unknown algo %q\n", *algo)
		os.Exit(2)
	}
	if *failAt > 0 && *outage <= 0 {
		fmt.Fprintln(os.Stderr, "-outage must be positive when -failat is set")
		os.Exit(2)
	}
	if err := experiments.ValidateEngineFlags(*shards, *failAt, *aggregate, *federate, *churnPeriod); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *aggregate && algoName != "toposense" {
		fmt.Fprintln(os.Stderr, "-aggregate: the aggregation layer serves the toposense controller; it has no meaning under -algo rlm")
		os.Exit(2)
	}
	if *federate && algoName != "toposense" {
		fmt.Fprintln(os.Stderr, "-federate: the hierarchical control plane federates toposense controllers; it has no meaning under -algo rlm")
		os.Exit(2)
	}
	if *federate && (*billing || *explain) {
		fmt.Fprintln(os.Stderr, "-federate: -billing and -explain read the single flat controller; drop them to run federated")
		os.Exit(2)
	}
	obsExt := strings.ToLower(filepath.Ext(*obsPath))
	if *obsPath != "" && obsExt != ".json" && obsExt != ".csv" {
		fmt.Fprintf(os.Stderr, "-obs %q: extension must be .json or .csv\n", *obsPath)
		os.Exit(2)
	}

	cfg := experiments.WorldConfig{
		Seed:           *seed,
		Traffic:        tr,
		Staleness:      sim.FromSeconds(*staleness),
		ProbeDiscovery: *probe,
		Aggregate:      *aggregate,
	}
	dur := sim.FromSeconds(*duration)

	// The flight recorder lives inside the run's obs bundle; capture it from
	// the body so -flightrec can dump it after Execute returns.
	var runObs *obs.Obs
	runName := fmt.Sprintf("toposim/topo=%s/%s/%s", topoName, tr.Name, algoName)
	if *federate {
		runName += "/fed"
	}
	spec := experiments.NewSpec("toposim", runName,
		*seed, dur,
		func(m *experiments.Meter) (any, error) {
			e := experiments.NewRunEngine(*seed, *shards)
			var b *topology.Build
			if topoCfg != nil {
				var err error
				if b, err = topology.Generate(e, topoCfg); err != nil {
					return nil, err
				}
			} else {
				switch topoName {
				case "A":
					b = topology.MustGenerate(e, &topology.AConfig{ReceiversPerSet: *receivers})
				case "B":
					b = topology.MustGenerate(e, &topology.BConfig{Sessions: *sessions})
				case "TIERED":
					b = topology.MustGenerate(e, &topology.TieredConfig{
						Seed:             *seed,
						FanOut:           []int{2, 3},
						Bandwidth:        []float64{10e6, 600e3},
						ReceiversPerLeaf: *receivers,
					})
				}
			}
			m.Observe(e, b.Net)
			runObs = m.Obs()

			var inj *faults.Injector
			if *failAt > 0 {
				if len(b.Bottlenecks) == 0 {
					return nil, fmt.Errorf("topology %s exposes no bottleneck link to fail", topoName)
				}
				inj = faults.New(b.Net)
				links := []*netsim.Link{b.Bottlenecks[0]}
				if rev := b.Bottlenecks[0].Reverse(); rev != nil {
					links = append(links, rev)
				}
				inj.Outage(sim.FromSeconds(*failAt), sim.FromSeconds(*outage), links...)
			}

			var traces []*metrics.Trace
			var optima []int
			var levels []int
			var names []string
			var sampler *trace.Sampler
			if algoName == "toposense" && *federate {
				w, err := experiments.NewFedWorld(e, b, cfg)
				if err != nil {
					return nil, err
				}
				w.Domain.SetObs(m.Obs())
				for _, l := range w.Leaves {
					l.Controller().SetObs(m.Obs())
				}
				w.Parent.SetObs(m.Obs())
				if *tsvDir != "" {
					sampler = trace.NewSampler(e, 500*sim.Millisecond)
					for s := range w.Receivers {
						for _, rx := range w.Receivers[s] {
							rx := rx
							name := fmt.Sprintf("s%d-%s", s, rx.Node().Name)
							sampler.Probe(name+".level", func() float64 { return float64(rx.Level()) })
							sampler.Probe(name+".loss", func() float64 { return rx.LastLoss })
						}
					}
					sampler.Start()
				}
				w.Run(dur)
				traces, optima = w.AllTraces()
				for s := range w.Receivers {
					for _, rx := range w.Receivers[s] {
						levels = append(levels, rx.Level())
						names = append(names, fmt.Sprintf("s%d/%s", s, rx.Node().Name))
					}
				}
				fmt.Printf("federation: %d domains, %d exports received, %d reconcile passes, %d budget changes\n",
					len(w.Leaves), w.Parent.ExportsRecv, w.Parent.Reconciles, w.Parent.BudgetChanges)
				for _, l := range w.Leaves {
					ctrl := l.Controller()
					changes, last := w.Parent.ChangesFor(l.Domain)
					fmt.Printf("  domain %d: ceiling %d, %d exports sent, %d budget entries (last change %.0f s), %d suggestions capped, %d steps\n",
						l.Domain, w.Parent.Ceiling(l.Domain), l.ExportsSent, changes, last.Seconds(), ctrl.SuggestionsCapped, ctrl.StepsRun)
				}
			} else if algoName == "toposense" {
				w := experiments.NewWorld(e, b, cfg)
				// m.Observe already attached the packet probe; wire the
				// control-plane components by hand (SetObs(nil) is a no-op).
				w.Domain.SetObs(m.Obs())
				w.Controller.SetObs(m.Obs())
				if *billing {
					w.Controller.EnableBilling()
				}
				if *explain {
					w.Controller.Algorithm().EnableExplain()
				}
				if *tsvDir != "" {
					sampler = trace.NewSampler(e, 500*sim.Millisecond)
					for s := range w.Receivers {
						for _, rx := range w.Receivers[s] {
							rx := rx
							name := fmt.Sprintf("s%d-%s", s, rx.Node().Name)
							sampler.Probe(name+".level", func() float64 { return float64(rx.Level()) })
							sampler.Probe(name+".loss", func() float64 { return rx.LastLoss })
						}
					}
					sampler.Start()
				}
				// Membership churn: every receiver alternates between joined
				// and departed. A departure is the full lifecycle (leave all
				// layer groups, deregister with the controller); a rejoin is a
				// fresh incarnation that registers from scratch. cur tracks
				// the live incarnation per slot; its OnChange feeds the same
				// trace as the original, so deviations reflect the churn.
				var cur [][]*receiver.Receiver
				var drv *churn.Driver
				if *churnPeriod > 0 {
					drv = churn.New(b.Net)
					drv.SetObs(m.Obs())
					period := sim.FromSeconds(*churnPeriod)
					cur = make([][]*receiver.Receiver, len(w.Receivers))
					for s := range w.Receivers {
						cur[s] = append([]*receiver.Receiver(nil), w.Receivers[s]...)
						for i := range w.Receivers[s] {
							s, i := s, i
							node := b.Receivers[s][i]
							tr := w.Traces[s][i]
							drv.Slot(0, period, period,
								func() {
									rx := receiver.New(b.Net, w.Domain, node, receiver.Config{
										Session: s, MaxLayers: source.DefaultLayers,
										InitialLevel: 1, Controller: b.Controller.ID,
									})
									rx.OnChange = func(c receiver.Change) { tr.Set(c.At, c.To) }
									rx.Start()
									cur[s][i] = rx
								},
								func() {
									if rx := cur[s][i]; rx != nil {
										rx.Depart()
										cur[s][i] = nil
									}
								})
						}
					}
				}
				w.Run(dur)
				traces, optima = w.AllTraces()
				for s := range w.Receivers {
					for i, rx := range w.Receivers[s] {
						if cur != nil {
							rx = cur[s][i]
						}
						lvl := 0
						if rx != nil {
							lvl = rx.Level()
						}
						levels = append(levels, lvl)
						names = append(names, fmt.Sprintf("s%d/%s", s, b.Receivers[s][i].Name))
					}
				}
				fmt.Printf("controller: %d steps, %d suggestions sent, %d reports received\n",
					w.Controller.StepsRun, w.Controller.SuggestionsSent, w.Controller.ReportsRecv)
				if drv != nil {
					fmt.Printf("churn: %d joins, %d leaves, %d deregisters consumed, %d receivers registered at end\n",
						drv.Joins, drv.Leaves, w.Controller.DeregistersRecv, len(w.Controller.RegisteredReceivers()))
				}
				if *aggregate {
					fmt.Printf("aggregation: %d reports absorbed in-network, %d merges, %d flushes, %d sub-batches down\n",
						w.Aggregator.Absorbed, w.Aggregator.Merged, w.Aggregator.Flushes, w.Aggregator.Batches)
					fmt.Printf("controller fan-in: %d control msgs (%d modeled bytes), %d aggregates, %d batches out\n",
						w.Controller.CtlMsgsRecv, w.Controller.CtlBytesRecv, w.Controller.AggregatesRecv, w.Controller.BatchesSent)
				}
				if *probe {
					fmt.Printf("discovery: %d probe packets over %d discoveries\n", w.Tool.ProbePackets, w.Tool.Discoveries)
				}
				if *billing {
					fmt.Println("\nbilling ledger:")
					fmt.Print(controller.FormatBillingReport(w.Controller.BillingReport()))
				}
				if *explain {
					fmt.Println("\nfinal interval decisions:")
					fmt.Print(core.FormatDecisions(w.Controller.Algorithm().LastDecisions()))
					if *aggregate {
						fmt.Println("\nfinal interval subtree summaries:")
						fmt.Print(core.FormatSubtrees(w.Controller.Algorithm().Subtrees()))
					}
				}
			} else {
				w := experiments.NewRLMWorld(e, b, cfg)
				w.Domain.SetObs(m.Obs())
				// RLM baseline under churn: a departure is Stop (leave every
				// group — RLM has no control plane to deregister from) and a
				// rejoin is a fresh receiver probing up from the base layer.
				var cur [][]*rlm.Receiver
				var drv *churn.Driver
				if *churnPeriod > 0 {
					drv = churn.New(b.Net)
					drv.SetObs(m.Obs())
					period := sim.FromSeconds(*churnPeriod)
					cur = make([][]*rlm.Receiver, len(w.Receivers))
					for s := range w.Receivers {
						cur[s] = append([]*rlm.Receiver(nil), w.Receivers[s]...)
						for i := range w.Receivers[s] {
							s, i := s, i
							node := b.Receivers[s][i]
							tr := w.Traces[s][i]
							drv.Slot(0, period, period,
								func() {
									rx := rlm.New(b.Net, w.Domain, node, rlm.Config{
										Session: s, MaxLayers: source.DefaultLayers,
									})
									rx.OnChange = func(c rlm.Change) { tr.Set(c.At, c.To) }
									rx.Start()
									cur[s][i] = rx
								},
								func() {
									if rx := cur[s][i]; rx != nil {
										rx.Stop()
										cur[s][i] = nil
									}
								})
						}
					}
				}
				w.Run(dur)
				traces, optima = w.AllTraces()
				for s := range w.Receivers {
					for i, rx := range w.Receivers[s] {
						if cur != nil {
							rx = cur[s][i]
						}
						lvl := 0
						if rx != nil {
							lvl = rx.Level()
						}
						levels = append(levels, lvl)
						names = append(names, fmt.Sprintf("s%d/%s", s, b.Receivers[s][i].Name))
					}
				}
				if drv != nil {
					fmt.Printf("churn: %d joins, %d leaves\n", drv.Joins, drv.Leaves)
				}
			}

			if inj != nil {
				fmt.Printf("faults: bottleneck down %.0f-%.0f s (%d link failures, %d repairs, %d packets unroutable)\n",
					*failAt, *failAt+*outage, inj.Failures, inj.Repairs, b.Net.Unroutable)
			}

			if sampler != nil {
				if err := writeTSVs(*tsvDir, sampler); err != nil {
					return nil, fmt.Errorf("tsv: %w", err)
				}
				fmt.Printf("wrote %d series to %s\n", len(sampler.Names()), *tsvDir)
			}

			res := simResult{MeanDev: metrics.MeanRelativeDeviation(traces, optima, 0, dur)}
			for i, trc := range traces {
				res.Rows = append(res.Rows, receiverRow{
					Receiver:  names[i],
					Level:     levels[i],
					Optimal:   optima[i],
					Deviation: trc.RelativeDeviation(optima[i], 0, dur),
					Changes:   trc.Changes(0, dur),
				})
			}
			return res, nil
		})
	if *obsPath != "" || *flightrec {
		spec.Obs = &obs.Options{}
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	result := spec.Execute(0)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	// Profiles cover the simulation itself, not report formatting; stop
	// here so the later os.Exit paths cannot lose them.
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *flightrec && runObs != nil {
		runObs.Rec.WriteLog(os.Stderr)
	}
	if result.Failed() {
		fmt.Fprintf(os.Stderr, "run failed: %s\n", result.Err)
		os.Exit(1)
	}
	if *obsPath != "" {
		if err := writeObs(*obsPath, obsExt, result.Obs); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *obsPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote observability export to %s\n", *obsPath)
	}
	res := result.Rows.(simResult)

	t := &experiments.Table{
		Title:  fmt.Sprintf("Topology %s, %s, %s, %.0f s", topoName, tr.Name, algoName, *duration),
		Header: []string{"receiver", "final level", "optimal", "rel deviation", "changes"},
	}
	for _, r := range res.Rows {
		t.AddRow(
			r.Receiver,
			fmt.Sprintf("%d", r.Level),
			fmt.Sprintf("%d", r.Optimal),
			fmt.Sprintf("%.3f", r.Deviation),
			fmt.Sprintf("%d", r.Changes),
		)
	}
	fmt.Print(t)
	fmt.Printf("mean relative deviation: %.3f\n", res.MeanDev)
	fmt.Printf("run: %.2fs wall, %d events (%.0f events/s), %d packets forwarded\n",
		result.WallSeconds, result.Events, result.EventsPerSecond, result.Packets)

	if *jsonPath != "" {
		export := experiments.Export{
			Tool:        "toposim",
			GeneratedAt: start.UTC().Format(time.RFC3339),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Parallelism: 1,
			Seed:        *seed,
			WallSeconds: time.Since(start).Seconds(),
			Results:     []experiments.Result{result},
		}
		export.FillAggregates(memAfter.Mallocs - memBefore.Mallocs)
		if err := experiments.WriteJSONFile(*jsonPath, export); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote result to %s\n", *jsonPath)
	}
}

// writeObs writes the observability export as JSON or CSV, by extension.
func writeObs(path, ext string, d *obs.Dump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if ext == ".csv" {
		err = d.WriteCSV(f)
	} else {
		err = d.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTSVs dumps every sampled series as <name>.tsv under dir.
func writeTSVs(dir string, sampler *trace.Sampler) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range sampler.Names() {
		f, err := os.Create(filepath.Join(dir, name+".tsv"))
		if err != nil {
			return err
		}
		if err := sampler.Series(name).WriteTSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
