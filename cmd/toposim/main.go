// Command toposim runs a single TopoSense simulation scenario and reports
// per-receiver outcomes: final subscription level, optimal level, relative
// deviation, change count and loss summary. Useful for exploring parameter
// choices interactively.
//
// Usage:
//
//	toposim -topology A -receivers 4 -traffic vbr3 -duration 600
//	toposim -topology B -sessions 8 -staleness 6
//	toposim -topology tiered -seed 3
//	toposim -topology B -sessions 4 -algo rlm    # RLM baseline instead
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"path/filepath"

	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/experiments"
	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/topology"
	"toposense/internal/trace"
)

func main() {
	topo := flag.String("topology", "A", "A, B or tiered")
	receivers := flag.Int("receivers", 2, "topology A: receivers per set; tiered: receivers per leaf")
	sessions := flag.Int("sessions", 4, "topology B: number of competing sessions")
	traffic := flag.String("traffic", "cbr", "cbr, vbr3 or vbr6")
	duration := flag.Float64("duration", 1200, "simulated seconds")
	staleness := flag.Float64("staleness", 0, "topology information staleness in seconds")
	seed := flag.Int64("seed", 1, "simulation seed")
	algo := flag.String("algo", "toposense", "toposense or rlm")
	probe := flag.Bool("probe", false, "use mtrace-style probe-based topology discovery")
	billing := flag.Bool("billing", false, "print the controller's billing ledger (toposense only)")
	tsvDir := flag.String("tsv", "", "directory to write per-receiver level/loss time series as TSV")
	explain := flag.Bool("explain", false, "print the algorithm's per-node decisions for the final interval")
	flag.Parse()

	var tr experiments.Traffic
	switch strings.ToLower(*traffic) {
	case "cbr":
		tr = experiments.CBR
	case "vbr3":
		tr = experiments.VBR3
	case "vbr6":
		tr = experiments.VBR6
	default:
		fmt.Fprintf(os.Stderr, "unknown traffic %q\n", *traffic)
		os.Exit(2)
	}

	cfg := experiments.WorldConfig{
		Seed:           *seed,
		Traffic:        tr,
		Staleness:      sim.FromSeconds(*staleness),
		ProbeDiscovery: *probe,
	}
	e := sim.NewEngine(*seed)
	var b *topology.Build
	switch strings.ToUpper(*topo) {
	case "A":
		b = topology.BuildA(e, topology.AConfig{ReceiversPerSet: *receivers})
	case "B":
		b = topology.BuildB(e, topology.BConfig{Sessions: *sessions})
	case "TIERED":
		b = topology.BuildTiered(e, topology.TieredConfig{
			Seed:             *seed,
			FanOut:           []int{2, 3},
			Bandwidth:        []float64{10e6, 600e3},
			ReceiversPerLeaf: *receivers,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}

	dur := sim.FromSeconds(*duration)
	var traces []*metrics.Trace
	var optima []int
	var levels []int
	var names []string

	var sampler *trace.Sampler
	switch strings.ToLower(*algo) {
	case "toposense":
		w := experiments.NewWorld(e, b, cfg)
		if *billing {
			w.Controller.EnableBilling()
		}
		if *explain {
			w.Controller.Algorithm().EnableExplain()
		}
		if *tsvDir != "" {
			sampler = trace.NewSampler(e, 500*sim.Millisecond)
			for s := range w.Receivers {
				for _, rx := range w.Receivers[s] {
					rx := rx
					name := fmt.Sprintf("s%d-%s", s, rx.Node().Name)
					sampler.Probe(name+".level", func() float64 { return float64(rx.Level()) })
					sampler.Probe(name+".loss", func() float64 { return rx.LastLoss })
				}
			}
			sampler.Start()
		}
		w.Run(dur)
		traces, optima = w.AllTraces()
		for s := range w.Receivers {
			for _, rx := range w.Receivers[s] {
				levels = append(levels, rx.Level())
				names = append(names, fmt.Sprintf("s%d/%s", s, rx.Node().Name))
			}
		}
		fmt.Printf("controller: %d steps, %d suggestions sent, %d reports received\n",
			w.Controller.StepsRun, w.Controller.SuggestionsSent, w.Controller.ReportsRecv)
		if *probe {
			fmt.Printf("discovery: %d probe packets over %d discoveries\n", w.Tool.ProbePackets, w.Tool.Discoveries)
		}
		if *billing {
			fmt.Println("\nbilling ledger:")
			fmt.Print(controller.FormatBillingReport(w.Controller.BillingReport()))
		}
		if *explain {
			fmt.Println("\nfinal interval decisions:")
			fmt.Print(core.FormatDecisions(w.Controller.Algorithm().LastDecisions()))
		}
	case "rlm":
		w := experiments.NewRLMWorld(e, b, cfg)
		w.Run(dur)
		traces, optima = w.AllTraces()
		for s := range w.Receivers {
			for _, rx := range w.Receivers[s] {
				levels = append(levels, rx.Level())
				names = append(names, fmt.Sprintf("s%d/%s", s, rx.Node().Name))
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algo %q\n", *algo)
		os.Exit(2)
	}

	if sampler != nil {
		if err := writeTSVs(*tsvDir, sampler); err != nil {
			fmt.Fprintf(os.Stderr, "tsv: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d series to %s\n", len(sampler.Names()), *tsvDir)
	}

	t := &experiments.Table{
		Title:  fmt.Sprintf("Topology %s, %s, %s, %.0f s", strings.ToUpper(*topo), tr.Name, strings.ToLower(*algo), *duration),
		Header: []string{"receiver", "final level", "optimal", "rel deviation", "changes"},
	}
	for i, trc := range traces {
		t.AddRow(
			names[i],
			fmt.Sprintf("%d", levels[i]),
			fmt.Sprintf("%d", optima[i]),
			fmt.Sprintf("%.3f", trc.RelativeDeviation(optima[i], 0, dur)),
			fmt.Sprintf("%d", trc.Changes(0, dur)),
		)
	}
	fmt.Print(t)
	fmt.Printf("mean relative deviation: %.3f\n", metrics.MeanRelativeDeviation(traces, optima, 0, dur))
}

// writeTSVs dumps every sampled series as <name>.tsv under dir.
func writeTSVs(dir string, sampler *trace.Sampler) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range sampler.Names() {
		f, err := os.Create(filepath.Join(dir, name+".tsv"))
		if err != nil {
			return err
		}
		if err := sampler.Series(name).WriteTSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
