// Command topobench regenerates the paper's evaluation: every figure of
// "Using Tree Topology for Multicast Congestion Control" (Jagannathan &
// Almeroth, ICPP 2001), plus a TopoSense-vs-RLM baseline comparison and a
// robustness experiment (fig_failure) that cuts and repairs the Topology B
// bottleneck mid-run.
//
// Each figure enumerates its sweep as independent experiments.Spec runs;
// a bounded worker pool (internal/runner) fans them out across cores and
// reassembles results in sweep order, so the report is byte-identical
// whatever the parallelism.
//
// Usage:
//
//	topobench                       # all figures at paper scale (1200 s runs)
//	topobench -fig 8                # just Figure 8
//	topobench -fig fig_failure      # bottleneck failure/repair robustness run
//	topobench -quick                # scaled-down sweep (~20x faster)
//	topobench -seed 7               # different random seed
//	topobench -parallel 8           # 8 worker goroutines (0 = GOMAXPROCS)
//	topobench -shards 4             # sharded engine, 4 workers per run (figs 6, 7, fig_scale)
//	topobench -fig fig_scale -aggregate  # fig_scale with in-network aggregation twins
//	topobench -fig fig_churn -churn 4    # membership churn study, period pinned to 4 s
//	topobench -json BENCH_full.json # machine-readable results + run metadata
//	topobench -obs -json BENCH.json # embed each run's observability export
//	topobench -timeout 10m         # per-run wall-clock budget
//	topobench -quick -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"toposense/internal/experiments"
	"toposense/internal/obs"
	"toposense/internal/prof"
	"toposense/internal/runner"
	"toposense/internal/topology"
)

func main() {
	fig := flag.String("fig", "all", "which experiment to run: all or one of "+strings.Join(experiments.Names(), ", "))
	topoFlag := flag.String("topo", "", "topology selection for experiments that take one (fig_scale): a registered family ("+strings.Join(topology.Names(), ", ")+") for its ladder, or a full name,key=val spec for a single point")
	quick := flag.Bool("quick", false, "scaled-down runs (shorter duration, fewer points)")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "engine workers per run: 0 = single-threaded engine, N >= 1 = sharded engine with N workers (honoured by figures 6, 7 and fig_scale; fig_scale then adds a speedup column)")
	aggregate := flag.Bool("aggregate", false, "fig_scale: run an in-network-aggregation twin of every ladder point (control fan-in columns both ways)")
	federate := flag.Bool("federate", false, "fig_scale: run a hierarchical-control-plane twin of every ladder point (fig_federation always runs federated)")
	churnFlag := flag.Float64("churn", 0, "fig_churn: pin the mean join/leave period to this many simulated seconds instead of the default sweep around the decision interval (0 = default sweep)")
	jsonPath := flag.String("json", "", "write results + run metadata to this file (e.g. BENCH_full.json)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock budget (0 = none)")
	obsOn := flag.Bool("obs", false, "enable per-run observability; each result then carries an obs export (see -json)")
	progress := flag.Bool("progress", true, "report per-run completion on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile after the sweep to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var selected []experiments.Experiment
	if *fig == "all" {
		selected = experiments.Registry()
	} else {
		ex, ok := experiments.Lookup(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; valid names: all, %s\n",
				*fig, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		selected = []experiments.Experiment{ex}
	}

	// Enforce the engine-flag matrix exactly like toposim does. fig_failure
	// hosts fault injection internally, so selecting it stands in for a
	// -failat: the combination with -shards (or -federate) must be rejected
	// up front instead of silently running that experiment on the serial
	// flat control plane while the rest of the sweep shards.
	failAt := 0.0
	if *shards >= 1 || *federate {
		for _, ex := range selected {
			if ex.Name == "fig_failure" {
				failAt = 1
			}
		}
	}
	if err := experiments.ValidateEngineFlags(*shards, failAt, *aggregate, *federate, *churnFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if failAt > 0 {
			fmt.Fprintln(os.Stderr, "(fig_failure injects faults mid-run; run it separately without the conflicting flag)")
		}
		os.Exit(2)
	}

	// Enumerate every selected experiment's specs into one flat work list,
	// remembering each experiment's slice so results can be rendered per
	// experiment afterwards.
	// A non-family -topo must be a parseable generator spec; reject it
	// before burning sweep time.
	if *topoFlag != "" {
		if _, ok := topology.Get(strings.SplitN(*topoFlag, ",", 2)[0]); !ok {
			fmt.Fprintf(os.Stderr, "unknown -topo generator %q; registered: %s\n",
				*topoFlag, strings.Join(topology.Names(), ", "))
			os.Exit(2)
		}
	}
	cfg := experiments.SweepConfig{Seed: *seed, Quick: *quick, Topo: *topoFlag, Shards: *shards, Aggregate: *aggregate, Federate: *federate, Churn: *churnFlag}
	var specs []experiments.Spec
	type slice struct{ lo, hi int }
	slices := make([]slice, len(selected))
	for i, ex := range selected {
		s := ex.Specs(cfg)
		slices[i] = slice{len(specs), len(specs) + len(s)}
		specs = append(specs, s...)
	}
	if *obsOn {
		for i := range specs {
			specs[i].Obs = &obs.Options{}
		}
	}

	opts := runner.Options{Parallelism: *parallel, Timeout: *timeout}
	if *progress {
		opts.OnProgress = func(done, total int, r experiments.Result) {
			status := fmt.Sprintf("%.1fs", r.WallSeconds)
			if r.Failed() {
				status = "FAILED: " + r.Err
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%s)\n", done, total, r.Name, status)
		}
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	results := runner.Run(specs, opts)
	wall := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	exitCode := 0
	// Profiles cover the sweep only; stop before rendering so report
	// formatting does not pollute them (and before any os.Exit).
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exitCode = 1
	}
	for i, ex := range selected {
		out, err := ex.Render(results[slices[i].lo:slices[i].hi])
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", ex.Name, err)
			exitCode = 1
			continue
		}
		fmt.Print(out)
	}
	fmt.Printf("total wall time: %v\n", wall.Round(time.Millisecond))
	var totalEvents uint64
	for _, r := range results {
		totalEvents += r.Events
	}
	if wall > 0 && totalEvents > 0 {
		// Stderr, like progress: stdout stays deterministic up to the wall-time line.
		fmt.Fprintf(os.Stderr, "throughput: %d events, %.0f events/s aggregate, %.2f allocs/event\n",
			totalEvents,
			float64(totalEvents)/wall.Seconds(),
			float64(memAfter.Mallocs-memBefore.Mallocs)/float64(totalEvents))
	}

	if *jsonPath != "" {
		export := experiments.Export{
			Tool:        "topobench",
			GeneratedAt: start.UTC().Format(time.RFC3339),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Parallelism: runner.Workers(*parallel, len(specs)),
			Seed:        *seed,
			Quick:       *quick,
			WallSeconds: wall.Seconds(),
			Results:     results,
		}
		export.FillAggregates(memAfter.Mallocs - memBefore.Mallocs)
		if err := experiments.WriteJSONFile(*jsonPath, export); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			exitCode = 1
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(results), *jsonPath)
		}
	}
	os.Exit(exitCode)
}
