// Command topobench regenerates the paper's evaluation: every figure of
// "Using Tree Topology for Multicast Congestion Control" (Jagannathan &
// Almeroth, ICPP 2001), plus a TopoSense-vs-RLM baseline comparison.
//
// Usage:
//
//	topobench                  # all figures at paper scale (1200 s runs)
//	topobench -fig 8           # just Figure 8
//	topobench -quick           # scaled-down sweep (~20x faster)
//	topobench -seed 7          # different random seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"toposense/internal/experiments"
	"toposense/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "which figure to run: 6, 7, 8, 9, 10, baseline, ablation, churn, convergence, domains, extensions, lastmile, queues, variance or all")
	quick := flag.Bool("quick", false, "scaled-down runs (shorter duration, fewer points)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	dur := experiments.PaperDuration
	perSet := []int(nil)   // defaults
	sessions := []int(nil) // defaults
	staleness := []sim.Time(nil)
	if *quick {
		dur = 240 * sim.Second
		perSet = []int{1, 2}
		sessions = []int{2, 4}
		staleness = []sim.Time{0, 4 * sim.Second, 8 * sim.Second}
	}

	runAll := *fig == "all"
	ran := false
	start := time.Now()

	if runAll || *fig == "6" {
		ran = true
		rows := experiments.RunFig6(experiments.Fig6Config{Seed: *seed, Duration: dur, PerSet: perSet})
		fmt.Print(experiments.StabilityTable(
			"Figure 6: stability in Topology A (busiest receiver over the full run)",
			"receivers", rows))
		fmt.Println()
	}
	if runAll || *fig == "7" {
		ran = true
		rows := experiments.RunFig7(experiments.Fig7Config{Seed: *seed, Duration: dur, Sessions: sessions})
		fmt.Print(experiments.StabilityTable(
			"Figure 7: stability in Topology B (busiest session over the full run)",
			"sessions", rows))
		fmt.Println()
	}
	if runAll || *fig == "8" {
		ran = true
		rows := experiments.RunFig8(experiments.Fig8Config{Seed: *seed, Duration: dur, Sessions: sessions})
		fmt.Print(experiments.FairnessTable(rows))
		fmt.Println()
	}
	if runAll || *fig == "9" {
		ran = true
		res := experiments.RunFig9(experiments.Fig9Config{Seed: *seed, Duration: dur})
		fmt.Println("Figure 9 (full run, subscription levels):")
		fmt.Print(res.Plot(100, 9))
		fmt.Println()
		fmt.Print(res.WindowTable())
		fmt.Println()
		fmt.Print(res.Summary())
		fmt.Println()
	}
	if runAll || *fig == "10" {
		ran = true
		rows := experiments.RunFig10(experiments.Fig10Config{Seed: *seed, Duration: dur, PerSet: perSet, Staleness: staleness})
		fmt.Print(experiments.StaleTable(rows))
		fmt.Println()
	}
	if runAll || *fig == "baseline" {
		ran = true
		rows := experiments.RunBaseline(experiments.BaselineConfig{Seed: *seed, Duration: dur})
		fmt.Print(experiments.BaselineTable(rows))
		fmt.Println()
	}
	if runAll || *fig == "ablation" {
		ran = true
		rows := experiments.RunAblation(experiments.AblationConfig{Seed: *seed, Duration: dur})
		fmt.Print(experiments.AblationTable(rows))
		fmt.Println()
	}
	if runAll || *fig == "convergence" {
		ran = true
		cc := experiments.ConvergenceConfig{Seed: *seed}
		if *quick {
			cc.Duration = 240 * sim.Second
		}
		for _, tr := range []experiments.Traffic{experiments.CBR, experiments.VBR3} {
			cc.Traffic = tr
			fmt.Println(tr.Name + ":")
			fmt.Print(experiments.ConvergenceTable(experiments.RunConvergence(cc)))
			fmt.Println()
		}
	}
	if runAll || *fig == "churn" {
		ran = true
		cc := experiments.ChurnConfig{Seed: *seed}
		if *quick {
			cc.Duration = 240 * sim.Second
		}
		fmt.Print(experiments.ChurnTable(experiments.RunChurn(cc)))
		fmt.Println()
	}
	if runAll || *fig == "domains" {
		ran = true
		dc := experiments.DomainsConfig{Seed: *seed}
		if *quick {
			dc.Duration = 240 * sim.Second
			dc.Seeds = 1
		}
		fmt.Print(experiments.DomainsTable(experiments.RunDomains(dc)))
		fmt.Println()
	}
	if runAll || *fig == "queues" {
		ran = true
		qc := experiments.QueueConfig{Seed: *seed}
		if *quick {
			qc.Duration = 240 * sim.Second
		}
		fmt.Print(experiments.QueueTable(experiments.RunQueuePolicies(qc)))
		fmt.Println()
	}
	if runAll || *fig == "lastmile" {
		ran = true
		lc := experiments.LastMileConfig{Seed: *seed}
		if *quick {
			lc.Duration = 240 * sim.Second
		}
		fmt.Print(experiments.LastMileTable(experiments.RunLastMile(lc)))
		fmt.Println()
	}
	if runAll || *fig == "variance" {
		ran = true
		vc := experiments.VarianceConfig{Seed: *seed}
		if *quick {
			vc.Duration = 240 * sim.Second
			vc.Seeds = 3
		}
		fmt.Print(experiments.VarianceTable(experiments.RunVariance(vc)))
		fmt.Println()
	}
	if runAll || *fig == "extensions" {
		ran = true
		ext := experiments.ExtensionConfig{Seed: *seed}
		if *quick {
			ext.Duration = 240 * sim.Second
			ext.Seeds = 1
		}
		fmt.Print(experiments.ExtensionTable("Extension: layer granularity (Section V)", "scheme", experiments.RunGranularity(ext)))
		fmt.Println()
		fmt.Print(experiments.ExtensionTable("Extension: group-leave latency (Section V, VBR)", "leave latency", experiments.RunLeaveLatency(ext)))
		fmt.Println()
		fmt.Print(experiments.ExtensionTable("Extension: decision interval (Section V)", "interval", experiments.RunIntervalSize(ext)))
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 6, 7, 8, 9, 10, baseline, ablation, churn, convergence, domains, extensions, lastmile, queues, variance or all)\n", *fig)
		os.Exit(2)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
