module toposense

go 1.22
