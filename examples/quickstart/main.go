// Quickstart: build a small network, start a layered multicast session and
// a TopoSense controller, and watch one receiver converge to the number of
// layers its bottleneck can carry.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/receiver"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
)

func main() {
	// 1. A deterministic simulation engine; everything runs on its clock.
	engine := sim.NewEngine(42)

	// 2. The network: source -- router -- receiver, with a 500 Kbps
	// bottleneck on the last hop. 500 Kbps fits 4 of the 6 layers
	// (32+64+128+256 = 480 Kbps).
	net := netsim.New(engine)
	srcNode := net.AddNode("source")
	router := net.AddNode("router")
	rxNode := net.AddNode("receiver")
	net.Connect(srcNode, router, netsim.LinkConfig{Bandwidth: 100e6, Delay: 200 * sim.Millisecond})
	net.Connect(router, rxNode, netsim.LinkConfig{Bandwidth: 500e3, Delay: 200 * sim.Millisecond})

	// 3. Multicast routing with IGMP-style join/leave latency.
	domain := mcast.NewDomain(net)

	// 4. A 6-layer source (32 Kbps base, doubling per layer), CBR.
	src := source.New(net, domain, srcNode, source.Config{Session: 0})

	// 5. The TopoSense controller at the source node: topology discovery
	// tool + the decision algorithm.
	tool := topodisc.NewTool(net, domain, []int{0})
	alg := core.New(core.NewConfig(source.Rates(6)), rand.New(rand.NewSource(1)))
	ctrl := controller.New(net, domain, srcNode, tool, alg)

	// 6. A receiver that reports losses and obeys suggestions.
	rx := receiver.New(net, domain, rxNode, receiver.Config{
		Session:      0,
		MaxLayers:    6,
		InitialLevel: 1,
		Controller:   srcNode.ID,
	})
	rx.OnChange = func(c receiver.Change) {
		fmt.Printf("%8s  subscription %d -> %d layers\n", engine.Now(), c.From, c.To)
	}

	// 7. Run for two simulated minutes.
	src.Start()
	ctrl.Start()
	rx.Start()
	engine.RunUntil(120 * sim.Second)

	fmt.Printf("\nafter 120 s: %d layers subscribed (optimal for 500 Kbps is 4)\n", rx.Level())
	fmt.Printf("controller ran %d intervals, receiver sent %d reports, loss now %.1f%%\n",
		ctrl.StepsRun, rx.ReportsSent, rx.LastLoss*100)
}
