// Competing sessions (the paper's Topology B): several independent video
// sessions squeeze through one shared backbone link. TopoSense estimates
// the shared link's capacity from correlated losses and splits it between
// the sessions; an uncoordinated receiver-driven baseline (RLM-style) is
// run on the identical scenario for contrast.
//
//	go run ./examples/competing
package main

import (
	"fmt"

	"toposense/internal/experiments"
	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

const (
	sessions = 4
	duration = 600 * sim.Second
)

func main() {
	fmt.Printf("%d sessions share a %d Kbps link; each can ideally take 4 layers (480 Kbps)\n\n",
		sessions, sessions*500)

	// TopoSense.
	e1 := sim.NewEngine(3)
	w1 := experiments.NewWorld(e1,
		topology.MustGenerate(e1, &topology.BConfig{Sessions: sessions}),
		experiments.WorldConfig{Seed: 3, Traffic: experiments.VBR3})
	w1.Run(duration)

	// RLM baseline on the identical topology and traffic.
	e2 := sim.NewEngine(3)
	w2 := experiments.NewRLMWorld(e2,
		topology.MustGenerate(e2, &topology.BConfig{Sessions: sessions}),
		experiments.WorldConfig{Seed: 3, Traffic: experiments.VBR3})
	w2.Run(duration)

	fmt.Printf("%-9s  %-10s  %-10s\n", "session", "TopoSense", "RLM")
	for s := 0; s < sessions; s++ {
		fmt.Printf("%-9d  %-10d  %-10d\n", s, w1.Receivers[s][0].Level(), w2.Receivers[s][0].Level())
	}

	t1, o1 := w1.AllTraces()
	t2, o2 := w2.AllTraces()
	d1 := metrics.MeanRelativeDeviation(t1, o1, 0, duration)
	d2 := metrics.MeanRelativeDeviation(t2, o2, 0, duration)
	fmt.Printf("\nmean relative deviation from the fair optimum (lower is better):\n")
	fmt.Printf("  TopoSense: %.3f\n  RLM:       %.3f\n", d1, d2)
	fmt.Println("\nwith bursty (VBR) traffic, uncoordinated join-experiments interfere across")
	fmt.Println("sessions; the topology-aware controller shares the estimated capacity instead")
}
