// Multi-domain control (the paper's Figure 3): two administrative domains,
// each running its own controller agent that only sees its own subtree and
// its own receivers — neither knows the other exists. The slow domain's
// congestion is handled locally and never disturbs the fast domain: the
// subtree-independence idea the TopoSense architecture is built on.
//
//	go run ./examples/domains
package main

import (
	"fmt"

	"toposense/internal/experiments"
	"toposense/internal/sim"
)

func main() {
	fmt.Println("two domains behind one backbone: domain 1 at 100 Kbps (optimal 2 layers),")
	fmt.Println("domain 2 at 500 Kbps (optimal 4 layers); one session spans both")
	fmt.Println()
	fmt.Println("comparing one global controller against two independent per-domain agents")
	fmt.Println("(600 simulated seconds x 2 architectures x 3 seeds)...")
	fmt.Println()

	rows := experiments.RunDomains(experiments.DomainsConfig{
		Seed:     21,
		Duration: 600 * sim.Second,
	})
	fmt.Print(experiments.DomainsTable(rows))

	fmt.Println()
	fmt.Println("both architectures steer every receiver to its domain's optimum;")
	fmt.Println("local agents need no global view — the paper's scalability argument")
}
