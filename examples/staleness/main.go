// Stale topology information (the paper's Figure 10 scenario): the
// controller acts on a picture of the multicast tree that is several
// seconds old — the realistic regime for mtrace-class discovery tools.
// This example sweeps the staleness knob and prints how tracking quality
// degrades, and where it stops mattering.
//
//	go run ./examples/staleness
package main

import (
	"fmt"

	"toposense/internal/experiments"
	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

func main() {
	fmt.Println("Topology A, VBR(P=3), 600 s runs; sweeping topology staleness")
	fmt.Printf("\n%-14s  %-20s\n", "staleness (s)", "mean rel. deviation")
	for _, stale := range []float64{0, 2, 4, 8, 12, 18} {
		e := sim.NewEngine(11)
		b := topology.MustGenerate(e, &topology.AConfig{ReceiversPerSet: 2})
		w := experiments.NewWorld(e, b, experiments.WorldConfig{
			Seed:      11,
			Traffic:   experiments.VBR3,
			Staleness: sim.FromSeconds(stale),
		})
		w.Run(600 * sim.Second)
		traces, optima := w.AllTraces()
		dev := metrics.MeanRelativeDeviation(traces, optima, 0, 600*sim.Second)
		fmt.Printf("%-14.0f  %.3f\n", stale, dev)
	}
	fmt.Println("\nthe max source-to-receiver latency here is 600 ms; information a few")
	fmt.Println("seconds old still steers well — the paper's central robustness claim")
}
