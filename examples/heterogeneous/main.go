// Heterogeneous receivers (the paper's Topology A): one video session, two
// groups of receivers behind very different access links — a 100 Kbps "last
// mile" and a 500 Kbps one. TopoSense must give each group its own optimal
// subscription without letting the slow group drag the fast group down:
// the motivating scenario from the paper's introduction (the Ethernet user
// vs the 56K modem user).
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"

	"toposense/internal/experiments"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

func main() {
	engine := sim.NewEngine(7)
	build := topology.MustGenerate(engine, &topology.AConfig{
		ReceiversPerSet: 3,
		Set1Bandwidth:   100e3, // ~2 layers
		Set2Bandwidth:   500e3, // ~4 layers
	})
	world := experiments.NewWorld(engine, build, experiments.WorldConfig{
		Seed:    7,
		Traffic: experiments.CBR,
	})

	fmt.Println("one session, 6 receivers: 3 behind 100 Kbps, 3 behind 500 Kbps")
	fmt.Println("running 300 simulated seconds...")
	world.Run(300 * sim.Second)

	fmt.Printf("\n%-12s  %-11s  %-7s  %s\n", "receiver", "final level", "optimal", "deviation")
	traces, optima := world.AllTraces()
	i := 0
	for s := range world.Receivers {
		for _, rx := range world.Receivers[s] {
			dev := traces[i].RelativeDeviation(optima[i], 0, 300*sim.Second)
			fmt.Printf("%-12s  %-11d  %-7d  %.3f\n", rx.Node().Name, rx.Level(), optima[i], dev)
			i++
		}
	}

	fast, slow := world.Receivers[0][3].Level(), world.Receivers[0][0].Level()
	fmt.Printf("\nintra-session fairness: slow set at %d layers, fast set at %d layers\n", slow, fast)
	if fast > slow {
		fmt.Println("the fast receivers were NOT dragged down by the slow ones — topology awareness at work")
	}
}
