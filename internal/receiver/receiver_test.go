package receiver

import (
	"math"
	"testing"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
	"toposense/internal/source"
)

// ctrlStub collects control packets at the controller node.
type ctrlStub struct {
	node        *netsim.Node
	registers   []report.Register
	reports     []report.LossReport
	deregisters []report.Deregister
}

func (c *ctrlStub) Recv(p *netsim.Packet) {
	switch pl := p.Payload.(type) {
	case report.Register:
		c.registers = append(c.registers, pl)
	case report.LossReport:
		c.reports = append(c.reports, pl)
	case report.Deregister:
		c.deregisters = append(c.deregisters, pl)
	}
}

func (c *ctrlStub) suggest(e *sim.Engine, rx *Receiver, level int) {
	sg := report.Suggestion{Node: rx.Node().ID, Session: rx.Session(), Level: level, Sent: e.Now()}
	c.node.SendUnicast(report.NewControlPacket(c.node.ID, rx.Node().ID, report.SuggestionSize, e.Now(), sg))
}

// rig: src(controller here too) --- mid --- rx with configurable bottleneck
// on mid->rx.
type rig struct {
	e    *sim.Engine
	n    *netsim.Network
	d    *mcast.Domain
	src  *source.Source
	rx   *Receiver
	ctrl *ctrlStub
	mid  *netsim.Node
}

func newRig(t *testing.T, bottleneckBps float64, cfg Config) *rig {
	t.Helper()
	e := sim.NewEngine(11)
	n := netsim.New(e)
	srcNode := n.AddNode("src")
	mid := n.AddNode("mid")
	rxNode := n.AddNode("rx")
	fat := netsim.LinkConfig{Bandwidth: 100e6, Delay: 10 * sim.Millisecond, QueueLimit: 100}
	n.Connect(srcNode, mid, fat)
	n.Connect(mid, rxNode, netsim.LinkConfig{Bandwidth: bottleneckBps, Delay: 10 * sim.Millisecond, QueueLimit: 10})
	d := mcast.NewDomain(n)
	d.LeaveLatency = 200 * sim.Millisecond
	src := source.New(n, d, srcNode, source.Config{Session: 0})
	ctrl := &ctrlStub{node: srcNode}
	srcNode.AttachAgent(ctrl)
	cfg.Session = 0
	cfg.MaxLayers = 6
	cfg.Controller = srcNode.ID
	rx := New(n, d, rxNode, cfg)
	return &rig{e: e, n: n, d: d, src: src, rx: rx, ctrl: ctrl, mid: mid}
}

func TestRegisterOnStart(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 2})
	r.rx.Start()
	r.e.RunUntil(sim.Second)
	if len(r.ctrl.registers) != 1 {
		t.Fatalf("registers = %d, want 1", len(r.ctrl.registers))
	}
	reg := r.ctrl.registers[0]
	if reg.Node != r.rx.Node().ID || reg.Session != 0 || reg.Level != 2 {
		t.Errorf("register = %+v", reg)
	}
	if reg.String() == "" {
		t.Error("empty Register.String")
	}
}

func TestDepartLeavesGroupsAndDeregisters(t *testing.T) {
	// Depart is the full teardown: level drops to 0 (every layer group
	// left), reporting stops, and exactly one Deregister reaches the
	// controller — idempotently, however many times Depart is called.
	r := newRig(t, 10e6, Config{InitialLevel: 3})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(5 * sim.Second)
	if r.rx.Level() != 3 {
		t.Fatalf("level before Depart = %d, want 3", r.rx.Level())
	}

	r.e.Schedule(sim.Second, func() {
		r.rx.Depart()
		r.rx.Depart() // idempotent: no second teardown, no second packet
	})
	r.e.RunUntil(7 * sim.Second)
	reportsAtDepart := len(r.ctrl.reports)

	if r.rx.Level() != 0 {
		t.Errorf("level after Depart = %d, want 0", r.rx.Level())
	}
	if len(r.ctrl.deregisters) != 1 {
		t.Fatalf("controller received %d Deregisters, want 1", len(r.ctrl.deregisters))
	}
	d := r.ctrl.deregisters[0]
	if d.Node != r.rx.Node().ID || d.Session != 0 {
		t.Errorf("deregister = %+v", d)
	}
	if d.String() == "" {
		t.Error("empty Deregister.String")
	}

	// Departed for good: reporting stays silent and the layer groups stay
	// left long past the leave latency.
	r.e.RunUntil(12 * sim.Second)
	if got := len(r.ctrl.reports); got != reportsAtDepart {
		t.Errorf("departed receiver kept reporting: %d -> %d", reportsAtDepart, got)
	}
	for layer := 1; layer <= 3; layer++ {
		g := r.d.GroupOf(0, layer)
		if r.d.OnTree(r.rx.Node().ID, g) {
			t.Errorf("layer %d group still forwarding to the departed receiver", layer)
		}
	}
}

func TestLossFreeReports(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 2})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(10 * sim.Second)
	if len(r.ctrl.reports) < 15 {
		t.Fatalf("reports = %d, want ~20", len(r.ctrl.reports))
	}
	// Skip the first few reports (joins still propagating).
	var rates []float64
	for _, rep := range r.ctrl.reports[6:] {
		if rep.LossRate != 0 {
			t.Errorf("loss-free path reported loss %.3f", rep.LossRate)
		}
		rates = append(rates, rep.Rate())
	}
	mean := 0.0
	for _, x := range rates {
		mean += x
	}
	mean /= float64(len(rates))
	if math.Abs(mean-96_000) > 0.1*96_000 {
		t.Errorf("mean reported rate %.0f, want ~96000 (layers 1+2)", mean)
	}
	// The final report may still be in flight when the clock stops.
	if diff := r.rx.ReportsSent - int64(len(r.ctrl.reports)); diff < 0 || diff > 1 {
		t.Errorf("ReportsSent=%d, controller saw %d", r.rx.ReportsSent, len(r.ctrl.reports))
	}
}

func TestLossDetectionOnBottleneck(t *testing.T) {
	// Subscribe to 4 layers (480 Kbps) over a 128 Kbps bottleneck:
	// sustained heavy loss must be reported.
	r := newRig(t, 128e3, Config{InitialLevel: 4, UnilateralAfter: -1})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(20 * sim.Second)
	late := r.ctrl.reports[len(r.ctrl.reports)-5:]
	for _, rep := range late {
		if rep.LossRate < 0.3 {
			t.Errorf("report loss %.3f, want heavy (>0.3) at 4x oversubscription", rep.LossRate)
		}
	}
	if r.rx.LastLoss < 0.3 {
		t.Errorf("LastLoss = %.3f", r.rx.LastLoss)
	}
}

func TestSuggestionDropIsImmediate(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 5})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(2 * sim.Second)
	r.ctrl.suggest(r.e, r.rx, 1)
	r.e.RunUntil(3 * sim.Second)
	if r.rx.Level() != 1 {
		t.Fatalf("Level = %d after drop suggestion, want 1", r.rx.Level())
	}
	if r.rx.SuggestionsRecv != 1 {
		t.Errorf("SuggestionsRecv = %d", r.rx.SuggestionsRecv)
	}
}

func TestSuggestionAddsOneLayerAtATime(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 1})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(sim.Second)
	r.ctrl.suggest(r.e, r.rx, 4)
	r.e.RunUntil(2 * sim.Second)
	if r.rx.Level() != 2 {
		t.Fatalf("Level = %d after one add suggestion, want 2", r.rx.Level())
	}
	r.ctrl.suggest(r.e, r.rx, 4)
	r.ctrl.suggest(r.e, r.rx, 4)
	r.e.RunUntil(3 * sim.Second)
	if r.rx.Level() != 4 {
		t.Fatalf("Level = %d after three suggestions, want 4", r.rx.Level())
	}
}

func TestSuggestionClamped(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 1})
	r.rx.Start()
	r.e.RunUntil(sim.Second)
	for i := 0; i < 10; i++ {
		r.ctrl.suggest(r.e, r.rx, 99)
		r.e.RunUntil(r.e.Now() + 100*sim.Millisecond)
	}
	if r.rx.Level() != 6 {
		t.Errorf("Level = %d, want clamp at 6", r.rx.Level())
	}
	r.ctrl.suggest(r.e, r.rx, -5)
	r.e.RunUntil(r.e.Now() + sim.Second)
	if r.rx.Level() != 0 {
		t.Errorf("Level = %d, want clamp at 0", r.rx.Level())
	}
}

func TestSuggestionForOtherNodeIgnored(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 2})
	r.rx.Start()
	r.e.RunUntil(sim.Second)
	// Addressed to the right node but wrong session.
	sg := report.Suggestion{Node: r.rx.Node().ID, Session: 9, Level: 5}
	r.ctrl.node.SendUnicast(report.NewControlPacket(r.ctrl.node.ID, r.rx.Node().ID, report.SuggestionSize, r.e.Now(), sg))
	r.e.RunUntil(2 * sim.Second)
	if r.rx.Level() != 2 || r.rx.SuggestionsRecv != 0 {
		t.Errorf("wrong-session suggestion applied: lvl=%d recv=%d", r.rx.Level(), r.rx.SuggestionsRecv)
	}
}

func TestUnilateralDropWhenControllerSilent(t *testing.T) {
	r := newRig(t, 128e3, Config{
		InitialLevel:    4,
		UnilateralAfter: 3 * sim.Second,
		UnilateralLoss:  0.2,
	})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(30 * sim.Second)
	if r.rx.UnilateralDrops == 0 {
		t.Fatal("no unilateral drops despite silent controller and heavy loss")
	}
	if r.rx.Level() >= 4 {
		t.Errorf("Level = %d, want < 4 after unilateral drops", r.rx.Level())
	}
	if r.rx.Level() < 1 {
		t.Errorf("unilateral drops went below the base layer: %d", r.rx.Level())
	}
}

func TestNoUnilateralDropWhileSuggestionsFlow(t *testing.T) {
	r := newRig(t, 128e3, Config{
		InitialLevel:    4,
		UnilateralAfter: 3 * sim.Second,
		UnilateralLoss:  0.2,
	})
	r.src.Start()
	r.rx.Start()
	// Inject suggestions directly every second (bypassing the congested
	// bottleneck, which would lose them): the watchdog must never fire.
	r.e.Every(sim.Second, func() {
		r.rx.Recv(report.NewControlPacket(r.ctrl.node.ID, r.rx.Node().ID, report.SuggestionSize, r.e.Now(),
			report.Suggestion{Node: r.rx.Node().ID, Session: 0, Level: 4, Sent: r.e.Now()}))
	})
	r.e.RunUntil(20 * sim.Second)
	if r.rx.UnilateralDrops != 0 {
		t.Errorf("UnilateralDrops = %d with live controller", r.rx.UnilateralDrops)
	}
}

func TestChangesRecorded(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 2})
	var observed []Change
	r.rx.OnChange = func(c Change) { observed = append(observed, c) }
	r.rx.Start()
	r.e.RunUntil(sim.Second)
	r.ctrl.suggest(r.e, r.rx, 3)
	r.e.RunUntil(2 * sim.Second)
	r.ctrl.suggest(r.e, r.rx, 1)
	r.e.RunUntil(3 * sim.Second)
	ch := r.rx.Changes()
	if len(ch) != 3 { // 0->2 at start, 2->3, 3->1
		t.Fatalf("changes = %v", ch)
	}
	if ch[0].From != 0 || ch[0].To != 2 || ch[1].To != 3 || ch[2].To != 1 {
		t.Errorf("changes = %v", ch)
	}
	if len(observed) != len(ch) {
		t.Errorf("OnChange observed %d, recorded %d", len(observed), len(ch))
	}
}

func TestStopLeavesAllGroups(t *testing.T) {
	r := newRig(t, 10e6, Config{InitialLevel: 3})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(2 * sim.Second)
	r.rx.Stop()
	r.e.RunUntil(5 * sim.Second) // leave latency + prunes complete
	for l := 1; l <= 6; l++ {
		g := r.d.GroupOf(0, l)
		if r.d.HasLocalMembers(r.rx.Node().ID, g) {
			t.Errorf("still a member of layer %d after Stop", l)
		}
	}
	if r.rx.Level() != 0 {
		t.Errorf("Level = %d after Stop", r.rx.Level())
	}
}

func TestStalePacketsAfterLeaveNotCounted(t *testing.T) {
	// Drop from 4 to 1: packets from the leave-latency window must not
	// count as received traffic for layers 2..4.
	r := newRig(t, 10e6, Config{InitialLevel: 4})
	r.src.Start()
	r.rx.Start()
	r.e.RunUntil(2 * sim.Second)
	r.ctrl.suggest(r.e, r.rx, 1)
	r.e.RunUntil(4 * sim.Second)
	// After the drop, reported rate should settle to layer 1 only.
	last := r.ctrl.reports[len(r.ctrl.reports)-1]
	if math.Abs(last.Rate()-32_000) > 0.25*32_000 {
		t.Errorf("rate after drop = %.0f, want ~32000", last.Rate())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	node := n.AddNode("rx")
	d := mcast.NewDomain(n)
	for _, cfg := range []Config{
		{MaxLayers: 0},
		{MaxLayers: 6, InitialLevel: -1},
		{MaxLayers: 6, InitialLevel: 7},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cfg %+v did not panic", cfg)
				}
			}()
			New(n, d, node, cfg)
		}()
	}
}

func TestReportRateHelper(t *testing.T) {
	rep := report.LossReport{Bytes: 12_000, Interval: sim.Second}
	if got := rep.Rate(); got != 96_000 {
		t.Errorf("Rate = %g, want 96000", got)
	}
	if (report.LossReport{}).Rate() != 0 {
		t.Error("zero-interval Rate should be 0")
	}
	if rep.String() == "" || (report.Suggestion{}).String() == "" {
		t.Error("empty payload String")
	}
}
