package receiver

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// accountingRig builds a receiver whose sequence accounting is driven by
// hand: packets are fed straight into RecvMulticast and intervals are
// closed by calling tick directly, so each test controls exactly what the
// layer streams look like.
func accountingRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, 10e6, Config{
		InitialLevel:    0,
		ReportInterval:  1000 * sim.Second, // never fires on its own
		UnilateralAfter: -1,
	})
	r.rx.setLevel(1)
	return r
}

// feed delivers one layer-1 data packet with the given sequence number.
func (r *rig) feed(seq int64) {
	r.rx.RecvMulticast(&netsim.Packet{
		Kind: netsim.Data, Session: 0, Layer: 1, Seq: seq, Size: 1000,
		Group: r.d.GroupOf(0, 1),
	})
}

// TestDuplicatesDoNotMaskLoss pins the core accounting fix: duplicated
// packets must not count as received, or they cancel out real losses in the
// same interval. Stream 1,2,2,2,5 has two real losses (3 and 4) and two
// duplicates; the reported loss must be 2/5, not the 0 the old
// count-everything-as-received accounting produced.
func TestDuplicatesDoNotMaskLoss(t *testing.T) {
	r := accountingRig(t)
	for _, s := range []int64{1, 2, 2, 2, 5} {
		r.feed(s)
	}
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0.4 {
		t.Errorf("LastLoss = %g, want 0.4 (duplicates masked the losses)", got)
	}
	if r.rx.Duplicates != 2 {
		t.Errorf("Duplicates = %d, want 2", r.rx.Duplicates)
	}
	if r.rx.Reordered != 0 {
		t.Errorf("Reordered = %d, want 0", r.rx.Reordered)
	}
}

// TestLateArrivalFillsGap: a reordered packet is not a loss. 1,2,5,3,4
// delivers everything, just out of order.
func TestLateArrivalFillsGap(t *testing.T) {
	r := accountingRig(t)
	for _, s := range []int64{1, 2, 5, 3, 4} {
		r.feed(s)
	}
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0 {
		t.Errorf("LastLoss = %g, want 0 (reordering is not loss)", got)
	}
	if r.rx.Reordered != 2 {
		t.Errorf("Reordered = %d, want 2", r.rx.Reordered)
	}
	if r.rx.Duplicates != 0 {
		t.Errorf("Duplicates = %d, want 0", r.rx.Duplicates)
	}
}

// TestReorderedDuplicateStillDuplicate: a late arrival that fills a gap,
// then arrives again, is one reorder plus one duplicate.
func TestReorderedDuplicateStillDuplicate(t *testing.T) {
	r := accountingRig(t)
	for _, s := range []int64{1, 3, 2, 2} {
		r.feed(s)
	}
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0 {
		t.Errorf("LastLoss = %g, want 0", got)
	}
	if r.rx.Reordered != 1 || r.rx.Duplicates != 1 {
		t.Errorf("Reordered/Duplicates = %d/%d, want 1/1", r.rx.Reordered, r.rx.Duplicates)
	}
}

// TestIntervalBoundaryDebt walks a gap-fill across an interval boundary:
// the interval that receives the late packets must not report negative
// loss, and the over-receipt must be carried so cumulative accounting stays
// exact.
func TestIntervalBoundaryDebt(t *testing.T) {
	r := accountingRig(t)

	// Interval 1: 1,2,5 — packets 3,4 look lost. Reported loss 2/5.
	for _, s := range []int64{1, 2, 5} {
		r.feed(s)
	}
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0.4 {
		t.Fatalf("interval 1 loss = %g, want 0.4", got)
	}

	// Interval 2: the "lost" 3,4 arrive late, plus 6. Three received against
	// one newly expected — loss must clamp to 0 (not -2) with the surplus
	// carried as debt.
	for _, s := range []int64{3, 4, 6} {
		r.feed(s)
	}
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0 {
		t.Fatalf("interval 2 loss = %g, want 0", got)
	}
	if debt := r.rx.layers[0].debt; debt != -2 {
		t.Fatalf("carried debt = %d, want -2", debt)
	}

	// Interval 3: 9 arrives, 7,8 genuinely lost — exactly cancelled by the
	// debt: the 2 losses here were already reported in interval 1.
	r.feed(9)
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0 {
		t.Fatalf("interval 3 loss = %g, want 0 (debt absorbs re-reported losses)", got)
	}
	if debt := r.rx.layers[0].debt; debt != 0 {
		t.Fatalf("debt = %d after absorption, want 0", debt)
	}

	// Interval 4: fresh losses report normally again: 10,13 → 11,12 lost.
	r.feed(10)
	r.feed(13)
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0.5 {
		t.Errorf("interval 4 loss = %g, want 0.5", got)
	}
}

// TestAncientSequenceTreatedAsDuplicate: a packet older than the 64-seq
// window can't be verified against the gap record and must not inflate
// received.
func TestAncientSequenceTreatedAsDuplicate(t *testing.T) {
	r := accountingRig(t)
	r.feed(1)
	r.feed(100) // advance far beyond the window; 98 seqs look lost
	r.feed(2)   // 98 behind lastSeq: unverifiable
	r.rx.tick()
	if r.rx.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", r.rx.Duplicates)
	}
	// expected = 1 + 99, received = 2 → loss 98/100.
	if got := r.rx.LastLoss; got != 0.98 {
		t.Errorf("LastLoss = %g, want 0.98", got)
	}
}

// TestRejoinResetsAccounting: leaving and rejoining a layer starts a fresh
// sequence epoch — no stale window, no stale debt.
func TestRejoinResetsAccounting(t *testing.T) {
	r := accountingRig(t)
	// Build up debt: report 3,4 lost, then have them arrive.
	for _, s := range []int64{1, 2, 5} {
		r.feed(s)
	}
	r.rx.tick()
	for _, s := range []int64{3, 4} {
		r.feed(s)
	}
	r.rx.tick()
	if debt := r.rx.layers[0].debt; debt != -2 {
		t.Fatalf("debt = %d, want -2 before rejoin", debt)
	}

	r.rx.setLevel(0)
	r.rx.setLevel(1)
	if debt := r.rx.layers[0].debt; debt != 0 {
		t.Fatalf("debt = %d after rejoin, want 0", debt)
	}
	// New epoch at a new sequence base: 200 then a real loss at 202.
	r.feed(200)
	r.feed(203)
	r.rx.tick()
	if got := r.rx.LastLoss; got != 0.5 {
		t.Errorf("post-rejoin loss = %g, want 0.5 (2 of 4 lost)", got)
	}
}

// TestStalePacketAfterLeaveIgnoredByAccounting: packets for a left layer
// must not touch counters even when they carry novel sequence numbers.
func TestStalePacketAfterLeaveIgnoredByAccounting(t *testing.T) {
	r := accountingRig(t)
	r.feed(1)
	r.rx.setLevel(0)
	r.feed(2) // leave-latency stragglers
	r.feed(3)
	if got := r.rx.layers[0].received; got != 1 {
		t.Errorf("received = %d, want 1 (stale packets counted)", got)
	}
	if r.rx.Duplicates != 0 && r.rx.Reordered != 0 {
		t.Errorf("stale packets moved dup/reorder counters: %d/%d", r.rx.Duplicates, r.rx.Reordered)
	}
}
