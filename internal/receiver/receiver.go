// Package receiver implements the multicast receiver agent: it subscribes to
// a prefix of a session's layers, measures packet loss and received bytes
// from sequence numbers, periodically reports to the controller agent over
// the (lossy) network, and obeys the controller's subscription suggestions.
// When suggestions stop arriving for long enough — they are real packets and
// can be lost — the receiver falls back to unilateral decisions, as the
// paper prescribes.
package receiver

import (
	"fmt"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
)

// Defaults for the receiver's timers.
const (
	DefaultReportInterval = 500 * sim.Millisecond
	// DefaultUnilateralAfter is how long without a suggestion before the
	// receiver starts acting on its own.
	DefaultUnilateralAfter = 6 * sim.Second
	// DefaultUnilateralLoss is the loss rate that triggers a unilateral
	// layer drop once suggestions have gone quiet. Deliberately low: when
	// the control channel itself is congested (suggestions cross the same
	// links as media), the receiver must shed load on its own or the
	// system deadlocks over-subscribed.
	DefaultUnilateralLoss = 0.10
)

// Change records one subscription-level change, for stability analysis
// (paper Figures 6 and 7).
type Change struct {
	At       sim.Time
	From, To int
}

// Config parameterizes a receiver.
type Config struct {
	Session         int
	MaxLayers       int           // total layers in the session
	InitialLevel    int           // layers joined at Start (>= 0)
	Controller      netsim.NodeID // where to send reports; NoNode disables reporting
	ReportInterval  sim.Time      // 0 means DefaultReportInterval
	UnilateralAfter sim.Time      // 0 means DefaultUnilateralAfter; < 0 disables
	UnilateralLoss  float64       // 0 means DefaultUnilateralLoss
}

// layerState tracks per-layer sequence accounting within one measurement
// interval.
type layerState struct {
	joined   bool
	haveSeq  bool   // whether lastSeq is valid
	lastSeq  int64  // highest sequence seen overall
	window   uint64 // bitmap over (lastSeq-63 .. lastSeq]: bit d set = lastSeq-d received
	received int64  // packets received this interval (duplicates excluded)
	expected int64  // packets expected this interval (from seq gaps)
	bytes    int64  // bytes received this interval (duplicates excluded)
	debt     int64  // <= 0: over-receipt carried across interval boundaries
}

// Receiver is the receiver agent. It implements mcast.Member for data and
// netsim.Agent for control packets.
type Receiver struct {
	cfg    Config
	net    *netsim.Network
	domain *mcast.Domain
	node   *netsim.Node

	level  int
	layers []layerState // index 0 = layer 1

	lastSuggestion sim.Time
	changes        []Change
	reportTicker   *sim.Ticker
	started        bool
	stopped        bool

	// Counters for analysis.
	ReportsSent     int64
	SuggestionsRecv int64
	UnilateralDrops int64
	// Reordered counts late arrivals that filled a sequence gap already
	// charged to expected; Duplicates counts packets discarded because the
	// sequence was already received (or too old to vouch for).
	Reordered  int64
	Duplicates int64

	// LastLoss is the loss rate of the most recent completed interval.
	LastLoss float64
	// OnChange, if set, observes every subscription change as it happens.
	OnChange func(Change)
}

// New creates a receiver at node. Call Start to join the initial layers and
// begin reporting.
func New(net *netsim.Network, domain *mcast.Domain, node *netsim.Node, cfg Config) *Receiver {
	if cfg.MaxLayers <= 0 {
		panic("receiver: MaxLayers must be positive")
	}
	if cfg.InitialLevel < 0 || cfg.InitialLevel > cfg.MaxLayers {
		panic(fmt.Sprintf("receiver: InitialLevel %d out of range 0..%d", cfg.InitialLevel, cfg.MaxLayers))
	}
	if cfg.ReportInterval == 0 {
		cfg.ReportInterval = DefaultReportInterval
	}
	if cfg.UnilateralAfter == 0 {
		cfg.UnilateralAfter = DefaultUnilateralAfter
	}
	if cfg.UnilateralLoss == 0 {
		cfg.UnilateralLoss = DefaultUnilateralLoss
	}
	r := &Receiver{
		cfg:    cfg,
		net:    net,
		domain: domain,
		node:   node,
		layers: make([]layerState, cfg.MaxLayers),
	}
	node.AttachAgent(r)
	return r
}

// sched returns the scheduler owning the receiver node's events: the
// node's shard on a partitioned network. The Start-time Rand() draw is safe
// there because Start runs before the engine does, while the model is still
// single-threaded.
func (r *Receiver) sched() sim.Scheduler { return r.net.SchedulerFor(r.node.ID) }

// Node returns the node the receiver is attached to.
func (r *Receiver) Node() *netsim.Node { return r.node }

// Session returns the session this receiver subscribes to.
func (r *Receiver) Session() int { return r.cfg.Session }

// Level returns the current subscription level (number of layers).
func (r *Receiver) Level() int { return r.level }

// Changes returns the history of subscription changes.
func (r *Receiver) Changes() []Change { return r.changes }

// Start joins the initial layers, registers with the controller, and begins
// the report/watchdog timers.
func (r *Receiver) Start() {
	if r.started {
		return
	}
	r.started = true
	e := r.sched()
	r.lastSuggestion = e.Now()
	r.setLevel(r.cfg.InitialLevel)
	if r.cfg.Controller != netsim.NoNode {
		reg := report.Register{Node: r.node.ID, Session: r.cfg.Session, Level: r.level}
		r.node.SendUnicast(report.NewControlPacket(r.node.ID, r.cfg.Controller, report.RegisterSize, e.Now(), reg))
		// Desynchronize report timers across receivers (RTCP randomizes
		// report times for the same reason): starting every receiver at
		// t=0 would otherwise fire all reports in the same instant, and
		// the synchronized control burst itself perturbs queues.
		offset := sim.Time(e.Rand().Int63n(int64(r.cfg.ReportInterval)))
		e.Schedule(offset, func() {
			if r.stopped {
				return
			}
			r.reportTicker = sim.Every(e, r.cfg.ReportInterval, r.tick)
		})
	}
}

// Stop leaves all layers and halts reporting. A stopped receiver ignores
// any further controller suggestions (they may still be in flight, or keep
// coming until the controller notices the silence); it cannot be restarted.
func (r *Receiver) Stop() {
	r.stopped = true
	if r.reportTicker != nil {
		r.reportTicker.Stop()
		r.reportTicker = nil
	}
	r.setLevel(0)
}

// Depart is the full teardown: leave every subscribed layer group (Stop)
// and tell the controller to forget this receiver. Stop alone leaves the
// controller tracking a ghost until the registration-expiry horizon (5
// intervals); Depart's deregistration packet evicts it from the very next
// algorithm pass and drops any pending mid-interval suggestion resend via
// the registration-generation check. Like Stop, Depart is idempotent and
// the receiver cannot be restarted — rejoining is a new incarnation.
func (r *Receiver) Depart() {
	if r.stopped {
		return
	}
	e := r.sched()
	r.Stop()
	if r.cfg.Controller != netsim.NoNode {
		d := report.Deregister{Node: r.node.ID, Session: r.cfg.Session}
		r.node.SendUnicast(report.NewControlPacket(r.node.ID, r.cfg.Controller, report.DeregisterSize, e.Now(), d))
	}
}

// RecvMulticast implements mcast.Member: account the packet against the
// layer's sequence stream.
//
// Individual links are FIFO, so a steady route delivers in order — but a
// tree repair can switch a receiver to a path with different latency, which
// reorders across the switch and can replay packets the old path already
// delivered. A 64-sequence bitmap behind lastSeq distinguishes the two: a
// late arrival whose sequence is missing from the window fills a gap
// already charged to expected (received goes up, expected does not — the
// gap was counted when the stream jumped past it), while a sequence already
// present is a duplicate and must not inflate received, or it would mask
// real loss elsewhere in the interval. Packets older than the window cannot
// be vouched for and are conservatively treated as duplicates.
func (r *Receiver) RecvMulticast(p *netsim.Packet) {
	if p.Session != r.cfg.Session || p.Layer < 1 || p.Layer > len(r.layers) {
		return
	}
	ls := &r.layers[p.Layer-1]
	if !ls.joined {
		return // stale packet from the leave-latency window
	}
	if !ls.haveSeq {
		ls.haveSeq = true
		ls.lastSeq = p.Seq
		ls.window = 1
		ls.received++
		ls.expected++
		ls.bytes += int64(p.Size)
		return
	}
	switch d := ls.lastSeq - p.Seq; {
	case d < 0:
		// In-order advance; skipped sequences raise expected and stand as
		// gaps in the window until a late arrival fills them.
		adv := uint64(-d)
		if adv < 64 {
			ls.window = ls.window<<adv | 1
		} else {
			ls.window = 1
		}
		ls.expected += -d
		ls.lastSeq = p.Seq
		ls.received++
		ls.bytes += int64(p.Size)
	case d < 64:
		bit := uint64(1) << uint(d)
		if ls.window&bit != 0 {
			r.Duplicates++ // already counted; bit 0 covers d == 0
			return
		}
		ls.window |= bit
		ls.received++
		ls.bytes += int64(p.Size)
		r.Reordered++
	default:
		r.Duplicates++ // beyond the window: unverifiable, assume duplicate
	}
}

// Recv implements netsim.Agent for unicast control packets: apply controller
// suggestions addressed to this receiver+session — either a per-receiver
// Suggestion or this receiver's entry of an aggregated SuggestionBatch whose
// last hop is this node.
func (r *Receiver) Recv(p *netsim.Packet) {
	switch pl := p.Payload.(type) {
	case report.Suggestion:
		if r.stopped || pl.Node != r.node.ID || pl.Session != r.cfg.Session {
			return
		}
		r.SuggestionsRecv++
		r.lastSuggestion = r.sched().Now()
		r.applySuggestion(pl.Level)
	case *report.SuggestionBatch:
		if r.stopped {
			return
		}
		if lvl, ok := pl.Find(r.node.ID, r.cfg.Session); ok {
			r.SuggestionsRecv++
			r.lastSuggestion = r.sched().Now()
			r.applySuggestion(lvl)
		}
	}
}

// applySuggestion moves the subscription toward target: drops happen all at
// once (congestion wants a fast response), but layers are added one at a
// time per suggestion, as the paper's model requires.
func (r *Receiver) applySuggestion(target int) {
	if target < 0 {
		target = 0
	}
	if target > r.cfg.MaxLayers {
		target = r.cfg.MaxLayers
	}
	switch {
	case target < r.level:
		r.setLevel(target)
	case target > r.level:
		r.setLevel(r.level + 1)
	}
}

// setLevel joins/leaves groups to make the subscription exactly lvl layers.
func (r *Receiver) setLevel(lvl int) {
	if lvl == r.level {
		return
	}
	from := r.level
	for l := r.level + 1; l <= lvl; l++ {
		g := r.domain.GroupOf(r.cfg.Session, l)
		if g == netsim.NoGroup {
			panic(fmt.Sprintf("receiver: no group for session %d layer %d", r.cfg.Session, l))
		}
		r.domain.Join(r.node.ID, g, r)
		ls := &r.layers[l-1]
		ls.joined = true
		ls.haveSeq = false
		ls.window = 0
		ls.debt = 0 // a fresh subscription epoch owes nothing
	}
	for l := r.level; l > lvl; l-- {
		g := r.domain.GroupOf(r.cfg.Session, l)
		r.domain.Leave(r.node.ID, g, r)
		r.layers[l-1].joined = false
	}
	r.level = lvl
	ch := Change{At: r.sched().Now(), From: from, To: lvl}
	r.changes = append(r.changes, ch)
	if r.OnChange != nil {
		r.OnChange(ch)
	}
}

// tick closes the measurement interval: compute the loss rate and received
// bytes, send the report, run the unilateral watchdog, and reset counters.
//
// A gap charged to expected in one interval can be filled by a late arrival
// in the next, leaving that later interval with received > expected. The
// negative remainder is carried per layer as debt (<= 0) and consumed by
// future intervals' losses, so the loss rate stays in [0, 1] every interval
// while the cumulative reported losses still sum to exactly
// total-expected - total-received.
func (r *Receiver) tick() {
	e := r.sched()
	var lost, expected, bytes int64
	for i := range r.layers {
		ls := &r.layers[i]
		l := ls.expected - ls.received + ls.debt
		if l < 0 {
			ls.debt = l
			l = 0
		} else {
			ls.debt = 0
		}
		lost += l
		expected += ls.expected
		bytes += ls.bytes
		ls.received, ls.expected, ls.bytes = 0, 0, 0
	}
	loss := 0.0
	if expected > 0 {
		loss = float64(lost) / float64(expected)
	}
	r.LastLoss = loss

	rep := report.LossReport{
		Node:     r.node.ID,
		Session:  r.cfg.Session,
		Level:    r.level,
		LossRate: loss,
		Bytes:    bytes,
		Interval: r.cfg.ReportInterval,
		Sent:     e.Now(),
	}
	r.node.SendUnicast(report.NewControlPacket(r.node.ID, r.cfg.Controller, report.LossReportSize, e.Now(), rep))
	r.ReportsSent++

	// Unilateral fallback: the controller has gone quiet and we are losing
	// heavily — shed the top layer ourselves.
	if r.cfg.UnilateralAfter > 0 &&
		e.Now()-r.lastSuggestion > r.cfg.UnilateralAfter &&
		loss > r.cfg.UnilateralLoss && r.level > 1 {
		r.UnilateralDrops++
		r.setLevel(r.level - 1)
		// Back off before acting unilaterally again.
		r.lastSuggestion = e.Now()
	}
}
