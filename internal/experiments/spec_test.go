package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"toposense/internal/sim"
)

func TestDefaults(t *testing.T) {
	d := PaperDefaults()
	if got := d.Dur(0); got != PaperDuration {
		t.Errorf("Dur(0) = %v, want %v", got, PaperDuration)
	}
	if got := d.Dur(7 * sim.Second); got != 7*sim.Second {
		t.Errorf("Dur(7s) = %v", got)
	}
	if got := d.Tr(Traffic{}); got.Name != CBR.Name {
		t.Errorf("Tr(zero) = %q, want CBR", got.Name)
	}
	if got := d.Tr(VBR6); got.Name != VBR6.Name {
		t.Errorf("Tr(VBR6) = %q", got.Name)
	}
	if got := d.TrafficSweep(nil); len(got) != len(AllTraffic) {
		t.Errorf("TrafficSweep(nil) has %d entries", len(got))
	}
	if got := d.SeedCount(0); got != 3 {
		t.Errorf("SeedCount(0) = %d, want 3", got)
	}
	if got := d.SeedCount(9); got != 9 {
		t.Errorf("SeedCount(9) = %d", got)
	}
	if got := ShortDefaults().Duration; got != 600*sim.Second {
		t.Errorf("ShortDefaults duration = %v", got)
	}
}

func TestNewSpecAppliesDefaultDuration(t *testing.T) {
	s := NewSpec("test", "t", 1, 0, func(m *Meter) (any, error) { return nil, nil })
	if s.Duration != PaperDuration {
		t.Errorf("zero duration not defaulted: %v", s.Duration)
	}
}

func TestExecuteFillsMetadata(t *testing.T) {
	spec := Fig6Specs(Fig6Config{
		Seed: 1, Duration: 30 * sim.Second,
		PerSet: []int{1}, Traffic: []Traffic{CBR},
	})[0]
	res := spec.Execute(0)
	if res.Failed() {
		t.Fatalf("run failed: %s", res.Err)
	}
	if res.Events == 0 {
		t.Error("Events = 0; meter saw no engine")
	}
	if res.Packets == 0 {
		t.Error("Packets = 0; meter saw no network")
	}
	if res.WallSeconds <= 0 || res.EventsPerSecond <= 0 {
		t.Errorf("wall metadata missing: %+v", res)
	}
	if res.SimSeconds != 30 {
		t.Errorf("SimSeconds = %v, want 30", res.SimSeconds)
	}
	if rows, ok := res.Rows.([]StabilityRow); !ok || len(rows) != 1 {
		t.Errorf("rows: %#v", res.Rows)
	}
}

func TestGatherRowsErrors(t *testing.T) {
	failed := []Result{{Name: "x", Err: "boom"}}
	if _, err := GatherRows[StabilityRow](failed); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("failed result not surfaced: %v", err)
	}
	mismatch := []Result{{Name: "y", Rows: []int{1}}}
	if _, err := GatherRows[StabilityRow](mismatch); err == nil || !strings.Contains(err.Error(), "want") {
		t.Errorf("type mismatch not surfaced: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate registry name %q", n)
		}
		seen[n] = true
		ex, ok := Lookup(n)
		if !ok || ex.Name != n {
			t.Errorf("Lookup(%q) = %+v, %v", n, ex, ok)
		}
		if ex.Specs == nil || ex.Render == nil {
			t.Errorf("entry %q incomplete", n)
		}
	}
	for _, want := range []string{"6", "9", "baseline", "extensions", "variance"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown name")
	}
}

func TestRegistryRender(t *testing.T) {
	ex, ok := Lookup("6")
	if !ok {
		t.Fatal("no figure 6")
	}
	specs := Fig6Specs(Fig6Config{
		Seed: 1, Duration: 30 * sim.Second,
		PerSet: []int{1}, Traffic: []Traffic{CBR},
	})
	out, err := ex.Render(ExecuteAll(specs))
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "receivers") {
		t.Errorf("render output unexpected:\n%s", out)
	}
	// A failed result must turn into a render error, not a bogus table.
	if _, err := ex.Render([]Result{{Name: "x", Err: "boom"}}); err == nil {
		t.Error("render swallowed a failed result")
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	specs := Fig6Specs(Fig6Config{
		Seed: 1, Duration: 30 * sim.Second,
		PerSet: []int{1}, Traffic: []Traffic{CBR},
	})
	ex := Export{
		Tool:        "topobench",
		GeneratedAt: "2026-01-01T00:00:00Z",
		GoMaxProcs:  1,
		Parallelism: 1,
		Seed:        1,
		WallSeconds: 0.5,
		Results:     ExecuteAll(specs),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ex); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	results, ok := back["results"].([]any)
	if !ok || len(results) != 1 {
		t.Fatalf("results: %#v", back["results"])
	}
	r0 := results[0].(map[string]any)
	for _, key := range []string{"name", "figure", "seed", "wall_seconds", "events", "events_per_second", "packets_forwarded", "rows"} {
		if _, ok := r0[key]; !ok {
			t.Errorf("result JSON missing %q: %v", key, r0)
		}
	}
	if r0["name"] != "fig6/rx=2/CBR" {
		t.Errorf("name = %v", r0["name"])
	}
}

func TestFig9ResultMarshalJSON(t *testing.T) {
	res := RunFig9(Fig9Config{Seed: 1, Duration: 60 * sim.Second, Sessions: 2})
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back struct {
		WindowFromS float64       `json:"window_from_s"`
		Sessions    []Fig9Summary `json:"sessions"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Sessions) != 2 {
		t.Errorf("sessions in JSON: %d, want 2", len(back.Sessions))
	}
	for _, s := range back.Sessions {
		if s.MeanLevel <= 0 {
			t.Errorf("session %d mean level %v", s.Session, s.MeanLevel)
		}
	}
}
