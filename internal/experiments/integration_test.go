package experiments

import (
	"testing"

	"toposense/internal/core"
	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

// These are end-to-end scenario tests across the full stack: engine,
// network, multicast, sources, receivers, discovery, controller.

func TestIntegrationDeterminism(t *testing.T) {
	run := func() []int {
		w := NewWorldB(3, WorldConfig{Seed: 99, Traffic: VBR3})
		w.Run(90 * sim.Second)
		var levels []int
		for s := range w.Receivers {
			levels = append(levels, w.Receivers[s][0].Level())
			for _, tr := range w.Traces[s] {
				levels = append(levels, tr.Changes(0, 90*sim.Second))
			}
		}
		levels = append(levels, int(w.Engine.Fired()%1_000_000))
		return levels
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestIntegrationSeedsDiffer(t *testing.T) {
	// Different seeds must actually change the run (the RNG is wired
	// through): compare event counts.
	w1 := NewWorldB(2, WorldConfig{Seed: 1, Traffic: VBR3})
	w1.Run(60 * sim.Second)
	w2 := NewWorldB(2, WorldConfig{Seed: 2, Traffic: VBR3})
	w2.Run(60 * sim.Second)
	if w1.Engine.Fired() == w2.Engine.Fired() {
		t.Skip("identical event counts are possible but astronomically unlikely; rerun with other seeds if this ever fails twice")
	}
}

func TestIntegrationLevelsAlwaysInRange(t *testing.T) {
	w := NewWorldB(4, WorldConfig{Seed: 5, Traffic: VBR6})
	w.Run(300 * sim.Second)
	for s := range w.Traces {
		for _, tr := range w.Traces[s] {
			for _, pt := range tr.Points() {
				if pt.Level < 0 || pt.Level > 6 {
					t.Fatalf("session %d level %d out of range at %v", s, pt.Level, pt.At)
				}
			}
		}
	}
}

func TestIntegrationReceiverStopMidRun(t *testing.T) {
	// One of two receivers in the fast set leaves mid-run; the session
	// keeps serving the others and nothing wedges.
	w := NewWorldA(2, WorldConfig{Seed: 3, Traffic: CBR})
	w.Start()
	w.Engine.RunUntil(60 * sim.Second)
	leaver := w.Receivers[0][2] // first receiver of set 2
	leaver.Stop()
	w.Engine.RunUntil(180 * sim.Second)
	if leaver.Level() != 0 {
		t.Errorf("stopped receiver at level %d", leaver.Level())
	}
	stayer := w.Receivers[0][3]
	if stayer.Level() < 3 {
		t.Errorf("remaining fast receiver dragged to %d", stayer.Level())
	}
	slow := w.Receivers[0][0]
	if slow.Level() < 1 || slow.Level() > 3 {
		t.Errorf("slow receiver at %d", slow.Level())
	}
}

func TestIntegrationLateJoiner(t *testing.T) {
	// A world built with a receiver that only starts at t=120s: it must
	// register, climb, and converge like the others.
	w := NewWorldB(2, WorldConfig{Seed: 8, Traffic: CBR})
	// Start everything except session 1's receiver.
	for _, s := range w.Sources {
		s.Start()
	}
	w.Controller.Start()
	w.Receivers[0][0].Start()
	w.Engine.RunUntil(120 * sim.Second)
	late := w.Receivers[1][0]
	late.Start()
	w.Engine.RunUntil(420 * sim.Second)
	if got := late.Level(); got < 3 {
		t.Errorf("late joiner stuck at %d", got)
	}
	if got := w.Receivers[0][0].Level(); got < 3 {
		t.Errorf("incumbent pushed down to %d", got)
	}
}

func TestIntegrationTieredTopologyConverges(t *testing.T) {
	e := sim.NewEngine(13)
	b := topology.MustGenerate(e, &topology.TieredConfig{
		Seed:             13,
		FanOut:           []int{2, 2},
		Bandwidth:        []float64{20e6, 500e3},
		ReceiversPerLeaf: 2,
	})
	w := NewWorld(e, b, WorldConfig{Seed: 13, Traffic: CBR})
	w.Run(300 * sim.Second)
	traces, optima := w.AllTraces()
	for i, tr := range traces {
		lvl := tr.LevelAt(300 * sim.Second)
		if diff := lvl - optima[i]; diff < -2 || diff > 2 {
			t.Errorf("receiver %d at %d, optimal %d", i, lvl, optima[i])
		}
	}
}

func TestIntegrationExtremeStalenessStillSafe(t *testing.T) {
	// Even with absurdly stale topology (60 s) nothing crashes and
	// receivers keep at least the base layer.
	w := NewWorldA(2, WorldConfig{Seed: 4, Traffic: VBR3, Staleness: 60 * sim.Second})
	w.Run(240 * sim.Second)
	for _, rxs := range w.Receivers {
		for _, rx := range rxs {
			if rx.Level() < 1 {
				t.Errorf("receiver %v starved at level %d", rx.Node(), rx.Level())
			}
		}
	}
}

func TestIntegrationControlTrafficIsLinear(t *testing.T) {
	// The paper: "the number of information packets exchanged in every
	// interval is linear with respect to the number of receivers and
	// sessions." Doubling receivers must not quadruple suggestions.
	count := func(per int) int64 {
		w := NewWorldA(per, WorldConfig{Seed: 2, Traffic: CBR})
		w.Run(120 * sim.Second)
		return w.Controller.SuggestionsSent
	}
	c2, c4 := count(2), count(4)
	if c4 > 3*c2 {
		t.Errorf("suggestions grew superlinearly: %d -> %d", c2, c4)
	}
}

func TestIntegrationAlgorithmOverrides(t *testing.T) {
	// Custom algorithm config flows through the world builder.
	alg := core.Config{
		PThreshold: 0.2,
		Interval:   8 * sim.Second,
	}
	w := NewWorldB(2, WorldConfig{Seed: 1, Traffic: CBR, Alg: alg})
	w.Run(65 * sim.Second)
	if got := w.Controller.Algorithm().Config().Interval; got != 8*sim.Second {
		t.Errorf("interval override lost: %v", got)
	}
	// 65 s / 8 s interval = 8 steps.
	if w.Controller.StepsRun != 8 {
		t.Errorf("StepsRun = %d, want 8", w.Controller.StepsRun)
	}
}

func TestIntegrationBottleneckDropsObserved(t *testing.T) {
	// The instrumented bottleneck links must actually drop packets during
	// the exploration phase — otherwise the whole control problem is
	// vacuous.
	w := NewWorldB(4, WorldConfig{Seed: 1, Traffic: CBR})
	w.Run(60 * sim.Second)
	if w.Build.Bottlenecks[0].Stats().Dropped == 0 {
		t.Error("no drops on the shared bottleneck during exploration")
	}
}

func TestIntegrationProbeDiscoveryConverges(t *testing.T) {
	// The full control loop works when topology comes from hop-by-hop
	// mtrace-style probes instead of the oracle.
	w := NewWorldB(2, WorldConfig{Seed: 6, Traffic: CBR, ProbeDiscovery: true})
	w.Run(240 * sim.Second)
	for s := range w.Receivers {
		if got := w.Receivers[s][0].Level(); got < 3 || got > 5 {
			t.Errorf("session %d at level %d with probe discovery, want ~4", s, got)
		}
	}
	if w.Tool.ProbePackets == 0 {
		t.Error("probe mode never probed")
	}
}

func TestIntegrationProbeVsOracleSimilar(t *testing.T) {
	run := func(probe bool) float64 {
		w := NewWorldA(2, WorldConfig{Seed: 7, Traffic: CBR, ProbeDiscovery: probe})
		w.Run(300 * sim.Second)
		traces, optima := w.AllTraces()
		return metrics.MeanRelativeDeviation(traces, optima, 0, 300*sim.Second)
	}
	oracle, probe := run(false), run(true)
	// Probe discovery trails reality by a path RTT; quality must stay in
	// the same regime (within 3x or 0.1 absolute).
	if probe > 3*oracle && probe-oracle > 0.1 {
		t.Errorf("probe discovery collapsed quality: oracle %.3f, probe %.3f", oracle, probe)
	}
}
