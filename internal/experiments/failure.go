package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"toposense/internal/faults"
	"toposense/internal/plot"
	"toposense/internal/sim"
	"toposense/internal/trace"
)

// FailureConfig parameterizes the link failure/repair experiment: Topology
// B with the shared bottleneck cut for a fixed outage window mid-run. The
// paper varies only how stale the controller's information is; this run
// varies the network itself and measures how long the sessions take to
// return to their pre-failure subscription levels.
type FailureConfig struct {
	Seed     int64
	Sessions int      // 0 = the paper's 4 competing sessions
	Traffic  Traffic  // zero = CBR
	Duration sim.Time // 0 = 600 s
	FailAt   sim.Time // when the bottleneck fails; 0 = Duration/3
	Outage   sim.Time // how long it stays down; 0 = 60 s
	Sample   sim.Time // sampling period; 0 = 500 ms
}

func (c *FailureConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.Sessions == 0 {
		c.Sessions = 4
	}
	if c.FailAt == 0 {
		c.FailAt = c.Duration / 3
	}
	if c.Outage == 0 {
		c.Outage = 60 * sim.Second
	}
	if c.Sample == 0 {
		c.Sample = 500 * sim.Millisecond
	}
}

// settleWindow is the span used to average levels before the failure and at
// the end of the run, and to window throughput comparisons.
const settleWindow = 30 * sim.Second

// FailureRow summarizes one session's ride through the outage.
type FailureRow struct {
	Session int `json:"session"`
	// PreLevel is the mean subscription level over the 30 s before the
	// failure.
	PreLevel float64 `json:"pre_level"`
	// MinLevel is the lowest level between the failure and 60 s past the
	// repair — the depth of the post-repair loss-spike dip.
	MinLevel float64 `json:"min_level"`
	// PostLevel is the mean level over the final 30 s of the run.
	PostLevel float64 `json:"post_level"`
	// RecoverS is how many seconds after the repair the level was last seen
	// below its pre-failure value (0 = never dipped after repair; -1 =
	// still below at the end of the run).
	RecoverS float64 `json:"recover_s"`
	// Recovered reports PostLevel ~ PreLevel.
	Recovered bool `json:"recovered"`
}

// FailureResult carries the rows plus the event bookkeeping and sampled
// series the report plots.
type FailureResult struct {
	FailAt   sim.Time
	RepairAt sim.Time
	Rows     []FailureRow

	// Levels[s] is session s's sampled subscription level; Throughput is
	// the bottleneck's delivered rate in Mbit/s per sample.
	Levels     []*trace.Series
	Throughput *trace.Series

	// Control-plane work the event caused.
	TreeRepairs  int64 `json:"tree_repairs"`
	Grafts       int64 `json:"grafts"`
	Prunes       int64 `json:"prunes"`
	LinkFailures int64 `json:"link_failures"`
	LinkRepairs  int64 `json:"link_repairs"`
	Unroutable   int64 `json:"unroutable"`

	// Bottleneck throughput means (Mbit/s) before, during and after the
	// outage.
	ThroughputPre    float64 `json:"throughput_pre_mbps"`
	ThroughputDuring float64 `json:"throughput_during_mbps"`
	ThroughputPost   float64 `json:"throughput_post_mbps"`
}

// FailureSpecs enumerates the experiment as a single run whose rows are the
// *FailureResult.
func FailureSpecs(cfg FailureConfig) []Spec {
	cfg.normalize()
	return []Spec{NewSpec("fig_failure",
		fmt.Sprintf("fig_failure/sessions=%d/%s/outage=%.0fs", cfg.Sessions, cfg.Traffic.Name, cfg.Outage.Seconds()),
		cfg.Seed, cfg.Duration,
		func(m *Meter) (any, error) {
			w := NewWorldB(cfg.Sessions, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic})
			m.ObserveWorld(w)

			// Cut both directions of the shared bottleneck, as a physical
			// link failure would.
			bl := w.Build.Bottlenecks[0]
			inj := faults.New(w.Net)
			inj.Outage(cfg.FailAt, cfg.Outage, bl, bl.Reverse())

			res := &FailureResult{FailAt: cfg.FailAt, RepairAt: cfg.FailAt + cfg.Outage}
			sampler := trace.NewSampler(w.Engine, cfg.Sample)
			for s := range w.Receivers {
				rx := w.Receivers[s][0]
				sampler.Probe(fmt.Sprintf("session%d/level", s), func() float64 { return float64(rx.Level()) })
			}
			var lastTx int64
			perSample := cfg.Sample.Seconds()
			sampler.Probe("bottleneck/mbps", func() float64 {
				tx := bl.Stats().TxBytes
				mbps := float64(tx-lastTx) * 8 / perSample / 1e6
				lastTx = tx
				return mbps
			})
			sampler.Start()
			w.Run(cfg.Duration)
			sampler.Stop()

			for s := 0; s < cfg.Sessions; s++ {
				lv := sampler.Series(fmt.Sprintf("session%d/level", s))
				res.Levels = append(res.Levels, lv)
				res.Rows = append(res.Rows, failureRow(s, lv, res.FailAt, res.RepairAt, cfg.Duration))
			}
			res.Throughput = sampler.Series("bottleneck/mbps")
			res.ThroughputPre = res.Throughput.Window(res.FailAt-settleWindow, res.FailAt).Mean()
			res.ThroughputDuring = res.Throughput.Window(res.FailAt+sim.Second, res.RepairAt).Mean()
			res.ThroughputPost = res.Throughput.Window(cfg.Duration-settleWindow, cfg.Duration).Mean()
			res.TreeRepairs = w.Domain.Repairs
			res.Grafts = w.Domain.Grafts
			res.Prunes = w.Domain.Prunes
			res.LinkFailures = inj.Failures
			res.LinkRepairs = inj.Repairs
			res.Unroutable = w.Net.Unroutable
			return res, nil
		})}
}

// failureRow reduces one session's level series to its recovery summary.
func failureRow(session int, lv *trace.Series, failAt, repairAt, duration sim.Time) FailureRow {
	row := FailureRow{Session: session, RecoverS: -1}
	if lv == nil || lv.Len() == 0 {
		return row
	}
	row.PreLevel = lv.Window(failAt-settleWindow, failAt).Mean()
	row.PostLevel = lv.Window(duration-settleWindow, duration).Mean()

	dip := lv.Window(failAt, repairAt+60*sim.Second)
	min := math.Inf(1)
	for i := 0; i < dip.Len(); i++ {
		if _, v := dip.At(i); v < min {
			min = v
		}
	}
	if !math.IsInf(min, 1) {
		row.MinLevel = min
	}

	// Recovery time: the last moment after the repair the level sat below
	// its pre-failure value. 0 means it never dipped below after repair.
	pre := math.Round(row.PreLevel)
	tail := lv.Window(repairAt, duration)
	row.RecoverS = 0
	for i := 0; i < tail.Len(); i++ {
		if at, v := tail.At(i); v < pre {
			row.RecoverS = (at - repairAt).Seconds()
			if i == tail.Len()-1 {
				row.RecoverS = -1 // still down at the end of the run
			}
		}
	}
	row.Recovered = row.PostLevel >= row.PreLevel-0.5
	return row
}

// RunFailure executes the experiment and returns its result.
func RunFailure(cfg FailureConfig) *FailureResult {
	res := FailureSpecs(cfg)[0].Execute(0)
	if res.Failed() {
		panic("experiments: " + res.Err)
	}
	return res.Rows.(*FailureResult)
}

// Table renders the per-session recovery summary.
func (r *FailureResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("fig_failure: bottleneck outage %.0f-%.0f s",
			r.FailAt.Seconds(), r.RepairAt.Seconds()),
		Header: []string{"session", "pre lvl", "min lvl", "post lvl", "recover (s)", "recovered"},
	}
	for _, row := range r.Rows {
		rec := fmt.Sprintf("%.1f", row.RecoverS)
		if row.RecoverS < 0 {
			rec = "never"
		}
		t.AddRow(fmt.Sprintf("%d", row.Session),
			fmt.Sprintf("%.2f", row.PreLevel),
			fmt.Sprintf("%.1f", row.MinLevel),
			fmt.Sprintf("%.2f", row.PostLevel),
			rec,
			fmt.Sprintf("%v", row.Recovered))
	}
	return t
}

// Plot renders the sessions' subscription levels over the full run.
func (r *FailureResult) Plot(width, height int) string {
	return plot.Line(r.Levels, width, height)
}

// Summary reports the event bookkeeping and throughput through the outage.
func (r *FailureResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link failures %d, repairs %d; tree repairs %d (grafts %d, prunes %d); unroutable control packets %d\n",
		r.LinkFailures, r.LinkRepairs, r.TreeRepairs, r.Grafts, r.Prunes, r.Unroutable)
	fmt.Fprintf(&b, "bottleneck throughput: %.2f Mbps before, %.2f during outage, %.2f after recovery\n",
		r.ThroughputPre, r.ThroughputDuring, r.ThroughputPost)
	return b.String()
}

// MarshalJSON exports the outage window, rows and scalar stats; the raw
// sampled series stay out of the JSON (they are plot inputs, not results).
func (r *FailureResult) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		FailAtS          float64      `json:"fail_at_s"`
		RepairAtS        float64      `json:"repair_at_s"`
		Sessions         []FailureRow `json:"sessions"`
		TreeRepairs      int64        `json:"tree_repairs"`
		Grafts           int64        `json:"grafts"`
		Prunes           int64        `json:"prunes"`
		LinkFailures     int64        `json:"link_failures"`
		LinkRepairs      int64        `json:"link_repairs"`
		Unroutable       int64        `json:"unroutable"`
		ThroughputPre    float64      `json:"throughput_pre_mbps"`
		ThroughputDuring float64      `json:"throughput_during_mbps"`
		ThroughputPost   float64      `json:"throughput_post_mbps"`
	}{
		r.FailAt.Seconds(), r.RepairAt.Seconds(), r.Rows,
		r.TreeRepairs, r.Grafts, r.Prunes, r.LinkFailures, r.LinkRepairs,
		r.Unroutable, r.ThroughputPre, r.ThroughputDuring, r.ThroughputPost,
	})
}
