package experiments

import (
	"fmt"
	"math/rand"

	"toposense/internal/receiver"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

// Churn: receivers arriving and departing mid-session. The paper's
// architecture targets long-lived sessions but receivers register and
// leave freely ("Potential recipients of multicast traffic register
// themselves with the controller agent"); this experiment stresses the
// machinery that makes that safe — registration expiry, group-leave
// latency, back-off state garbage collection — and checks that a stable
// reference receiver is not disturbed by its neighbours' churn.

// ChurnRow summarizes one churn intensity.
type ChurnRow struct {
	MeanOn, MeanOff sim.Time
	Arrivals        int
	// RefDeviation is the always-on reference receiver's deviation — churn
	// around it must not wreck its subscription.
	RefDeviation float64
	// FinalActive counts churning receivers subscribed (>= base) at the end
	// of the run, and FinalTotal how many were in an on-period.
	FinalActive, FinalTotal int
}

// ChurnConfig parameterizes the churn experiment.
type ChurnConfig struct {
	Seed     int64
	Duration sim.Time // 0 = 600 s
	Slots    int      // churning receiver slots; 0 = 4
	Traffic  Traffic  // zero = CBR
}

func (c *ChurnConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.Slots == 0 {
		c.Slots = 4
	}
}

// ChurnSpecs sweeps churn intensity on Topology A's fast set, one run per
// intensity: one always-on reference receiver plus Slots receivers cycling
// through exponential on/off periods.
func ChurnSpecs(cfg ChurnConfig) []Spec {
	cfg.normalize()
	intensities := []struct {
		name    string
		on, off sim.Time
	}{
		{"gentle", 180 * sim.Second, 90 * sim.Second},
		{"moderate", 90 * sim.Second, 45 * sim.Second},
		{"heavy", 45 * sim.Second, 20 * sim.Second},
	}
	var specs []Spec
	for _, in := range intensities {
		specs = append(specs, NewSpec("churn",
			"churn/"+in.name, cfg.Seed, cfg.Duration,
			func(m *Meter) (any, error) {
				return []ChurnRow{runChurnOnce(cfg, in.on, in.off, m)}, nil
			}))
	}
	return specs
}

// RunChurn runs the churn sweep by executing its specs serially.
func RunChurn(cfg ChurnConfig) []ChurnRow {
	return mustGather[ChurnRow](ExecuteAll(ChurnSpecs(cfg)))
}

func runChurnOnce(cfg ChurnConfig, meanOn, meanOff sim.Time, m *Meter) ChurnRow {
	e := sim.NewEngine(cfg.Seed)
	// Fast set large enough for the reference + churners; slow set minimal.
	b := topology.MustGenerate(e, &topology.AConfig{ReceiversPerSet: cfg.Slots + 1})
	w := NewWorld(e, b, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic})
	m.Observe(e, b.Net)

	// The world wires receivers for every node; we run the slow set and
	// the first fast receiver (the reference) as-is, and replace the other
	// fast receivers with churn-managed ones.
	refIdx := cfg.Slots + 1 // first receiver of set 2
	w.Start()
	churnNodes := b.Receivers[0][refIdx+1:]
	for _, rxs := range w.Receivers {
		for i, rx := range rxs {
			if i > refIdx {
				rx.Stop() // churn slots are managed below
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	row := ChurnRow{MeanOn: meanOn, MeanOff: meanOff}
	active := make([]*receiver.Receiver, len(churnNodes))

	expDelay := func(mean sim.Time) sim.Time {
		d := sim.Time(rng.ExpFloat64() * float64(mean))
		if d < sim.Second {
			d = sim.Second
		}
		return d
	}
	var schedule func(slot int, arriving bool)
	schedule = func(slot int, arriving bool) {
		if arriving {
			e.Schedule(expDelay(meanOff), func() {
				row.Arrivals++
				rx := receiver.New(w.Net, w.Domain, churnNodes[slot], receiver.Config{
					Session: 0, MaxLayers: 6, InitialLevel: 1, Controller: b.Controller.ID,
				})
				rx.Start()
				active[slot] = rx
				schedule(slot, false)
			})
			return
		}
		e.Schedule(expDelay(meanOn), func() {
			if active[slot] != nil {
				active[slot].Stop()
				active[slot] = nil
			}
			schedule(slot, true)
		})
	}
	for slot := range churnNodes {
		schedule(slot, true)
	}

	e.RunUntil(cfg.Duration)

	refTrace := w.Traces[0][refIdx]
	refOptimal := b.Optimal[0][refIdx]
	row.RefDeviation = refTrace.RelativeDeviation(refOptimal, 0, cfg.Duration)
	for _, rx := range active {
		if rx == nil {
			continue
		}
		row.FinalTotal++
		if rx.Level() >= 1 {
			row.FinalActive++
		}
	}
	return row
}

// ChurnTable renders the sweep.
func ChurnTable(rows []ChurnRow) *Table {
	t := &Table{
		Title:  "Receiver churn on Topology A's fast set (reference receiver must stay stable)",
		Header: []string{"mean on/off", "arrivals", "ref deviation", "active at end"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.0fs/%.0fs", r.MeanOn.Seconds(), r.MeanOff.Seconds()),
			fmt.Sprintf("%d", r.Arrivals),
			fmt.Sprintf("%.3f", r.RefDeviation),
			fmt.Sprintf("%d/%d", r.FinalActive, r.FinalTotal),
		)
	}
	return t
}
