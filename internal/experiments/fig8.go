package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// FairnessRow is one point of Figure 8: the mean relative deviation from
// the optimal subscription across all sessions, over the first and second
// halves of the run, plus how much of the shared link's capacity was
// actually used — the paper asks for bandwidth "fairly and fully
// utilized", and a scheme could be fair by starving everyone.
type FairnessRow struct {
	Sessions  int
	Traffic   string
	DevFirst  float64 // 0 – 600 s
	DevSecond float64 // 600 – 1200 s
	// Utilization is delivered bits on the shared link over the whole run
	// divided by capacity x duration.
	Utilization float64
}

// Fig8Config parameterizes the inter-session fairness experiment.
type Fig8Config struct {
	Seed     int64
	Duration sim.Time  // 0 = the paper's 1200 s (halved into two windows)
	Sessions []int     // nil = {2, 4, 8, 16}
	Traffic  []Traffic // nil = AllTraffic
}

func (c *Fig8Config) normalize() {
	d := PaperDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.TrafficSweep(c.Traffic)
	if c.Sessions == nil {
		c.Sessions = []int{2, 4, 8, 16}
	}
}

// Fig8Specs enumerates Figure 8 ("Fairness in Topology B") as independent
// runs, one per (session count, traffic model) point: the mean relative
// deviation from the optimal 4-layer subscription over both halves of the
// run. Small values in both windows mean TopoSense shares the link fairly
// regardless of when you look.
func Fig8Specs(cfg Fig8Config) []Spec {
	cfg.normalize()
	half := cfg.Duration / 2
	var specs []Spec
	for _, sessions := range cfg.Sessions {
		for _, tr := range cfg.Traffic {
			specs = append(specs, NewSpec("8",
				fmt.Sprintf("fig8/sessions=%d/%s", sessions, tr.Name),
				cfg.Seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := NewWorldB(sessions, WorldConfig{Seed: cfg.Seed, Traffic: tr})
					m.ObserveWorld(w)
					w.Run(cfg.Duration)
					traces, optima := w.AllTraces()
					shared := w.Build.Bottlenecks[0]
					capacityBits := shared.Bandwidth * cfg.Duration.Seconds()
					return []FairnessRow{{
						Sessions:    sessions,
						Traffic:     tr.Name,
						DevFirst:    metrics.MeanRelativeDeviation(traces, optima, 0, half),
						DevSecond:   metrics.MeanRelativeDeviation(traces, optima, half, cfg.Duration),
						Utilization: float64(shared.Stats().TxBytes) * 8 / capacityBits,
					}}, nil
				}))
		}
	}
	return specs
}

// RunFig8 reproduces Figure 8 by executing its specs serially.
func RunFig8(cfg Fig8Config) []FairnessRow {
	return mustGather[FairnessRow](ExecuteAll(Fig8Specs(cfg)))
}

// FairnessTable renders Figure 8 rows.
func FairnessTable(rows []FairnessRow) *Table {
	t := &Table{
		Title:  "Figure 8: inter-session fairness in Topology B (mean relative deviation from optimal)",
		Header: []string{"sessions", "traffic", "dev 0-1/2", "dev 1/2-end", "link utilization"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Sessions),
			r.Traffic,
			fmt.Sprintf("%.3f", r.DevFirst),
			fmt.Sprintf("%.3f", r.DevSecond),
			fmt.Sprintf("%.1f%%", r.Utilization*100),
		)
	}
	return t
}
