package experiments

import (
	"fmt"

	"toposense/internal/core"
	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

// AblationRow reports one system variant's quality on the standard
// ablation scenario (Topology B, VBR(P=3) — the configuration where every
// mechanism earns its keep).
type AblationRow struct {
	Variant    string
	Deviation  float64
	MaxChanges int
	MeanLoss   float64
}

// AblationConfig parameterizes the ablation sweep.
type AblationConfig struct {
	Seed     int64
	Duration sim.Time // 0 = the paper's 1200 s
	Sessions int      // 0 = 4
	Traffic  Traffic  // zero = VBR(P=3)
}

func (c *AblationConfig) normalize() {
	d := PaperDefaults()
	d.Traffic = VBR3
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.Sessions == 0 {
		c.Sessions = 4
	}
}

// ablationVariant describes one toggled configuration.
type ablationVariant struct {
	name          string
	alg           func(*core.Config)
	disableResend bool
}

// AblationSpecs quantifies the contribution of each engineering decision
// documented in DESIGN.md by disabling them one at a time, one run per
// variant:
//
//	full            — the complete system
//	no-cooldown     — reductions may compound on stale drain feedback
//	no-backoff      — dropped layers may be re-probed immediately
//	pin-any-link    — capacity pinning without the two-observer guard
//	no-resend       — suggestions sent once per interval only
func AblationSpecs(cfg AblationConfig) []Spec {
	cfg.normalize()
	variants := []ablationVariant{
		{name: "full"},
		{name: "no-cooldown", alg: func(c *core.Config) { c.DisableCooldown = true }},
		{name: "no-backoff", alg: func(c *core.Config) { c.DisableBackoff = true }},
		{name: "pin-any-link", alg: func(c *core.Config) { c.PinSingleObserver = true }},
		{name: "no-resend", disableResend: true},
	}
	var specs []Spec
	for _, v := range variants {
		specs = append(specs, NewSpec("ablation",
			"ablation/"+v.name, cfg.Seed, cfg.Duration,
			func(m *Meter) (any, error) {
				algCfg := core.Config{}
				if v.alg != nil {
					v.alg(&algCfg)
				}
				e := sim.NewEngine(cfg.Seed)
				b := topology.MustGenerate(e, &topology.BConfig{Sessions: cfg.Sessions})
				w := NewWorld(e, b, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic, Alg: algCfg})
				m.ObserveWorld(w)
				w.Controller.DisableResend = v.disableResend
				lossSum, lossN := 0.0, 0
				sim.Every(sim.GlobalOf(w.Engine), sim.Second, func() {
					for _, rxs := range w.Receivers {
						lossSum += rxs[0].LastLoss
						lossN++
					}
				})
				w.Run(cfg.Duration)
				traces, optima := w.AllTraces()
				row := AblationRow{
					Variant:    v.name,
					Deviation:  metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
					MaxChanges: metrics.MaxChanges(traces, 0, cfg.Duration),
				}
				if lossN > 0 {
					row.MeanLoss = lossSum / float64(lossN)
				}
				return []AblationRow{row}, nil
			}))
	}
	return specs
}

// RunAblation runs the ablation sweep by executing its specs serially.
func RunAblation(cfg AblationConfig) []AblationRow {
	return mustGather[AblationRow](ExecuteAll(AblationSpecs(cfg)))
}

// AblationTable renders the ablation sweep.
func AblationTable(rows []AblationRow) *Table {
	t := &Table{
		Title:  "Ablation: each mechanism disabled in isolation (Topology B, VBR)",
		Header: []string{"variant", "rel deviation", "max changes", "mean loss"},
	}
	for _, r := range rows {
		t.AddRow(r.Variant, fmt.Sprintf("%.3f", r.Deviation), fmt.Sprintf("%d", r.MaxChanges), fmt.Sprintf("%.4f", r.MeanLoss))
	}
	return t
}
