package experiments

import (
	"fmt"

	"toposense/internal/churn"
	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/receiver"
	"toposense/internal/rlm"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topology"
	"toposense/internal/trace"
)

// fig_churn: the full receiver leave lifecycle under Poisson join/leave
// churn. Where the legacy "churn" study only stops churning receivers (and
// leans on registration expiry to clean up), this study exercises the
// explicit departure path end to end — Depart() tears down every layer
// group, the Deregister control packet removes the controller's entry the
// moment it lands, and the multicast tree prunes behind the last member —
// sweeping the churn period around the decision interval on Topology B
// (TopoSense vs RLM) plus one large tree-ladder point at ~1% churn.

// churnSettleWindow is the tail window settled receivers are judged over:
// a settled receiver must track its optimum regardless of the churn around
// it. Runs shorter than twice the window are judged over their second half.
const churnSettleWindow = 30 * sim.Second

// ChurnStudyRow summarizes one (topology, algorithm, period) run.
type ChurnStudyRow struct {
	Topo    string
	Algo    string // "TopoSense" | "RLM"
	PeriodS float64
	Slots   int

	// Churn driver activity and the controller's lifecycle view.
	Joins, Leaves   int64
	Deregisters     int64 // Deregister packets the controller consumed
	FinalRegistered int   // registration-table size at the end of the run

	// Multicast tree maintenance rates over the run.
	GraftsPerSec, PrunesPerSec float64

	// Tree cost (total edges carrying any group) sampled through the run:
	// drift between the start and end thirds exposes leaked state — a
	// departed receiver whose branch never pruned.
	TreeCostMean, TreeCostStart, TreeCostEnd float64

	// Settled receivers (the ones that never churn) judged over the tail
	// window: mean relative deviation and how many converged (<= 0.25).
	SettledDev       float64
	SettledConverged int
	SettledTotal     int

	// Sharded records the execution model (true = sharded engine). The
	// worker count is deliberately NOT recorded: it is purely physical, and
	// any worker count must reproduce the same rows byte-identically.
	Sharded bool
}

// ChurnStudyConfig parameterizes the fig_churn sweep.
type ChurnStudyConfig struct {
	Seed     int64
	Duration sim.Time // 0 = 600 s
	Quick    bool
	Sessions int        // Topology B sessions; 0 = 4 (quick 2)
	Periods  []sim.Time // churn mean on/off periods; nil = sweep around the interval
	Shards   int        // engine for the TopoSense B arms (RLM is always serial)

	// TreeTopo is the tree-ladder point's generator spec and TreeDuration
	// its (shorter) run length; zero values take the defaults.
	TreeTopo     string
	TreeDuration sim.Time
}

func (c *ChurnStudyConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	if c.Sessions == 0 {
		c.Sessions = 4
		if c.Quick {
			c.Sessions = 2
		}
	}
	if c.Periods == nil {
		// The decision interval is 4 s: sweep churn faster than, at, and
		// well above it.
		c.Periods = []sim.Time{2 * sim.Second, 4 * sim.Second, 16 * sim.Second}
		if c.Quick {
			c.Periods = []sim.Time{4 * sim.Second}
		}
	}
	if c.TreeTopo == "" {
		c.TreeTopo = "tree,depth=4,branch=10,rxleaf=1"
		if c.Quick {
			c.TreeTopo = "tree,depth=3,branch=4,rxleaf=2"
		}
	}
	if c.TreeDuration == 0 {
		c.TreeDuration = 30 * sim.Second
		if c.Quick {
			c.TreeDuration = 12 * sim.Second
		}
	}
}

// churnSlotRef names one churning receiver: an index into Build.Receivers.
type churnSlotRef struct{ session, idx int }

// addChurnNodesB grows a Topology B build by one churn receiver per
// session, hung off Y over the same fat link as the session's settled
// receiver, and returns the slot references. Must run before the world is
// built (and so before any partitioning).
func addChurnNodesB(b *topology.Build) []churnSlotRef {
	var y *netsim.Node
	for _, n := range b.Net.Nodes() {
		if n.Name == "Y" {
			y = n
			break
		}
	}
	if y == nil {
		panic("fig_churn: Topology B build has no node Y")
	}
	fat := netsim.LinkConfig{
		Bandwidth:  topology.FatBandwidth,
		Delay:      topology.DefaultDelay,
		QueueLimit: topology.DefaultQueueLimit,
	}
	refs := make([]churnSlotRef, 0, len(b.Receivers))
	for s := range b.Receivers {
		node := b.Net.AddNode(fmt.Sprintf("churn%d", s))
		b.Net.Connect(y, node, fat)
		b.Receivers[s] = append(b.Receivers[s], node)
		// Same bottleneck as the settled receiver, same optimum.
		b.Optimal[s] = append(b.Optimal[s], b.Optimal[s][0])
		refs = append(refs, churnSlotRef{session: s, idx: len(b.Receivers[s]) - 1})
	}
	return refs
}

// treeChurnSlots picks ~1% of a single-session build's receivers (at least
// one), evenly spaced, as churn slots.
func treeChurnSlots(b *topology.Build) []churnSlotRef {
	n := len(b.Receivers[0])
	slots := n / 100
	if slots < 1 {
		slots = 1
	}
	refs := make([]churnSlotRef, 0, slots)
	for i := 0; i < slots; i++ {
		refs = append(refs, churnSlotRef{session: 0, idx: i * n / slots})
	}
	return refs
}

// churnMetrics fills the post-run half of a row from the shared pieces of
// both worlds.
func churnMetrics(row *ChurnStudyRow, drv *churn.Driver, grafts, prunes int64,
	sp *trace.Sampler, traces [][]*metrics.Trace, optimal [][]int,
	refs []churnSlotRef, dur sim.Time) {
	row.Joins, row.Leaves = drv.Joins, drv.Leaves
	row.GraftsPerSec = float64(grafts) / dur.Seconds()
	row.PrunesPerSec = float64(prunes) / dur.Seconds()
	tc := sp.Series("tree_cost")
	row.TreeCostMean = tc.Mean()
	row.TreeCostStart = tc.Window(0, dur/3).Mean()
	row.TreeCostEnd = tc.Window(dur-dur/3, dur).Mean()

	churning := make(map[churnSlotRef]bool, len(refs))
	for _, r := range refs {
		churning[r] = true
	}
	from := dur - churnSettleWindow
	if from < dur/2 {
		from = dur / 2
	}
	for s := range traces {
		for i, tr := range traces[s] {
			if churning[churnSlotRef{session: s, idx: i}] {
				continue
			}
			dev := tr.RelativeDeviation(optimal[s][i], from, dur)
			row.SettledDev += dev
			row.SettledTotal++
			if dev <= 0.25 {
				row.SettledConverged++
			}
		}
	}
	if row.SettledTotal > 0 {
		row.SettledDev /= float64(row.SettledTotal)
	}
}

// runChurnTopoSense is one TopoSense arm: build the world, drive churn
// through the full departure lifecycle (Depart -> Deregister -> prune), and
// reduce. mkBuild must emit the build with churn nodes already in place.
func runChurnTopoSense(topo string, seed int64, dur, period sim.Time, shards int,
	mkBuild func(e sim.Runner) (*topology.Build, []churnSlotRef), m *Meter) (ChurnStudyRow, error) {
	e := NewRunEngine(seed, shards)
	b, refs := mkBuild(e)
	w := NewWorld(e, b, WorldConfig{Seed: seed})
	m.ObserveWorld(w)
	row := ChurnStudyRow{Topo: topo, Algo: "TopoSense", PeriodS: period.Seconds(),
		Slots: len(refs), Sharded: shards >= 1}

	drv := churn.New(w.Net)
	drv.SetObs(m.Obs())
	layers := source.DefaultLayers
	cur := make(map[churnSlotRef]*receiver.Receiver, len(refs))
	for _, ref := range refs {
		ref := ref
		node := b.Receivers[ref.session][ref.idx]
		cur[ref] = w.Receivers[ref.session][ref.idx]
		drv.Slot(0, period, period,
			func() { // join: a fresh incarnation registers from scratch
				rx := receiver.New(w.Net, w.Domain, node, receiver.Config{
					Session:      ref.session,
					MaxLayers:    layers,
					InitialLevel: 1,
					Controller:   b.Controller.ID,
				})
				rx.Start()
				cur[ref] = rx
			},
			func() { // leave: the full teardown under test
				if rx := cur[ref]; rx != nil {
					rx.Depart()
					cur[ref] = nil
				}
			})
	}

	sp := trace.NewSampler(e, 2*sim.Second)
	sp.Probe("tree_cost", func() float64 { return float64(w.Domain.TreeCost()) })
	sp.Start()
	w.Run(dur)
	sp.Stop()

	row.Deregisters = w.Controller.DeregistersRecv
	row.FinalRegistered = len(w.Controller.RegisteredReceivers())
	churnMetrics(&row, drv, w.Domain.Grafts, w.Domain.Prunes, sp, w.Traces, w.Optimal, refs, dur)
	return row, nil
}

// runChurnRLM is the receiver-driven arm: churn slots Stop (silent leave —
// RLM has no controller to notify) and restart as fresh rlm receivers.
// Always serial: NewRLMWorld does not partition.
func runChurnRLM(topo string, seed int64, dur, period sim.Time,
	mkBuild func(e sim.Runner) (*topology.Build, []churnSlotRef), m *Meter) (ChurnStudyRow, error) {
	e := sim.NewEngine(seed)
	b, refs := mkBuild(e)
	w := NewRLMWorld(e, b, WorldConfig{Seed: seed})
	m.Observe(e, b.Net)
	row := ChurnStudyRow{Topo: topo, Algo: "RLM", PeriodS: period.Seconds(), Slots: len(refs)}

	drv := churn.New(b.Net)
	drv.SetObs(m.Obs())
	layers := source.DefaultLayers
	cur := make(map[churnSlotRef]*rlm.Receiver, len(refs))
	for _, ref := range refs {
		ref := ref
		node := b.Receivers[ref.session][ref.idx]
		cur[ref] = w.Receivers[ref.session][ref.idx]
		drv.Slot(0, period, period,
			func() {
				rx := rlm.New(b.Net, w.Domain, node, rlm.Config{
					Session: ref.session, MaxLayers: layers,
				})
				rx.Start()
				cur[ref] = rx
			},
			func() {
				if rx := cur[ref]; rx != nil {
					rx.Stop()
					cur[ref] = nil
				}
			})
	}

	sp := trace.NewSampler(e, 2*sim.Second)
	sp.Probe("tree_cost", func() float64 { return float64(w.Domain.TreeCost()) })
	sp.Start()
	w.Run(dur)
	sp.Stop()

	churnMetrics(&row, drv, w.Domain.Grafts, w.Domain.Prunes, sp, w.Traces, w.Optimal, refs, dur)
	return row, nil
}

// ChurnStudySpecs enumerates the fig_churn sweep: TopoSense-vs-RLM pairs on
// Topology B across the period sweep, plus one TopoSense tree-ladder point
// at ~1% churn.
func ChurnStudySpecs(cfg ChurnStudyConfig) []Spec {
	cfg.normalize()
	mkB := func(e sim.Runner) (*topology.Build, []churnSlotRef) {
		b := topology.MustGenerate(e, &topology.BConfig{Sessions: cfg.Sessions})
		return b, addChurnNodesB(b)
	}
	var specs []Spec
	for _, period := range cfg.Periods {
		period := period
		specs = append(specs, NewSpec("fig_churn",
			fmt.Sprintf("fig_churn/topo=B/period=%gs/TopoSense", period.Seconds()),
			cfg.Seed, cfg.Duration,
			func(m *Meter) (any, error) {
				row, err := runChurnTopoSense("B", cfg.Seed, cfg.Duration, period, cfg.Shards, mkB, m)
				if err != nil {
					return nil, err
				}
				return []ChurnStudyRow{row}, nil
			}))
		specs = append(specs, NewSpec("fig_churn",
			fmt.Sprintf("fig_churn/topo=B/period=%gs/RLM", period.Seconds()),
			cfg.Seed, cfg.Duration,
			func(m *Meter) (any, error) {
				row, err := runChurnRLM("B", cfg.Seed, cfg.Duration, period, mkB, m)
				if err != nil {
					return nil, err
				}
				return []ChurnStudyRow{row}, nil
			}))
	}
	treePeriod := 4 * sim.Second
	mkTree := func(e sim.Runner) (*topology.Build, []churnSlotRef) {
		_, tc, err := topology.Parse(cfg.TreeTopo)
		if err != nil {
			panic("fig_churn: " + err.Error())
		}
		b := topology.MustGenerate(e, tc)
		return b, treeChurnSlots(b)
	}
	specs = append(specs, NewSpec("fig_churn",
		fmt.Sprintf("fig_churn/topo=%s/period=%gs/TopoSense", cfg.TreeTopo, treePeriod.Seconds()),
		cfg.Seed, cfg.TreeDuration,
		func(m *Meter) (any, error) {
			row, err := runChurnTopoSense(cfg.TreeTopo, cfg.Seed, cfg.TreeDuration, treePeriod, cfg.Shards, mkTree, m)
			if err != nil {
				return nil, err
			}
			return []ChurnStudyRow{row}, nil
		}))
	return specs
}

// RunChurnStudy runs the sweep by executing its specs serially.
func RunChurnStudy(cfg ChurnStudyConfig) []ChurnStudyRow {
	return mustGather[ChurnStudyRow](ExecuteAll(ChurnStudySpecs(cfg)))
}

// ChurnStudyTable renders the sweep.
func ChurnStudyTable(rows []ChurnStudyRow) *Table {
	t := &Table{
		Title: "Membership churn: Poisson join/leave swept around the decision interval",
		Header: []string{"topology", "algorithm", "period", "slots", "joins/leaves",
			"dereg", "reg at end", "grafts+prunes/s", "tree cost start→end",
			"settled dev", "converged"},
	}
	for _, r := range rows {
		t.AddRow(
			r.Topo,
			r.Algo,
			fmt.Sprintf("%gs", r.PeriodS),
			fmt.Sprintf("%d", r.Slots),
			fmt.Sprintf("%d/%d", r.Joins, r.Leaves),
			fmt.Sprintf("%d", r.Deregisters),
			fmt.Sprintf("%d", r.FinalRegistered),
			fmt.Sprintf("%.2f", r.GraftsPerSec+r.PrunesPerSec),
			fmt.Sprintf("%.1f→%.1f (mean %.1f)", r.TreeCostStart, r.TreeCostEnd, r.TreeCostMean),
			fmt.Sprintf("%.3f", r.SettledDev),
			fmt.Sprintf("%d/%d", r.SettledConverged, r.SettledTotal),
		)
	}
	return t
}
