package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topology"
)

// Last-mile study: the architecture is built on the premise that
// "bottlenecks lie deep in the tree" (Section II, the tiered Internet of
// Figure 2) and on subtree independence. This experiment places the SAME
// capacity constraint at different depths of a three-tier tree and
// measures how TopoSense copes:
//
//   - backbone (tier 1): every receiver shares the one bottleneck —
//     congestion is global, coordination happens at the root;
//   - regional (tier 2): half the receivers share it — one subtree
//     coordinates, the other must be untouched;
//   - last mile (tier 3): each constrained receiver has its own bottleneck
//     — the paper's canonical case.
type LastMileRow struct {
	Where     string
	Deviation float64
	// UnaffectedDev is the deviation of receivers NOT behind the
	// bottleneck — subtree independence says it must stay near zero.
	UnaffectedDev float64
	MaxChanges    int
}

// LastMileConfig parameterizes the depth study.
type LastMileConfig struct {
	Seed     int64
	Duration sim.Time // 0 = 600 s
	Traffic  Traffic  // zero = CBR
}

func (c *LastMileConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
}

// LastMileSpecs builds, per depth, a binary three-tier tree with 4
// receivers and a single 224 Kbps (3-layer) constraint at the chosen tier,
// everything else fat. Receivers behind the constraint have optimum 3; the
// rest 6. One run per depth.
func LastMileSpecs(cfg LastMileConfig) []Spec {
	cfg.normalize()
	depths := []struct{ key, label string }{
		{"backbone", "backbone (tier 1)"},
		{"regional", "regional (tier 2)"},
		{"lastmile", "last mile (tier 3)"},
	}
	var specs []Spec
	for di, depth := range depths {
		specs = append(specs, NewSpec("lastmile",
			"lastmile/"+depth.key, cfg.Seed, cfg.Duration,
			func(m *Meter) (any, error) {
				return []LastMileRow{runLastMileDepth(cfg, di, depth.label, m)}, nil
			}))
	}
	return specs
}

// RunLastMile runs the depth study by executing its specs serially.
func RunLastMile(cfg LastMileConfig) []LastMileRow {
	return mustGather[LastMileRow](ExecuteAll(LastMileSpecs(cfg)))
}

func runLastMileDepth(cfg LastMileConfig, di int, where string, m *Meter) LastMileRow {
	e := sim.NewEngine(cfg.Seed)
	n := netsim.New(e)
	fat := netsim.LinkConfig{Bandwidth: topology.FatBandwidth, Delay: topology.DefaultDelay}
	narrow := netsim.LinkConfig{Bandwidth: 240e3, Delay: topology.DefaultDelay} // 3 layers (224k) + headroom

	pick := func(tier, index int) netsim.LinkConfig {
		// Constrain exactly one link of the chosen tier: the first
		// branch at that depth.
		if tier == di+1 && index == 0 {
			return narrow
		}
		return fat
	}

	src := n.AddNode("src")
	b := &topology.Build{Net: n, Sources: []*netsim.Node{src}, Controller: src,
		Receivers: [][]*netsim.Node{nil}, Optimal: [][]int{nil}}
	// Tier 1: one backbone node; tier 2: two regionals; tier 3: four
	// last-mile gateways, one receiver each.
	bb := n.AddNode("bb")
	n.Connect(src, bb, pick(1, 0))
	var behind []bool // per receiver: behind the narrow link?
	for r := 0; r < 2; r++ {
		reg := n.AddNode(fmt.Sprintf("reg%d", r))
		n.Connect(bb, reg, pick(2, r))
		for l := 0; l < 2; l++ {
			gwIdx := r*2 + l
			gw := n.AddNode(fmt.Sprintf("gw%d", gwIdx))
			n.Connect(reg, gw, pick(3, gwIdx))
			rx := n.AddNode(fmt.Sprintf("rx%d", gwIdx))
			n.Connect(gw, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			constrained := di == 0 || // backbone: everyone
				(di == 1 && r == 0) || // regional: first subtree
				(di == 2 && gwIdx == 0) // last mile: first gateway
			behind = append(behind, constrained)
			if constrained {
				b.Optimal[0] = append(b.Optimal[0], source.LevelForBandwidth(source.Rates(6), 240e3))
			} else {
				b.Optimal[0] = append(b.Optimal[0], 6)
			}
		}
	}

	w := NewWorld(e, b, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic})
	m.Observe(e, n)
	w.Run(cfg.Duration)
	traces, optima := w.AllTraces()
	var conTr, freeTr []*metrics.Trace
	var conOpt, freeOpt []int
	for i := range traces {
		if behind[i] {
			conTr = append(conTr, traces[i])
			conOpt = append(conOpt, optima[i])
		} else {
			freeTr = append(freeTr, traces[i])
			freeOpt = append(freeOpt, optima[i])
		}
	}
	row := LastMileRow{
		Where:      where,
		Deviation:  metrics.MeanRelativeDeviation(conTr, conOpt, 0, cfg.Duration),
		MaxChanges: metrics.MaxChanges(traces, 0, cfg.Duration),
	}
	if len(freeTr) > 0 {
		row.UnaffectedDev = metrics.MeanRelativeDeviation(freeTr, freeOpt, 0, cfg.Duration)
	}
	return row
}

// LastMileTable renders the depth study.
func LastMileTable(rows []LastMileRow) *Table {
	t := &Table{
		Title:  "Bottleneck depth: the same 3-layer constraint at each tier of a tiered tree",
		Header: []string{"bottleneck at", "constrained dev", "unaffected dev", "max changes"},
	}
	for _, r := range rows {
		un := fmt.Sprintf("%.3f", r.UnaffectedDev)
		if r.Where == "backbone (tier 1)" {
			un = "-" // everyone is constrained
		}
		t.AddRow(r.Where, fmt.Sprintf("%.3f", r.Deviation), un, fmt.Sprintf("%d", r.MaxChanges))
	}
	return t
}
