package experiments

import (
	"fmt"

	"toposense/internal/core"
	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topology"
)

// This file implements the "challenges" of the paper's Section V as
// measurable experiments — the future-work knobs the authors discuss in
// prose:
//
//   - layer granularity ("A possible remedy ... is to have finer
//     granularity in bandwidth requirements of layers ... However, a very
//     large number of layers can delay convergence");
//   - group-leave latency ("Leaving a troublesome group may not
//     immediately alleviate congestion");
//   - decision-interval size ("Choosing the optimal interval size is thus
//     crucial").

// ExtensionRow is one point of an extension sweep.
type ExtensionRow struct {
	Param      string // human-readable parameter value
	Deviation  float64
	MaxChanges int
	// TimeToOptimal is when the receiver first reached the optimal level,
	// measuring the convergence cost Section V predicts for many layers.
	TimeToOptimal sim.Time
}

// ExtensionConfig parameterizes the Section V sweeps.
type ExtensionConfig struct {
	Seed     int64
	Seeds    int      // runs averaged per point; 0 = 3
	Duration sim.Time // 0 = 600 s (each sweep runs several worlds)
	Traffic  Traffic  // zero = CBR (isolates the swept parameter)
}

func (c *ExtensionConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	c.Seeds = d.SeedCount(c.Seeds)
}

// reduceExtension folds per-seed rows into one averaged row per parameter.
// Rows for the same parameter are consecutive (spec enumeration order), so
// a linear grouping pass suffices and keeps the sweep order.
func reduceExtension(perSeed []ExtensionRow) []ExtensionRow {
	var rows []ExtensionRow
	for i := 0; i < len(perSeed); {
		j := i
		for j < len(perSeed) && perSeed[j].Param == perSeed[i].Param {
			j++
		}
		rows = append(rows, average(perSeed[i:j]))
		i = j
	}
	return rows
}

// average folds per-seed rows for the same parameter into one row.
func average(rows []ExtensionRow) ExtensionRow {
	out := rows[0]
	if len(rows) == 1 {
		return out
	}
	var dev, tto float64
	maxChg := 0
	for _, r := range rows {
		dev += r.Deviation
		tto += r.TimeToOptimal.Seconds()
		if r.MaxChanges > maxChg {
			maxChg = r.MaxChanges
		}
	}
	out.Deviation = dev / float64(len(rows))
	out.TimeToOptimal = sim.FromSeconds(tto / float64(len(rows)))
	out.MaxChanges = maxChg
	return out
}

// granularity describes one layering scheme of roughly equal total span.
type granularity struct {
	name   string
	rates  []float64
	bottle float64 // bottleneck sized so the optimum is mid-range
}

// GranularitySpecs sweeps layer granularity on a single-receiver bottleneck
// chain, one run per (scheme, seed): the paper's 6 doubling layers versus
// finer geometric layerings covering a similar range. Finer layers bound
// the over-subscription overshoot (each add risks less bandwidth) at the
// price of slower convergence (adds happen one layer at a time).
func GranularitySpecs(cfg ExtensionConfig) []Spec {
	cfg.normalize()
	schemes := []granularity{
		{name: "6 layers x2.0 (paper)", rates: source.RatesGeometric(6, 32e3, 2), bottle: 500e3},
		{name: "9 layers x1.5", rates: source.RatesGeometric(9, 32e3, 1.5), bottle: 500e3},
		{name: "12 layers x1.35", rates: source.RatesGeometric(12, 24e3, 1.35), bottle: 500e3},
	}
	var specs []Spec
	for _, g := range schemes {
		for s := 0; s < cfg.Seeds; s++ {
			seed := cfg.Seed + int64(s)
			specs = append(specs, NewSpec("extensions",
				fmt.Sprintf("extensions/granularity/%d-layers/seed=%d", len(g.rates), seed),
				seed, cfg.Duration,
				func(m *Meter) (any, error) {
					e := sim.NewEngine(seed)
					b := topology.MustGenerate(e, &topology.AConfig{
						ReceiversPerSet: 2,
						Set1Bandwidth:   g.bottle,
						Set2Bandwidth:   g.bottle,
						Layers:          len(g.rates),
					})
					w := NewWorld(e, b, WorldConfig{Seed: seed, Traffic: cfg.Traffic, Rates: g.rates})
					m.Observe(e, b.Net)
					optimal := source.LevelForBandwidth(g.rates, g.bottle)
					w.Run(cfg.Duration)
					traces, _ := w.AllTraces()
					optima := make([]int, len(traces))
					for i := range optima {
						optima[i] = optimal
					}
					return []ExtensionRow{{
						Param:         g.name,
						Deviation:     metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
						MaxChanges:    metrics.MaxChanges(traces, 0, cfg.Duration),
						TimeToOptimal: firstTimeAt(traces[0], optimal, cfg.Duration),
					}}, nil
				}))
		}
	}
	return specs
}

// RunGranularity runs the granularity sweep serially and averages seeds.
func RunGranularity(cfg ExtensionConfig) []ExtensionRow {
	return reduceExtension(mustGather[ExtensionRow](ExecuteAll(GranularitySpecs(cfg))))
}

// LeaveLatencySpecs sweeps the multicast group-leave latency on Topology B,
// one run per (latency, seed): the longer pruning takes, the longer a
// dropped layer keeps congesting the bottleneck after the decision, and the
// worse the post-drop transients. LeaveLatency ~0 models the "expedited
// group-leaves" the paper proposes. The sweep always runs VBR traffic:
// under CBR the system converges and rarely drops layers, so there is
// nothing for the prune latency to act on.
func LeaveLatencySpecs(cfg ExtensionConfig) []Spec {
	cfg.normalize()
	traffic := cfg.Traffic
	if traffic.PeakToMean <= 1 {
		traffic = VBR3
	}
	var specs []Spec
	for _, ll := range []sim.Time{1, 500 * sim.Millisecond, sim.Second, 2 * sim.Second, 4 * sim.Second} {
		name := ll.String()
		if ll == 1 {
			name = "~0 (expedited)"
		}
		for s := 0; s < cfg.Seeds; s++ {
			seed := cfg.Seed + int64(s)
			specs = append(specs, NewSpec("extensions",
				fmt.Sprintf("extensions/leave/%s/seed=%d", name, seed),
				seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := worldBWithOverrides(seed, WorldConfig{Seed: seed, Traffic: traffic, LeaveLatency: ll}, m)
					w.Run(cfg.Duration)
					traces, optima := w.AllTraces()
					return []ExtensionRow{{
						Param:         name,
						Deviation:     metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
						MaxChanges:    metrics.MaxChanges(traces, 0, cfg.Duration),
						TimeToOptimal: firstTimeAt(traces[0], optima[0], cfg.Duration),
					}}, nil
				}))
		}
	}
	return specs
}

// RunLeaveLatency runs the leave-latency sweep serially and averages seeds.
func RunLeaveLatency(cfg ExtensionConfig) []ExtensionRow {
	return reduceExtension(mustGather[ExtensionRow](ExecuteAll(LeaveLatencySpecs(cfg))))
}

// IntervalSizeSpecs sweeps the controller's decision interval, one run per
// (interval, seed): short intervals react fast but see bursty noise and
// drain transients; long intervals smooth the noise but react slowly — the
// trade-off of the paper's final Section V bullet.
func IntervalSizeSpecs(cfg ExtensionConfig) []Spec {
	cfg.normalize()
	var specs []Spec
	for _, iv := range []sim.Time{2 * sim.Second, 4 * sim.Second, 8 * sim.Second, 16 * sim.Second} {
		for s := 0; s < cfg.Seeds; s++ {
			seed := cfg.Seed + int64(s)
			specs = append(specs, NewSpec("extensions",
				fmt.Sprintf("extensions/interval/%s/seed=%d", iv, seed),
				seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := worldBWithOverrides(seed, WorldConfig{
						Seed:    seed,
						Traffic: cfg.Traffic,
						Alg:     core.Config{Interval: iv},
					}, m)
					w.Run(cfg.Duration)
					traces, optima := w.AllTraces()
					return []ExtensionRow{{
						Param:         iv.String(),
						Deviation:     metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
						MaxChanges:    metrics.MaxChanges(traces, 0, cfg.Duration),
						TimeToOptimal: firstTimeAt(traces[0], optima[0], cfg.Duration),
					}}, nil
				}))
		}
	}
	return specs
}

// RunIntervalSize runs the interval sweep serially and averages seeds.
func RunIntervalSize(cfg ExtensionConfig) []ExtensionRow {
	return reduceExtension(mustGather[ExtensionRow](ExecuteAll(IntervalSizeSpecs(cfg))))
}

func worldBWithOverrides(seed int64, wc WorldConfig, m *Meter) *World {
	e := sim.NewEngine(seed)
	b := topology.MustGenerate(e, &topology.BConfig{Sessions: 4})
	m.Observe(e, b.Net)
	return NewWorld(e, b, wc)
}

// firstTimeAt returns the first instant the trace reaches level target, or
// the full duration if it never does.
func firstTimeAt(tr *metrics.Trace, target int, duration sim.Time) sim.Time {
	for _, p := range tr.Points() {
		if p.Level >= target {
			return p.At
		}
	}
	return duration
}

// ExtensionTable renders one extension sweep.
func ExtensionTable(title, param string, rows []ExtensionRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{param, "rel deviation", "max changes", "time to optimal (s)"},
	}
	for _, r := range rows {
		t.AddRow(r.Param,
			fmt.Sprintf("%.3f", r.Deviation),
			fmt.Sprintf("%d", r.MaxChanges),
			fmt.Sprintf("%.1f", r.TimeToOptimal.Seconds()),
		)
	}
	return t
}
