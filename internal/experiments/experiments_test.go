package experiments

import (
	"strings"
	"testing"

	"toposense/internal/sim"
)

// Scaled-down configs keep test runtime reasonable while exercising every
// code path of the harness; the full paper-scale sweeps run in
// cmd/topobench and the benchmarks.

func TestWorldAssemblyA(t *testing.T) {
	w := NewWorldA(2, WorldConfig{Seed: 1, Traffic: CBR})
	if len(w.Sources) != 1 || len(w.Receivers[0]) != 4 {
		t.Fatalf("world shape: %d sources, %d receivers", len(w.Sources), len(w.Receivers[0]))
	}
	w.Run(10 * sim.Second)
	if w.Controller.StepsRun == 0 {
		t.Error("controller idle")
	}
	traces, optima := w.AllTraces()
	if len(traces) != 4 || len(optima) != 4 {
		t.Errorf("traces/optima: %d/%d", len(traces), len(optima))
	}
	// Start is idempotent.
	w.Start()
}

func TestWorldAssemblyB(t *testing.T) {
	w := NewWorldB(3, WorldConfig{Seed: 1, Traffic: VBR3})
	if len(w.Sources) != 3 {
		t.Fatalf("sources = %d", len(w.Sources))
	}
	w.Run(10 * sim.Second)
	for s, rxs := range w.Receivers {
		if rxs[0].Level() < 1 {
			t.Errorf("session %d receiver never joined", s)
		}
	}
}

func TestRunFig6Scaled(t *testing.T) {
	rows := RunFig6(Fig6Config{
		Seed:     1,
		Duration: 120 * sim.Second,
		PerSet:   []int{1, 2},
		Traffic:  []Traffic{CBR},
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxChanges <= 0 {
			t.Errorf("receivers never changed subscription: %+v", r)
		}
		if r.MeanBetween <= 0 {
			t.Errorf("non-positive mean time between changes: %+v", r)
		}
		if r.Traffic != "CBR" {
			t.Errorf("traffic label %q", r.Traffic)
		}
	}
	if rows[0].X != 2 || rows[1].X != 4 {
		t.Errorf("receiver counts: %+v", rows)
	}
	table := StabilityTable("Figure 6", "receivers", rows)
	if !strings.Contains(table.String(), "max changes") {
		t.Error("table missing header")
	}
}

func TestRunFig7Scaled(t *testing.T) {
	rows := RunFig7(Fig7Config{
		Seed:     1,
		Duration: 120 * sim.Second,
		Sessions: []int{2},
		Traffic:  []Traffic{CBR, VBR3},
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.X != 2 || r.MaxChanges <= 0 {
			t.Errorf("row %+v", r)
		}
	}
}

func TestRunFig8Scaled(t *testing.T) {
	rows := RunFig8(Fig8Config{
		Seed:     1,
		Duration: 300 * sim.Second,
		Sessions: []int{2},
		Traffic:  []Traffic{CBR},
	})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// CBR at 2 sessions should track the optimum closely even in a short
	// run — the headline fairness result.
	if r.DevFirst > 0.30 || r.DevSecond > 0.20 {
		t.Errorf("deviation too large: %+v", r)
	}
	if r.DevFirst < 0 || r.DevSecond < 0 {
		t.Errorf("negative deviation: %+v", r)
	}
	if !strings.Contains(FairnessTable(rows).String(), "sessions") {
		t.Error("fairness table broken")
	}
}

func TestRunFig9Scaled(t *testing.T) {
	res := RunFig9(Fig9Config{
		Seed:     1,
		Sessions: 2,
		Duration: 120 * sim.Second,
	})
	if len(res.Levels) != 2 || len(res.Losses) != 2 {
		t.Fatalf("series count wrong")
	}
	for s := range res.Levels {
		if res.Levels[s].Len() == 0 {
			t.Errorf("session %d level series empty", s)
		}
		if res.Losses[s].Len() != res.Levels[s].Len() {
			t.Errorf("session %d series lengths differ", s)
		}
	}
	wt := res.WindowTable()
	if len(wt.Rows) == 0 {
		t.Error("window table empty")
	}
	if res.Summary() == "" {
		t.Error("summary empty")
	}
}

func TestRunFig10Scaled(t *testing.T) {
	rows := RunFig10(Fig10Config{
		Seed:      1,
		Duration:  120 * sim.Second,
		PerSet:    []int{1},
		Staleness: []sim.Time{0, 8 * sim.Second},
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Deviation < 0 {
			t.Errorf("negative deviation: %+v", r)
		}
		if r.Receivers != 2 {
			t.Errorf("receivers = %d", r.Receivers)
		}
	}
	if !strings.Contains(StaleTable(rows).String(), "staleness") {
		t.Error("stale table broken")
	}
}

func TestRunBaselineScaled(t *testing.T) {
	rows := RunBaseline(BaselineConfig{
		Seed:     1,
		Duration: 120 * sim.Second,
		Traffics: []Traffic{CBR},
		PerSet:   1,
		Sessions: 2,
	})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	algos := map[string]int{}
	for _, r := range rows {
		algos[r.Algo]++
		if r.Deviation < 0 {
			t.Errorf("negative deviation: %+v", r)
		}
	}
	if algos["TopoSense"] != 2 || algos["RLM"] != 2 {
		t.Errorf("algo mix: %v", algos)
	}
	if !strings.Contains(BaselineTable(rows).String(), "RLM") {
		t.Error("baseline table broken")
	}
}

func TestRLMWorld(t *testing.T) {
	e := sim.NewEngine(1)
	b := buildTestB(e, 2)
	w := NewRLMWorld(e, b, WorldConfig{Seed: 1, Traffic: CBR})
	w.Run(60 * sim.Second)
	traces, optima := w.AllTraces()
	if len(traces) != 2 || len(optima) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	for s, rxs := range w.Receivers {
		if rxs[0].Level() < 1 {
			t.Errorf("session %d rlm receiver never joined", s)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("table output %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count %d: %q", len(lines), out)
	}
}

func TestTrafficDefinitions(t *testing.T) {
	if CBR.PeakToMean > 1 || VBR3.PeakToMean != 3 || VBR6.PeakToMean != 6 {
		t.Error("traffic models wrong")
	}
	if len(AllTraffic) != 3 {
		t.Error("AllTraffic wrong")
	}
}

func TestRunAblationScaled(t *testing.T) {
	rows := RunAblation(AblationConfig{Seed: 1, Duration: 120 * sim.Second, Sessions: 2})
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 variants", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
		if r.Deviation < 0 || r.MeanLoss < 0 {
			t.Errorf("negative metrics: %+v", r)
		}
	}
	for _, want := range []string{"full", "no-cooldown", "no-backoff", "pin-any-link", "no-resend"} {
		if !names[want] {
			t.Errorf("missing variant %q", want)
		}
	}
	if !strings.Contains(AblationTable(rows).String(), "pin-any-link") {
		t.Error("ablation table broken")
	}
}

func TestRunExtensionsScaled(t *testing.T) {
	cfg := ExtensionConfig{Seed: 1, Seeds: 1, Duration: 120 * sim.Second}
	gran := RunGranularity(cfg)
	if len(gran) != 3 {
		t.Fatalf("granularity rows = %d", len(gran))
	}
	for _, r := range gran {
		if r.Deviation < 0 || r.TimeToOptimal <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	// Finer layers must not converge faster than the coarse scheme (adds
	// are one layer at a time).
	if gran[2].TimeToOptimal < gran[0].TimeToOptimal {
		t.Errorf("12-layer scheme converged faster than 6-layer: %v < %v",
			gran[2].TimeToOptimal, gran[0].TimeToOptimal)
	}

	ll := RunLeaveLatency(cfg)
	if len(ll) != 5 {
		t.Fatalf("leave-latency rows = %d", len(ll))
	}
	iv := RunIntervalSize(cfg)
	if len(iv) != 4 {
		t.Fatalf("interval rows = %d", len(iv))
	}
	if !strings.Contains(ExtensionTable("x", "p", iv).String(), "rel deviation") {
		t.Error("extension table broken")
	}
}

func TestRunDomainsScaled(t *testing.T) {
	rows := RunDomains(DomainsConfig{Seed: 1, Seeds: 1, Duration: 240 * sim.Second, ReceiversPer: 2})
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 variants x 2 domains)", len(rows))
	}
	variants := map[string]int{}
	for _, r := range rows {
		variants[r.Variant]++
		if r.Deviation < 0 {
			t.Errorf("negative deviation: %+v", r)
		}
		// Both architectures must steer every receiver to within one layer
		// of its domain optimum — the paper's subtree-independence claim.
		if !r.FinalOK {
			t.Errorf("%s / %s did not converge", r.Variant, r.Domain)
		}
	}
	if variants["global"] != 2 || variants["per-domain"] != 2 {
		t.Errorf("variant mix: %v", variants)
	}
	if !strings.Contains(DomainsTable(rows).String(), "per-domain") {
		t.Error("domains table broken")
	}
}

func TestPerDomainControllersAreIndependent(t *testing.T) {
	// The per-domain variant runs two controllers that never exchange a
	// message; both must have actually worked (steps and suggestions).
	cfg := DomainsConfig{Seed: 2, Seeds: 1, Duration: 120 * sim.Second, ReceiversPer: 2}
	cfg.normalize()
	w := buildDomainsWorld(cfg)
	w.wire(cfg, true)
	w.engine.RunUntil(cfg.Duration)
	if len(w.controllers) != 2 {
		t.Fatalf("controllers = %d", len(w.controllers))
	}
	for i, c := range w.controllers {
		if c.StepsRun == 0 || c.SuggestionsSent == 0 {
			t.Errorf("controller %d idle: steps=%d sugg=%d", i, c.StepsRun, c.SuggestionsSent)
		}
	}
}

func TestRunChurnScaled(t *testing.T) {
	rows := RunChurn(ChurnConfig{Seed: 1, Duration: 180 * sim.Second, Slots: 2})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Arrivals == 0 {
			t.Errorf("no arrivals at %v/%v", r.MeanOn, r.MeanOff)
		}
		// The always-on reference receiver must stay near its optimum no
		// matter the churn around it.
		if r.RefDeviation > 0.25 {
			t.Errorf("reference receiver disturbed by churn: %.3f at %v/%v", r.RefDeviation, r.MeanOn, r.MeanOff)
		}
		// Every churner in an on-period at the end must be subscribed.
		if r.FinalActive != r.FinalTotal {
			t.Errorf("wedged churners: %d/%d", r.FinalActive, r.FinalTotal)
		}
	}
	if !strings.Contains(ChurnTable(rows).String(), "arrivals") {
		t.Error("churn table broken")
	}
}

func TestRunConvergenceScaled(t *testing.T) {
	rows := RunConvergence(ConvergenceConfig{Seed: 1, Duration: 240 * sim.Second, Sets: 3, PerSet: 2})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Set != i+1 || r.Optimal != i+1 {
			t.Errorf("set %d: optimal %d (capacities sized for exactly k layers)", r.Set, r.Optimal)
		}
		// CBR heterogeneous convergence is the prior work's headline: the
		// steady-state (modal) level must be the optimum and set-mates
		// must agree.
		if r.ModalLevel != r.Optimal {
			t.Errorf("set %d modal level %d, want %d", r.Set, r.ModalLevel, r.Optimal)
		}
		if !r.IntraFair {
			t.Errorf("set %d not intra-fair", r.Set)
		}
		if r.TimeToOptimal >= 240*sim.Second && r.Optimal > 1 {
			t.Errorf("set %d never reached optimal", r.Set)
		}
	}
	// Convergence time grows with the target level (one layer at a time).
	if rows[2].TimeToOptimal < rows[1].TimeToOptimal {
		t.Errorf("set 3 converged before set 2: %v < %v", rows[2].TimeToOptimal, rows[1].TimeToOptimal)
	}
	if !strings.Contains(ConvergenceTable(rows).String(), "intra-fair") {
		t.Error("convergence table broken")
	}
}

func TestFig9Plots(t *testing.T) {
	res := RunFig9(Fig9Config{Seed: 1, Sessions: 2, Duration: 60 * sim.Second})
	full := res.Plot(60, 6)
	if !strings.Contains(full, "*") || !strings.Contains(full, "session0/level") {
		t.Errorf("full plot broken:\n%s", full)
	}
	win := res.PlotWindow(60, 6)
	if !strings.Contains(win, "subscription level:") || !strings.Contains(win, "loss rate:") {
		t.Errorf("window plot broken:\n%s", win)
	}
}

func TestRunQueuePoliciesScaled(t *testing.T) {
	rows := RunQueuePolicies(QueueConfig{Seed: 1, Duration: 180 * sim.Second, Sessions: 2})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]QueueRow{}
	for _, r := range rows {
		byName[r.Config] = r
		if r.Deviation < 0 {
			t.Errorf("negative deviation: %+v", r)
		}
	}
	// TopoSense rows meter loss; RLM rows don't.
	if byName["drop-tail + TopoSense (paper)"].MeanLoss <= 0 {
		t.Error("TopoSense loss not metered")
	}
	if byName["drop-tail + RLM"].MeanLoss != 0 {
		t.Error("RLM rows should not meter loss")
	}
	if !strings.Contains(QueueTable(rows).String(), "priority") {
		t.Error("queue table broken")
	}
}

func TestRunVarianceScaled(t *testing.T) {
	rows := RunVariance(VarianceConfig{Seed: 1, Seeds: 2, Duration: 120 * sim.Second, Sessions: 2})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Seeds != 2 {
			t.Errorf("seeds = %d", r.Seeds)
		}
		if r.Min > r.Mean || r.Mean > r.Max {
			t.Errorf("summary ordering broken: %+v", r)
		}
		if r.StdDev < 0 {
			t.Errorf("negative stddev: %+v", r)
		}
	}
	if !strings.Contains(VarianceTable(rows).String(), "stddev") {
		t.Error("variance table broken")
	}
}

func TestRunLastMileScaled(t *testing.T) {
	rows := RunLastMile(LastMileConfig{Seed: 1, Duration: 240 * sim.Second})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Deviation < 0 || r.UnaffectedDev < 0 {
			t.Errorf("negative deviation: %+v", r)
		}
	}
	// Subtree independence: receivers not behind the tier-2/tier-3
	// constraint must track their own optimum closely.
	for _, r := range rows[1:] {
		if r.UnaffectedDev > 0.15 {
			t.Errorf("%s: unaffected receivers disturbed (dev %.3f)", r.Where, r.UnaffectedDev)
		}
	}
	if !strings.Contains(LastMileTable(rows).String(), "last mile") {
		t.Error("last-mile table broken")
	}
}
