package experiments

import (
	"fmt"

	"toposense/internal/mcast"
	"toposense/internal/metrics"
	"toposense/internal/rlm"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topology"
)

// RLMWorld is a simulation using uncoordinated receiver-driven (RLM-style)
// receivers instead of a TopoSense controller — the baseline class of
// approaches the paper contrasts with.
type RLMWorld struct {
	Engine    sim.Runner
	Build     *topology.Build
	Domain    *mcast.Domain
	Sources   []*source.Source
	Receivers [][]*rlm.Receiver
	Traces    [][]*metrics.Trace
	Optimal   [][]int
	started   bool
}

// NewRLMWorld assembles an RLM world on a built topology.
func NewRLMWorld(e sim.Runner, b *topology.Build, cfg WorldConfig) *RLMWorld {
	layers := cfg.Layers
	if layers == 0 {
		layers = source.DefaultLayers
	}
	d := mcast.NewDomain(b.Net)
	w := &RLMWorld{Engine: e, Build: b, Domain: d, Optimal: b.Optimal}
	for i, srcNode := range b.Sources {
		w.Sources = append(w.Sources, source.New(b.Net, d, srcNode, source.Config{
			Session: i, Layers: layers, PeakToMean: cfg.Traffic.PeakToMean,
		}))
	}
	for s := range b.Receivers {
		var rxs []*rlm.Receiver
		var trs []*metrics.Trace
		for _, node := range b.Receivers[s] {
			rx := rlm.New(b.Net, d, node, rlm.Config{Session: s, MaxLayers: layers})
			tr := metrics.NewTrace(0, 0)
			rx.OnChange = func(c rlm.Change) { tr.Set(c.At, c.To) }
			rxs = append(rxs, rx)
			trs = append(trs, tr)
		}
		w.Receivers = append(w.Receivers, rxs)
		w.Traces = append(w.Traces, trs)
	}
	return w
}

// Run starts everything and advances to the given time.
func (w *RLMWorld) Run(until sim.Time) {
	if !w.started {
		w.started = true
		for _, s := range w.Sources {
			s.Start()
		}
		for _, rxs := range w.Receivers {
			for _, rx := range rxs {
				rx.Start()
			}
		}
	}
	w.Engine.RunUntil(until)
}

// AllTraces flattens traces with their optima.
func (w *RLMWorld) AllTraces() (traces []*metrics.Trace, optima []int) {
	for s := range w.Traces {
		traces = append(traces, w.Traces[s]...)
		optima = append(optima, w.Optimal[s]...)
	}
	return traces, optima
}

// BaselineRow compares TopoSense and RLM on the same scenario.
type BaselineRow struct {
	Scenario   string
	Algo       string // "TopoSense" | "RLM"
	Deviation  float64
	MaxChanges int
}

// BaselineConfig parameterizes the comparison.
type BaselineConfig struct {
	Seed     int64
	Duration sim.Time  // 0 = the paper's 1200 s
	Traffics []Traffic // nil = {CBR, VBR(P=3)}
	// Topology A set size and Topology B session count.
	PerSet   int // 0 = 4 (8 receivers)
	Sessions int // 0 = 4
}

func (c *BaselineConfig) normalize() {
	d := PaperDefaults()
	c.Duration = d.Dur(c.Duration)
	if c.Traffics == nil {
		c.Traffics = []Traffic{CBR, VBR3}
	}
	if c.PerSet == 0 {
		c.PerSet = 4
	}
	if c.Sessions == 0 {
		c.Sessions = 4
	}
}

// BaselineSpecs enumerates the TopoSense-vs-RLM comparison as independent
// runs, one per (topology, traffic, algorithm) combination. The shape the
// paper argues for: topology-aware coordination tracks the optimum at least
// as closely with fewer subscription changes, because receivers never probe
// a bottleneck another receiver already mapped.
func BaselineSpecs(cfg BaselineConfig) []Spec {
	cfg.normalize()
	var specs []Spec
	add := func(scenario string, tr Traffic, topoSense bool) {
		algo := "RLM"
		if topoSense {
			algo = "TopoSense"
		}
		scenarioName := fmt.Sprintf("Topology %s", scenario)
		if scenario == "A" {
			scenarioName += fmt.Sprintf(" (%d receivers)", 2*cfg.PerSet)
		} else {
			scenarioName += fmt.Sprintf(" (%d sessions)", cfg.Sessions)
		}
		scenarioName += ", " + tr.Name
		specs = append(specs, NewSpec("baseline",
			fmt.Sprintf("baseline/topo=%s/%s/%s", scenario, tr.Name, algo),
			cfg.Seed, cfg.Duration,
			func(m *Meter) (any, error) {
				e := sim.NewEngine(cfg.Seed)
				var b *topology.Build
				if scenario == "A" {
					b = topology.MustGenerate(e, &topology.AConfig{ReceiversPerSet: cfg.PerSet})
				} else {
					b = topology.MustGenerate(e, &topology.BConfig{Sessions: cfg.Sessions})
				}
				m.Observe(e, b.Net)
				var traces []*metrics.Trace
				var optima []int
				wc := WorldConfig{Seed: cfg.Seed, Traffic: tr}
				if topoSense {
					w := NewWorld(e, b, wc)
					w.Run(cfg.Duration)
					traces, optima = w.AllTraces()
				} else {
					w := NewRLMWorld(e, b, wc)
					w.Run(cfg.Duration)
					traces, optima = w.AllTraces()
				}
				return []BaselineRow{{
					Scenario:   scenarioName,
					Algo:       algo,
					Deviation:  metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
					MaxChanges: metrics.MaxChanges(traces, 0, cfg.Duration),
				}}, nil
			}))
	}
	for _, scenario := range []string{"A", "B"} {
		for _, tr := range cfg.Traffics {
			add(scenario, tr, true)
			add(scenario, tr, false)
		}
	}
	return specs
}

// RunBaseline runs the comparison by executing its specs serially.
func RunBaseline(cfg BaselineConfig) []BaselineRow {
	return mustGather[BaselineRow](ExecuteAll(BaselineSpecs(cfg)))
}

// BaselineTable renders the comparison.
func BaselineTable(rows []BaselineRow) *Table {
	t := &Table{
		Title:  "Baseline comparison: TopoSense vs receiver-driven (RLM-style)",
		Header: []string{"scenario", "algorithm", "mean relative deviation", "max changes"},
	}
	for _, r := range rows {
		t.AddRow(r.Scenario, r.Algo, fmt.Sprintf("%.3f", r.Deviation), fmt.Sprintf("%d", r.MaxChanges))
	}
	return t
}
