package experiments

import "fmt"

// ValidateEngineFlags checks a CLI's engine-selection flags for the one
// combination the simulator cannot honour: fault injection (-failat) on the
// sharded engine. Tree repair after a link failure rebuilds routing state
// across the whole network, which the conservative sharded engine cannot do
// safely from inside one partition, so the combination is rejected up front
// with an error telling the user which flag to drop — instead of silently
// running a fault-free simulation or crashing mid-run.
//
// shards is the -shards flag value (0 = the single-threaded engine) and
// failAt the -failat seconds (0 = no fault injection).
func ValidateEngineFlags(shards int, failAt float64) error {
	if failAt > 0 && shards >= 1 {
		return fmt.Errorf("-failat %g is not supported with -shards %d: "+
			"fault injection needs the whole network in one partition for tree repair, "+
			"which only the single-threaded serial engine guarantees; "+
			"drop -shards (or set -shards 0) to fall back to the serial engine",
			failAt, shards)
	}
	return nil
}
