package experiments

import "fmt"

// ValidateEngineFlags checks a CLI's engine- and control-plane-selection
// flags (-shards, -failat, -aggregate, -federate) for the combinations the
// simulator cannot honour, rejecting each up front with an error that names
// the flag to drop and the fallback — instead of silently running a
// different simulation than asked or crashing mid-run. toposim and
// topobench call it with the same arguments, so the matrix is enforced
// identically in both CLIs.
//
// The rejected combinations:
//
//   - -failat with -shards: tree repair after a link failure rebuilds
//     routing state across the whole network, which the conservative
//     sharded engine cannot do safely from inside one partition; only the
//     single-threaded serial engine hosts fault injection.
//
//   - -failat with -federate: repair re-homes receivers across domain
//     boundaries, but federated leaf controllers hold fixed per-domain
//     scopes — a re-homed receiver would fall out of every leaf's view.
//     Fault experiments run on the flat control plane.
//
//   - -federate with -aggregate: the in-network aggregation layer routes
//     every report toward exactly one flat controller node; the federated
//     plane already folds reports per domain at its leaf controllers, so
//     the two layers cannot serve the same world.
//
//   - -churn with -federate: CLI-driven churn cycles every receiver, so
//     whole leaf-controller domains drain and refill mid-run. The
//     drained-domain budget-hold is exercised by the federation tests; the
//     CLI churn sweep runs on the flat control plane, where the departure
//     lifecycle (Deregister, purge, prune) is the thing under study.
//
// Everything else composes: -shards with -aggregate (decision-equivalent to
// the serial flat run), -shards with -federate (leaf passes and reconciles
// run at global barriers), -aggregate with -failat (the aggregation layer
// re-resolves routes at flush time across repairs), and -churn with -shards
// (the churn driver runs entirely at stop-the-world barriers).
//
// shards is the -shards flag value (0 = the single-threaded engine), failAt
// the -failat seconds (0 = no fault injection), aggregate/federate the
// corresponding boolean flags, and churn the -churn mean period in seconds
// (0 = no churn).
func ValidateEngineFlags(shards int, failAt float64, aggregate, federate bool, churn float64) error {
	if failAt > 0 && shards >= 1 {
		return fmt.Errorf("-failat %g is not supported with -shards %d: "+
			"fault injection needs the whole network in one partition for tree repair, "+
			"which only the single-threaded serial engine guarantees; "+
			"drop -shards (or set -shards 0) to fall back to the serial engine",
			failAt, shards)
	}
	if failAt > 0 && federate {
		return fmt.Errorf("-failat %g is not supported with -federate: "+
			"tree repair can re-home receivers across domain boundaries, outside every "+
			"federated leaf controller's fixed scope; "+
			"drop -federate to fall back to the flat control plane",
			failAt)
	}
	if churn > 0 && federate {
		return fmt.Errorf("-churn %g is not supported with -federate: "+
			"churning every receiver drains whole leaf-controller domains mid-run; "+
			"drop -federate to study the departure lifecycle on the flat control plane",
			churn)
	}
	if churn < 0 {
		return fmt.Errorf("-churn %g: the mean join/leave period must be positive (0 = no churn)", churn)
	}
	if federate && aggregate {
		return fmt.Errorf("-federate is not supported with -aggregate: " +
			"the in-network aggregation layer serves a single flat controller node, and the " +
			"federated plane already folds reports per domain at its leaf controllers; " +
			"drop -aggregate to run the hierarchical control plane, or drop -federate to keep " +
			"flat-controller aggregation")
	}
	return nil
}
