package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple aligned-text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
