package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"toposense/internal/plot"
	"toposense/internal/sim"
	"toposense/internal/trace"
)

// Fig9Config parameterizes the subscription/loss trace experiment.
type Fig9Config struct {
	Seed       int64
	Sessions   int      // 0 = the paper's 4 competing sessions
	Traffic    Traffic  // zero = VBR(P=3), as in the paper
	Duration   sim.Time // 0 = the paper's 1200 s
	Sample     sim.Time // sampling period; 0 = 500 ms
	WindowFrom sim.Time // displayed window start; 0 = auto (after warmup)
	WindowLen  sim.Time // displayed window length; 0 = the paper's 10 s
}

func (c *Fig9Config) normalize() {
	d := PaperDefaults()
	d.Traffic = VBR3
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.Sessions == 0 {
		c.Sessions = 4
	}
	if c.Sample == 0 {
		c.Sample = 500 * sim.Millisecond
	}
	if c.WindowLen == 0 {
		c.WindowLen = 10 * sim.Second
	}
	if c.WindowFrom == 0 {
		// A window straddling a capacity re-estimation cycle shows the
		// over-subscription bursts the paper highlights.
		c.WindowFrom = c.Duration/2 - c.WindowLen/2
	}
}

// Fig9Result carries the sampled series: per session, the subscription
// level and the observed loss rate over time.
type Fig9Result struct {
	Levels []*trace.Series // one per session
	Losses []*trace.Series // one per session
	Window struct {
		From, To sim.Time
	}
}

// Fig9Specs enumerates Figure 9 ("Layer Subscription and Loss History")
// as a single run whose rows are the *Fig9Result sampled series.
func Fig9Specs(cfg Fig9Config) []Spec {
	cfg.normalize()
	return []Spec{NewSpec("9",
		fmt.Sprintf("fig9/sessions=%d/%s", cfg.Sessions, cfg.Traffic.Name),
		cfg.Seed, cfg.Duration,
		func(m *Meter) (any, error) {
			w := NewWorldB(cfg.Sessions, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic})
			m.ObserveWorld(w)
			sampler := trace.NewSampler(w.Engine, cfg.Sample)
			res := &Fig9Result{}
			res.Window.From = cfg.WindowFrom
			res.Window.To = cfg.WindowFrom + cfg.WindowLen
			for s := range w.Receivers {
				rx := w.Receivers[s][0]
				lvl := fmt.Sprintf("session%d/level", s)
				lss := fmt.Sprintf("session%d/loss", s)
				sampler.Probe(lvl, func() float64 { return float64(rx.Level()) })
				sampler.Probe(lss, func() float64 { return rx.LastLoss })
			}
			sampler.Start()
			w.Run(cfg.Duration)
			sampler.Stop()
			for s := 0; s < cfg.Sessions; s++ {
				res.Levels = append(res.Levels, sampler.Series(fmt.Sprintf("session%d/level", s)))
				res.Losses = append(res.Losses, sampler.Series(fmt.Sprintf("session%d/loss", s)))
			}
			return res, nil
		})}
}

// RunFig9 reproduces Figure 9: run Topology B and record each session's
// subscription level and loss rate.
func RunFig9(cfg Fig9Config) *Fig9Result {
	res := Fig9Specs(cfg)[0].Execute(0)
	if res.Failed() {
		panic("experiments: " + res.Err)
	}
	return res.Rows.(*Fig9Result)
}

// WindowTable renders the paper's 10-second window sample by sample.
func (r *Fig9Result) WindowTable() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 9: subscription and loss, %d sessions, window %.0f-%.0f s",
			len(r.Levels), r.Window.From.Seconds(), r.Window.To.Seconds()),
	}
	t.Header = []string{"t (s)"}
	for s := range r.Levels {
		t.Header = append(t.Header, fmt.Sprintf("s%d lvl", s), fmt.Sprintf("s%d loss", s))
	}
	if len(r.Levels) == 0 || r.Levels[0] == nil {
		return t
	}
	lv := make([]*trace.Series, len(r.Levels))
	ls := make([]*trace.Series, len(r.Losses))
	for s := range r.Levels {
		lv[s] = r.Levels[s].Window(r.Window.From, r.Window.To)
		ls[s] = r.Losses[s].Window(r.Window.From, r.Window.To)
	}
	for i := 0; i < lv[0].Len(); i++ {
		at, _ := lv[0].At(i)
		row := []string{fmt.Sprintf("%.1f", at.Seconds())}
		for s := range lv {
			_, level := lv[s].At(i)
			_, loss := ls[s].At(i)
			row = append(row, fmt.Sprintf("%.0f", level), fmt.Sprintf("%.3f", loss))
		}
		t.AddRow(row...)
	}
	return t
}

// Plot renders the sessions' subscription levels over the full run as an
// ASCII chart — the upper panel of the paper's Figure 9.
func (r *Fig9Result) Plot(width, height int) string {
	return plot.Line(r.Levels, width, height)
}

// PlotWindow renders the configured window only, level and loss stacked —
// both panels of the paper's Figure 9.
func (r *Fig9Result) PlotWindow(width, height int) string {
	var lv, ls []*trace.Series
	for s := range r.Levels {
		lv = append(lv, r.Levels[s].Window(r.Window.From, r.Window.To))
		ls = append(ls, r.Losses[s].Window(r.Window.From, r.Window.To))
	}
	return "subscription level:\n" + plot.Line(lv, width, height) +
		"loss rate:\n" + plot.Line(ls, width, height)
}

// Fig9Summary is the JSON-friendly reduction of one session's series —
// what the Result export carries instead of the raw samples.
type Fig9Summary struct {
	Session    int     `json:"session"`
	MeanLevel  float64 `json:"mean_level"`
	MeanLoss   float64 `json:"mean_loss"`
	OverSubPct float64 `json:"oversub_pct"` // % of samples at level >= 5
}

// SummaryRows reduces each session's series to its summary statistics.
func (r *Fig9Result) SummaryRows() []Fig9Summary {
	var rows []Fig9Summary
	for s, lv := range r.Levels {
		if lv == nil || lv.Len() == 0 {
			continue
		}
		over := 0
		for i := 0; i < lv.Len(); i++ {
			_, v := lv.At(i)
			if v >= 5 {
				over++
			}
		}
		rows = append(rows, Fig9Summary{
			Session:    s,
			MeanLevel:  lv.Mean(),
			MeanLoss:   r.Losses[s].Mean(),
			OverSubPct: 100 * float64(over) / float64(lv.Len()),
		})
	}
	return rows
}

// MarshalJSON exports the window bounds and per-session summaries; the raw
// sampled series stay out of the JSON (they are plot inputs, not results).
func (r *Fig9Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		WindowFromS float64       `json:"window_from_s"`
		WindowToS   float64       `json:"window_to_s"`
		Sessions    []Fig9Summary `json:"sessions"`
	}{r.Window.From.Seconds(), r.Window.To.Seconds(), r.SummaryRows()})
}

// Summary reports, per session, how much of the run was spent at each
// level and whether over-subscription to layers 5/6 occurred (the paper's
// observation about capacity re-estimation).
func (r *Fig9Result) Summary() string {
	var b strings.Builder
	for _, s := range r.SummaryRows() {
		fmt.Fprintf(&b, "session %d: mean level %.2f, loss mean %.3f, %.1f%% of samples over-subscribed (>=5)\n",
			s.Session, s.MeanLevel, s.MeanLoss, s.OverSubPct)
	}
	return b.String()
}
