package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/trace"
)

// StaleRow is one point of Figure 10: tracking quality on Topology A for a
// given information staleness and session size. Deviation is the paper's
// relative-deviation metric; MeanLoss and MaxChanges expose the degradation
// the deviation metric partially hides (over- and under-subscription cancel
// in time share, but receivers still suffer the loss of every late
// reaction).
type StaleRow struct {
	Staleness  sim.Time
	Receivers  int // total receivers in the session
	Deviation  float64
	MeanLoss   float64 // mean per-interval loss rate across receivers
	MaxChanges int     // busiest receiver's subscription changes
}

// Fig10Config parameterizes the stale-information experiment.
type Fig10Config struct {
	Seed      int64
	Duration  sim.Time   // 0 = the paper's 1200 s
	Traffic   Traffic    // zero = VBR(P=3), as in the paper
	PerSet    []int      // receivers per set; nil = {1, 2, 4} (2/4/8 total)
	Staleness []sim.Time // nil = {0, 2, ..., 18} seconds
}

func (c *Fig10Config) normalize() {
	d := PaperDefaults()
	d.Traffic = VBR3
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.PerSet == nil {
		c.PerSet = []int{1, 2, 4}
	}
	if c.Staleness == nil {
		for s := 0; s <= 18; s += 2 {
			c.Staleness = append(c.Staleness, sim.Time(s)*sim.Second)
		}
	}
}

// Fig10Specs enumerates Figure 10 ("Impact of stale information on Topology
// A subscription with VBR traffic") as independent runs, one per (set size,
// staleness) point: sweep the discovery tool's staleness and measure the
// mean relative deviation from the optimal subscription, plus the mean loss
// rate and change count the deviation metric partially hides.
func Fig10Specs(cfg Fig10Config) []Spec {
	cfg.normalize()
	var specs []Spec
	for _, per := range cfg.PerSet {
		for _, stale := range cfg.Staleness {
			specs = append(specs, NewSpec("10",
				fmt.Sprintf("fig10/rx=%d/stale=%.0fs", 2*per, stale.Seconds()),
				cfg.Seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := NewWorldA(per, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic, Staleness: stale})
					m.ObserveWorld(w)
					sampler := trace.NewSampler(w.Engine, sim.Second)
					for i, rx := range w.Receivers[0] {
						rx := rx
						sampler.Probe(fmt.Sprintf("loss%d", i), func() float64 { return rx.LastLoss })
					}
					sampler.Start()
					w.Run(cfg.Duration)
					sampler.Stop()
					traces, optima := w.AllTraces()
					meanLoss := 0.0
					for i := range w.Receivers[0] {
						meanLoss += sampler.Series(fmt.Sprintf("loss%d", i)).Mean()
					}
					meanLoss /= float64(len(w.Receivers[0]))
					return []StaleRow{{
						Staleness:  stale,
						Receivers:  2 * per,
						Deviation:  metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
						MeanLoss:   meanLoss,
						MaxChanges: metrics.MaxChanges(traces, 0, cfg.Duration),
					}}, nil
				}))
		}
	}
	return specs
}

// RunFig10 reproduces Figure 10 by executing its specs serially.
func RunFig10(cfg Fig10Config) []StaleRow {
	return mustGather[StaleRow](ExecuteAll(Fig10Specs(cfg)))
}

// StaleTable renders Figure 10 rows.
func StaleTable(rows []StaleRow) *Table {
	t := &Table{
		Title:  "Figure 10: impact of stale topology/loss information on Topology A (VBR traffic)",
		Header: []string{"staleness (s)", "receivers", "rel deviation", "mean loss", "max changes"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.0f", r.Staleness.Seconds()),
			fmt.Sprintf("%d", r.Receivers),
			fmt.Sprintf("%.3f", r.Deviation),
			fmt.Sprintf("%.4f", r.MeanLoss),
			fmt.Sprintf("%d", r.MaxChanges),
		)
	}
	return t
}
