package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/trace"
)

// StaleRow is one point of Figure 10: tracking quality on Topology A for a
// given information staleness and session size. Deviation is the paper's
// relative-deviation metric; MeanLoss and MaxChanges expose the degradation
// the deviation metric partially hides (over- and under-subscription cancel
// in time share, but receivers still suffer the loss of every late
// reaction).
type StaleRow struct {
	Staleness  sim.Time
	Receivers  int // total receivers in the session
	Deviation  float64
	MeanLoss   float64 // mean per-interval loss rate across receivers
	MaxChanges int     // busiest receiver's subscription changes
}

// Fig10Config parameterizes the stale-information experiment.
type Fig10Config struct {
	Seed      int64
	Duration  sim.Time   // 0 = the paper's 1200 s
	Traffic   Traffic    // zero = VBR(P=3), as in the paper
	PerSet    []int      // receivers per set; nil = {1, 2, 4} (2/4/8 total)
	Staleness []sim.Time // nil = {0, 2, ..., 18} seconds
}

func (c *Fig10Config) normalize() {
	if c.Duration == 0 {
		c.Duration = PaperDuration
	}
	if c.Traffic.Name == "" {
		c.Traffic = VBR3
	}
	if c.PerSet == nil {
		c.PerSet = []int{1, 2, 4}
	}
	if c.Staleness == nil {
		for s := 0; s <= 18; s += 2 {
			c.Staleness = append(c.Staleness, sim.Time(s)*sim.Second)
		}
	}
}

// RunFig10 reproduces Figure 10 ("Impact of stale information on Topology A
// subscription with VBR traffic"): sweep the discovery tool's staleness and
// measure the mean relative deviation from the optimal subscription.
func RunFig10(cfg Fig10Config) []StaleRow {
	cfg.normalize()
	var rows []StaleRow
	for _, per := range cfg.PerSet {
		for _, stale := range cfg.Staleness {
			w := NewWorldA(per, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic, Staleness: stale})
			sampler := trace.NewSampler(w.Engine, sim.Second)
			for i, rx := range w.Receivers[0] {
				rx := rx
				sampler.Probe(fmt.Sprintf("loss%d", i), func() float64 { return rx.LastLoss })
			}
			sampler.Start()
			w.Run(cfg.Duration)
			sampler.Stop()
			traces, optima := w.AllTraces()
			meanLoss := 0.0
			for i := range w.Receivers[0] {
				meanLoss += sampler.Series(fmt.Sprintf("loss%d", i)).Mean()
			}
			meanLoss /= float64(len(w.Receivers[0]))
			rows = append(rows, StaleRow{
				Staleness:  stale,
				Receivers:  2 * per,
				Deviation:  metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
				MeanLoss:   meanLoss,
				MaxChanges: metrics.MaxChanges(traces, 0, cfg.Duration),
			})
		}
	}
	return rows
}

// StaleTable renders Figure 10 rows.
func StaleTable(rows []StaleRow) *Table {
	t := &Table{
		Title:  "Figure 10: impact of stale topology/loss information on Topology A (VBR traffic)",
		Header: []string{"staleness (s)", "receivers", "rel deviation", "mean loss", "max changes"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.0f", r.Staleness.Seconds()),
			fmt.Sprintf("%d", r.Receivers),
			fmt.Sprintf("%.3f", r.Deviation),
			fmt.Sprintf("%.4f", r.MeanLoss),
			fmt.Sprintf("%d", r.MaxChanges),
		)
	}
	return t
}
