package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/federation"
	"toposense/internal/mcast"
	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/receiver"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
	"toposense/internal/topology"
)

// FedWorld is an assembled simulation running the hierarchical control
// plane: one scoped leaf controller per topology domain (each seeing only
// its own subtree, exactly the paper's Figure 3 per-domain agents), a
// federation parent at the topology's controller node reconciling
// per-domain session budgets, and receivers registered with their domain's
// leaf — never with a controller outside their domain.
type FedWorld struct {
	Engine    sim.Runner
	Net       *netsim.Network
	Domain    *mcast.Domain
	Build     *topology.Build
	Sources   []*source.Source
	Receivers [][]*receiver.Receiver // [session][i]
	Traces    [][]*metrics.Trace     // parallel to Receivers
	Optimal   [][]int                // parallel to Receivers
	Parent    *federation.Parent
	Leaves    []*federation.Leaf        // sorted by domain id
	LeafFor   map[int]*federation.Leaf  // domain label -> its leaf
	ScopeFor  map[int]map[netsim.NodeID]bool // domain label -> node set
	started   bool
}

// NewFedWorld assembles a federated world on a built topology. The build
// must carry generator-emitted domain labels (tiered, tree, star, linear
// families do); every domain containing receivers gets a leaf controller at
// its top node — the lowest node id carrying the label, which is the
// domain's ingress since generators emit parents before children — and the
// parent runs at Build.Controller. cfg.Aggregate is rejected: the
// in-network aggregation layer serves exactly one flat controller node.
func NewFedWorld(e sim.Runner, b *topology.Build, cfg WorldConfig) (*FedWorld, error) {
	if b.Domains == nil {
		return nil, fmt.Errorf("federation: topology family emits no domain labels; use tiered/tree/star/linear")
	}
	if cfg.Aggregate {
		return nil, fmt.Errorf("federation: -aggregate serves a single flat controller; drop one of the two flags")
	}
	if se, ok := e.(*sim.ShardedEngine); ok {
		b.Net.Partition(se, b.Domains)
	}
	layers := cfg.Layers
	if len(cfg.Rates) > 0 {
		layers = len(cfg.Rates)
	} else if layers == 0 {
		layers = source.DefaultLayers
	}
	d := mcast.NewDomain(b.Net)
	if cfg.LeaveLatency != 0 {
		d.LeaveLatency = cfg.LeaveLatency
	}

	w := &FedWorld{
		Engine: e, Net: b.Net, Domain: d, Build: b, Optimal: b.Optimal,
		LeafFor:  make(map[int]*federation.Leaf),
		ScopeFor: make(map[int]map[netsim.NodeID]bool),
	}
	sessions := make([]int, len(b.Sources))
	for i, srcNode := range b.Sources {
		sessions[i] = i
		w.Sources = append(w.Sources, source.New(b.Net, d, srcNode, source.Config{
			Session:    i,
			Layers:     layers,
			PeakToMean: cfg.Traffic.PeakToMean,
			Rates:      cfg.Rates,
		}))
	}

	algCfg := cfg.Alg
	if algCfg.LayerRates == nil {
		if len(cfg.Rates) > 0 {
			algCfg.LayerRates = append([]float64(nil), cfg.Rates...)
		} else {
			algCfg.LayerRates = source.Rates(layers)
		}
	}
	algCfg.Normalize()

	// Domain geography: node sets per label, and which domains hold
	// receivers (only those need a controller).
	nodeSet := make(map[int]map[netsim.NodeID]bool)
	leafNode := make(map[int]netsim.NodeID) // lowest node id per label = ingress
	for id, dom := range b.Domains {
		nid := netsim.NodeID(id)
		if nodeSet[dom] == nil {
			nodeSet[dom] = make(map[netsim.NodeID]bool)
			leafNode[dom] = nid
		}
		nodeSet[dom][nid] = true
		if nid < leafNode[dom] {
			leafNode[dom] = nid
		}
	}
	needLeaf := make(map[int]bool)
	for s := range b.Receivers {
		for _, node := range b.Receivers[s] {
			needLeaf[b.Domains[node.ID]] = true
		}
	}
	// Domain 0 holds the backbone and the parent; any receivers there are
	// controlled by a leaf co-resident with the parent, scoped to label 0.
	leafNode[0] = b.Controller.ID

	doms := make([]int, 0, len(needLeaf))
	for dom := range needLeaf {
		doms = append(doms, dom)
	}
	sort.Ints(doms)

	w.Parent = federation.NewParent(b.Net, b.Controller, algCfg.LayerRates, algCfg.Interval)
	for _, dom := range doms {
		scope := nodeSet[dom]
		w.ScopeFor[dom] = scope
		tool := topodisc.NewTool(b.Net, d, sessions)
		tool.Scope = scope
		tool.Staleness = cfg.Staleness
		tool.ProbeMode = cfg.ProbeDiscovery
		// Distinct RNG stream per leaf, derived from the run seed the same
		// way the flat controller's is.
		alg := core.New(algCfg, rand.New(rand.NewSource(cfg.Seed+1+int64(dom))))
		ctrl := controller.New(b.Net, d, b.Net.Node(leafNode[dom]), tool, alg)
		ctrl.Staleness = cfg.Staleness
		leaf := federation.NewLeaf(ctrl, dom, b.Controller.ID)
		w.Leaves = append(w.Leaves, leaf)
		w.LeafFor[dom] = leaf
		w.Parent.AddDomain(federation.DomainConfig{
			Domain:          dom,
			Leaf:            leafNode[dom],
			BorderBandwidth: borderBandwidth(b, dom),
		})
	}

	for s := range b.Receivers {
		var rxs []*receiver.Receiver
		var trs []*metrics.Trace
		for _, node := range b.Receivers[s] {
			ctrlNode := leafNode[b.Domains[node.ID]]
			rx := receiver.New(b.Net, d, node, receiver.Config{
				Session:      s,
				MaxLayers:    layers,
				InitialLevel: 1,
				Controller:   ctrlNode,
			})
			tr := metrics.NewTrace(0, 0)
			rx.OnChange = func(c receiver.Change) { tr.Set(c.At, c.To) }
			rxs = append(rxs, rx)
			trs = append(trs, tr)
		}
		w.Receivers = append(w.Receivers, rxs)
		w.Traces = append(w.Traces, trs)
	}
	return w, nil
}

// borderBandwidth returns the tightest link capacity crossing from outside
// into domain dom — the border the parent budgets against. 0 (uncapped)
// when the domain has no inbound border link (domain 0, the backbone).
func borderBandwidth(b *topology.Build, dom int) float64 {
	if dom == 0 {
		return 0
	}
	best := 0.0
	for _, l := range b.Net.Links() {
		if b.Domains[l.To] == dom && b.Domains[l.From] != dom {
			if best == 0 || l.Bandwidth < best {
				best = l.Bandwidth
			}
		}
	}
	return best
}

// WireObs attaches an observability bundle to every component: packet
// probe, tree events, each leaf controller, the federation parent, and the
// engine. Nil is a no-op.
func (w *FedWorld) WireObs(o *obs.Obs) {
	if o == nil {
		return
	}
	w.Net.AttachProbe(obs.NewNetProbe(o))
	w.Domain.SetObs(o)
	for _, l := range w.Leaves {
		l.Controller().SetObs(o)
	}
	w.Parent.SetObs(o)
	o.ObserveEngine(w.Engine)
}

// Start launches sources, leaf controllers, the parent, and receivers.
func (w *FedWorld) Start() {
	if w.started {
		return
	}
	w.started = true
	for _, s := range w.Sources {
		s.Start()
	}
	for _, l := range w.Leaves {
		l.Controller().Start()
	}
	w.Parent.Start()
	for _, rxs := range w.Receivers {
		for _, rx := range rxs {
			rx.Start()
		}
	}
}

// Shutdown stops every component.
func (w *FedWorld) Shutdown() {
	for _, s := range w.Sources {
		s.Stop()
	}
	for _, l := range w.Leaves {
		l.Controller().Stop()
	}
	w.Parent.Stop()
	for _, rxs := range w.Receivers {
		for _, rx := range rxs {
			rx.Stop()
		}
	}
}

// Run starts the world (if needed) and advances to the given time.
func (w *FedWorld) Run(until sim.Time) {
	w.Start()
	w.Engine.RunUntil(until)
}

// AllTraces flattens traces with their optima, session-major.
func (w *FedWorld) AllTraces() (traces []*metrics.Trace, optima []int) {
	for s := range w.Traces {
		traces = append(traces, w.Traces[s]...)
		optima = append(optima, w.Optimal[s]...)
	}
	return traces, optima
}
