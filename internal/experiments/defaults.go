package experiments

import "toposense/internal/sim"

// QuickDuration is the scaled-down run length the -quick sweeps use.
const QuickDuration = 240 * sim.Second

// Defaults is the shared sweep vocabulary: the fallback values that every
// figure config's normalize method used to re-implement by hand. A config
// resolves its zero-valued fields through one Defaults instance so the
// paper's parameters live in exactly one place.
type Defaults struct {
	Duration sim.Time  // fallback run length
	Traffic  Traffic   // fallback single-run traffic model
	Traffics []Traffic // fallback traffic sweep
	Seeds    int       // fallback seed count for averaged studies
}

// PaperDefaults returns the paper's published sweep vocabulary: 1200 s
// runs, CBR traffic, the CBR/VBR3/VBR6 sweep, and 3 seeds for averaged
// studies.
func PaperDefaults() Defaults {
	return Defaults{Duration: PaperDuration, Traffic: CBR, Traffics: AllTraffic, Seeds: 3}
}

// ShortDefaults is PaperDefaults at the 600 s duration the secondary
// studies (churn, convergence, domains, queues, last-mile, variance,
// extensions) run at.
func ShortDefaults() Defaults {
	d := PaperDefaults()
	d.Duration = 600 * sim.Second
	return d
}

// Dur returns v, or the default duration when v is zero.
func (d Defaults) Dur(v sim.Time) sim.Time {
	if v == 0 {
		return d.Duration
	}
	return v
}

// Tr returns v, or the default traffic model when v is unset.
func (d Defaults) Tr(v Traffic) Traffic {
	if v.Name == "" {
		return d.Traffic
	}
	return v
}

// TrafficSweep returns v, or the default traffic sweep when v is nil.
func (d Defaults) TrafficSweep(v []Traffic) []Traffic {
	if v == nil {
		return d.Traffics
	}
	return v
}

// SeedCount returns v, or the default seed count when v is not positive.
func (d Defaults) SeedCount(v int) int {
	if v <= 0 {
		return d.Seeds
	}
	return v
}
