package experiments

import (
	"fmt"
	"strings"
	"testing"

	"toposense/internal/sim"
	"toposense/internal/topology"
)

// finalLevels flattens every receiver's final subscription level,
// session-major — the decision surface the equivalence contract covers.
func finalLevels(w *World) []int {
	var levels []int
	for s := range w.Receivers {
		for _, rx := range w.Receivers[s] {
			levels = append(levels, rx.Level())
		}
	}
	return levels
}

// TestAggregateDecisionEquivalence is the acceptance criterion on the
// paper topologies: with in-network aggregation on, the prescribed levels
// every receiver settles at must match the flat-report baseline exactly.
// Aggregation changes the control plane's packet count and timing, not the
// information content, so the controller's decisions must be unchanged
// where the flat control plane is not itself overloaded.
func TestAggregateDecisionEquivalence(t *testing.T) {
	const dur = 120 * sim.Second
	build := []struct {
		name string
		mk   func(cfg WorldConfig) *World
	}{
		{"topologyA", func(cfg WorldConfig) *World { return NewWorldA(2, cfg) }},
		{"topologyB", func(cfg WorldConfig) *World { return NewWorldB(4, cfg) }},
	}
	for _, b := range build {
		t.Run(b.name, func(t *testing.T) {
			flat := b.mk(WorldConfig{Seed: 1, Traffic: CBR})
			flat.Run(dur)
			agg := b.mk(WorldConfig{Seed: 1, Traffic: CBR, Aggregate: true})
			agg.Run(dur)

			if agg.Aggregator == nil || agg.Aggregator.Absorbed == 0 {
				t.Fatal("aggregation world absorbed no reports — the layer is not installed")
			}
			if agg.Controller.AggregatesRecv == 0 {
				t.Fatal("controller consumed no aggregates")
			}
			if got, want := fmt.Sprint(finalLevels(agg)), fmt.Sprint(finalLevels(flat)); got != want {
				t.Errorf("final levels diverge with aggregation\nflat: %s\nagg:  %s", want, got)
			}
		})
	}
}

// TestAggregateFanInReduction pins the perf claim at a small-tree scale
// that stays test-fast: the aggregated twin's controller fan-in (control
// messages) and control bytes must come in well below the flat baseline.
// The full >=100x message and >=10x byte reductions at the 10^5-receiver
// ladder point are captured by `make bench-fanin` (BENCH_fanin.json).
func TestAggregateFanInReduction(t *testing.T) {
	const point = "tree,depth=2,branch=5,rxleaf=4" // 100 receivers
	run := func(aggregate bool) *World {
		_, tcfg, err := topology.Parse(point)
		if err != nil {
			t.Fatal(err)
		}
		e := NewRunEngine(1, 0)
		b, err := topology.Generate(e, tcfg)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorld(e, b, WorldConfig{Seed: 1, Traffic: CBR, Aggregate: aggregate})
		w.Run(30 * sim.Second)
		return w
	}
	flat := run(false)
	agg := run(true)

	fm, am := flat.Controller.CtlMsgsRecv, agg.Controller.CtlMsgsRecv
	fb, ab := flat.Controller.CtlBytesRecv, agg.Controller.CtlBytesRecv
	if am == 0 || ab == 0 {
		t.Fatalf("aggregated controller saw no control traffic (msgs=%d bytes=%d)", am, ab)
	}
	t.Logf("ctl msgs: flat=%d agg=%d (%.1fx); ctl bytes: flat=%d agg=%d (%.1fx)",
		fm, am, float64(fm)/float64(am), fb, ab, float64(fb)/float64(ab))
	// Conservative floors for 100 receivers behind root branching 5; the
	// ratios grow linearly with receivers per subtree.
	if fm < 5*am {
		t.Errorf("controller fan-in reduced only %.1fx (flat %d, agg %d), want >= 5x",
			float64(fm)/float64(am), fm, am)
	}
	if fb < 3*ab {
		t.Errorf("control bytes reduced only %.1fx (flat %d, agg %d), want >= 3x",
			float64(fb)/float64(ab), fb, ab)
	}
	if agg.Controller.BatchesSent == 0 {
		t.Error("no suggestion batches sent")
	}
	// Aggregation must not degrade outcome quality at a scale the flat
	// control plane handles fine.
	ftr, fopt := flat.AllTraces()
	atr, aopt := agg.AllTraces()
	var fgood, agood int
	for i, tr := range ftr {
		if len(tr.Points()) > 0 && tr.Points()[len(tr.Points())-1].Level >= fopt[i] {
			fgood++
		}
	}
	for i, tr := range atr {
		if len(tr.Points()) > 0 && tr.Points()[len(tr.Points())-1].Level >= aopt[i] {
			agood++
		}
	}
	if agood < fgood {
		t.Errorf("aggregated run converged %d receivers to optimal, flat %d", agood, fgood)
	}
}

// TestScaleSpecsAggregateTwins: the fig_scale sweep emits an "/agg" twin
// per ladder point when asked.
func TestScaleSpecsAggregateTwins(t *testing.T) {
	specs := ScaleSpecs(ScaleConfig{Seed: 1, Quick: true, Topo: "tree", Aggregate: true})
	var flat, agg int
	for _, s := range specs {
		if len(s.Name) > 4 && s.Name[len(s.Name)-4:] == "/agg" {
			agg++
		} else {
			flat++
		}
	}
	if flat != 2 || agg != 2 {
		t.Errorf("quick tree ladder: %d flat / %d agg specs, want 2/2", flat, agg)
	}
}

// TestValidateEngineFlags covers the full -shards/-failat/-aggregate/
// -federate/-churn matrix: the unsupportable pairs are rejected with errors
// that name both flags and the fallback, and every other combination — in
// particular -shards with -aggregate, -failat with -aggregate, -shards
// with -federate, and -churn with -shards or -failat — passes.
func TestValidateEngineFlags(t *testing.T) {
	cases := []struct {
		name                string
		shards              int
		failAt              float64
		aggregate, federate bool
		churn               float64
		wantErr             bool
		frags               []string // fragments the error must contain
	}{
		{name: "all off", wantErr: false},
		{name: "serial faults", failAt: 200, wantErr: false},
		{name: "sharded clean", shards: 4, wantErr: false},
		{name: "aggregate alone", aggregate: true, wantErr: false},
		{name: "federate alone", federate: true, wantErr: false},
		{name: "sharded aggregate", shards: 4, aggregate: true, wantErr: false},
		{name: "sharded federate", shards: 4, federate: true, wantErr: false},
		{name: "faults with aggregate", failAt: 200, aggregate: true, wantErr: false},
		{name: "churn alone", churn: 4, wantErr: false},
		{name: "churn sharded", shards: 4, churn: 4, wantErr: false},
		{name: "churn with faults", failAt: 200, churn: 4, wantErr: false},
		{name: "churn with aggregate", aggregate: true, churn: 4, wantErr: false},

		{name: "faults on one worker", shards: 1, failAt: 200, wantErr: true,
			frags: []string{"-failat", "-shards", "serial engine"}},
		{name: "faults sharded", shards: 4, failAt: 200, wantErr: true,
			frags: []string{"-failat", "-shards", "serial engine"}},
		{name: "faults sharded small failat", shards: 8, failAt: 0.5, wantErr: true,
			frags: []string{"-failat", "-shards", "serial engine"}},
		{name: "faults federated", failAt: 200, federate: true, wantErr: true,
			frags: []string{"-failat", "-federate", "drop -federate"}},
		{name: "federate with aggregate", aggregate: true, federate: true, wantErr: true,
			frags: []string{"-federate", "-aggregate", "drop -aggregate"}},
		{name: "churn federated", churn: 4, federate: true, wantErr: true,
			frags: []string{"-churn", "-federate", "drop -federate"}},
		{name: "negative churn", churn: -1, wantErr: true,
			frags: []string{"-churn", "positive"}},
		{name: "everything at once", shards: 4, failAt: 200, aggregate: true, federate: true,
			wantErr: true, frags: []string{"-failat"}},
	}
	for _, c := range cases {
		err := ValidateEngineFlags(c.shards, c.failAt, c.aggregate, c.federate, c.churn)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: ValidateEngineFlags(shards=%d, failat=%g, agg=%v, fed=%v) error = %v, want error %v",
				c.name, c.shards, c.failAt, c.aggregate, c.federate, err, c.wantErr)
			continue
		}
		if err != nil {
			for _, frag := range c.frags {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("%s: error %q does not mention %q", c.name, err, frag)
				}
			}
		}
	}
}
