package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

// Queue-policy comparison: the paper cites router-based priority
// packet-dropping (Bajaj, Breslau, Shenker) as "effective, but may not be
// easy to deploy" and positions TopoSense as the deployable alternative.
// This experiment quantifies that trade: the same Topology B under
// drop-tail routers (the paper's setting), priority-dropping routers with
// no controller (the router-based approach alone), and both combined.

// QueueRow reports one configuration's outcome.
type QueueRow struct {
	Config    string
	Deviation float64
	// BaseLoss is the mean loss rate receivers saw on their base layer —
	// what priority dropping protects.
	MeanLoss   float64
	MaxChanges int
}

// QueueConfig parameterizes the queue-policy comparison.
type QueueConfig struct {
	Seed     int64
	Duration sim.Time // 0 = 600 s
	Sessions int      // 0 = 4
	Traffic  Traffic  // zero = VBR(P=3): burstiness is where policies differ
}

func (c *QueueConfig) normalize() {
	d := ShortDefaults()
	d.Traffic = VBR3
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.Sessions == 0 {
		c.Sessions = 4
	}
}

// QueuePolicySpecs compares drop-tail vs priority dropping, with and
// without the TopoSense controller — one run per configuration.
func QueuePolicySpecs(cfg QueueConfig) []Spec {
	cfg.normalize()
	type variant struct {
		key, name string
		policy    netsim.DropPolicy
		toposense bool
	}
	variants := []variant{
		{"droptail+toposense", "drop-tail + TopoSense (paper)", netsim.DropTail, true},
		{"priority+toposense", "priority + TopoSense", netsim.DropPriority, true},
		{"droptail+rlm", "drop-tail + RLM", netsim.DropTail, false},
		{"priority+rlm", "priority + RLM", netsim.DropPriority, false},
	}
	var specs []Spec
	for _, v := range variants {
		specs = append(specs, NewSpec("queues",
			"queues/"+v.key, cfg.Seed, cfg.Duration,
			func(m *Meter) (any, error) {
				e := sim.NewEngine(cfg.Seed)
				b := topology.MustGenerate(e, &topology.BConfig{Sessions: cfg.Sessions})
				m.Observe(e, b.Net)
				for _, l := range b.Net.Links() {
					l.Policy = v.policy
				}
				wc := WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic}
				var traces []*metrics.Trace
				var optima []int
				lossSum, lossN := 0.0, 0
				if v.toposense {
					w := NewWorld(e, b, wc)
					sim.Every(sim.GlobalOf(w.Engine), sim.Second, func() {
						for _, rxs := range w.Receivers {
							lossSum += rxs[0].LastLoss
							lossN++
						}
					})
					w.Run(cfg.Duration)
					traces, optima = w.AllTraces()
				} else {
					w := NewRLMWorld(e, b, wc)
					w.Run(cfg.Duration)
					traces, optima = w.AllTraces()
				}
				row := QueueRow{
					Config:     v.name,
					Deviation:  metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
					MaxChanges: metrics.MaxChanges(traces, 0, cfg.Duration),
				}
				if lossN > 0 {
					row.MeanLoss = lossSum / float64(lossN)
				}
				return []QueueRow{row}, nil
			}))
	}
	return specs
}

// RunQueuePolicies runs the comparison by executing its specs serially.
func RunQueuePolicies(cfg QueueConfig) []QueueRow {
	return mustGather[QueueRow](ExecuteAll(QueuePolicySpecs(cfg)))
}

// QueueTable renders the comparison.
func QueueTable(rows []QueueRow) *Table {
	t := &Table{
		Title:  "Queue policy: drop-tail vs router-based priority dropping (related work [16])",
		Header: []string{"configuration", "rel deviation", "mean loss", "max changes"},
	}
	for _, r := range rows {
		loss := fmt.Sprintf("%.4f", r.MeanLoss)
		if r.MeanLoss == 0 {
			loss = "-"
		}
		t.AddRow(r.Config, fmt.Sprintf("%.3f", r.Deviation), loss, fmt.Sprintf("%d", r.MaxChanges))
	}
	return t
}
