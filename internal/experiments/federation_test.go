package experiments

import (
	"fmt"
	"strings"
	"testing"

	"toposense/internal/sim"
	"toposense/internal/topology"
)

// TestFederationRegistered pins the registry wiring cmd/topobench depends on.
func TestFederationRegistered(t *testing.T) {
	ex, ok := Lookup("fig_federation")
	if !ok {
		t.Fatal("fig_federation not in the registry")
	}
	specs := ex.Specs(SweepConfig{Seed: 1, Quick: true})
	if len(specs) != 2 {
		t.Fatalf("fig_federation quick sweep has %d specs, want 2 (flat + federated)", len(specs))
	}
	for _, s := range specs {
		if s.Duration != QuickDuration {
			t.Errorf("%s: quick duration %v, want %v", s.Name, s.Duration, QuickDuration)
		}
	}
}

// TestFederationConvergenceAndIsolation is the tentpole acceptance check:
// on the tiered topology every domain's budget converges (churn stops well
// before the run ends), quality stays within one layer of optimal, and no
// leaf controller ever registers a receiver outside its own domain.
func TestFederationConvergenceAndIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("full flat + federated runs")
	}
	rows := RunFederation(FederationConfig{Seed: 1, Duration: QuickDuration})

	var flat, fed int
	for _, r := range rows {
		switch r.Variant {
		case "flat":
			flat++
		case "federated":
			fed++
		}
		if !r.FinalOK {
			t.Errorf("%s domain %d: a receiver ended more than one layer from optimal", r.Variant, r.Domain)
		}
		if r.CrossDomain != 0 {
			t.Errorf("%s domain %d: %d receivers registered outside their leaf's scope",
				r.Variant, r.Domain, r.CrossDomain)
		}
		if r.Variant == "federated" && r.Domain >= 0 {
			if r.BudgetChanges == 0 {
				t.Errorf("domain %d: no budgets were ever pushed", r.Domain)
			}
			if !r.Converged {
				t.Errorf("domain %d: budget churn did not stop (last change %.0f s of %.0f s)",
					r.Domain, r.LastChangeS, QuickDuration.Seconds())
			}
			if r.EndBudget < 1 || r.EndBudget > r.Ceiling {
				t.Errorf("domain %d: end budget %d outside [1, ceiling %d]", r.Domain, r.EndBudget, r.Ceiling)
			}
			if r.Capped == 0 {
				t.Errorf("domain %d: the budget never capped a suggestion — it is not being enforced", r.Domain)
			}
		}
	}
	if flat < 2 || fed < 2 {
		t.Fatalf("got %d flat and %d federated rows, want at least an all-row plus per-domain rows each", flat, fed)
	}
}

// newFedRunWorld builds a federated world on a parsed topology spec with the
// requested engine flavour.
func newFedRunWorld(t *testing.T, specStr string, seed int64, shards int) *FedWorld {
	t.Helper()
	_, tcfg, err := topology.Parse(specStr)
	if err != nil {
		t.Fatal(err)
	}
	e := NewRunEngine(seed, shards)
	b, err := topology.Generate(e, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewFedWorld(e, b, WorldConfig{Seed: seed, Traffic: CBR})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// fedCanonical reduces a federated run to its model-visible outcomes: every
// receiver's full subscription trace, the parent's budget state per domain,
// each leaf's export/cap counters, and the events-fired meter.
func fedCanonical(w *FedWorld) string {
	var sb strings.Builder
	traces, optima := w.AllTraces()
	for i, tr := range traces {
		fmt.Fprintf(&sb, "rx %d opt %d:", i, optima[i])
		for _, p := range tr.Points() {
			fmt.Fprintf(&sb, " %d@%d", p.Level, int64(p.At))
		}
		sb.WriteByte('\n')
	}
	for _, l := range w.Leaves {
		d := l.Domain
		changes, last := w.Parent.ChangesFor(d)
		fmt.Fprintf(&sb, "dom %d budget %d ceiling %d learned %d changes %d last %d exports %d caps %d passes %d\n",
			d, w.Parent.Budget(d, 0), w.Parent.Ceiling(d), w.Parent.Learned(d),
			changes, int64(last), l.ExportsSent, l.CapsApplied, l.Controller().StepsRun)
	}
	fmt.Fprintf(&sb, "exportsRecv %d reconciles %d\n", w.Parent.ExportsRecv, w.Parent.Reconciles)
	fmt.Fprintf(&sb, "fired %d\n", w.Engine.Fired())
	return sb.String()
}

// TestFederationShardEquivalence pins the federation determinism contract:
// the hierarchical control plane on the sharded engine must produce
// byte-identical receiver traces and budget sequences to the serial engine.
// Exports are consumed in node context and the reconcile pass runs as a
// stop-the-world global event, so nothing may depend on the worker count.
func TestFederationShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the federated world three times")
	}
	const spec = "tiered,fanout=2:2,rxleaf=2"
	const dur = 60 * sim.Second
	serial := fedCanonical(func() *FedWorld { w := newFedRunWorld(t, spec, 1, 0); w.Run(dur); return w }())
	for _, shards := range []int{2, 4} {
		w := newFedRunWorld(t, spec, 1, shards)
		w.Run(dur)
		if got := fedCanonical(w); got != serial {
			t.Errorf("shards=%d diverges from the serial engine\n%s", shards, firstDiff(serial, got))
		}
	}
}

// TestFedWorldRejects pins NewFedWorld's input contract: no domain labels and
// the -aggregate combination are errors, not silent fallbacks.
func TestFedWorldRejects(t *testing.T) {
	e := NewRunEngine(1, 0)
	_, tcfg, err := topology.Parse("tiered,fanout=2:2,rxleaf=2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := topology.Generate(e, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFedWorld(e, b, WorldConfig{Seed: 1, Aggregate: true}); err == nil {
		t.Error("NewFedWorld accepted Aggregate: true")
	}
	saved := b.Domains
	b.Domains = nil
	if _, err := NewFedWorld(e, b, WorldConfig{Seed: 1}); err == nil {
		t.Error("NewFedWorld accepted a build without domain labels")
	}
	b.Domains = saved
}
