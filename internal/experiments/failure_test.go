package experiments

import (
	"encoding/json"
	"testing"

	"toposense/internal/sim"
)

// shortFailureConfig keeps the fault-injection end-to-end runs affordable:
// converge, fail the bottleneck, repair it, and leave room to recover.
func shortFailureConfig(seed int64) FailureConfig {
	return FailureConfig{
		Seed:     seed,
		Sessions: 2,
		Traffic:  CBR,
		Duration: 300 * sim.Second,
		FailAt:   100 * sim.Second,
		Outage:   40 * sim.Second,
	}
}

// TestFailureDeterministicPerSeed runs fig_failure twice under the same seed
// and requires byte-identical results: the fault schedule, the repairs, and
// every derived statistic must replay exactly.
func TestFailureDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full failure/repair run")
	}
	marshal := func() []byte {
		res := RunFailure(shortFailureConfig(42))
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if string(a) != string(b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestFailureSessionsRecover is the headline acceptance check: through a
// bottleneck outage the trees are repaired and every session climbs back to
// its pre-failure subscription level.
func TestFailureSessionsRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("full failure/repair run")
	}
	res := RunFailure(shortFailureConfig(7))

	if res.LinkFailures != 2 || res.LinkRepairs != 2 {
		t.Fatalf("outage did not execute: %d failures, %d repairs (want 2 each: both directions)",
			res.LinkFailures, res.LinkRepairs)
	}
	if res.TreeRepairs == 0 {
		t.Error("no tree repairs despite the bottleneck being cut")
	}
	if res.ThroughputDuring > res.ThroughputPre/10 {
		t.Errorf("bottleneck still carrying traffic during the outage: %.2f Mbps (pre %.2f)",
			res.ThroughputDuring, res.ThroughputPre)
	}
	if res.ThroughputPost < res.ThroughputPre/2 {
		t.Errorf("throughput did not come back after repair: %.2f Mbps post vs %.2f pre",
			res.ThroughputPost, res.ThroughputPre)
	}
	for _, row := range res.Rows {
		if row.PreLevel < 1 {
			t.Errorf("session %d never converged before the failure (pre level %.2f)", row.Session, row.PreLevel)
		}
		if !row.Recovered {
			t.Errorf("session %d did not recover: pre %.2f, post %.2f (min %.1f, recover %.1fs)",
				row.Session, row.PreLevel, row.PostLevel, row.MinLevel, row.RecoverS)
		}
	}
}

// TestFailureRegistered pins the registry wiring cmd/topobench depends on.
func TestFailureRegistered(t *testing.T) {
	ex, ok := Lookup("fig_failure")
	if !ok {
		t.Fatal("fig_failure not in the registry")
	}
	specs := ex.Specs(SweepConfig{Seed: 1, Quick: true})
	if len(specs) != 1 {
		t.Fatalf("fig_failure quick sweep has %d specs, want 1", len(specs))
	}
	if specs[0].Duration != QuickDuration {
		t.Errorf("quick sweep duration %v, want %v", specs[0].Duration, QuickDuration)
	}
}
