package experiments

import (
	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// Fig7Config parameterizes the Topology B stability experiment.
type Fig7Config struct {
	Seed     int64
	Duration sim.Time  // 0 = the paper's 1200 s
	Sessions []int     // nil = {2, 4, 8, 16}
	Traffic  []Traffic // nil = AllTraffic
}

func (c *Fig7Config) normalize() {
	if c.Duration == 0 {
		c.Duration = PaperDuration
	}
	if c.Sessions == nil {
		c.Sessions = []int{2, 4, 8, 16}
	}
	if c.Traffic == nil {
		c.Traffic = AllTraffic
	}
}

// RunFig7 reproduces Figure 7 ("Stability in Topology B"): N sessions
// share one link sized so each can take 4 layers; report the busiest
// session's subscription-change count and mean time between changes.
func RunFig7(cfg Fig7Config) []StabilityRow {
	cfg.normalize()
	var rows []StabilityRow
	for _, sessions := range cfg.Sessions {
		for _, tr := range cfg.Traffic {
			w := NewWorldB(sessions, WorldConfig{Seed: cfg.Seed, Traffic: tr})
			w.Run(cfg.Duration)
			traces, _ := w.AllTraces()
			rows = append(rows, StabilityRow{
				X:           sessions,
				Traffic:     tr.Name,
				MaxChanges:  metrics.MaxChanges(traces, 0, cfg.Duration),
				MeanBetween: metrics.MeanTimeBetweenChangesOfBusiest(traces, 0, cfg.Duration),
			})
		}
	}
	return rows
}
