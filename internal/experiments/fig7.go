package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// Fig7Config parameterizes the Topology B stability experiment.
type Fig7Config struct {
	Seed     int64
	Duration sim.Time  // 0 = the paper's 1200 s
	Sessions []int     // nil = {2, 4, 8, 16}
	Traffic  []Traffic // nil = AllTraffic
	Shards   int       // engine worker count; <= 1 = single-threaded
}

func (c *Fig7Config) normalize() {
	d := PaperDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.TrafficSweep(c.Traffic)
	if c.Sessions == nil {
		c.Sessions = []int{2, 4, 8, 16}
	}
}

// Fig7Specs enumerates Figure 7 ("Stability in Topology B") as independent
// runs, one per (session count, traffic model) point: N sessions share one
// link sized so each can take 4 layers; each run reports the busiest
// session's subscription-change count and mean time between changes.
func Fig7Specs(cfg Fig7Config) []Spec {
	cfg.normalize()
	var specs []Spec
	for _, sessions := range cfg.Sessions {
		for _, tr := range cfg.Traffic {
			specs = append(specs, NewSpec("7",
				fmt.Sprintf("fig7/sessions=%d/%s", sessions, tr.Name),
				cfg.Seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := NewWorldB(sessions, WorldConfig{Seed: cfg.Seed, Traffic: tr, Shards: cfg.Shards})
					m.ObserveWorld(w)
					w.Run(cfg.Duration)
					traces, _ := w.AllTraces()
					return []StabilityRow{{
						X:           sessions,
						Traffic:     tr.Name,
						MaxChanges:  metrics.MaxChanges(traces, 0, cfg.Duration),
						MeanBetween: metrics.MeanTimeBetweenChangesOfBusiest(traces, 0, cfg.Duration),
					}}, nil
				}))
		}
	}
	return specs
}

// RunFig7 reproduces Figure 7 by executing its specs serially.
func RunFig7(cfg Fig7Config) []StabilityRow {
	return mustGather[StabilityRow](ExecuteAll(Fig7Specs(cfg)))
}
