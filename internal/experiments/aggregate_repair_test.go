package experiments

import (
	"testing"

	"toposense/internal/faults"
	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
)

// TestAggregateRidesOutRepair is the -failat + -aggregate regression: cut
// both directions of Topology B's shared bottleneck mid-run with the
// aggregation layer installed. Pending aggregates absorbed before the cut
// must NOT be flushed down the stale pre-repair next hop (or into a
// guaranteed routing drop while the controller is unreachable) — the layer
// re-resolves the route at flush time, retains the pending state through the
// outage, and delivers the accumulated feedback on the post-repair route.
func TestAggregateRidesOutRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("full outage/repair run")
	}
	const (
		dur      = 300 * sim.Second
		failAt   = 100 * sim.Second
		outage   = 40 * sim.Second
		repairAt = failAt + outage
	)
	w := NewWorldB(2, WorldConfig{Seed: 7, Traffic: CBR, Aggregate: true})
	bl := w.Build.Bottlenecks[0]
	inj := faults.New(w.Net)
	inj.Outage(failAt, outage, bl, bl.Reverse())

	// Snapshot the controller's aggregate fan-in at the repair: the
	// difference to the end of the run proves feedback flows again on the
	// repaired route.
	var atRepair int64
	sim.GlobalOf(w.Engine).Schedule(repairAt+sim.Second, func() {
		atRepair = w.Controller.AggregatesRecv
	})
	w.Run(dur)

	if inj.Failures != 2 || inj.Repairs != 2 {
		t.Fatalf("outage did not execute: %d failures, %d repairs", inj.Failures, inj.Repairs)
	}
	if w.Domain.Repairs == 0 {
		t.Error("no tree repairs despite the bottleneck being cut")
	}
	if w.Aggregator.Retained == 0 {
		t.Error("no flushes were retained during the outage — pending aggregates were emitted toward an unreachable controller")
	}
	if atRepair == 0 {
		t.Fatal("controller consumed no aggregates before the repair snapshot")
	}
	if w.Controller.AggregatesRecv <= atRepair {
		t.Errorf("aggregate fan-in stalled after the repair: %d at repair, %d at the end",
			atRepair, w.Controller.AggregatesRecv)
	}
	// The cut-off side rejoined and climbed back: every receiver ends at a
	// live subscription level.
	for s := range w.Receivers {
		for i, rx := range w.Receivers[s] {
			if rx.Level() < 1 {
				t.Errorf("session %d receiver %d ended at level %d after repair", s, i, rx.Level())
			}
		}
	}
}

// TestShutdownPoolBalance is the SuggestionBatch lifecycle regression: the
// downward splitter hands each node's consumed batch over with a one-batch
// delay, so stopping a world mid-interval used to strand the final batch of
// every node (and any unflushed upward aggregates). Shutdown must return all
// of it: live pooled-payload counts return to their pre-world baseline.
func TestShutdownPoolBalance(t *testing.T) {
	aggBefore, batchBefore := report.AggregatesLive(), report.BatchesLive()

	w := NewWorldB(2, WorldConfig{Seed: 1, Traffic: CBR, Aggregate: true})
	// A congestion-dropped control packet's pooled payload falls to the
	// garbage collector, never back to the pool — that is the documented
	// drop contract, not a leak. Count those to exempt them from the
	// balance below.
	var aggDropped, batchDropped int64
	w.Net.AttachProbe(&netsim.FuncProbe{OnDrop: func(l *netsim.Link, p *netsim.Packet) {
		switch p.Payload.(type) {
		case *report.Aggregate:
			aggDropped++
		case *report.SuggestionBatch:
			batchDropped++
		}
	}})
	// A horizon deliberately misaligned with the report/flush cadence so
	// batches and pending aggregates are in flight when the world stops.
	w.Run(45*sim.Second + 123*sim.Millisecond)

	if w.Aggregator.Batches == 0 {
		t.Fatal("no suggestion batches were ever split — the regression path was not exercised")
	}
	w.Shutdown()
	// Control packets still in flight at the stop hold pooled payloads the
	// shutdown cannot reach; drain them — the stopped controller releases
	// arriving aggregates, the stopped aggregator takes ownership of
	// straggler batches — then re-drain the aggregator (Stop is idempotent
	// and documented to recover batches delivered between two Stops).
	w.Engine.RunUntil(50 * sim.Second)
	w.Aggregator.Stop()

	if got, want := report.AggregatesLive(), aggBefore+aggDropped; got != want {
		t.Errorf("aggregates still live after Shutdown: %d, want %d (baseline %d + %d lost to drops)",
			got, want, aggBefore, aggDropped)
	}
	if got, want := report.BatchesLive(), batchBefore+batchDropped; got != want {
		t.Errorf("suggestion batches still live after Shutdown: %d, want %d (baseline %d + %d lost to drops)",
			got, want, batchBefore, batchDropped)
	}
}

// TestDepartPurgePoolBalance extends the pool-balance invariant across the
// departure lifecycle. A receiver's Depart sends a Deregister up its report
// path; every aggregation node on the way purges the departed receiver's
// folded feedback from its pending aggregate, so no stale entry rides a
// later flush into the controller and re-registers the ghost. The purge
// releases emptied aggregates back to the pool, so the balance invariant
// (live == baseline + congestion-dropped) must survive a run with churn.
func TestDepartPurgePoolBalance(t *testing.T) {
	aggBefore, batchBefore := report.AggregatesLive(), report.BatchesLive()

	w := NewWorldB(2, WorldConfig{Seed: 3, Traffic: CBR, Aggregate: true})
	var aggDropped, batchDropped int64
	w.Net.AttachProbe(&netsim.FuncProbe{OnDrop: func(l *netsim.Link, p *netsim.Packet) {
		switch p.Payload.(type) {
		case *report.Aggregate:
			aggDropped++
		case *report.SuggestionBatch:
			batchDropped++
		}
	}})
	// Depart one receiver per session mid-run, deliberately misaligned with
	// the report/flush cadence so each departing receiver has feedback
	// pending at upstream aggregation nodes when its Deregister climbs.
	var departed []netsim.NodeID
	sim.GlobalOf(w.Engine).Schedule(20*sim.Second+777*sim.Millisecond, func() {
		for s := range w.Receivers {
			departed = append(departed, w.Receivers[s][0].Node().ID)
			w.Receivers[s][0].Depart()
		}
	})
	w.Run(45*sim.Second + 123*sim.Millisecond)

	if w.Aggregator.Purged == 0 {
		t.Error("no pending entries purged — the Deregisters never crossed the aggregation layer")
	}
	if got, want := w.Controller.DeregistersRecv, int64(len(departed)); got != want {
		t.Errorf("controller consumed %d deregistrations, want %d", got, want)
	}
	for _, id := range w.Controller.RegisteredReceivers() {
		for _, node := range departed {
			if id.Node == node {
				t.Errorf("departed receiver at node %d still registered at the end — a stale flush re-registered the ghost", node)
			}
		}
	}

	w.Shutdown()
	w.Engine.RunUntil(50 * sim.Second)
	w.Aggregator.Stop()

	if got, want := report.AggregatesLive(), aggBefore+aggDropped; got != want {
		t.Errorf("aggregates still live after a churn run: %d, want %d (baseline %d + %d lost to drops)",
			got, want, aggBefore, aggDropped)
	}
	if got, want := report.BatchesLive(), batchBefore+batchDropped; got != want {
		t.Errorf("suggestion batches still live after a churn run: %d, want %d (baseline %d + %d lost to drops)",
			got, want, batchBefore, batchDropped)
	}
}

// TestShardAggregateDecisionEquivalence is the combined-flags acceptance:
// -shards N -aggregate must land every receiver on the same final level as
// the serial flat-report baseline. Aggregation changes the control plane's
// packet economy, sharding changes the execution — neither may change the
// decisions.
func TestShardAggregateDecisionEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the world twice")
	}
	const dur = 120 * sim.Second
	mk := func(shards int, aggregate bool) *World {
		w := NewWorldB(4, WorldConfig{Seed: 1, Traffic: CBR, Shards: shards, Aggregate: aggregate})
		w.Run(dur)
		return w
	}
	flat := mk(0, false)
	agg := mk(4, true)
	if agg.Aggregator == nil || agg.Aggregator.Absorbed == 0 {
		t.Fatal("sharded aggregation world absorbed no reports")
	}
	if got, want := levelsString(agg), levelsString(flat); got != want {
		t.Errorf("final levels diverge: serial flat %s, sharded aggregated %s", want, got)
	}
}

func levelsString(w *World) string {
	out := ""
	for s := range w.Receivers {
		for _, rx := range w.Receivers[s] {
			out += string(rune('0' + rx.Level()))
		}
	}
	return out
}
