package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRun is the deterministic subset of a Result that must be
// bit-for-bit reproducible for a fixed seed: the typed rows plus the
// engine/network meters. Wall-clock fields are deliberately excluded.
type goldenRun struct {
	Name       string  `json:"name"`
	Figure     string  `json:"figure"`
	Seed       int64   `json:"seed"`
	SimSeconds float64 `json:"sim_seconds"`
	Rows       any     `json:"rows"`
	Events     uint64  `json:"events"`
	Packets    int64   `json:"packets_forwarded"`
}

// checkGolden executes the named figure's quick sweep at seed 1 and compares
// the deterministic subset of every result against testdata/<file>. With
// -update it rewrites the file instead. shards selects the engine (0 = the
// single-threaded oracle the goldens were recorded on); any shard count
// must reproduce the same files.
func checkGolden(t *testing.T, figure, file string, shards int) {
	t.Helper()
	ex, ok := Lookup(figure)
	if !ok {
		t.Fatalf("figure %s missing from registry", figure)
	}
	specs := ex.Specs(SweepConfig{Seed: 1, Quick: true, Shards: shards})
	results := ExecuteAll(specs)

	runs := make([]goldenRun, len(results))
	for i, r := range results {
		if r.Failed() {
			t.Fatalf("run %s failed: %s", r.Name, r.Err)
		}
		runs[i] = goldenRun{
			Name:       r.Name,
			Figure:     r.Figure,
			Seed:       r.Seed,
			SimSeconds: r.SimSeconds,
			Rows:       r.Rows,
			Events:     r.Events,
			Packets:    r.Packets,
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(runs); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		line := 1
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				break
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("golden mismatch: determinism contract broken (first differing line %d)\n"+
			"got %d bytes, want %d bytes; diff with:\n"+
			"  go test ./internal/experiments -run TestGolden -update && git diff",
			line, len(got), len(want))
	}
}

// TestGoldenFig6Determinism locks the simulator's observable behaviour on
// Topology A: the quick Figure-6 sweep (what `topobench -fig 6 -quick
// -seed 1 -parallel 1` executes) must produce byte-identical rows,
// events-fired and packets-forwarded counts against the golden file recorded
// before the scheduler/pool overhaul. Any change to event ordering, RNG
// consumption, packet lifecycle or queueing shows up here as a diff.
//
// Regenerate (only when an intentional model change is made) with:
//
//	go test ./internal/experiments -run TestGoldenFig6Determinism -update
func TestGoldenFig6Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("quick fig6 sweep is a few seconds of simulation")
	}
	checkGolden(t, "6", "golden_fig6_quick.json", 0)
}

// TestGoldenFig7Determinism is the Topology B counterpart: the quick
// Figure-7 sweep pins the multi-session shared-bottleneck behaviour —
// multicast replication fan-out, inter-session sharing and the controller's
// per-domain pass — recorded before the dense forwarding-state rewrite.
// Together with Fig. 6 it covers both paper topologies.
func TestGoldenFig7Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("quick fig7 sweep is a few seconds of simulation")
	}
	checkGolden(t, "7", "golden_fig7_quick.json", 0)
}

// TestGoldenChurnDeterminism locks the membership-churn study: the quick
// fig_churn sweep (TopoSense and RLM arms under Poisson join/leave, plus
// the tree-ladder arm) must be bit-reproducible for a fixed seed. The churn
// driver draws every holding time from the run-wide RNG, so any change to
// its draw order — or to the departure lifecycle's packet economy
// (Deregister, purge, prune cascade) — shows up here as a diff.
func TestGoldenChurnDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("quick fig_churn sweep is a few seconds of simulation")
	}
	checkGolden(t, "fig_churn", "golden_churn_quick.json", 0)
}

// TestGoldenChurnShardedDeterminism is the sharded lineage of the churn
// study: recorded with -shards 1 and verified with 4 workers, like
// TestGoldenShardedDeterminism. The churn driver runs entirely at
// stop-the-world barriers, so the worker count must not change a single
// byte — serial-vs-sharded composition of churn is pinned here.
func TestGoldenChurnShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("quick fig_churn sweep is a few seconds of simulation")
	}
	if *updateGolden {
		checkGolden(t, "fig_churn", "golden_churn_quick_sharded.json", 1)
		return
	}
	checkGolden(t, "fig_churn", "golden_churn_quick_sharded.json", 4)
}

// TestGoldenShardedDeterminism locks the sharded engine's worker-count
// invariance on both golden figures: the *_sharded golden files are
// recorded with -shards 1 (the sharded execution model on one worker) and
// every higher worker count must reproduce them byte-identically — the
// worker count is physical, the logical partitioning comes from the
// topology. Topology A and B have no generator-emitted domain labels, so
// this also exercises the min-cut fallback partitioner end to end.
//
// The sharded files differ slightly from the single-threaded goldens on
// the longer quick runs: same-timestamp events meeting at a partition
// boundary serialize in partition order rather than the serial engine's
// schedule-call order, and on a saturated queue one reordered tie can
// cascade. Both orders are valid serializations; each engine is
// bit-reproducible against its own record.
func TestGoldenShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two quick figure sweeps of simulation")
	}
	if *updateGolden {
		// Record with one worker; the normal run verifies with four.
		checkGolden(t, "6", "golden_fig6_quick_sharded.json", 1)
		checkGolden(t, "7", "golden_fig7_quick_sharded.json", 1)
		return
	}
	checkGolden(t, "6", "golden_fig6_quick_sharded.json", 4)
	checkGolden(t, "7", "golden_fig7_quick_sharded.json", 4)
}
