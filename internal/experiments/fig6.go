package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// StabilityRow is one point of Figure 6 or 7: for a receiver/session count
// and traffic model, the maximum number of subscription changes by any
// receiver over the run and the mean time between successive changes for
// that receiver.
type StabilityRow struct {
	X           int    // receivers in the session (Fig 6) or sessions (Fig 7)
	Traffic     string // CBR / VBR(P=3) / VBR(P=6)
	MaxChanges  int
	MeanBetween sim.Time
}

// Fig6Config parameterizes the Topology A stability experiment.
type Fig6Config struct {
	Seed     int64
	Duration sim.Time  // 0 = the paper's 1200 s
	PerSet   []int     // receivers per set; nil = {1, 2, 4, 8}
	Traffic  []Traffic // nil = AllTraffic
}

func (c *Fig6Config) normalize() {
	if c.Duration == 0 {
		c.Duration = PaperDuration
	}
	if c.PerSet == nil {
		c.PerSet = []int{1, 2, 4, 8}
	}
	if c.Traffic == nil {
		c.Traffic = AllTraffic
	}
}

// RunFig6 reproduces Figure 6 ("Stability in Topology A"): for each
// receiver-set size and traffic model, run Topology A for the duration and
// report the busiest receiver's change count and mean time between changes.
func RunFig6(cfg Fig6Config) []StabilityRow {
	cfg.normalize()
	var rows []StabilityRow
	for _, per := range c6order(cfg.PerSet) {
		for _, tr := range cfg.Traffic {
			w := NewWorldA(per, WorldConfig{Seed: cfg.Seed, Traffic: tr})
			w.Run(cfg.Duration)
			traces, _ := w.AllTraces()
			rows = append(rows, StabilityRow{
				X:           2 * per, // total receivers in the session
				Traffic:     tr.Name,
				MaxChanges:  metrics.MaxChanges(traces, 0, cfg.Duration),
				MeanBetween: metrics.MeanTimeBetweenChangesOfBusiest(traces, 0, cfg.Duration),
			})
		}
	}
	return rows
}

func c6order(xs []int) []int { return xs }

// StabilityTable renders stability rows as the two panels the paper plots.
func StabilityTable(title, xLabel string, rows []StabilityRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{xLabel, "traffic", "max changes", "mean time between changes (s)"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.X),
			r.Traffic,
			fmt.Sprintf("%d", r.MaxChanges),
			fmt.Sprintf("%.1f", r.MeanBetween.Seconds()),
		)
	}
	return t
}
