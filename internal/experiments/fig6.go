package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// StabilityRow is one point of Figure 6 or 7: for a receiver/session count
// and traffic model, the maximum number of subscription changes by any
// receiver over the run and the mean time between successive changes for
// that receiver.
type StabilityRow struct {
	X           int    // receivers in the session (Fig 6) or sessions (Fig 7)
	Traffic     string // CBR / VBR(P=3) / VBR(P=6)
	MaxChanges  int
	MeanBetween sim.Time
}

// Fig6Config parameterizes the Topology A stability experiment.
type Fig6Config struct {
	Seed     int64
	Duration sim.Time  // 0 = the paper's 1200 s
	PerSet   []int     // receivers per set; nil = {1, 2, 4, 8}
	Traffic  []Traffic // nil = AllTraffic
	Shards   int       // engine worker count; <= 1 = single-threaded
}

func (c *Fig6Config) normalize() {
	d := PaperDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.TrafficSweep(c.Traffic)
	if c.PerSet == nil {
		c.PerSet = []int{1, 2, 4, 8}
	}
}

// Fig6Specs enumerates Figure 6 ("Stability in Topology A") as independent
// runs, one per (receiver-set size, traffic model) point; each run yields
// one StabilityRow for the busiest receiver.
func Fig6Specs(cfg Fig6Config) []Spec {
	cfg.normalize()
	var specs []Spec
	for _, per := range cfg.PerSet {
		for _, tr := range cfg.Traffic {
			specs = append(specs, NewSpec("6",
				fmt.Sprintf("fig6/rx=%d/%s", 2*per, tr.Name),
				cfg.Seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := NewWorldA(per, WorldConfig{Seed: cfg.Seed, Traffic: tr, Shards: cfg.Shards})
					m.ObserveWorld(w)
					w.Run(cfg.Duration)
					traces, _ := w.AllTraces()
					return []StabilityRow{{
						X:           2 * per, // total receivers in the session
						Traffic:     tr.Name,
						MaxChanges:  metrics.MaxChanges(traces, 0, cfg.Duration),
						MeanBetween: metrics.MeanTimeBetweenChangesOfBusiest(traces, 0, cfg.Duration),
					}}, nil
				}))
		}
	}
	return specs
}

// RunFig6 reproduces Figure 6 by executing its specs serially.
func RunFig6(cfg Fig6Config) []StabilityRow {
	return mustGather[StabilityRow](ExecuteAll(Fig6Specs(cfg)))
}

// StabilityTable renders stability rows as the two panels the paper plots.
func StabilityTable(title, xLabel string, rows []StabilityRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{xLabel, "traffic", "max changes", "mean time between changes (s)"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.X),
			r.Traffic,
			fmt.Sprintf("%d", r.MaxChanges),
			fmt.Sprintf("%.1f", r.MeanBetween.Seconds()),
		)
	}
	return t
}
