package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topology"
)

// This file reproduces the results the paper carries over from its prior
// work ([5], NOSSDAV 2000): "TopoSense converged to optimal subscription of
// layers in a heterogeneous environment. These results also showed that
// TopoSense imposed intra-session fairness for a single multicast session."
// One session, K receiver sets with capacities for exactly 1..K layers:
// every set must converge to its own optimum, receivers within a set must
// agree (intra-session fairness), and no set may drag another down.

// ConvergenceRow reports one receiver set's outcome.
type ConvergenceRow struct {
	Set     int // 1-based
	Optimal int
	// ModalLevel is the level the set's receivers spent most of the second
	// half of the run at (-1 when set-mates' modes disagree). Probing
	// excursions don't move the mode, so this is the steady-state level.
	ModalLevel int
	// TimeToOptimal is when the set's first receiver reached its optimum.
	TimeToOptimal sim.Time
	// IntraFair is true when every receiver of the set has the same modal
	// level — the prior work's intra-session fairness, robust to
	// desynchronized probe windows.
	IntraFair bool
	Deviation float64
}

// ConvergenceConfig parameterizes the heterogeneous convergence run.
type ConvergenceConfig struct {
	Seed     int64
	Duration sim.Time // 0 = 600 s
	Sets     int      // receiver sets; 0 = 4 (optimal levels 1..4)
	PerSet   int      // receivers per set; 0 = 2
	Traffic  Traffic  // zero = CBR
}

func (c *ConvergenceConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.Sets == 0 {
		c.Sets = 4
	}
	if c.PerSet == 0 {
		c.PerSet = 2
	}
}

// ConvergenceSpecs enumerates the heterogeneous convergence run as a single
// spec for the configured traffic model (sweep traffic by building specs
// from several configs).
func ConvergenceSpecs(cfg ConvergenceConfig) []Spec {
	cfg.normalize()
	return []Spec{NewSpec("convergence",
		"convergence/"+cfg.Traffic.Name, cfg.Seed, cfg.Duration,
		func(m *Meter) (any, error) {
			return runConvergence(cfg, m), nil
		})}
}

// RunConvergence builds a K-set heterogeneous topology (set k's access link
// sized for exactly k layers plus headroom) and measures convergence and
// intra-session fairness per set.
func RunConvergence(cfg ConvergenceConfig) []ConvergenceRow {
	return mustGather[ConvergenceRow](ExecuteAll(ConvergenceSpecs(cfg)))
}

func runConvergence(cfg ConvergenceConfig, m *Meter) []ConvergenceRow {
	e := sim.NewEngine(cfg.Seed)
	n := netsim.New(e)
	fat := netsim.LinkConfig{Bandwidth: topology.FatBandwidth, Delay: topology.DefaultDelay}
	src := n.AddNode("src")
	hub := n.AddNode("hub")
	n.Connect(src, hub, fat)

	rates := source.Rates(source.DefaultLayers)
	b := &topology.Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	for set := 1; set <= cfg.Sets; set++ {
		// Capacity: cumulative rate of `set` layers plus 4% headroom, so
		// the optimum is exactly `set`.
		bw := source.CumulativeRate(set) * 1.04
		gw := n.AddNode(fmt.Sprintf("set%d", set))
		n.Connect(hub, gw, netsim.LinkConfig{Bandwidth: bw, Delay: topology.DefaultDelay})
		for i := 0; i < cfg.PerSet; i++ {
			rx := n.AddNode(fmt.Sprintf("set%d-rx%d", set, i))
			n.Connect(gw, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			b.Optimal[0] = append(b.Optimal[0], source.LevelForBandwidth(rates, bw))
		}
	}

	w := NewWorld(e, b, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic})
	m.Observe(e, n)
	w.Run(cfg.Duration)

	var rows []ConvergenceRow
	half := cfg.Duration / 2
	for set := 1; set <= cfg.Sets; set++ {
		lo := (set - 1) * cfg.PerSet
		hi := lo + cfg.PerSet
		traces := w.Traces[0][lo:hi]
		optimal := b.Optimal[0][lo]

		row := ConvergenceRow{Set: set, Optimal: optimal, TimeToOptimal: cfg.Duration}
		for _, tr := range traces {
			if at := firstTimeAt(tr, optimal, cfg.Duration); at < row.TimeToOptimal {
				row.TimeToOptimal = at
			}
		}
		// Modal level of each receiver over the steady second half; the
		// set is intra-fair when all modes agree.
		mode := func(tr *metrics.Trace) int {
			counts := map[int]int{}
			for at := half; at <= cfg.Duration; at += sim.Second {
				counts[tr.LevelAt(at)]++
			}
			best, bestN := 0, -1
			for lvl, n := range counts {
				if n > bestN || (n == bestN && lvl < best) {
					best, bestN = lvl, n
				}
			}
			return best
		}
		row.ModalLevel = mode(traces[0])
		row.IntraFair = true
		for _, tr := range traces[1:] {
			if mode(tr) != row.ModalLevel {
				row.IntraFair = false
				row.ModalLevel = -1
				break
			}
		}
		optima := make([]int, len(traces))
		for i := range optima {
			optima[i] = optimal
		}
		row.Deviation = metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration)
		rows = append(rows, row)
	}
	return rows
}

// ConvergenceTable renders the per-set outcomes.
func ConvergenceTable(rows []ConvergenceRow) *Table {
	t := &Table{
		Title:  "Heterogeneous convergence and intra-session fairness (prior-work [5] reproduction)",
		Header: []string{"set", "optimal", "modal level", "time to optimal (s)", "intra-fair", "rel deviation"},
	}
	for _, r := range rows {
		modal := fmt.Sprintf("%d", r.ModalLevel)
		if r.ModalLevel < 0 {
			modal = "split"
		}
		t.AddRow(
			fmt.Sprintf("%d", r.Set),
			fmt.Sprintf("%d", r.Optimal),
			modal,
			fmt.Sprintf("%.1f", r.TimeToOptimal.Seconds()),
			fmt.Sprintf("%v", r.IntraFair),
			fmt.Sprintf("%.3f", r.Deviation),
		)
	}
	return t
}
