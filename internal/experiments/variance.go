package experiments

import (
	"fmt"
	"math"

	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// Seed-variance study: every number in the reproduction is deterministic
// given a seed, so the honest error bars come from re-running across seeds.
// This runner repeats the headline fairness experiment (Figure 8's 4-session
// point) across seeds and reports mean, standard deviation and range.

// VarianceRow summarizes one traffic model's deviation across seeds.
type VarianceRow struct {
	Traffic  string
	Seeds    int
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// VarianceConfig parameterizes the study.
type VarianceConfig struct {
	Seed     int64 // first seed; Seeds consecutive values are used
	Seeds    int   // 0 = 5
	Duration sim.Time
	Sessions int // 0 = 4
}

func (c *VarianceConfig) normalize() {
	d := ShortDefaults()
	d.Seeds = 5
	c.Seeds = d.SeedCount(c.Seeds)
	c.Duration = d.Dur(c.Duration)
	if c.Sessions == 0 {
		c.Sessions = 4
	}
}

// VarianceSample is one run's headline deviation — what VarianceSpecs rows
// carry before ReduceVariance folds them into per-traffic summaries.
type VarianceSample struct {
	Traffic   string  `json:"traffic"`
	Seed      int64   `json:"seed"`
	Deviation float64 `json:"deviation"`
}

// VarianceSpecs enumerates one run per (traffic model, seed), each
// producing a single VarianceSample.
func VarianceSpecs(cfg VarianceConfig) []Spec {
	cfg.normalize()
	var specs []Spec
	for _, tr := range AllTraffic {
		for s := 0; s < cfg.Seeds; s++ {
			seed := cfg.Seed + int64(s)
			specs = append(specs, NewSpec("variance",
				fmt.Sprintf("variance/%s/seed=%d", tr.Name, seed),
				seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := NewWorldB(cfg.Sessions, WorldConfig{Seed: seed, Traffic: tr})
					m.ObserveWorld(w)
					w.Run(cfg.Duration)
					traces, optima := w.AllTraces()
					return []VarianceSample{{
						Traffic:   tr.Name,
						Seed:      seed,
						Deviation: metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration),
					}}, nil
				}))
		}
	}
	return specs
}

// ReduceVariance folds per-seed samples into one VarianceRow per traffic
// model, preserving first-seen traffic order.
func ReduceVariance(samples []VarianceSample) []VarianceRow {
	var order []string
	byTraffic := map[string][]float64{}
	for _, s := range samples {
		if _, seen := byTraffic[s.Traffic]; !seen {
			order = append(order, s.Traffic)
		}
		byTraffic[s.Traffic] = append(byTraffic[s.Traffic], s.Deviation)
	}
	var rows []VarianceRow
	for _, name := range order {
		rows = append(rows, summarize(name, byTraffic[name]))
	}
	return rows
}

// RunVariance measures the across-seed spread of the mean relative
// deviation on Topology B for each traffic model.
func RunVariance(cfg VarianceConfig) []VarianceRow {
	return ReduceVariance(mustGather[VarianceSample](ExecuteAll(VarianceSpecs(cfg))))
}

func summarize(name string, xs []float64) VarianceRow {
	row := VarianceRow{Traffic: name, Seeds: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		row.Mean += x
		row.Min = math.Min(row.Min, x)
		row.Max = math.Max(row.Max, x)
	}
	row.Mean /= float64(len(xs))
	for _, x := range xs {
		row.StdDev += (x - row.Mean) * (x - row.Mean)
	}
	if len(xs) > 1 {
		row.StdDev = math.Sqrt(row.StdDev / float64(len(xs)-1))
	}
	return row
}

// VarianceTable renders the study.
func VarianceTable(rows []VarianceRow) *Table {
	t := &Table{
		Title:  "Across-seed variance of the Figure 8 headline (Topology B, 4 sessions)",
		Header: []string{"traffic", "seeds", "mean dev", "stddev", "min", "max"},
	}
	for _, r := range rows {
		t.AddRow(r.Traffic,
			fmt.Sprintf("%d", r.Seeds),
			fmt.Sprintf("%.3f", r.Mean),
			fmt.Sprintf("%.3f", r.StdDev),
			fmt.Sprintf("%.3f", r.Min),
			fmt.Sprintf("%.3f", r.Max),
		)
	}
	return t
}
