package experiments

import (
	"fmt"
	"math"

	"toposense/internal/metrics"
	"toposense/internal/sim"
)

// Seed-variance study: every number in the reproduction is deterministic
// given a seed, so the honest error bars come from re-running across seeds.
// This runner repeats the headline fairness experiment (Figure 8's 4-session
// point) across seeds and reports mean, standard deviation and range.

// VarianceRow summarizes one traffic model's deviation across seeds.
type VarianceRow struct {
	Traffic  string
	Seeds    int
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// VarianceConfig parameterizes the study.
type VarianceConfig struct {
	Seed     int64 // first seed; Seeds consecutive values are used
	Seeds    int   // 0 = 5
	Duration sim.Time
	Sessions int // 0 = 4
}

func (c *VarianceConfig) normalize() {
	if c.Seeds <= 0 {
		c.Seeds = 5
	}
	if c.Duration == 0 {
		c.Duration = 600 * sim.Second
	}
	if c.Sessions == 0 {
		c.Sessions = 4
	}
}

// RunVariance measures the across-seed spread of the mean relative
// deviation on Topology B for each traffic model.
func RunVariance(cfg VarianceConfig) []VarianceRow {
	cfg.normalize()
	var rows []VarianceRow
	for _, tr := range AllTraffic {
		devs := make([]float64, 0, cfg.Seeds)
		for s := 0; s < cfg.Seeds; s++ {
			w := NewWorldB(cfg.Sessions, WorldConfig{Seed: cfg.Seed + int64(s), Traffic: tr})
			w.Run(cfg.Duration)
			traces, optima := w.AllTraces()
			devs = append(devs, metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration))
		}
		rows = append(rows, summarize(tr.Name, devs))
	}
	return rows
}

func summarize(name string, xs []float64) VarianceRow {
	row := VarianceRow{Traffic: name, Seeds: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		row.Mean += x
		row.Min = math.Min(row.Min, x)
		row.Max = math.Max(row.Max, x)
	}
	row.Mean /= float64(len(xs))
	for _, x := range xs {
		row.StdDev += (x - row.Mean) * (x - row.Mean)
	}
	if len(xs) > 1 {
		row.StdDev = math.Sqrt(row.StdDev / float64(len(xs)-1))
	}
	return row
}

// VarianceTable renders the study.
func VarianceTable(rows []VarianceRow) *Table {
	t := &Table{
		Title:  "Across-seed variance of the Figure 8 headline (Topology B, 4 sessions)",
		Header: []string{"traffic", "seeds", "mean dev", "stddev", "min", "max"},
	}
	for _, r := range rows {
		t.AddRow(r.Traffic,
			fmt.Sprintf("%d", r.Seeds),
			fmt.Sprintf("%.3f", r.Mean),
			fmt.Sprintf("%.3f", r.StdDev),
			fmt.Sprintf("%.3f", r.Min),
			fmt.Sprintf("%.3f", r.Max),
		)
	}
	return t
}
