package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"toposense/internal/obs"
	"toposense/internal/sim"
)

// obsSpec is a small Topology B run whose rows are the receivers' final
// levels — enough signal to notice any behavioural perturbation.
func obsSpec(seed int64) Spec {
	const dur = 30 * sim.Second
	return NewSpec("obstest", "obstest/B", seed, dur, func(m *Meter) (any, error) {
		w := NewWorldB(2, WorldConfig{Seed: seed, Traffic: VBR3})
		m.ObserveWorld(w)
		w.Run(dur)
		var levels []int
		for s := range w.Receivers {
			for _, rx := range w.Receivers[s] {
				levels = append(levels, rx.Level())
			}
		}
		return levels, nil
	})
}

func marshalIndent(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestObsExportDeterministic: two runs from the same seed must produce
// byte-identical observability exports — counters, histograms, flight
// recorder and audit log included. This is what makes the export citable
// next to a figure.
func TestObsExportDeterministic(t *testing.T) {
	var dumps [][]byte
	for i := 0; i < 2; i++ {
		s := obsSpec(3)
		s.Obs = &obs.Options{}
		r := s.Execute(0)
		if r.Failed() {
			t.Fatalf("run %d failed: %s", i, r.Err)
		}
		if r.Obs == nil {
			t.Fatal("Spec.Obs set but Result.Obs is nil")
		}
		dumps = append(dumps, marshalIndent(t, r.Obs))
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Errorf("identical seeds produced different obs exports:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
			dumps[0], dumps[1])
	}

	// The export must actually contain signal, or determinism is vacuous.
	var d obs.Dump
	if err := json.Unmarshal(dumps[0], &d); err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, c := range d.Counters {
		if c.Value > 0 {
			nonZero++
		}
	}
	if nonZero < 4 {
		t.Errorf("only %d non-zero counters in export; wiring looks incomplete:\n%s", nonZero, dumps[0])
	}
	if d.FlightTotal == 0 || len(d.Flight) == 0 {
		t.Error("flight recorder captured nothing")
	}
	if d.AuditTotal == 0 || len(d.Audit) == 0 {
		t.Error("controller audit log captured nothing")
	}
}

// TestObsDoesNotPerturbRun: enabling observability must not change what the
// simulation does — same rows, same event count, same packet count. The
// probe only watches; it never schedules.
func TestObsDoesNotPerturbRun(t *testing.T) {
	plain := obsSpec(5).Execute(0)
	observed := obsSpec(5)
	observed.Obs = &obs.Options{}
	obsRes := observed.Execute(0)
	for _, r := range []Result{plain, obsRes} {
		if r.Failed() {
			t.Fatalf("run failed: %s", r.Err)
		}
	}
	if got, want := marshalIndent(t, obsRes.Rows), marshalIndent(t, plain.Rows); !bytes.Equal(got, want) {
		t.Errorf("observability changed the run's rows:\nwith obs: %s\nwithout:  %s", got, want)
	}
	if plain.Events != obsRes.Events {
		t.Errorf("observability changed the event count: %d without, %d with", plain.Events, obsRes.Events)
	}
	if plain.Packets != obsRes.Packets {
		t.Errorf("observability changed the packet count: %d without, %d with", plain.Packets, obsRes.Packets)
	}

	// With observability off, the BENCH JSON schema is unchanged: no "obs"
	// key at all (omitempty), so existing consumers and goldens are
	// untouched.
	if plain.Obs != nil {
		t.Error("Result.Obs non-nil without Spec.Obs")
	}
	if b := marshalIndent(t, plain); bytes.Contains(b, []byte(`"obs"`)) {
		t.Errorf("obs key leaked into the default result schema:\n%s", b)
	}
}
