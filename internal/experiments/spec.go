package experiments

import (
	"fmt"
	"os"
	"time"

	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/sim"
)

// Spec is one independent, schedulable simulation run — the unit of work
// the experiments layer hands to a runner. Every figure enumerates its
// sweep as a []Spec; each Spec owns a fresh engine, network and RNG, so
// runs are share-nothing and can execute concurrently (internal/runner)
// or serially (ExecuteAll) with byte-identical results.
type Spec struct {
	// Name uniquely identifies the run within a sweep, e.g.
	// "fig6/rx=4/VBR(P=3)".
	Name string
	// Figure is the sweep family the run belongs to — the registry key,
	// e.g. "6" or "baseline".
	Figure string
	// Seed is the simulation seed the run's world is built from.
	Seed int64
	// Duration is the simulated run length.
	Duration sim.Time
	// Body builds the world, runs it, and returns the run's typed rows
	// (conventionally a slice such as []StabilityRow). It must register
	// its engine and network with the Meter so the runner can report run
	// metadata and enforce wall-clock timeouts.
	Body func(m *Meter) (any, error)
	// Obs, when non-nil, enables the observability layer for this run:
	// Execute builds an obs bundle with these options, the Meter wires it
	// into whatever the body registers, and the Result carries the export.
	// Nil (the default) runs the pre-obs hot path with no probe attached.
	Obs *obs.Options
}

// NewSpec constructs a Spec, applying the shared Defaults: a zero duration
// becomes the paper's 1200 s.
func NewSpec(figure, name string, seed int64, duration sim.Time, body func(*Meter) (any, error)) Spec {
	return Spec{
		Figure:   figure,
		Name:     name,
		Seed:     seed,
		Duration: PaperDefaults().Dur(duration),
		Body:     body,
	}
}

// Meter is handed to every Spec body. The body registers the engine(s) and
// network(s) it builds; after the run the executor reads events fired and
// packets forwarded from them, and — when a timeout is set — a watchdog
// checks the wall clock as simulated time advances and stops the engine
// cooperatively, keeping everything on the simulation goroutine.
type Meter struct {
	start    time.Time
	deadline time.Duration // 0 = no timeout
	timedOut bool
	engines  []sim.Runner
	nets     []*netsim.Network
	obs      *obs.Obs // nil unless the Spec enabled observability
}

// Obs returns the run's observability bundle, or nil when the Spec did not
// enable one. Bodies that build components outside a World can wire it by
// hand; every instrument and recorder is nil-safe, so the return value can
// be passed along unguarded.
func (m *Meter) Obs() *obs.Obs { return m.obs }

// Observe registers an engine and/or network with the meter. Either
// argument may be nil; bodies that run several worlds call it once per
// world.
func (m *Meter) Observe(e sim.Runner, n *netsim.Network) {
	if e != nil {
		m.engines = append(m.engines, e)
		m.obs.ObserveEngine(e)
		if m.deadline > 0 {
			// The watchdog runs on the global context: on a sharded engine
			// it fires at barriers with every shard parked, so Stop is a
			// plain store no shard races with.
			sim.Every(sim.GlobalOf(e), sim.Second, func() {
				if !m.timedOut && time.Since(m.start) > m.deadline {
					m.timedOut = true
					e.Stop()
				}
			})
		}
	}
	if n != nil {
		m.nets = append(m.nets, n)
		if m.obs != nil {
			n.AttachProbe(obs.NewNetProbe(m.obs))
		}
	}
}

// ObserveWorld registers a World's engine and network, and — when the run
// has observability enabled — wires the bundle into the world's multicast
// domain and controller as well (the packet probe and engine registration
// come from Observe).
func (m *Meter) ObserveWorld(w *World) {
	m.Observe(w.Engine, w.Net)
	if m.obs != nil {
		w.Domain.SetObs(m.obs)
		w.Controller.SetObs(m.obs)
	}
}

// TimedOut reports whether the watchdog stopped an observed engine.
func (m *Meter) TimedOut() bool { return m.timedOut }

// Result is the outcome of executing one Spec: the run's typed rows plus
// machine-readable run metadata. Results marshal to the BENCH_*.json
// schema documented in EXPERIMENTS.md.
type Result struct {
	Name   string `json:"name"`
	Figure string `json:"figure"`
	Seed   int64  `json:"seed"`
	// SimSeconds is the simulated duration of the run.
	SimSeconds float64 `json:"sim_seconds"`
	// Rows holds the typed rows the body returned; nil when the run
	// failed.
	Rows any `json:"rows,omitempty"`
	// Err is non-empty when the body returned an error, panicked, or hit
	// the wall-clock timeout.
	Err string `json:"error,omitempty"`
	// WallSeconds is the host wall-clock time the run took.
	WallSeconds float64 `json:"wall_seconds"`
	// Events is the number of simulator events executed across the run's
	// observed engines.
	Events uint64 `json:"events"`
	// Packets is the number of packets forwarded across all links of the
	// run's observed networks.
	Packets int64 `json:"packets_forwarded"`
	// EventsPerSecond is Events / WallSeconds — the run's event
	// throughput, the regression-tracking number.
	EventsPerSecond float64 `json:"events_per_second"`
	// Obs is the run's observability export; nil unless the Spec enabled
	// it, so the BENCH_*.json schema is unchanged when observability is
	// off.
	Obs *obs.Dump `json:"obs,omitempty"`
}

// Failed reports whether the run produced an error instead of rows.
func (r Result) Failed() bool { return r.Err != "" }

// Execute runs the Spec body with panic recovery and an optional
// wall-clock timeout, then fills in run metadata. A panicking body yields
// a failed Result, never a crashed process. The timeout is cooperative: a
// watchdog on each observed engine checks the wall clock once per
// simulated second, so a body that stops advancing simulated time is not
// interrupted.
func (s Spec) Execute(timeout time.Duration) Result {
	res := Result{
		Name:       s.Name,
		Figure:     s.Figure,
		Seed:       s.Seed,
		SimSeconds: s.Duration.Seconds(),
	}
	m := &Meter{start: time.Now(), deadline: timeout}
	if s.Obs != nil {
		m.obs = obs.New(*s.Obs)
	}
	func() {
		defer func() {
			if p := recover(); p != nil {
				res.Err = fmt.Sprintf("panic: %v", p)
				if m.obs != nil && m.obs.Rec != nil {
					// The flight recorder holds the events leading up to
					// the crash — dump it while the state is still warm.
					fmt.Fprintf(os.Stderr, "run %s panicked: %v\n", s.Name, p)
					m.obs.Rec.WriteLog(os.Stderr)
				}
			}
		}()
		rows, err := s.Body(m)
		switch {
		case m.timedOut:
			res.Err = fmt.Sprintf("timeout after %v", timeout)
		case err != nil:
			res.Err = err.Error()
		default:
			res.Rows = rows
		}
	}()
	res.WallSeconds = time.Since(m.start).Seconds()
	for _, e := range m.engines {
		res.Events += e.Fired()
	}
	for _, n := range m.nets {
		for _, l := range n.Links() {
			res.Packets += l.Stats().Delivered
		}
	}
	if res.WallSeconds > 0 {
		res.EventsPerSecond = float64(res.Events) / res.WallSeconds
	}
	if m.obs != nil {
		res.Obs = m.obs.Dump()
	}
	return res
}

// ExecuteAll runs specs serially in order with no timeout. The concurrent
// equivalent is internal/runner.Run; the two produce identical Rows for
// the same specs (the runner's determinism test proves it).
func ExecuteAll(specs []Spec) []Result {
	out := make([]Result, len(specs))
	for i, s := range specs {
		out[i] = s.Execute(0)
	}
	return out
}

// GatherRows concatenates the typed rows of results, in order. It fails on
// the first failed result or row-type mismatch.
func GatherRows[T any](results []Result) ([]T, error) {
	var out []T
	for _, r := range results {
		if r.Failed() {
			return nil, fmt.Errorf("run %s failed: %s", r.Name, r.Err)
		}
		rows, ok := r.Rows.([]T)
		if !ok {
			return nil, fmt.Errorf("run %s: rows are %T, want []%T", r.Name, r.Rows, *new(T))
		}
		out = append(out, rows...)
	}
	return out, nil
}

// mustGather backs the legacy RunFigN entry points, which predate error
// returns: their specs' bodies only fail by panicking, and ExecuteAll has
// already converted any panic into a failed Result, so re-raising keeps
// the old contract.
func mustGather[T any](results []Result) []T {
	rows, err := GatherRows[T](results)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return rows
}
