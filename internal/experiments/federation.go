package experiments

import (
	"fmt"

	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

// This file is the hierarchical-control-plane experiment: the same
// tiered-Internet topology run twice, once under one flat controller seeing
// every receiver, once federated — scoped per-domain leaf controllers under
// a federation parent that reconciles per-domain session budgets against
// each domain's border-link bandwidth. The two claims measured: per-domain
// budgets converge (churn stops well before the run ends) and quality
// matches the flat controller per domain, with the leaves provably never
// consuming feedback from outside their own domain.

// FederationConfig parameterizes the experiment.
type FederationConfig struct {
	Seed             int64
	Duration         sim.Time // 0 = 600 s
	ReceiversPerLeaf int      // 0 = 2
	Traffic          Traffic  // zero = CBR
}

func (c *FederationConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	if c.ReceiversPerLeaf == 0 {
		c.ReceiversPerLeaf = 2
	}
}

// federationTopology builds the experiment's tiered-Internet instance: two
// tier-1 domains behind ~2 Mbit/s border links (tight enough that the
// derived domain ceilings sit inside the 6-layer stack), three tier-2
// leaves each behind ~600 Kbit/s last hops.
func federationTopology(e sim.Scheduler, seed int64, rxPerLeaf int) *topology.Build {
	return topology.MustGenerate(e, &topology.TieredConfig{
		Seed:             seed,
		FanOut:           []int{2, 3},
		Bandwidth:        []float64{2e6, 600e3},
		ReceiversPerLeaf: rxPerLeaf,
	})
}

// FederationRow is one (variant, domain) outcome.
type FederationRow struct {
	Variant   string  `json:"variant"` // "flat" or "federated"
	Domain    int     `json:"domain"`  // -1 = all domains together
	Receivers int     `json:"receivers"`
	MeanDev   float64 `json:"mean_rel_deviation"`
	FinalOK   bool    `json:"final_within_1"` // every receiver within 1 layer of optimal at the end

	// Federated-only: the parent's view of the domain.
	Ceiling       int     `json:"ceiling,omitempty"`         // border-bandwidth level ceiling
	EndBudget     int     `json:"end_budget,omitempty"`      // session-0 budget in force at the end
	BudgetChanges int64   `json:"budget_changes,omitempty"`  // budget entries pushed over the run
	LastChangeS   float64 `json:"last_change_s,omitempty"`   // when the last budget push happened
	Converged     bool    `json:"converged,omitempty"`       // no budget churn in the final third
	CrossDomain   int     `json:"cross_domain_regs"`         // receivers registered outside their leaf's scope (must be 0)
	Capped        int64   `json:"capped_suggestions,omitempty"`
}

// federationGroups splits session-0 receiver indices by domain label, in
// ascending domain order.
func federationGroups(b *topology.Build) (doms []int, byDom map[int][]int) {
	byDom = make(map[int][]int)
	for i, node := range b.Receivers[0] {
		d := b.Domains[node.ID]
		if _, ok := byDom[d]; !ok {
			doms = append(doms, d)
		}
		byDom[d] = append(byDom[d], i)
	}
	// Insertion order follows node creation, which is already ascending by
	// domain for the tiered generator; sort defensively anyway.
	for i := 1; i < len(doms); i++ {
		for j := i; j > 0 && doms[j] < doms[j-1]; j-- {
			doms[j], doms[j-1] = doms[j-1], doms[j]
		}
	}
	return doms, byDom
}

// federationQuality reduces one receiver group to (deviation, finalOK).
func federationQuality(traces []*metrics.Trace, optima []int, finals []int, idx []int, dur sim.Time) (float64, bool) {
	var trs []*metrics.Trace
	var opts []int
	ok := true
	for _, i := range idx {
		trs = append(trs, traces[i])
		opts = append(opts, optima[i])
		if diff := finals[i] - optima[i]; diff < -1 || diff > 1 {
			ok = false
		}
	}
	return metrics.MeanRelativeDeviation(trs, opts, 0, dur), ok
}

// FederationSpecs enumerates the experiment: one flat run and one federated
// run on the identical topology and seed.
func FederationSpecs(cfg FederationConfig) []Spec {
	cfg.normalize()
	wcfg := WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic}

	flat := NewSpec("fig_federation",
		fmt.Sprintf("fig_federation/flat/%s/seed=%d", cfg.Traffic.Name, cfg.Seed),
		cfg.Seed, cfg.Duration,
		func(m *Meter) (any, error) {
			e := NewRunEngine(cfg.Seed, 0)
			b := federationTopology(e, cfg.Seed, cfg.ReceiversPerLeaf)
			w := NewWorld(e, b, wcfg)
			m.ObserveWorld(w)
			w.Run(cfg.Duration)
			traces, optima := w.AllTraces()
			finals := make([]int, len(w.Receivers[0]))
			for i, rx := range w.Receivers[0] {
				finals[i] = rx.Level()
			}
			doms, byDom := federationGroups(b)
			var rows []FederationRow
			all := make([]int, len(traces))
			for i := range all {
				all[i] = i
			}
			dev, ok := federationQuality(traces, optima, finals, all, cfg.Duration)
			rows = append(rows, FederationRow{Variant: "flat", Domain: -1, Receivers: len(all), MeanDev: dev, FinalOK: ok})
			for _, d := range doms {
				dev, ok := federationQuality(traces, optima, finals, byDom[d], cfg.Duration)
				rows = append(rows, FederationRow{Variant: "flat", Domain: d, Receivers: len(byDom[d]), MeanDev: dev, FinalOK: ok})
			}
			return rows, nil
		})

	fed := NewSpec("fig_federation",
		fmt.Sprintf("fig_federation/federated/%s/seed=%d", cfg.Traffic.Name, cfg.Seed),
		cfg.Seed, cfg.Duration,
		func(m *Meter) (any, error) {
			e := NewRunEngine(cfg.Seed, 0)
			b := federationTopology(e, cfg.Seed, cfg.ReceiversPerLeaf)
			w, err := NewFedWorld(e, b, wcfg)
			if err != nil {
				return nil, err
			}
			m.Observe(w.Engine, w.Net)
			w.Run(cfg.Duration)
			traces, optima := w.AllTraces()
			finals := make([]int, len(w.Receivers[0]))
			for i, rx := range w.Receivers[0] {
				finals[i] = rx.Level()
			}
			doms, byDom := federationGroups(b)
			var rows []FederationRow
			all := make([]int, len(traces))
			for i := range all {
				all[i] = i
			}
			dev, ok := federationQuality(traces, optima, finals, all, cfg.Duration)
			allRow := FederationRow{Variant: "federated", Domain: -1, Receivers: len(all), MeanDev: dev, FinalOK: ok}
			for _, d := range doms {
				dev, ok := federationQuality(traces, optima, finals, byDom[d], cfg.Duration)
				row := FederationRow{Variant: "federated", Domain: d, Receivers: len(byDom[d]), MeanDev: dev, FinalOK: ok}
				leaf := w.LeafFor[d]
				if leaf != nil {
					changes, last := w.Parent.ChangesFor(d)
					row.Ceiling = w.Parent.Ceiling(d)
					row.EndBudget = w.Parent.Budget(d, 0)
					row.BudgetChanges = changes
					row.LastChangeS = last.Seconds()
					// Converged: budgets were granted and none moved in the
					// final third of the run.
					row.Converged = changes > 0 && last <= cfg.Duration-cfg.Duration/3
					row.Capped = leaf.Controller().SuggestionsCapped
					// Domain isolation: every receiver the leaf ever
					// registered lies inside its scope.
					scope := w.ScopeFor[d]
					for _, r := range leaf.Controller().RegisteredReceivers() {
						if !scope[r.Node] {
							row.CrossDomain++
						}
					}
					allRow.BudgetChanges += changes
					allRow.Capped += row.Capped
					allRow.CrossDomain += row.CrossDomain
				}
				rows = append(rows, row)
			}
			// The all-domains row converged only if every domain did.
			allRow.Converged = true
			for _, r := range rows {
				if !r.Converged {
					allRow.Converged = false
				}
			}
			return append([]FederationRow{allRow}, rows...), nil
		})

	return []Spec{flat, fed}
}

// RunFederation executes both variants and returns their rows.
func RunFederation(cfg FederationConfig) []FederationRow {
	return mustGather[FederationRow](ExecuteAll(FederationSpecs(cfg)))
}

// FederationTable renders the comparison.
func FederationTable(rows []FederationRow) *Table {
	t := &Table{
		Title: "Hierarchical control plane: per-domain leaf controllers under a federation parent vs one flat controller",
		Header: []string{"variant", "domain", "receivers", "rel deviation", "final within 1",
			"ceiling", "end budget", "budget changes", "last change", "converged", "cross-domain regs", "capped"},
	}
	for _, r := range rows {
		dom := "all"
		if r.Domain >= 0 {
			dom = fmt.Sprintf("%d", r.Domain)
		}
		ceiling, budget, changes, last, conv, capped := "-", "-", "-", "-", "-", "-"
		if r.Variant == "federated" {
			changes = fmt.Sprintf("%d", r.BudgetChanges)
			conv = fmt.Sprintf("%v", r.Converged)
			capped = fmt.Sprintf("%d", r.Capped)
			if r.Domain >= 0 {
				ceiling = fmt.Sprintf("%d", r.Ceiling)
				budget = fmt.Sprintf("%d", r.EndBudget)
				last = fmt.Sprintf("%.0f s", r.LastChangeS)
			}
		}
		t.AddRow(r.Variant, dom, fmt.Sprintf("%d", r.Receivers),
			fmt.Sprintf("%.3f", r.MeanDev), fmt.Sprintf("%v", r.FinalOK),
			ceiling, budget, changes, last, conv, fmt.Sprintf("%d", r.CrossDomain), capped)
	}
	return t
}
