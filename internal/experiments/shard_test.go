package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"toposense/internal/obs"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

// shardFamilySpecs maps every registered generator family to a small spec
// exercised by the cross-shard determinism property tests. Families with
// generator-emitted domain labels (star, tree, linear, tiered) partition
// along those; the rest (a, b, mesh) go through the min-cut fallback.
// TestShardDeterminismCoversRegistry fails when a new family is registered
// without an entry here.
var shardFamilySpecs = map[string]string{
	"a":      "a,rxset=2",
	"b":      "b,sessions=3",
	"tiered": "tiered,fanout=2:2,rxleaf=2",
	"star":   "star,arms=3,rxarm=2",
	"mesh":   "mesh,routers=6,rxrouter=2",
	"tree":   "tree,depth=2,branch=3,rxleaf=2",
	"linear": "linear,chains=3,length=3,rxhop=2",
}

func TestShardDeterminismCoversRegistry(t *testing.T) {
	for _, name := range topology.Names() {
		if _, ok := shardFamilySpecs[name]; !ok {
			t.Errorf("generator family %q has no shard-determinism spec; add one to shardFamilySpecs", name)
		}
	}
}

// runShardWorld executes one world on the given engine flavour (shards 0 =
// the plain single-threaded engine) with observability on and the flight
// recorder off (its retained tail is scheduling-dependent across engines).
func runShardWorld(t *testing.T, specStr string, seed int64, shards int, dur sim.Time) (*World, *obs.Obs) {
	t.Helper()
	_, tcfg, err := topology.Parse(specStr)
	if err != nil {
		t.Fatal(err)
	}
	e := NewRunEngine(seed, shards)
	b, err := topology.Generate(e, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.Options{FlightRecorder: -1})
	w := NewWorld(e, b, WorldConfig{Seed: seed, Traffic: VBR3})
	w.WireObs(o)
	w.Run(dur)
	return w, o
}

// modelCanonical reduces a run to its model-visible outcomes: each
// receiver's full subscription trace, the events-fired / packets-forwarded
// / controller-pass meters, every counter, and each histogram's total
// observation count. It excludes data that records the interleaving of
// same-timestamp events rather than model state — histogram bucket
// distributions and sums, audit transients, engine stats — which the
// sharded engines' partition-boundary tie-break may order differently
// than the serial engine's FIFO.
func modelCanonical(t *testing.T, w *World, o *obs.Obs) string {
	t.Helper()
	var sb strings.Builder
	traces, optima := w.AllTraces()
	for i, tr := range traces {
		fmt.Fprintf(&sb, "rx %d opt %d:", i, optima[i])
		for _, p := range tr.Points() {
			fmt.Fprintf(&sb, " %d@%d", p.Level, int64(p.At))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "fired %d\n", w.Engine.Fired())
	var packets int64
	for _, l := range w.Net.Links() {
		packets += l.Stats().Delivered
	}
	fmt.Fprintf(&sb, "packets %d\n", packets)
	fmt.Fprintf(&sb, "passes %d\n", w.Controller.StepsRun)
	d := o.Dump()
	for _, c := range d.Counters {
		fmt.Fprintf(&sb, "counter %s %d\n", c.Name, c.Value)
	}
	for _, h := range d.Histograms {
		fmt.Fprintf(&sb, "histogram %s count %d\n", h.Name, h.Count)
	}
	return sb.String()
}

// exportCanonical is the full observability export: everything in
// modelCanonical plus histogram bucket distributions and the audit log.
// Histogram float sums and means are zeroed (their accumulation order is
// partition-dependent) and the per-engine stats section is dropped (it
// reports the execution, not the model). Byte-identical across worker
// counts of the same logical partitioning.
func exportCanonical(t *testing.T, w *World, o *obs.Obs) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(modelCanonical(t, w, o))
	d := o.Dump()
	d.Engines = nil
	for i := range d.Histograms {
		d.Histograms[i].Sum = 0
		d.Histograms[i].Mean = 0
	}
	dump, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	sb.Write(dump)
	return sb.String()
}

// TestShardWorkerInvariance is the determinism property test of the
// sharded engine proper: for every registered generator family, runs with
// 1, 2 and 4 workers at the same seed must produce byte-identical full
// observability exports. The worker count is physical only — the logical
// partitioning comes from the topology — so nothing, including
// tie-ordering artifacts, may depend on it.
func TestShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every family three times")
	}
	const dur = 20 * sim.Second
	for _, name := range topology.Names() {
		spec, ok := shardFamilySpecs[name]
		if !ok {
			continue // TestShardDeterminismCoversRegistry reports it
		}
		t.Run(name, func(t *testing.T) {
			w, o := runShardWorld(t, spec, 1, 1, dur)
			base := exportCanonical(t, w, o)
			for _, workers := range []int{2, 4} {
				w, o := runShardWorld(t, spec, 1, workers, dur)
				if got := exportCanonical(t, w, o); got != base {
					t.Errorf("%s: %d workers diverge from 1 worker\n%s",
						spec, workers, firstDiff(base, got))
				}
			}
		})
	}
}

// TestShardSerialEquivalence pins the sharded engine against the
// single-threaded determinism oracle: for every family, the partitioned
// run's model-visible outcomes — receiver traces, totals, every counter —
// must be byte-identical to the plain engine's at this horizon. The two
// engines serialize same-timestamp partition-boundary ties differently, so
// an engine bug (a lost event, a wrong clock, a racing RNG draw) shows up
// here immediately, while over much longer runs a reordered tie on a
// saturated queue can legitimately cascade (the sharded golden lineage in
// golden_test.go covers that regime).
func TestShardSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every family twice")
	}
	const dur = 20 * sim.Second
	for _, name := range topology.Names() {
		spec, ok := shardFamilySpecs[name]
		if !ok {
			continue
		}
		t.Run(name, func(t *testing.T) {
			w, o := runShardWorld(t, spec, 1, 0, dur)
			serial := modelCanonical(t, w, o)
			w, o = runShardWorld(t, spec, 1, 4, dur)
			if got := modelCanonical(t, w, o); got != serial {
				t.Errorf("%s: sharded run diverges from the serial oracle\n%s",
					spec, firstDiff(serial, got))
			}
		})
	}
}

// TestShardDeterminismScaleRows pins the fig_scale acceptance: rows from
// the sharded engine must be byte-identical to the single-threaded
// ladder's (wall-clock pass latencies and the shard tag excluded), on
// both a domain-labelled family and the tiered-Internet topology.
func TestShardDeterminismScaleRows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each point three times")
	}
	for _, point := range []string{
		"tree,depth=2,branch=3,rxleaf=2",
		"tiered,fanout=2:2,rxleaf=2",
	} {
		t.Run(point, func(t *testing.T) {
			base := scaleRowCanonical(t, point, 0)
			for _, shards := range []int{2, 4} {
				if got := scaleRowCanonical(t, point, shards); got != base {
					t.Errorf("%s: shards=%d row diverges\n%s", point, shards, firstDiff(base, got))
				}
			}
		})
	}
}

func scaleRowCanonical(t *testing.T, point string, shards int) string {
	t.Helper()
	cfg := ScaleConfig{Seed: 1, Duration: 15 * sim.Second, Topo: point, Traffic: CBR}
	res := scaleSpec(cfg, point, shards, false, false).Execute(0)
	if res.Failed() {
		t.Fatalf("run %s failed: %s", res.Name, res.Err)
	}
	rows, ok := res.Rows.([]ScaleRow)
	if !ok || len(rows) != 1 {
		t.Fatalf("run %s: rows are %T, want one ScaleRow", res.Name, res.Rows)
	}
	row := rows[0]
	row.Shards, row.PassMeanMs, row.PassMaxMs = 0, 0, 0
	enc, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%s events=%d packets=%d", enc, res.Events, res.Packets)
}

// firstDiff renders the first differing line of two canonical strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
