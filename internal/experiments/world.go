// Package experiments contains the benchmark harness that regenerates every
// figure of the paper's evaluation (Section IV): stability on Topologies A
// and B (Figures 6 and 7), inter-session fairness (Figure 8), the
// subscription/loss trace with four competing sessions (Figure 9), the
// impact of stale topology information (Figure 10), and an RLM-baseline
// comparison. Each runner assembles a full simulated world — network,
// multicast domain, layered sources, receivers, topology-discovery tool and
// controller — runs it for the configured duration, and reduces receiver
// traces to the numbers the paper plots.
package experiments

import (
	"math/rand"

	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/receiver"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
	"toposense/internal/topology"
)

// Traffic names a source model used across the experiments.
type Traffic struct {
	Name       string
	PeakToMean float64 // 0 or 1 = CBR
}

// The paper's three traffic models.
var (
	CBR  = Traffic{Name: "CBR", PeakToMean: 0}
	VBR3 = Traffic{Name: "VBR(P=3)", PeakToMean: 3}
	VBR6 = Traffic{Name: "VBR(P=6)", PeakToMean: 6}
)

// AllTraffic is the sweep used by Figures 6-8.
var AllTraffic = []Traffic{CBR, VBR3, VBR6}

// Duration of every paper run.
const PaperDuration = 1200 * sim.Second

// World is an assembled TopoSense simulation.
type World struct {
	Engine     sim.Runner
	Net        *netsim.Network
	Domain     *mcast.Domain
	Build      *topology.Build
	Sources    []*source.Source
	Receivers  [][]*receiver.Receiver // [session][i]
	Controller *controller.Controller
	Aggregator *mcast.Aggregator // non-nil when WorldConfig.Aggregate is set
	Tool       *topodisc.Tool
	Traces     [][]*metrics.Trace // parallel to Receivers
	Optimal    [][]int            // parallel to Receivers
	started    bool
}

// WorldConfig carries the knobs shared by all experiments.
type WorldConfig struct {
	Seed      int64
	Traffic   Traffic
	Staleness sim.Time
	Layers    int // 0 = source.DefaultLayers
	// Rates overrides the default doubling layer rates (granularity
	// extension experiments); determines the layer count when set.
	Rates []float64
	// LeaveLatency overrides the multicast group-leave latency; 0 keeps
	// mcast.DefaultLeaveLatency.
	LeaveLatency sim.Time
	// ProbeDiscovery switches topology discovery to the mtrace-style
	// hop-by-hop probe mode instead of the instantaneous oracle.
	ProbeDiscovery bool
	// Shards selects the engine the NewWorldA/NewWorldB helpers build: 0
	// or 1 is the single-threaded oracle, N > 1 the conservative sharded
	// engine with N workers. Results are byte-identical either way — only
	// wall-clock changes. Ignored by NewWorld, which takes the engine.
	Shards int
	// Aggregate installs the in-network feedback aggregation layer: tree
	// nodes fold upward loss reports into per-subtree report.Aggregates and
	// the controller fans suggestions out as batched per-next-hop packets.
	// Off (the default) the control plane is byte-identical to the flat
	// report path.
	Aggregate bool
	// Algorithm overrides; zero values take core defaults.
	Alg core.Config
}

// NewWorld assembles a world on a built topology. One source per session is
// placed at Build.Sources[i]; the controller at Build.Controller; one
// receiver per entry of Build.Receivers.
//
// When e is a ShardedEngine the network is partitioned across e's shards
// before any component is wired, so every subsequently created timer lands
// on its owning shard. Builds without generator-emitted domain labels
// (Topology A/B, mesh) fall back to the min-cut heuristic; if that finds
// no usable cut either, the sharded engine degenerates to one partition —
// same results, no parallelism.
func NewWorld(e sim.Runner, b *topology.Build, cfg WorldConfig) *World {
	if se, ok := e.(*sim.ShardedEngine); ok {
		doms := b.Domains
		if doms == nil {
			doms = b.FallbackDomains()
		}
		b.Net.Partition(se, doms)
	}
	layers := cfg.Layers
	if len(cfg.Rates) > 0 {
		layers = len(cfg.Rates)
	} else if layers == 0 {
		layers = source.DefaultLayers
	}
	d := mcast.NewDomain(b.Net)
	if cfg.LeaveLatency != 0 {
		d.LeaveLatency = cfg.LeaveLatency
	}

	w := &World{Engine: e, Net: b.Net, Domain: d, Build: b, Optimal: b.Optimal}
	sessions := make([]int, len(b.Sources))
	for i, srcNode := range b.Sources {
		sessions[i] = i
		w.Sources = append(w.Sources, source.New(b.Net, d, srcNode, source.Config{
			Session:    i,
			Layers:     layers,
			PeakToMean: cfg.Traffic.PeakToMean,
			Rates:      cfg.Rates,
		}))
	}

	tool := topodisc.NewTool(b.Net, d, sessions)
	tool.Staleness = cfg.Staleness
	tool.ProbeMode = cfg.ProbeDiscovery
	w.Tool = tool

	algCfg := cfg.Alg
	if algCfg.LayerRates == nil {
		if len(cfg.Rates) > 0 {
			algCfg.LayerRates = append([]float64(nil), cfg.Rates...)
		} else {
			algCfg.LayerRates = source.Rates(layers)
		}
	}
	algCfg.Normalize()
	alg := core.New(algCfg, rand.New(rand.NewSource(cfg.Seed+1)))
	w.Controller = controller.New(b.Net, d, b.Controller, tool, alg)
	// The paper's staleness experiments age both halves of the
	// controller's input: the discovered topology and the loss reports.
	w.Controller.Staleness = cfg.Staleness

	for s := range b.Receivers {
		var rxs []*receiver.Receiver
		var trs []*metrics.Trace
		for _, node := range b.Receivers[s] {
			rx := receiver.New(b.Net, d, node, receiver.Config{
				Session:      s,
				MaxLayers:    layers,
				InitialLevel: 1,
				Controller:   b.Controller.ID,
			})
			tr := metrics.NewTrace(0, 0)
			rx.OnChange = func(c receiver.Change) { tr.Set(c.At, c.To) }
			rxs = append(rxs, rx)
			trs = append(trs, tr)
		}
		w.Receivers = append(w.Receivers, rxs)
		w.Traces = append(w.Traces, trs)
	}
	if cfg.Aggregate {
		// Installed after the receivers so each node's delivery order is
		// receiver-then-aggregator; the aggregator's deferred batch release
		// makes either order safe.
		w.Aggregator = mcast.NewAggregator(b.Net, b.Controller.ID, 0)
		w.Controller.EnableAggregation()
	}
	return w
}

// WireObs attaches an observability bundle to every component of the
// world: a packet-plane probe on all links, the multicast domain's tree
// events, the controller's pass audit, and the engine's scheduler stats.
// A nil bundle is a no-op — the world then runs the exact pre-obs hot
// path, with no probe installed at all. Call before Start, at most once
// per bundle (probes accumulate).
func (w *World) WireObs(o *obs.Obs) {
	if o == nil {
		return
	}
	w.Net.AttachProbe(obs.NewNetProbe(o))
	w.Domain.SetObs(o)
	w.Controller.SetObs(o)
	w.Aggregator.SetObs(o)
	o.ObserveEngine(w.Engine)
}

// Start launches sources, controller and receivers.
func (w *World) Start() {
	if w.started {
		return
	}
	w.started = true
	for _, s := range w.Sources {
		s.Start()
	}
	w.Controller.Start()
	for _, rxs := range w.Receivers {
		for _, rx := range rxs {
			rx.Start()
		}
	}
}

// Shutdown stops every component and drains the aggregation layer's pooled
// payloads back to their pools. After Shutdown the world holds no pooled
// Aggregate or SuggestionBatch — in a drop-free run the process-wide
// report.AggregatesLive/BatchesLive counters return to their pre-world
// values, which is exactly what the pool-balance regression test asserts.
func (w *World) Shutdown() {
	for _, s := range w.Sources {
		s.Stop()
	}
	w.Controller.Stop()
	for _, rxs := range w.Receivers {
		for _, rx := range rxs {
			rx.Stop()
		}
	}
	w.Aggregator.Stop()
}

// Run starts the world (if needed) and advances to the given time.
func (w *World) Run(until sim.Time) {
	w.Start()
	w.Engine.RunUntil(until)
}

// AllTraces flattens traces with their optima, session-major.
func (w *World) AllTraces() (traces []*metrics.Trace, optima []int) {
	for s := range w.Traces {
		traces = append(traces, w.Traces[s]...)
		optima = append(optima, w.Optimal[s]...)
	}
	return traces, optima
}

// NewRunEngine builds the engine a run executes on. shards <= 0 is the
// default single-threaded engine. shards >= 1 selects the sharded
// execution model with that many workers — the worker count is purely
// physical: the logical partitioning comes from the topology's domain
// labels, so any two worker counts (including 1) produce byte-identical
// results. Against the single-threaded engine the sharded model executes
// the same events with the same clocks and RNG stream; the one defined
// difference is the serialization of same-timestamp events that meet at a
// partition boundary (partition order instead of schedule-call order), so
// the two engines are separate golden lineages rather than bit-equal.
func NewRunEngine(seed int64, shards int) sim.Runner {
	if shards >= 1 {
		return sim.NewShardedEngine(seed, shards)
	}
	return sim.NewEngine(seed)
}

// NewWorldA builds the paper's Topology A world.
func NewWorldA(receiversPerSet int, cfg WorldConfig) *World {
	e := NewRunEngine(cfg.Seed, cfg.Shards)
	b := topology.MustGenerate(e, &topology.AConfig{ReceiversPerSet: receiversPerSet})
	return NewWorld(e, b, cfg)
}

// NewWorldB builds the paper's Topology B world with the given number of
// competing sessions.
func NewWorldB(sessions int, cfg WorldConfig) *World {
	e := NewRunEngine(cfg.Seed, cfg.Shards)
	b := topology.MustGenerate(e, &topology.BConfig{Sessions: sessions})
	return NewWorld(e, b, cfg)
}

// buildTestB is a tiny helper for tests that need a raw Build.
func buildTestB(e *sim.Engine, sessions int) *topology.Build {
	return topology.MustGenerate(e, &topology.BConfig{Sessions: sessions})
}
