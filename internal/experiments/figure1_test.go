package experiments

import (
	"testing"

	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/receiver"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
	"toposense/internal/trace"

	"math/rand"
)

// TestFigure1MotivatingExample reproduces the paper's introductory example
// (its Figure 1) end to end:
//
//	"Assume that layer 1 requires a bandwidth of 32Kbps and every
//	subsequent layer requires twice the bandwidth ... the receivers at
//	nodes 3 and 4 can hope to receive layers 1 and 1,2 respectively ...
//	Suppose the receiver at node 4 tries to subscribe to one more layer.
//	This will result in congestion at node 2 and hence losses for both
//	node 3 and node 4. A congestion control mechanism which is unaware of
//	the topological relationship between nodes 3 and 4 may take incorrect
//	decisions to control losses at node 3."
//
// We build exactly that tree, start node 4 over-subscribed at 3 layers,
// and check that (a) the over-subscription hurts BOTH receivers, and (b)
// TopoSense pulls node 4 down to its 2-layer optimum while leaving node 3
// at its base layer — the correct, topology-aware decision.
func TestFigure1MotivatingExample(t *testing.T) {
	e := sim.NewEngine(42)
	n := netsim.New(e)
	src := n.AddNode("node1-source")
	n2 := n.AddNode("node2")
	n3 := n.AddNode("node3")
	n4 := n.AddNode("node4")
	delay := 100 * sim.Millisecond
	// The link into node 2 carries the union of the subtree's layers:
	// sized for layers 1+2 (96 Kbps) with headroom.
	n.Connect(src, n2, netsim.LinkConfig{Bandwidth: 100e3, Delay: delay})
	// Node 3's last mile carries only the base layer.
	n.Connect(n2, n3, netsim.LinkConfig{Bandwidth: 34e3, Delay: delay})
	// Node 4's last mile carries layers 1+2.
	n.Connect(n2, n4, netsim.LinkConfig{Bandwidth: 100e3, Delay: delay})

	d := mcast.NewDomain(n)
	s := source.New(n, d, src, source.Config{Session: 0})
	tool := topodisc.NewTool(n, d, []int{0})
	alg := core.New(core.NewConfig(source.Rates(6)), rand.New(rand.NewSource(1)))
	ctrl := controller.New(n, d, src, tool, alg)

	rx3 := receiver.New(n, d, n3, receiver.Config{
		Session: 0, MaxLayers: 6, InitialLevel: 1, Controller: src.ID,
	})
	// Node 4 starts over-subscribed to 3 layers — one more than its share.
	rx4 := receiver.New(n, d, n4, receiver.Config{
		Session: 0, MaxLayers: 6, InitialLevel: 3, Controller: src.ID,
	})

	// Track each receiver's loss during the initial over-subscribed phase.
	sampler := trace.NewSampler(e, 500*sim.Millisecond)
	sampler.Probe("loss3", func() float64 { return rx3.LastLoss })
	sampler.Probe("loss4", func() float64 { return rx4.LastLoss })
	sampler.Start()

	s.Start()
	ctrl.Start()
	rx3.Start()
	rx4.Start()

	// Phase 1: the first seconds, before control takes hold. Node 4's
	// extra layer congests the shared link into node 2: BOTH receivers
	// lose packets, exactly as the paper argues.
	e.RunUntil(8 * sim.Second)
	early3 := sampler.Series("loss3").Window(3*sim.Second, 8*sim.Second).Max()
	early4 := sampler.Series("loss4").Window(3*sim.Second, 8*sim.Second).Max()
	if early3 < 0.05 {
		t.Errorf("node 3 unharmed by node 4's over-subscription (max loss %.3f) — the shared bottleneck is not binding", early3)
	}
	if early4 < 0.05 {
		t.Errorf("node 4 unharmed by its own over-subscription (max loss %.3f)", early4)
	}

	// Phase 2: let TopoSense act. The topologically correct outcome: node
	// 4 back at 2 layers, node 3 at 1 — judged by the modal (most common)
	// sampled level over the final minute, so a probe in flight at the
	// instant the clock stops does not flake the test.
	lvl3 := trace.NewSeries("lvl3")
	lvl4 := trace.NewSeries("lvl4")
	lvlTick := e.Every(sim.Second, func() {
		lvl3.Add(e.Now(), float64(rx3.Level()))
		lvl4.Add(e.Now(), float64(rx4.Level()))
	})
	e.RunUntil(120 * sim.Second)
	lvlTick.Stop()
	if got := modalValue(lvl3.Window(60*sim.Second, 120*sim.Second)); got != 1 {
		t.Errorf("node 3's modal level = %d, want its base layer", got)
	}
	if got := modalValue(lvl4.Window(60*sim.Second, 120*sim.Second)); got != 2 {
		t.Errorf("node 4's modal level = %d, want 2 (its own share)", got)
	}
	// Steady-state loss is near zero; node 3's periodic one-layer probes
	// (back-off expiry -> try layer 2 -> retreat) briefly exceed its thin
	// 34 Kbps last mile, so allow a small mean.
	late3 := sampler.Series("loss3").Window(100*sim.Second, 120*sim.Second).Mean()
	late4 := sampler.Series("loss4").Window(100*sim.Second, 120*sim.Second).Mean()
	if late3 > 0.08 || late4 > 0.08 {
		t.Errorf("residual loss after control: node3 %.3f, node4 %.3f", late3, late4)
	}
}

// modalValue returns the most common integer value of a series.
func modalValue(s *trace.Series) int {
	counts := map[int]int{}
	for i := 0; i < s.Len(); i++ {
		_, v := s.At(i)
		counts[int(v)]++
	}
	best, bestN := 0, -1
	for v, n := range counts {
		if n > bestN {
			best, bestN = v, n
		}
	}
	return best
}
