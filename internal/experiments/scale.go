package experiments

import (
	"fmt"
	"strings"

	"toposense/internal/metrics"
	"toposense/internal/sim"
	"toposense/internal/topology"
)

// The fig_scale experiment is not a paper figure: it tracks how far toward
// the ROADMAP's 10^5–10^6-receiver north star the simulator currently
// scales, and at what cost. Each point builds one large generated topology,
// runs a short full-stack simulation (sources, multicast, receivers,
// controller), and reports the scaling health numbers: events/s, bytes per
// receiver, forwarding-state memory against the dense nodes×groups
// equivalent, and controller pass wall latency.

// DefaultScaleDuration is simulated seconds per scale point — long enough
// for ~7 controller passes and for receivers to reach their optimal level,
// short enough that the 10^5-receiver point stays minutes of wall clock.
const DefaultScaleDuration = 30 * sim.Second

// QuickScaleDuration is the CI smoke duration.
const QuickScaleDuration = 10 * sim.Second

// scaleLadders maps a generator family to its sweep of spec strings,
// roughly decade steps in receiver count. The mesh family has cycles, so
// it routes through the dense O(N²) tables and its ladder stays small; the
// tree-routable families climb to 10^5 receivers.
var scaleLadders = map[string][]string{
	"tree": {
		"tree,depth=2,branch=5,rxleaf=4",   // 100 receivers
		"tree,depth=3,branch=8,rxleaf=2",   // 1 024
		"tree,depth=4,branch=10,rxleaf=1",  // 10 000
		"tree,depth=4,branch=10,rxleaf=10", // 100 000
	},
	"star": {
		"star,arms=10,rxarm=10",    // 100
		"star,arms=100,rxarm=10",   // 1 000
		"star,arms=100,rxarm=100",  // 10 000
		"star,arms=1000,rxarm=100", // 100 000
	},
	"linear": {
		"linear,chains=4,length=5,rxhop=5",      // 100
		"linear,chains=10,length=10,rxhop=10",   // 1 000
		"linear,chains=32,length=31,rxhop=10",   // ~10 000
		"linear,chains=100,length=100,rxhop=10", // 100 000
	},
	"mesh": {
		"mesh,routers=10,rxrouter=10",  // 100
		"mesh,routers=50,rxrouter=20",  // 1 000
		"mesh,routers=100,rxrouter=30", // 3 000
	},
}

// ScaleRow is one point of the scaling curve.
type ScaleRow struct {
	Topo      string `json:"topo"`      // the generator spec string
	Nodes     int    `json:"nodes"`     // network nodes
	Links     int    `json:"links"`     // directed links
	Receivers int    `json:"receivers"` // session receivers
	Groups    int    `json:"groups"`    // registered multicast groups

	// Forwarding-state memory after the run, against what the old dense
	// [node][group] pointer table would have held.
	TableEntries    int `json:"table_entries"`
	TableBytes      int `json:"table_bytes"`
	DenseEquivBytes int `json:"dense_equiv_bytes"`
	DenseNodes      int `json:"dense_nodes"` // nodes promoted to dense form

	// Controller pass wall-clock latency (host time; reporting only).
	Passes     int64   `json:"passes"`
	PassMeanMs float64 `json:"pass_mean_ms"`
	PassMaxMs  float64 `json:"pass_max_ms"`

	// Shards is the engine worker count the run used (0 = the
	// single-threaded engine). Results are byte-identical across worker
	// counts >= 1; only wall-clock differs.
	Shards int `json:"shards,omitempty"`

	// Control-plane fan-in at the controller. CtlMsgs/CtlBytes count every
	// control message (and its modeled wire bytes) delivered to the
	// controller agent over the run; FanInPerPass is messages per decision
	// pass and CtlBytesPerRx bytes per receiver. Aggregate marks the runs
	// with the in-network aggregation layer installed — the tentpole claim
	// is these columns collapsing from O(receivers) to O(branching).
	Aggregate     bool    `json:"aggregate,omitempty"`
	CtlMsgs       int64   `json:"ctl_msgs"`
	CtlBytes      int64   `json:"ctl_bytes"`
	FanInPerPass  float64 `json:"fanin"`
	CtlBytesPerRx float64 `json:"ctl_bytes_per_rx"`

	// Federate marks the runs under the hierarchical control plane: scoped
	// per-domain leaf controllers under a federation parent. The fan-in
	// columns then sum over every leaf, and Passes counts all leaf passes.
	Federate bool `json:"federate,omitempty"`

	// Delivered volume and quality.
	RxBytes          int64   `json:"rx_bytes"` // bytes serialized onto receiver last-hop links
	BytesPerReceiver float64 `json:"bytes_per_receiver"`
	MeanDev          float64 `json:"mean_dev"` // mean relative deviation from optimal
}

// ScaleConfig parameterizes the scaling study.
type ScaleConfig struct {
	Seed     int64
	Duration sim.Time // 0 = DefaultScaleDuration
	// Topo selects what to sweep: "" or a family name ("tree", "star",
	// "linear", "mesh") runs that family's ladder; any other generator spec
	// string runs as a single point.
	Topo    string
	Quick   bool // first two ladder points at QuickScaleDuration
	Traffic Traffic
	// Shards > 1 runs every ladder point twice — once on the
	// single-threaded engine, once on the sharded engine with that many
	// workers — so ScaleTable can report the wall-clock speedup next to
	// each point. 0 or 1 runs the single-threaded engine only.
	Shards int
	// Aggregate adds an in-network-aggregation twin of every ladder point
	// (named "<point>/agg"), so the table and BENCH capture carry control
	// fan-in, control bytes and pass latency both ways, plus the
	// agg-speedup column against the flat twin.
	Aggregate bool
	// Federate adds a hierarchical-control-plane twin of every ladder point
	// (named "<point>/fed"): per-domain leaf controllers under a federation
	// parent. Needs a domain-labelled family (tree, star, linear, tiered —
	// not mesh).
	Federate bool
}

func (c *ScaleConfig) normalize() {
	if c.Duration == 0 {
		c.Duration = DefaultScaleDuration
		if c.Quick {
			c.Duration = QuickScaleDuration
		}
	}
	if c.Topo == "" {
		c.Topo = "tree"
	}
	if c.Traffic.Name == "" {
		c.Traffic = CBR
	}
}

// scalePoints resolves the configured sweep into generator spec strings.
func scalePoints(cfg ScaleConfig) []string {
	points, ok := scaleLadders[cfg.Topo]
	if !ok {
		return []string{cfg.Topo} // a single explicit generator spec
	}
	if cfg.Quick && len(points) > 2 {
		points = points[:2]
	}
	return points
}

// ScaleSpecs enumerates the scaling curve: one run per topology point,
// plus — when cfg.Shards > 1 — a second run of each point on the sharded
// engine, named "<point>/shards=N", so the rendered table and the
// BENCH_*.json capture carry events/s at both shard counts and the
// wall-clock speedup.
func ScaleSpecs(cfg ScaleConfig) []Spec {
	cfg.normalize()
	var specs []Spec
	for _, point := range scalePoints(cfg) {
		specs = append(specs, scaleSpec(cfg, point, 0, false, false))
		if cfg.Shards > 1 {
			specs = append(specs, scaleSpec(cfg, point, cfg.Shards, false, false))
		}
		if cfg.Aggregate {
			specs = append(specs, scaleSpec(cfg, point, 0, true, false))
		}
		if cfg.Federate {
			specs = append(specs, scaleSpec(cfg, point, 0, false, true))
		}
	}
	return specs
}

// scaleSpec builds the Spec for one ladder point on one engine flavour
// (shards == 0 for the single-threaded oracle), optionally with the
// in-network aggregation layer or the hierarchical (federated) control
// plane installed.
func scaleSpec(cfg ScaleConfig, point string, shards int, aggregate, federate bool) Spec {
	name := "fig_scale/" + point
	if shards > 1 {
		name = fmt.Sprintf("%s/shards=%d", name, shards)
	}
	if aggregate {
		name += "/agg"
	}
	if federate {
		name += "/fed"
	}
	return NewSpec("fig_scale", name,
		cfg.Seed, cfg.Duration,
		func(m *Meter) (any, error) {
			_, tcfg, err := topology.Parse(point)
			if err != nil {
				return nil, err
			}
			e := NewRunEngine(cfg.Seed, shards)
			b, err := topology.Generate(e, tcfg)
			if err != nil {
				return nil, err
			}
			row := ScaleRow{
				Topo:      point,
				Nodes:     b.Net.NumNodes(),
				Links:     len(b.Net.Links()),
				Receivers: len(b.AllReceivers()),
				Shards:    shards,
				Aggregate: aggregate,
				Federate:  federate,
			}
			var passWall, passWallMax int64
			var traces []*metrics.Trace
			var optima []int
			if federate {
				w, err := NewFedWorld(e, b, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic})
				if err != nil {
					return nil, err
				}
				m.Observe(w.Engine, w.Net)
				w.Run(cfg.Duration)
				row.Groups = w.Domain.NumGroups()
				st := w.Domain.StateStats()
				row.TableEntries, row.TableBytes, row.DenseNodes = st.Entries, st.Bytes, st.DenseNodes
				// Fan-in and pass latency sum over every leaf controller —
				// the hierarchy's point is that each leaf's own fan-in is a
				// domain-sized fraction of the flat controller's.
				for _, l := range w.Leaves {
					c := l.Controller()
					row.Passes += c.StepsRun
					row.CtlMsgs += c.CtlMsgsRecv
					row.CtlBytes += c.CtlBytesRecv
					passWall += c.PassWallNanos
					if c.PassWallMaxNanos > passWallMax {
						passWallMax = c.PassWallMaxNanos
					}
				}
				traces, optima = w.AllTraces()
			} else {
				w := NewWorld(e, b, WorldConfig{Seed: cfg.Seed, Traffic: cfg.Traffic, Aggregate: aggregate})
				m.ObserveWorld(w)
				w.Run(cfg.Duration)
				row.Groups = w.Domain.NumGroups()
				st := w.Domain.StateStats()
				row.TableEntries, row.TableBytes, row.DenseNodes = st.Entries, st.Bytes, st.DenseNodes
				row.Passes = w.Controller.StepsRun
				row.CtlMsgs = w.Controller.CtlMsgsRecv
				row.CtlBytes = w.Controller.CtlBytesRecv
				passWall = w.Controller.PassWallNanos
				passWallMax = w.Controller.PassWallMaxNanos
				traces, optima = w.AllTraces()
			}
			row.DenseEquivBytes = row.Nodes * row.Groups * 8
			if row.Passes > 0 {
				row.PassMeanMs = float64(passWall) / float64(row.Passes) / 1e6
				row.FanInPerPass = float64(row.CtlMsgs) / float64(row.Passes)
			}
			row.PassMaxMs = float64(passWallMax) / 1e6
			for _, rx := range b.AllReceivers() {
				for _, l := range rx.Links() {
					if r := l.Reverse(); r != nil {
						row.RxBytes += r.Stats().TxBytes
					}
				}
			}
			if row.Receivers > 0 {
				row.BytesPerReceiver = float64(row.RxBytes) / float64(row.Receivers)
				row.CtlBytesPerRx = float64(row.CtlBytes) / float64(row.Receivers)
			}
			row.MeanDev = metrics.MeanRelativeDeviation(traces, optima, 0, cfg.Duration)
			return []ScaleRow{row}, nil
		})
}

// RunScale executes the scaling sweep serially.
func RunScale(cfg ScaleConfig) []ScaleRow {
	return mustGather[ScaleRow](ExecuteAll(ScaleSpecs(cfg)))
}

// ScaleTable renders the curve, joining each row with its run's event
// throughput from the Result (events/s and wall seconds live there, not in
// the row, so the renderer takes both). When the sweep ran points on both
// engines (ScaleConfig.Shards > 1), the sharded run's speedup column is
// its single-threaded twin's wall time divided by its own.
func ScaleTable(results []Result) (string, error) {
	// Wall time and fan-in of each point's flat single-threaded run, for
	// the speedup column of its sharded twin and the agg-speedup column of
	// its aggregated twin.
	baseWall := map[string]float64{}
	baseFanIn := map[string]float64{}
	for _, r := range results {
		rows, ok := r.Rows.([]ScaleRow)
		if !ok || len(rows) != 1 || rows[0].Shards > 1 || rows[0].Aggregate || rows[0].Federate {
			continue
		}
		baseWall[rows[0].Topo] = r.WallSeconds
		baseFanIn[rows[0].Topo] = rows[0].FanInPerPass
	}
	t := &Table{
		Title: "fig_scale: receivers vs cost (events/s, state bytes, pass latency, control fan-in)",
		Header: []string{"topology", "rx", "nodes", "engine", "events/s", "wall s", "speedup",
			"state bytes", "dense equiv", "pass mean ms", "pass max ms",
			"fanin/pass", "ctl B/rx", "agg gain", "B/rx", "dev"},
	}
	for _, r := range results {
		if r.Failed() {
			return "", fmt.Errorf("run %s failed: %s", r.Name, r.Err)
		}
		rows, ok := r.Rows.([]ScaleRow)
		if !ok || len(rows) != 1 {
			return "", fmt.Errorf("run %s: rows are %T, want one ScaleRow", r.Name, r.Rows)
		}
		row := rows[0]
		engine, speedup := "st", "-"
		if row.Shards >= 1 {
			engine = fmt.Sprintf("%d", row.Shards)
			if base, ok := baseWall[row.Topo]; ok && r.WallSeconds > 0 {
				speedup = fmt.Sprintf("%.2fx", base/r.WallSeconds)
			}
		}
		// agg gain: the flat twin's controller fan-in over the aggregated
		// run's — the message-reduction factor the tentpole claims.
		aggGain := "-"
		if row.Aggregate {
			engine += "+agg"
			if base, ok := baseFanIn[row.Topo]; ok && row.FanInPerPass > 0 {
				aggGain = fmt.Sprintf("%.0fx", base/row.FanInPerPass)
			}
		}
		if row.Federate {
			engine += "+fed"
		}
		t.AddRow(
			strings.TrimPrefix(row.Topo, "fig_scale/"),
			fmt.Sprintf("%d", row.Receivers),
			fmt.Sprintf("%d", row.Nodes),
			engine,
			fmt.Sprintf("%.3g", r.EventsPerSecond),
			fmt.Sprintf("%.1f", r.WallSeconds),
			speedup,
			fmt.Sprintf("%d", row.TableBytes),
			fmt.Sprintf("%d", row.DenseEquivBytes),
			fmt.Sprintf("%.2f", row.PassMeanMs),
			fmt.Sprintf("%.2f", row.PassMaxMs),
			fmt.Sprintf("%.0f", row.FanInPerPass),
			fmt.Sprintf("%.1f", row.CtlBytesPerRx),
			aggGain,
			fmt.Sprintf("%.0f", row.BytesPerReceiver),
			fmt.Sprintf("%.3f", row.MeanDev),
		)
	}
	return t.String() + "\n", nil
}
