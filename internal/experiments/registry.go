package experiments

import (
	"fmt"
	"strings"

	"toposense/internal/sim"
)

// SweepConfig is what a caller (cmd/topobench) knows when it asks the
// registry for work: the seed and whether to scale the sweep down.
type SweepConfig struct {
	Seed  int64
	Quick bool
	// Topo is a topology generator selection for the experiments that take
	// one (fig_scale): a family name for its whole ladder, or a full
	// "name,key=val" spec for a single point. Empty = the default sweep.
	Topo string
	// Shards is the engine worker count for the sweeps that honour it
	// (figures 6 and 7, fig_scale): <= 1 runs the single-threaded oracle,
	// N > 1 the conservative sharded engine. Simulation results are
	// byte-identical either way. fig_scale with Shards > 1 additionally
	// runs each point's single-threaded twin for the speedup column.
	Shards int
	// Aggregate makes fig_scale run an in-network-aggregation twin of every
	// ladder point next to the flat one, so the table carries control fan-in
	// and control bytes both ways plus the reduction factor.
	Aggregate bool
	// Federate makes fig_scale run a hierarchical-control-plane twin of
	// every ladder point (scoped leaf controllers under a federation
	// parent). fig_federation runs federated regardless.
	Federate bool
	// Churn is the mean join/leave period in seconds for the sweeps that
	// take one (fig_churn): > 0 pins the study to that single period
	// instead of its default sweep around the decision interval.
	Churn float64
}

// Experiment is one registry entry: a named sweep that can enumerate its
// Specs for a SweepConfig and render its executed Results back into the
// report text the tool prints.
type Experiment struct {
	// Name is the -fig key, e.g. "6" or "baseline".
	Name string
	// Title is a one-line description for help output.
	Title string
	// Specs enumerates the sweep, applying Quick scaling.
	Specs func(cfg SweepConfig) []Spec
	// Render turns the sweep's Results (in Specs order) into report text.
	Render func(results []Result) (string, error)
}

// quickDur returns the quick-sweep duration or 0 (= figure default).
func quickDur(cfg SweepConfig) sim.Time {
	if cfg.Quick {
		return QuickDuration
	}
	return 0
}

// table renders results as a single table via a typed gather.
func table[T any](results []Result, render func([]T) *Table) (string, error) {
	rows, err := GatherRows[T](results)
	if err != nil {
		return "", err
	}
	return render(rows).String() + "\n", nil
}

// Registry returns every experiment in report order. The slice is freshly
// built per call, so callers may not mutate shared state through it.
func Registry() []Experiment {
	return []Experiment{
		{
			Name:  "6",
			Title: "Figure 6: stability in Topology A",
			Specs: func(cfg SweepConfig) []Spec {
				c := Fig6Config{Seed: cfg.Seed, Duration: quickDur(cfg), Shards: cfg.Shards}
				if cfg.Quick {
					c.PerSet = []int{1, 2}
				}
				return Fig6Specs(c)
			},
			Render: func(results []Result) (string, error) {
				return table(results, func(rows []StabilityRow) *Table {
					return StabilityTable(
						"Figure 6: stability in Topology A (busiest receiver over the full run)",
						"receivers", rows)
				})
			},
		},
		{
			Name:  "7",
			Title: "Figure 7: stability in Topology B",
			Specs: func(cfg SweepConfig) []Spec {
				c := Fig7Config{Seed: cfg.Seed, Duration: quickDur(cfg), Shards: cfg.Shards}
				if cfg.Quick {
					c.Sessions = []int{2, 4}
				}
				return Fig7Specs(c)
			},
			Render: func(results []Result) (string, error) {
				return table(results, func(rows []StabilityRow) *Table {
					return StabilityTable(
						"Figure 7: stability in Topology B (busiest session over the full run)",
						"sessions", rows)
				})
			},
		},
		{
			Name:  "8",
			Title: "Figure 8: inter-session fairness in Topology B",
			Specs: func(cfg SweepConfig) []Spec {
				c := Fig8Config{Seed: cfg.Seed, Duration: quickDur(cfg)}
				if cfg.Quick {
					c.Sessions = []int{2, 4}
				}
				return Fig8Specs(c)
			},
			Render: func(results []Result) (string, error) {
				return table(results, FairnessTable)
			},
		},
		{
			Name:  "9",
			Title: "Figure 9: layer subscription and loss history",
			Specs: func(cfg SweepConfig) []Spec {
				return Fig9Specs(Fig9Config{Seed: cfg.Seed, Duration: quickDur(cfg)})
			},
			Render: func(results []Result) (string, error) {
				if len(results) != 1 {
					return "", fmt.Errorf("figure 9: want 1 result, got %d", len(results))
				}
				if results[0].Failed() {
					return "", fmt.Errorf("run %s failed: %s", results[0].Name, results[0].Err)
				}
				res, ok := results[0].Rows.(*Fig9Result)
				if !ok {
					return "", fmt.Errorf("run %s: rows are %T, want *Fig9Result", results[0].Name, results[0].Rows)
				}
				var b strings.Builder
				b.WriteString("Figure 9 (full run, subscription levels):\n")
				b.WriteString(res.Plot(100, 9))
				b.WriteString("\n")
				b.WriteString(res.WindowTable().String())
				b.WriteString("\n")
				b.WriteString(res.Summary())
				b.WriteString("\n")
				return b.String(), nil
			},
		},
		{
			Name:  "10",
			Title: "Figure 10: impact of stale information",
			Specs: func(cfg SweepConfig) []Spec {
				c := Fig10Config{Seed: cfg.Seed, Duration: quickDur(cfg)}
				if cfg.Quick {
					c.PerSet = []int{1, 2}
					c.Staleness = []sim.Time{0, 4 * sim.Second, 8 * sim.Second}
				}
				return Fig10Specs(c)
			},
			Render: func(results []Result) (string, error) {
				return table(results, StaleTable)
			},
		},
		{
			Name:  "fig_failure",
			Title: "Bottleneck link failure and repair in Topology B",
			Specs: func(cfg SweepConfig) []Spec {
				c := FailureConfig{Seed: cfg.Seed, Duration: quickDur(cfg)}
				if cfg.Quick {
					// Shorter outage: a quick run must still leave the
					// sessions room to climb back before it ends.
					c.Sessions = 2
					c.Outage = 30 * sim.Second
				}
				return FailureSpecs(c)
			},
			Render: func(results []Result) (string, error) {
				if len(results) != 1 {
					return "", fmt.Errorf("fig_failure: want 1 result, got %d", len(results))
				}
				if results[0].Failed() {
					return "", fmt.Errorf("run %s failed: %s", results[0].Name, results[0].Err)
				}
				res, ok := results[0].Rows.(*FailureResult)
				if !ok {
					return "", fmt.Errorf("run %s: rows are %T, want *FailureResult", results[0].Name, results[0].Rows)
				}
				var b strings.Builder
				b.WriteString("Failure/repair (subscription levels through the outage):\n")
				b.WriteString(res.Plot(100, 9))
				b.WriteString("\n")
				b.WriteString(res.Table().String())
				b.WriteString("\n")
				b.WriteString(res.Summary())
				b.WriteString("\n")
				return b.String(), nil
			},
		},
		{
			Name:  "fig_scale",
			Title: "Scaling curve: receivers vs events/s, memory, pass latency",
			Specs: func(cfg SweepConfig) []Spec {
				return ScaleSpecs(ScaleConfig{Seed: cfg.Seed, Quick: cfg.Quick, Topo: cfg.Topo, Shards: cfg.Shards, Aggregate: cfg.Aggregate, Federate: cfg.Federate})
			},
			Render: ScaleTable,
		},
		{
			Name:  "fig_federation",
			Title: "Hierarchical control plane on a tiered topology: flat vs federated",
			Specs: func(cfg SweepConfig) []Spec {
				return FederationSpecs(FederationConfig{Seed: cfg.Seed, Duration: quickDur(cfg)})
			},
			Render: func(results []Result) (string, error) {
				return table(results, FederationTable)
			},
		},
		{
			Name:  "fig_churn",
			Title: "Membership churn: Poisson join/leave vs the decision interval",
			Specs: func(cfg SweepConfig) []Spec {
				c := ChurnStudyConfig{Seed: cfg.Seed, Duration: quickDur(cfg), Quick: cfg.Quick, Shards: cfg.Shards}
				if cfg.Churn > 0 {
					c.Periods = []sim.Time{sim.Time(cfg.Churn * float64(sim.Second))}
				}
				return ChurnStudySpecs(c)
			},
			Render: func(results []Result) (string, error) {
				return table(results, ChurnStudyTable)
			},
		},
		{
			Name:  "baseline",
			Title: "TopoSense vs receiver-driven (RLM-style) baseline",
			Specs: func(cfg SweepConfig) []Spec {
				return BaselineSpecs(BaselineConfig{Seed: cfg.Seed, Duration: quickDur(cfg)})
			},
			Render: func(results []Result) (string, error) {
				return table(results, BaselineTable)
			},
		},
		{
			Name:  "ablation",
			Title: "Each mechanism disabled in isolation",
			Specs: func(cfg SweepConfig) []Spec {
				return AblationSpecs(AblationConfig{Seed: cfg.Seed, Duration: quickDur(cfg)})
			},
			Render: func(results []Result) (string, error) {
				return table(results, AblationTable)
			},
		},
		{
			Name:  "convergence",
			Title: "Heterogeneous convergence and intra-session fairness",
			Specs: func(cfg SweepConfig) []Spec {
				var specs []Spec
				for _, tr := range convergenceTraffics {
					specs = append(specs, ConvergenceSpecs(ConvergenceConfig{
						Seed: cfg.Seed, Duration: quickDur(cfg), Traffic: tr,
					})...)
				}
				return specs
			},
			Render: func(results []Result) (string, error) {
				var b strings.Builder
				for _, tr := range convergenceTraffics {
					var section []Result
					for _, r := range results {
						if r.Name == "convergence/"+tr.Name {
							section = append(section, r)
						}
					}
					rows, err := GatherRows[ConvergenceRow](section)
					if err != nil {
						return "", err
					}
					b.WriteString(tr.Name + ":\n")
					b.WriteString(ConvergenceTable(rows).String())
					b.WriteString("\n")
				}
				return b.String(), nil
			},
		},
		{
			Name:  "churn",
			Title: "Receiver churn on Topology A's fast set",
			Specs: func(cfg SweepConfig) []Spec {
				return ChurnSpecs(ChurnConfig{Seed: cfg.Seed, Duration: quickDur(cfg)})
			},
			Render: func(results []Result) (string, error) {
				return table(results, ChurnTable)
			},
		},
		{
			Name:  "domains",
			Title: "Per-domain controller agents vs one global agent",
			Specs: func(cfg SweepConfig) []Spec {
				c := DomainsConfig{Seed: cfg.Seed, Duration: quickDur(cfg)}
				if cfg.Quick {
					c.Seeds = 1
				}
				return DomainsSpecs(c)
			},
			Render: func(results []Result) (string, error) {
				rows, err := GatherRows[DomainRow](results)
				if err != nil {
					return "", err
				}
				return DomainsTable(ReduceDomains(rows)).String() + "\n", nil
			},
		},
		{
			Name:  "queues",
			Title: "Drop-tail vs router-based priority dropping",
			Specs: func(cfg SweepConfig) []Spec {
				return QueuePolicySpecs(QueueConfig{Seed: cfg.Seed, Duration: quickDur(cfg)})
			},
			Render: func(results []Result) (string, error) {
				return table(results, QueueTable)
			},
		},
		{
			Name:  "lastmile",
			Title: "The same bottleneck at each tier of a tiered tree",
			Specs: func(cfg SweepConfig) []Spec {
				return LastMileSpecs(LastMileConfig{Seed: cfg.Seed, Duration: quickDur(cfg)})
			},
			Render: func(results []Result) (string, error) {
				return table(results, LastMileTable)
			},
		},
		{
			Name:  "variance",
			Title: "Across-seed variance of the Figure 8 headline",
			Specs: func(cfg SweepConfig) []Spec {
				c := VarianceConfig{Seed: cfg.Seed, Duration: quickDur(cfg)}
				if cfg.Quick {
					c.Seeds = 3
				}
				return VarianceSpecs(c)
			},
			Render: func(results []Result) (string, error) {
				rows, err := GatherRows[VarianceSample](results)
				if err != nil {
					return "", err
				}
				return VarianceTable(ReduceVariance(rows)).String() + "\n", nil
			},
		},
		{
			Name:  "extensions",
			Title: "Section V sweeps: granularity, leave latency, interval",
			Specs: func(cfg SweepConfig) []Spec {
				c := ExtensionConfig{Seed: cfg.Seed, Duration: quickDur(cfg)}
				if cfg.Quick {
					c.Seeds = 1
				}
				var specs []Spec
				specs = append(specs, GranularitySpecs(c)...)
				specs = append(specs, LeaveLatencySpecs(c)...)
				specs = append(specs, IntervalSizeSpecs(c)...)
				return specs
			},
			Render: func(results []Result) (string, error) {
				sections := []struct{ prefix, title, param string }{
					{"extensions/granularity/", "Extension: layer granularity (Section V)", "scheme"},
					{"extensions/leave/", "Extension: group-leave latency (Section V, VBR)", "leave latency"},
					{"extensions/interval/", "Extension: decision interval (Section V)", "interval"},
				}
				var b strings.Builder
				for _, sec := range sections {
					var section []Result
					for _, r := range results {
						if strings.HasPrefix(r.Name, sec.prefix) {
							section = append(section, r)
						}
					}
					perSeed, err := GatherRows[ExtensionRow](section)
					if err != nil {
						return "", err
					}
					b.WriteString(ExtensionTable(sec.title, sec.param, reduceExtension(perSeed)).String())
					b.WriteString("\n")
				}
				return b.String(), nil
			},
		},
	}
}

// convergenceTraffics are the traffic models the convergence report
// sections cover, in print order.
var convergenceTraffics = []Traffic{CBR, VBR3}

// Lookup finds a registry entry by name.
func Lookup(name string) (Experiment, bool) {
	for _, ex := range Registry() {
		if ex.Name == name {
			return ex, true
		}
	}
	return Experiment{}, false
}

// Names lists the registry's experiment names in report order.
func Names() []string {
	var names []string
	for _, ex := range Registry() {
		names = append(names, ex.Name)
	}
	return names
}
