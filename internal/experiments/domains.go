package experiments

import (
	"fmt"
	"math/rand"

	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/metrics"
	"toposense/internal/netsim"
	"toposense/internal/receiver"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
)

// This file reproduces the paper's Figure 3 architecture: "multiple
// controller agents, each concerned with one particular administrative
// domain. Each domain and controller agent is unaware of the other
// controller agents' existence." The claim behind it is subtree
// independence — "disjoint subtrees on the multicast tree do not affect
// each other as long as their common ancestors have a high capacity" — so
// per-domain local control should match a single omniscient controller.

// DomainRow reports one control architecture's outcome.
type DomainRow struct {
	Variant    string // "global" or "per-domain"
	Domain     string // which domain the row describes
	Deviation  float64
	FinalOK    bool // all receivers within 1 layer of optimal at the end
	MaxChanges int
}

// DomainsConfig parameterizes the multi-domain experiment.
type DomainsConfig struct {
	Seed         int64
	Seeds        int      // runs averaged per variant; 0 = 3
	Duration     sim.Time // 0 = 600 s
	ReceiversPer int      // receivers per domain; 0 = 3
	Traffic      Traffic  // zero = CBR
}

func (c *DomainsConfig) normalize() {
	d := ShortDefaults()
	c.Duration = d.Dur(c.Duration)
	c.Traffic = d.Tr(c.Traffic)
	c.Seeds = d.SeedCount(c.Seeds)
	if c.ReceiversPer == 0 {
		c.ReceiversPer = 3
	}
}

// domainsWorld is the two-domain topology:
//
//	src ── bb ── gw1 ──(100 Kbps)── d1r ── domain-1 receivers
//	        └─── gw2 ──(500 Kbps)── d2r ── domain-2 receivers
type domainsWorld struct {
	engine      sim.Runner
	net         *netsim.Network
	domain      *mcast.Domain
	src         *netsim.Node
	gw          [2]*netsim.Node
	rxNodes     [2][]*netsim.Node
	scope       [2]map[netsim.NodeID]bool
	receivers   [2][]*receiver.Receiver
	traces      [2][]*metrics.Trace
	optimal     [2]int
	controllers []*controller.Controller
}

func buildDomainsWorld(cfg DomainsConfig) *domainsWorld {
	e := sim.NewEngine(cfg.Seed)
	n := netsim.New(e)
	w := &domainsWorld{engine: e, net: n}
	fat := netsim.LinkConfig{Bandwidth: 100e6, Delay: 200 * sim.Millisecond}
	w.src = n.AddNode("src")
	bb := n.AddNode("backbone")
	n.Connect(w.src, bb, fat)
	bandwidth := [2]float64{100e3, 500e3}
	for d := 0; d < 2; d++ {
		gw := n.AddNode(fmt.Sprintf("gw%d", d+1))
		n.Connect(bb, gw, fat)
		agg := n.AddNode(fmt.Sprintf("d%dr", d+1))
		n.Connect(gw, agg, netsim.LinkConfig{Bandwidth: bandwidth[d], Delay: 200 * sim.Millisecond})
		w.gw[d] = gw
		w.scope[d] = map[netsim.NodeID]bool{gw.ID: true, agg.ID: true}
		for i := 0; i < cfg.ReceiversPer; i++ {
			rx := n.AddNode(fmt.Sprintf("d%d-rx%d", d+1, i))
			n.Connect(agg, rx, fat)
			w.rxNodes[d] = append(w.rxNodes[d], rx)
			w.scope[d][rx.ID] = true
		}
		w.optimal[d] = source.LevelForBandwidth(source.Rates(6), bandwidth[d])
	}
	w.domain = mcast.NewDomain(n)
	return w
}

// wire attaches sources, controllers (global or per-domain) and receivers.
func (w *domainsWorld) wire(cfg DomainsConfig, perDomain bool) {
	src := source.New(w.net, w.domain, w.src, source.Config{Session: 0, PeakToMean: cfg.Traffic.PeakToMean})
	src.Start()

	newController := func(at *netsim.Node, scope map[netsim.NodeID]bool, seedOff int64) *controller.Controller {
		tool := topodisc.NewTool(w.net, w.domain, []int{0})
		tool.Scope = scope
		alg := core.New(core.NewConfig(source.Rates(6)), rand.New(rand.NewSource(cfg.Seed+seedOff)))
		ctrl := controller.New(w.net, w.domain, at, tool, alg)
		ctrl.Start()
		return ctrl
	}

	var ctrlFor [2]*netsim.Node
	if perDomain {
		// One agent per domain, stationed at the domain gateway, seeing
		// only its own subtree — unaware of the other domain.
		for d := 0; d < 2; d++ {
			w.controllers = append(w.controllers, newController(w.gw[d], w.scope[d], int64(d+1)))
			ctrlFor[d] = w.gw[d]
		}
	} else {
		// A single global controller at the source, seeing everything.
		w.controllers = append(w.controllers, newController(w.src, nil, 1))
		ctrlFor[0], ctrlFor[1] = w.src, w.src
	}

	for d := 0; d < 2; d++ {
		for _, node := range w.rxNodes[d] {
			rx := receiver.New(w.net, w.domain, node, receiver.Config{
				Session: 0, MaxLayers: 6, InitialLevel: 1, Controller: ctrlFor[d].ID,
			})
			tr := metrics.NewTrace(0, 0)
			rx.OnChange = func(c receiver.Change) { tr.Set(c.At, c.To) }
			rx.Start()
			w.receivers[d] = append(w.receivers[d], rx)
			w.traces[d] = append(w.traces[d], tr)
		}
	}
}

// DomainsSpecs enumerates both control architectures as one run per
// (variant, seed); each run reports its own per-domain DomainRows with that
// seed's deviation. ReduceDomains averages them back into the table the
// report prints.
func DomainsSpecs(cfg DomainsConfig) []Spec {
	cfg.normalize()
	var specs []Spec
	for _, perDomain := range []bool{false, true} {
		perDomain := perDomain
		variant := "global"
		if perDomain {
			variant = "per-domain"
		}
		for s := 0; s < cfg.Seeds; s++ {
			runCfg := cfg
			runCfg.Seed = cfg.Seed + int64(s)
			specs = append(specs, NewSpec("domains",
				fmt.Sprintf("domains/%s/seed=%d", variant, runCfg.Seed),
				runCfg.Seed, cfg.Duration,
				func(m *Meter) (any, error) {
					w := buildDomainsWorld(runCfg)
					w.wire(runCfg, perDomain)
					m.Observe(w.engine, w.net)
					w.engine.RunUntil(cfg.Duration)
					var rows []DomainRow
					for d := 0; d < 2; d++ {
						optima := make([]int, len(w.traces[d]))
						for i := range optima {
							optima[i] = w.optimal[d]
						}
						ok := true
						for _, rx := range w.receivers[d] {
							if diff := rx.Level() - w.optimal[d]; diff < -1 || diff > 1 {
								ok = false
							}
						}
						rows = append(rows, DomainRow{
							Variant:    variant,
							Domain:     fmt.Sprintf("domain %d (opt %d)", d+1, w.optimal[d]),
							Deviation:  metrics.MeanRelativeDeviation(w.traces[d], optima, 0, cfg.Duration),
							FinalOK:    ok,
							MaxChanges: metrics.MaxChanges(w.traces[d], 0, cfg.Duration),
						})
					}
					return rows, nil
				}))
		}
	}
	return specs
}

// ReduceDomains merges per-seed DomainRows into one row per
// (variant, domain): deviations averaged, change counts maxed, and FinalOK
// true only when every seed finished within one layer of optimal.
func ReduceDomains(perSeed []DomainRow) []DomainRow {
	type key struct{ variant, domain string }
	var order []key
	acc := map[key]*DomainRow{}
	count := map[key]int{}
	for _, r := range perSeed {
		k := key{r.Variant, r.Domain}
		a, seen := acc[k]
		if !seen {
			order = append(order, k)
			cp := r
			acc[k] = &cp
			count[k] = 1
			continue
		}
		a.Deviation += r.Deviation
		a.FinalOK = a.FinalOK && r.FinalOK
		if r.MaxChanges > a.MaxChanges {
			a.MaxChanges = r.MaxChanges
		}
		count[k]++
	}
	var rows []DomainRow
	for _, k := range order {
		a := acc[k]
		a.Deviation /= float64(count[k])
		rows = append(rows, *a)
	}
	return rows
}

// RunDomains runs both control architectures on the identical two-domain
// topology and reports per-domain quality. The paper's scalability claim
// holds if per-domain local controllers match the global one.
func RunDomains(cfg DomainsConfig) []DomainRow {
	return ReduceDomains(mustGather[DomainRow](ExecuteAll(DomainsSpecs(cfg))))
}

// DomainsTable renders the comparison.
func DomainsTable(rows []DomainRow) *Table {
	t := &Table{
		Title:  "Multi-domain control (paper Figure 3): independent per-domain agents vs one global agent",
		Header: []string{"variant", "domain", "rel deviation", "final within 1", "max changes"},
	}
	for _, r := range rows {
		t.AddRow(r.Variant, r.Domain, fmt.Sprintf("%.3f", r.Deviation), fmt.Sprintf("%v", r.FinalOK), fmt.Sprintf("%d", r.MaxChanges))
	}
	return t
}
