package experiments

import (
	"strings"
	"testing"

	"toposense/internal/sim"
)

func TestScalePointsResolution(t *testing.T) {
	full := ScaleConfig{Topo: "tree"}
	full.normalize()
	if got := scalePoints(full); len(got) != 4 {
		t.Errorf("tree ladder = %d points, want 4", len(got))
	}
	quick := ScaleConfig{Quick: true}
	quick.normalize()
	if got := scalePoints(quick); len(got) != 2 {
		t.Errorf("quick ladder = %d points, want 2", len(got))
	}
	single := ScaleConfig{Topo: "star,arms=3,rxarm=2"}
	single.normalize()
	if got := scalePoints(single); len(got) != 1 || got[0] != "star,arms=3,rxarm=2" {
		t.Errorf("explicit spec = %v, want itself as the single point", got)
	}
}

// TestScaleSmoke runs one tiny point end to end and sanity-checks every
// column of the row.
func TestScaleSmoke(t *testing.T) {
	cfg := ScaleConfig{Seed: 1, Duration: 20 * sim.Second, Topo: "star,arms=3,rxarm=2,delay=0.05"}
	specs := ScaleSpecs(cfg)
	if len(specs) != 1 {
		t.Fatalf("specs = %d, want 1", len(specs))
	}
	results := ExecuteAll(specs)
	rows := mustGather[ScaleRow](results)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Receivers != 6 || r.Nodes != 11 {
		t.Errorf("topology sized %d rx / %d nodes, want 6/11", r.Receivers, r.Nodes)
	}
	if r.Groups == 0 || r.TableEntries == 0 || r.TableBytes == 0 {
		t.Errorf("empty state accounting: %+v", r)
	}
	if r.Passes == 0 || r.PassMaxMs < r.PassMeanMs {
		t.Errorf("pass timing implausible: %+v", r)
	}
	if r.RxBytes <= 0 || r.BytesPerReceiver <= 0 {
		t.Errorf("no delivered bytes: %+v", r)
	}
	if r.MeanDev < 0 || r.MeanDev > 1 {
		t.Errorf("MeanDev = %v out of range", r.MeanDev)
	}
	out, err := ScaleTable(results)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "star,arms=3") {
		t.Errorf("table missing the point:\n%s", out)
	}
}
