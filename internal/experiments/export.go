package experiments

import (
	"encoding/json"
	"io"
	"os"
)

// Export is the schema of the machine-readable result file the -json
// flags write (conventionally BENCH_*.json): enough run metadata to
// compare perf trajectories across commits, plus every per-run Result.
// The schema is documented for consumers in EXPERIMENTS.md.
type Export struct {
	// Tool names the producer ("topobench" or "toposim").
	Tool string `json:"tool"`
	// GeneratedAt is the UTC RFC 3339 creation time.
	GeneratedAt string `json:"generated_at"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) on the producing machine.
	GoMaxProcs int `json:"gomaxprocs"`
	// Parallelism is the -parallel setting the sweep ran with (0 =
	// GOMAXPROCS).
	Parallelism int   `json:"parallelism"`
	Seed        int64 `json:"seed"`
	Quick       bool  `json:"quick"`
	// WallSeconds is the whole sweep's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// TotalEvents sums Events over all Results.
	TotalEvents uint64 `json:"total_events"`
	// EventsPerSecond is TotalEvents / WallSeconds: the sweep's aggregate
	// event throughput across all workers (per-run throughput lives in each
	// Result).
	EventsPerSecond float64 `json:"events_per_second"`
	// AllocsPerEvent is the number of heap allocations per simulator event
	// across the sweep, measured from runtime.MemStats.Mallocs around the
	// runner. It covers the whole process — engine, packet plane, metrics
	// and report rendering — so it is an upper bound on hot-path allocation
	// and the headline number the pooling work drives down.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Results holds one entry per executed Spec, in sweep order.
	Results []Result `json:"results"`
}

// FillAggregates computes TotalEvents, EventsPerSecond and AllocsPerEvent
// from Results, WallSeconds and the process-wide heap allocation count
// (runtime.MemStats.Mallocs delta) observed around the sweep.
func (ex *Export) FillAggregates(mallocs uint64) {
	ex.TotalEvents = 0
	for _, r := range ex.Results {
		ex.TotalEvents += r.Events
	}
	if ex.WallSeconds > 0 {
		ex.EventsPerSecond = float64(ex.TotalEvents) / ex.WallSeconds
	}
	if ex.TotalEvents > 0 {
		ex.AllocsPerEvent = float64(mallocs) / float64(ex.TotalEvents)
	}
}

// WriteJSON writes the export to w as indented JSON.
func WriteJSON(w io.Writer, ex Export) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ex)
}

// WriteJSONFile writes the export to path, creating or truncating it.
func WriteJSONFile(path string, ex Export) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, ex); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
