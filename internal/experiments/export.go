package experiments

import (
	"encoding/json"
	"io"
	"os"
)

// Export is the schema of the machine-readable result file the -json
// flags write (conventionally BENCH_*.json): enough run metadata to
// compare perf trajectories across commits, plus every per-run Result.
// The schema is documented for consumers in EXPERIMENTS.md.
type Export struct {
	// Tool names the producer ("topobench" or "toposim").
	Tool string `json:"tool"`
	// GeneratedAt is the UTC RFC 3339 creation time.
	GeneratedAt string `json:"generated_at"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) on the producing machine.
	GoMaxProcs int `json:"gomaxprocs"`
	// Parallelism is the -parallel setting the sweep ran with (0 =
	// GOMAXPROCS).
	Parallelism int   `json:"parallelism"`
	Seed        int64 `json:"seed"`
	Quick       bool  `json:"quick"`
	// WallSeconds is the whole sweep's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// Results holds one entry per executed Spec, in sweep order.
	Results []Result `json:"results"`
}

// WriteJSON writes the export to w as indented JSON.
func WriteJSON(w io.Writer, ex Export) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ex)
}

// WriteJSONFile writes the export to path, creating or truncating it.
func WriteJSONFile(path string, ex Export) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, ex); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
