package rlm

import (
	"testing"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/sim"
	"toposense/internal/source"
)

// rig: src --fat-- mid --bottleneck-- rx nodes (n receivers share the
// bottleneck subtree).
type rig struct {
	e   *sim.Engine
	n   *netsim.Network
	d   *mcast.Domain
	src *source.Source
	rxs []*Receiver
}

func newRig(t *testing.T, bottleneck float64, receivers int, seed int64) *rig {
	t.Helper()
	e := sim.NewEngine(seed)
	n := netsim.New(e)
	srcNode := n.AddNode("src")
	mid := n.AddNode("mid")
	gw := n.AddNode("gw")
	fat := netsim.LinkConfig{Bandwidth: 100e6, Delay: 200 * sim.Millisecond}
	n.Connect(srcNode, mid, fat)
	n.Connect(mid, gw, netsim.LinkConfig{Bandwidth: bottleneck, Delay: 200 * sim.Millisecond})
	d := mcast.NewDomain(n)
	src := source.New(n, d, srcNode, source.Config{Session: 0})
	r := &rig{e: e, n: n, d: d, src: src}
	for i := 0; i < receivers; i++ {
		rxNode := n.AddNode("rx")
		n.Connect(gw, rxNode, fat)
		r.rxs = append(r.rxs, New(n, d, rxNode, Config{Session: 0, MaxLayers: 6}))
	}
	return r
}

func (r *rig) start() {
	r.src.Start()
	for _, rx := range r.rxs {
		rx.Start()
	}
}

func TestRLMStartsAtBaseLayer(t *testing.T) {
	r := newRig(t, 10e6, 1, 1)
	r.start()
	r.e.RunUntil(sim.Second)
	if r.rxs[0].Level() != 1 {
		t.Fatalf("level = %d, want 1", r.rxs[0].Level())
	}
}

func TestRLMClimbsWhenClean(t *testing.T) {
	r := newRig(t, 10e6, 1, 2)
	r.start()
	r.e.RunUntil(300 * sim.Second)
	if got := r.rxs[0].Level(); got < 5 {
		t.Errorf("level after 300s on a clean path = %d, want >= 5", got)
	}
	if r.rxs[0].Failures != 0 {
		t.Errorf("failures on a clean path: %d", r.rxs[0].Failures)
	}
}

func TestRLMConvergesNearBottleneck(t *testing.T) {
	r := newRig(t, 500e3, 1, 3)
	r.start()
	r.e.RunUntil(600 * sim.Second)
	got := r.rxs[0].Level()
	if got < 3 || got > 5 {
		t.Errorf("level = %d, want ~4 at a 500 Kbps bottleneck", got)
	}
	if r.rxs[0].Failures == 0 {
		t.Error("no failed experiments despite a bottleneck")
	}
}

func TestRLMBacksOffAfterFailures(t *testing.T) {
	r := newRig(t, 100e3, 1, 4)
	r.start()
	r.e.RunUntil(600 * sim.Second)
	rx := r.rxs[0]
	if got := rx.Level(); got < 1 || got > 3 {
		t.Errorf("level = %d, want ~2 at 100 Kbps", got)
	}
	// Join timer for the failing layer must have grown past the minimum.
	if rx.joinTimers[2] <= DefaultJoinTimerMin {
		t.Errorf("layer-3 join timer = %v, want backed off", rx.joinTimers[2])
	}
}

func TestRLMChangesRecorded(t *testing.T) {
	r := newRig(t, 500e3, 1, 5)
	var observed int
	r.rxs[0].OnChange = func(Change) { observed++ }
	r.start()
	r.e.RunUntil(120 * sim.Second)
	if len(r.rxs[0].Changes()) == 0 || observed == 0 {
		t.Error("no changes recorded")
	}
	if r.rxs[0].Changes()[0].To != 1 {
		t.Error("first change should join the base layer")
	}
}

func TestRLMUncoordinatedReceiversInterfere(t *testing.T) {
	// Several RLM receivers behind one bottleneck: failed experiments by
	// one inflict losses on all. Total experiments grow with the receiver
	// count — the scaling problem TopoSense's coordination removes.
	r := newRig(t, 500e3, 4, 6)
	r.start()
	r.e.RunUntil(600 * sim.Second)
	var fails int64
	for _, rx := range r.rxs {
		fails += rx.Failures
	}
	if fails == 0 {
		t.Error("no failed experiments among 4 competing receivers")
	}
}

func TestRLMStop(t *testing.T) {
	r := newRig(t, 10e6, 1, 7)
	r.start()
	r.e.RunUntil(10 * sim.Second)
	r.rxs[0].Stop()
	r.e.RunUntil(20 * sim.Second)
	if r.rxs[0].Level() != 0 {
		t.Errorf("level after Stop = %d", r.rxs[0].Level())
	}
}

func TestRLMInvalidConfigPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	node := n.AddNode("x")
	d := mcast.NewDomain(n)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(n, d, node, Config{MaxLayers: 0})
}
