// Package rlm implements a receiver-driven layered multicast baseline in
// the spirit of McCanne, Jacobson and Vetterli's RLM — the class of
// "receiver-oriented approaches which only use end-to-end information" the
// paper contrasts TopoSense against. Each receiver independently runs
// join-experiments: when a per-layer join timer expires it subscribes to
// the next layer; if loss above a threshold follows within the detection
// window, the layer is dropped and that layer's join timer backs off
// multiplicatively. There is no controller, no topology knowledge and no
// coordination between receivers, so concurrent join-experiments interfere
// — exactly the failure mode topology awareness removes.
package rlm

import (
	"fmt"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Defaults chosen per the published RLM design (scaled to this simulator's
// decision cadence).
const (
	DefaultDetection     = 2 * sim.Second
	DefaultLossThreshold = 0.10
	DefaultJoinTimerMin  = 5 * sim.Second
	DefaultJoinTimerMax  = 600 * sim.Second
	DefaultBackoff       = 2.0
	// DefaultRelax shrinks a layer's join timer after a sustained clean
	// period, letting the receiver retry eventually.
	DefaultRelax = 0.98
)

// Config parameterizes one RLM receiver.
type Config struct {
	Session       int
	MaxLayers     int
	Detection     sim.Time // loss measurement window; 0 = DefaultDetection
	LossThreshold float64  // 0 = DefaultLossThreshold
	JoinTimerMin  sim.Time // 0 = DefaultJoinTimerMin
	JoinTimerMax  sim.Time // 0 = DefaultJoinTimerMax
	Backoff       float64  // multiplicative join-timer backoff; 0 = DefaultBackoff
}

// Change mirrors receiver.Change for stability accounting.
type Change struct {
	At       sim.Time
	From, To int
}

// Receiver is an autonomous RLM receiver.
type Receiver struct {
	cfg    Config
	net    *netsim.Network
	domain *mcast.Domain
	node   *netsim.Node

	level         int
	joinTimers    []sim.Time // per layer index (0 = layer 1): current timer value
	nextTry       sim.Time   // when the next join-experiment may start
	probing       bool       // inside a join-experiment's detection window
	probeLayer    int
	probeDeadline sim.Time // the experiment runs until this time
	deafUntil     sim.Time // post-drop deaf period: ignore drain losses

	// per-layer sequence accounting for the current window
	lastSeq  []int64
	haveSeq  []bool
	received int64
	expected int64

	changes []Change
	ticker  *sim.Ticker

	// Stats.
	Experiments int64
	Failures    int64
	// OnChange observes subscription changes.
	OnChange func(Change)
}

// New creates an RLM receiver at node. Call Start to join the base layer.
func New(net *netsim.Network, domain *mcast.Domain, node *netsim.Node, cfg Config) *Receiver {
	if cfg.MaxLayers <= 0 {
		panic("rlm: MaxLayers must be positive")
	}
	if cfg.Detection == 0 {
		cfg.Detection = DefaultDetection
	}
	if cfg.LossThreshold == 0 {
		cfg.LossThreshold = DefaultLossThreshold
	}
	if cfg.JoinTimerMin == 0 {
		cfg.JoinTimerMin = DefaultJoinTimerMin
	}
	if cfg.JoinTimerMax == 0 {
		cfg.JoinTimerMax = DefaultJoinTimerMax
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = DefaultBackoff
	}
	r := &Receiver{
		cfg:        cfg,
		net:        net,
		domain:     domain,
		node:       node,
		joinTimers: make([]sim.Time, cfg.MaxLayers),
		lastSeq:    make([]int64, cfg.MaxLayers),
		haveSeq:    make([]bool, cfg.MaxLayers),
	}
	for i := range r.joinTimers {
		r.joinTimers[i] = cfg.JoinTimerMin
	}
	return r
}

// Node returns the attachment node.
func (r *Receiver) Node() *netsim.Node { return r.node }

// sched returns the scheduler owning this receiver's node, so timers and
// clock reads stay in the node's shard on a partitioned network. The Rand
// draw in Start happens before the run begins, which is the one context a
// shard scheduler may touch the run-wide RNG.
func (r *Receiver) sched() sim.Scheduler { return r.net.SchedulerFor(r.node.ID) }

// Level returns the current subscription level.
func (r *Receiver) Level() int { return r.level }

// Changes returns the subscription-change history.
func (r *Receiver) Changes() []Change { return r.changes }

// Start joins the base layer and begins the decision loop.
func (r *Receiver) Start() {
	if r.ticker != nil {
		return
	}
	r.setLevel(1)
	e := r.sched()
	// Small deterministic desynchronization so a fleet of RLM receivers
	// does not run experiments in lockstep.
	r.nextTry = e.Now() + r.joinTimers[0] + sim.Time(e.Rand().Int63n(int64(sim.Second)))
	r.ticker = sim.Every(e, r.cfg.Detection, r.tick)
}

// Stop leaves all layers and halts the loop.
func (r *Receiver) Stop() {
	if r.ticker != nil {
		r.ticker.Stop()
		r.ticker = nil
	}
	r.setLevel(0)
}

// RecvMulticast implements mcast.Member.
func (r *Receiver) RecvMulticast(p *netsim.Packet) {
	if p.Session != r.cfg.Session || p.Layer < 1 || p.Layer > r.cfg.MaxLayers || p.Layer > r.level {
		return
	}
	idx := p.Layer - 1
	r.received++
	if !r.haveSeq[idx] {
		r.haveSeq[idx] = true
		r.lastSeq[idx] = p.Seq
		r.expected++
		return
	}
	if p.Seq > r.lastSeq[idx] {
		r.expected += p.Seq - r.lastSeq[idx]
		r.lastSeq[idx] = p.Seq
	}
}

// tick closes a detection window: evaluate loss, end or start experiments.
func (r *Receiver) tick() {
	e := r.sched()
	loss := 0.0
	if r.expected > 0 {
		loss = float64(r.expected-r.received) / float64(r.expected)
		if loss < 0 {
			loss = 0
		}
	}
	r.received, r.expected = 0, 0
	for i := range r.haveSeq {
		r.haveSeq[i] = false
	}

	// Deaf period: right after a drop, the bottleneck queue is still
	// draining and the pruned layer keeps flowing for the leave latency;
	// acting on those losses would cascade drops below the sustainable
	// level (a deaf period is part of the original RLM design).
	if e.Now() < r.deafUntil {
		return
	}

	if r.probing {
		// The experiment spans two detection windows: join latency plus
		// queue-fill delay mean the first losses can lag the join by more
		// than one window.
		idx := r.probeLayer - 1
		if loss > r.cfg.LossThreshold {
			// Failed experiment: drop the layer, back off its timer.
			r.probing = false
			r.Failures++
			r.setLevel(r.probeLayer - 1)
			r.joinTimers[idx] = sim.Time(float64(r.joinTimers[idx]) * r.cfg.Backoff)
			if r.joinTimers[idx] > r.cfg.JoinTimerMax {
				r.joinTimers[idx] = r.cfg.JoinTimerMax
			}
			r.deafUntil = e.Now() + 2*r.cfg.Detection
			r.nextTry = r.deafUntil + r.joinTimers[minInt(r.level, r.cfg.MaxLayers-1)]
		} else if e.Now() >= r.probeDeadline {
			r.probing = false
			r.nextTry = e.Now() + r.joinTimers[minInt(r.level, r.cfg.MaxLayers-1)]
		}
		return
	}

	if loss > r.cfg.LossThreshold && r.level > 1 {
		// Congestion outside an experiment (someone else's, or shared):
		// shed a layer and hold off.
		r.setLevel(r.level - 1)
		r.deafUntil = e.Now() + 2*r.cfg.Detection
		r.nextTry = r.deafUntil + r.joinTimers[minInt(r.level, r.cfg.MaxLayers-1)]
		return
	}

	if loss <= r.cfg.LossThreshold/2 && r.level < r.cfg.MaxLayers {
		// Clean period: relax the next layer's timer slightly.
		idx := r.level // next layer's index
		r.joinTimers[idx] = sim.Time(float64(r.joinTimers[idx]) * DefaultRelax)
		if r.joinTimers[idx] < r.cfg.JoinTimerMin {
			r.joinTimers[idx] = r.cfg.JoinTimerMin
		}
	}

	if r.level < r.cfg.MaxLayers && e.Now() >= r.nextTry {
		// Start a join-experiment on the next layer.
		r.Experiments++
		r.probing = true
		r.probeLayer = r.level + 1
		// Three windows: graft latency + bottleneck queue-fill delay can
		// put the first visible losses past the second window.
		r.probeDeadline = e.Now() + 3*r.cfg.Detection
		r.setLevel(r.probeLayer)
	}
}

func (r *Receiver) setLevel(lvl int) {
	if lvl == r.level {
		return
	}
	from := r.level
	for l := r.level + 1; l <= lvl; l++ {
		g := r.domain.GroupOf(r.cfg.Session, l)
		if g == netsim.NoGroup {
			panic(fmt.Sprintf("rlm: no group for session %d layer %d", r.cfg.Session, l))
		}
		r.domain.Join(r.node.ID, g, r)
		r.haveSeq[l-1] = false
	}
	for l := r.level; l > lvl; l-- {
		r.domain.Leave(r.node.ID, r.domain.GroupOf(r.cfg.Session, l), r)
	}
	r.level = lvl
	ch := Change{At: r.sched().Now(), From: from, To: lvl}
	r.changes = append(r.changes, ch)
	if r.OnChange != nil {
		r.OnChange(ch)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
