// Package controller implements the per-domain controller agent of the
// TopoSense architecture. The agent sits on a network node (the paper
// stations it at a source node, so its control traffic crosses the same
// congested links as the media). Receivers register with it and send
// periodic loss reports; a topology discovery tool supplies (possibly
// stale) session trees; every decision interval the agent runs the
// TopoSense algorithm and unicasts a subscription suggestion to every
// registered receiver.
package controller

import (
	"sort"
	"time"

	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/report"
	"toposense/internal/sim"
	"toposense/internal/topodisc"
)

// receiverKey identifies one registered receiver of one session.
type receiverKey struct {
	session int
	node    netsim.NodeID
}

// subtreeKey identifies one controller-adjacent subtree's aggregate stream.
type subtreeKey struct {
	session int
	origin  netsim.NodeID
}

// fanGroup is the batched fan-out's scratch: one outgoing SuggestionBatch
// per next hop from the controller.
type fanGroup struct {
	next  netsim.NodeID
	batch *report.SuggestionBatch
}

// accum aggregates the sub-interval receiver reports that arrive between
// two algorithm steps into the single per-interval view the algorithm
// consumes.
type accum struct {
	bytes    int64
	lossSum  float64
	lossN    int
	level    int
	reported bool
}

// Controller is the controller agent.
type Controller struct {
	net    *netsim.Network
	domain *mcast.Domain
	node   *netsim.Node
	tool   *topodisc.Tool
	alg    *core.Algorithm

	interval sim.Time
	ticker   *sim.Ticker
	// gen is bumped by Stop so suggestion resends scheduled before the
	// stop recognize they are stale and do not fire.
	gen uint64

	// DisableResend suppresses the mid-interval suggestion repeat
	// (ablation switch; the repeat protects against control loss on the
	// congested links suggestions must cross).
	DisableResend bool

	// Staleness delays the controller's view of receiver feedback: a
	// report is only usable Staleness after it arrives, matching the
	// paper's stale-information experiments ("the impact of old topology
	// and loss information"). The discovery tool carries its own staleness
	// for the topology half.
	Staleness sim.Time

	// registered maps each live receiver to its registration generation.
	// The generation is bumped every time the receiver (re-)registers, so a
	// pending mid-interval resend — computed for the previous incarnation —
	// can tell that the receiver it targets is not the one it was meant
	// for, even when expiry and re-registration happen within one pass.
	registered map[receiverKey]uint64
	regSeq     uint64
	lastHeard  map[receiverKey]sim.Time
	acc        map[receiverKey]*accum
	// departed counts, per session, the receivers unregistered since the
	// last decision pass. It is read during OnStep (the federation leaf
	// folds departures into its export) and cleared at the end of every
	// step. Lazily allocated: without churn it stays nil and costs nothing.
	departed map[int]int
	billing    *ledger // non-nil once EnableBilling is called
	// last holds the most recent completed aggregate per receiver, used
	// when a receiver goes silent for a whole interval (its reports were
	// lost): the algorithm then sees the stale numbers, like a real
	// controller would.
	last map[receiverKey]core.ReceiverState

	// levelCap caps the level the controller may suggest per session — the
	// enforcement half of the hierarchical control plane: a parent
	// controller (internal/federation) pushes per-domain session budgets
	// down, and the leaf clamps every core.Algorithm suggestion to its
	// budget before fan-out. Empty (the default) leaves suggestions
	// untouched, so a non-federated controller is byte-identical to the
	// pre-federation code path.
	levelCap map[int]int

	// aggregated switches the suggestion fan-out to pooled per-next-hop
	// SuggestionBatch packets (see EnableAggregation); subtrees collects the
	// latest aggregate summary per (session, origin) for the algorithm's
	// aggregate-aware input, and the batch*/fan* slices are per-pass scratch
	// reused so the steady-state fan-out allocates nothing.
	aggregated bool
	subtrees   map[subtreeKey]core.SubtreeSummary
	batchSugs  []core.Suggestion
	batchGens  []uint64
	fanGroups  []fanGroup

	// Stats.
	StepsRun        int64
	SuggestionsSent int64
	ReportsRecv     int64
	RegistersRecv   int64
	DeregistersRecv int64
	// Control-plane fan-in, counted at packet delivery: every control
	// message (and its modeled wire bytes) the controller's node handed to
	// the agent. With aggregation on, AggregatesRecv of those were compact
	// in-network merges and BatchesSent counts the pooled downward packets.
	CtlMsgsRecv    int64
	CtlBytesRecv   int64
	AggregatesRecv int64
	BatchesSent    int64
	// SuggestionsCapped counts suggestions clamped down to a session's
	// federation budget before fan-out.
	SuggestionsCapped int64
	// PassWallNanos / PassWallMaxNanos accumulate the host wall-clock time
	// spent inside step() — total and worst single pass. Wall time feeds
	// only reporting (the fig_scale controller-latency column); simulation
	// behaviour never reads the host clock, so determinism is unaffected.
	PassWallNanos    int64
	PassWallMaxNanos int64

	// OnStep, if set, observes each step's inputs and outputs. The out
	// slice is backed by the algorithm's scratch arena and only valid for
	// the duration of the call; copy it to retain.
	OnStep func(now sim.Time, in core.Input, out []core.Suggestion)

	// obs, when set via SetObs, receives the pass counter, the
	// pass-distance histogram, flight-recorder pass events, and the
	// per-pass decision audit.
	obs           *obs.Obs
	lastPassFired uint64
	lastPassMsgs  int64
}

// New creates a controller at node using the given discovery tool and
// algorithm. The algorithm's configured Interval drives the decision timer.
func New(net *netsim.Network, domain *mcast.Domain, node *netsim.Node, tool *topodisc.Tool, alg *core.Algorithm) *Controller {
	c := &Controller{
		net:        net,
		domain:     domain,
		node:       node,
		tool:       tool,
		alg:        alg,
		interval:   alg.Config().Interval,
		registered: make(map[receiverKey]uint64),
		lastHeard:  make(map[receiverKey]sim.Time),
		acc:        make(map[receiverKey]*accum),
		last:       make(map[receiverKey]core.ReceiverState),
	}
	node.AttachAgent(c)
	return c
}

// Node returns the node the controller runs on.
func (c *Controller) Node() *netsim.Node { return c.node }

// global returns the scheduler for the controller's domain-wide work. The
// decision pass reads cross-shard state (discovery snapshots, algorithm
// runs spanning every session), so on a partitioned network it runs as a
// stop-the-world global event at window barriers.
func (c *Controller) global() sim.Scheduler { return sim.GlobalOf(c.net.Engine()) }

// nodeSched returns the scheduler owning the controller's node: report and
// registration consumption happens in node context, on the node's shard.
func (c *Controller) nodeSched() sim.Scheduler { return c.net.SchedulerFor(c.node.ID) }

// Algorithm returns the underlying TopoSense instance.
func (c *Controller) Algorithm() *core.Algorithm { return c.alg }

// SetObs attaches the observability bundle. Pass nil (the default) for
// zero-overhead operation: the only cost left is one pointer check per
// decision interval.
func (c *Controller) SetObs(o *obs.Obs) { c.obs = o }

// EnableAggregation switches the suggestion fan-out from per-receiver
// unicasts to one pooled SuggestionBatch per next hop, for worlds running an
// in-network aggregation layer (mcast.Aggregator) that splits the batches
// down the tree. Aggregate consumption needs no switch — consume handles
// report.Aggregate payloads whenever they arrive. Call before Start.
func (c *Controller) EnableAggregation() { c.aggregated = true }

// SetLevelCap caps the controller's suggestions for one session at max
// (the per-domain session budget a federation parent granted). max <= 0
// clears the cap. Takes effect from the next decision pass.
func (c *Controller) SetLevelCap(session, max int) {
	if max <= 0 {
		delete(c.levelCap, session)
		return
	}
	if c.levelCap == nil {
		c.levelCap = make(map[int]int)
	}
	c.levelCap[session] = max
}

// LevelCap returns the session's budget cap (0 = uncapped).
func (c *Controller) LevelCap(session int) int { return c.levelCap[session] }

// RegisteredReceivers returns every currently registered (session, node)
// pair, sorted — the controller's membership view. The federation
// experiment uses it to prove domain isolation: a leaf controller must
// never have consumed a report from outside its domain.
func (c *Controller) RegisteredReceivers() []ReceiverID {
	out := make([]ReceiverID, 0, len(c.registered))
	for k := range c.registered {
		out = append(out, ReceiverID{Session: k.session, Node: k.node})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// ReceiverID identifies one registered receiver of one session.
type ReceiverID struct {
	Session int
	Node    netsim.NodeID
}

// Unregister forgets a receiver immediately: it is removed from the
// registration tables (which invalidates any pending mid-interval
// suggestion resend through the registration-generation check — the key's
// absence fails the recheck) and evicted from the next algorithm pass. A
// later Register from the same node is a fresh incarnation and opens a new
// generation, exactly like a re-registration after expiry. Unknown
// receivers are ignored.
func (c *Controller) Unregister(session int, node netsim.NodeID) {
	c.unregister(receiverKey{session, node})
}

// unregister drops one receiver's state — the same four tables the
// expiry sweep in step() clears — and records the departure for this pass.
func (c *Controller) unregister(k receiverKey) {
	if _, ok := c.registered[k]; !ok {
		return
	}
	delete(c.registered, k)
	delete(c.lastHeard, k)
	delete(c.acc, k)
	delete(c.last, k)
	if c.departed == nil {
		c.departed = make(map[int]int)
	}
	c.departed[k.session]++
}

// PassDepartures returns how many receivers of session have deregistered
// since the last decision pass. Valid during OnStep; the count resets when
// the pass completes.
func (c *Controller) PassDepartures(session int) int { return c.departed[session] }

// DepartedSessions returns the sessions with departures pending in the
// current pass, sorted; nil when there were none.
func (c *Controller) DepartedSessions() []int {
	if len(c.departed) == 0 {
		return nil
	}
	out := make([]int, 0, len(c.departed))
	for s := range c.departed {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Start begins the discovery tool and the periodic decision timer.
func (c *Controller) Start() {
	if c.ticker != nil {
		return
	}
	c.tool.Start()
	c.ticker = sim.Every(c.global(), c.interval, c.step)
}

// Stop halts the decision timer (the discovery tool keeps running so a
// restart has fresh history). Pending mid-interval suggestion resends are
// invalidated: a stopped controller must go silent immediately.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
		c.gen++
	}
}

// Recv implements netsim.Agent: consume registrations and loss reports.
// With Staleness set, processing is deferred so the information is that old
// by the time the algorithm sees it.
func (c *Controller) Recv(p *netsim.Packet) {
	c.CtlMsgsRecv++
	c.CtlBytesRecv += int64(p.Size)
	if c.Staleness > 0 {
		payload := p.Payload
		c.nodeSched().Schedule(c.Staleness, func() { c.consume(payload) })
		return
	}
	c.consume(p.Payload)
}

func (c *Controller) consume(payload any) {
	now := c.nodeSched().Now()
	switch pl := payload.(type) {
	case report.Register:
		c.RegistersRecv++
		k := receiverKey{pl.Session, pl.Node}
		// Every Register is a (re)start of the receiver, so it opens a new
		// registration generation — pending resends aimed at the previous
		// incarnation go inert.
		c.regSeq++
		c.registered[k] = c.regSeq
		c.lastHeard[k] = now
		if a := c.acc[k]; a == nil {
			c.acc[k] = &accum{level: pl.Level}
		} else {
			// A re-registration is a receiver restarting, possibly at a
			// different level; tracking it at the stale level until its
			// first loss report would mis-steer the next step.
			a.level = pl.Level
		}
	case report.LossReport:
		c.ReportsRecv++
		k := receiverKey{pl.Session, pl.Node}
		// Reports imply registration (the Register packet may be lost), but
		// a report from an already-registered receiver is the same
		// incarnation — it must not open a new generation, or every report
		// would invalidate the pending mid-interval resend.
		if _, ok := c.registered[k]; !ok {
			c.regSeq++
			c.registered[k] = c.regSeq
		}
		c.lastHeard[k] = now
		a := c.acc[k]
		if a == nil {
			a = &accum{}
			c.acc[k] = a
		}
		a.bytes += pl.Bytes
		a.lossSum += pl.LossRate
		a.lossN++
		a.level = pl.Level
		a.reported = true
		if c.billing != nil {
			c.billing.meter(pl.Session, pl.Node, pl.Bytes, pl.Level, pl.Interval)
		}
	case report.Deregister:
		c.DeregistersRecv++
		c.unregister(receiverKey{pl.Session, pl.Node})
	case *report.Aggregate:
		// An in-network merge of many receivers' reports. Each entry carries
		// the exact sums of its receiver's folded reports, so folding it here
		// reproduces the flat path's accumulator state bit for bit; that is
		// the decision-equivalence contract the aggregation layer keeps.
		c.AggregatesRecv++
		c.ReportsRecv += pl.ReportCount
		for i := range pl.Entries {
			e := &pl.Entries[i]
			k := receiverKey{pl.Session, e.Node}
			if _, ok := c.registered[k]; !ok {
				c.regSeq++
				c.registered[k] = c.regSeq
			}
			c.lastHeard[k] = now
			a := c.acc[k]
			if a == nil {
				a = &accum{}
				c.acc[k] = a
			}
			a.bytes += e.Bytes
			a.lossSum += e.LossSum
			a.lossN += int(e.Reports)
			a.level = e.Level
			a.reported = true
			if c.billing != nil {
				c.billing.meter(pl.Session, e.Node, e.Bytes, e.Level, pl.Interval)
			}
		}
		if c.subtrees == nil {
			c.subtrees = make(map[subtreeKey]core.SubtreeSummary)
		}
		c.subtrees[subtreeKey{pl.Session, pl.Origin}] = core.SubtreeSummary{
			Session:   pl.Session,
			Origin:    pl.Origin,
			Receivers: pl.Receivers(),
			Reports:   pl.ReportCount,
			Bytes:     pl.ByteTotal,
			MeanLoss:  pl.MeanLoss(),
			MaxLoss:   pl.MaxLoss,
			Worst:     pl.Worst,
		}
		pl.Release()
	}
}

// step runs one TopoSense interval: assemble topologies and reports, run
// the algorithm, send suggestions.
func (c *Controller) step() {
	passStart := time.Now()
	defer func() {
		d := int64(time.Since(passStart))
		c.PassWallNanos += d
		if d > c.PassWallMaxNanos {
			c.PassWallMaxNanos = d
		}
	}()
	now := c.global().Now()

	// Expire receivers that have gone silent for several intervals: they
	// left (or died) and instructing them would steer the tree with ghost
	// demand. Generosity scales with staleness, since reports are consumed
	// late on purpose.
	horizon := 5*c.interval + c.Staleness
	for k, heard := range c.lastHeard {
		if now-heard > horizon {
			delete(c.registered, k)
			delete(c.lastHeard, k)
			delete(c.acc, k)
			delete(c.last, k)
		}
	}

	// Topologies from the discovery tool (respecting its staleness).
	var topos []*core.Topology
	for _, s := range c.tool.Sessions() {
		snap := c.tool.Discover(s)
		if snap == nil || snap.Empty() {
			continue
		}
		topo := SnapshotToTopology(snap)
		if err := topo.Validate(); err != nil {
			continue // a torn snapshot is skipped, not acted on
		}
		topos = append(topos, topo)
	}

	// Fold accumulated receiver reports into per-interval states. When the
	// audit log is live, mirror each state into an audit entry as it is
	// assembled — the audit records exactly what the algorithm consumed.
	auditing := c.obs != nil && c.obs.Audit != nil
	var audit []obs.AuditEntry
	var auditIdx map[receiverKey]int
	var reports []core.ReceiverState
	keys := make([]receiverKey, 0, len(c.registered))
	for k := range c.registered {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].session != keys[j].session {
			return keys[i].session < keys[j].session
		}
		return keys[i].node < keys[j].node
	})
	if auditing {
		audit = make([]obs.AuditEntry, 0, len(keys))
		auditIdx = make(map[receiverKey]int, len(keys))
	}
	for _, k := range keys {
		a := c.acc[k]
		stale := a == nil || !a.reported
		var st core.ReceiverState
		if stale {
			// Silent interval: reuse the last known state if any.
			var ok bool
			if st, ok = c.last[k]; !ok {
				continue
			}
		} else {
			st = core.ReceiverState{
				Node:     k.node,
				Session:  k.session,
				Level:    a.level,
				LossRate: a.lossSum / float64(a.lossN),
				Bytes:    a.bytes,
			}
			c.last[k] = st
			*a = accum{level: a.level}
		}
		reports = append(reports, st)
		if auditing {
			auditIdx[k] = len(audit)
			audit = append(audit, obs.AuditEntry{
				Node: int(k.node), Session: k.session,
				Level: st.Level, Loss: st.LossRate, Bytes: st.Bytes,
				Stale: stale, Parent: -1, Prescribed: -1,
			})
		}
	}
	if auditing {
		// Topology evidence: each receiver's parent in its session's
		// validated discovered tree, when one covered it this pass.
		for _, topo := range topos {
			for i := range audit {
				if audit[i].Session != topo.Session {
					continue
				}
				if p, ok := topo.Parent[core.NodeID(audit[i].Node)]; ok {
					audit[i].OnTree = true
					audit[i].Parent = int(p)
				}
			}
		}
	}

	// Subtree summaries from consumed aggregates: the latest per (session,
	// origin), sorted for determinism, cleared each pass like the accums.
	var subs []core.SubtreeSummary
	if len(c.subtrees) > 0 {
		subs = make([]core.SubtreeSummary, 0, len(c.subtrees))
		for _, s := range c.subtrees {
			subs = append(subs, s)
		}
		sort.Slice(subs, func(i, j int) bool {
			if subs[i].Session != subs[j].Session {
				return subs[i].Session < subs[j].Session
			}
			return subs[i].Origin < subs[j].Origin
		})
		for k := range c.subtrees {
			delete(c.subtrees, k)
		}
	}

	in := core.Input{Now: now, Topologies: topos, Reports: reports, Subtrees: subs}
	out := c.alg.Step(in)
	c.StepsRun++

	// Federation budget enforcement: clamp each suggestion to its session's
	// cap before any fan-out path sees it (the algorithm's scratch-backed
	// slice is safely mutable until its next Step).
	if len(c.levelCap) > 0 {
		for i := range out {
			if _, ok := c.registered[receiverKey{out[i].Session, out[i].Node}]; !ok {
				// A receiver that deregistered mid-interval: the fan-out below
				// skips it, so clamping it here would only inflate the capped
				// counter with ghost bookkeeping.
				continue
			}
			if lim, ok := c.levelCap[out[i].Session]; ok && out[i].Level > lim {
				out[i].Level = lim
				c.SuggestionsCapped++
				if c.obs != nil {
					c.obs.FedCapped.Inc()
				}
			}
		}
	}

	sent := 0
	if c.aggregated {
		// Batched fan-out: filter to registered receivers into the per-pass
		// scratch (with registration generations for the resend recheck),
		// then send one pooled batch per next hop — and one resend closure
		// per pass instead of one per receiver.
		c.batchSugs = c.batchSugs[:0]
		c.batchGens = c.batchGens[:0]
		for _, sg := range out {
			k := receiverKey{sg.Session, sg.Node}
			if auditing {
				if i, ok := auditIdx[k]; ok {
					audit[i].Prescribed = sg.Level
				}
			}
			rgen, ok := c.registered[k]
			if !ok {
				continue // never instruct an unregistered receiver
			}
			c.batchSugs = append(c.batchSugs, sg)
			c.batchGens = append(c.batchGens, rgen)
			sent++
		}
		c.sendBatched(c.batchSugs, c.batchGens, false)
		if !c.DisableResend && sent > 0 {
			gen := c.gen
			c.global().Schedule(c.interval/2, func() {
				if c.ticker == nil || c.gen != gen {
					return
				}
				// The scratch is only rewritten by the next pass, a half
				// interval after this fires; recheck generations per entry.
				c.sendBatched(c.batchSugs, c.batchGens, true)
			})
		}
	} else {
		for _, sg := range out {
			k := receiverKey{sg.Session, sg.Node}
			if auditing {
				if i, ok := auditIdx[k]; ok {
					audit[i].Prescribed = sg.Level
				}
			}
			rgen, ok := c.registered[k]
			if !ok {
				continue // never instruct an unregistered receiver
			}
			send := func() {
				at := c.global().Now()
				pkt := report.NewControlPacket(c.node.ID, sg.Node, report.SuggestionSize, at,
					report.Suggestion{Node: sg.Node, Session: sg.Session, Level: sg.Level, Sent: at})
				c.node.SendUnicast(pkt)
				c.SuggestionsSent++
			}
			send()
			sent++
			// Suggestions cross the congested links they are trying to relieve
			// and are routinely lost exactly when they matter most; a single
			// mid-interval repeat makes the control loop robust without
			// meaningful extra traffic. The repeat is dropped if the controller
			// stopped, the receiver expired, or the receiver re-registered as a
			// new incarnation (even within this same pass), in the meantime.
			if !c.DisableResend {
				gen := c.gen
				c.global().Schedule(c.interval/2, func() {
					if c.ticker == nil || c.gen != gen {
						return
					}
					if cur, ok := c.registered[k]; !ok || cur != rgen {
						return
					}
					send()
				})
			}
		}
	}
	if c.obs != nil {
		c.obs.FanIn.Observe(float64(c.CtlMsgsRecv - c.lastPassMsgs))
		c.lastPassMsgs = c.CtlMsgsRecv
		var fired uint64
		// Schedulers expose the fired-event counter only through their
		// concrete engines; a scheduler without one reports zero distance.
		if f, ok := c.net.Engine().(interface{ Fired() uint64 }); ok {
			fired = f.Fired()
		}
		since := fired - c.lastPassFired
		c.lastPassFired = fired
		c.obs.Passes.Inc()
		c.obs.PassEvents.Observe(float64(since))
		c.obs.Rec.Record(obs.Event{
			At: now, Kind: obs.EvPass,
			From: int32(c.node.ID), To: -1, Session: -1,
			Seq: c.StepsRun, Aux: int64(sent),
		})
		c.obs.Audit.Add(obs.AuditPass{
			At: now, Topologies: len(topos), EventsSince: since,
			Receivers: audit,
		})
	}
	if c.OnStep != nil {
		c.OnStep(now, in, out)
	}
	// Departure counts cover exactly one pass; OnStep (the federation leaf's
	// export hook) was the last reader. Ranging a nil map is free, so the
	// churn-free pass stays allocation-free.
	for s := range c.departed {
		delete(c.departed, s)
	}
}

// sendBatched sends the suggestions in sugs as one pooled SuggestionBatch
// per next hop from the controller; the in-network aggregation layer splits
// each batch further down the tree. With recheck set (the mid-interval
// resend) entries whose receiver expired or re-registered since the pass are
// skipped, exactly like the per-receiver resend guard on the flat path. The
// fan-group scratch is reused across calls, so steady-state passes allocate
// nothing here.
func (c *Controller) sendBatched(sugs []core.Suggestion, gens []uint64, recheck bool) {
	at := c.global().Now()
	groups := c.fanGroups[:0]
	for i, sg := range sugs {
		if recheck {
			if cur, ok := c.registered[receiverKey{sg.Session, sg.Node}]; !ok || cur != gens[i] {
				continue
			}
		}
		if sg.Node == c.node.ID {
			// A receiver co-located with the controller: no hop to batch
			// over, deliver the plain suggestion locally.
			pkt := report.NewControlPacket(c.node.ID, sg.Node, report.SuggestionSize, at,
				report.Suggestion{Node: sg.Node, Session: sg.Session, Level: sg.Level, Sent: at})
			c.node.SendUnicast(pkt)
			c.SuggestionsSent++
			continue
		}
		next := c.net.NextHop(c.node.ID, sg.Node)
		if next == netsim.NoNode {
			continue // unreachable, as the equivalent unicast would be
		}
		var g *fanGroup
		for j := range groups {
			if groups[j].next == next {
				g = &groups[j]
				break
			}
		}
		if g == nil {
			groups = append(groups, fanGroup{next: next, batch: report.NewSuggestionBatch()})
			g = &groups[len(groups)-1]
			g.batch.Sent = at
		}
		g.batch.Add(sg.Node, sg.Session, sg.Level)
		c.SuggestionsSent++
	}
	for i := range groups {
		g := &groups[i]
		pkt := c.net.NewPacket()
		pkt.Kind = netsim.Control
		pkt.Src = c.node.ID
		pkt.Dst = g.next
		pkt.Group = netsim.NoGroup
		pkt.Size = g.batch.WireSize()
		pkt.Sent = at
		pkt.Payload = g.batch
		c.node.SendUnicast(pkt)
		pkt.Release()
		g.batch = nil
		c.BatchesSent++
	}
	c.fanGroups = groups
}

// SnapshotToTopology converts a discovery snapshot into the algorithm's
// topology type.
func SnapshotToTopology(s *topodisc.Snapshot) *core.Topology {
	t := &core.Topology{
		Session:   s.Session,
		Root:      s.Root,
		Parent:    make(map[core.NodeID]core.NodeID, len(s.Parent)),
		Children:  make(map[core.NodeID][]core.NodeID, len(s.Children)),
		Receivers: make(map[core.NodeID]bool, len(s.Receivers)),
	}
	for k, v := range s.Parent {
		t.Parent[k] = v
	}
	for k, v := range s.Children {
		t.Children[k] = append([]core.NodeID(nil), v...)
	}
	for k, v := range s.Receivers {
		t.Receivers[k] = v
	}
	return t
}
