package controller

import (
	"math"
	"strings"
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
)

func TestBillingDisabledByDefault(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	w.start()
	w.e.RunUntil(20 * sim.Second)
	if w.ctrl.BillingEnabled() {
		t.Error("billing on without EnableBilling")
	}
	if w.ctrl.BillingReport() != nil {
		t.Error("report from disabled billing")
	}
}

func TestBillingMetersRealRun(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	w.ctrl.EnableBilling()
	w.ctrl.EnableBilling() // idempotent
	w.start()
	w.e.RunUntil(120 * sim.Second)
	entries := w.ctrl.BillingReport()
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Node != w.rxs[0].Node().ID || e.Session != 0 {
		t.Errorf("entry identity: %+v", e)
	}
	if e.Reports < 200 { // ~240 reports at 500 ms over 120 s
		t.Errorf("reports metered = %d", e.Reports)
	}
	// The receiver converges to 4 layers (480 Kbps): total volume is
	// bounded by 480 Kbps x 120 s and must be substantial.
	maxBytes := int64(480e3 / 8 * 125)
	if e.Bytes <= 0 || e.Bytes > maxBytes {
		t.Errorf("bytes metered = %d (bound %d)", e.Bytes, maxBytes)
	}
	if ml := e.MeanLevel(); ml < 2.5 || ml > 4.6 {
		t.Errorf("mean level = %.2f", ml)
	}
	// Time accounted roughly matches the run.
	var total float64
	for _, secs := range e.LevelSeconds {
		total += secs
	}
	if math.Abs(total-120) > 10 {
		t.Errorf("accounted %.1f s of a 120 s run", total)
	}
}

func TestBillingSurvivesReceiverDeparture(t *testing.T) {
	// "You still bill a customer who left": the ledger outlives the
	// registration expiry.
	w := buildChainWorld(t, 500e3, 0)
	w.ctrl.EnableBilling()
	w.start()
	w.e.RunUntil(30 * sim.Second)
	w.rxs[0].Stop()
	w.e.RunUntil(90 * sim.Second) // registration long expired
	entries := w.ctrl.BillingReport()
	if len(entries) != 1 || entries[0].Bytes == 0 {
		t.Fatalf("ledger lost after departure: %+v", entries)
	}
}

func TestBillingReportFormatting(t *testing.T) {
	entries := []BillingEntry{
		{Node: 3, Session: 0, Bytes: 1234567, Reports: 42,
			LevelSeconds: map[int]float64{4: 100, 2: 20}},
	}
	out := FormatBillingReport(entries)
	if !strings.Contains(out, "1234567") || !strings.Contains(out, "mean level") {
		t.Errorf("report = %q", out)
	}
	// Mean level of 100 s @4 + 20 s @2 = 3.67.
	if got := entries[0].MeanLevel(); math.Abs(got-3.6667) > 0.001 {
		t.Errorf("MeanLevel = %g", got)
	}
	if (BillingEntry{}).MeanLevel() != 0 {
		t.Error("empty entry mean level")
	}
}

func TestBillingReportIsACopy(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	w.ctrl.EnableBilling()
	w.ctrl.Recv(&netsim.Packet{Payload: report.LossReport{
		Node: 5, Session: 0, Level: 2, Bytes: 1000, Interval: sim.Second,
	}})
	r1 := w.ctrl.BillingReport()
	r1[0].LevelSeconds[2] = 999 // mutate the copy
	r2 := w.ctrl.BillingReport()
	if r2[0].LevelSeconds[2] == 999 {
		t.Error("BillingReport aliases the ledger")
	}
}

func TestBillingSortedOutput(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	w.ctrl.EnableBilling()
	for _, in := range []report.LossReport{
		{Node: 9, Session: 1, Level: 1, Bytes: 10, Interval: sim.Second},
		{Node: 2, Session: 0, Level: 1, Bytes: 10, Interval: sim.Second},
		{Node: 7, Session: 0, Level: 1, Bytes: 10, Interval: sim.Second},
	} {
		w.ctrl.Recv(&netsim.Packet{Payload: in})
	}
	entries := w.ctrl.BillingReport()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Node != 2 || entries[1].Node != 7 || entries[2].Session != 1 {
		t.Errorf("unsorted: %+v", entries)
	}
}
