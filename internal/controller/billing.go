package controller

import (
	"fmt"
	"sort"
	"strings"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// The paper: "Controller agents can also be very useful for billing
// customers based on multicast content delivered." The controller already
// sees every receiver's loss reports — bytes received and subscription
// level per interval — so metering is a byproduct of congestion control.
// This file implements that ledger.

// BillingEntry is the metered usage of one receiver in one session.
type BillingEntry struct {
	Node    netsim.NodeID
	Session int
	// Bytes is the total payload the receiver reported receiving.
	Bytes int64
	// LevelSeconds maps a subscription level to the seconds the receiver
	// reported spending at exactly that level.
	LevelSeconds map[int]float64
	// Reports is how many loss reports contributed (audit trail).
	Reports int64
}

// MeanLevel returns the time-weighted mean subscription level.
func (b BillingEntry) MeanLevel() float64 {
	var total, weighted float64
	for level, secs := range b.LevelSeconds {
		total += secs
		weighted += float64(level) * secs
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// ledgerKey mirrors receiverKey (kept separate so billing survives
// registration expiry — you still bill a customer who left).
type ledgerKey struct {
	session int
	node    netsim.NodeID
}

// ledger accumulates usage. Enabled lazily by EnableBilling.
type ledger struct {
	entries map[ledgerKey]*BillingEntry
}

// EnableBilling turns on usage metering. Call before Start.
func (c *Controller) EnableBilling() {
	if c.billing == nil {
		c.billing = &ledger{entries: make(map[ledgerKey]*BillingEntry)}
	}
}

// BillingEnabled reports whether metering is on.
func (c *Controller) BillingEnabled() bool { return c.billing != nil }

// meter records one loss report into the ledger.
func (l *ledger) meter(session int, node netsim.NodeID, bytes int64, level int, interval sim.Time) {
	k := ledgerKey{session, node}
	e := l.entries[k]
	if e == nil {
		e = &BillingEntry{Node: node, Session: session, LevelSeconds: make(map[int]float64)}
		l.entries[k] = e
	}
	e.Bytes += bytes
	e.LevelSeconds[level] += interval.Seconds()
	e.Reports++
}

// BillingReport returns the ledger sorted by (session, node). Returns nil
// when billing was never enabled.
func (c *Controller) BillingReport() []BillingEntry {
	if c.billing == nil {
		return nil
	}
	out := make([]BillingEntry, 0, len(c.billing.entries))
	for _, e := range c.billing.entries {
		copyEntry := *e
		copyEntry.LevelSeconds = make(map[int]float64, len(e.LevelSeconds))
		for k, v := range e.LevelSeconds {
			copyEntry.LevelSeconds[k] = v
		}
		out = append(out, copyEntry)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// FormatBillingReport renders the ledger for operators: one line per
// receiver with delivered volume and the time-weighted mean level.
func FormatBillingReport(entries []BillingEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %-6s  %12s  %10s  %s\n", "session", "node", "bytes", "mean level", "reports")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-8d  %-6d  %12d  %10.2f  %d\n", e.Session, e.Node, e.Bytes, e.MeanLevel(), e.Reports)
	}
	return b.String()
}
