package controller

import (
	"fmt"
	"math/rand"
	"testing"

	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
)

// benchFanWorld builds a controller on a two-level tree: hops mid nodes off
// the controller, rxPerHop receiver nodes behind each. Returns the world's
// engine, the controller, and one suggestion per receiver node.
func benchFanWorld(tb testing.TB, hops, rxPerHop int) (*sim.Engine, *Controller, []core.Suggestion) {
	tb.Helper()
	e := sim.NewEngine(1)
	n := netsim.New(e)
	ctrlNode := n.AddNode("ctrl")
	fast := netsim.LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond, QueueLimit: 4096}
	var sugs []core.Suggestion
	for h := 0; h < hops; h++ {
		mid := n.AddNode(fmt.Sprintf("mid%d", h))
		n.Connect(ctrlNode, mid, fast)
		for i := 0; i < rxPerHop; i++ {
			rx := n.AddNode(fmt.Sprintf("rx%d-%d", h, i))
			n.Connect(mid, rx, fast)
			sugs = append(sugs, core.Suggestion{Node: rx.ID, Session: 0, Level: 3})
		}
	}
	d := mcast.NewDomain(n)
	tool := topodisc.NewTool(n, d, []int{0})
	alg := core.New(core.NewConfig(source.Rates(6)), rand.New(rand.NewSource(1)))
	c := New(n, d, ctrlNode, tool, alg)
	c.EnableAggregation()
	mcast.NewAggregator(n, ctrlNode.ID, 0)
	return e, c, sugs
}

// TestConsumeDispatchWireSizes drives one packet of each control payload
// through Recv and checks both halves of the fan-in accounting: the typed
// dispatch (which stat each payload bumps) and the modeled wire bytes
// (which must follow the declared size constants, including the
// per-entry aggregate sizing).
func TestConsumeDispatchWireSizes(t *testing.T) {
	e, c, _ := benchFanWorld(t, 1, 2)
	_ = e

	now := sim.Time(0)
	recv := func(size int, payload any) {
		c.Recv(report.NewControlPacket(9, c.node.ID, size, now, payload))
	}

	recv(report.RegisterSize, report.Register{Node: 9, Session: 0, Level: 1})
	if c.RegistersRecv != 1 || c.CtlMsgsRecv != 1 || c.CtlBytesRecv != report.RegisterSize {
		t.Errorf("after register: regs=%d msgs=%d bytes=%d",
			c.RegistersRecv, c.CtlMsgsRecv, c.CtlBytesRecv)
	}

	recv(report.LossReportSize, report.LossReport{Node: 9, Session: 0, Level: 1, LossRate: 0.1, Bytes: 100})
	if c.ReportsRecv != 1 || c.CtlBytesRecv != report.RegisterSize+report.LossReportSize {
		t.Errorf("after report: reports=%d bytes=%d", c.ReportsRecv, c.CtlBytesRecv)
	}

	agg := report.NewAggregate(0, 5)
	agg.Fold(report.LossReport{Node: 11, Session: 0, Level: 2, LossRate: 0.2, Bytes: 200})
	agg.Fold(report.LossReport{Node: 12, Session: 0, Level: 3, LossRate: 0.3, Bytes: 300})
	wantSize := report.AggregateBaseSize + 2*report.AggregateEntrySize
	if agg.WireSize() != wantSize {
		t.Fatalf("aggregate WireSize = %d, want %d", agg.WireSize(), wantSize)
	}
	recv(agg.WireSize(), agg)
	if c.AggregatesRecv != 1 {
		t.Errorf("AggregatesRecv = %d", c.AggregatesRecv)
	}
	// The aggregate folds as its two underlying reports.
	if c.ReportsRecv != 3 {
		t.Errorf("ReportsRecv = %d, want 3 (1 flat + 2 folded)", c.ReportsRecv)
	}
	want := int64(report.RegisterSize + report.LossReportSize + wantSize)
	if c.CtlBytesRecv != want {
		t.Errorf("CtlBytesRecv = %d, want %d", c.CtlBytesRecv, want)
	}
	if c.CtlMsgsRecv != 3 {
		t.Errorf("CtlMsgsRecv = %d, want 3", c.CtlMsgsRecv)
	}
}

// TestAggregateConsumeEquivalence is the decision-equivalence contract in
// unit form: consuming an in-network merge of N loss reports must leave the
// controller's per-interval view — the exact ReceiverStates handed to the
// algorithm — identical to consuming the N flat reports one by one.
func TestAggregateConsumeEquivalence(t *testing.T) {
	reports := []report.LossReport{
		{Node: 4, Session: 0, Level: 1, LossRate: 0.25, Bytes: 1000},
		{Node: 4, Session: 0, Level: 2, LossRate: 0.5, Bytes: 1500},
		{Node: 5, Session: 0, Level: 3, LossRate: 0.125, Bytes: 2000},
		{Node: 6, Session: 0, Level: 1, LossRate: 0, Bytes: 900},
		{Node: 5, Session: 0, Level: 3, LossRate: 0.375, Bytes: 2100},
	}

	capture := func(c *Controller) []core.ReceiverState {
		var got []core.ReceiverState
		c.OnStep = func(_ sim.Time, in core.Input, _ []core.Suggestion) {
			got = append([]core.ReceiverState(nil), in.Reports...)
		}
		c.step()
		return got
	}

	// Flat path: every report consumed individually.
	_, flat, _ := benchFanWorld(t, 1, 2)
	for _, r := range reports {
		flat.consume(r)
	}
	flatStates := capture(flat)

	// Aggregated path: the same reports folded in-network — split across
	// two subtree aggregates merged at different depths, as a tree would.
	_, agg, _ := benchFanWorld(t, 1, 2)
	left := report.NewAggregate(0, 100)
	for _, r := range reports[:2] {
		left.Fold(r)
	}
	right := report.NewAggregate(0, 101)
	for _, r := range reports[2:] {
		right.Fold(r)
	}
	left.Merge(right)
	right.Release()
	agg.consume(left) // consume releases it
	aggStates := capture(agg)

	if len(flatStates) == 0 {
		t.Fatal("flat path produced no receiver states")
	}
	if fmt.Sprint(flatStates) != fmt.Sprint(aggStates) {
		t.Errorf("aggregate consumption diverged from flat reports\nflat: %v\nagg:  %v",
			flatStates, aggStates)
	}

	// The aggregated pass additionally surfaces the subtree summary.
	var subs []core.SubtreeSummary
	agg.OnStep = func(_ sim.Time, in core.Input, _ []core.Suggestion) {
		subs = append([]core.SubtreeSummary(nil), in.Subtrees...)
	}
	// Feed a fresh aggregate (the first step consumed and cleared the map).
	a2 := report.NewAggregate(0, 100)
	a2.Fold(reports[0])
	agg.consume(a2)
	agg.step()
	if len(subs) != 1 || subs[0].Origin != 100 || subs[0].Receivers != 1 {
		t.Errorf("subtree summaries = %+v", subs)
	}
}

// TestBatchedFanoutDelivery runs the batched fan-out over the two-level
// tree: every registered receiver's prescription must arrive inside a
// pooled per-next-hop batch, one packet per mid node at the controller.
func TestBatchedFanoutDelivery(t *testing.T) {
	e, c, sugs := benchFanWorld(t, 3, 4)
	gens := make([]uint64, len(sugs))
	for i, sg := range sugs {
		c.consume(report.Register{Node: sg.Node, Session: sg.Session, Level: 1})
		gens[i] = c.registered[receiverKey{sg.Session, sg.Node}]
	}
	c.sendBatched(sugs, gens, false)
	if c.BatchesSent != 3 {
		t.Errorf("BatchesSent = %d, want one per mid node (3)", c.BatchesSent)
	}
	if c.SuggestionsSent != int64(len(sugs)) {
		t.Errorf("SuggestionsSent = %d, want %d", c.SuggestionsSent, len(sugs))
	}
	e.Run()

	// Recheck mode with a re-registered receiver: its stale entry is skipped.
	c.consume(report.Register{Node: sugs[0].Node, Session: 0, Level: 1})
	before := c.SuggestionsSent
	c.sendBatched(sugs, gens, true)
	if got := c.SuggestionsSent - before; got != int64(len(sugs)-1) {
		t.Errorf("recheck resent %d suggestions, want %d", got, len(sugs)-1)
	}
	e.Run()
}

// BenchmarkSuggestionFanout pins the batched fan-out hot path: one pass's
// worth of suggestions grouped into pooled per-next-hop batches and sent.
// The engine drains between iterations (untimed) so pooled packets and
// batches recycle; the steady state must not allocate.
func BenchmarkSuggestionFanout(b *testing.B) {
	e, c, sugs := benchFanWorld(b, 8, 32)
	gens := make([]uint64, len(sugs))
	// Warm the route columns, the packet and batch pools (down the whole
	// redistribution tree) and the scratch slices: the claim under test is
	// the steady state, not first-touch growth.
	for i := 0; i < 64; i++ {
		c.sendBatched(sugs, gens, false)
		e.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.sendBatched(sugs, gens, false)
		b.StopTimer()
		e.Run()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(sugs)), "suggestions/op")
}
