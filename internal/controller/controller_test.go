package controller

import (
	"math/rand"
	"testing"

	"toposense/internal/core"
	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/receiver"
	"toposense/internal/report"
	"toposense/internal/sim"
	"toposense/internal/source"
	"toposense/internal/topodisc"
)

// world is a complete single-domain simulation for integration tests.
type world struct {
	e    *sim.Engine
	n    *netsim.Network
	d    *mcast.Domain
	tool *topodisc.Tool
	ctrl *Controller
	srcs []*source.Source
	rxs  []*receiver.Receiver
}

// buildChainWorld: src --fat-- r1 --bottleneck-- rx, controller at src.
func buildChainWorld(t *testing.T, bottleneck float64, peakToMean float64) *world {
	t.Helper()
	e := sim.NewEngine(99)
	n := netsim.New(e)
	srcNode := n.AddNode("src")
	r1 := n.AddNode("r1")
	rxNode := n.AddNode("rx")
	fat := netsim.LinkConfig{Bandwidth: 100e6, Delay: 200 * sim.Millisecond}
	n.Connect(srcNode, r1, fat)
	n.Connect(r1, rxNode, netsim.LinkConfig{Bandwidth: bottleneck, Delay: 200 * sim.Millisecond})
	d := mcast.NewDomain(n)
	src := source.New(n, d, srcNode, source.Config{Session: 0, PeakToMean: peakToMean})
	tool := topodisc.NewTool(n, d, []int{0})
	cfg := core.NewConfig(source.Rates(6))
	alg := core.New(cfg, rand.New(rand.NewSource(7)))
	ctrl := New(n, d, srcNode, tool, alg)
	rx := receiver.New(n, d, rxNode, receiver.Config{
		Session: 0, MaxLayers: 6, InitialLevel: 1, Controller: srcNode.ID,
	})
	return &world{e: e, n: n, d: d, tool: tool, ctrl: ctrl,
		srcs: []*source.Source{src}, rxs: []*receiver.Receiver{rx}}
}

func (w *world) start() {
	for _, s := range w.srcs {
		s.Start()
	}
	w.ctrl.Start()
	for _, r := range w.rxs {
		r.Start()
	}
}

func TestConvergesToBottleneckOptimal(t *testing.T) {
	// 500 Kbps bottleneck: optimal subscription is 4 layers (480 Kbps).
	w := buildChainWorld(t, 500e3, 0)
	w.start()
	w.e.RunUntil(120 * sim.Second)
	rx := w.rxs[0]
	if got := rx.Level(); got < 3 || got > 5 {
		t.Fatalf("level after 120s = %d, want ~4", got)
	}
	// Sample the level over the second minute: it should sit at 4 most of
	// the time (probes may briefly visit 5).
	at4 := 0
	samples := 0
	tick := w.e.Every(sim.Second, func() {
		samples++
		if rx.Level() == 4 {
			at4++
		}
	})
	w.e.RunUntil(240 * sim.Second)
	tick.Stop()
	if frac := float64(at4) / float64(samples); frac < 0.6 {
		t.Errorf("at the optimal level only %.0f%% of the time", frac*100)
	}
	if w.ctrl.StepsRun == 0 || w.ctrl.SuggestionsSent == 0 {
		t.Error("controller did not run")
	}
}

func TestConvergesLowBottleneck(t *testing.T) {
	// 100 Kbps bottleneck: optimal is 2 layers (96 Kbps).
	w := buildChainWorld(t, 100e3, 0)
	w.start()
	w.e.RunUntil(180 * sim.Second)
	if got := w.rxs[0].Level(); got < 1 || got > 3 {
		t.Fatalf("level = %d, want ~2", got)
	}
}

func TestHeterogeneousReceiversGetDifferentLevels(t *testing.T) {
	// Mini Topology A: two subtrees with different bottlenecks must reach
	// different levels — the slow one must not drag the fast one down.
	e := sim.NewEngine(4)
	n := netsim.New(e)
	srcNode := n.AddNode("src")
	hub := n.AddNode("hub")
	rSlow := n.AddNode("rslow")
	rFast := n.AddNode("rfast")
	slowRx := n.AddNode("slow-rx")
	fastRx := n.AddNode("fast-rx")
	fat := netsim.LinkConfig{Bandwidth: 100e6, Delay: 200 * sim.Millisecond}
	n.Connect(srcNode, hub, fat)
	n.Connect(hub, rSlow, fat)
	n.Connect(hub, rFast, fat)
	n.Connect(rSlow, slowRx, netsim.LinkConfig{Bandwidth: 100e3, Delay: 200 * sim.Millisecond})
	n.Connect(rFast, fastRx, netsim.LinkConfig{Bandwidth: 500e3, Delay: 200 * sim.Millisecond})
	d := mcast.NewDomain(n)
	src := source.New(n, d, srcNode, source.Config{Session: 0})
	tool := topodisc.NewTool(n, d, []int{0})
	alg := core.New(core.NewConfig(source.Rates(6)), rand.New(rand.NewSource(7)))
	ctrl := New(n, d, srcNode, tool, alg)
	slow := receiver.New(n, d, slowRx, receiver.Config{Session: 0, MaxLayers: 6, InitialLevel: 1, Controller: srcNode.ID})
	fast := receiver.New(n, d, fastRx, receiver.Config{Session: 0, MaxLayers: 6, InitialLevel: 1, Controller: srcNode.ID})
	src.Start()
	ctrl.Start()
	slow.Start()
	fast.Start()
	e.RunUntil(180 * sim.Second)
	if fast.Level() <= slow.Level() {
		t.Errorf("fast receiver at %d, slow at %d: heterogeneity collapsed", fast.Level(), slow.Level())
	}
	if slow.Level() < 1 || slow.Level() > 3 {
		t.Errorf("slow level = %d, want ~2", slow.Level())
	}
	if fast.Level() < 3 {
		t.Errorf("fast level = %d, want ~4", fast.Level())
	}
}

func TestControllerIgnoresUnregistered(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	// Start the controller and source, but never the receiver: no
	// registration, no reports, no tree -> no suggestions.
	for _, s := range w.srcs {
		s.Start()
	}
	w.ctrl.Start()
	w.e.RunUntil(20 * sim.Second)
	if w.ctrl.SuggestionsSent != 0 {
		t.Errorf("suggested to unregistered receivers: %d", w.ctrl.SuggestionsSent)
	}
}

func TestControllerStartStopIdempotent(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	w.ctrl.Start()
	w.ctrl.Start()
	w.e.RunUntil(10 * sim.Second)
	steps := w.ctrl.StepsRun
	w.ctrl.Stop()
	w.ctrl.Stop()
	w.e.RunUntil(20 * sim.Second)
	if w.ctrl.StepsRun != steps {
		t.Error("controller kept stepping after Stop")
	}
	if w.ctrl.Node() == nil || w.ctrl.Algorithm() == nil {
		t.Error("accessors broken")
	}
}

func TestControllerOnStepObserver(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	var calls int
	w.ctrl.OnStep = func(now sim.Time, in core.Input, out []core.Suggestion) { calls++ }
	w.start()
	w.e.RunUntil(10 * sim.Second)
	if calls == 0 {
		t.Error("OnStep never called")
	}
}

func TestControllerWorksWithStaleness(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	w.tool.Staleness = 4 * sim.Second
	w.start()
	w.e.RunUntil(180 * sim.Second)
	if got := w.rxs[0].Level(); got < 3 || got > 5 {
		t.Errorf("level with 4s staleness = %d, want ~4", got)
	}
}

func TestControllerVBRConverges(t *testing.T) {
	w := buildChainWorld(t, 500e3, 3)
	w.start()
	w.e.RunUntil(180 * sim.Second)
	if got := w.rxs[0].Level(); got < 2 || got > 6 {
		t.Errorf("VBR level = %d, want within [2,6]", got)
	}
}

func TestSnapshotToTopology(t *testing.T) {
	snap := &topodisc.Snapshot{
		Session:   3,
		Root:      0,
		Parent:    map[netsim.NodeID]netsim.NodeID{1: 0, 2: 1},
		Children:  map[netsim.NodeID][]netsim.NodeID{0: {1}, 1: {2}},
		MaxLayer:  map[netsim.NodeID]int{0: 2, 1: 2, 2: 2},
		Receivers: map[netsim.NodeID]bool{2: true},
	}
	topo := SnapshotToTopology(snap)
	if err := topo.Validate(); err != nil {
		t.Fatalf("converted topology invalid: %v", err)
	}
	if topo.Session != 3 || topo.Root != 0 || !topo.Receivers[2] {
		t.Errorf("conversion lost fields: %+v", topo)
	}
	// Mutating the copy must not touch the snapshot.
	topo.Children[0][0] = 9
	if snap.Children[0][0] != 1 {
		t.Error("conversion aliases the snapshot")
	}
}

func TestReportsImplyRegistration(t *testing.T) {
	// Even if the Register packet is lost, the first loss report registers
	// the receiver. Simulate by never sending Register: craft a receiver
	// with Controller set but call only the report path via a real run —
	// covered implicitly; here we inject a report directly.
	w := buildChainWorld(t, 500e3, 0)
	w.ctrl.Recv(&netsim.Packet{Payload: mustReport()})
	if w.ctrl.ReportsRecv != 1 {
		t.Fatal("report not consumed")
	}
	if len(w.ctrl.registered) != 1 {
		t.Error("report did not register the receiver")
	}
}

func mustReport() any {
	return report.LossReport{Node: 5, Session: 0, Level: 2, LossRate: 0.1, Bytes: 1000, Interval: sim.Second}
}

func TestStalenessDelaysReports(t *testing.T) {
	w := buildChainWorld(t, 10e6, 0)
	w.ctrl.Staleness = 5 * sim.Second
	w.start()
	// After 4 s the receiver has sent reports, but none is old enough for
	// the controller to have consumed it.
	w.e.RunUntil(4 * sim.Second)
	if w.ctrl.ReportsRecv != 0 {
		t.Fatalf("consumed %d reports before the staleness horizon", w.ctrl.ReportsRecv)
	}
	w.e.RunUntil(20 * sim.Second)
	if w.ctrl.ReportsRecv == 0 {
		t.Fatal("reports never consumed")
	}
}

func TestRegistrationExpiresAfterSilence(t *testing.T) {
	w := buildChainWorld(t, 10e6, 0)
	w.start()
	w.e.RunUntil(20 * sim.Second)
	if len(w.ctrl.registered) == 0 {
		t.Fatal("receiver never registered")
	}
	// Silence the receiver; after 5 intervals it must be forgotten and
	// suggestions must stop.
	w.rxs[0].Stop()
	w.e.RunUntil(60 * sim.Second)
	if len(w.ctrl.registered) != 0 {
		t.Errorf("ghost registrations: %d", len(w.ctrl.registered))
	}
	sent := w.ctrl.SuggestionsSent
	w.e.RunUntil(80 * sim.Second)
	if w.ctrl.SuggestionsSent != sent {
		t.Error("controller kept suggesting to a departed receiver")
	}
}

func TestNoResendAfterStop(t *testing.T) {
	// The mid-interval suggestion repeat is scheduled at each step; stopping
	// the controller between the step and the repeat must suppress it — a
	// stopped controller goes silent immediately.
	w := buildChainWorld(t, 500e3, 0)
	w.start()
	var sentAtStop int64
	// Steps run every 4 s; the step at t=20s schedules its repeat for 22s.
	w.e.Schedule(20*sim.Second+500*sim.Millisecond, func() {
		w.ctrl.Stop()
		sentAtStop = w.ctrl.SuggestionsSent
	})
	w.e.RunUntil(30 * sim.Second)
	if sentAtStop == 0 {
		t.Fatal("controller never sent a suggestion before the stop")
	}
	if w.ctrl.SuggestionsSent != sentAtStop {
		t.Errorf("suggestions after Stop: %d -> %d", sentAtStop, w.ctrl.SuggestionsSent)
	}
}

func TestNoResendToExpiredReceiver(t *testing.T) {
	// A receiver expiring between the step and the mid-interval repeat must
	// not be instructed by the repeat.
	w := buildChainWorld(t, 500e3, 0)
	w.start()
	var sentAtExpiry int64
	// Silence the receiver right after the 20s step, then — once its
	// in-flight reports have drained, so nothing re-registers it — drop the
	// registration before the 22s repeat, as the expiry sweep would.
	w.e.Schedule(20*sim.Second+200*sim.Millisecond, func() { w.rxs[0].Stop() })
	w.e.Schedule(21*sim.Second+500*sim.Millisecond, func() {
		k := receiverKey{0, w.rxs[0].Node().ID}
		delete(w.ctrl.registered, k)
		delete(w.ctrl.lastHeard, k)
		sentAtExpiry = w.ctrl.SuggestionsSent
	})
	w.e.RunUntil(23 * sim.Second) // past the repeat at 22s, before the next step
	if sentAtExpiry == 0 {
		t.Fatal("controller never sent a suggestion before the expiry")
	}
	if w.ctrl.SuggestionsSent != sentAtExpiry {
		t.Errorf("repeat sent to an expired receiver: %d -> %d", sentAtExpiry, w.ctrl.SuggestionsSent)
	}
}

func TestReRegisterResetsTrackedLevel(t *testing.T) {
	// A receiver that restarts re-registers at its new level; the controller
	// must not keep tracking the stale one until the next loss report.
	w := buildChainWorld(t, 500e3, 0)
	k := receiverKey{0, 5}
	w.ctrl.Recv(&netsim.Packet{Payload: report.Register{Node: 5, Session: 0, Level: 2}})
	w.ctrl.Recv(&netsim.Packet{Payload: report.LossReport{Node: 5, Session: 0, Level: 3, LossRate: 0, Bytes: 100, Interval: sim.Second}})
	if w.ctrl.acc[k].level != 3 {
		t.Fatalf("accumulator level = %d after report, want 3", w.ctrl.acc[k].level)
	}
	w.ctrl.Recv(&netsim.Packet{Payload: report.Register{Node: 5, Session: 0, Level: 5}})
	if w.ctrl.acc[k].level != 5 {
		t.Errorf("accumulator level = %d after re-register, want 5", w.ctrl.acc[k].level)
	}
}

func TestStoppedReceiverIgnoresSuggestions(t *testing.T) {
	w := buildChainWorld(t, 10e6, 0)
	w.start()
	w.e.RunUntil(10 * sim.Second)
	rx := w.rxs[0]
	rx.Stop()
	if rx.Level() != 0 {
		t.Fatalf("level %d after Stop", rx.Level())
	}
	// Hand-deliver a suggestion: it must be ignored.
	rx.Recv(report.NewControlPacket(w.ctrl.Node().ID, rx.Node().ID, report.SuggestionSize, w.e.Now(),
		report.Suggestion{Node: rx.Node().ID, Session: 0, Level: 4}))
	w.e.RunUntil(15 * sim.Second)
	if rx.Level() != 0 {
		t.Errorf("stopped receiver rejoined to level %d", rx.Level())
	}
}

func TestNoResendToReRegisteredReceiver(t *testing.T) {
	// A receiver that expires and RE-registers between the step and the
	// mid-interval repeat is a new incarnation: the pending repeat was
	// computed from the old incarnation's reports and must not fire. A
	// plain "is it registered?" check cannot see this — the key is present
	// again — which is exactly what the registration generation pins.
	w := buildChainWorld(t, 500e3, 0)
	w.start()
	var sentAtSwap int64
	w.e.Schedule(20*sim.Second+200*sim.Millisecond, func() { w.rxs[0].Stop() })
	w.e.Schedule(21*sim.Second+500*sim.Millisecond, func() {
		k := receiverKey{0, w.rxs[0].Node().ID}
		// Expiry sweep drops the old incarnation...
		delete(w.ctrl.registered, k)
		delete(w.ctrl.lastHeard, k)
		delete(w.ctrl.acc, k)
		delete(w.ctrl.last, k)
		// ...and a restarted receiver on the same node registers at once,
		// before the 22s repeat fires.
		w.ctrl.Recv(&netsim.Packet{Payload: report.Register{
			Node: w.rxs[0].Node().ID, Session: 0, Level: 1}})
		sentAtSwap = w.ctrl.SuggestionsSent
	})
	w.e.RunUntil(23 * sim.Second) // past the repeat at 22s, before the next step
	if sentAtSwap == 0 {
		t.Fatal("controller never sent a suggestion before the swap")
	}
	if w.ctrl.SuggestionsSent != sentAtSwap {
		t.Errorf("repeat sent to a re-registered receiver: %d -> %d", sentAtSwap, w.ctrl.SuggestionsSent)
	}
}

func TestDepartThenReRegisterGetsFreshLevel(t *testing.T) {
	// The churn lifecycle at the controller: register → deregister →
	// re-register. The deregistration must clear all four per-receiver
	// tables, and the re-registration is a fresh incarnation — it opens a
	// new generation and tracks the registered level, not the stale level
	// the departed incarnation last reported.
	w := buildChainWorld(t, 500e3, 0)
	k := receiverKey{0, 5}
	w.ctrl.Recv(&netsim.Packet{Payload: report.Register{Node: 5, Session: 0, Level: 2}})
	w.ctrl.Recv(&netsim.Packet{Payload: report.LossReport{Node: 5, Session: 0, Level: 4, LossRate: 0, Bytes: 100, Interval: sim.Second}})
	gen := w.ctrl.registered[k]

	w.ctrl.Recv(&netsim.Packet{Payload: report.Deregister{Node: 5, Session: 0}})
	if w.ctrl.DeregistersRecv != 1 {
		t.Fatalf("DeregistersRecv = %d, want 1", w.ctrl.DeregistersRecv)
	}
	if _, ok := w.ctrl.registered[k]; ok {
		t.Error("receiver still registered after Deregister")
	}
	if _, ok := w.ctrl.acc[k]; ok {
		t.Error("accumulator survived the Deregister")
	}
	if _, ok := w.ctrl.last[k]; ok {
		t.Error("stale aggregate survived the Deregister")
	}
	if got := w.ctrl.PassDepartures(0); got != 1 {
		t.Errorf("PassDepartures(0) = %d, want 1", got)
	}
	if got := w.ctrl.DepartedSessions(); len(got) != 1 || got[0] != 0 {
		t.Errorf("DepartedSessions() = %v, want [0]", got)
	}
	// Deregistering an unknown receiver is a no-op, not a double count.
	w.ctrl.Recv(&netsim.Packet{Payload: report.Deregister{Node: 5, Session: 0}})
	if got := w.ctrl.PassDepartures(0); got != 1 {
		t.Errorf("PassDepartures(0) after duplicate Deregister = %d, want 1", got)
	}

	w.ctrl.Recv(&netsim.Packet{Payload: report.Register{Node: 5, Session: 0, Level: 1}})
	if got := w.ctrl.acc[k].level; got != 1 {
		t.Errorf("accumulator level after re-register = %d, want the fresh 1, not the stale 4", got)
	}
	if w.ctrl.registered[k] == gen {
		t.Error("re-register after Deregister did not open a new generation")
	}
}

func TestDepartSuppressesPendingResend(t *testing.T) {
	// End-to-end: a receiver that Departs between the step and the
	// mid-interval repeat must not be instructed by the repeat — the
	// Deregister packet drops the registration, and the generation check
	// skips the pending resend. Same timing as TestNoResendToExpiredReceiver
	// but through the real lifecycle instead of reaching into the tables.
	w := buildChainWorld(t, 500e3, 0)
	w.start()
	var sentAtDepart int64
	// Steps run every 4 s; the step at t=20s schedules its repeat for 22s.
	// Depart at 20.2s: the Deregister crosses two 200ms hops and lands well
	// before the sample at 21.5s.
	w.e.Schedule(20*sim.Second+200*sim.Millisecond, func() { w.rxs[0].Depart() })
	w.e.Schedule(21*sim.Second+500*sim.Millisecond, func() {
		sentAtDepart = w.ctrl.SuggestionsSent
	})
	w.e.RunUntil(23 * sim.Second) // past the repeat at 22s, before the next step
	if sentAtDepart == 0 {
		t.Fatal("controller never sent a suggestion before the departure")
	}
	if w.ctrl.DeregistersRecv != 1 {
		t.Fatalf("DeregistersRecv = %d, want 1", w.ctrl.DeregistersRecv)
	}
	if got := len(w.ctrl.RegisteredReceivers()); got != 0 {
		t.Errorf("%d receivers still registered after Depart", got)
	}
	if w.ctrl.SuggestionsSent != sentAtDepart {
		t.Errorf("repeat sent to a departed receiver: %d -> %d", sentAtDepart, w.ctrl.SuggestionsSent)
	}
}

func TestLossReportDoesNotBumpGeneration(t *testing.T) {
	// Reports from a live receiver must keep the registration generation:
	// bumping it would cancel every pending mid-interval repeat.
	w := buildChainWorld(t, 500e3, 0)
	k := receiverKey{0, 5}
	w.ctrl.Recv(&netsim.Packet{Payload: report.Register{Node: 5, Session: 0, Level: 2}})
	gen := w.ctrl.registered[k]
	w.ctrl.Recv(&netsim.Packet{Payload: report.LossReport{Node: 5, Session: 0, Level: 2, Interval: sim.Second}})
	if w.ctrl.registered[k] != gen {
		t.Errorf("loss report changed generation %d -> %d", gen, w.ctrl.registered[k])
	}
	w.ctrl.Recv(&netsim.Packet{Payload: report.Register{Node: 5, Session: 0, Level: 3}})
	if w.ctrl.registered[k] == gen {
		t.Error("re-register did not open a new generation")
	}
}

func TestControllerObsAudit(t *testing.T) {
	w := buildChainWorld(t, 500e3, 0)
	o := obs.New(obs.Options{})
	w.ctrl.SetObs(o)
	w.start()
	w.e.RunUntil(30 * sim.Second)

	if got, steps := o.Passes.Value(), w.ctrl.StepsRun; got != steps {
		t.Errorf("obs passes = %d, StepsRun = %d", got, steps)
	}
	if o.PassEvents.Count() != o.Passes.Value() {
		t.Errorf("pass-events observations = %d, passes = %d", o.PassEvents.Count(), o.Passes.Value())
	}
	passes := o.Audit.Passes()
	if int64(len(passes)) != o.Audit.Total() || len(passes) == 0 {
		t.Fatalf("audit retained %d of %d passes", len(passes), o.Audit.Total())
	}
	// Once the receiver is registered and reporting, every pass must audit
	// it with its session tree evidence and a prescription.
	last := passes[len(passes)-1]
	if len(last.Receivers) != 1 {
		t.Fatalf("audit receivers = %+v", last.Receivers)
	}
	ent := last.Receivers[0]
	if ent.Node != int(w.rxs[0].Node().ID) || ent.Session != 0 {
		t.Errorf("audit entry identity = %+v", ent)
	}
	if !ent.OnTree || ent.Parent < 0 {
		t.Errorf("audit entry lacks topology evidence: %+v", ent)
	}
	if ent.Prescribed < 0 {
		t.Errorf("audit entry lacks prescription: %+v", ent)
	}
	if ent.Stale {
		t.Errorf("steadily reporting receiver marked stale: %+v", ent)
	}
	// Pass events land in the flight recorder with the pass number.
	var passEvents int
	for _, ev := range o.Rec.Events() {
		if ev.Kind == obs.EvPass {
			passEvents++
		}
	}
	if passEvents == 0 {
		t.Error("no EvPass events in the flight recorder")
	}
}
