// Package runner executes experiment Specs on a bounded worker pool.
//
// Each Spec owns a fresh engine, network and RNG (the experiments layer's
// share-nothing contract), so runs fan out across goroutines freely; the
// runner's only job is scheduling, containment and order. Results come back
// indexed by input position, so output is deterministic regardless of
// completion order — `-parallel 8` and `-parallel 1` render byte-identical
// reports (internal/runner's determinism test proves it).
package runner

import (
	"runtime"
	"sync"
	"time"

	"toposense/internal/experiments"
)

// Options configures a Run.
type Options struct {
	// Parallelism is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	// It is clamped to the number of specs.
	Parallelism int
	// Timeout is the per-run wall-clock budget; 0 = none. A run that
	// exceeds it yields a failed Result (Err "timeout after ..."), not a
	// hung pool. Enforcement is cooperative — see experiments.Meter.
	Timeout time.Duration
	// OnProgress, when set, is called after every completed run with the
	// completion count so far, the total, and that run's Result. Calls are
	// serialized; done goes 1..total monotonically.
	OnProgress func(done, total int, r experiments.Result)
}

// Workers resolves the pool size Run will use for the given Parallelism
// setting and spec count: <= 0 means runtime.GOMAXPROCS(0), clamped to the
// spec count, minimum 1. Exported so callers can record the size actually
// used (e.g. in a JSON export) rather than the raw flag value.
func Workers(parallelism, nspecs int) int {
	n := parallelism
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > nspecs {
		n = nspecs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes every spec and returns Results in spec order. Worker
// goroutines pull spec indices from a shared channel; a panicking body is
// contained by Spec.Execute and becomes a failed Result, so one crashed run
// never takes down the process or the rest of the sweep.
func Run(specs []experiments.Spec, opts Options) []experiments.Result {
	n := Workers(opts.Parallelism, len(specs))

	results := make([]experiments.Result, len(specs))
	indices := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				r := specs[i].Execute(opts.Timeout)
				results[i] = r
				mu.Lock()
				done++
				if opts.OnProgress != nil {
					opts.OnProgress(done, len(specs), r)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range specs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return results
}
