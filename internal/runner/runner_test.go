package runner

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"toposense/internal/experiments"
	"toposense/internal/sim"
)

// mixedSpecs is a small cross-section of the real sweeps, short enough for
// a unit test but exercising several world shapes.
func mixedSpecs() []experiments.Spec {
	short := 60 * sim.Second
	cbr := []experiments.Traffic{experiments.CBR}
	var specs []experiments.Spec
	specs = append(specs, experiments.Fig6Specs(experiments.Fig6Config{
		Seed: 1, Duration: short, PerSet: []int{1, 2}, Traffic: cbr,
	})...)
	specs = append(specs, experiments.Fig7Specs(experiments.Fig7Config{
		Seed: 1, Duration: short, Sessions: []int{2}, Traffic: cbr,
	})...)
	specs = append(specs, experiments.Fig8Specs(experiments.Fig8Config{
		Seed: 1, Duration: short, Sessions: []int{2}, Traffic: cbr,
	})...)
	specs = append(specs, experiments.Fig10Specs(experiments.Fig10Config{
		Seed: 1, Duration: short, PerSet: []int{1}, Staleness: []sim.Time{0, 4 * sim.Second},
	})...)
	return specs
}

// TestParallelMatchesSerial is the determinism guarantee: the same specs
// executed serially and on a parallel pool must produce identical rows,
// identical event/packet counts, and byte-identical rendered tables.
func TestParallelMatchesSerial(t *testing.T) {
	serial := experiments.ExecuteAll(mixedSpecs())
	parallel := Run(mixedSpecs(), Options{Parallelism: 8})

	if len(serial) != len(parallel) {
		t.Fatalf("result count: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name {
			t.Fatalf("result %d out of order: serial %q, parallel %q", i, s.Name, p.Name)
		}
		if s.Err != p.Err {
			t.Errorf("%s: err mismatch: serial %q, parallel %q", s.Name, s.Err, p.Err)
		}
		if !reflect.DeepEqual(s.Rows, p.Rows) {
			t.Errorf("%s: rows differ:\nserial:   %#v\nparallel: %#v", s.Name, s.Rows, p.Rows)
		}
		if s.Events != p.Events || s.Packets != p.Packets {
			t.Errorf("%s: metadata differs: serial %d events/%d packets, parallel %d/%d",
				s.Name, s.Events, s.Packets, p.Events, p.Packets)
		}
	}

	// Byte-identical rendering, the property cmd/topobench relies on.
	render := func(results []experiments.Result) string {
		rows, err := experiments.GatherRows[experiments.StabilityRow](results[:2])
		if err != nil {
			t.Fatal(err)
		}
		return experiments.StabilityTable("t", "x", rows).String()
	}
	if a, b := render(serial), render(parallel); a != b {
		t.Errorf("rendered tables differ:\nserial:\n%s\nparallel:\n%s", a, b)
	}
}

// TestPanicContainment proves one crashing run fails alone: its Result
// carries the panic, and its neighbours still produce rows.
func TestPanicContainment(t *testing.T) {
	good := func(tag string) experiments.Spec {
		return experiments.NewSpec("test", tag, 1, sim.Second,
			func(m *experiments.Meter) (any, error) { return []string{tag}, nil })
	}
	bad := experiments.NewSpec("test", "bad", 1, sim.Second,
		func(m *experiments.Meter) (any, error) { panic("boom") })

	results := Run([]experiments.Spec{good("a"), bad, good("b")}, Options{Parallelism: 2})
	if !results[1].Failed() || !strings.Contains(results[1].Err, "panic") || !strings.Contains(results[1].Err, "boom") {
		t.Errorf("panicking run: want panic error, got %+v", results[1])
	}
	for _, i := range []int{0, 2} {
		if results[i].Failed() {
			t.Errorf("neighbour %d failed: %s", i, results[i].Err)
		}
		if rows, ok := results[i].Rows.([]string); !ok || len(rows) != 1 {
			t.Errorf("neighbour %d lost its rows: %#v", i, results[i].Rows)
		}
	}
}

// TestTimeout proves a run that burns wall-clock time while simulated time
// advances is stopped and reported as failed, not hung.
func TestTimeout(t *testing.T) {
	slow := experiments.NewSpec("test", "slow", 1, 3600*sim.Second,
		func(m *experiments.Meter) (any, error) {
			e := sim.NewEngine(1)
			// Each simulated second costs ~50 ms of wall clock, so the
			// full hour would take minutes; the watchdog must cut in.
			e.Every(100*sim.Millisecond, func() { time.Sleep(5 * time.Millisecond) })
			m.Observe(e, nil)
			e.RunUntil(3600 * sim.Second)
			return []string{"done"}, nil
		})

	start := time.Now()
	results := Run([]experiments.Spec{slow}, Options{Parallelism: 1, Timeout: 60 * time.Millisecond})
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("timeout did not cut the run short (took %v)", took)
	}
	if !results[0].Failed() || !strings.Contains(results[0].Err, "timeout") {
		t.Errorf("want timeout error, got %+v", results[0])
	}
	if !strings.Contains(results[0].Err, "60ms") {
		t.Errorf("timeout error should name the budget: %q", results[0].Err)
	}
}

// TestResultOrdering proves results come back in spec order even when
// completion order is scrambled by sleeps.
func TestResultOrdering(t *testing.T) {
	var specs []experiments.Spec
	for i := 0; i < 8; i++ {
		i := i
		specs = append(specs, experiments.NewSpec("test", fmt.Sprintf("spec%d", i), 1, sim.Second,
			func(m *experiments.Meter) (any, error) {
				// Earlier specs sleep longer, so completion order is
				// roughly reversed.
				time.Sleep(time.Duration(8-i) * 5 * time.Millisecond)
				return []int{i}, nil
			}))
	}
	results := Run(specs, Options{Parallelism: 4})
	for i, r := range results {
		if rows := r.Rows.([]int); rows[0] != i {
			t.Errorf("result %d holds rows of spec %d", i, rows[0])
		}
	}
}

// TestProgress proves the callback sees every completion exactly once with
// a monotonically increasing count.
func TestProgress(t *testing.T) {
	var specs []experiments.Spec
	for i := 0; i < 6; i++ {
		specs = append(specs, experiments.NewSpec("test", fmt.Sprintf("spec%d", i), 1, sim.Second,
			func(m *experiments.Meter) (any, error) { return nil, nil }))
	}
	var calls []int
	Run(specs, Options{Parallelism: 3, OnProgress: func(done, total int, r experiments.Result) {
		if total != len(specs) {
			t.Errorf("total = %d, want %d", total, len(specs))
		}
		calls = append(calls, done) // safe: calls are serialized
	}})
	if len(calls) != len(specs) {
		t.Fatalf("progress called %d times, want %d", len(calls), len(specs))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Errorf("call %d reported done=%d, want %d", i, done, i+1)
		}
	}
}

// TestParallelismDefaults pins the clamping rules.
func TestParallelismDefaults(t *testing.T) {
	// Zero specs must not deadlock or panic, whatever the parallelism.
	if out := Run(nil, Options{Parallelism: 4}); len(out) != 0 {
		t.Errorf("empty input produced %d results", len(out))
	}
	// More workers than specs is fine.
	one := []experiments.Spec{experiments.NewSpec("test", "only", 1, sim.Second,
		func(m *experiments.Meter) (any, error) { return []int{1}, nil })}
	if out := Run(one, Options{Parallelism: 64}); out[0].Failed() {
		t.Errorf("single spec failed: %s", out[0].Err)
	}
	// Workers mirrors Run's resolution: default, clamp-to-specs, minimum 1.
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(64, 3); got != 3 {
		t.Errorf("Workers(64, 3) = %d, want 3", got)
	}
	if got := Workers(0, 0); got != 1 {
		t.Errorf("Workers(0, 0) = %d, want 1", got)
	}
}
