// Package topodisc models the multicast topology discovery tool the paper
// assumes (an mtrace/MHealth-class tool). It periodically snapshots each
// session's distribution tree — the overlay of the per-layer multicast trees
// — from the routing state, and serves those snapshots to the controller
// with a configurable staleness lag. Staleness is the experimental variable
// of the paper's Figure 10: the controller acts on a picture of the network
// that is Staleness seconds old.
package topodisc

import (
	"sort"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// DefaultPeriod is how often the tool re-discovers each tree.
const DefaultPeriod = 1 * sim.Second

// Snapshot is one session's discovered topology at one instant. Because
// layers are cumulative, the session topology equals the base layer's tree;
// MaxLayer records the highest layer flowing to each on-tree node.
type Snapshot struct {
	At      sim.Time
	Session int
	Root    netsim.NodeID
	// Parent maps each on-tree node (except the root) to its parent.
	Parent map[netsim.NodeID]netsim.NodeID
	// Children maps each on-tree node to its children, sorted.
	Children map[netsim.NodeID][]netsim.NodeID
	// MaxLayer is the highest layer whose tree includes the node, i.e. the
	// layers traversing the link from its parent.
	MaxLayer map[netsim.NodeID]int
	// Receivers marks nodes with locally attached members of the base layer.
	Receivers map[netsim.NodeID]bool
}

// Nodes returns all on-tree nodes (root included), sorted by ID.
func (s *Snapshot) Nodes() []netsim.NodeID {
	out := []netsim.NodeID{s.Root}
	for n := range s.Parent {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns the on-tree nodes with no children, sorted by ID.
func (s *Snapshot) Leaves() []netsim.NodeID {
	var out []netsim.NodeID
	for _, n := range s.Nodes() {
		if len(s.Children[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Empty reports whether the tree has no receivers at all.
func (s *Snapshot) Empty() bool { return len(s.Parent) == 0 && len(s.Receivers) == 0 }

// Tool periodically discovers session topologies and serves them with a
// staleness lag.
type Tool struct {
	net    *netsim.Network
	domain *mcast.Domain

	// Staleness is the age of the snapshot served by Discover: the newest
	// snapshot taken at or before now-Staleness is returned.
	Staleness sim.Time
	// Period is the discovery interval.
	Period sim.Time
	// Scope restricts discovery to one administrative domain: only nodes
	// in the set are visible, and the discovered tree is rooted at the
	// domain's ingress (the first scoped node on the path down from the
	// source). nil means the whole network — a single global domain.
	// This is the paper's multi-controller architecture (its Figure 3):
	// "Since the controller agent is concerned only with the topology in
	// its domain, discovering the local tree topology efficiently may be
	// more tractable than discovering the entire tree topology."
	Scope map[netsim.NodeID]bool

	// ProbeMode switches discovery from an instantaneous oracle read of
	// routing state to an mtrace-style trace: one query per receiver walks
	// hop-by-hop up the tree, reading each router's state when the probe
	// visits it (one link propagation delay per hop), and the snapshot
	// completes only when the slowest trace returns. Snapshots are then
	// inherently old ("discovering the tree topology is dependent on this
	// latency") and can be torn — different hops observed at different
	// instants — which is exactly what a real mtrace/MHealth deployment
	// produces. ProbePackets counts the control messages this costs.
	ProbeMode    bool
	ProbePackets int64

	sessions []int
	history  map[int][]*Snapshot
	ticker   *sim.Ticker

	// pendingTraces counts probe traces launched but not yet finished;
	// it must drain to zero once the engine goes idle (leak check).
	pendingTraces int

	// Discoveries counts snapshot operations (control-plane load).
	Discoveries int64
}

// NewTool creates a discovery tool for the given sessions.
func NewTool(net *netsim.Network, domain *mcast.Domain, sessions []int) *Tool {
	t := &Tool{
		net:      net,
		domain:   domain,
		Period:   DefaultPeriod,
		sessions: append([]int(nil), sessions...),
		history:  make(map[int][]*Snapshot),
	}
	return t
}

// Start begins periodic discovery. An immediate first snapshot is taken so
// Discover works from time zero.
func (t *Tool) Start() {
	if t.ticker != nil {
		return
	}
	t.snapshotAll()
	// Discovery reads forwarding state across every node, so on a
	// partitioned network it runs stop-the-world at window barriers.
	t.ticker = sim.Every(sim.GlobalOf(t.net.Engine()), t.Period, t.snapshotAll)
}

// Stop halts periodic discovery.
func (t *Tool) Stop() {
	if t.ticker != nil {
		t.ticker.Stop()
		t.ticker = nil
	}
}

func (t *Tool) snapshotAll() {
	for _, s := range t.sessions {
		if t.ProbeMode {
			session := s
			t.probeSnapshot(session, func(snap *Snapshot) { t.record(session, snap) })
			continue
		}
		t.record(s, t.SnapshotNow(s))
	}
}

// record inserts a completed snapshot into history, ordered by At. Probe
// rounds complete out of order when a slow round outlives a faster later
// one, and Discover's scan (and the trim below) depend on the ordering.
// History older than the staleness horizon relative to the newest held
// snapshot (with a generous margin of 2x plus a few periods) can never be
// served again and is trimmed.
func (t *Tool) record(session int, snap *Snapshot) {
	h := append(t.history[session], snap)
	for i := len(h) - 1; i > 0 && h[i-1].At > h[i].At; i-- {
		h[i-1], h[i] = h[i], h[i-1]
	}
	horizon := t.Staleness*2 + 5*t.Period
	newest := h[len(h)-1].At
	cut := 0
	for cut < len(h)-1 && newest-h[cut].At > horizon {
		cut++
	}
	t.history[session] = h[cut:]
}

// SnapshotNow discovers the current topology of a session directly from
// routing state (no staleness). It walks the base-layer tree from the
// source and overlays the higher layers' trees to get per-node MaxLayer.
func (t *Tool) SnapshotNow(session int) *Snapshot {
	t.Discoveries++
	e := t.net.Engine()
	base := t.domain.GroupOf(session, 1)
	snap := &Snapshot{
		At:        e.Now(),
		Session:   session,
		Root:      netsim.NoNode,
		Parent:    make(map[netsim.NodeID]netsim.NodeID),
		Children:  make(map[netsim.NodeID][]netsim.NodeID),
		MaxLayer:  make(map[netsim.NodeID]int),
		Receivers: make(map[netsim.NodeID]bool),
	}
	if base == netsim.NoGroup {
		return snap
	}
	source := t.domain.Source(base)
	root := source
	if t.Scope != nil && !t.Scope[source] {
		// Find the domain ingress: descend the tree until a scoped node
		// appears. A domain is assumed contiguous with a single ingress
		// per session (the shape of real administrative domains); if the
		// session does not enter the domain, the snapshot stays empty.
		root = t.findIngress(session, source)
		if root == netsim.NoNode {
			return snap
		}
	}
	snap.Root = root
	// BFS down the base-layer tree, confined to the scope.
	queue := []netsim.NodeID{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		snap.MaxLayer[n] = t.maxLayerAt(session, n)
		if t.domain.HasLocalMembers(n, base) {
			snap.Receivers[n] = true
		}
		var kids []netsim.NodeID
		for _, c := range t.domain.ForwardingChildren(n, base) {
			if t.Scope == nil || t.Scope[c] {
				kids = append(kids, c)
			}
		}
		snap.Children[n] = kids
		for _, c := range kids {
			snap.Parent[c] = n
			queue = append(queue, c)
		}
	}
	return snap
}

// findIngress walks the base-layer tree from `from` and returns the first
// scoped node, breadth-first, or NoNode.
func (t *Tool) findIngress(session int, from netsim.NodeID) netsim.NodeID {
	base := t.domain.GroupOf(session, 1)
	queue := []netsim.NodeID{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if t.Scope[n] {
			return n
		}
		queue = append(queue, t.domain.ForwardingChildren(n, base)...)
	}
	return netsim.NoNode
}

// maxLayerAt returns the highest layer whose tree covers node n.
func (t *Tool) maxLayerAt(session int, n netsim.NodeID) int {
	max := 0
	for l := 1; ; l++ {
		g := t.domain.GroupOf(session, l)
		if g == netsim.NoGroup {
			break
		}
		if t.domain.OnTree(n, g) || t.domain.HasLocalMembers(n, g) {
			max = l
		}
	}
	return max
}

// Discover returns the session topology as the controller sees it: the
// newest snapshot taken at or before now-Staleness. With Staleness 0 this
// is simply the latest snapshot. Returns nil when no snapshot is old
// enough yet (early in a run with a large staleness).
func (t *Tool) Discover(session int) *Snapshot {
	h := t.history[session]
	if len(h) == 0 {
		return nil
	}
	cutoff := t.net.Engine().Now() - t.Staleness
	var best *Snapshot
	for _, s := range h {
		if s.At <= cutoff {
			best = s
		} else {
			break
		}
	}
	return best
}

// Sessions returns the sessions the tool tracks.
func (t *Tool) Sessions() []int { return t.sessions }

// PendingTraces returns how many probe traces are still in flight. Always
// zero in oracle mode; in probe mode it must return to zero when the
// engine drains, or a trace leaked.
func (t *Tool) PendingTraces() int { return t.pendingTraces }
