package topodisc

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// TestRecordKeepsHistorySortedByAt is the regression test for the
// completion-order bug: a slow probe round that outlives a faster later
// round used to land *after* it in history, and Discover's early break then
// returned nothing (or the wrong snapshot) even though a perfectly
// servable snapshot existed.
func TestRecordKeepsHistorySortedByAt(t *testing.T) {
	f := newFixture(t)
	f.tool.Staleness = 4 * sim.Second
	f.tool.Period = sim.Second

	// Completion order: the round stamped At=5s (slow, started earlier,
	// finished late) is recorded after the round stamped At=3s... and a
	// fast round stamped At=5s arrives before the slow one stamped At=3s.
	f.tool.record(0, &Snapshot{At: 5 * sim.Second, Session: 0})
	f.tool.record(0, &Snapshot{At: 3 * sim.Second, Session: 0})

	h := f.tool.history[0]
	if len(h) != 2 || h[0].At != 3*sim.Second || h[1].At != 5*sim.Second {
		t.Fatalf("history not sorted by At: %v, %v", h[0].At, h[1].At)
	}

	// At now=8s with staleness 4s the cutoff is 4s: only the At=3s
	// snapshot may be served. Before the fix the unsorted scan hit the
	// At=5s entry first and bailed out with nil.
	f.e.RunUntil(8 * sim.Second)
	got := f.tool.Discover(0)
	if got == nil {
		t.Fatal("Discover returned nil despite a servable snapshot")
	}
	if got.At != 3*sim.Second {
		t.Errorf("Discover returned snapshot At=%v, want 3s", got.At)
	}
}

// TestRecordTrimsAgainstNewest checks the trim horizon is measured from the
// newest snapshot held, not from whichever snapshot happened to complete
// last.
func TestRecordTrimsAgainstNewest(t *testing.T) {
	f := newFixture(t)
	f.tool.Staleness = 0
	f.tool.Period = sim.Second // horizon = 5s

	f.tool.record(0, &Snapshot{At: 1 * sim.Second})
	f.tool.record(0, &Snapshot{At: 10 * sim.Second})
	// A stale straggler completes after the 10s round: it must not be
	// allowed to both enter history out of order and reprieve the 1s entry.
	f.tool.record(0, &Snapshot{At: 9 * sim.Second})
	for _, s := range f.tool.history[0] {
		if s.At == 1*sim.Second {
			t.Fatalf("entry beyond the horizon survived: %v", historyAts(f))
		}
	}
}

func historyAts(f *fixture) []sim.Time {
	var out []sim.Time
	for _, s := range f.tool.history[0] {
		out = append(out, s.At)
	}
	return out
}

// TestProbeTraceSurvivesMidTraceReroute fails the traced path while probe
// traces are walking it: the traces must complete against the rerouted
// tables — possibly recording torn edges, which rebuildChildren reconciles
// — without panicking or leaking pending traces.
func TestProbeTraceSurvivesMidTraceReroute(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	src := n.AddNode("src")
	x := n.AddNode("x")
	y := n.AddNode("y")
	rx := n.AddNode("rx")
	cfg := netsim.LinkConfig{Bandwidth: 10e6, Delay: 10 * sim.Millisecond}
	n.Connect(src, x, cfg)
	n.Connect(src, y, cfg)
	n.Connect(x, rx, cfg)
	n.Connect(y, rx, cfg)
	d := newDomainWithGroups(n, src)
	m := &member{}
	d.Join(rx.ID, d.GroupOf(0, 1), m)
	e.RunUntil(100 * sim.Millisecond)

	tool := NewTool(n, d, []int{0})
	tool.ProbeMode = true
	tool.Period = 10 * sim.Second
	// Launch one round, then cut the path it is walking after the first
	// hop is in flight.
	e.Schedule(0, tool.Start)
	e.Schedule(5*sim.Millisecond, func() {
		n.Node(src.ID).LinkTo(x.ID).SetDown()
		n.Node(x.ID).LinkTo(src.ID).SetDown()
	})
	e.RunUntil(5 * sim.Second)

	if got := tool.PendingTraces(); got != 0 {
		t.Fatalf("%d probe traces leaked across the reroute", got)
	}
	s := tool.Discover(0)
	if s == nil || s.Empty() {
		t.Fatal("no snapshot recorded after the reroute")
	}
	if s.Root != src.ID {
		t.Errorf("trace did not reach the source over the rerouted path: root %d", s.Root)
	}
	if s.Parent[rx.ID] != y.ID {
		t.Errorf("rerouted edge not recorded: Parent[rx] = %d, want y %d", s.Parent[rx.ID], y.ID)
	}
}

// TestProbeTraceOutageRootsAtCut cuts the receiver off entirely mid-round:
// the trace must terminate at the break instead of leaking.
func TestProbeTraceOutageRootsAtCut(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	f.tool.ProbeMode = true
	f.tool.Period = 10 * sim.Second
	f.e.Schedule(0, f.tool.Start)
	f.e.Schedule(5*sim.Millisecond, func() {
		// Sever r1-r2 in both directions: leafA/leafB traces in flight
		// toward r2 find no route onward; leafC's completes normally.
		f.n.Node(f.r1.ID).LinkTo(f.r2.ID).SetDown()
		f.n.Node(f.r2.ID).LinkTo(f.r1.ID).SetDown()
	})
	f.e.RunUntil(5 * sim.Second)
	if got := f.tool.PendingTraces(); got != 0 {
		t.Fatalf("%d probe traces leaked across the outage", got)
	}
	if s := f.tool.Discover(0); s == nil {
		t.Fatal("no snapshot recorded despite all traces finishing")
	}
}
