package topodisc

import (
	"testing"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

func TestProbeDiscoveryMatchesOracleWhenQuiet(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	oracle := f.tool.SnapshotNow(0)

	f.tool.ProbeMode = true
	f.tool.Period = sim.Second
	f.tool.Start()
	// One period plus the longest trace (3 hops x 10 ms, both ways).
	f.e.RunUntil(2 * sim.Second)
	got := f.tool.Discover(0)
	if got == nil || got.Empty() {
		t.Fatal("probe discovery produced nothing")
	}
	if got.Root != oracle.Root {
		t.Errorf("root %d, oracle %d", got.Root, oracle.Root)
	}
	for child, parent := range oracle.Parent {
		if got.Parent[child] != parent {
			t.Errorf("edge %d->%d missing or wrong (got parent %d)", parent, child, got.Parent[child])
		}
	}
	for n, ml := range oracle.MaxLayer {
		if got.MaxLayer[n] != ml {
			t.Errorf("MaxLayer[%d] = %d, oracle %d", n, got.MaxLayer[n], ml)
		}
	}
	for r := range oracle.Receivers {
		if !got.Receivers[r] {
			t.Errorf("receiver %d missing", r)
		}
	}
	if f.tool.ProbePackets == 0 {
		t.Error("no probe packets counted")
	}
}

func TestProbeDiscoveryTakesTime(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	f.tool.ProbeMode = true
	f.tool.Period = sim.Second
	f.tool.Start()
	// The first snapshot is initiated at t=0 (Start) but completes only
	// after the traces walk their hops; its At stamp reflects that.
	f.e.RunUntil(500 * sim.Millisecond)
	s := f.tool.Discover(0)
	if s == nil || s.Empty() {
		t.Fatal("no snapshot after traces completed")
	}
	if s.At == 0 {
		t.Error("probe snapshot claims to be instantaneous")
	}
	// leafA is 3 hops from the source at 10 ms per hop.
	if s.At < 30*sim.Millisecond {
		t.Errorf("snapshot completed impossibly fast: %v", s.At)
	}
}

func TestProbeDiscoveryEmptySession(t *testing.T) {
	f := newFixture(t)
	f.tool.ProbeMode = true
	f.tool.Period = sim.Second
	f.tool.Start()
	f.e.RunUntil(2 * sim.Second)
	if s := f.tool.Discover(0); s != nil && !s.Empty() {
		t.Errorf("probe snapshot of an empty session: %+v", s)
	}
	// Unregistered sessions are also safe.
	done := false
	f.tool.probeSnapshot(42, func(s *Snapshot) { done = !s.Empty() })
	if done {
		t.Error("unregistered session produced a tree")
	}
}

func TestProbeDiscoveryScoped(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	f.tool.ProbeMode = true
	f.tool.Scope = map[netsim.NodeID]bool{
		f.r2.ID: true, f.leafA.ID: true, f.leafB.ID: true,
	}
	f.tool.Period = sim.Second
	f.tool.Start()
	f.e.RunUntil(2 * sim.Second)
	s := f.tool.Discover(0)
	if s == nil || s.Empty() {
		t.Fatal("scoped probe discovery produced nothing")
	}
	if s.Root != f.r2.ID {
		t.Errorf("scoped probe root = %d, want r2 %d", s.Root, f.r2.ID)
	}
	for _, n := range s.Nodes() {
		if !f.tool.Scope[n] {
			t.Errorf("unscoped node %d traced", n)
		}
	}
}

func TestProbeDiscoveryProbeCountNearLinear(t *testing.T) {
	// Traces share tails: probe packets should grow roughly linearly with
	// receivers, not quadratically (paper: control traffic linear in
	// receivers).
	count := func(receivers int) int64 {
		e := sim.NewEngine(1)
		n := netsim.New(e)
		src := n.AddNode("src")
		mid := n.AddNode("mid")
		cfg := netsim.LinkConfig{Bandwidth: 10e6, Delay: 10 * sim.Millisecond}
		n.Connect(src, mid, cfg)
		d := newDomainWithGroups(n, src)
		var leaves []*netsim.Node
		for i := 0; i < receivers; i++ {
			leaf := n.AddNode("leaf")
			n.Connect(mid, leaf, cfg)
			leaves = append(leaves, leaf)
		}
		m := &member{}
		for _, leaf := range leaves {
			d.Join(leaf.ID, d.GroupOf(0, 1), m)
		}
		e.RunUntil(100 * sim.Millisecond)
		tool := NewTool(n, d, []int{0})
		tool.ProbeMode = true
		tool.Period = sim.Second
		tool.Start()
		e.RunUntil(500 * sim.Millisecond)
		return tool.ProbePackets
	}
	c4, c16 := count(4), count(16)
	if c16 > 6*c4 {
		t.Errorf("probe packets grew superlinearly: %d receivers -> %d, %d receivers -> %d", 4, c4, 16, c16)
	}
}

// newDomainWithGroups builds a domain with the 6 standard groups rooted at
// src, shared by probe tests needing custom topologies.
func newDomainWithGroups(n *netsim.Network, src *netsim.Node) *mcast.Domain {
	d := mcast.NewDomain(n)
	for l := 1; l <= 6; l++ {
		d.RegisterGroup(0, l, src.ID)
	}
	return d
}
