package topodisc

import (
	"testing"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// fixture topology:
//
//	src - r1 - r2 - leafA (layers 1..3)
//	       |    `-- leafB (layers 1..2)
//	     leafC (layer 1)
type fixture struct {
	e                   *sim.Engine
	n                   *netsim.Network
	d                   *mcast.Domain
	tool                *Tool
	src, r1, r2         *netsim.Node
	leafA, leafB, leafC *netsim.Node
	members             map[netsim.NodeID]*member
}

type member struct{}

func (m *member) RecvMulticast(p *netsim.Packet) {}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	e := sim.NewEngine(1)
	n := netsim.New(e)
	f := &fixture{e: e, n: n, members: map[netsim.NodeID]*member{}}
	f.src = n.AddNode("src")
	f.r1 = n.AddNode("r1")
	f.r2 = n.AddNode("r2")
	f.leafA = n.AddNode("leafA")
	f.leafB = n.AddNode("leafB")
	f.leafC = n.AddNode("leafC")
	cfg := netsim.LinkConfig{Bandwidth: 10e6, Delay: 10 * sim.Millisecond}
	n.Connect(f.src, f.r1, cfg)
	n.Connect(f.r1, f.r2, cfg)
	n.Connect(f.r2, f.leafA, cfg)
	n.Connect(f.r2, f.leafB, cfg)
	n.Connect(f.r1, f.leafC, cfg)
	f.d = mcast.NewDomain(n)
	for l := 1; l <= 6; l++ {
		f.d.RegisterGroup(0, l, f.src.ID)
	}
	f.tool = NewTool(n, f.d, []int{0})
	return f
}

func (f *fixture) join(node *netsim.Node, layers int) {
	m := f.members[node.ID]
	if m == nil {
		m = &member{}
		f.members[node.ID] = m
	}
	for l := 1; l <= layers; l++ {
		f.d.Join(node.ID, f.d.GroupOf(0, l), m)
	}
}

func (f *fixture) joinAll() {
	f.join(f.leafA, 3)
	f.join(f.leafB, 2)
	f.join(f.leafC, 1)
	f.e.RunUntil(200 * sim.Millisecond) // grafts settle
}

func TestSnapshotTreeShape(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	s := f.tool.SnapshotNow(0)
	if s.Root != f.src.ID {
		t.Fatalf("root = %d", s.Root)
	}
	if s.Parent[f.leafA.ID] != f.r2.ID || s.Parent[f.leafB.ID] != f.r2.ID {
		t.Errorf("leaf parents wrong: %v", s.Parent)
	}
	if s.Parent[f.r2.ID] != f.r1.ID || s.Parent[f.r1.ID] != f.src.ID {
		t.Errorf("router parents wrong: %v", s.Parent)
	}
	if s.Parent[f.leafC.ID] != f.r1.ID {
		t.Errorf("leafC parent = %d", s.Parent[f.leafC.ID])
	}
	kids := s.Children[f.r1.ID]
	if len(kids) != 2 || kids[0] != f.r2.ID || kids[1] != f.leafC.ID {
		t.Errorf("r1 children = %v", kids)
	}
	nodes := s.Nodes()
	if len(nodes) != 6 {
		t.Errorf("Nodes = %v, want all 6", nodes)
	}
	leaves := s.Leaves()
	if len(leaves) != 3 {
		t.Errorf("Leaves = %v", leaves)
	}
	if s.Empty() {
		t.Error("non-empty tree reported Empty")
	}
}

func TestSnapshotMaxLayer(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	s := f.tool.SnapshotNow(0)
	want := map[netsim.NodeID]int{
		f.leafA.ID: 3,
		f.leafB.ID: 2,
		f.leafC.ID: 1,
		f.r2.ID:    3, // carries A's layer 3
		f.r1.ID:    3,
		f.src.ID:   3,
	}
	for n, w := range want {
		if got := s.MaxLayer[n]; got != w {
			t.Errorf("MaxLayer[%d] = %d, want %d", n, got, w)
		}
	}
}

func TestSnapshotReceivers(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	s := f.tool.SnapshotNow(0)
	for _, leaf := range []netsim.NodeID{f.leafA.ID, f.leafB.ID, f.leafC.ID} {
		if !s.Receivers[leaf] {
			t.Errorf("leaf %d not marked receiver", leaf)
		}
	}
	if s.Receivers[f.r1.ID] || s.Receivers[f.src.ID] {
		t.Error("transit node marked receiver")
	}
}

func TestSnapshotEmptySession(t *testing.T) {
	f := newFixture(t)
	s := f.tool.SnapshotNow(0) // nobody joined
	if !s.Empty() {
		t.Errorf("snapshot not empty: %+v", s)
	}
	// Unregistered session is also empty with no root.
	s2 := f.tool.SnapshotNow(42)
	if !s2.Empty() || s2.Root != netsim.NoNode {
		t.Errorf("unregistered session snapshot: %+v", s2)
	}
}

func TestDiscoverFreshness(t *testing.T) {
	f := newFixture(t)
	f.tool.Period = sim.Second
	f.tool.Start()
	f.e.RunUntil(500 * sim.Millisecond)
	f.joinAll() // joins at ~0.5-0.7s
	f.e.RunUntil(3 * sim.Second)
	s := f.tool.Discover(0)
	if s == nil || s.Empty() {
		t.Fatal("fresh Discover missed the joined tree")
	}
}

func TestDiscoverStaleness(t *testing.T) {
	f := newFixture(t)
	f.tool.Period = sim.Second
	f.tool.Staleness = 5 * sim.Second
	f.tool.Start()
	// Join at t=2s; with 5s staleness, the controller must not see the
	// tree until t>=7s.
	f.e.RunUntil(2 * sim.Second)
	f.joinAll()
	f.e.RunUntil(6 * sim.Second)
	if s := f.tool.Discover(0); s != nil && !s.Empty() {
		t.Fatalf("stale Discover at 6s already sees the 2s join (snapshot at %v)", s.At)
	}
	f.e.RunUntil(9 * sim.Second)
	s := f.tool.Discover(0)
	if s == nil || s.Empty() {
		t.Fatal("stale Discover at 9s still blind to the 2s join")
	}
	if age := f.e.Now() - s.At; age < f.tool.Staleness {
		t.Errorf("served snapshot only %v old, want >= %v", age, f.tool.Staleness)
	}
}

func TestDiscoverBeforeAnySnapshot(t *testing.T) {
	f := newFixture(t)
	f.tool.Staleness = 10 * sim.Second
	f.tool.Start()
	f.e.RunUntil(2 * sim.Second)
	if s := f.tool.Discover(0); s != nil {
		t.Errorf("Discover returned a snapshot younger than the staleness horizon: %v", s.At)
	}
}

func TestHistoryTrimmed(t *testing.T) {
	f := newFixture(t)
	f.tool.Period = 100 * sim.Millisecond
	f.tool.Staleness = sim.Second
	f.tool.Start()
	f.e.RunUntil(60 * sim.Second)
	if n := len(f.tool.history[0]); n > 40 {
		t.Errorf("history grew unbounded: %d snapshots", n)
	}
	// Discover still works after trimming.
	if s := f.tool.Discover(0); s == nil {
		t.Error("Discover broken after trim")
	}
}

func TestSnapshotReflectsLeave(t *testing.T) {
	f := newFixture(t)
	f.d.LeaveLatency = 100 * sim.Millisecond
	f.joinAll()
	// leafA drops to 1 layer: r2/r1 MaxLayer falls to 2 after prune.
	m := f.members[f.leafA.ID]
	f.d.Leave(f.leafA.ID, f.d.GroupOf(0, 3), m)
	f.d.Leave(f.leafA.ID, f.d.GroupOf(0, 2), m)
	f.e.RunUntil(2 * sim.Second)
	s := f.tool.SnapshotNow(0)
	if got := s.MaxLayer[f.leafA.ID]; got != 1 {
		t.Errorf("leafA MaxLayer = %d, want 1", got)
	}
	if got := s.MaxLayer[f.r2.ID]; got != 2 {
		t.Errorf("r2 MaxLayer = %d, want 2 (leafB still at 2)", got)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	f := newFixture(t)
	f.tool.Start()
	f.tool.Start()
	f.e.RunUntil(3 * sim.Second)
	before := f.tool.Discoveries
	f.tool.Stop()
	f.tool.Stop()
	f.e.RunUntil(6 * sim.Second)
	if f.tool.Discoveries != before {
		t.Error("discoveries continued after Stop")
	}
	if got := f.tool.Sessions(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Sessions = %v", got)
	}
}

func TestScopedDiscovery(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	// Domain = the subtree under r2 (r2, leafA, leafB).
	f.tool.Scope = map[netsim.NodeID]bool{
		f.r2.ID: true, f.leafA.ID: true, f.leafB.ID: true,
	}
	s := f.tool.SnapshotNow(0)
	if s.Root != f.r2.ID {
		t.Fatalf("scoped root = %d, want r2 %d", s.Root, f.r2.ID)
	}
	nodes := s.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("scoped nodes = %v", nodes)
	}
	for _, n := range nodes {
		if !f.tool.Scope[n] {
			t.Errorf("unscoped node %d in snapshot", n)
		}
	}
	// leafC (outside the domain) is invisible.
	if s.Receivers[f.leafC.ID] {
		t.Error("out-of-domain receiver visible")
	}
	if !s.Receivers[f.leafA.ID] || !s.Receivers[f.leafB.ID] {
		t.Error("in-domain receivers missing")
	}
	// MaxLayer still reflects the layers flowing through the domain.
	if s.MaxLayer[f.r2.ID] != 3 {
		t.Errorf("scoped MaxLayer[r2] = %d, want 3", s.MaxLayer[f.r2.ID])
	}
}

func TestScopedDiscoverySessionNotInDomain(t *testing.T) {
	f := newFixture(t)
	// Only leafC joins; the domain is the r2 subtree, which the session
	// never enters.
	f.join(f.leafC, 2)
	f.e.RunUntil(200 * sim.Millisecond)
	f.tool.Scope = map[netsim.NodeID]bool{
		f.r2.ID: true, f.leafA.ID: true, f.leafB.ID: true,
	}
	s := f.tool.SnapshotNow(0)
	if !s.Empty() {
		t.Errorf("session outside the domain produced a tree: %+v", s)
	}
}

func TestScopedDiscoverySourceInside(t *testing.T) {
	f := newFixture(t)
	f.joinAll()
	// Scope covering everything including the source: behaves like global.
	f.tool.Scope = map[netsim.NodeID]bool{
		f.src.ID: true, f.r1.ID: true, f.r2.ID: true,
		f.leafA.ID: true, f.leafB.ID: true, f.leafC.ID: true,
	}
	s := f.tool.SnapshotNow(0)
	if s.Root != f.src.ID || len(s.Nodes()) != 6 {
		t.Errorf("full-scope snapshot wrong: root %d, %d nodes", s.Root, len(s.Nodes()))
	}
}
