package topodisc

import (
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// probeSnapshot discovers one session's tree the way an mtrace-class tool
// does: one trace per receiver, walking hop-by-hop from the receiver toward
// the source. Each hop is visited one link-propagation delay after the
// previous one and reads that router's state *at visit time*, so hops of
// one snapshot can disagree (a torn snapshot) when the tree changes
// mid-trace. The snapshot is delivered — via done — when the slowest trace
// finishes, stamped with that completion time.
func (t *Tool) probeSnapshot(session int, done func(*Snapshot)) {
	e := t.net.Engine()
	base := t.domain.GroupOf(session, 1)
	snap := &Snapshot{
		At:        e.Now(),
		Session:   session,
		Root:      netsim.NoNode,
		Parent:    make(map[netsim.NodeID]netsim.NodeID),
		Children:  make(map[netsim.NodeID][]netsim.NodeID),
		MaxLayer:  make(map[netsim.NodeID]int),
		Receivers: make(map[netsim.NodeID]bool),
	}
	if base == netsim.NoGroup {
		done(snap)
		return
	}
	t.Discoveries++
	source := t.domain.Source(base)

	// Receivers known right now: the trace starting points (the
	// controller's registration list in a real deployment).
	var starts []netsim.NodeID
	for _, n := range t.net.Nodes() {
		if t.inScope(n.ID) && t.domain.HasLocalMembers(n.ID, base) {
			starts = append(starts, n.ID)
		}
	}
	if len(starts) == 0 {
		done(snap)
		return
	}

	pending := len(starts)
	t.pendingTraces += len(starts)
	finish := func() {
		t.pendingTraces--
		pending--
		if pending > 0 {
			return
		}
		snap.At = e.Now()
		t.rebuildChildren(snap, source)
		done(snap)
	}
	for _, rx := range starts {
		t.traceHop(session, base, source, rx, snap, finish, 0)
	}
}

// traceHop records node n's state into snap, then schedules the visit to
// n's upstream hop after the link's propagation delay. The walk ends at the
// source (or when the next hop leaves the scope or the route breaks).
// hops counts the links walked so far: a loop-free routing table bounds any
// walk by the node count, so exceeding it means reroutes during the trace
// led it in circles, and the trace is abandoned rather than walked forever.
func (t *Tool) traceHop(session int, base netsim.GroupID, source, n netsim.NodeID, snap *Snapshot, finish func(), hops int) {
	if hops > t.net.NumNodes() {
		finish()
		return
	}
	t.ProbePackets++
	// Read this hop's state at visit time.
	if ml := t.maxLayerAt(session, n); ml > snap.MaxLayer[n] {
		snap.MaxLayer[n] = ml
	}
	if t.domain.HasLocalMembers(n, base) {
		snap.Receivers[n] = true
	}
	if n == source {
		snap.Root = source
		finish()
		return
	}
	up := t.net.NextHop(n, source)
	if up == netsim.NoNode || !t.inScope(up) {
		// The domain boundary (or a broken route): this node is the
		// highest visible hop of its trace; it becomes the root unless a
		// deeper trace reaches further up.
		if snap.Root == netsim.NoNode {
			snap.Root = n
		}
		finish()
		return
	}
	if existing, seen := snap.Parent[n]; seen && existing == up {
		// Another trace already walked this tail: join it instead of
		// re-walking to the source (mtrace responses are cached the same
		// way; this also keeps probe counts near-linear in receivers).
		finish()
		return
	}
	snap.Parent[n] = up
	link := t.net.Node(n).LinkTo(up)
	delay := sim.Time(0)
	if link != nil {
		delay = link.Delay
	}
	// Each hop reads an arbitrary router's state, so the walk stays on the
	// global scheduler (stop-the-world between shard windows).
	sim.GlobalOf(t.net.Engine()).Schedule(delay, func() {
		t.traceHop(session, base, source, up, snap, finish, hops+1)
	})
}

// rebuildChildren derives the Children lists from the traced Parent edges
// and prunes hops that ended up disconnected from the root (tears).
func (t *Tool) rebuildChildren(snap *Snapshot, source netsim.NodeID) {
	if snap.Root == netsim.NoNode {
		return
	}
	children := make(map[netsim.NodeID][]netsim.NodeID, len(snap.Parent))
	for c, p := range snap.Parent {
		children[p] = append(children[p], c)
	}
	// Keep only nodes reachable from the root.
	reach := map[netsim.NodeID]bool{snap.Root: true}
	queue := []netsim.NodeID{snap.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		kids := children[n]
		sortNodeIDs(kids)
		snap.Children[n] = kids
		for _, c := range kids {
			reach[c] = true
			queue = append(queue, c)
		}
	}
	for c := range snap.Parent {
		if !reach[c] {
			delete(snap.Parent, c)
			delete(snap.MaxLayer, c)
			delete(snap.Receivers, c)
		}
	}
}

func (t *Tool) inScope(n netsim.NodeID) bool {
	return t.Scope == nil || t.Scope[n]
}

func sortNodeIDs(ids []netsim.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
