// Package metrics implements the paper's evaluation measures: the relative
// deviation from the optimal subscription (Section IV), and the stability
// measures of Figures 6 and 7 (number of subscription changes, mean time
// between successive changes).
package metrics

import (
	"sort"

	"toposense/internal/sim"
)

// Point is one step of a subscription-level trace.
type Point struct {
	At    sim.Time
	Level int
}

// Trace is a right-continuous step function of a receiver's subscription
// level over time. Points must be added in nondecreasing time order.
type Trace struct {
	points []Point
}

// NewTrace starts a trace at level `initial` from time `start`.
func NewTrace(start sim.Time, initial int) *Trace {
	return &Trace{points: []Point{{At: start, Level: initial}}}
}

// Set records a level change at time at; time must be nondecreasing (the
// shared sim.MustMonotonic contract).
func (tr *Trace) Set(at sim.Time, level int) {
	last := tr.points[len(tr.points)-1]
	sim.MustMonotonic("metrics", "", at, last.At)
	if level == last.Level {
		return
	}
	if at == last.At {
		if len(tr.points) == 1 {
			// The sole point is the trace's initial condition, not a
			// recorded change. Overwriting it would rewrite history (LevelAt
			// before `at` would report the new level) and hide a real
			// change, so record a zero-width step instead.
			tr.points = append(tr.points, Point{At: at, Level: level})
			return
		}
		// Same-instant change: overwrite rather than create a zero-width
		// step.
		tr.points[len(tr.points)-1].Level = level
		// Collapse if this made it equal to the previous point.
		if n := len(tr.points); n >= 2 && tr.points[n-2].Level == level {
			tr.points = tr.points[:n-1]
		}
		return
	}
	tr.points = append(tr.points, Point{At: at, Level: level})
}

// LevelAt returns the level in effect at time at (the trace's initial level
// for times before the first point).
func (tr *Trace) LevelAt(at sim.Time) int {
	idx := sort.Search(len(tr.points), func(i int) bool { return tr.points[i].At > at })
	if idx == 0 {
		return tr.points[0].Level
	}
	return tr.points[idx-1].Level
}

// Points returns a copy of the trace's steps.
func (tr *Trace) Points() []Point { return append([]Point(nil), tr.points...) }

// Changes counts level changes strictly inside (from, to].
func (tr *Trace) Changes(from, to sim.Time) int {
	count := 0
	for i := 1; i < len(tr.points); i++ {
		if tr.points[i].At > from && tr.points[i].At <= to {
			count++
		}
	}
	return count
}

// MeanTimeBetweenChanges returns the mean gap between successive changes in
// (from, to]. With fewer than two changes it returns the window length and
// ok=false — the subscription was (almost) flat, and the paper plots the
// full window in that case.
func (tr *Trace) MeanTimeBetweenChanges(from, to sim.Time) (sim.Time, bool) {
	var times []sim.Time
	for i := 1; i < len(tr.points); i++ {
		if tr.points[i].At > from && tr.points[i].At <= to {
			times = append(times, tr.points[i].At)
		}
	}
	if len(times) < 2 {
		return to - from, false
	}
	var total sim.Time
	for i := 1; i < len(times); i++ {
		total += times[i] - times[i-1]
	}
	return total / sim.Time(len(times)-1), true
}

// RelativeDeviation computes the paper's metric over [from, to]:
//
//	Σ_Δt |x(Δt) − y| · ‖Δt‖  /  Σ_Δt y · ‖Δt‖
//
// i.e. the time integral of |subscription − optimal| normalized by the
// integral of the optimal. Zero means the receiver sat at the optimal the
// whole window. The optimal must be positive.
func (tr *Trace) RelativeDeviation(optimal int, from, to sim.Time) float64 {
	if optimal <= 0 {
		panic("metrics: optimal subscription must be positive")
	}
	if to <= from {
		panic("metrics: empty deviation window")
	}
	var devInt float64 // integral of |x - y| dt
	cur := from
	level := tr.LevelAt(from)
	idx := sort.Search(len(tr.points), func(i int) bool { return tr.points[i].At > from })
	for ; idx < len(tr.points) && tr.points[idx].At < to; idx++ {
		seg := tr.points[idx].At - cur
		devInt += absInt(level-optimal) * float64(seg)
		cur = tr.points[idx].At
		level = tr.points[idx].Level
	}
	devInt += absInt(level-optimal) * float64(to-cur)
	return devInt / (float64(optimal) * float64(to-from))
}

func absInt(x int) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}

// MeanRelativeDeviation averages RelativeDeviation across traces with
// per-trace optima.
func MeanRelativeDeviation(traces []*Trace, optima []int, from, to sim.Time) float64 {
	if len(traces) == 0 {
		return 0
	}
	if len(traces) != len(optima) {
		panic("metrics: traces and optima length mismatch")
	}
	total := 0.0
	for i, tr := range traces {
		total += tr.RelativeDeviation(optima[i], from, to)
	}
	return total / float64(len(traces))
}

// MaxChanges returns the maximum change count over the traces in (from,to]
// — the paper plots "the maximum number of changes in subscription by any
// receiver".
func MaxChanges(traces []*Trace, from, to sim.Time) int {
	max := 0
	for _, tr := range traces {
		if c := tr.Changes(from, to); c > max {
			max = c
		}
	}
	return max
}

// MeanTimeBetweenChangesOfBusiest returns the mean time between changes of
// the trace with the most changes (the receiver Figure 6 tracks).
func MeanTimeBetweenChangesOfBusiest(traces []*Trace, from, to sim.Time) sim.Time {
	var busiest *Trace
	max := -1
	for _, tr := range traces {
		if c := tr.Changes(from, to); c > max {
			max = c
			busiest = tr
		}
	}
	if busiest == nil {
		return to - from
	}
	mean, _ := busiest.MeanTimeBetweenChanges(from, to)
	return mean
}
