package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"toposense/internal/sim"
)

func TestTraceLevelAt(t *testing.T) {
	tr := NewTrace(0, 1)
	tr.Set(10*sim.Second, 2)
	tr.Set(20*sim.Second, 4)
	cases := []struct {
		at   sim.Time
		want int
	}{
		{0, 1},
		{5 * sim.Second, 1},
		{10 * sim.Second, 2},
		{15 * sim.Second, 2},
		{20 * sim.Second, 4},
		{100 * sim.Second, 4},
		{-sim.Second, 1},
	}
	for _, c := range cases {
		if got := tr.LevelAt(c.at); got != c.want {
			t.Errorf("LevelAt(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestTraceDedupsAndCollapses(t *testing.T) {
	tr := NewTrace(0, 1)
	tr.Set(5*sim.Second, 1) // no-op
	if len(tr.Points()) != 1 {
		t.Fatalf("no-op Set added a point: %v", tr.Points())
	}
	tr.Set(10*sim.Second, 2)
	tr.Set(10*sim.Second, 3) // same-instant overwrite
	pts := tr.Points()
	if len(pts) != 2 || pts[1].Level != 3 {
		t.Fatalf("same-instant overwrite failed: %v", pts)
	}
	tr.Set(10*sim.Second, 1) // collapses back to the initial level
	if len(tr.Points()) != 1 {
		t.Fatalf("collapse failed: %v", tr.Points())
	}
}

func TestTraceOutOfOrderPanics(t *testing.T) {
	tr := NewTrace(10*sim.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Set(5*sim.Second, 2)
}

func TestChanges(t *testing.T) {
	tr := NewTrace(0, 1)
	tr.Set(10*sim.Second, 2)
	tr.Set(20*sim.Second, 3)
	tr.Set(30*sim.Second, 2)
	if got := tr.Changes(0, 40*sim.Second); got != 3 {
		t.Errorf("Changes full = %d, want 3", got)
	}
	if got := tr.Changes(10*sim.Second, 25*sim.Second); got != 1 {
		t.Errorf("Changes (10,25] = %d, want 1 (boundary excluded at from)", got)
	}
	if got := tr.Changes(35*sim.Second, 40*sim.Second); got != 0 {
		t.Errorf("Changes empty window = %d", got)
	}
}

func TestMeanTimeBetweenChanges(t *testing.T) {
	tr := NewTrace(0, 1)
	tr.Set(10*sim.Second, 2)
	tr.Set(16*sim.Second, 3)
	tr.Set(30*sim.Second, 2)
	mean, ok := tr.MeanTimeBetweenChanges(0, 40*sim.Second)
	if !ok {
		t.Fatal("expected ok with 3 changes")
	}
	if mean != 10*sim.Second { // gaps 6 and 14 -> mean 10
		t.Errorf("mean = %v, want 10s", mean)
	}
	// Fewer than 2 changes: window length, not ok.
	flat := NewTrace(0, 2)
	mean, ok = flat.MeanTimeBetweenChanges(0, 40*sim.Second)
	if ok || mean != 40*sim.Second {
		t.Errorf("flat trace mean = %v ok=%v", mean, ok)
	}
}

func TestRelativeDeviationExact(t *testing.T) {
	// Optimal 4. Trace: level 2 for 10s, level 4 for 30s.
	tr := NewTrace(0, 2)
	tr.Set(10*sim.Second, 4)
	// integral |x-4| = 2*10 = 20; optimal integral = 4*40 = 160.
	want := 20.0 / 160.0
	if got := tr.RelativeDeviation(4, 0, 40*sim.Second); math.Abs(got-want) > 1e-12 {
		t.Errorf("deviation = %g, want %g", got, want)
	}
}

func TestRelativeDeviationPerfect(t *testing.T) {
	tr := NewTrace(0, 4)
	if got := tr.RelativeDeviation(4, 0, 100*sim.Second); got != 0 {
		t.Errorf("perfect trace deviation = %g", got)
	}
}

func TestRelativeDeviationWindowed(t *testing.T) {
	tr := NewTrace(0, 1)
	tr.Set(600*sim.Second, 4)
	// Window [600, 1200]: always at optimal.
	if got := tr.RelativeDeviation(4, 600*sim.Second, 1200*sim.Second); got != 0 {
		t.Errorf("second-window deviation = %g", got)
	}
	// Window [0, 600]: always 3 away from 4.
	want := 3.0 / 4.0
	if got := tr.RelativeDeviation(4, 0, 600*sim.Second); math.Abs(got-want) > 1e-12 {
		t.Errorf("first-window deviation = %g, want %g", got, want)
	}
}

func TestRelativeDeviationOverSubscription(t *testing.T) {
	// Deviation is symmetric: being above optimal also counts.
	tr := NewTrace(0, 6)
	want := 2.0 / 4.0
	if got := tr.RelativeDeviation(4, 0, 10*sim.Second); math.Abs(got-want) > 1e-12 {
		t.Errorf("deviation = %g, want %g", got, want)
	}
}

func TestRelativeDeviationPanics(t *testing.T) {
	tr := NewTrace(0, 1)
	for _, f := range []func(){
		func() { tr.RelativeDeviation(0, 0, sim.Second) },
		func() { tr.RelativeDeviation(4, sim.Second, sim.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMeanRelativeDeviation(t *testing.T) {
	a := NewTrace(0, 4) // perfect vs 4
	b := NewTrace(0, 2) // 0.5 off vs 4
	got := MeanRelativeDeviation([]*Trace{a, b}, []int{4, 4}, 0, 10*sim.Second)
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("mean deviation = %g, want 0.25", got)
	}
	if MeanRelativeDeviation(nil, nil, 0, sim.Second) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestMeanRelativeDeviationMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanRelativeDeviation([]*Trace{NewTrace(0, 1)}, nil, 0, sim.Second)
}

func TestMaxChangesAndBusiest(t *testing.T) {
	quiet := NewTrace(0, 4)
	busy := NewTrace(0, 1)
	busy.Set(10*sim.Second, 2)
	busy.Set(20*sim.Second, 3)
	busy.Set(40*sim.Second, 2)
	traces := []*Trace{quiet, busy}
	if got := MaxChanges(traces, 0, 60*sim.Second); got != 3 {
		t.Errorf("MaxChanges = %d, want 3", got)
	}
	mean := MeanTimeBetweenChangesOfBusiest(traces, 0, 60*sim.Second)
	if mean != 15*sim.Second { // gaps 10, 20 -> mean 15
		t.Errorf("busiest mean = %v, want 15s", mean)
	}
	if MeanTimeBetweenChangesOfBusiest(nil, 0, 60*sim.Second) != 60*sim.Second {
		t.Error("empty busiest should return the window")
	}
}

// Property: deviation is scale-invariant in time (stretching the trace and
// window by the same factor leaves it unchanged) and zero iff the trace
// equals the optimal everywhere in the window.
func TestQuickDeviationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		optimal := rng.Intn(5) + 1
		tr := NewTrace(0, rng.Intn(7))
		tr2 := NewTrace(0, tr.LevelAt(0))
		at := sim.Time(0)
		for i := 0; i < rng.Intn(10); i++ {
			at += sim.Time(rng.Intn(1000)+1) * sim.Millisecond
			lvl := rng.Intn(7)
			tr.Set(at, lvl)
			tr2.Set(at*3, lvl)
		}
		end := at + sim.Time(rng.Intn(1000)+1)*sim.Millisecond
		d1 := tr.RelativeDeviation(optimal, 0, end)
		d2 := tr2.RelativeDeviation(optimal, 0, end*3)
		if math.Abs(d1-d2) > 1e-9 {
			return false
		}
		return d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LevelAt is consistent with the points sequence.
func TestQuickLevelAtConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrace(0, 1)
		at := sim.Time(0)
		for i := 0; i < 20; i++ {
			at += sim.Time(rng.Intn(100)+1) * sim.Millisecond
			tr.Set(at, rng.Intn(6)+1)
		}
		pts := tr.Points()
		for i, p := range pts {
			if tr.LevelAt(p.At) != p.Level {
				return false
			}
			if i > 0 && tr.LevelAt(p.At-1) != pts[i-1].Level {
				return false
			}
			if i > 0 && pts[i].Level == pts[i-1].Level {
				return false // consecutive duplicates must be merged
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSameInstantAtAnchor(t *testing.T) {
	// A same-instant change at the trace's single initial point must not
	// overwrite the anchor: the anchor is the initial condition, and
	// rewriting it both hides a real change and rewrites LevelAt history.
	tr := NewTrace(0, 0)
	tr.Set(0, 2)
	pts := tr.Points()
	if len(pts) != 2 || pts[0].Level != 0 || pts[1].Level != 2 {
		t.Fatalf("anchor overwritten: %v", pts)
	}
	if got := tr.LevelAt(0); got != 2 {
		t.Errorf("LevelAt(0) = %d, want 2", got)
	}

	// Overwrite-back-to-initial collapses to the lone anchor again.
	tr.Set(0, 0)
	if pts := tr.Points(); len(pts) != 1 || pts[0].Level != 0 {
		t.Fatalf("overwrite-to-initial left trace inconsistent: %v", pts)
	}

	// And the sequence stays consistent when later changes follow.
	tr.Set(0, 1)
	tr.Set(5*sim.Second, 3)
	if got := tr.Changes(0, 10*sim.Second); got != 1 {
		t.Errorf("Changes = %d, want 1 (the t=5s change)", got)
	}
	if got := tr.LevelAt(2 * sim.Second); got != 1 {
		t.Errorf("LevelAt(2s) = %d, want 1", got)
	}
}

func TestTraceSameInstantNonAnchorOverwrite(t *testing.T) {
	cases := []struct {
		name       string
		build      func() *Trace
		wantLevels []int
	}{
		{"overwrite keeps latest", func() *Trace {
			tr := NewTrace(0, 1)
			tr.Set(sim.Second, 2)
			tr.Set(sim.Second, 3)
			return tr
		}, []int{1, 3}},
		{"overwrite collapses to previous", func() *Trace {
			tr := NewTrace(0, 1)
			tr.Set(sim.Second, 2)
			tr.Set(sim.Second, 1)
			return tr
		}, []int{1}},
		{"zero-width anchor step then advance", func() *Trace {
			tr := NewTrace(0, 0)
			tr.Set(0, 2)
			tr.Set(sim.Second, 4)
			return tr
		}, []int{0, 2, 4}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pts := c.build().Points()
			if len(pts) != len(c.wantLevels) {
				t.Fatalf("points = %v, want levels %v", pts, c.wantLevels)
			}
			for i, want := range c.wantLevels {
				if pts[i].Level != want {
					t.Errorf("point %d level = %d, want %d", i, pts[i].Level, want)
				}
			}
		})
	}
}
