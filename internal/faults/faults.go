// Package faults injects deterministic link failures into a netsim network.
//
// The paper's robustness analysis (Figure 10) varies only how *stale* the
// controller's topology snapshot is; the network itself never changes. A
// deployable system must also survive the topology changing under it —
// links failing and recovering mid-session — which is exactly where stale
// topology hurts most. This package supplies the failure side of that
// experiment: an Injector schedules link down/up events on the simulation
// engine, either as an explicit one-shot schedule (fail at t, repair at
// t+outage) or as a renewal process with exponential time-to-failure and
// time-to-repair drawn from the engine's seeded RNG, so every run is
// reproducible.
//
// All state changes go through Link.SetDown / Link.SetUp, which drop the
// traffic the link was carrying, reroute unicast around the failure, and
// notify the multicast layer so it can repair its trees. An Injector that
// schedules nothing is completely inert: it touches neither the event
// queue nor the RNG.
package faults

import (
	"fmt"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Injector schedules failure and repair events for links of one network.
// Create it with New, add schedules before or during the run, and read the
// counters afterwards. All methods must be called on the simulation
// goroutine (like everything else bound to the engine).
type Injector struct {
	engine sim.Scheduler

	// Failures and Repairs count state transitions actually applied
	// (a SetDown on an already-down link does not count).
	Failures, Repairs int64

	// OnChange, if set, observes every applied transition; tests and
	// experiments use it to timestamp the event in their traces.
	OnChange func(l *netsim.Link, down bool)

	handles []sim.Handle
}

// New creates an injector bound to the network's engine. Fault injection
// is not supported on a partitioned network: a failure invalidates routes
// and repairs trees across shard boundaries mid-window, which the
// conservative parallel engine cannot order. Run fault experiments on the
// single-threaded engine (shards = 1).
func New(net *netsim.Network) *Injector {
	if net.Partitioned() {
		panic("faults: fault injection is not supported on a partitioned network; run with a single shard")
	}
	return &Injector{engine: net.Engine()}
}

// apply flips one link and does the bookkeeping.
func (in *Injector) apply(l *netsim.Link, down bool) {
	if l.Down() == down {
		return
	}
	if down {
		l.SetDown()
		in.Failures++
	} else {
		l.SetUp()
		in.Repairs++
	}
	if in.OnChange != nil {
		in.OnChange(l, down)
	}
}

// FailAt schedules the link to go down at absolute simulation time t.
func (in *Injector) FailAt(t sim.Time, l *netsim.Link) {
	in.track(in.engine.At(t, func() { in.apply(l, true) }))
}

// RepairAt schedules the link to come back up at absolute time t.
func (in *Injector) RepairAt(t sim.Time, l *netsim.Link) {
	in.track(in.engine.At(t, func() { in.apply(l, false) }))
}

// Outage schedules one down/up cycle: the link fails at start and is
// repaired at start+duration. It panics on a nonpositive duration, which is
// always a misconfigured experiment.
func (in *Injector) Outage(start, duration sim.Time, links ...*netsim.Link) {
	if duration <= 0 {
		panic(fmt.Sprintf("faults: outage duration must be positive, got %v", duration))
	}
	for _, l := range links {
		in.FailAt(start, l)
		in.RepairAt(start+duration, l)
	}
}

// Flap runs the link as a renewal process from time start: up for an
// exponentially distributed period with mean mtbf, then down for an
// exponentially distributed period with mean mttr, repeating until the run
// ends. Draws come from the engine's seeded RNG in schedule order, so the
// process is deterministic per seed. Several flapping links interleave
// their draws by event time, which is still deterministic.
func (in *Injector) Flap(start sim.Time, mtbf, mttr sim.Time, l *netsim.Link) {
	if mtbf <= 0 || mttr <= 0 {
		panic(fmt.Sprintf("faults: Flap needs positive mtbf/mttr, got %v/%v", mtbf, mttr))
	}
	var up, down func()
	up = func() {
		wait := sim.Time(in.engine.Rand().ExpFloat64() * float64(mtbf))
		in.track(in.engine.Schedule(wait, func() {
			in.apply(l, true)
			down()
		}))
	}
	down = func() {
		wait := sim.Time(in.engine.Rand().ExpFloat64() * float64(mttr))
		in.track(in.engine.Schedule(wait, func() {
			in.apply(l, false)
			up()
		}))
	}
	in.track(in.engine.At(start, up))
}

// Stop cancels every event the injector still has pending. Links keep
// whatever state they are in; call SetUp on them directly if a test needs
// the network healthy again.
func (in *Injector) Stop() {
	for _, h := range in.handles {
		in.engine.Cancel(h)
	}
	in.handles = in.handles[:0]
}

func (in *Injector) track(h sim.Handle) {
	in.handles = append(in.handles, h)
}
