package faults

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

func twoNodes(t *testing.T, seed int64) (*sim.Engine, *netsim.Network, *netsim.Link) {
	t.Helper()
	e := sim.NewEngine(seed)
	n := netsim.New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l, _ := n.Connect(a, b, netsim.LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond})
	return e, n, l
}

func TestOutageSchedule(t *testing.T) {
	e, n, l := twoNodes(t, 1)
	in := New(n)
	type event struct {
		at   sim.Time
		down bool
	}
	var events []event
	in.OnChange = func(_ *netsim.Link, down bool) {
		events = append(events, event{e.Now(), down})
	}
	in.Outage(2*sim.Second, 3*sim.Second, l)
	e.RunUntil(1 * sim.Second)
	if l.Down() {
		t.Fatal("link down before the scheduled failure")
	}
	e.RunUntil(4 * sim.Second)
	if !l.Down() {
		t.Fatal("link not down during the outage window")
	}
	e.Run()
	if l.Down() {
		t.Fatal("link not repaired after the outage")
	}
	want := []event{{2 * sim.Second, true}, {5 * sim.Second, false}}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	if in.Failures != 1 || in.Repairs != 1 {
		t.Fatalf("Failures = %d, Repairs = %d, want 1/1", in.Failures, in.Repairs)
	}
}

func TestRedundantTransitionsNotCounted(t *testing.T) {
	_, n, l := twoNodes(t, 1)
	in := New(n)
	in.apply(l, true)
	in.apply(l, true) // already down: no-op
	in.apply(l, false)
	in.apply(l, false)
	if in.Failures != 1 || in.Repairs != 1 {
		t.Fatalf("Failures = %d, Repairs = %d, want 1/1", in.Failures, in.Repairs)
	}
}

func TestFlapDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []sim.Time {
		e, n, l := twoNodes(t, seed)
		in := New(n)
		var times []sim.Time
		in.OnChange = func(*netsim.Link, bool) { times = append(times, e.Now()) }
		in.Flap(0, 10*sim.Second, 2*sim.Second, l)
		e.RunUntil(5 * sim.Minute)
		in.Stop()
		return times
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("flap produced no transitions in 5 minutes (mtbf 10s)")
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d at %v vs %v", i, a[i], b[i])
		}
	}
	if c := run(43); len(c) == len(a) && func() bool {
		for i := range c {
			if c[i] != a[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical flap schedules")
	}
}

func TestStopCancelsPending(t *testing.T) {
	e, n, l := twoNodes(t, 1)
	in := New(n)
	in.Outage(1*sim.Second, 1*sim.Second, l)
	in.Stop()
	e.Run()
	if l.Down() || in.Failures != 0 {
		t.Fatal("Stop did not cancel the scheduled outage")
	}
}

func TestBadConfigPanics(t *testing.T) {
	_, n, l := twoNodes(t, 1)
	in := New(n)
	for _, fn := range []func(){
		func() { in.Outage(0, 0, l) },
		func() { in.Flap(0, 0, sim.Second, l) },
		func() { in.Flap(0, sim.Second, 0, l) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid config")
				}
			}()
			fn()
		}()
	}
}
