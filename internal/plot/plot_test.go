package plot

import (
	"strings"
	"testing"

	"toposense/internal/sim"
	"toposense/internal/trace"
)

func mkSeries(name string, vals ...float64) *trace.Series {
	s := trace.NewSeries(name)
	for i, v := range vals {
		s.Add(sim.Time(i)*sim.Second, v)
	}
	return s
}

func TestLineBasics(t *testing.T) {
	s := mkSeries("level", 1, 2, 3, 4, 4, 4, 3)
	out := Line([]*trace.Series{s}, 40, 6)
	if !strings.Contains(out, "*") {
		t.Fatalf("no plot symbols:\n%s", out)
	}
	if !strings.Contains(out, "4.00") || !strings.Contains(out, "1.00") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "*=level") {
		t.Errorf("legend missing:\n%s", out)
	}
	// 6 plot rows + axis + time labels + legend = 9 lines.
	if got := strings.Count(out, "\n"); got != 9 {
		t.Errorf("line count = %d:\n%s", got, out)
	}
}

func TestLineMultiSeries(t *testing.T) {
	a := mkSeries("a", 1, 1, 1, 1)
	b := mkSeries("b", 4, 4, 4, 4)
	out := Line([]*trace.Series{a, b}, 30, 5)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("symbols missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Flat series: 'b' (higher) must appear above 'a'.
	var rowA, rowB int = -1, -1
	for i, ln := range lines {
		if strings.Contains(ln, "*") && !strings.Contains(ln, "*=") {
			rowA = i
		}
		if strings.Contains(ln, "o") && !strings.Contains(ln, "o=") {
			rowB = i
		}
	}
	if rowB == -1 || rowA == -1 || rowB >= rowA {
		t.Errorf("series rows: a=%d b=%d\n%s", rowA, rowB, out)
	}
}

func TestLineEmptyAndDegenerate(t *testing.T) {
	if got := Line(nil, 20, 5); got != "(no data)\n" {
		t.Errorf("empty = %q", got)
	}
	if got := Line([]*trace.Series{trace.NewSeries("x")}, 20, 5); got != "(no data)\n" {
		t.Errorf("zero-length = %q", got)
	}
	// Constant series and single-point series must not divide by zero.
	one := trace.NewSeries("one")
	one.Add(0, 5)
	out := Line([]*trace.Series{one}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
	flat := mkSeries("flat", 2, 2, 2)
	if out := Line([]*trace.Series{flat}, 20, 5); !strings.Contains(out, "*") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestLineClampsTinyDimensions(t *testing.T) {
	s := mkSeries("s", 1, 2)
	out := Line([]*trace.Series{s}, 1, 1)
	if out == "" {
		t.Fatal("no output at tiny dimensions")
	}
}

func TestBar(t *testing.T) {
	out := Bar([]string{"cbr", "vbr3", "vbr6"}, []float64{0.03, 0.18, 0.27}, 30)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Bars scale with value: vbr6's bar is the longest.
	if strings.Count(lines[2], "=") <= strings.Count(lines[0], "=") {
		t.Errorf("bars not scaled:\n%s", out)
	}
	if !strings.Contains(lines[0], "cbr") || !strings.Contains(lines[0], "0.03") {
		t.Errorf("labels/values missing:\n%s", out)
	}
	// Nonzero values always get at least one mark.
	tiny := Bar([]string{"t"}, []float64{0.0001}, 10)
	if !strings.Contains(tiny, "=") {
		t.Errorf("tiny value invisible: %q", tiny)
	}
}

func TestBarZeroAndMismatch(t *testing.T) {
	if out := Bar([]string{"z"}, []float64{0}, 10); !strings.Contains(out, "z") {
		t.Errorf("zero bar broken: %q", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatch")
		}
	}()
	Bar([]string{"a"}, nil, 10)
}
