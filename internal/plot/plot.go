// Package plot renders time series and labeled values as ASCII charts, so
// the benchmark harness can print figure-shaped output next to its tables —
// the paper's exhibits are plots, and a subscription-level timeline is far
// easier to read as one.
package plot

import (
	"fmt"
	"math"
	"strings"

	"toposense/internal/sim"
	"toposense/internal/trace"
)

// symbols mark the different series in a multi-series chart.
var symbols = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Line renders one or more series on a shared time axis as an ASCII chart
// of the given width and height (plot area, excluding axes). Series are
// sampled at column resolution (the value at the column's start time).
// A legend line maps symbols to series names.
func Line(series []*trace.Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	var t0, t1 sim.Time
	minV, maxV := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		if s == nil || s.Len() == 0 {
			continue
		}
		first, _ := s.At(0)
		last, _ := s.At(s.Len() - 1)
		if !any || first < t0 {
			t0 = first
		}
		if !any || last > t1 {
			t1 = last
		}
		any = true
		for i := 0; i < s.Len(); i++ {
			_, v := s.At(i)
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	if !any {
		return "(no data)\n"
	}
	if maxV == minV {
		maxV = minV + 1
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	row := func(v float64) int {
		frac := (v - minV) / (maxV - minV)
		r := int(math.Round(float64(height-1) * frac))
		return height - 1 - r // row 0 is the top
	}
	for si, s := range series {
		if s == nil || s.Len() == 0 {
			continue
		}
		sym := symbols[si%len(symbols)]
		for col := 0; col < width; col++ {
			at := t0 + sim.Time(int64(span)*int64(col)/int64(width-1))
			v, ok := valueAt(s, at)
			if !ok {
				continue
			}
			grid[row(v)][col] = sym
		}
	}

	var b strings.Builder
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", maxV)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", minV)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.2f ", (maxV+minV)/2)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(fmt.Sprintf("        %-*s%s\n", width-8, fmt.Sprintf("%.0fs", t0.Seconds()), fmt.Sprintf("%8.0fs", t1.Seconds())))
	// Legend.
	var legend []string
	for si, s := range series {
		if s == nil || s.Len() == 0 {
			continue
		}
		legend = append(legend, fmt.Sprintf("%c=%s", symbols[si%len(symbols)], s.Name))
	}
	if len(legend) > 0 {
		b.WriteString("        " + strings.Join(legend, "  ") + "\n")
	}
	return b.String()
}

// valueAt returns the latest sample at or before `at`.
func valueAt(s *trace.Series, at sim.Time) (float64, bool) {
	// Series are time-sorted; binary search.
	lo, hi := 0, s.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		t, _ := s.At(mid)
		if t <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	_, v := s.At(lo - 1)
	return v, true
}

// Bar renders labeled values as a horizontal ASCII bar chart scaled to
// width characters.
func Bar(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("plot: labels and values length mismatch")
	}
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	labelW := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(math.Round(float64(width) * v / maxV))
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %.3g\n", labelW, labels[i], strings.Repeat("=", n), v)
	}
	return b.String()
}
