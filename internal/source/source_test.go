package source

import (
	"math"
	"testing"
	"testing/quick"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

func TestLayerRate(t *testing.T) {
	want := []float64{32_000, 64_000, 128_000, 256_000, 512_000, 1_024_000}
	for i, w := range want {
		if got := LayerRate(i + 1); got != w {
			t.Errorf("LayerRate(%d) = %g, want %g", i+1, got, w)
		}
	}
}

func TestLayerRateOutOfRangePanics(t *testing.T) {
	for _, k := range []int{0, -1, 63} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LayerRate(%d) did not panic", k)
				}
			}()
			LayerRate(k)
		}()
	}
}

func TestCumulativeRate(t *testing.T) {
	// Paper: 4 layers = 480 Kbps ("each session can ideally receive
	// 500Kbps (4 layers)").
	if got := CumulativeRate(4); got != 480_000 {
		t.Errorf("CumulativeRate(4) = %g, want 480000", got)
	}
	if got := CumulativeRate(0); got != 0 {
		t.Errorf("CumulativeRate(0) = %g", got)
	}
	if got := CumulativeRate(6); got != 2_016_000 {
		t.Errorf("CumulativeRate(6) = %g", got)
	}
}

func TestRates(t *testing.T) {
	r := Rates(6)
	if len(r) != 6 || r[0] != 32_000 || r[5] != 1_024_000 {
		t.Fatalf("Rates(6) = %v", r)
	}
}

func TestLevelForBandwidth(t *testing.T) {
	r := Rates(6)
	cases := []struct {
		bps  float64
		want int
	}{
		{0, 0},
		{31_999, 0},
		{32_000, 1},
		{96_000, 2},
		{100_000, 2},
		{480_000, 4},
		{500_000, 4},
		{992_000, 5},
		{1e9, 6},
	}
	for _, c := range cases {
		if got := LevelForBandwidth(r, c.bps); got != c.want {
			t.Errorf("LevelForBandwidth(%g) = %d, want %d", c.bps, got, c.want)
		}
	}
}

// Property: LevelForBandwidth is monotone in bps and its result's cumulative
// rate never exceeds the budget.
func TestQuickLevelForBandwidth(t *testing.T) {
	r := Rates(6)
	f := func(kbps uint32) bool {
		bps := float64(kbps % 3000 * 1000)
		lvl := LevelForBandwidth(r, bps)
		if CumulativeRate(lvl) > bps {
			return false
		}
		if lvl < 6 && CumulativeRate(lvl+1) <= bps {
			return false // not maximal
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type countMember struct {
	packets int
	bytes   int64
	layers  map[int]int
}

func (m *countMember) RecvMulticast(p *netsim.Packet) {
	m.packets++
	m.bytes += int64(p.Size)
	if m.layers == nil {
		m.layers = map[int]int{}
	}
	m.layers[p.Layer]++
}

// rig builds src --(fat link)-- rx and subscribes a member to layers 1..sub.
func rig(seed int64, cfg Config, sub int) (*sim.Engine, *Source, *countMember) {
	e := sim.NewEngine(seed)
	n := netsim.New(e)
	srcNode := n.AddNode("src")
	rxNode := n.AddNode("rx")
	n.Connect(srcNode, rxNode, netsim.LinkConfig{Bandwidth: 100e6, Delay: sim.Millisecond, QueueLimit: 1000})
	d := mcast.NewDomain(n)
	s := New(n, d, srcNode, cfg)
	m := &countMember{}
	for l := 1; l <= sub; l++ {
		d.Join(rxNode.ID, s.Group(l), m)
	}
	return e, s, m
}

func TestCBRRateAccuracy(t *testing.T) {
	e, s, m := rig(1, Config{Session: 0}, 2)
	s.Start()
	e.RunUntil(10 * sim.Second)
	s.Stop()
	// Layers 1+2 = 96 Kbps = 12 packets/s of 1000B = 120 packets in 10s.
	gotRate := float64(m.bytes) * 8 / 10
	if math.Abs(gotRate-96_000) > 0.05*96_000 {
		t.Errorf("received rate %.0f bps, want ~96000", gotRate)
	}
	if m.layers[3] != 0 {
		t.Errorf("received %d packets of unsubscribed layer 3", m.layers[3])
	}
}

func TestCBRAllLayersFlow(t *testing.T) {
	e, s, m := rig(2, Config{Session: 0}, 6)
	s.Start()
	e.RunUntil(5 * sim.Second)
	s.Stop()
	for l := 1; l <= 6; l++ {
		if m.layers[l] == 0 {
			t.Errorf("layer %d never arrived", l)
		}
	}
	// Layer k+1 carries ~2x the packets of layer k.
	for l := 1; l < 6; l++ {
		ratio := float64(m.layers[l+1]) / float64(m.layers[l])
		if ratio < 1.6 || ratio > 2.4 {
			t.Errorf("layer %d/%d packet ratio %.2f, want ~2", l+1, l, ratio)
		}
	}
}

func TestVBRMeanRateMatchesCBR(t *testing.T) {
	for _, p := range []float64{2, 3, 6, 10} {
		e, s, m := rig(3, Config{Session: 0, PeakToMean: p}, 1)
		s.Start()
		e.RunUntil(300 * sim.Second)
		s.Stop()
		gotRate := float64(m.bytes) * 8 / 300
		if math.Abs(gotRate-32_000) > 0.15*32_000 {
			t.Errorf("P=%g: mean rate %.0f bps, want ~32000", p, gotRate)
		}
	}
}

func TestVBRIsBursty(t *testing.T) {
	// Count per-second arrivals: with P=6 most seconds carry the trough
	// (1 packet) and a few carry the burst.
	e, s, m := rig(4, Config{Session: 0, PeakToMean: 6}, 1)
	perSecond := make([]int, 0, 60)
	last := 0
	tick := e.Every(sim.Second, func() {
		perSecond = append(perSecond, m.packets-last)
		last = m.packets
	})
	s.Start()
	e.RunUntil(60 * sim.Second)
	s.Stop()
	tick.Stop()
	minC, maxC := math.MaxInt32, 0
	for _, c := range perSecond {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	// Burst size for layer 1, P=6: 6*4+1-6 = 19.
	if maxC < 10 {
		t.Errorf("max per-second count %d, expected bursts ~19", maxC)
	}
	if minC > 4 {
		t.Errorf("min per-second count %d, expected troughs of ~1", minC)
	}
}

func TestVBRConfigDetection(t *testing.T) {
	if (Config{PeakToMean: 1}).VBR() {
		t.Error("P=1 should be CBR")
	}
	if !(Config{PeakToMean: 3}).VBR() {
		t.Error("P=3 should be VBR")
	}
}

func TestSourceAccessors(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	node := n.AddNode("src")
	d := mcast.NewDomain(n)
	s := New(n, d, node, Config{Session: 7})
	if s.Session() != 7 {
		t.Errorf("Session = %d", s.Session())
	}
	if s.Layers() != DefaultLayers {
		t.Errorf("Layers = %d", s.Layers())
	}
	if s.Node() != node {
		t.Error("Node mismatch")
	}
	for l := 1; l <= DefaultLayers; l++ {
		if s.Group(l) != d.GroupOf(7, l) {
			t.Errorf("Group(%d) mismatch", l)
		}
	}
	if s.Sent(1) != 0 {
		t.Errorf("Sent before start = %d", s.Sent(1))
	}
}

func TestStopHaltsTransmission(t *testing.T) {
	e, s, m := rig(5, Config{Session: 0}, 1)
	s.Start()
	e.RunUntil(2 * sim.Second)
	s.Stop()
	at2 := m.packets
	e.RunUntil(10 * sim.Second)
	if m.packets != at2 {
		t.Errorf("packets kept flowing after Stop: %d -> %d", at2, m.packets)
	}
}

func TestStartIsIdempotent(t *testing.T) {
	e, s, m := rig(6, Config{Session: 0}, 1)
	s.Start()
	s.Start() // must not double the rate
	e.RunUntil(10 * sim.Second)
	s.Stop()
	if m.packets < 35 || m.packets > 45 {
		t.Errorf("packets = %d, want ~40 (idempotent Start)", m.packets)
	}
}

func TestSequenceNumbersAreContiguous(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	srcNode := n.AddNode("src")
	rxNode := n.AddNode("rx")
	n.Connect(srcNode, rxNode, netsim.LinkConfig{Bandwidth: 100e6, Delay: sim.Millisecond, QueueLimit: 1000})
	d := mcast.NewDomain(n)
	s := New(n, d, srcNode, Config{Session: 0})
	var seqs []int64
	d.Join(rxNode.ID, s.Group(1), memberFunc(func(p *netsim.Packet) {
		if p.Layer == 1 {
			seqs = append(seqs, p.Seq)
		}
	}))
	s.Start()
	e.RunUntil(5 * sim.Second)
	s.Stop()
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("seq[%d] = %d (loss-free path must be gap-free)", i, q)
		}
	}
	if s.Sent(1) != int64(len(seqs)) {
		t.Errorf("Sent(1) = %d, received %d", s.Sent(1), len(seqs))
	}
}

type memberFunc func(*netsim.Packet)

func (f memberFunc) RecvMulticast(p *netsim.Packet) { f(p) }

func TestRatesGeometric(t *testing.T) {
	got := RatesGeometric(6, 32e3, 2)
	for i, want := range Rates(6) {
		if got[i] != want {
			t.Fatalf("RatesGeometric(6,32k,2)[%d] = %g, want %g", i, got[i], want)
		}
	}
	fine := RatesGeometric(12, 32e3, 1.41)
	if len(fine) != 12 || fine[0] != 32e3 {
		t.Errorf("fine rates: %v", fine)
	}
	for i := 1; i < len(fine); i++ {
		if fine[i] <= fine[i-1] {
			t.Errorf("rates not increasing at %d", i)
		}
	}
	for _, bad := range []func(){
		func() { RatesGeometric(0, 32e3, 2) },
		func() { RatesGeometric(3, 0, 2) },
		func() { RatesGeometric(3, 32e3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestCustomRatesConfig(t *testing.T) {
	rates := RatesGeometric(3, 64e3, 1.5)
	e := sim.NewEngine(1)
	n := netsim.New(e)
	srcNode := n.AddNode("src")
	rxNode := n.AddNode("rx")
	n.Connect(srcNode, rxNode, netsim.LinkConfig{Bandwidth: 100e6, Delay: sim.Millisecond, QueueLimit: 1000})
	d := mcast.NewDomain(n)
	s := New(n, d, srcNode, Config{Session: 0, Rates: rates})
	if s.Layers() != 3 {
		t.Fatalf("Layers = %d, want 3 from custom rates", s.Layers())
	}
	m := &countMember{}
	for l := 1; l <= 3; l++ {
		d.Join(rxNode.ID, s.Group(l), m)
	}
	s.Start()
	e.RunUntil(10 * sim.Second)
	s.Stop()
	// Total = 64k + 96k + 144k = 304 kbps.
	gotRate := float64(m.bytes) * 8 / 10
	if math.Abs(gotRate-304e3) > 0.08*304e3 {
		t.Errorf("custom-rate throughput %.0f, want ~304000", gotRate)
	}
}
