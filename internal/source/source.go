// Package source implements the paper's hierarchical layered media source:
// a session of cumulative layers, each transmitted on its own multicast
// group, with the base layer at 32 Kbps and every subsequent layer doubling
// the previous layer's rate. Both constant-bit-rate (CBR) and the
// variable-bit-rate (VBR) model of Gopalakrishnan et al. are provided; the
// VBR model is the one the paper specifies: in each 1-second interval the
// source emits n packets per layer-unit, where n = 1 with probability
// 1 - 1/P and n = P·A + 1 - P with probability 1/P (A = average packets per
// interval, P = peak-to-mean ratio).
package source

import (
	"fmt"

	"toposense/internal/mcast"
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Paper constants (Section IV).
const (
	// DefaultLayers is the number of layers in a session.
	DefaultLayers = 6
	// BaseRate is the base-layer rate in bits per second.
	BaseRate = 32_000
	// PacketSize is the media packet size in bytes.
	PacketSize = 1000
	// VBRInterval is the batching interval of the VBR model.
	VBRInterval = 1 * sim.Second
)

// LayerRate returns the rate in bits/s of layer k (1-based): 32 Kbps for
// layer 1, doubling per layer. Layers outside [1, 62] panic.
func LayerRate(k int) float64 {
	if k < 1 || k > 62 {
		panic(fmt.Sprintf("source: layer %d out of range", k))
	}
	return float64(BaseRate) * float64(int64(1)<<(k-1))
}

// CumulativeRate returns the total rate of a subscription to layers 1..k.
// CumulativeRate(0) is 0.
func CumulativeRate(k int) float64 {
	total := 0.0
	for i := 1; i <= k; i++ {
		total += LayerRate(i)
	}
	return total
}

// Rates returns the per-layer rates for layers 1..n, the "advertised
// bandwidth of each layer" the TopoSense algorithm assumes is known.
func Rates(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = LayerRate(i + 1)
	}
	return out
}

// LevelForBandwidth returns the largest subscription level whose cumulative
// rate fits within bps, given per-layer rates. It never returns less than 0.
func LevelForBandwidth(rates []float64, bps float64) int {
	total := 0.0
	for i, r := range rates {
		total += r
		if total > bps {
			return i
		}
	}
	return len(rates)
}

// Config parameterizes one layered session source.
type Config struct {
	Session    int
	Layers     int     // number of layers; 0 means DefaultLayers
	PacketSize int     // bytes; 0 means PacketSize
	PeakToMean float64 // P of the VBR model; <= 1 selects CBR
	// Rates overrides the default doubling layer rates (bits/s, index 0 =
	// base layer). When set, it also determines the layer count. Used by
	// the layer-granularity extension experiments (the paper's Section V
	// discusses finer-grained layers as a remedy for group-leave latency).
	Rates []float64
}

func (c Config) layers() int {
	if len(c.Rates) > 0 {
		return len(c.Rates)
	}
	if c.Layers == 0 {
		return DefaultLayers
	}
	return c.Layers
}

// rate returns layer k's rate under this config.
func (c Config) rate(k int) float64 {
	if len(c.Rates) > 0 {
		return c.Rates[k-1]
	}
	return LayerRate(k)
}

func (c Config) packetSize() int {
	if c.PacketSize == 0 {
		return PacketSize
	}
	return c.PacketSize
}

// VBR reports whether the config selects the variable-bit-rate model.
func (c Config) VBR() bool { return c.PeakToMean > 1 }

// Source transmits one layered session from a network node. All layers are
// always transmitted; receivers control what they get by joining and
// leaving the per-layer groups.
type Source struct {
	cfg    Config
	net    *netsim.Network
	domain *mcast.Domain
	node   *netsim.Node

	groups  []netsim.GroupID // index 0 = layer 1
	seq     []int64          // next sequence number per layer
	sent    []int64          // packets sent per layer
	started bool
	stopped bool
	tickers []*sim.Ticker
}

// New creates a source for cfg at node, registering one multicast group per
// layer. Call Start to begin transmission.
func New(net *netsim.Network, domain *mcast.Domain, node *netsim.Node, cfg Config) *Source {
	s := &Source{cfg: cfg, net: net, domain: domain, node: node}
	n := cfg.layers()
	s.groups = make([]netsim.GroupID, n)
	s.seq = make([]int64, n)
	s.sent = make([]int64, n)
	for l := 1; l <= n; l++ {
		s.groups[l-1] = domain.RegisterGroup(cfg.Session, l, node.ID)
	}
	return s
}

// sched returns the scheduler owning the source node's events. On a
// partitioned network this is the node's shard; the topology partitioners
// pin source nodes to partition 0 so the VBR model's runtime Rand() draws
// stay on the shard that is allowed to touch the run-wide stream.
func (s *Source) sched() sim.Scheduler { return s.net.SchedulerFor(s.node.ID) }

// Node returns the node the source transmits from.
func (s *Source) Node() *netsim.Node { return s.node }

// Session returns the session number.
func (s *Source) Session() int { return s.cfg.Session }

// Layers returns the number of layers.
func (s *Source) Layers() int { return s.cfg.layers() }

// Group returns the multicast group of layer k (1-based).
func (s *Source) Group(k int) netsim.GroupID { return s.groups[k-1] }

// Sent returns packets transmitted so far on layer k (1-based).
func (s *Source) Sent(k int) int64 { return s.sent[k-1] }

// Start begins transmission of every layer. CBR layers emit one packet per
// fixed inter-packet gap; VBR layers emit a per-interval batch spread evenly
// across the interval.
func (s *Source) Start() {
	if s.started {
		return
	}
	s.started = true
	e := s.sched()
	for l := 1; l <= s.cfg.layers(); l++ {
		layer := l
		if s.cfg.VBR() {
			// Emit one batch immediately, then every interval.
			s.emitVBRBatch(layer)
			tk := sim.Every(e, VBRInterval, func() { s.emitVBRBatch(layer) })
			s.tickers = append(s.tickers, tk)
		} else {
			gap := sim.TransmitTime(s.cfg.packetSize(), s.cfg.rate(layer))
			// Desynchronize layers slightly so all layers do not fire in
			// the same microsecond (deterministic per seed).
			offset := sim.Time(e.Rand().Int63n(int64(gap)))
			e.Schedule(offset, func() { s.emitCBR(layer, gap) })
		}
	}
}

// Stop halts all transmission.
func (s *Source) Stop() {
	s.stopped = true
	for _, tk := range s.tickers {
		tk.Stop()
	}
	s.tickers = nil
}

func (s *Source) emitCBR(layer int, gap sim.Time) {
	if s.stopped {
		return
	}
	s.emit(layer)
	s.sched().Schedule(gap, func() { s.emitCBR(layer, gap) })
}

// emitVBRBatch draws the per-interval packet count from the peak-to-mean
// model and spreads the packets evenly across the interval.
func (s *Source) emitVBRBatch(layer int) {
	if s.stopped {
		return
	}
	e := s.sched()
	p := s.cfg.PeakToMean
	avg := s.cfg.rate(layer) / (float64(s.cfg.packetSize()) * 8) // A: packets per second
	var n float64
	if e.Rand().Float64() < 1/p {
		n = p*avg + 1 - p
	} else {
		n = 1
	}
	count := int(n + 0.5)
	if count < 1 {
		count = 1
	}
	gap := VBRInterval / sim.Time(count)
	for i := 0; i < count; i++ {
		delay := sim.Time(i) * gap
		e.Schedule(delay, func() {
			if !s.stopped {
				s.emit(layer)
			}
		})
	}
}

// emit transmits one media packet on layer. Media packets are the hot path
// — they come from the network's pool and are recycled as soon as every
// tree branch has delivered or dropped them.
func (s *Source) emit(layer int) {
	idx := layer - 1
	p := s.net.NewPacket()
	p.Kind = netsim.Data
	p.Src = s.node.ID
	p.Dst = netsim.NoNode
	p.Group = s.groups[idx]
	p.Session = s.cfg.Session
	p.Layer = layer
	p.Seq = s.seq[idx]
	p.Size = s.cfg.packetSize()
	p.Sent = s.sched().Now()
	s.seq[idx]++
	s.sent[idx]++
	s.node.SendMulticastLocal(p)
	p.Release()
}

// RatesGeometric returns n layer rates starting at base bits/s, each layer
// factor times the previous. RatesGeometric(6, 32e3, 2) reproduces the
// paper's defaults; smaller factors with more layers model the
// finer-granularity encodings the paper's Section V proposes to soften
// group-leave latency.
func RatesGeometric(n int, base, factor float64) []float64 {
	if n < 1 || base <= 0 || factor <= 0 {
		panic("source: RatesGeometric needs n >= 1, base > 0, factor > 0")
	}
	out := make([]float64, n)
	r := base
	for i := range out {
		out[i] = r
		r *= factor
	}
	return out
}
