// Package trace provides lightweight time-series recording for experiment
// output — the subscription-level and loss-rate traces behind the paper's
// Figure 9 — plus a typed event log useful when debugging simulations.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"toposense/internal/sim"
)

// Series is a named sequence of (time, value) samples in time order.
type Series struct {
	Name   string
	Times  []sim.Time
	Values []float64
	// clipped marks a series that is a restriction of a longer one:
	// Window set it because samples fell outside the requested range, or
	// the source series was itself clipped. Consumers use it to tell "this
	// is everything that was recorded" from "this is a cut".
	clipped bool
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample; time must be nondecreasing (the shared
// sim.MustMonotonic contract).
func (s *Series) Add(at sim.Time, v float64) {
	if n := len(s.Times); n > 0 {
		sim.MustMonotonic("trace", s.Name, at, s.Times[n-1])
	}
	s.Times = append(s.Times, at)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Times) }

// At returns the i-th sample.
func (s *Series) At(i int) (sim.Time, float64) { return s.Times[i], s.Values[i] }

// Window returns a new series restricted to samples in [from, to]. The
// result is marked clipped when the restriction excluded samples (or the
// source was already clipped), so downstream consumers can tell a partial
// view from the full recording.
func (s *Series) Window(from, to sim.Time) *Series {
	lo := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] >= from })
	hi := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > to })
	if hi < lo {
		hi = lo // inverted range: empty window
	}
	out := NewSeries(s.Name)
	out.Times = append(out.Times, s.Times[lo:hi]...)
	out.Values = append(out.Values, s.Values[lo:hi]...)
	out.clipped = s.clipped || hi-lo < len(s.Times)
	return out
}

// Clipped reports whether this series is a restriction of a longer one.
func (s *Series) Clipped() bool { return s.clipped }

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	max := 0.0
	for i, v := range s.Values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s.Values {
		total += v
	}
	return total / float64(len(s.Values))
}

// WriteTSV emits "time<TAB>value" lines, suitable for plotting tools.
func (s *Series) WriteTSV(w io.Writer) error {
	for i := range s.Times {
		if _, err := fmt.Fprintf(w, "%.3f\t%g\n", s.Times[i].Seconds(), s.Values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sampler periodically samples named probes into Series. Its ticker runs
// on the scheduler's global context: probes read state owned by arbitrary
// components (receivers, links), so on a sharded engine they must fire at
// barriers with every shard quiescent.
type Sampler struct {
	engine sim.Scheduler
	period sim.Time
	probes []func() (name string, v float64)
	series map[string]*Series
	ticker *sim.Ticker
}

// NewSampler creates a sampler on the scheduler with the given period.
func NewSampler(engine sim.Scheduler, period sim.Time) *Sampler {
	return &Sampler{engine: sim.GlobalOf(engine), period: period, series: make(map[string]*Series)}
}

// Probe registers a named value source sampled every period.
func (sp *Sampler) Probe(name string, fn func() float64) {
	sp.probes = append(sp.probes, func() (string, float64) { return name, fn() })
	if sp.series[name] == nil {
		sp.series[name] = NewSeries(name)
	}
}

// Start begins sampling.
func (sp *Sampler) Start() {
	if sp.ticker != nil {
		return
	}
	sp.ticker = sim.Every(sp.engine, sp.period, func() {
		now := sp.engine.Now()
		for _, probe := range sp.probes {
			name, v := probe()
			sp.series[name].Add(now, v)
		}
	})
}

// Stop halts sampling.
func (sp *Sampler) Stop() {
	if sp.ticker != nil {
		sp.ticker.Stop()
		sp.ticker = nil
	}
}

// Series returns the series recorded under name, or nil.
func (sp *Sampler) Series(name string) *Series { return sp.series[name] }

// Names returns all recorded series names, sorted.
func (sp *Sampler) Names() []string {
	out := make([]string, 0, len(sp.series))
	for n := range sp.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Event is one entry of the event log.
type Event struct {
	At   sim.Time
	Kind string
	Msg  string
}

// Log is an append-only event log. Callers on a sharded engine must only
// Addf from the global context (the clock read and the append both assume
// single-threaded access).
type Log struct {
	engine sim.Scheduler
	events []Event
	// KindFilter, when non-empty, records only these kinds.
	KindFilter map[string]bool
}

// NewLog creates a log bound to the scheduler's clock.
func NewLog(engine sim.Scheduler) *Log { return &Log{engine: sim.GlobalOf(engine)} }

// Addf records a formatted event.
func (l *Log) Addf(kind, format string, args ...any) {
	if l.KindFilter != nil && !l.KindFilter[kind] {
		return
	}
	l.events = append(l.events, Event{At: l.engine.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Events returns all recorded events.
func (l *Log) Events() []Event { return l.events }

// OfKind returns the events of one kind.
func (l *Log) OfKind(kind string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// String renders the log, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%10.3f  %-10s %s\n", e.At.Seconds(), e.Kind, e.Msg)
	}
	return b.String()
}
