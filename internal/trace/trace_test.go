package trace

import (
	"strings"
	"testing"

	"toposense/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("loss")
	s.Add(0, 0.1)
	s.Add(sim.Second, 0.3)
	s.Add(2*sim.Second, 0.2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	at, v := s.At(1)
	if at != sim.Second || v != 0.3 {
		t.Errorf("At(1) = %v, %g", at, v)
	}
	if s.Max() != 0.3 {
		t.Errorf("Max = %g", s.Max())
	}
	if got := s.Mean(); got < 0.19 || got > 0.21 {
		t.Errorf("Mean = %g", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("x")
	if s.Max() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Error("empty series aggregates nonzero")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(sim.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Add(0, 2)
}

func TestSeriesWindow(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i))
	}
	w := s.Window(3*sim.Second, 6*sim.Second)
	if w.Len() != 4 {
		t.Fatalf("window Len = %d, want 4", w.Len())
	}
	if at, v := w.At(0); at != 3*sim.Second || v != 3 {
		t.Errorf("window start = %v, %g", at, v)
	}
}

func TestSeriesWriteTSV(t *testing.T) {
	s := NewSeries("x")
	s.Add(1500*sim.Millisecond, 0.5)
	var b strings.Builder
	if err := s.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "1.500\t0.5\n" {
		t.Errorf("TSV = %q", got)
	}
}

func TestSampler(t *testing.T) {
	e := sim.NewEngine(1)
	sp := NewSampler(e, sim.Second)
	v := 0.0
	sp.Probe("v", func() float64 { v += 1; return v })
	sp.Start()
	sp.Start() // idempotent
	e.RunUntil(5 * sim.Second)
	sp.Stop()
	sp.Stop()
	e.RunUntil(10 * sim.Second)
	s := sp.Series("v")
	if s.Len() != 5 {
		t.Fatalf("samples = %d, want 5", s.Len())
	}
	if _, got := s.At(4); got != 5 {
		t.Errorf("last sample = %g", got)
	}
	if names := sp.Names(); len(names) != 1 || names[0] != "v" {
		t.Errorf("Names = %v", names)
	}
	if sp.Series("missing") != nil {
		t.Error("missing series should be nil")
	}
}

func TestLog(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLog(e)
	l.Addf("join", "receiver %d joined layer %d", 3, 2)
	e.Schedule(sim.Second, func() { l.Addf("drop", "packet lost") })
	e.Run()
	if len(l.Events()) != 2 {
		t.Fatalf("events = %v", l.Events())
	}
	if got := l.OfKind("join"); len(got) != 1 || got[0].At != 0 {
		t.Errorf("OfKind(join) = %v", got)
	}
	if !strings.Contains(l.String(), "receiver 3 joined layer 2") {
		t.Errorf("String = %q", l.String())
	}
}

func TestLogKindFilter(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLog(e)
	l.KindFilter = map[string]bool{"keep": true}
	l.Addf("keep", "a")
	l.Addf("discard", "b")
	if len(l.Events()) != 1 || l.Events()[0].Kind != "keep" {
		t.Errorf("filter failed: %v", l.Events())
	}
}

func TestSeriesWindowClipped(t *testing.T) {
	full := NewSeries("x")
	for i := 0; i < 10; i++ {
		full.Add(sim.Time(i)*sim.Second, float64(i))
	}
	empty := NewSeries("e")
	cases := []struct {
		name     string
		src      *Series
		from, to sim.Time
		wantLen  int
		wantClip bool
	}{
		{"full range", full, 0, 9 * sim.Second, 10, false},
		{"interior cut", full, 3 * sim.Second, 6 * sim.Second, 4, true},
		{"cut at head", full, sim.Second, 9 * sim.Second, 9, true},
		{"cut at tail", full, 0, 8 * sim.Second, 9, true},
		{"beyond both ends", full, -sim.Second, 20 * sim.Second, 10, false},
		{"empty window between samples", full, 3500 * sim.Millisecond, 3600 * sim.Millisecond, 0, true},
		{"inverted range", full, 6 * sim.Second, 3 * sim.Second, 0, true},
		{"empty series", empty, 0, sim.Second, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := c.src.Window(c.from, c.to)
			if w.Len() != c.wantLen {
				t.Errorf("Len = %d, want %d", w.Len(), c.wantLen)
			}
			if w.Clipped() != c.wantClip {
				t.Errorf("Clipped = %v, want %v", w.Clipped(), c.wantClip)
			}
		})
	}
	// Clipping is sticky: a full-range window of a clipped series stays
	// clipped — it still is not the whole recording.
	cut := full.Window(3*sim.Second, 6*sim.Second)
	if w := cut.Window(0, 20*sim.Second); !w.Clipped() {
		t.Error("window of a clipped series lost the clipped flag")
	}
}
