package churn

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/sim"
)

type event struct {
	at   sim.Time
	slot int
	join bool
}

// rig builds a two-node network on eng (partitioned across two shards when
// eng is a sharded engine) and registers n slots whose callbacks only log.
func rig(eng sim.Runner, slots int, log *[]event) *Driver {
	net := netsim.New(eng)
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.Connect(a, b, netsim.LinkConfig{Bandwidth: 100e6, Delay: 10 * sim.Millisecond, QueueLimit: 100})
	if se, ok := eng.(*sim.ShardedEngine); ok {
		net.Partition(se, []int{0, 1})
	}
	d := New(net)
	g := sim.GlobalOf(eng)
	for i := 0; i < slots; i++ {
		i := i
		d.Slot(0, 10*sim.Second, 5*sim.Second,
			func() { *log = append(*log, event{g.Now(), i, true}) },
			func() { *log = append(*log, event{g.Now(), i, false}) })
	}
	return d
}

func TestRenewalDeterminism(t *testing.T) {
	run := func(eng sim.Runner) ([]event, *Driver) {
		var log []event
		d := rig(eng, 4, &log)
		eng.RunUntil(300 * sim.Second)
		return log, d
	}
	serial, d1 := run(sim.NewEngine(7))
	again, _ := run(sim.NewEngine(7))
	sharded, d2 := run(sim.NewShardedEngine(7, 2))

	if len(serial) == 0 {
		t.Fatal("no churn events fired in 300s")
	}
	if d1.Joins == 0 || d1.Leaves == 0 {
		t.Fatalf("want both transitions, got joins=%d leaves=%d", d1.Joins, d1.Leaves)
	}
	check := func(name string, got []event) {
		t.Helper()
		if len(got) != len(serial) {
			t.Fatalf("%s: %d events, serial %d", name, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("%s: event %d = %+v, serial %+v", name, i, got[i], serial[i])
			}
		}
	}
	check("rerun", again)
	check("sharded", sharded)
	if d2.Joins != d1.Joins || d2.Leaves != d1.Leaves {
		t.Fatalf("sharded counters (%d, %d) != serial (%d, %d)",
			d2.Joins, d2.Leaves, d1.Joins, d1.Leaves)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) []event {
		var log []event
		eng := sim.NewEngine(seed)
		rig(eng, 4, &log)
		eng.RunUntil(300 * sim.Second)
		return log
	}
	a, b := run(1), run(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical churn schedules")
		}
	}
}

func TestStopCancelsPending(t *testing.T) {
	eng := sim.NewEngine(11)
	var log []event
	d := rig(eng, 4, &log)
	eng.At(60*sim.Second, d.Stop)
	eng.RunUntil(300 * sim.Second)
	for _, ev := range log {
		if ev.at > 60*sim.Second {
			t.Fatalf("event at %v fired after Stop at 60s", ev.at)
		}
	}
	if int(d.Joins+d.Leaves) != len(log) {
		t.Fatalf("counters (%d) disagree with log (%d)", d.Joins+d.Leaves, len(log))
	}
	d.Stop() // idempotent
}

func TestInertWithoutSlots(t *testing.T) {
	eng := sim.NewEngine(3)
	net := netsim.New(eng)
	d := New(net)
	if eng.Pending() != 0 {
		t.Fatalf("driver with no slots queued %d events", eng.Pending())
	}
	// The RNG is untouched: the next draw matches a fresh engine's first.
	if got, want := eng.Rand().Int63(), sim.NewEngine(3).Rand().Int63(); got != want {
		t.Fatalf("inert driver disturbed the RNG: %d != %d", got, want)
	}
	d.Stop()
}

func TestObsCounters(t *testing.T) {
	eng := sim.NewEngine(5)
	var log []event
	d := rig(eng, 2, &log)
	o := obs.New(obs.Options{FlightRecorder: -1, AuditPasses: -1})
	d.SetObs(o)
	eng.RunUntil(200 * sim.Second)
	if d.Joins == 0 {
		t.Fatal("no joins in 200s")
	}
	if got := o.ChurnJoins.Value(); got != d.Joins {
		t.Fatalf("churn_joins counter %d, driver %d", got, d.Joins)
	}
	if got := o.ChurnLeaves.Value(); got != d.Leaves {
		t.Fatalf("churn_leaves counter %d, driver %d", got, d.Leaves)
	}
}

func TestSlotPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(netsim.New(eng))
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero meanOn", func() { d.Slot(0, 0, sim.Second, func() {}, func() {}) })
	expectPanic("zero meanOff", func() { d.Slot(0, sim.Second, 0, func() {}, func() {}) })
	expectPanic("nil join", func() { d.Slot(0, sim.Second, sim.Second, nil, func() {}) })
	expectPanic("nil leave", func() { d.Slot(0, sim.Second, sim.Second, func() {}, nil) })
}
