// Package churn drives deterministic Poisson membership churn: receivers
// leaving a session and (re)joining it as a renewal process, the workload of
// the fig_churn study. The paper's evaluation holds the receiver set fixed;
// a deployable multicast controller must also survive the membership
// changing under it — departures that must not leave ghost registrations,
// prune cascades racing repair, budgets holding while a domain drains.
//
// A Driver owns a set of slots. Each slot is one membership position that
// alternates between joined (exponentially distributed dwell time, mean
// meanOn) and departed (mean absence meanOff), invoking caller-supplied
// join/leave callbacks at each transition. Slots start joined — the harness
// builds the initial receiver before the run — so the first event is a
// departure.
//
// Determinism contract: the driver schedules everything on the engine's
// global (stop-the-world) context, the one run-time context the run-wide
// RNG may be drawn from under the sharded engine (see sim.Scheduler). Its
// callbacks therefore run with every shard quiescent and may freely depart
// receivers, start replacement incarnations, and walk multicast state —
// identical seeds produce identical join/leave sequences on the serial and
// sharded engines alike. A Driver with no slots is completely inert: it
// touches neither the event queue nor the RNG.
package churn

import (
	"fmt"

	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/sim"
)

// Driver schedules join/leave renewal events for membership slots of one
// network. Create it with New, add slots before the run starts, and read
// the counters afterwards. Unlike fault injection, churn is supported on
// partitioned networks: every transition runs at a window barrier.
type Driver struct {
	sched sim.Scheduler // global (stop-the-world) context
	o     *obs.Obs

	// Joins and Leaves count transitions applied. All mutation happens in
	// the single-threaded global context; read them while the engine is
	// idle (setup or after the run).
	Joins, Leaves int64

	slots   int
	handles []sim.Handle
	stopped bool
}

// New creates a driver bound to the network's engine.
func New(net *netsim.Network) *Driver {
	return &Driver{sched: sim.GlobalOf(net.Engine())}
}

// SetObs wires the observability bundle; churn transitions then feed the
// churn_joins / churn_leaves counters.
func (d *Driver) SetObs(o *obs.Obs) { d.o = o }

// Slots returns how many membership slots are registered.
func (d *Driver) Slots() int { return d.slots }

// Slot registers one membership position. The slot is joined at start and
// departs after an Exp(meanOn) dwell; thereafter it alternates, rejoining
// after Exp(meanOff) absences. leave and join run in the global context at
// each transition and may mutate the whole model. Call before the run
// begins: registration draws the slot's first dwell from the run-wide RNG.
func (d *Driver) Slot(start, meanOn, meanOff sim.Time, join, leave func()) {
	if meanOn <= 0 || meanOff <= 0 {
		panic(fmt.Sprintf("churn: nonpositive mean dwell (on %v, off %v)", meanOn, meanOff))
	}
	if join == nil || leave == nil {
		panic("churn: Slot with nil callback")
	}
	var up, down func()
	down = func() {
		if d.stopped {
			return
		}
		leave()
		d.Leaves++
		if d.o != nil {
			d.o.ChurnLeaves.Inc()
		}
		d.track(d.sched.Schedule(d.exp(meanOff), up))
	}
	up = func() {
		if d.stopped {
			return
		}
		join()
		d.Joins++
		if d.o != nil {
			d.o.ChurnJoins.Inc()
		}
		d.track(d.sched.Schedule(d.exp(meanOn), down))
	}
	d.slots++
	d.track(d.sched.At(start+d.exp(meanOn), down))
}

// Stop cancels every pending transition. Slots stay in whatever membership
// state they were in; the driver cannot be restarted.
func (d *Driver) Stop() {
	if d.stopped {
		return
	}
	d.stopped = true
	for _, h := range d.handles {
		d.sched.Cancel(h)
	}
	d.handles = nil
}

func (d *Driver) track(h sim.Handle) {
	d.handles = append(d.handles, h)
}

// exp draws an exponential interval with the given mean from the run-wide
// stream. Draws happen at slot registration (engine idle) or inside a
// global event — both contexts the sharded engine permits.
func (d *Driver) exp(mean sim.Time) sim.Time {
	return sim.Time(d.sched.Rand().ExpFloat64() * float64(mean))
}
