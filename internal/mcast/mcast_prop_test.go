package mcast

import (
	"math/rand"
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Property test: after an arbitrary sequence of joins and leaves followed
// by quiescence (all prunes expired), the forwarding state is exactly the
// minimal tree covering the current members — every member receives every
// packet exactly once, and no link without downstream members carries
// anything.

func TestQuickTreeIsMinimalAfterQuiescence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(seed)
		n := netsim.New(e)
		cfg := netsim.LinkConfig{Bandwidth: 100e6, Delay: 5 * sim.Millisecond, QueueLimit: 1000}

		// Random tree topology: node 0 is the source.
		numNodes := rng.Intn(12) + 4
		nodes := make([]*netsim.Node, numNodes)
		nodes[0] = n.AddNode("src")
		for i := 1; i < numNodes; i++ {
			nodes[i] = n.AddNode("n")
			n.Connect(nodes[i], nodes[rng.Intn(i)], cfg)
		}
		d := NewDomain(n)
		d.LeaveLatency = 100 * sim.Millisecond
		g := d.RegisterGroup(0, 1, nodes[0].ID)

		// Random join/leave churn on the non-source nodes.
		members := map[int]*memberRec{}
		joined := map[int]bool{}
		for op := 0; op < 40; op++ {
			idx := rng.Intn(numNodes-1) + 1
			m := members[idx]
			if m == nil {
				m = &memberRec{}
				members[idx] = m
			}
			if joined[idx] {
				d.Leave(nodes[idx].ID, g, m)
				joined[idx] = false
			} else {
				d.Join(nodes[idx].ID, g, m)
				joined[idx] = true
			}
			e.RunUntil(e.Now() + sim.Time(rng.Intn(300))*sim.Millisecond)
		}
		// Quiesce: all grafts and prunes settle.
		e.RunUntil(e.Now() + 5*sim.Second)

		// Reset link stats, clear member logs, send one packet.
		for _, l := range n.Links() {
			l.ResetStats()
		}
		for _, m := range members {
			m.got = nil
		}
		nodes[0].SendMulticastLocal(&netsim.Packet{
			Kind: netsim.Data, Src: nodes[0].ID, Dst: netsim.NoNode,
			Group: g, Session: 0, Layer: 1, Seq: 1, Size: 100, Sent: e.Now(),
		})
		e.RunUntil(e.Now() + 5*sim.Second)

		memberCount := 0
		for idx, m := range members {
			if joined[idx] {
				memberCount++
				if len(m.got) != 1 {
					t.Fatalf("seed %d: member at node %d got %d copies, want 1", seed, idx, len(m.got))
				}
			} else if len(m.got) != 0 {
				t.Fatalf("seed %d: departed member at node %d got %d packets", seed, idx, len(m.got))
			}
		}

		// Minimality: links carried exactly the packets needed — each link
		// carries at most one copy, and the number of transmitting links is
		// exactly the number of edges of the Steiner tree (for a tree
		// topology: the union of member-to-source paths).
		needed := map[[2]netsim.NodeID]bool{}
		for idx := range members {
			if !joined[idx] {
				continue
			}
			cur := nodes[idx].ID
			for cur != nodes[0].ID {
				up := n.NextHop(cur, nodes[0].ID)
				needed[[2]netsim.NodeID{up, cur}] = true
				cur = up
			}
		}
		carrying := 0
		for _, l := range n.Links() {
			st := l.Stats()
			if st.Enqueued > 1 {
				t.Fatalf("seed %d: link %v carried %d copies", seed, l, st.Enqueued)
			}
			if st.Enqueued == 1 {
				carrying++
				if !needed[[2]netsim.NodeID{l.From, l.To}] {
					t.Fatalf("seed %d: link %v carried traffic with no members behind it", seed, l)
				}
			}
		}
		if memberCount > 0 && carrying != len(needed) {
			t.Fatalf("seed %d: %d links carried traffic, minimal tree needs %d", seed, carrying, len(needed))
		}
	}
}
