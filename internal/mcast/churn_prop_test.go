package mcast

import (
	"math/rand"
	"testing"

	"toposense/internal/faults"
	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Property test for the full membership lifecycle under hostile conditions:
// a random interleaving of joins, leaves, and link outages (with repair)
// must quiesce to exactly the minimal tree covering the member set at the
// end — the same invariant TestQuickTreeIsMinimalAfterQuiescence pins for
// the failure-free case. Outages orphan whole subtrees mid-churn: joins
// land on disconnected routers, prunes race detach events across downed
// links, and the repair path re-homes everything when the route returns.
// None of it may leave either a member without its one copy or forwarding
// state on a branch with no members behind it.

func TestQuickTreeMinimalUnderChurnAndOutages(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(seed)
		n := netsim.New(e)
		cfg := netsim.LinkConfig{Bandwidth: 100e6, Delay: 5 * sim.Millisecond, QueueLimit: 1000}

		// Random tree topology: node 0 is the source.
		numNodes := rng.Intn(12) + 4
		nodes := make([]*netsim.Node, numNodes)
		nodes[0] = n.AddNode("src")
		for i := 1; i < numNodes; i++ {
			nodes[i] = n.AddNode("n")
			n.Connect(nodes[i], nodes[rng.Intn(i)], cfg)
		}
		d := NewDomain(n)
		d.LeaveLatency = 100 * sim.Millisecond
		g := d.RegisterGroup(0, 1, nodes[0].ID)
		inj := faults.New(n)
		links := n.Links()

		// Random interleaving of join/leave churn and link outages. Every
		// outage repairs before the quiescence horizon below, so the final
		// routing is the original tree's.
		var lastRepair sim.Time
		members := map[int]*memberRec{}
		joined := map[int]bool{}
		for op := 0; op < 40; op++ {
			if rng.Intn(4) == 0 {
				// Cut a random link (both directions) for up to a second,
				// starting somewhere in the near future.
				l := links[rng.Intn(len(links))]
				start := e.Now() + sim.Time(rng.Intn(200))*sim.Millisecond
				dur := sim.Time(rng.Intn(900)+100) * sim.Millisecond
				inj.Outage(start, dur, l, l.Reverse())
				if start+dur > lastRepair {
					lastRepair = start + dur
				}
			} else {
				idx := rng.Intn(numNodes-1) + 1
				m := members[idx]
				if m == nil {
					m = &memberRec{}
					members[idx] = m
				}
				if joined[idx] {
					d.Leave(nodes[idx].ID, g, m)
					joined[idx] = false
				} else {
					d.Join(nodes[idx].ID, g, m)
					joined[idx] = true
				}
			}
			e.RunUntil(e.Now() + sim.Time(rng.Intn(300))*sim.Millisecond)
		}
		// Quiesce: every outage repaired, every repair re-homed, every
		// graft and prune settled.
		horizon := e.Now()
		if lastRepair > horizon {
			horizon = lastRepair
		}
		e.RunUntil(horizon + 5*sim.Second)

		if inj.Failures == 0 || inj.Failures != inj.Repairs {
			t.Fatalf("seed %d: %d failures, %d repairs — outages did not execute symmetrically",
				seed, inj.Failures, inj.Repairs)
		}

		// Reset link stats, clear member logs, send one packet.
		for _, l := range links {
			l.ResetStats()
		}
		for _, m := range members {
			m.got = nil
		}
		nodes[0].SendMulticastLocal(&netsim.Packet{
			Kind: netsim.Data, Src: nodes[0].ID, Dst: netsim.NoNode,
			Group: g, Session: 0, Layer: 1, Seq: 1, Size: 100, Sent: e.Now(),
		})
		e.RunUntil(e.Now() + 5*sim.Second)

		memberCount := 0
		for idx, m := range members {
			if joined[idx] {
				memberCount++
				if len(m.got) != 1 {
					t.Fatalf("seed %d: member at node %d got %d copies, want 1", seed, idx, len(m.got))
				}
			} else if len(m.got) != 0 {
				t.Fatalf("seed %d: departed member at node %d got %d packets", seed, idx, len(m.got))
			}
		}

		// Minimality: exactly the union of member-to-source paths carries
		// traffic, one copy per link — repairs must not have left duplicate
		// forwarding entries or stale branches behind.
		needed := map[[2]netsim.NodeID]bool{}
		for idx := range members {
			if !joined[idx] {
				continue
			}
			cur := nodes[idx].ID
			for cur != nodes[0].ID {
				up := n.NextHop(cur, nodes[0].ID)
				needed[[2]netsim.NodeID{up, cur}] = true
				cur = up
			}
		}
		carrying := 0
		for _, l := range links {
			st := l.Stats()
			if st.Enqueued > 1 {
				t.Fatalf("seed %d: link %v carried %d copies", seed, l, st.Enqueued)
			}
			if st.Enqueued == 1 {
				carrying++
				if !needed[[2]netsim.NodeID{l.From, l.To}] {
					t.Fatalf("seed %d: link %v carried traffic with no members behind it", seed, l)
				}
			}
		}
		if memberCount > 0 && carrying != len(needed) {
			t.Fatalf("seed %d: %d links carried traffic, minimal tree needs %d", seed, carrying, len(needed))
		}
	}
}
