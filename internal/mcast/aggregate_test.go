package mcast

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
)

// payloadRecorder keeps every control payload delivered to its node.
type payloadRecorder struct{ payloads []any }

func (r *payloadRecorder) Recv(p *netsim.Packet) { r.payloads = append(r.payloads, p.Payload) }

// buildAggTree: leaf0, leaf1 -> mid -> ctrl, aggregation installed.
func buildAggTree(t *testing.T) (*sim.Engine, *netsim.Network, *Aggregator, [2]*netsim.Node, *netsim.Node, *payloadRecorder) {
	t.Helper()
	e := sim.NewEngine(1)
	n := netsim.New(e)
	ctrl := n.AddNode("ctrl")
	mid := n.AddNode("mid")
	leaf0 := n.AddNode("leaf0")
	leaf1 := n.AddNode("leaf1")
	lc := netsim.LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond}
	n.Connect(ctrl, mid, lc)
	n.Connect(mid, leaf0, lc)
	n.Connect(mid, leaf1, lc)
	rec := &payloadRecorder{}
	ctrl.AttachAgent(rec)
	a := NewAggregator(n, ctrl.ID, 0)
	return e, n, a, [2]*netsim.Node{leaf0, leaf1}, ctrl, rec
}

func sendReport(n *netsim.Node, ctrl netsim.NodeID, r report.LossReport) {
	n.SendUnicast(report.NewControlPacket(n.ID, ctrl, report.LossReportSize, 0, r))
}

func TestAggregatorAbsorbsAndMergesUpward(t *testing.T) {
	e, _, a, leaves, ctrl, rec := buildAggTree(t)

	// Each leaf reports once; the reports are absorbed at their origin,
	// flushed up one level per flush interval, merged at mid, and arrive at
	// the controller as one aggregate from mid's subtree.
	sendReport(leaves[0], ctrl.ID, report.LossReport{
		Node: leaves[0].ID, Session: 0, Level: 2, LossRate: 0.25, Bytes: 1000})
	sendReport(leaves[1], ctrl.ID, report.LossReport{
		Node: leaves[1].ID, Session: 0, Level: 3, LossRate: 0.5, Bytes: 2000})
	e.RunUntil(3 * sim.Second)

	if a.Absorbed != 2 {
		t.Errorf("Absorbed = %d, want 2", a.Absorbed)
	}
	if a.Merged == 0 {
		t.Error("no child aggregates merged at mid")
	}
	// The controller saw aggregates only — never a flat LossReport.
	var aggs []*report.Aggregate
	for _, pl := range rec.payloads {
		switch pl := pl.(type) {
		case *report.Aggregate:
			aggs = append(aggs, pl)
		case report.LossReport:
			t.Errorf("flat report leaked past the aggregation layer: %v", pl)
		}
	}
	if len(aggs) == 0 {
		t.Fatal("no aggregate reached the controller")
	}
	// Across all arriving aggregates the two reports appear exactly once.
	var reports int64
	var bytes int64
	worst := netsim.NoNode
	var maxLoss float64
	for _, ag := range aggs {
		reports += ag.ReportCount
		bytes += ag.ByteTotal
		if ag.MaxLoss > maxLoss {
			maxLoss, worst = ag.MaxLoss, ag.Worst
		}
		if ag.Origin != 1 { // mid is the controller's only child
			t.Errorf("aggregate origin = %d, want mid (1)", ag.Origin)
		}
	}
	if reports != 2 || bytes != 3000 {
		t.Errorf("reports=%d bytes=%d, want 2/3000", reports, bytes)
	}
	if maxLoss != 0.5 || worst != leaves[1].ID {
		t.Errorf("worst = %.2f@%d, want 0.50@%d", maxLoss, worst, leaves[1].ID)
	}
}

func TestAggregatorPassesUnrelatedControl(t *testing.T) {
	e, _, _, leaves, ctrl, rec := buildAggTree(t)
	// Registrations are not loss feedback; they must pass through.
	leaves[0].SendUnicast(report.NewControlPacket(leaves[0].ID, ctrl.ID, report.RegisterSize, 0,
		report.Register{Node: leaves[0].ID, Session: 0, Level: 1}))
	e.RunUntil(sim.Second)
	found := false
	for _, pl := range rec.payloads {
		if _, ok := pl.(report.Register); ok {
			found = true
		}
	}
	if !found {
		t.Error("registration did not reach the controller")
	}
}

func TestAggregatorSplitsBatchesDownward(t *testing.T) {
	e, n, a, leaves, ctrl, _ := buildAggTree(t)
	rec0, rec1 := &payloadRecorder{}, &payloadRecorder{}
	leaves[0].AttachAgent(rec0)
	leaves[1].AttachAgent(rec1)

	// The controller's batch for mid's subtree: one entry per leaf. The
	// aggregator at mid must split it per next hop and forward.
	b := report.NewSuggestionBatch()
	b.Add(leaves[0].ID, 0, 4)
	b.Add(leaves[1].ID, 0, 2)
	pkt := n.NewPacket()
	pkt.Kind = netsim.Control
	pkt.Src = ctrl.ID
	pkt.Dst = 1 // mid
	pkt.Group = netsim.NoGroup
	pkt.Size = b.WireSize()
	pkt.Payload = b
	ctrl.SendUnicast(pkt)
	pkt.Release()
	e.RunUntil(sim.Second)

	if a.Batches != 2 {
		t.Errorf("Batches = %d, want 2 (one per leaf)", a.Batches)
	}
	check := func(name string, rec *payloadRecorder, node netsim.NodeID, want int) {
		t.Helper()
		for _, pl := range rec.payloads {
			if sb, ok := pl.(*report.SuggestionBatch); ok {
				if lvl, ok := sb.Find(node, 0); ok && lvl == want {
					return
				}
			}
		}
		t.Errorf("%s: no batch entry with level %d arrived", name, want)
	}
	check("leaf0", rec0, leaves[0].ID, 4)
	check("leaf1", rec1, leaves[1].ID, 2)
}

// TestAggregatorDeterministicFlushOrder: two sessions pending at one node
// flush in session order whatever order their reports arrived in.
func TestAggregatorFlushSessionOrder(t *testing.T) {
	e, _, _, leaves, ctrl, rec := buildAggTree(t)
	// Higher session first: the per-node pending list must stay sorted.
	sendReport(leaves[0], ctrl.ID, report.LossReport{Node: leaves[0].ID, Session: 3, Level: 1})
	sendReport(leaves[0], ctrl.ID, report.LossReport{Node: leaves[0].ID, Session: 1, Level: 1})
	e.RunUntil(3 * sim.Second)
	var sessions []int
	for _, pl := range rec.payloads {
		if ag, ok := pl.(*report.Aggregate); ok {
			sessions = append(sessions, ag.Session)
		}
	}
	if len(sessions) < 2 || sessions[0] != 1 || sessions[1] != 3 {
		t.Errorf("flush session order = %v, want [1 3 ...]", sessions)
	}
}
