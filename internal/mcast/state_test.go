package mcast

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

type nullMember struct{}

func (nullMember) RecvMulticast(*netsim.Packet) {}

// buildStarDomain joins one member per (arm, group): the hub crosses the
// dense-promotion threshold while every arm stays sparse.
func buildStarDomain(t *testing.T, groups int) (*Domain, *netsim.Network) {
	t.Helper()
	e := sim.NewEngine(1)
	net := netsim.New(e)
	cfg := netsim.LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	src := net.AddNode("src")
	d := NewDomain(net)
	for g := 0; g < groups; g++ {
		arm := net.AddNode("arm")
		net.Connect(src, arm, cfg)
		id := d.RegisterGroup(g, 1, src.ID)
		d.Join(arm.ID, id, nullMember{})
	}
	e.RunUntil(sim.Second)
	return d, net
}

func TestStatePromotionAtSource(t *testing.T) {
	const groups = 2 * denseGroupsPerNode
	d, net := buildStarDomain(t, groups)
	stats := d.StateStats()
	if stats.DenseNodes != 1 {
		t.Errorf("DenseNodes = %d, want 1 (only the source hub)", stats.DenseNodes)
	}
	// Source carries all groups; each arm exactly one.
	if want := 2 * groups; stats.Entries != want {
		t.Errorf("Entries = %d, want %d", stats.Entries, want)
	}
	// Every entry still answers, through both container forms.
	for g := 0; g < groups; g++ {
		id := d.GroupOf(g, 1)
		if !d.OnTree(0, id) {
			t.Fatalf("source off tree for group %d after promotion", g)
		}
		if kids := d.ForwardingChildren(0, id); len(kids) != 1 {
			t.Fatalf("source children for group %d = %v, want one arm", g, kids)
		}
	}
	// Memory must be far below the dense nodes×groups table the old layout
	// kept: with one sparse entry per arm it is O(entries), not O(N×G).
	denseEquiv := net.NumNodes() * groups * 8
	if stats.Bytes >= denseEquiv {
		t.Errorf("Bytes = %d, not sublinear vs dense nodes×groups = %d", stats.Bytes, denseEquiv)
	}
	if stats.Nodes != net.NumNodes() {
		t.Errorf("Nodes = %d, want %d", stats.Nodes, net.NumNodes())
	}
}

func TestStateSparseLookupMisses(t *testing.T) {
	d, _ := buildStarDomain(t, 4)
	// Arm node 1 joined exactly one group; other group IDs must miss
	// cleanly in the sparse container (below, between, above its ID).
	for g := netsim.GroupID(0); g < 4; g++ {
		st := d.lookup(1, g)
		if (st != nil) != d.OnTree(1, g) {
			t.Fatalf("lookup/OnTree disagree at node 1 group %d", g)
		}
	}
	if d.lookup(1, 99) != nil {
		t.Error("lookup hit for an unregistered group")
	}
	if d.lookup(netsim.NodeID(1000), 0) != nil {
		t.Error("lookup hit for an unknown node")
	}
}

func TestStateDenseContainerGrowsForNewGroups(t *testing.T) {
	const groups = denseGroupsPerNode + 3
	d, net := buildStarDomain(t, groups)
	// The source promoted mid-way; groups registered after promotion must
	// land in the grown dense container.
	src := netsim.NodeID(0)
	last := d.GroupOf(groups-1, 1)
	if !d.OnTree(src, last) {
		t.Fatal("post-promotion group missing at the promoted node")
	}
	stats := d.StateStats()
	if stats.DenseNodes != 1 {
		t.Errorf("DenseNodes = %d, want 1", stats.DenseNodes)
	}
	if stats.Nodes != net.NumNodes() {
		t.Errorf("Nodes = %d, want %d", stats.Nodes, net.NumNodes())
	}
}
