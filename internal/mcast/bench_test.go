package mcast

import (
	"fmt"
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// countMember tallies delivered multicast packets.
type countMember struct{ got int64 }

func (m *countMember) RecvMulticast(p *netsim.Packet) { m.got++ }

// benchStar builds src ── r ──< N children, each child hosting one joined
// member, and settles the grafts so the tree is fully built before the
// timer starts. Links are fast and queues deep: nothing drops, every
// injected packet is replicated to every child.
func benchStar(b *testing.B, fanout int) (*sim.Engine, *netsim.Network, *Domain, *netsim.Node, []*countMember) {
	b.Helper()
	e := sim.NewEngine(1)
	net := netsim.New(e)
	d := NewDomain(net)
	cfg := netsim.LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond, QueueLimit: 4096}
	src := net.AddNode("src")
	r := net.AddNode("r")
	net.Connect(src, r, cfg)
	g := d.RegisterGroup(0, 1, src.ID)
	members := make([]*countMember, fanout)
	for i := 0; i < fanout; i++ {
		c := net.AddNode(fmt.Sprintf("c%d", i))
		net.Connect(r, c, cfg)
		members[i] = &countMember{}
		d.Join(c.ID, g, members[i])
	}
	e.Run() // let grafts propagate so forwarding state exists everywhere
	return e, net, d, src, members
}

// BenchmarkReplicationFanout measures the data path of the multicast layer:
// one pooled packet entering a router and being replicated to N downstream
// children. This is the per-packet per-hop cost the paper's layered model
// multiplies by every layer of every session; it must stay at 0 allocs/op.
func BenchmarkReplicationFanout(b *testing.B) {
	for _, fanout := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("children-%d", fanout), func(b *testing.B) {
			e, net, d, src, members := benchStar(b, fanout)
			g := d.GroupOf(0, 1)
			b.ReportAllocs()
			b.ResetTimer()
			// Pace one packet per serialization slot from inside the
			// simulation so the source queue stays shallow and pooled
			// packets recycle while later ones are in flight.
			const gap = 8 * sim.Microsecond
			sent := 0
			var inject func()
			inject = func() {
				p := net.NewPacket()
				p.Kind = netsim.Data
				p.Src = src.ID
				p.Dst = netsim.NoNode
				p.Group = g
				p.Session = 0
				p.Layer = 1
				p.Seq = int64(sent)
				p.Size = 1000
				src.SendMulticastLocal(p)
				p.Release()
				sent++
				if sent < b.N {
					e.Schedule(gap, inject)
				}
			}
			e.Schedule(0, inject)
			e.Run()
			b.StopTimer()
			for i, m := range members {
				if m.got != int64(b.N) {
					b.Fatalf("member %d received %d packets, want %d", i, m.got, b.N)
				}
			}
			b.ReportMetric(float64(b.N*fanout)/b.Elapsed().Seconds(), "replications/s")
		})
	}
}

// BenchmarkGraftPruneChurn measures tree maintenance: a member joining and
// leaving behind an off-tree router, so every cycle grafts two hops up to
// the source's router, waits out the leave latency and prunes back down.
// This is the control path that rebuilds the replication fan-out cache.
func BenchmarkGraftPruneChurn(b *testing.B) {
	e := sim.NewEngine(1)
	net := netsim.New(e)
	d := NewDomain(net)
	cfg := netsim.LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond, QueueLimit: 64}
	src := net.AddNode("src")
	r := net.AddNode("r")
	leaf := net.AddNode("leaf")
	net.Connect(src, r, cfg)
	net.Connect(r, leaf, cfg)
	g := d.RegisterGroup(0, 1, src.ID)
	m := &countMember{}
	b.ReportAllocs()
	b.ResetTimer()
	// Each cycle: join, let the graft settle, leave, let the prune timer
	// expire and the prune propagate, then start over.
	cycle := 0
	var step func()
	step = func() {
		d.Join(leaf.ID, g, m)
		e.Schedule(d.LeaveLatency/4, func() {
			d.Leave(leaf.ID, g, m)
			e.Schedule(2*d.LeaveLatency, func() {
				cycle++
				if cycle < b.N {
					step()
				}
			})
		})
	}
	e.Schedule(0, step)
	e.Run()
	b.StopTimer()
	if got := d.Grafts; got < int64(b.N) {
		b.Fatalf("only %d grafts over %d cycles", got, b.N)
	}
	if d.OnTree(r.ID, g) {
		b.Fatal("router still on tree after final prune")
	}
}
