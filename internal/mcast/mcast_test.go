package mcast

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// fixture: src -- r1 -- r2 with two leaves under r2 and one under r1.
//
//	src - r1 - r2 - leafA
//	       |    `-- leafB
//	     leafC
type fixture struct {
	e                   *sim.Engine
	n                   *netsim.Network
	d                   *Domain
	src, r1, r2         *netsim.Node
	leafA, leafB, leafC *netsim.Node
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	e := sim.NewEngine(1)
	n := netsim.New(e)
	f := &fixture{e: e, n: n}
	f.src = n.AddNode("src")
	f.r1 = n.AddNode("r1")
	f.r2 = n.AddNode("r2")
	f.leafA = n.AddNode("leafA")
	f.leafB = n.AddNode("leafB")
	f.leafC = n.AddNode("leafC")
	cfg := netsim.LinkConfig{Bandwidth: 10e6, Delay: 10 * sim.Millisecond}
	n.Connect(f.src, f.r1, cfg)
	n.Connect(f.r1, f.r2, cfg)
	n.Connect(f.r2, f.leafA, cfg)
	n.Connect(f.r2, f.leafB, cfg)
	n.Connect(f.r1, f.leafC, cfg)
	f.d = NewDomain(n)
	return f
}

type memberRec struct {
	got []*netsim.Packet
}

func (m *memberRec) RecvMulticast(p *netsim.Packet) { m.got = append(m.got, p) }

func (f *fixture) send(g netsim.GroupID, seq int64) {
	s, l := f.d.SessionLayer(g)
	f.src.SendMulticastLocal(&netsim.Packet{
		Kind: netsim.Data, Src: f.src.ID, Dst: netsim.NoNode,
		Group: g, Session: s, Layer: l, Seq: seq, Size: 1000, Sent: f.e.Now(),
	})
}

func TestRegisterGroup(t *testing.T) {
	f := newFixture(t)
	g1 := f.d.RegisterGroup(0, 1, f.src.ID)
	g2 := f.d.RegisterGroup(0, 2, f.src.ID)
	if g1 == g2 {
		t.Fatal("distinct layers share a group")
	}
	if f.d.GroupOf(0, 1) != g1 || f.d.GroupOf(0, 2) != g2 {
		t.Fatal("GroupOf lookup broken")
	}
	if f.d.GroupOf(9, 9) != netsim.NoGroup {
		t.Fatal("missing group should be NoGroup")
	}
	if f.d.RegisterGroup(0, 1, f.src.ID) != g1 {
		t.Fatal("re-registration should return the same id")
	}
	if f.d.Source(g1) != f.src.ID {
		t.Fatal("Source lookup broken")
	}
	s, l := f.d.SessionLayer(g2)
	if s != 0 || l != 2 {
		t.Fatalf("SessionLayer = (%d,%d)", s, l)
	}
	if f.d.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", f.d.NumGroups())
	}
}

func TestRegisterConflictingSourcePanics(t *testing.T) {
	f := newFixture(t)
	f.d.RegisterGroup(0, 1, f.src.ID)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.d.RegisterGroup(0, 1, f.r1.ID)
}

func TestJoinBuildsTreeAndDelivers(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma := &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	// Graft needs 3 hops x 10ms to reach the source.
	f.e.RunUntil(100 * sim.Millisecond)
	if !f.d.OnTree(f.r1.ID, g) || !f.d.OnTree(f.r2.ID, g) {
		t.Fatal("graft did not build forwarding state")
	}
	f.send(g, 1)
	f.e.RunUntil(sim.Second)
	if len(ma.got) != 1 {
		t.Fatalf("member got %d packets, want 1", len(ma.got))
	}
}

func TestReplicationOnlyWhereMembers(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma, mc := &memberRec{}, &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.d.Join(f.leafC.ID, g, mc)
	f.e.RunUntil(100 * sim.Millisecond)
	f.send(g, 1)
	f.e.RunUntil(sim.Second)
	if len(ma.got) != 1 || len(mc.got) != 1 {
		t.Fatalf("got A=%d C=%d, want 1 each", len(ma.got), len(mc.got))
	}
	// leafB never joined: no traffic on r2->leafB.
	lb := f.r2.LinkTo(f.leafB.ID)
	if lb.Stats().Enqueued != 0 {
		t.Errorf("r2->leafB carried %d packets, want 0", lb.Stats().Enqueued)
	}
	// r1->r2 carries exactly one copy even with two branches downstream.
	l12 := f.r1.LinkTo(f.r2.ID)
	if l12.Stats().Enqueued != 1 {
		t.Errorf("r1->r2 carried %d copies, want 1", l12.Stats().Enqueued)
	}
}

func TestSharedTreeSingleCopyPerLink(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma, mb := &memberRec{}, &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.d.Join(f.leafB.ID, g, mb)
	f.e.RunUntil(100 * sim.Millisecond)
	for i := 0; i < 5; i++ {
		f.send(g, int64(i))
	}
	f.e.RunUntil(sim.Second)
	if len(ma.got) != 5 || len(mb.got) != 5 {
		t.Fatalf("A=%d B=%d, want 5 each", len(ma.got), len(mb.got))
	}
	if got := f.src.LinkTo(f.r1.ID).Stats().Enqueued; got != 5 {
		t.Errorf("src->r1 carried %d, want 5 (one copy per packet)", got)
	}
}

func TestDoubleJoinIsIdempotent(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma := &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.d.Join(f.leafA.ID, g, ma)
	f.e.RunUntil(100 * sim.Millisecond)
	f.send(g, 1)
	f.e.RunUntil(sim.Second)
	if len(ma.got) != 1 {
		t.Fatalf("duplicate join duplicated delivery: %d", len(ma.got))
	}
}

func TestLeaveLatencyKeepsTraffickFlowing(t *testing.T) {
	f := newFixture(t)
	f.d.LeaveLatency = 500 * sim.Millisecond
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma := &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.e.RunUntil(100 * sim.Millisecond)
	f.d.Leave(f.leafA.ID, g, ma)
	// Within the leave-latency window the tree still forwards to leafA's
	// node (the member itself is gone, so it receives nothing, but the
	// link keeps carrying traffic — that is the congestion hazard).
	f.send(g, 1)
	f.e.RunUntil(200 * sim.Millisecond)
	if got := f.r2.LinkTo(f.leafA.ID).Stats().Enqueued; got != 1 {
		t.Errorf("link to leafA carried %d during leave window, want 1", got)
	}
	if len(ma.got) != 0 {
		t.Errorf("departed member received %d packets", len(ma.got))
	}
	// After the window + prune propagation, the branch is gone.
	f.e.RunUntil(2 * sim.Second)
	f.send(g, 2)
	f.e.RunUntil(3 * sim.Second)
	if got := f.r2.LinkTo(f.leafA.ID).Stats().Enqueued; got != 1 {
		t.Errorf("link to leafA carried %d after prune, want still 1", got)
	}
	if f.d.OnTree(f.r2.ID, g) || f.d.OnTree(f.r1.ID, g) {
		t.Error("tree not fully pruned after sole member left")
	}
}

func TestRejoinDuringLeaveWindowCancelsPrune(t *testing.T) {
	f := newFixture(t)
	f.d.LeaveLatency = 500 * sim.Millisecond
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma := &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.e.RunUntil(100 * sim.Millisecond)
	f.d.Leave(f.leafA.ID, g, ma)
	f.e.RunUntil(300 * sim.Millisecond) // inside the window
	f.d.Join(f.leafA.ID, g, ma)
	f.e.RunUntil(2 * sim.Second) // past where the prune would have fired
	f.send(g, 1)
	f.e.RunUntil(3 * sim.Second)
	if len(ma.got) != 1 {
		t.Fatalf("re-joined member got %d packets, want 1", len(ma.got))
	}
}

func TestLeaveOnlyPrunesEmptyBranch(t *testing.T) {
	f := newFixture(t)
	f.d.LeaveLatency = 100 * sim.Millisecond
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma, mb := &memberRec{}, &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.d.Join(f.leafB.ID, g, mb)
	f.e.RunUntil(200 * sim.Millisecond)
	f.d.Leave(f.leafA.ID, g, ma)
	f.e.RunUntil(sim.Second) // prune done
	f.send(g, 1)
	f.e.RunUntil(2 * sim.Second)
	if len(mb.got) != 1 {
		t.Fatalf("remaining member got %d packets, want 1", len(mb.got))
	}
	if f.d.OnTree(f.leafA.ID, g) {
		t.Error("pruned leaf still on tree")
	}
	if !f.d.OnTree(f.r2.ID, g) {
		t.Error("r2 wrongly pruned while leafB is a member")
	}
}

func TestLeaveUnknownMemberIsSafe(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	f.d.Leave(f.leafA.ID, g, &memberRec{}) // never joined: no-op
	f.e.Run()
}

func TestForwardingChildrenSnapshot(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	f.d.Join(f.leafA.ID, g, &memberRec{})
	f.d.Join(f.leafB.ID, g, &memberRec{})
	f.d.Join(f.leafC.ID, g, &memberRec{})
	f.e.RunUntil(200 * sim.Millisecond)
	kids := f.d.ForwardingChildren(f.r2.ID, g)
	if len(kids) != 2 || kids[0] != f.leafA.ID || kids[1] != f.leafB.ID {
		t.Fatalf("r2 children = %v", kids)
	}
	kids = f.d.ForwardingChildren(f.r1.ID, g)
	if len(kids) != 2 || kids[0] != f.r2.ID || kids[1] != f.leafC.ID {
		t.Fatalf("r1 children = %v", kids)
	}
	if got := f.d.ForwardingChildren(f.leafB.ID, g); len(got) != 0 {
		t.Fatalf("leaf has children %v", got)
	}
	if !f.d.HasLocalMembers(f.leafA.ID, g) {
		t.Error("HasLocalMembers(leafA) = false")
	}
	if f.d.HasLocalMembers(f.r1.ID, g) {
		t.Error("HasLocalMembers(r1) = true")
	}
}

func TestGraftPruneCounters(t *testing.T) {
	f := newFixture(t)
	f.d.LeaveLatency = 50 * sim.Millisecond
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma := &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.e.RunUntil(200 * sim.Millisecond)
	if f.d.Grafts != 3 { // leafA->r2, r2->r1, r1->src
		t.Errorf("Grafts = %d, want 3", f.d.Grafts)
	}
	f.d.Leave(f.leafA.ID, g, ma)
	f.e.RunUntil(2 * sim.Second)
	if f.d.Prunes != 3 {
		t.Errorf("Prunes = %d, want 3", f.d.Prunes)
	}
}

func TestSourceLocalMember(t *testing.T) {
	// A member attached at the source node itself gets packets with no tree.
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	m := &memberRec{}
	f.d.Join(f.src.ID, g, m)
	f.e.RunUntil(100 * sim.Millisecond)
	f.send(g, 1)
	f.e.Run()
	if len(m.got) != 1 {
		t.Fatalf("source-local member got %d", len(m.got))
	}
}

func TestMulticastLossOnCongestedLink(t *testing.T) {
	// Saturate the narrow r2->leafA link: the shared upstream still
	// delivers everything to leafC via r1.
	e := sim.NewEngine(1)
	n := netsim.New(e)
	src := n.AddNode("src")
	r1 := n.AddNode("r1")
	la := n.AddNode("leafA")
	lc := n.AddNode("leafC")
	fast := netsim.LinkConfig{Bandwidth: 10e6, Delay: 10 * sim.Millisecond}
	slow := netsim.LinkConfig{Bandwidth: 64e3, Delay: 10 * sim.Millisecond, QueueLimit: 4}
	n.Connect(src, r1, fast)
	n.Connect(r1, la, slow)
	n.Connect(r1, lc, fast)
	d := NewDomain(n)
	g := d.RegisterGroup(0, 1, src.ID)
	ma, mc := &memberRec{}, &memberRec{}
	d.Join(la.ID, g, ma)
	d.Join(lc.ID, g, mc)
	e.RunUntil(100 * sim.Millisecond)

	const pkts = 100
	for i := 0; i < pkts; i++ {
		i := i
		e.Schedule(sim.Time(i)*10*sim.Millisecond, func() {
			src.SendMulticastLocal(&netsim.Packet{
				Kind: netsim.Data, Dst: netsim.NoNode, Group: g,
				Session: 0, Layer: 1, Seq: int64(i), Size: 1000, Sent: e.Now(),
			})
		})
	}
	e.Run()
	if len(mc.got) != pkts {
		t.Errorf("fast branch lost packets: %d/%d", len(mc.got), pkts)
	}
	if len(ma.got) >= pkts {
		t.Errorf("slow branch lost nothing under 12x overload")
	}
	if drops := r1.LinkTo(la.ID).Stats().Dropped; drops == 0 {
		t.Error("no drops recorded on the bottleneck")
	}
}

func TestPacketToUnjoinedGroupVanishes(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	f.send(g, 1) // nobody joined
	f.e.Run()
	if got := f.src.LinkTo(f.r1.ID).Stats().Enqueued; got != 0 {
		t.Errorf("packet forwarded to empty tree: %d", got)
	}
}
