// Package mcast layers multicast distribution on top of netsim: group
// addressing, source-rooted shortest-path trees, receiver join (graft) and
// leave (prune) processing, and the group-leave latency the paper discusses
// in Section V.
//
// Every (session, layer) pair is one multicast group, exactly as in the
// paper's layered model where each layer is transmitted on its own multicast
// address. Routers keep per-group forwarding state: the set of downstream
// links that lead to at least one member, plus locally attached members.
//
// Joins propagate hop-by-hop toward the source along the unicast
// shortest-path tree (reverse-path), taking one link-propagation delay per
// hop, and stop at the first on-tree router — like an IGMP report followed
// by a PIM graft. Leaves are lazier: when the last member behind a router
// goes away, the router keeps forwarding for LeaveLatency (the IGMP
// last-member query interval) before pruning, so an over-subscribed layer
// keeps congesting the bottleneck for a while after the receiver drops it.
// The paper calls this out as a core difficulty of layered multicast.
//
// Forwarding state is a sparse-dense hybrid. A router in a large topology
// touches only the handful of groups whose trees cross it, so a dense
// [node][group] table would waste nodes×groups pointer slots — the memory
// wall at 10^5 receivers. Instead each node holds a short sorted list of
// (group, entry) pairs, answered by binary search, and is promoted to a
// dense group-indexed slice only once it joins enough trees (a source or a
// hub router). Either way the data path does no map access and no
// allocation — one slice index plus at worst a few comparisons — and each
// entry caches its downstream children as a sorted slice with the outgoing
// links resolved alongside, rebuilt only on graft and prune.
package mcast

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/sim"
)

// DefaultLeaveLatency approximates IGMPv2 last-member query behaviour:
// traffic keeps flowing roughly this long after the last member leaves.
const DefaultLeaveLatency = 1 * sim.Second

// Member receives multicast data packets for groups it has joined.
type Member interface {
	RecvMulticast(p *netsim.Packet)
}

// groupKey identifies a group by its session and layer.
type groupKey struct {
	session, layer int
}

// groupInfo is the domain-wide registration of one group.
type groupInfo struct {
	id     netsim.GroupID
	key    groupKey
	source netsim.NodeID
}

// nodeGroupState is one router's forwarding entry for one group. The
// children currently forwarded to are kept sorted, with the outgoing link
// to each child cached in the parallel links slice, so the data path
// iterates both without consulting any map.
type nodeGroupState struct {
	children   []netsim.NodeID // downstream children, ascending
	links      []*netsim.Link  // links[i] carries traffic to children[i]; lazily resolved
	members    []Member        // locally attached members
	pruneTimer sim.Handle      // pending leave-latency expiry, if any

	// parent is the upstream node this router grafted toward, or NoNode
	// when off-tree (or orphaned by a failure). Tree repair needs it to
	// detach from the *old* parent after a reroute, which the routing
	// table can no longer answer.
	parent netsim.NodeID

	// idleSince is when the router last went idle (no members, no
	// children) and scheduled its leave-latency timer; zero otherwise. It
	// feeds the departure-to-prune latency histogram: the gap between the
	// last member leaving and the prune landing at the parent.
	idleSince sim.Time
}

func (s *nodeGroupState) active() bool {
	return len(s.members) > 0 || len(s.children) > 0
}

// addChild inserts c in sorted position (a no-op when already present) and
// caches the outgoing link.
func (s *nodeGroupState) addChild(c netsim.NodeID, link *netsim.Link) {
	i := 0
	for i < len(s.children) && s.children[i] < c {
		i++
	}
	if i < len(s.children) && s.children[i] == c {
		return
	}
	s.children = append(s.children, 0)
	s.links = append(s.links, nil)
	copy(s.children[i+1:], s.children[i:])
	copy(s.links[i+1:], s.links[i:])
	s.children[i] = c
	s.links[i] = link
}

// removeChild drops c, preserving order.
func (s *nodeGroupState) removeChild(c netsim.NodeID) {
	for i, have := range s.children {
		if have == c {
			s.children = append(s.children[:i], s.children[i+1:]...)
			s.links = append(s.links[:i], s.links[i+1:]...)
			return
		}
	}
}

// denseGroupsPerNode is the promotion threshold: once a node carries state
// for this many groups, its sorted-list container is promoted to a dense
// group-indexed slice. Sources and hub routers cross it quickly; leaf
// routers in a large topology never do.
const denseGroupsPerNode = 32

// nodeGroups holds one node's forwarding entries across groups: sorted
// (ids, sts) pairs while sparse, a group-indexed slice once promoted.
type nodeGroups struct {
	ids   []netsim.GroupID  // sorted group IDs (sparse form)
	sts   []*nodeGroupState // sts[i] is the entry for ids[i]
	dense []*nodeGroupState // non-nil once promoted; indexed by GroupID
}

// get returns the node's entry for g, or nil. Zero allocations: the data
// path calls it per packet per hop.
func (ng *nodeGroups) get(g netsim.GroupID) *nodeGroupState {
	if ng.dense != nil {
		if int(g) >= len(ng.dense) {
			return nil
		}
		return ng.dense[g]
	}
	lo, hi := uint(0), uint(len(ng.ids))
	for lo < hi {
		mid := (lo + hi) / 2
		if ng.ids[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < uint(len(ng.ids)) && ng.ids[lo] == g {
		return ng.sts[lo]
	}
	return nil
}

// put installs st as the entry for g (which must not be present) and
// promotes the container to dense form past the threshold.
func (ng *nodeGroups) put(g netsim.GroupID, st *nodeGroupState) {
	if ng.dense != nil {
		for int(g) >= len(ng.dense) {
			ng.dense = append(ng.dense, nil)
		}
		ng.dense[g] = st
		return
	}
	i := 0
	for i < len(ng.ids) && ng.ids[i] < g {
		i++
	}
	ng.ids = append(ng.ids, 0)
	ng.sts = append(ng.sts, nil)
	copy(ng.ids[i+1:], ng.ids[i:])
	copy(ng.sts[i+1:], ng.sts[i:])
	ng.ids[i] = g
	ng.sts[i] = st
	if len(ng.ids) >= denseGroupsPerNode {
		max := int(ng.ids[len(ng.ids)-1]) // ids are sorted
		dense := make([]*nodeGroupState, max+1)
		for k, id := range ng.ids {
			dense[id] = ng.sts[k]
		}
		ng.ids, ng.sts, ng.dense = nil, nil, dense
	}
}

// Domain manages multicast state for an entire network. It installs itself
// as the MulticastHandler on every node.
type Domain struct {
	net          *netsim.Network
	LeaveLatency sim.Time

	groups []groupInfo                 // indexed by GroupID
	byKey  map[groupKey]netsim.GroupID // (session,layer) -> id

	// state[node] holds the node's forwarding entries across groups —
	// sparse (sorted pairs) for the common leaf router, dense past the
	// promotion threshold. It grows lazily on the control path
	// (graft/join); the data path only reads.
	state []nodeGroups

	// Grafts and Prunes count tree maintenance operations (for tests and
	// reporting). Repairs counts nodes re-homed (or orphaned) by route
	// changes after link failures. Grafts and prunes can fire from any
	// shard of a partitioned network, so the counters move atomically;
	// read them only while the engine is quiescent.
	Grafts, Prunes, Repairs int64

	// obs, when set, mirrors the tree-maintenance counters into the
	// observability registry and records graft/prune/repair events in the
	// flight recorder. All hooks sit on the control path; HandleMulticast
	// is untouched.
	obs *obs.Obs
}

// SetObs attaches an observability bundle; nil detaches it.
func (d *Domain) SetObs(o *obs.Obs) { d.obs = o }

// noteTree records one tree-maintenance operation with the bundle, if any.
// to is the relevant peer (the parent grafted toward or pruned from), or
// NoNode when there is none.
func (d *Domain) noteTree(kind obs.EventKind, n, to netsim.NodeID, g netsim.GroupID) {
	if d.obs == nil {
		return
	}
	switch kind {
	case obs.EvGraft:
		d.obs.Grafts.Inc()
	case obs.EvPrune:
		d.obs.Prunes.Inc()
	case obs.EvRepair:
		d.obs.Repairs.Inc()
	}
	session, layer := d.SessionLayer(g)
	d.obs.Rec.Record(obs.Event{
		At:      d.net.SchedulerFor(n).Now(),
		Kind:    kind,
		From:    int32(n),
		To:      int32(to),
		Session: int32(session),
		Layer:   int32(layer),
		Seq:     int64(g),
	})
}

// NewDomain creates the multicast domain and installs it on all current
// nodes of the network; nodes added afterwards are covered automatically
// via the network's OnAddNode hook.
func NewDomain(net *netsim.Network) *Domain {
	d := &Domain{
		net:          net,
		LeaveLatency: DefaultLeaveLatency,
		byKey:        make(map[groupKey]netsim.GroupID),
		// Preallocate one container per node: on a partitioned network each
		// shard touches only its own nodes' containers, but a lazy append
		// of the backing slice itself would race across shards.
		state: make([]nodeGroups, net.NumNodes()),
	}
	d.Install()
	net.OnAddNode = func(n *netsim.Node) {
		n.SetMulticastHandler(d)
		for int(n.ID) >= len(d.state) {
			d.state = append(d.state, nodeGroups{})
		}
	}
	net.OnRouteChange(d.onRouteChange)
	return d
}

// Install (re)attaches the domain as multicast handler on every node.
func (d *Domain) Install() {
	for _, n := range d.net.Nodes() {
		n.SetMulticastHandler(d)
	}
}

// RegisterGroup declares a (session, layer) group rooted at source and
// returns its GroupID. Registering the same pair twice returns the original
// ID (the source must match).
func (d *Domain) RegisterGroup(session, layer int, source netsim.NodeID) netsim.GroupID {
	key := groupKey{session, layer}
	if id, ok := d.byKey[key]; ok {
		if d.groups[id].source != source {
			panic(fmt.Sprintf("mcast: group s%d/l%d re-registered with a different source", session, layer))
		}
		return id
	}
	id := netsim.GroupID(len(d.groups))
	d.groups = append(d.groups, groupInfo{id: id, key: key, source: source})
	d.byKey[key] = id
	return id
}

// GroupOf returns the GroupID for (session, layer), or netsim.NoGroup.
func (d *Domain) GroupOf(session, layer int) netsim.GroupID {
	if id, ok := d.byKey[groupKey{session, layer}]; ok {
		return id
	}
	return netsim.NoGroup
}

// Source returns the source node of a group.
func (d *Domain) Source(g netsim.GroupID) netsim.NodeID { return d.groups[g].source }

// SessionLayer returns the (session, layer) a group carries.
func (d *Domain) SessionLayer(g netsim.GroupID) (int, int) {
	gi := d.groups[g]
	return gi.key.session, gi.key.layer
}

// NumGroups returns how many groups are registered.
func (d *Domain) NumGroups() int { return len(d.groups) }

func (d *Domain) stateOf(n netsim.NodeID, g netsim.GroupID) *nodeGroupState {
	for int(n) >= len(d.state) {
		d.state = append(d.state, nodeGroups{})
	}
	ng := &d.state[n]
	if st := ng.get(g); st != nil {
		return st
	}
	st := &nodeGroupState{parent: netsim.NoNode}
	ng.put(g, st)
	return st
}

func (d *Domain) lookup(n netsim.NodeID, g netsim.GroupID) *nodeGroupState {
	if int(n) >= len(d.state) {
		return nil
	}
	return d.state[n].get(g)
}

// upstream returns the next hop from n toward the group source, or NoNode
// when n is the source (or the source is unreachable).
func (d *Domain) upstream(n netsim.NodeID, g netsim.GroupID) netsim.NodeID {
	src := d.groups[g].source
	if n == src {
		return netsim.NoNode
	}
	return d.net.NextHop(n, src)
}

// Join attaches m as a member of group g at node n. The graft propagates
// hop-by-hop toward the source; forwarding state at each hop is created when
// the graft reaches it, so the first data packets arrive roughly one
// path-propagation-delay after the join.
func (d *Domain) Join(n netsim.NodeID, g netsim.GroupID, m Member) {
	st := d.stateOf(n, g)
	for _, existing := range st.members {
		if existing == m {
			return // already joined
		}
	}
	wasActive := st.active()
	st.members = append(st.members, m)
	d.cancelPrune(n, st)
	if !wasActive {
		d.graftUpstream(n, g)
	}
}

// graftUpstream walks toward the source adding forwarding state, one link
// propagation delay per hop, stopping at the first already-active router.
// The grafting node records its chosen parent immediately; the in-flight
// graft installs forwarding state only if that choice still stands when it
// lands, so a reroute during the propagation delay cannot resurrect state
// on an abandoned branch.
func (d *Domain) graftUpstream(n netsim.NodeID, g netsim.GroupID) {
	st := d.stateOf(n, g)
	up := d.upstream(n, g)
	if up == netsim.NoNode {
		st.parent = netsim.NoNode
		return // n is the source (or disconnected)
	}
	link := d.net.Node(n).LinkTo(up)
	if link == nil {
		st.parent = netsim.NoNode
		return
	}
	st.parent = up
	atomic.AddInt64(&d.Grafts, 1)
	d.noteTree(obs.EvGraft, n, up, g)
	// A graft crossing a partition boundary executes in up's shard, where
	// reading n's state back would race. The reroute guard exists only for
	// link-failure repair, and faults are unsupported on partitioned
	// networks, so across a boundary the guard is provably never needed.
	cross := d.net.CrossPartition(n, up)
	d.net.SchedulerBetween(n, up).Schedule(link.Delay, func() {
		if !cross {
			if cur := d.lookup(n, g); cur == nil || cur.parent != up {
				return // rerouted while the graft was in flight
			}
		}
		upSt := d.stateOf(up, g)
		wasActive := upSt.active()
		upSt.addChild(n, d.net.Node(up).LinkTo(n))
		d.cancelPrune(up, upSt)
		if !wasActive {
			d.graftUpstream(up, g)
		}
	})
}

// Leave detaches m from group g at node n. If that leaves the router with
// no members and no downstream children, the router keeps forwarding for
// LeaveLatency, then prunes itself off the tree.
func (d *Domain) Leave(n netsim.NodeID, g netsim.GroupID, m Member) {
	st := d.lookup(n, g)
	if st == nil {
		return
	}
	for i, existing := range st.members {
		if existing == m {
			st.members = append(st.members[:i], st.members[i+1:]...)
			break
		}
	}
	d.maybeSchedulePrune(n, g, st)
}

func (d *Domain) maybeSchedulePrune(n netsim.NodeID, g netsim.GroupID, st *nodeGroupState) {
	if st.active() || !st.pruneTimer.IsZero() {
		return
	}
	st.idleSince = d.net.SchedulerFor(n).Now()
	// The timer fires in n's own context, so it lives on n's shard — which
	// also keeps the handle cancellable (cross-shard schedules are not).
	st.pruneTimer = d.net.SchedulerFor(n).Schedule(d.LeaveLatency, func() {
		st.pruneTimer = sim.Handle{}
		if st.active() {
			return // re-joined during the leave-latency window
		}
		d.pruneFromParent(n, g)
	})
}

// pruneFromParent tells n's grafted parent to stop forwarding to n. The
// prune takes one link propagation delay; the upstream router then checks
// whether it too has gone idle. The parent is taken from the forwarding
// entry, not recomputed from routing: after a failure the two can differ,
// and the prune must reach the router that is actually forwarding to n.
func (d *Domain) pruneFromParent(n netsim.NodeID, g netsim.GroupID) {
	st := d.lookup(n, g)
	if st == nil || st.parent == netsim.NoNode {
		return
	}
	up := st.parent
	st.parent = netsim.NoNode
	idle := st.idleSince
	st.idleSince = 0
	link := d.net.Node(n).LinkTo(up)
	if link == nil {
		return
	}
	atomic.AddInt64(&d.Prunes, 1)
	d.noteTree(obs.EvPrune, n, up, g)
	sched := d.net.SchedulerBetween(n, up)
	sched.Schedule(link.Delay, func() {
		upSt := d.lookup(up, g)
		if upSt == nil {
			return
		}
		upSt.removeChild(n)
		if d.obs != nil && idle > 0 {
			// Departure-to-prune latency: last member left at idle, the
			// prune just landed upstream. Cascade prunes (idle == 0) are
			// not re-counted — the latency was paid at the last-hop router.
			d.obs.DeparturePrune.Observe((sched.Now() - idle).Seconds() * 1e3)
		}
		if !upSt.active() && upSt.pruneTimer.IsZero() {
			// Upstream prunes promptly: the leave-latency cost was already
			// paid at the last-hop router.
			d.pruneFromParent(up, g)
		}
	})
}

// cancelPrune clears n's pending leave-latency expiry. The handle must be
// cancelled on the scheduler that owns it — n's shard.
func (d *Domain) cancelPrune(n netsim.NodeID, st *nodeGroupState) {
	if !st.pruneTimer.IsZero() {
		d.net.SchedulerFor(n).Cancel(st.pruneTimer)
		st.pruneTimer = sim.Handle{}
		st.idleSince = 0
	}
}

// onRouteChange repairs distribution trees after a link failure or repair.
// Routing notifications arrive per destination; only groups rooted at a
// changed destination can have moved, and within those only the nodes whose
// next hop toward the source changed need re-homing.
func (d *Domain) onRouteChange(changes []netsim.RouteChange) {
	for _, ch := range changes {
		for gi := range d.groups {
			if d.groups[gi].source != ch.Dst {
				continue
			}
			for _, n := range ch.Nodes {
				d.repair(n, d.groups[gi].id)
			}
		}
	}
}

// repair re-homes one on-tree router whose path toward the group source
// moved: detach from the old parent (one link delay, like a prune) and
// graft toward the new one. A router with no route left becomes an orphan —
// it keeps its local members and children but receives nothing until a
// later route change gives it a path to re-graft along.
func (d *Domain) repair(n netsim.NodeID, g netsim.GroupID) {
	st := d.lookup(n, g)
	if st == nil || !st.active() || n == d.groups[g].source {
		return
	}
	newUp := d.upstream(n, g)
	if newUp == st.parent {
		return
	}
	atomic.AddInt64(&d.Repairs, 1)
	d.noteTree(obs.EvRepair, n, newUp, g)
	old := st.parent
	st.parent = netsim.NoNode
	if old != netsim.NoNode {
		if link := d.net.Node(n).LinkTo(old); link != nil {
			d.net.SchedulerBetween(n, old).Schedule(link.Delay, func() {
				if cur := d.lookup(n, g); cur != nil && cur.parent == old {
					return // flapped back to the old parent before the detach landed
				}
				upSt := d.lookup(old, g)
				if upSt == nil {
					return
				}
				upSt.removeChild(n)
				if !upSt.active() && upSt.pruneTimer.IsZero() {
					d.pruneFromParent(old, g)
				}
			})
		}
	}
	if newUp == netsim.NoNode {
		return // orphaned
	}
	d.graftUpstream(n, g)
}

// HandleMulticast implements netsim.MulticastHandler: deliver to local
// members and replicate onto every downstream link (never back upstream).
// This is the hottest loop of the simulator — per packet per hop — and it
// runs entirely on the dense state: no map lookups, no sorting, no
// allocation. Children are kept sorted by addChild, so replication order is
// deterministic by construction.
func (d *Domain) HandleMulticast(n *netsim.Node, p *netsim.Packet, from *netsim.Link) {
	st := d.lookup(n.ID, p.Group)
	if st == nil {
		return // not on this group's tree: prune already took effect
	}
	for _, m := range st.members {
		m.RecvMulticast(p)
	}
	for i, c := range st.children {
		if from != nil && c == from.From {
			continue // never forward back where it came from
		}
		link := st.links[i]
		if link == nil {
			// The link was missing when the graft installed this child
			// (asymmetric connectivity); re-resolve in case it exists now.
			if link = n.LinkTo(c); link == nil {
				continue
			}
			st.links[i] = link
		}
		link.Send(p)
	}
}

// ForwardingChildren returns the downstream children of node n for group g,
// sorted. Used by the topology discovery tool.
func (d *Domain) ForwardingChildren(n netsim.NodeID, g netsim.GroupID) []netsim.NodeID {
	st := d.lookup(n, g)
	if st == nil || len(st.children) == 0 {
		return nil
	}
	out := make([]netsim.NodeID, len(st.children))
	copy(out, st.children)
	return out
}

// HasLocalMembers reports whether any member is attached at node n for g.
func (d *Domain) HasLocalMembers(n netsim.NodeID, g netsim.GroupID) bool {
	st := d.lookup(n, g)
	return st != nil && len(st.members) > 0
}

// OnTree reports whether node n currently forwards or consumes group g.
func (d *Domain) OnTree(n netsim.NodeID, g netsim.GroupID) bool {
	st := d.lookup(n, g)
	return st != nil && st.active()
}

// TreeCost returns the total number of links currently carrying multicast
// traffic across every group's distribution tree (each parent->child edge
// counted once). This is the dynamic-routing literature's "tree cost"
// metric; the churn study tracks its drift over time. Control-path only —
// call while the engine is quiescent (a sampler barrier), cost O(entries).
func (d *Domain) TreeCost() int {
	cost := 0
	count := func(st *nodeGroupState) {
		if st != nil {
			cost += len(st.children)
		}
	}
	for i := range d.state {
		ng := &d.state[i]
		if ng.dense != nil {
			for _, st := range ng.dense {
				count(st)
			}
			continue
		}
		for _, st := range ng.sts {
			count(st)
		}
	}
	return cost
}

// StateStats sizes the forwarding state — the numbers the fig_scale study
// tracks to show memory stays sublinear in nodes×groups.
type StateStats struct {
	Nodes      int // nodes with any forwarding container
	Entries    int // live (node, group) forwarding entries
	DenseNodes int // nodes promoted to the dense container
	Bytes      int // approximate resident bytes of all containers and entries
}

// StateStats walks the forwarding state and reports its size. Control-path
// only (reporting); cost is O(entries).
func (d *Domain) StateStats() StateStats {
	const (
		ptrSize   = int(unsafe.Sizeof((*nodeGroupState)(nil)))
		idSize    = int(unsafe.Sizeof(netsim.GroupID(0)))
		nodeSize  = int(unsafe.Sizeof(netsim.NodeID(0)))
		entrySize = int(unsafe.Sizeof(nodeGroupState{}))
		ifaceSize = int(unsafe.Sizeof(Member(nil)))
		ngSize    = int(unsafe.Sizeof(nodeGroups{}))
	)
	s := StateStats{Nodes: len(d.state), Bytes: cap(d.state) * ngSize}
	count := func(st *nodeGroupState) {
		if st == nil {
			return
		}
		s.Entries++
		s.Bytes += entrySize +
			cap(st.children)*nodeSize +
			cap(st.links)*ptrSize +
			cap(st.members)*ifaceSize
	}
	for i := range d.state {
		ng := &d.state[i]
		if ng.dense != nil {
			s.DenseNodes++
			s.Bytes += cap(ng.dense) * ptrSize
			for _, st := range ng.dense {
				count(st)
			}
			continue
		}
		s.Bytes += cap(ng.ids)*idSize + cap(ng.sts)*ptrSize
		for _, st := range ng.sts {
			count(st)
		}
	}
	return s
}
