// Package mcast layers multicast distribution on top of netsim: group
// addressing, source-rooted shortest-path trees, receiver join (graft) and
// leave (prune) processing, and the group-leave latency the paper discusses
// in Section V.
//
// Every (session, layer) pair is one multicast group, exactly as in the
// paper's layered model where each layer is transmitted on its own multicast
// address. Routers keep per-group forwarding state: the set of downstream
// links that lead to at least one member, plus locally attached members.
//
// Joins propagate hop-by-hop toward the source along the unicast
// shortest-path tree (reverse-path), taking one link-propagation delay per
// hop, and stop at the first on-tree router — like an IGMP report followed
// by a PIM graft. Leaves are lazier: when the last member behind a router
// goes away, the router keeps forwarding for LeaveLatency (the IGMP
// last-member query interval) before pruning, so an over-subscribed layer
// keeps congesting the bottleneck for a while after the receiver drops it.
// The paper calls this out as a core difficulty of layered multicast.
package mcast

import (
	"fmt"
	"sort"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// DefaultLeaveLatency approximates IGMPv2 last-member query behaviour:
// traffic keeps flowing roughly this long after the last member leaves.
const DefaultLeaveLatency = 1 * sim.Second

// Member receives multicast data packets for groups it has joined.
type Member interface {
	RecvMulticast(p *netsim.Packet)
}

// groupKey identifies a group by its session and layer.
type groupKey struct {
	session, layer int
}

// groupInfo is the domain-wide registration of one group.
type groupInfo struct {
	id     netsim.GroupID
	key    groupKey
	source netsim.NodeID
}

// nodeGroupState is one router's forwarding entry for one group.
type nodeGroupState struct {
	downstream map[netsim.NodeID]bool // children currently forwarded to
	members    []Member               // locally attached members
	pruneTimer sim.Handle             // pending leave-latency expiry, if any
}

func (s *nodeGroupState) active() bool {
	return len(s.members) > 0 || len(s.downstream) > 0
}

// Domain manages multicast state for an entire network. It installs itself
// as the MulticastHandler on every node.
type Domain struct {
	net          *netsim.Network
	LeaveLatency sim.Time

	groups []groupInfo                 // indexed by GroupID
	byKey  map[groupKey]netsim.GroupID // (session,layer) -> id
	state  map[netsim.NodeID]map[netsim.GroupID]*nodeGroupState

	// Grafts and Prunes count tree maintenance operations (for tests and
	// reporting).
	Grafts, Prunes int64
}

// NewDomain creates the multicast domain and installs it on all current
// nodes of the network; nodes added afterwards are covered automatically
// via the network's OnAddNode hook.
func NewDomain(net *netsim.Network) *Domain {
	d := &Domain{
		net:          net,
		LeaveLatency: DefaultLeaveLatency,
		byKey:        make(map[groupKey]netsim.GroupID),
		state:        make(map[netsim.NodeID]map[netsim.GroupID]*nodeGroupState),
	}
	d.Install()
	net.OnAddNode = func(n *netsim.Node) { n.SetMulticastHandler(d) }
	return d
}

// Install (re)attaches the domain as multicast handler on every node.
func (d *Domain) Install() {
	for _, n := range d.net.Nodes() {
		n.SetMulticastHandler(d)
	}
}

// RegisterGroup declares a (session, layer) group rooted at source and
// returns its GroupID. Registering the same pair twice returns the original
// ID (the source must match).
func (d *Domain) RegisterGroup(session, layer int, source netsim.NodeID) netsim.GroupID {
	key := groupKey{session, layer}
	if id, ok := d.byKey[key]; ok {
		if d.groups[id].source != source {
			panic(fmt.Sprintf("mcast: group s%d/l%d re-registered with a different source", session, layer))
		}
		return id
	}
	id := netsim.GroupID(len(d.groups))
	d.groups = append(d.groups, groupInfo{id: id, key: key, source: source})
	d.byKey[key] = id
	return id
}

// GroupOf returns the GroupID for (session, layer), or netsim.NoGroup.
func (d *Domain) GroupOf(session, layer int) netsim.GroupID {
	if id, ok := d.byKey[groupKey{session, layer}]; ok {
		return id
	}
	return netsim.NoGroup
}

// Source returns the source node of a group.
func (d *Domain) Source(g netsim.GroupID) netsim.NodeID { return d.groups[g].source }

// SessionLayer returns the (session, layer) a group carries.
func (d *Domain) SessionLayer(g netsim.GroupID) (int, int) {
	gi := d.groups[g]
	return gi.key.session, gi.key.layer
}

// NumGroups returns how many groups are registered.
func (d *Domain) NumGroups() int { return len(d.groups) }

func (d *Domain) stateOf(n netsim.NodeID, g netsim.GroupID) *nodeGroupState {
	byGroup, ok := d.state[n]
	if !ok {
		byGroup = make(map[netsim.GroupID]*nodeGroupState)
		d.state[n] = byGroup
	}
	st, ok := byGroup[g]
	if !ok {
		st = &nodeGroupState{downstream: make(map[netsim.NodeID]bool)}
		byGroup[g] = st
	}
	return st
}

func (d *Domain) lookup(n netsim.NodeID, g netsim.GroupID) *nodeGroupState {
	if byGroup, ok := d.state[n]; ok {
		return byGroup[g]
	}
	return nil
}

// upstream returns the next hop from n toward the group source, or NoNode
// when n is the source (or the source is unreachable).
func (d *Domain) upstream(n netsim.NodeID, g netsim.GroupID) netsim.NodeID {
	src := d.groups[g].source
	if n == src {
		return netsim.NoNode
	}
	return d.net.NextHop(n, src)
}

// Join attaches m as a member of group g at node n. The graft propagates
// hop-by-hop toward the source; forwarding state at each hop is created when
// the graft reaches it, so the first data packets arrive roughly one
// path-propagation-delay after the join.
func (d *Domain) Join(n netsim.NodeID, g netsim.GroupID, m Member) {
	st := d.stateOf(n, g)
	for _, existing := range st.members {
		if existing == m {
			return // already joined
		}
	}
	wasActive := st.active()
	st.members = append(st.members, m)
	d.cancelPrune(st)
	if !wasActive {
		d.graftUpstream(n, g)
	}
}

// graftUpstream walks toward the source adding forwarding state, one link
// propagation delay per hop, stopping at the first already-active router.
func (d *Domain) graftUpstream(n netsim.NodeID, g netsim.GroupID) {
	up := d.upstream(n, g)
	if up == netsim.NoNode {
		return // n is the source (or disconnected)
	}
	link := d.net.Node(n).LinkTo(up)
	if link == nil {
		return
	}
	d.Grafts++
	d.net.Engine().Schedule(link.Delay, func() {
		upSt := d.stateOf(up, g)
		wasActive := upSt.active()
		upSt.downstream[n] = true
		d.cancelPrune(upSt)
		if !wasActive {
			d.graftUpstream(up, g)
		}
	})
}

// Leave detaches m from group g at node n. If that leaves the router with
// no members and no downstream children, the router keeps forwarding for
// LeaveLatency, then prunes itself off the tree.
func (d *Domain) Leave(n netsim.NodeID, g netsim.GroupID, m Member) {
	st := d.lookup(n, g)
	if st == nil {
		return
	}
	for i, existing := range st.members {
		if existing == m {
			st.members = append(st.members[:i], st.members[i+1:]...)
			break
		}
	}
	d.maybeSchedulePrune(n, g, st)
}

func (d *Domain) maybeSchedulePrune(n netsim.NodeID, g netsim.GroupID, st *nodeGroupState) {
	if st.active() || !st.pruneTimer.IsZero() {
		return
	}
	st.pruneTimer = d.net.Engine().Schedule(d.LeaveLatency, func() {
		st.pruneTimer = sim.Handle{}
		if st.active() {
			return // re-joined during the leave-latency window
		}
		d.pruneFromParent(n, g)
	})
}

// pruneFromParent tells n's upstream router to stop forwarding to n. The
// prune takes one link propagation delay; the upstream router then checks
// whether it too has gone idle.
func (d *Domain) pruneFromParent(n netsim.NodeID, g netsim.GroupID) {
	up := d.upstream(n, g)
	if up == netsim.NoNode {
		return
	}
	link := d.net.Node(n).LinkTo(up)
	if link == nil {
		return
	}
	d.Prunes++
	d.net.Engine().Schedule(link.Delay, func() {
		upSt := d.lookup(up, g)
		if upSt == nil {
			return
		}
		delete(upSt.downstream, n)
		if !upSt.active() && upSt.pruneTimer.IsZero() {
			// Upstream prunes promptly: the leave-latency cost was already
			// paid at the last-hop router.
			d.pruneFromParent(up, g)
		}
	})
}

func (d *Domain) cancelPrune(st *nodeGroupState) {
	if !st.pruneTimer.IsZero() {
		d.net.Engine().Cancel(st.pruneTimer)
		st.pruneTimer = sim.Handle{}
	}
}

// HandleMulticast implements netsim.MulticastHandler: deliver to local
// members and replicate onto every downstream link (never back upstream).
func (d *Domain) HandleMulticast(n *netsim.Node, p *netsim.Packet, from *netsim.Link) {
	st := d.lookup(n.ID, p.Group)
	if st == nil {
		return // not on this group's tree: prune already took effect
	}
	for _, m := range st.members {
		m.RecvMulticast(p)
	}
	if len(st.downstream) == 0 {
		return
	}
	// Deterministic replication order.
	children := make([]netsim.NodeID, 0, len(st.downstream))
	for c := range st.downstream {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
	for _, c := range children {
		if from != nil && c == from.From {
			continue // never forward back where it came from
		}
		if link := n.LinkTo(c); link != nil {
			link.Send(p)
		}
	}
}

// ForwardingChildren returns the downstream children of node n for group g,
// sorted. Used by the topology discovery tool.
func (d *Domain) ForwardingChildren(n netsim.NodeID, g netsim.GroupID) []netsim.NodeID {
	st := d.lookup(n, g)
	if st == nil {
		return nil
	}
	out := make([]netsim.NodeID, 0, len(st.downstream))
	for c := range st.downstream {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasLocalMembers reports whether any member is attached at node n for g.
func (d *Domain) HasLocalMembers(n netsim.NodeID, g netsim.GroupID) bool {
	st := d.lookup(n, g)
	return st != nil && len(st.members) > 0
}

// OnTree reports whether node n currently forwards or consumes group g.
func (d *Domain) OnTree(n netsim.NodeID, g netsim.GroupID) bool {
	st := d.lookup(n, g)
	return st != nil && st.active()
}
