package mcast

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// failBoth takes both directions of the n1-n2 connection down (or up).
func failBoth(n *netsim.Network, n1, n2 netsim.NodeID, down bool) {
	for _, l := range []*netsim.Link{n.Node(n1).LinkTo(n2), n.Node(n2).LinkTo(n1)} {
		if down {
			l.SetDown()
		} else {
			l.SetUp()
		}
	}
}

// TestRepairRegraftsAfterOutage drives the full failure lifecycle on the
// chain src - r1 - r2 - leafA: the r1-r2 cut orphans the receiver's branch
// and tears the tree down to the source; the repair re-grafts it because
// the member never left; data then flows again.
func TestRepairRegraftsAfterOutage(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma := &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.e.RunUntil(100 * sim.Millisecond)
	f.send(g, 1)
	f.e.RunUntil(200 * sim.Millisecond)
	if len(ma.got) != 1 {
		t.Fatalf("pre-failure delivery failed: got %d packets", len(ma.got))
	}

	f.e.Schedule(0, func() { failBoth(f.n, f.r1.ID, f.r2.ID, true) })
	f.e.RunUntil(300 * sim.Millisecond) // let detaches and prunes settle
	if f.d.Repairs == 0 {
		t.Fatal("no repairs counted after the cut")
	}
	if f.d.OnTree(f.r1.ID, g) || f.d.OnTree(f.src.ID, g) {
		t.Error("upstream branch not pruned after the cut orphaned it")
	}
	if !f.d.OnTree(f.leafA.ID, g) {
		t.Error("orphaned receiver lost its membership")
	}
	f.send(g, 2)
	f.e.RunUntil(400 * sim.Millisecond)
	if len(ma.got) != 1 {
		t.Fatalf("packet crossed a cut network: got %d", len(ma.got))
	}

	f.e.Schedule(0, func() { failBoth(f.n, f.r1.ID, f.r2.ID, false) })
	f.e.RunUntil(500 * sim.Millisecond) // re-graft takes 3 hops x 10ms
	if !f.d.OnTree(f.r2.ID, g) || !f.d.OnTree(f.r1.ID, g) {
		t.Fatal("tree not rebuilt after repair")
	}
	f.send(g, 3)
	f.e.RunUntil(sim.Second)
	if len(ma.got) != 2 {
		t.Fatalf("post-repair delivery failed: got %d packets, want 2", len(ma.got))
	}
}

// TestRepairMovesBranchToAlternatePath uses a diamond src-(x|y)-rx: when
// the grafted path through x fails, the member's branch re-homes through y
// without the member doing anything, and forwarding state on the dead
// branch is cleaned up.
func TestRepairMovesBranchToAlternatePath(t *testing.T) {
	e := sim.NewEngine(1)
	n := netsim.New(e)
	src := n.AddNode("src")
	x := n.AddNode("x")
	y := n.AddNode("y")
	rx := n.AddNode("rx")
	cfg := netsim.LinkConfig{Bandwidth: 10e6, Delay: 10 * sim.Millisecond}
	n.Connect(src, x, cfg)
	n.Connect(src, y, cfg)
	n.Connect(x, rx, cfg)
	n.Connect(y, rx, cfg)
	d := NewDomain(n)
	g := d.RegisterGroup(0, 1, src.ID)
	m := &memberRec{}
	d.Join(rx.ID, g, m)
	e.RunUntil(100 * sim.Millisecond)
	if !d.OnTree(x.ID, g) {
		t.Fatal("initial graft should run through x (BFS tie-break)")
	}

	e.Schedule(0, func() { failBoth(n, src.ID, x.ID, true) })
	e.RunUntil(400 * sim.Millisecond)
	if !d.OnTree(y.ID, g) {
		t.Fatal("branch did not re-home through y")
	}
	got := len(m.got)
	src.SendMulticastLocal(&netsim.Packet{
		Kind: netsim.Data, Src: src.ID, Dst: netsim.NoNode,
		Group: g, Session: 0, Layer: 1, Seq: 1, Size: 1000, Sent: e.Now(),
	})
	e.RunUntil(sim.Second)
	if len(m.got) != got+1 {
		t.Fatalf("delivery over repaired tree failed: got %d, want %d", len(m.got), got+1)
	}
}

// TestRepairInertWithoutFailures pins the golden-preservation contract:
// with no link state changes, ordinary join/leave traffic performs no
// repairs.
func TestRepairInertWithoutFailures(t *testing.T) {
	f := newFixture(t)
	g := f.d.RegisterGroup(0, 1, f.src.ID)
	ma, mc := &memberRec{}, &memberRec{}
	f.d.Join(f.leafA.ID, g, ma)
	f.d.Join(f.leafC.ID, g, mc)
	f.e.RunUntil(100 * sim.Millisecond)
	f.d.Leave(f.leafA.ID, g, ma)
	f.e.RunUntil(5 * sim.Second)
	if f.d.Repairs != 0 {
		t.Fatalf("Repairs = %d without any link failure", f.d.Repairs)
	}
}
