package mcast

import (
	"sync/atomic"

	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/report"
	"toposense/internal/sim"
)

// DefaultFlushInterval is how often a tree node with pending aggregated
// feedback emits it toward the controller — matched to the receivers' report
// cadence so aggregation adds at most one report interval of latency per
// tree level.
const DefaultFlushInterval = 500 * sim.Millisecond

// Aggregator is the in-network feedback aggregation layer. Installed on
// every node of a network, it intercepts the control traffic of one
// controller in both directions:
//
//   - Upward, LossReports addressed to the controller are absorbed at their
//     origin node and folded into a per-(node, session) pending
//     report.Aggregate; a child's flushed Aggregate passing through is merged
//     the same way. Each node flushes its pending aggregates one FlushInterval
//     after the first absorption, emitting one compact packet per session
//     toward the controller — so every tree level forwards O(children)
//     aggregates per interval instead of O(subtree receivers) reports, and the
//     controller's fan-in is its own branching degree.
//
//   - Downward, the controller's pooled SuggestionBatch packets are split
//     per next hop at every stop and forwarded on, one packet per child
//     subtree, replacing per-receiver Suggestion unicasts.
//
// All per-node state lives on the owning node's shard and all timers use
// that shard's scheduler, so the layer runs unchanged — and deterministically
// — on the conservative sharded engine. The stats counters are atomics, like
// the Domain's tree counters, because shards hit them concurrently.
type Aggregator struct {
	net   *netsim.Network
	ctrl  netsim.NodeID
	flush sim.Time

	nodes []aggNode

	// Stats (atomic adds; read them after the run, or via atomic loads).
	Absorbed int64 // loss reports absorbed in-network
	Merged   int64 // child aggregates merged on their way up
	Flushes  int64 // aggregate packets emitted toward the controller
	Batches  int64 // suggestion sub-batches forwarded down the tree
	// Retained counts flushes deferred because the controller was
	// unreachable at flush time (a failed link mid-repair): the pending
	// aggregates are kept and the flush retried next interval, instead of
	// being emitted into a guaranteed routing drop.
	Retained int64
	// Purged counts pending entries dropped because their receiver
	// deregistered between absorption and flush — without the purge the
	// fan-in keeps reporting ghosts until the next flush.
	Purged int64

	stopped bool

	obs *obs.Obs
}

// pendingAgg is one session's accumulating aggregate at one node. The slot
// survives its aggregate being handed off (agg goes nil until the session's
// next absorption), keeping the per-node slice sorted by session so flush
// emission order is deterministic.
type pendingAgg struct {
	session int
	agg     *report.Aggregate
}

// splitGroup is redistribute's scratch: one outgoing sub-batch per next hop.
type splitGroup struct {
	next  netsim.NodeID
	batch *report.SuggestionBatch
}

// aggNode is the Aggregator's per-node state.
type aggNode struct {
	pending []pendingAgg
	armed   bool   // a flush timer is outstanding
	flushFn func() // prebound once so arming allocates nothing
	// lastBatch keeps the most recently consumed downward batch alive until
	// the next one arrives: agents attached after the Aggregator (and the
	// local receivers) still read it during the delivery that handed it over.
	lastBatch *report.SuggestionBatch
	groups    []splitGroup
}

// NewAggregator installs an aggregation layer for the controller at ctrl on
// every node of net (including nodes added later). flush <= 0 takes
// DefaultFlushInterval. Install before Start-time traffic; one aggregator
// per network.
func NewAggregator(net *netsim.Network, ctrl netsim.NodeID, flush sim.Time) *Aggregator {
	if flush <= 0 {
		flush = DefaultFlushInterval
	}
	a := &Aggregator{net: net, ctrl: ctrl, flush: flush}
	for _, n := range net.Nodes() {
		a.install(n)
	}
	prev := net.OnAddNode
	net.OnAddNode = func(n *netsim.Node) {
		if prev != nil {
			prev(n)
		}
		a.install(n)
	}
	return a
}

func (a *Aggregator) install(n *netsim.Node) {
	for int(n.ID) >= len(a.nodes) {
		a.nodes = append(a.nodes, aggNode{})
	}
	n.SetTransitFilter(a)
	n.AttachAgent(a)
}

// SetObs attaches an observability bundle; nil detaches it. Safe on a nil
// receiver, so worlds can wire it unconditionally.
func (a *Aggregator) SetObs(o *obs.Obs) {
	if a == nil {
		return
	}
	a.obs = o
}

// FlushInterval returns the per-node flush cadence.
func (a *Aggregator) FlushInterval() sim.Time { return a.flush }

// Stop retires the aggregation layer and returns every payload it holds to
// the report pools: each node's pending (unflushed) aggregates and its
// deferred-release lastBatch. Without it, stopping a session mid-interval
// strands the in-flight state — the deferred-by-one batch hand-over only
// releases a node's previous batch when its next one arrives, so the final
// batch of a stopped session would never go back to the pool. After Stop
// the transit filter passes control traffic through untouched and armed
// flush timers fire as no-ops. Safe on a nil receiver and idempotent —
// calling it again re-drains, so a straggler batch delivered between two
// Stops is still recovered; call it with the engine idle (nothing in
// flight).
func (a *Aggregator) Stop() {
	if a == nil {
		return
	}
	a.stopped = true
	for i := range a.nodes {
		nd := &a.nodes[i]
		for j := range nd.pending {
			if ag := nd.pending[j].agg; ag != nil {
				nd.pending[j].agg = nil
				ag.Release()
			}
		}
		if nd.lastBatch != nil {
			nd.lastBatch.Release()
			nd.lastBatch = nil
		}
	}
}

// FilterTransit implements netsim.TransitFilter: absorb upward control
// feedback bound for the controller. Everything else (registrations, the
// node's own outgoing flushes, unrelated unicast) passes through untouched.
func (a *Aggregator) FilterTransit(n *netsim.Node, p *netsim.Packet) bool {
	if a.stopped || p.Kind != netsim.Control || p.Dst != a.ctrl {
		return false
	}
	switch pl := p.Payload.(type) {
	case report.LossReport:
		a.pending(n.ID, pl.Session).Fold(pl)
		atomic.AddInt64(&a.Absorbed, 1)
		if a.obs != nil {
			a.obs.AggAbsorbed.Inc()
		}
	case *report.Aggregate:
		if pl.Origin == n.ID {
			return false // our own flush leaving this node
		}
		a.pending(n.ID, pl.Session).Merge(pl)
		pl.Release()
		atomic.AddInt64(&a.Merged, 1)
		if a.obs != nil {
			a.obs.AggMerges.Inc()
		}
	case report.Deregister:
		// Pass through — the controller must still consume it — but purge
		// the departed receiver's pending entries at this hop. The packet
		// retraces the receiver's report path, so every node holding folded
		// reports from it sees the deregistration on the way up.
		a.purge(n.ID, pl.Session, pl.Node)
		return false
	default:
		return false
	}
	a.arm(n.ID)
	return true
}

// purge removes node's folded feedback from id's pending aggregate for
// session, releasing the aggregate back to the pool when it empties (the
// armed flush then skips the nil slot, keeping the balance invariant
// live == baseline + congestion-dropped).
func (a *Aggregator) purge(id netsim.NodeID, session int, node netsim.NodeID) {
	nd := &a.nodes[id]
	for i := range nd.pending {
		if nd.pending[i].session != session {
			continue
		}
		if ag := nd.pending[i].agg; ag != nil && ag.RemoveEntry(node) {
			atomic.AddInt64(&a.Purged, 1)
			if ag.Receivers() == 0 {
				nd.pending[i].agg = nil
				ag.Release()
			}
		}
		return
	}
}

// pending returns node's accumulating aggregate for session, creating it
// (from the report pool) on first use. The per-node list is a small sorted
// slice — a node sees a handful of sessions — so lookup is a linear scan and
// insertion keeps order without a map's nondeterministic iteration.
func (a *Aggregator) pending(id netsim.NodeID, session int) *report.Aggregate {
	nd := &a.nodes[id]
	i := 0
	for ; i < len(nd.pending); i++ {
		if nd.pending[i].session == session {
			if nd.pending[i].agg == nil {
				nd.pending[i].agg = report.NewAggregate(session, id)
			}
			return nd.pending[i].agg
		}
		if nd.pending[i].session > session {
			break
		}
	}
	nd.pending = append(nd.pending, pendingAgg{})
	copy(nd.pending[i+1:], nd.pending[i:])
	nd.pending[i] = pendingAgg{session: session, agg: report.NewAggregate(session, id)}
	return nd.pending[i].agg
}

// arm schedules the node's flush one interval out, unless one is already
// pending. Lazy one-shots instead of a permanent ticker: an idle node (no
// receivers below it) never wakes up.
func (a *Aggregator) arm(id netsim.NodeID) {
	nd := &a.nodes[id]
	if nd.armed {
		return
	}
	nd.armed = true
	if nd.flushFn == nil {
		node := id
		nd.flushFn = func() { a.flushNode(node) }
	}
	a.net.SchedulerFor(id).Schedule(a.flush, nd.flushFn)
}

// flushNode emits every pending aggregate at the node toward the controller,
// one pooled packet per session, handing each aggregate's ownership to its
// packet (the controller releases it on consumption; if congestion drops the
// packet the aggregate falls to the garbage collector instead of the pool).
//
// The route toward the controller is re-resolved here, at flush time, not
// frozen at absorb time: a PR 4 tree repair between absorption and flush
// re-points the next hop, and the flush must follow the repaired route
// rather than the one the reports arrived on. When no route exists at all —
// the controller is on the far side of a failed link that has not been
// repaired yet — emitting would feed every pending aggregate into a
// guaranteed routing drop (losing the feedback and leaking the pooled
// aggregate to the garbage collector). Instead the pending state is kept
// and the flush re-armed, so the accumulated feedback rides out the outage
// and reaches the controller on the post-repair route.
func (a *Aggregator) flushNode(id netsim.NodeID) {
	nd := &a.nodes[id]
	nd.armed = false
	if a.stopped {
		return
	}
	if a.net.NextHop(id, a.ctrl) == netsim.NoNode {
		atomic.AddInt64(&a.Retained, 1)
		a.arm(id)
		return
	}
	sched := a.net.SchedulerFor(id)
	now := sched.Now()
	node := a.net.Node(id)
	for i := range nd.pending {
		ag := nd.pending[i].agg
		if ag == nil {
			continue
		}
		nd.pending[i].agg = nil
		ag.Sent = now
		ag.Interval = a.flush
		pkt := a.net.NewPacket()
		pkt.Kind = netsim.Control
		pkt.Src = id
		pkt.Dst = a.ctrl
		pkt.Group = netsim.NoGroup
		pkt.Session = ag.Session
		pkt.Size = ag.WireSize()
		pkt.Sent = now
		pkt.Payload = ag
		node.SendUnicast(pkt)
		pkt.Release()
		atomic.AddInt64(&a.Flushes, 1)
		if a.obs != nil {
			a.obs.AggFlushes.Inc()
		}
	}
}

// Recv implements netsim.Agent for the downward direction: split an arriving
// SuggestionBatch per next hop and forward the sub-batches. Local receivers
// are attached to the same node and read their own entries directly from the
// delivered batch, so entries addressed here are simply not forwarded.
func (a *Aggregator) Recv(p *netsim.Packet) {
	b, ok := p.Payload.(*report.SuggestionBatch)
	if !ok {
		return
	}
	if a.stopped {
		// No forwarding anymore, but still take ownership through the
		// deferred hand-over so a straggler batch delivered after Stop
		// keeps the pool balanced instead of falling to the collector.
		nd := &a.nodes[p.Dst]
		if nd.lastBatch != nil {
			nd.lastBatch.Release()
		}
		nd.lastBatch = b
		return
	}
	a.redistribute(p.Dst, b)
}

func (a *Aggregator) redistribute(id netsim.NodeID, b *report.SuggestionBatch) {
	nd := &a.nodes[id]
	groups := nd.groups[:0]
	for _, e := range b.Entries {
		if e.Node == id {
			continue // a local receiver's entry; it reads the batch itself
		}
		next := a.net.NextHop(id, e.Node)
		if next == netsim.NoNode {
			continue // unroutable, as the equivalent unicast would be
		}
		var g *splitGroup
		for j := range groups {
			if groups[j].next == next {
				g = &groups[j]
				break
			}
		}
		if g == nil {
			groups = append(groups, splitGroup{next: next, batch: report.NewSuggestionBatch()})
			g = &groups[len(groups)-1]
			g.batch.Sent = b.Sent
		}
		g.batch.Add(e.Node, e.Session, e.Level)
	}
	node := a.net.Node(id)
	now := a.net.SchedulerFor(id).Now()
	for i := range groups {
		g := &groups[i]
		pkt := a.net.NewPacket()
		pkt.Kind = netsim.Control
		pkt.Src = id
		pkt.Dst = g.next
		pkt.Group = netsim.NoGroup
		pkt.Size = g.batch.WireSize()
		pkt.Sent = now
		pkt.Payload = g.batch
		node.SendUnicast(pkt)
		pkt.Release()
		g.batch = nil
		atomic.AddInt64(&a.Batches, 1)
		if a.obs != nil {
			a.obs.AggBatches.Inc()
		}
	}
	nd.groups = groups
	// Deferred hand-over: the batch just consumed stays alive until this
	// node's next one, covering agents later in the delivery loop.
	if nd.lastBatch != nil {
		nd.lastBatch.Release()
	}
	nd.lastBatch = b
}
