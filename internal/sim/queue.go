package sim

// equeue is the event store shared by the single-threaded Engine and each
// shard of the ShardedEngine: an indexed 4-ary min-heap ordered by
// (time, sequence) with the sift loops inlined (no container/heap interface
// calls), plus a free list that recycles fired or cancelled Event slots so
// the steady-state schedule/fire cycle performs no allocations.
//
// An equeue is single-owner: exactly one goroutine may touch it at a time.
// The Engine owns its queue outright; a shard's queue is owned by the
// shard's worker during a window and by the barrier goroutine between
// windows (the window handoff provides the happens-before edge).
type equeue struct {
	heap []*Event
	free []*Event
	seq  uint64

	slotAllocs uint64 // Event structs ever allocated
	slotReuses uint64 // acquisitions served from the free list
}

func (q *equeue) len() int { return len(q.heap) }

// head returns the earliest event without removing it, or nil.
func (q *equeue) head() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// acquire takes an event slot from the free list (bumping its generation so
// stale handles go inert) or allocates a fresh one.
func (q *equeue) acquire(t Time, fn func()) *Event {
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		ev.gen++
		ev.cancel = false
		q.slotReuses++
	} else {
		ev = &Event{}
		q.slotAllocs++
	}
	ev.at = t
	ev.seq = q.seq
	ev.fn = fn
	q.seq++
	return ev
}

// release returns a slot to the free list. The generation is bumped on the
// next acquire, not here, so handles to the completed event still read
// their Cancelled state until the slot is reused.
func (q *equeue) release(ev *Event) {
	ev.fn = nil // drop the closure reference immediately
	q.free = append(q.free, ev)
}

// less orders events by (time, sequence); sequence numbers are unique so
// the order is total and FIFO among equal timestamps.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the 4-ary heap invariant.
func (q *equeue) push(ev *Event) {
	i := len(q.heap)
	q.heap = append(q.heap, ev)
	ev.index = int32(i)
	q.siftUp(i)
}

// pop removes and returns the earliest event.
func (q *equeue) pop() *Event {
	h := q.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	q.heap = h[:n]
	if n > 0 {
		h[0] = last
		last.index = 0
		q.siftDown(0)
	}
	root.index = -1
	return root
}

// remove removes the event at heap index i (cancellation).
func (q *equeue) remove(i int) {
	h := q.heap
	n := len(h) - 1
	ev := h[i]
	last := h[n]
	h[n] = nil
	q.heap = h[:n]
	if i < n {
		h[i] = last
		last.index = int32(i)
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	ev.index = -1
}

// siftUp moves the event at index i toward the root until its parent is not
// later than it.
func (q *equeue) siftUp(i int) {
	h := q.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		par := h[p]
		if !eventLess(ev, par) {
			break
		}
		h[i] = par
		par.index = int32(i)
		i = p
	}
	h[i] = ev
	ev.index = int32(i)
}

// siftDown moves the event at index i toward the leaves, swapping with its
// earliest child while that child sorts before it. It reports whether the
// event moved.
func (q *equeue) siftDown(i0 int) bool {
	h := q.heap
	n := len(h)
	i := i0
	ev := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Earliest of the up-to-four children.
		m, mc := c, h[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], mc) {
				m, mc = j, h[j]
			}
		}
		if !eventLess(mc, ev) {
			break
		}
		h[i] = mc
		mc.index = int32(i)
		i = m
	}
	h[i] = ev
	ev.index = int32(i)
	return i > i0
}

// cancel implements the generation-checked Cancel contract on this queue.
// It is safe on a zero handle, a fired handle, and a stale handle.
func (q *equeue) cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.cancel {
		return
	}
	if ev.index >= 0 {
		ev.cancel = true
		q.remove(int(ev.index))
		q.release(ev)
		return
	}
	// Already fired (and released); record the cancel so Cancelled() reads
	// true until the slot is reused, matching the pre-pool semantics.
	ev.cancel = true
}
