package sim

import (
	"fmt"
	"math/rand"
)

// Event is one slot of the engine's scheduler. Slots are owned and recycled
// by their queue: after an event fires or is cancelled its struct returns to
// a free list and is reused by a later Schedule/At call. User code never
// holds *Event directly — Schedule and At return a Handle, which pairs the
// slot with the generation it was issued for, so operations on a handle
// whose slot has been recycled are safe no-ops.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same timestamp
	fn     func()
	index  int32  // heap index; -1 once popped or cancelled, spilledIndex while parked
	gen    uint32 // bumped each time the slot is acquired from the free list
	cancel bool
}

// spilledIndex marks an event parked in a shard's far-future spill rather
// than its heap (see shardSched). Still pending, just not heap-resident.
const spilledIndex int32 = -2

// Handle identifies one scheduled firing. The zero Handle is valid and
// refers to nothing; all its methods are no-ops. Handles are plain values —
// copying one is free and never allocates.
type Handle struct {
	ev  *Event
	gen uint32
}

// IsZero reports whether the handle refers to nothing.
func (h Handle) IsZero() bool { return h.ev == nil }

// live reports whether the handle still addresses the generation it was
// issued for. Once the slot is recycled for a newer event this is false and
// the handle goes inert.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// Cancelled reports whether Cancel was called on this handle's event before
// it fired. After the engine recycles the slot for a new event the report
// reverts to false (the old firing is history either way).
func (h Handle) Cancelled() bool { return h.live() && h.ev.cancel }

// Active reports whether the event is still queued: scheduled, not yet
// fired, not cancelled. A spilled event (parked outside a shard's heap
// until its window) is still queued.
func (h Handle) Active() bool {
	return h.live() && !h.ev.cancel && (h.ev.index >= 0 || h.ev.index == spilledIndex)
}

// When returns the simulated time the event is scheduled for. It reads 0
// once the slot has been recycled.
func (h Handle) When() Time {
	if !h.live() {
		return 0
	}
	return h.ev.at
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks on the same
// goroutine, which is what makes the simulation deterministic.
//
// The ready queue is an equeue: an indexed 4-ary min-heap ordered by
// (time, sequence) with a slot free list, so the steady-state schedule/fire
// cycle performs no allocations. Engine implements Scheduler and Runner; it
// is the determinism oracle the ShardedEngine is validated against.
type Engine struct {
	now     Time
	q       equeue
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is seeded with seed. Every stochastic model component must draw from
// Engine.Rand() so a run is fully reproducible from the seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.q.len() }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// EventAllocs returns how many Event structs the engine has ever allocated;
// once the model reaches steady state this stops growing because every new
// schedule is served from the free list.
func (e *Engine) EventAllocs() uint64 { return e.q.slotAllocs }

// EventReuses returns how many schedules were served from the free list.
func (e *Engine) EventReuses() uint64 { return e.q.slotReuses }

// ShardEngineStats is one shard's slice of a ShardedEngine's meters. The
// single-threaded Engine never emits these; on a plain engine the Shards
// field of EngineStats is absent from JSON output entirely.
type ShardEngineStats struct {
	Shard   int    `json:"shard"`
	Fired   uint64 `json:"events_fired"`
	Pending int    `json:"events_pending"`
	// CrossIn counts events that arrived from other shards through the
	// barrier mailboxes (the payload carried by the null-message protocol).
	CrossIn uint64 `json:"cross_events_in"`
	// Windows is how many lookahead windows the shard executed; each window
	// costs one barrier synchronization per shard, which is this engine's
	// analog of a null message.
	Windows uint64 `json:"windows"`
	// StallNanos is wall-clock time the shard spent finished-and-waiting at
	// barriers for slower shards. Wall-clock: nondeterministic across runs.
	StallNanos int64 `json:"barrier_stall_nanos"`
}

// EngineStats is a point-in-time snapshot of the scheduler's meters, in
// one struct so observability exports can capture them atomically. The
// sharded-engine fields are tagged omitempty and stay absent for the
// single-threaded Engine, so existing JSON consumers see an unchanged
// document.
type EngineStats struct {
	Now         Time    `json:"-"`
	NowSeconds  float64 `json:"now_seconds"`
	Fired       uint64  `json:"events_fired"`
	Pending     int     `json:"events_pending"`
	EventAllocs uint64  `json:"event_allocs"`
	EventReuses uint64  `json:"event_reuses"`

	// Sharded-engine extensions (zero / absent on the plain Engine).
	LookaheadSeconds float64            `json:"lookahead_seconds,omitempty"`
	Windows          uint64             `json:"windows,omitempty"`
	CrossEvents      uint64             `json:"cross_events,omitempty"`
	GlobalFired      uint64             `json:"global_events_fired,omitempty"`
	BarrierStall     int64              `json:"barrier_stall_nanos,omitempty"`
	Shards           []ShardEngineStats `json:"shards,omitempty"`
}

// Stats snapshots the engine's meters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:         e.now,
		NowSeconds:  e.now.Seconds(),
		Fired:       e.fired,
		Pending:     e.q.len(),
		EventAllocs: e.q.slotAllocs,
		EventReuses: e.q.slotReuses,
	}
}

// Schedule runs fn after delay. A negative delay panics: models must never
// schedule into the past.
func (e *Engine) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at %v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := e.q.acquire(t, fn)
	e.q.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// Cancel removes the event from the queue if it has not fired yet. It is
// safe to cancel a zero handle, a handle whose event already fired or was
// already cancelled, and — because handles carry the slot generation — a
// stale handle whose event slot has since been recycled for a newer event:
// all of those are no-ops.
func (e *Engine) Cancel(h Handle) { e.q.cancel(h) }

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// step pops and fires the earliest event. It reports false when the queue is
// empty. The slot is recycled before the callback runs, so a callback that
// schedules new work reuses it immediately.
func (e *Engine) step() bool {
	if e.q.len() == 0 {
		return false
	}
	ev := e.q.pop()
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.q.release(ev)
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if h := e.q.head(); h == nil || h.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Every schedules fn to run every period on this engine. It is equivalent
// to the package-level Every(e, period, fn).
func (e *Engine) Every(period Time, fn func()) *Ticker {
	return Every(e, period, fn)
}

// Every schedules fn to run every period on s, starting after the first
// period, until the returned Ticker is stopped or the scheduler drains.
// Period must be positive. The ticker lives entirely on s, so on a
// ShardedEngine it repeats inside whichever shard (or the global barrier
// queue) s addresses.
func Every(s Scheduler, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	t := &Ticker{sched: s, period: period, fn: fn}
	t.tick = t.onTick // bound once; re-arming reuses it
	t.arm()
	return t
}

// Ticker repeats a callback at a fixed period on one Scheduler.
type Ticker struct {
	sched   Scheduler
	period  Time
	fn      func()
	tick    func()
	ev      Handle
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.sched.Schedule(t.period, t.tick)
}

func (t *Ticker) onTick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future firings. The callback never runs again after Stop.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.sched.Cancel(t.ev)
}
