package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Its fields are managed by the Engine; user
// code holds *Event only to Cancel it.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same timestamp
	fn     func()
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// Cancelled reports whether Cancel was called on the event before it fired.
func (e *Event) Cancelled() bool { return e.cancel }

// When returns the simulated time the event is (or was) scheduled for.
func (e *Event) When() Time { return e.at }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks on the same
// goroutine, which is what makes the simulation deterministic.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is seeded with seed. Every stochastic model component must draw from
// Engine.Rand() so a run is fully reproducible from the seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn after delay. A negative delay panics: models must never
// schedule into the past.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at %v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes the event from the queue if it has not fired yet. It is
// safe to cancel an event that already fired or was already cancelled.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// step pops and fires the earliest event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Every schedules fn to run every period, starting after the first period,
// until the returned Ticker is stopped or the engine drains. Period must be
// positive.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker repeats a callback at a fixed period.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. The callback never runs again after Stop.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.ev)
}
