package sim

import (
	"fmt"
	"math/rand"
)

// Event is one slot of the engine's scheduler. Slots are owned and recycled
// by the Engine: after an event fires or is cancelled its struct returns to
// a free list and is reused by a later Schedule/At call. User code never
// holds *Event directly — Schedule and At return a Handle, which pairs the
// slot with the generation it was issued for, so operations on a handle
// whose slot has been recycled are safe no-ops.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same timestamp
	fn     func()
	index  int32  // heap index, -1 once popped or cancelled
	gen    uint32 // bumped each time the slot is acquired from the free list
	cancel bool
}

// Handle identifies one scheduled firing. The zero Handle is valid and
// refers to nothing; all its methods are no-ops. Handles are plain values —
// copying one is free and never allocates.
type Handle struct {
	ev  *Event
	gen uint32
}

// IsZero reports whether the handle refers to nothing.
func (h Handle) IsZero() bool { return h.ev == nil }

// live reports whether the handle still addresses the generation it was
// issued for. Once the slot is recycled for a newer event this is false and
// the handle goes inert.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// Cancelled reports whether Cancel was called on this handle's event before
// it fired. After the engine recycles the slot for a new event the report
// reverts to false (the old firing is history either way).
func (h Handle) Cancelled() bool { return h.live() && h.ev.cancel }

// Active reports whether the event is still queued: scheduled, not yet
// fired, not cancelled.
func (h Handle) Active() bool { return h.live() && h.ev.index >= 0 }

// When returns the simulated time the event is scheduled for. It reads 0
// once the slot has been recycled.
func (h Handle) When() Time {
	if !h.live() {
		return 0
	}
	return h.ev.at
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks on the same
// goroutine, which is what makes the simulation deterministic.
//
// The ready queue is an indexed 4-ary min-heap ordered by (time, sequence)
// with the sift loops inlined (no container/heap interface calls), and
// fired or cancelled events are recycled through a free list, so the
// steady-state schedule/fire cycle performs no allocations.
type Engine struct {
	now     Time
	queue   []*Event
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64

	free       []*Event // recycled event slots (single-threaded: no sync)
	slotAllocs uint64   // Event structs ever allocated
	slotReuses uint64   // acquisitions served from the free list
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is seeded with seed. Every stochastic model component must draw from
// Engine.Rand() so a run is fully reproducible from the seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// EventAllocs returns how many Event structs the engine has ever allocated;
// once the model reaches steady state this stops growing because every new
// schedule is served from the free list.
func (e *Engine) EventAllocs() uint64 { return e.slotAllocs }

// EventReuses returns how many schedules were served from the free list.
func (e *Engine) EventReuses() uint64 { return e.slotReuses }

// EngineStats is a point-in-time snapshot of the scheduler's meters, in
// one struct so observability exports can capture them atomically.
type EngineStats struct {
	Now         Time   `json:"-"`
	NowSeconds  float64 `json:"now_seconds"`
	Fired       uint64 `json:"events_fired"`
	Pending     int    `json:"events_pending"`
	EventAllocs uint64 `json:"event_allocs"`
	EventReuses uint64 `json:"event_reuses"`
}

// Stats snapshots the engine's meters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:         e.now,
		NowSeconds:  e.now.Seconds(),
		Fired:       e.fired,
		Pending:     len(e.queue),
		EventAllocs: e.slotAllocs,
		EventReuses: e.slotReuses,
	}
}

// acquire takes an event slot from the free list (bumping its generation so
// stale handles go inert) or allocates a fresh one.
func (e *Engine) acquire(t Time, fn func()) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.gen++
		ev.cancel = false
		e.slotReuses++
	} else {
		ev = &Event{}
		e.slotAllocs++
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	return ev
}

// release returns a slot to the free list. The generation is bumped on the
// next acquire, not here, so handles to the completed event still read
// their Cancelled state until the slot is reused.
func (e *Engine) release(ev *Event) {
	ev.fn = nil // drop the closure reference immediately
	e.free = append(e.free, ev)
}

// less orders events by (time, sequence); sequence numbers are unique so
// the order is total and FIFO among equal timestamps.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends ev and restores the 4-ary heap invariant.
func (e *Engine) heapPush(ev *Event) {
	i := len(e.queue)
	e.queue = append(e.queue, ev)
	ev.index = int32(i)
	e.siftUp(i)
}

// heapPop removes and returns the earliest event.
func (e *Engine) heapPop() *Event {
	q := e.queue
	root := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		e.siftDown(0)
	}
	root.index = -1
	return root
}

// heapRemove removes the event at heap index i (cancellation).
func (e *Engine) heapRemove(i int) {
	q := e.queue
	n := len(q) - 1
	ev := q[i]
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if i < n {
		q[i] = last
		last.index = int32(i)
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	ev.index = -1
}

// siftUp moves the event at index i toward the root until its parent is not
// later than it.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		par := q[p]
		if !eventLess(ev, par) {
			break
		}
		q[i] = par
		par.index = int32(i)
		i = p
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown moves the event at index i toward the leaves, swapping with its
// earliest child while that child sorts before it. It reports whether the
// event moved.
func (e *Engine) siftDown(i0 int) bool {
	q := e.queue
	n := len(q)
	i := i0
	ev := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Earliest of the up-to-four children.
		m, mc := c, q[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], mc) {
				m, mc = j, q[j]
			}
		}
		if !eventLess(mc, ev) {
			break
		}
		q[i] = mc
		mc.index = int32(i)
		i = m
	}
	q[i] = ev
	ev.index = int32(i)
	return i > i0
}

// Schedule runs fn after delay. A negative delay panics: models must never
// schedule into the past.
func (e *Engine) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at %v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := e.acquire(t, fn)
	e.heapPush(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// Cancel removes the event from the queue if it has not fired yet. It is
// safe to cancel a zero handle, a handle whose event already fired or was
// already cancelled, and — because handles carry the slot generation — a
// stale handle whose event slot has since been recycled for a newer event:
// all of those are no-ops.
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.cancel {
		return
	}
	if ev.index >= 0 {
		ev.cancel = true
		e.heapRemove(int(ev.index))
		e.release(ev)
		return
	}
	// Already fired (and released); record the cancel so Cancelled() reads
	// true until the slot is reused, matching the pre-pool semantics.
	ev.cancel = true
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// step pops and fires the earliest event. It reports false when the queue is
// empty. The slot is recycled before the callback runs, so a callback that
// schedules new work reuses it immediately.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.heapPop()
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.release(ev)
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Every schedules fn to run every period, starting after the first period,
// until the returned Ticker is stopped or the engine drains. Period must be
// positive.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tick = t.onTick // bound once; re-arming reuses it
	t.arm()
	return t
}

// Ticker repeats a callback at a fixed period.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	tick    func()
	ev      Handle
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.period, t.tick)
}

func (t *Ticker) onTick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future firings. The callback never runs again after Stop.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.ev)
}
