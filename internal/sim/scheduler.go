package sim

import "math/rand"

// Scheduler is the narrow scheduling surface model components program
// against: read the clock, schedule and cancel callbacks, draw deterministic
// randomness. Both the single-threaded Engine and every execution context of
// the ShardedEngine (per-shard schedulers, cross-shard channels, the global
// barrier queue) implement it, so a component wired to a Scheduler runs
// unchanged under either engine.
//
// Contract notes:
//
//   - Now/Schedule/At are relative to the calling context: inside a sharded
//     run, a shard scheduler's clock is that shard's local clock, which may
//     lead the committed global time by up to the lookahead.
//   - Rand returns the one run-wide deterministic stream. Under a sharded
//     run it may only be drawn from shard 0, the global barrier context, or
//     while the engine is idle (setup time); drawing it from another shard's
//     event would race and break reproducibility.
//   - Cancel must be called on the same Scheduler that issued the Handle.
//     Cross-shard schedules return the zero Handle and are not cancellable.
type Scheduler interface {
	Now() Time
	Schedule(delay Time, fn func()) Handle
	At(t Time, fn func()) Handle
	Cancel(h Handle)
	Rand() *rand.Rand
}

// Runner is a Scheduler that owns a run loop: the top-level engine handle
// held by harness code (experiments.World, Meter, cmds). Engine and
// ShardedEngine both implement it.
type Runner interface {
	Scheduler
	Run()
	RunUntil(deadline Time)
	Stop()
	Fired() uint64
	Pending() int
	Stats() EngineStats
}

var (
	_ Runner = (*Engine)(nil)
	_ Runner = (*ShardedEngine)(nil)

	_ Scheduler = (*shardSched)(nil)
	_ Scheduler = (*crossSched)(nil)
)

// globalProvider is implemented by engines that distinguish a barrier-
// synchronized global context from per-shard contexts.
type globalProvider interface {
	Global() Scheduler
}

// GlobalOf returns the scheduler for s's stop-the-world context: events
// scheduled on it run at barrier points with every shard quiescent, so their
// callbacks may safely read and mutate state across the whole model (the
// controller pass, topology discovery sweeps, watchdogs). For schedulers
// without shards — the plain Engine — every event already runs with the
// world stopped, and GlobalOf returns s itself.
func GlobalOf(s Scheduler) Scheduler {
	if g, ok := s.(globalProvider); ok {
		return g.Global()
	}
	return s
}
