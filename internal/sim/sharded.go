package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const noEvent = Time(math.MaxInt64)

// ShardedEngine is a conservative parallel discrete-event engine in the
// Chandy–Misra tradition. The model is partitioned into shards separated by
// links whose propagation delay is at least the lookahead L; each shard owns
// an independent event queue and executes one lookahead window
// [T, min(T+L, next global event)) at a time on a pool of worker goroutines.
// Events a shard schedules into another shard (packet handoffs across
// partition-boundary links, multicast graft/prune continuations traveling
// upstream) are conservative by construction — they land at least L in the
// future — so they are accumulated in per-source mailboxes during the window
// and merged into the destination queues at the barrier, sorted by
// (time, source shard, source order). Because the merge order, the per-shard
// execution order, and the window boundaries depend only on the model and
// the partitioning — never on goroutine timing — a run is deterministic for
// a given seed and partitioning, independent of the worker count.
//
// A separate global queue holds stop-the-world work (the controller pass,
// topology-discovery sweeps, watchdogs): its events define barrier points,
// truncating the current window, and run with every shard quiescent so they
// may read and mutate cross-shard state freely. Components reach it through
// GlobalOf.
//
// With a single partition the engine degenerates to exactly the
// single-threaded Engine semantics — one queue, one (time, sequence) order,
// the same RNG draw sequence — so seeds reproduce byte-identically against
// the oracle Engine.
//
// The run-wide random stream (Rand) is shared, not per-shard: it may only be
// drawn from shard 0, the global context, or while the engine is idle. The
// topology partitioners keep every stochastic component (sources, the
// controller) in partition 0 to honor this.
type ShardedEngine struct {
	rng      *rand.Rand
	workers  int
	shards   []*shardSched
	gq       *shardSched // global barrier queue; nil while degenerate
	now      Time        // committed global time (window start)
	lookahead Time

	stopped atomic.Bool
	running atomic.Bool // workers active: guards misuse of the global queue

	windows    uint64
	crossTotal uint64
	mergeBuf   crossEvents
	finish     []int64 // scratch: per-worker finish nanos
}

// NewShardedEngine returns an engine seeded like NewEngine(seed) that will
// run shard windows on up to workers goroutines. Until SetPartitions is
// called (or when it is called with a single partition) the engine is
// degenerate: one queue with plain Engine semantics.
func NewShardedEngine(seed int64, workers int) *ShardedEngine {
	if workers < 1 {
		workers = 1
	}
	se := &ShardedEngine{
		rng:     rand.New(rand.NewSource(seed)),
		workers: workers,
	}
	se.shards = []*shardSched{{eng: se, idx: 0}}
	return se
}

// SetPartitions shapes the engine into p shards with the given lookahead
// (the minimum propagation delay of any partition-boundary link). It must be
// called before the run starts. p <= 1 leaves the engine degenerate. Events
// already queued stay on shard 0.
func (se *ShardedEngine) SetPartitions(p int, lookahead Time) {
	if se.running.Load() {
		panic("sim: SetPartitions while running")
	}
	if p <= 1 {
		return
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: SetPartitions(%d) requires a positive lookahead, got %v", p, lookahead))
	}
	if se.gq != nil {
		panic("sim: SetPartitions called twice")
	}
	se.lookahead = lookahead
	for len(se.shards) < p {
		se.shards = append(se.shards, &shardSched{eng: se, idx: len(se.shards)})
	}
	for _, s := range se.shards {
		s.out = make([]crossEvents, p)
		s.spillOn = true
		s.spillMin = noEvent
	}
	se.gq = &shardSched{eng: se, idx: -1, global: true}
	se.finish = make([]int64, p)
}

// degenerate reports whether the engine runs as a single plain queue.
func (se *ShardedEngine) degenerate() bool { return se.gq == nil }

// NumShards returns the partition count (1 while degenerate).
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Lookahead returns the conservative window size (0 while degenerate).
func (se *ShardedEngine) Lookahead() Time { return se.lookahead }

// Workers returns the configured worker-goroutine cap.
func (se *ShardedEngine) Workers() int { return se.workers }

// Shard returns partition i's scheduler. Events scheduled on it run in that
// shard's context; it must only be invoked from that shard's own events,
// from the global context, or while the engine is idle.
func (se *ShardedEngine) Shard(i int) Scheduler { return se.shards[i] }

// Global returns the stop-the-world scheduler (see GlobalOf). While
// degenerate it is the single queue itself.
func (se *ShardedEngine) Global() Scheduler {
	if se.gq == nil {
		return se.shards[0]
	}
	return se.gq
}

// Cross returns the scheduler that shard src uses to schedule events into
// shard dst. Its schedules must respect the lookahead (land at least L after
// the source shard's clock) and are not cancellable (they return the zero
// Handle). The returned value is cached per source shard and must only be
// used from src's own execution context.
func (se *ShardedEngine) Cross(src, dst int) Scheduler {
	s := se.shards[src]
	if src == dst {
		return s
	}
	if s.cross == nil {
		s.cross = make([]Scheduler, len(se.shards))
	}
	c := s.cross[dst]
	if c == nil {
		c = &crossSched{src: s, dst: dst}
		s.cross[dst] = c
	}
	return c
}

// Now returns the clock of the current sequential context: the committed
// global time between windows, or the event time while degenerate. Code
// running inside a shard must use its own shard scheduler's clock instead.
func (se *ShardedEngine) Now() Time { return se.Global().Now() }

// Rand returns the engine's deterministic random stream (see the type
// comment for the sharded-draw contract).
func (se *ShardedEngine) Rand() *rand.Rand { return se.rng }

// Schedule queues fn on the global (stop-the-world) context after delay.
func (se *ShardedEngine) Schedule(delay Time, fn func()) Handle {
	return se.Global().Schedule(delay, fn)
}

// At queues fn on the global (stop-the-world) context at absolute time t.
func (se *ShardedEngine) At(t Time, fn func()) Handle { return se.Global().At(t, fn) }

// Cancel cancels a handle issued by the global context.
func (se *ShardedEngine) Cancel(h Handle) { se.Global().Cancel(h) }

// Stop makes Run/RunUntil return at the next barrier (or after the current
// event while degenerate).
func (se *ShardedEngine) Stop() { se.stopped.Store(true) }

// Fired returns the total events executed across all shards and the global
// queue.
func (se *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, s := range se.shards {
		n += s.fired
	}
	if se.gq != nil {
		n += se.gq.fired
	}
	return n
}

// Pending returns the total queued events across all shards, the global
// queue, and undrained cross-shard mailboxes.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, s := range se.shards {
		n += s.q.len() + s.pendingSpill()
		for _, mb := range s.out {
			n += len(mb)
		}
	}
	if se.gq != nil {
		n += se.gq.q.len()
	}
	return n
}

// Stats snapshots the engine's meters. Degenerate engines report exactly
// what the equivalent plain Engine would; partitioned engines add the
// per-shard breakdown and barrier accounting.
func (se *ShardedEngine) Stats() EngineStats {
	if se.degenerate() {
		s := se.shards[0]
		return EngineStats{
			Now:         s.now,
			NowSeconds:  s.now.Seconds(),
			Fired:       s.fired,
			Pending:     s.q.len(),
			EventAllocs: s.q.slotAllocs,
			EventReuses: s.q.slotReuses,
		}
	}
	st := EngineStats{
		Now:              se.now,
		NowSeconds:       se.now.Seconds(),
		Fired:            se.Fired(),
		Pending:          se.Pending(),
		LookaheadSeconds: se.lookahead.Seconds(),
		Windows:          se.windows,
		CrossEvents:      se.crossTotal,
		GlobalFired:      se.gq.fired,
		Shards:           make([]ShardEngineStats, len(se.shards)),
	}
	for i, s := range se.shards {
		st.EventAllocs += s.q.slotAllocs
		st.EventReuses += s.q.slotReuses
		st.BarrierStall += s.stall
		st.Shards[i] = ShardEngineStats{
			Shard:      i,
			Fired:      s.fired,
			Pending:    s.q.len() + s.pendingSpill(),
			CrossIn:    s.crossIn,
			Windows:    s.windows,
			StallNanos: s.stall,
		}
	}
	st.EventAllocs += se.gq.q.slotAllocs
	st.EventReuses += se.gq.q.slotReuses
	return st
}

// Run executes events until every queue and mailbox is empty or Stop is
// called.
func (se *ShardedEngine) Run() {
	se.stopped.Store(false)
	if se.degenerate() {
		s := se.shards[0]
		for !se.stopped.Load() && s.step() {
		}
		return
	}
	se.runWindows(noEvent, true)
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled beyond the deadline remain queued.
func (se *ShardedEngine) RunUntil(deadline Time) {
	se.stopped.Store(false)
	if se.degenerate() {
		s := se.shards[0]
		for !se.stopped.Load() {
			if h := s.q.head(); h == nil || h.at > deadline {
				break
			}
			s.step()
		}
		if s.now < deadline {
			s.now = deadline
		}
		return
	}
	se.runWindows(deadline, false)
	if se.stopped.Load() {
		return
	}
	// Deadline edge: windows run strictly below their bound, so events at
	// exactly the deadline are still queued. Mirror the plain engine's
	// inclusive deadline — globals first (they were scheduled further in
	// advance, hence carry earlier sequence numbers in the oracle ordering),
	// then the shards.
	se.runGlobal(deadline)
	se.runShardsWindow(deadline, true)
	se.drainMailboxes()
}

// earliest returns the earliest queued timestamp across shards and the
// global queue (mailboxes are empty between windows), or noEvent.
func (se *ShardedEngine) earliest() Time {
	t := noEvent
	for _, s := range se.shards {
		if h := s.q.head(); h != nil && h.at < t {
			t = h.at
		}
		if len(s.spill) > 0 && s.spillMin < t {
			// May be a cancelled entry's stale minimum; the worst case is
			// one empty window whose promote sweep reclaims it.
			t = s.spillMin
		}
	}
	if h := se.gq.q.head(); h != nil && h.at < t {
		t = h.at
	}
	return t
}

// syncClocks commits t as every context's current time.
func (se *ShardedEngine) syncClocks(t Time) {
	se.now = t
	se.gq.now = t
	for _, s := range se.shards {
		s.now = t
	}
}

// runWindows is the conservative window/barrier loop: pick the window end
// (lookahead, horizon, or next global event, whichever is nearest), execute
// each shard's slice of the window in parallel, merge the cross-shard
// mailboxes deterministically, then run any global events at the barrier.
func (se *ShardedEngine) runWindows(deadline Time, untilEmpty bool) {
	for !se.stopped.Load() {
		next := se.earliest()
		if next == noEvent {
			if !untilEmpty {
				se.syncClocks(deadline)
			}
			return
		}
		if next > deadline {
			se.syncClocks(deadline)
			return
		}
		if next > se.now {
			// Idle gap: jump straight to the next event. Mailboxes are
			// drained, so nothing can land in between.
			se.syncClocks(next)
		}
		tStop := se.now + se.lookahead
		if tStop < se.now || tStop > deadline { // overflow or horizon clamp
			tStop = deadline
		}
		if g := se.gq.q.head(); g != nil && g.at < tStop {
			tStop = g.at
		}
		se.windows++
		se.runShardsWindow(tStop, false)
		se.drainMailboxes()
		se.syncClocks(tStop)
		se.runGlobal(tStop)
		if tStop == deadline && !untilEmpty {
			return
		}
	}
}

// runGlobal fires global events with timestamps <= bound, world stopped.
func (se *ShardedEngine) runGlobal(bound Time) {
	g := se.gq
	for !se.stopped.Load() {
		h := g.q.head()
		if h == nil || h.at > bound {
			return
		}
		g.step()
	}
}

// runShardsWindow executes every shard's events below (or, when incl, up
// to) tStop, spreading shards across the worker pool. Shard i always runs
// on worker i%W, alone on its goroutine, so execution inside a shard is
// strictly sequential and ordered by its own queue.
func (se *ShardedEngine) runShardsWindow(tStop Time, incl bool) {
	w := se.workers
	if w > len(se.shards) {
		w = len(se.shards)
	}
	if w <= 1 {
		for _, s := range se.shards {
			s.runWindow(tStop, incl)
		}
		return
	}
	se.running.Store(true)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := i; j < len(se.shards); j += w {
				s := se.shards[j]
				s.runWindow(tStop, incl)
				s.finish = time.Since(start).Nanoseconds()
			}
		}(i)
	}
	wg.Wait()
	se.running.Store(false)
	end := time.Since(start).Nanoseconds()
	for _, s := range se.shards {
		s.stall += end - s.finish
	}
}

// drainMailboxes merges the windows' cross-shard events into their
// destination queues in (time, source shard, source order) — an order that
// depends only on the model, never on worker timing.
func (se *ShardedEngine) drainMailboxes() {
	for dst, d := range se.shards {
		buf := se.mergeBuf[:0]
		for _, src := range se.shards {
			if mb := src.out[dst]; len(mb) > 0 {
				buf = append(buf, mb...)
				for k := range mb {
					mb[k].fn = nil
				}
				src.out[dst] = mb[:0]
			}
		}
		se.mergeBuf = buf[:0]
		if len(buf) == 0 {
			continue
		}
		sort.Sort(buf)
		for i := range buf {
			d.enqueue(d.q.acquire(buf[i].at, buf[i].fn))
			buf[i].fn = nil
		}
		d.crossIn += uint64(len(buf))
		se.crossTotal += uint64(len(buf))
	}
}

// shardSched is one shard's execution context: an independent event queue
// with a local clock that may lead the committed global time by up to the
// lookahead. It implements Scheduler for events local to the shard.
type shardSched struct {
	eng    *ShardedEngine
	idx    int
	global bool
	q      equeue
	now    Time
	fired  uint64

	// Far-future spill (partitioned shards only, never the global queue or
	// a degenerate engine): events due at or beyond the current window's
	// end are parked here instead of entering the heap, and promoted into
	// it at the start of the window that covers them. The heap then holds
	// only the current window's events — a few hundred instead of the
	// shard's whole pending set — so sift paths touch a cache-resident
	// array. Entries carry the timestamp by value so the per-window sweep
	// is a sequential scan that dereferences an *Event only when due.
	// Promotion preserves the (time, sequence) firing order exactly: seq
	// is assigned at acquire time, and every event due in a window is in
	// the heap before that window runs.
	spillOn  bool
	spill    []spillEntry
	spillMin Time // earliest spilled timestamp; noEvent when empty
	inWindow bool
	winEnd   Time
	winIncl  bool

	out    []crossEvents // per-destination mailboxes for the current window
	outSeq uint64
	cross  []Scheduler // cached crossScheds, lazily built by the owner

	crossIn uint64
	windows uint64
	finish  int64 // scratch: nanos into the window when this shard finished
	stall   int64
}

// spillEntry parks one far-future event outside the heap.
type spillEntry struct {
	at Time
	ev *Event
}

// enqueue routes a freshly acquired event to the heap or the spill. Inside
// a window, events due before the window end must be in the heap (they fire
// this window); everything else can wait in the spill until the window that
// covers it promotes it.
func (s *shardSched) enqueue(ev *Event) {
	if s.spillOn && (!s.inWindow || ev.at > s.winEnd || (!s.winIncl && ev.at == s.winEnd)) {
		ev.index = spilledIndex
		s.spill = append(s.spill, spillEntry{at: ev.at, ev: ev})
		if ev.at < s.spillMin {
			s.spillMin = ev.at
		}
		return
	}
	s.q.push(ev)
}

// promote moves every spilled event due in the window ending at tStop into
// the heap, dropping cancelled entries it passes. Entries not yet due are
// compacted in place without touching their Event.
func (s *shardSched) promote(tStop Time, incl bool) {
	if len(s.spill) == 0 || s.spillMin > tStop || (!incl && s.spillMin == tStop) {
		return
	}
	kept := s.spill[:0]
	min := Time(noEvent)
	for _, e := range s.spill {
		if e.at < tStop || (incl && e.at == tStop) {
			if e.ev.cancel {
				e.ev.index = -1
				s.q.release(e.ev)
				continue
			}
			s.q.push(e.ev)
			continue
		}
		kept = append(kept, e)
		if e.at < min {
			min = e.at
		}
	}
	for i := len(kept); i < len(s.spill); i++ {
		s.spill[i] = spillEntry{}
	}
	s.spill = kept
	s.spillMin = min
}

// pendingSpill counts spilled events (including not-yet-reclaimed cancelled
// entries, which are dropped when their timestamp comes due).
func (s *shardSched) pendingSpill() int { return len(s.spill) }

func (s *shardSched) Now() Time { return s.now }

func (s *shardSched) Rand() *rand.Rand { return s.eng.rng }

func (s *shardSched) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at %v", delay, s.now))
	}
	return s.At(s.now+delay, fn)
}

func (s *shardSched) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, s.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if s.global && s.eng.running.Load() {
		panic("sim: global schedule from inside a shard window; use the shard or cross-shard scheduler")
	}
	ev := s.q.acquire(t, fn)
	s.enqueue(ev)
	return Handle{ev: ev, gen: ev.gen}
}

func (s *shardSched) Cancel(h Handle) {
	if ev := h.ev; ev != nil && ev.gen == h.gen && !ev.cancel && ev.index == spilledIndex {
		// Spilled: mark only; the slot is reclaimed when the sweep reaches
		// its timestamp (the spill slice still references it).
		ev.cancel = true
		return
	}
	s.q.cancel(h)
}

// step pops and fires the earliest event (degenerate mode and the global
// queue use plain Engine stepping).
func (s *shardSched) step() bool {
	if s.q.len() == 0 {
		return false
	}
	ev := s.q.pop()
	s.now = ev.at
	s.fired++
	fn := ev.fn
	s.q.release(ev)
	fn()
	return true
}

// runWindow executes this shard's events below (or up to, when incl) tStop,
// then parks the local clock at tStop.
func (s *shardSched) runWindow(tStop Time, incl bool) {
	s.inWindow, s.winEnd, s.winIncl = true, tStop, incl
	s.promote(tStop, incl)
	for {
		ev := s.q.head()
		if ev == nil || ev.at > tStop || (!incl && ev.at == tStop) {
			break
		}
		s.q.pop()
		s.now = ev.at
		s.fired++
		fn := ev.fn
		s.q.release(ev)
		fn()
	}
	s.now = tStop
	s.windows++
	s.inWindow = false
}

// crossEvent is a schedule bound for another shard, parked in the source
// shard's mailbox until the barrier.
type crossEvent struct {
	at  Time
	seq uint64 // source-shard schedule order
	src int32
	fn  func()
}

type crossEvents []crossEvent

func (c crossEvents) Len() int      { return len(c) }
func (c crossEvents) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c crossEvents) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	if c[i].src != c[j].src {
		return c[i].src < c[j].src
	}
	return c[i].seq < c[j].seq
}

// crossSched carries schedules from one shard into another. Schedules must
// land at least the lookahead past the source clock (conservative
// synchronization depends on it) and are not cancellable: the returned
// Handle is zero.
type crossSched struct {
	src *shardSched
	dst int
}

func (c *crossSched) Now() Time { return c.src.now }

func (c *crossSched) Rand() *rand.Rand { return c.src.eng.rng }

func (c *crossSched) Schedule(delay Time, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v at %v", delay, c.src.now))
	}
	return c.At(c.src.now+delay, fn)
}

func (c *crossSched) At(t Time, fn func()) Handle {
	s := c.src
	if t-s.now < s.eng.lookahead {
		panic(fmt.Sprintf("sim: cross-shard At(%v) violates lookahead %v (now %v)",
			t, s.eng.lookahead, s.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	s.out[c.dst] = append(s.out[c.dst], crossEvent{at: t, seq: s.outSeq, src: int32(s.idx), fn: fn})
	s.outSeq++
	return Handle{}
}

func (c *crossSched) Cancel(h Handle) {
	if !h.IsZero() {
		panic("sim: Cancel of a foreign handle on a cross-shard scheduler")
	}
}
