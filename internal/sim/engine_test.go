package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000 {
		t.Fatalf("Second = %d, want 1e6 microseconds", Second)
	}
	if Millisecond*1000 != Second {
		t.Fatalf("1000 ms != 1 s")
	}
	if Minute != 60*Second {
		t.Fatalf("Minute = %d", Minute)
	}
}

func TestTimeSeconds(t *testing.T) {
	cases := []struct {
		in   Time
		want float64
	}{
		{0, 0},
		{Second, 1},
		{1500 * Millisecond, 1.5},
		{-Second, -1},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.want {
			t.Errorf("(%d).Seconds() = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1.25, 600, 1200, 0.000001} {
		got := FromSeconds(s)
		if got.Seconds() != s {
			t.Errorf("FromSeconds(%g) = %v (%g s)", s, got, got.Seconds())
		}
	}
	if FromSeconds(-2.5) != -2500*Millisecond {
		t.Errorf("FromSeconds(-2.5) = %v", FromSeconds(-2.5))
	}
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500000s" {
		t.Errorf("String = %q", got)
	}
}

func TestTimeDuration(t *testing.T) {
	if got := (2 * Second).Duration(); got != 2*time.Second {
		t.Errorf("Duration = %v", got)
	}
}

func TestTransmitTime(t *testing.T) {
	// 1000 bytes at 32 Kbps = 8000 bits / 32000 bps = 250 ms.
	if got := TransmitTime(1000, 32_000); got != 250*Millisecond {
		t.Errorf("TransmitTime(1000, 32k) = %v, want 250ms", got)
	}
	// 1000 bytes at 8 Mbps = 1 ms.
	if got := TransmitTime(1000, 8_000_000); got != Millisecond {
		t.Errorf("TransmitTime(1000, 8M) = %v, want 1ms", got)
	}
	// Sub-microsecond serialization rounds up to 1 µs.
	if got := TransmitTime(1, 1e12); got != 1 {
		t.Errorf("TransmitTime tiny = %v, want 1", got)
	}
}

func TestTransmitTimeRoundsUp(t *testing.T) {
	// 1000 bytes at 3 Mbps = 2666.66 µs -> 2667.
	if got := TransmitTime(1000, 3_000_000); got != 2667 {
		t.Errorf("TransmitTime = %v, want 2667", got)
	}
}

func TestTransmitTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransmitTime(1000, 0)
}

func TestMustMonotonic(t *testing.T) {
	// In-order and equal timestamps pass silently.
	MustMonotonic("pkg", "series", 2*Second, Second)
	MustMonotonic("pkg", "", Second, Second)

	expectPanic := func(name, want string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected panic")
			}
			if got := r.(string); got != want {
				t.Fatalf("panic message %q, want %q", got, want)
			}
		}()
		MustMonotonic("pkg", name, Second, 2*Second)
	}
	expectPanic("rx1", `pkg: out-of-order sample at 1.000000s (last 2.000000s) in "rx1"`)
	expectPanic("", `pkg: out-of-order sample at 1.000000s (last 2.000000s)`)
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*Second, func() { got = append(got, 3) })
	e.Schedule(1*Second, func() { got = append(got, 1) })
	e.Schedule(2*Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events reordered: %v", got)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(Second, func() {
		times = append(times, e.Now())
		e.Schedule(Second, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != Second || times[1] != 2*Second {
		t.Fatalf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double cancel and cancelling a zero handle must be safe.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(Second, func() {})
	e.Run()
	e.Cancel(ev) // must not panic
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var evs []Handle
	for i := 0; i < 5; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(i+1)*Second, func() { got = append(got, i) }))
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := Time(i) * Second
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(3 * Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10 * Second)
	if len(fired) != 5 || e.Now() != 10*Second {
		t.Fatalf("after second RunUntil: fired=%d now=%v", len(fired), e.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(5 * Second)
	if e.Now() != 5*Second {
		t.Fatalf("Now = %v, want 5s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(Second, func() { count++; e.Stop() })
	e.Schedule(2*Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(1).Schedule(-1, func() {})
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(2*Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(Second, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(1).Schedule(Second, nil)
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := e.Every(Second, func() { ticks = append(ticks, e.Now()) })
	e.RunUntil(5 * Second)
	tk.Stop()
	e.RunUntil(10 * Second)
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v, want 5 firings", ticks)
	}
	for i, tt := range ticks {
		if tt != Time(i+1)*Second {
			t.Fatalf("tick %d at %v", i, tt)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = e.Every(Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	tk.Stop() // idempotent
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(1).Every(0, func() {})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		e := NewEngine(42)
		var got []int
		for i := 0; i < 100; i++ {
			d := Time(e.Rand().Intn(1000)) * Millisecond
			v := i
			e.Schedule(d, func() { got = append(got, v) })
		}
		e.Run()
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i)*Millisecond, func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine clock ends at the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		var max Time
		for _, d := range delays {
			dt := Time(d) * Millisecond
			if dt > max {
				max = dt
			}
			e.Schedule(dt, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of events fires exactly the
// complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		e := NewEngine(9)
		firedCount := 0
		var evs []Handle
		for _, d := range delays {
			evs = append(evs, e.Schedule(Time(d)*Millisecond, func() { firedCount++ }))
		}
		cancelled := 0
		for i, ev := range evs {
			if i < len(mask) && mask[i] {
				e.Cancel(ev)
				cancelled++
			}
		}
		e.Run()
		return firedCount == len(delays)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := NewEngine(1)
	// Fire an event so its slot lands on the free list.
	h1 := e.Schedule(Millisecond, func() {})
	e.Run()
	// The next schedule recycles the slot for a different event.
	fired := false
	h2 := e.Schedule(Millisecond, func() { fired = true })
	// Cancelling through the stale handle must not touch the new event.
	e.Cancel(h1)
	e.Run()
	if !fired {
		t.Fatal("stale-handle Cancel killed an unrelated recycled event")
	}
	if h2.Cancelled() {
		t.Fatal("recycled event reads Cancelled")
	}
}

func TestStaleHandleGoesInert(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(2*Millisecond, func() {})
	e.Cancel(h)
	if !h.Cancelled() {
		t.Fatal("Cancelled = false right after Cancel")
	}
	// Reusing the slot flips the generation; the old handle reads inert.
	h2 := e.Schedule(Millisecond, func() {})
	if h.Cancelled() {
		t.Fatal("stale handle still reads Cancelled after slot reuse")
	}
	if h.Active() || h.When() != 0 {
		t.Fatalf("stale handle not inert: Active=%v When=%v", h.Active(), h.When())
	}
	if !h2.Active() || h2.When() != Millisecond {
		t.Fatalf("live handle wrong: Active=%v When=%v", h2.Active(), h2.When())
	}
	e.Run()
	if h2.Active() {
		t.Fatal("Active = true after firing")
	}
}

func TestEventPoolReuse(t *testing.T) {
	e := NewEngine(1)
	// Steady state: one event in flight at a time -> exactly one allocation.
	n := 0
	var loop func()
	loop = func() {
		n++
		if n < 1000 {
			e.Schedule(Millisecond, loop)
		}
	}
	e.Schedule(Millisecond, loop)
	e.Run()
	if n != 1000 {
		t.Fatalf("fired %d, want 1000", n)
	}
	if got := e.EventAllocs(); got != 1 {
		t.Fatalf("EventAllocs = %d, want 1 (free list not reusing slots)", got)
	}
	if got := e.EventReuses(); got != 999 {
		t.Fatalf("EventReuses = %d, want 999", got)
	}
}

func TestCancelledEventSlotIsRecycled(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(Second, func() {})
	e.Cancel(h)
	e.Schedule(Millisecond, func() {})
	if got := e.EventAllocs(); got != 1 {
		t.Fatalf("EventAllocs = %d, want 1 (cancel must release the slot)", got)
	}
	e.Run()
}

// Property: interleaved schedule/cancel/fire cycles with slot reuse keep
// the heap consistent — every non-cancelled event fires exactly once, in
// nondecreasing time order.
func TestQuickPooledCancelFire(t *testing.T) {
	f := func(ops []uint8) bool {
		e := NewEngine(11)
		var handles []Handle
		fired := 0
		expected := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // schedule
				expected++
				handles = append(handles, e.Schedule(Time(op)*Millisecond, func() { fired++ }))
			case 1: // cancel a prior handle (may be stale — must be safe)
				if len(handles) > 0 {
					h := handles[int(op)%len(handles)]
					if h.Active() {
						expected--
					}
					e.Cancel(h)
				}
			case 2: // drain
				e.Run()
			}
		}
		e.Run()
		return fired == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97)*Millisecond, func() {})
		}
		e.Run()
	}
}

// BenchmarkScheduleFire measures the steady-state schedule+fire cycle — the
// simulator's innermost loop. With the event free list this runs
// allocation-free (pre-pool: 1 alloc, 48 B per event).
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Millisecond, fn)
		e.Run()
	}
}

// BenchmarkScheduleFireDepth16 keeps 16 events queued so the sift loops do
// real work, closer to a loaded simulation than the depth-1 case.
func BenchmarkScheduleFireDepth16(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	fn := func() {}
	for j := 0; j < 16; j++ {
		e.Schedule(Time(j+1)*Millisecond, fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(17*Millisecond, fn)
		e.step()
	}
}

// BenchmarkScheduleCancel measures the schedule+cancel cycle (timer reset,
// the prune-timer pattern in mcast).
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.Schedule(Second, fn))
	}
}
