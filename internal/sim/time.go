// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package in this repository builds
// on: the network model, the multicast routing layer, traffic sources,
// receivers and the TopoSense controller all advance by scheduling callbacks
// on a single Engine. Determinism is a design goal — two runs with the same
// seed and the same schedule order produce byte-identical results — so
// simulated time is an integer (microseconds), and events that share a
// timestamp fire in the order they were scheduled.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated timestamp or duration measured in microseconds.
//
// Integer time keeps event ordering exact: floating-point timestamps can
// reorder under summation and make simulations irreproducible. A microsecond
// granularity is fine-grained enough to distinguish back-to-back 1000-byte
// packet transmissions on links faster than 8 Gbps, far above anything the
// experiments use.
type Time int64

// Convenient duration units, all expressed in Time's microsecond base.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds returns the time as a floating-point number of seconds. It is
// intended for reporting and metrics, never for scheduling.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the simulated time to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Microsecond }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest microsecond.
func FromSeconds(s float64) Time {
	if s >= 0 {
		return Time(s*float64(Second) + 0.5)
	}
	return Time(s*float64(Second) - 0.5)
}

// MustMonotonic enforces the shared nondecreasing-time contract of recorded
// samples: every time-series recorder in the repository (trace.Series,
// metrics.Trace, ...) accepts samples only in nondecreasing time order,
// because its consumers binary-search by time. Callers pass their package
// name as context and, optionally, the series name; violations panic with
// one uniform message so every recorder reports the bug identically:
//
//	<context>: out-of-order sample at <at> (last <last>) [in "<name>"]
//
// The check is branch-only on the happy path — no formatting, no
// allocation — so it is safe in per-sample hot paths.
func MustMonotonic(context, name string, at, last Time) {
	if at >= last {
		return
	}
	if name != "" {
		panic(fmt.Sprintf("%s: out-of-order sample at %v (last %v) in %q", context, at, last, name))
	}
	panic(fmt.Sprintf("%s: out-of-order sample at %v (last %v)", context, at, last))
}

// TransmitTime returns the serialization delay of sizeBytes at rate bps
// (bits per second), rounded up to the next microsecond. A rate of zero or
// less panics: links must have a positive capacity.
func TransmitTime(sizeBytes int, bps float64) Time {
	if bps <= 0 {
		panic("sim: TransmitTime requires a positive bandwidth")
	}
	bits := float64(sizeBytes) * 8
	us := bits / bps * float64(Second)
	t := Time(us)
	if float64(t) < us {
		t++
	}
	if t < 1 {
		t = 1
	}
	return t
}
