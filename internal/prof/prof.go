// Package prof wires runtime/pprof collection to the -cpuprofile and
// -memprofile flags of the command-line tools. It exists so topobench and
// toposim share one implementation of the awkward parts: starting the CPU
// profile before the work, and flushing both profiles explicitly because
// the tools end with os.Exit, which skips deferred calls.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either path may be empty to skip that profile. It returns a
// stop function that ends the CPU profile and writes the heap profile —
// call it right after the workload of interest, before any os.Exit. The
// stop function is idempotent.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			runtime.GC() // settle allocation statistics before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("heap profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
