package federation

import (
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
	"toposense/internal/source"
)

// parentRig is a two-node harness: the parent at node a, one leaf domain
// whose exports originate at node b. Exports are injected as real control
// packets over the link, so the parent consumes them in node context exactly
// as in a full world.
type parentRig struct {
	e      *sim.Engine
	net    *netsim.Network
	a, b   *netsim.Node
	parent *Parent
	pass   int64
	// Budget updates the parent pushed to the leaf node, in arrival order.
	updates []*BudgetUpdate
}

func (r *parentRig) Recv(p *netsim.Packet) {
	if bu, ok := p.Payload.(*BudgetUpdate); ok {
		r.updates = append(r.updates, bu)
	}
}

func newParentRig(t *testing.T, rates []float64) *parentRig {
	t.Helper()
	e := sim.NewEngine(1)
	net := netsim.New(e)
	a := net.AddNode("parent")
	b := net.AddNode("leaf")
	net.Connect(a, b, netsim.LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond})
	r := &parentRig{e: e, net: net, a: a, b: b}
	r.parent = NewParent(net, a, rates, sim.Second)
	b.AttachAgent(r)
	return r
}

// export schedules a fresh single-session export from the leaf at time at.
func (r *parentRig) export(at sim.Time, s SessionSummary) {
	r.pass++
	pass := r.pass
	r.e.At(at, func() {
		exp := &DomainExport{Domain: 1, Leaf: r.b.ID, Pass: pass, Sent: r.e.Now(),
			Sessions: []SessionSummary{s}}
		r.b.SendUnicast(report.NewControlPacket(r.b.ID, r.a.ID, exp.WireSize(), r.e.Now(), exp))
	})
}

func TestWireSizes(t *testing.T) {
	e := &DomainExport{Sessions: make([]SessionSummary, 3)}
	if got, want := e.WireSize(), ExportBaseSize+3*ExportSessionSize; got != want {
		t.Errorf("export wire size %d, want %d", got, want)
	}
	b := &BudgetUpdate{Budgets: make([]SessionBudget, 5)}
	if got, want := b.WireSize(), BudgetBaseSize+5*BudgetEntrySize; got != want {
		t.Errorf("budget wire size %d, want %d", got, want)
	}
}

// TestCeilingFromBorderBandwidth pins the budget ceiling derivation: the
// highest cumulative-rate level fitting the granted border share, floored at
// level 1, uncapped when no bandwidth is declared.
func TestCeilingFromBorderBandwidth(t *testing.T) {
	rates := source.Rates(6)
	r := newParentRig(t, rates)
	p := r.parent
	p.AddDomain(DomainConfig{Domain: 1, Leaf: r.b.ID, BorderBandwidth: 600e3})
	p.AddDomain(DomainConfig{Domain: 2, Leaf: r.b.ID})                            // uncapped
	p.AddDomain(DomainConfig{Domain: 3, Leaf: r.b.ID, BorderBandwidth: 1})        // starvation floor
	p.AddDomain(DomainConfig{Domain: 4, Leaf: r.b.ID, BorderBandwidth: 1200e3, Share: 0.5}) // share applies

	if got, want := p.Ceiling(1), source.LevelForBandwidth(rates, 600e3); got != want {
		t.Errorf("600k ceiling %d, want %d", got, want)
	}
	if got := p.Ceiling(2); got != 6 {
		t.Errorf("uncapped ceiling %d, want 6", got)
	}
	if got := p.Ceiling(3); got != 1 {
		t.Errorf("starved domain ceiling %d, want 1 (floor)", got)
	}
	if got, want := p.Ceiling(4), p.Ceiling(1); got != want {
		t.Errorf("half of 1200k ceiling %d, want same as 600k (%d)", got, want)
	}
	if got := p.Ceiling(99); got != 0 {
		t.Errorf("unknown domain ceiling %d, want 0", got)
	}
}

// TestBudgetClimb: a domain binding cleanly climbs from InitialBudget one
// level per RaiseAfter fresh exports up to its ceiling, then stops — and each
// push carries only the changed entry.
func TestBudgetClimb(t *testing.T) {
	r := newParentRig(t, source.Rates(6))
	r.parent.AddDomain(DomainConfig{Domain: 1, Leaf: r.b.ID, BorderBandwidth: 600e3})
	ceiling := r.parent.Ceiling(1) // 4 with the default rate stack
	r.parent.Start()

	// A fresh, clean, always-binding export every second for 30 s.
	for i := 0; i < 30; i++ {
		r.export(sim.Time(i)*sim.Second+100*sim.Millisecond,
			SessionSummary{Session: 0, Receivers: 3, MaxLoss: 0, MeanLoss: 0, TopLevel: 6})
	}
	r.e.RunUntil(31 * sim.Second)

	if got := r.parent.Budget(1, 0); got != ceiling {
		t.Errorf("budget settled at %d, want ceiling %d", got, ceiling)
	}
	// InitialBudget grant plus one raise per level up to the ceiling.
	wantChanges := int64(ceiling) // 1 grant + (ceiling-1) raises
	changes, _ := r.parent.ChangesFor(1)
	if changes != wantChanges {
		t.Errorf("budget changes %d, want %d (grant + climb, no churn past the ceiling)", changes, wantChanges)
	}
	// Climb pace: a raise only after RaiseAfter consecutive clean binding
	// exports, so the climb must not be complete before ~RaiseAfter*(ceiling-1)
	// fresh exports.
	if len(r.updates) != int(wantChanges) {
		t.Fatalf("leaf received %d budget updates, want %d", len(r.updates), wantChanges)
	}
	for i, bu := range r.updates {
		if len(bu.Budgets) != 1 {
			t.Fatalf("update %d carries %d entries, want 1 (deltas only)", i, len(bu.Budgets))
		}
		if got, want := bu.Budgets[0].MaxLevel, i+1; got != want {
			t.Errorf("update %d grants level %d, want %d", i, got, want)
		}
	}
}

// TestFreshnessToken: without a fresh export the budgets hold steady — the
// reconcile loop never acts twice on the same pass.
func TestFreshnessToken(t *testing.T) {
	r := newParentRig(t, source.Rates(6))
	r.parent.AddDomain(DomainConfig{Domain: 1, Leaf: r.b.ID})
	r.parent.Start()

	// One export, then silence for 10 reconcile passes.
	r.export(100*sim.Millisecond, SessionSummary{Session: 0, TopLevel: 6})
	r.e.RunUntil(10 * sim.Second)

	if got := r.parent.Budget(1, 0); got != InitialBudget {
		t.Errorf("silent domain's budget drifted to %d, want %d", got, InitialBudget)
	}
	changes, _ := r.parent.ChangesFor(1)
	if changes != 1 {
		t.Errorf("%d budget changes on one export, want 1", changes)
	}
	if r.parent.Reconciles < 9 {
		t.Errorf("reconcile loop ran %d times, want >= 9", r.parent.Reconciles)
	}
}

// TestCutEpisodeAndLearnedCeiling: severe loss must persist for CutAfter
// consecutive exports before a cut, a distress episode still counts when the
// receivers retreat below the budget before the loss echo clears, and the cut
// ratchets the learned ceiling so the level is never re-granted.
func TestCutEpisodeAndLearnedCeiling(t *testing.T) {
	r := newParentRig(t, source.Rates(6))
	r.parent.AddDomain(DomainConfig{Domain: 1, Leaf: r.b.ID, BorderBandwidth: 600e3})
	ceiling := r.parent.Ceiling(1)
	r.parent.Start()

	at := func(i int) sim.Time { return sim.Time(i)*sim.Second + 100*sim.Millisecond }
	i := 0
	// Climb to the ceiling.
	for ; i < 2*ceiling+2; i++ {
		r.export(at(i), SessionSummary{Session: 0, TopLevel: 6})
	}
	// A single lossy binding export: a join transient, must NOT cut.
	r.export(at(i), SessionSummary{Session: 0, MaxLoss: 0.6, MeanLoss: 0.3, TopLevel: ceiling})
	i++
	// One clean non-binding export resets the streak.
	r.export(at(i), SessionSummary{Session: 0, MaxLoss: 0, TopLevel: 1})
	i++
	transientEnd := at(i)
	// Now a real distress episode: starts binding, continues after the
	// receivers retreat (TopLevel below budget but the loss echo persists).
	r.export(at(i), SessionSummary{Session: 0, MaxLoss: 0.5, MeanLoss: 0.4, TopLevel: ceiling})
	i++
	r.export(at(i), SessionSummary{Session: 0, MaxLoss: 0.7, MeanLoss: 0.4, TopLevel: 1})
	i++
	episodeEnd := at(i)
	// Clean binding exports afterwards: must not climb past the learned ceiling.
	for j := 0; j < 6; j++ {
		r.export(at(i), SessionSummary{Session: 0, TopLevel: 6})
		i++
	}

	r.e.RunUntil(transientEnd)
	if got := r.parent.Budget(1, 0); got != ceiling {
		t.Fatalf("budget %d after a single lossy export, want %d (no cut on one sample)", got, ceiling)
	}
	if got := r.parent.Learned(1); got != ceiling {
		t.Fatalf("learned ceiling %d after a transient, want %d", got, ceiling)
	}

	r.e.RunUntil(episodeEnd + sim.Second)
	if got := r.parent.Budget(1, 0); got != ceiling-1 {
		t.Fatalf("budget %d after a sustained distress episode, want %d", got, ceiling-1)
	}
	if got := r.parent.Learned(1); got != ceiling-1 {
		t.Fatalf("learned ceiling %d after the cut, want %d", got, ceiling-1)
	}

	r.e.RunUntil(at(i) + sim.Second)
	if got := r.parent.Budget(1, 0); got != ceiling-1 {
		t.Errorf("budget re-climbed to %d past the learned ceiling %d", got, ceiling-1)
	}
}

// TestDrainedDomainHoldsBudget: a domain whose receivers all depart
// (Receivers == 0, Departures > 0 in the export) holds its earned budget —
// even when the drain lands mid-distress-episode and the loss echo would
// otherwise complete a cut — so rejoining receivers resume at the earned
// level. A session only ever seen drained gets no initial grant.
func TestDrainedDomainHoldsBudget(t *testing.T) {
	r := newParentRig(t, source.Rates(6))
	r.parent.AddDomain(DomainConfig{Domain: 1, Leaf: r.b.ID, BorderBandwidth: 600e3})
	ceiling := r.parent.Ceiling(1)
	r.parent.Start()

	at := func(i int) sim.Time { return sim.Time(i)*sim.Second + 100*sim.Millisecond }
	i := 0
	// Climb to the ceiling.
	for ; i < 2*ceiling+2; i++ {
		r.export(at(i), SessionSummary{Session: 0, Receivers: 3, TopLevel: 6})
	}
	// A distress episode opens (one lossy binding export; CutAfter is 2, so
	// no cut yet) — and then every receiver departs. The drained export still
	// echoes the loss, which without the departure gate would keep the
	// episode open and complete the cut.
	r.export(at(i), SessionSummary{Session: 0, Receivers: 3, MaxLoss: 0.6, MeanLoss: 0.3, TopLevel: ceiling})
	i++
	for j := 0; j < 3; j++ {
		r.export(at(i), SessionSummary{Session: 0, Receivers: 0, Departures: 3, MaxLoss: 0.6, MeanLoss: 0.3})
		i++
	}
	drainEnd := at(i)
	// A session this domain has only ever exported drained.
	r.export(at(i), SessionSummary{Session: 1, Receivers: 0, Departures: 2})
	i++
	// Receivers rejoin clean: the domain resumes at the earned budget.
	for j := 0; j < 4; j++ {
		r.export(at(i), SessionSummary{Session: 0, Receivers: 3, TopLevel: 6})
		i++
	}

	r.e.RunUntil(drainEnd)
	if got := r.parent.Budget(1, 0); got != ceiling {
		t.Fatalf("drained domain's budget = %d, want the earned %d (hold, not cut)", got, ceiling)
	}
	if got := r.parent.Learned(1); got != ceiling {
		t.Fatalf("drain ratcheted the learned ceiling to %d, want %d untouched", got, ceiling)
	}

	r.e.RunUntil(at(i) + sim.Second)
	if got := r.parent.Budget(1, 0); got != ceiling {
		t.Errorf("budget after the receivers rejoined = %d, want %d", got, ceiling)
	}
	if got := r.parent.Budget(1, 1); got != 0 {
		t.Errorf("session only ever seen drained was granted budget %d, want none", got)
	}
}

// TestUnknownDomainDropped: exports from an unregistered domain are ignored,
// not acted on.
func TestUnknownDomainDropped(t *testing.T) {
	r := newParentRig(t, source.Rates(6))
	r.parent.AddDomain(DomainConfig{Domain: 1, Leaf: r.b.ID})
	r.parent.Start()

	r.e.At(100*sim.Millisecond, func() {
		exp := &DomainExport{Domain: 42, Leaf: r.b.ID, Pass: 1, Sent: r.e.Now(),
			Sessions: []SessionSummary{{Session: 0, TopLevel: 6}}}
		r.b.SendUnicast(report.NewControlPacket(r.b.ID, r.a.ID, exp.WireSize(), r.e.Now(), exp))
	})
	r.e.RunUntil(3 * sim.Second)

	if r.parent.ExportsRecv != 0 {
		t.Errorf("unregistered domain's export counted: ExportsRecv = %d", r.parent.ExportsRecv)
	}
	if r.parent.BudgetChanges != 0 {
		t.Errorf("unregistered domain changed budgets: %d", r.parent.BudgetChanges)
	}
	if len(r.updates) != 0 {
		t.Errorf("parent pushed %d updates for an unregistered domain", len(r.updates))
	}
}
