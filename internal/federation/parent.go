package federation

import (
	"sort"
	"time"

	"toposense/internal/netsim"
	"toposense/internal/obs"
	"toposense/internal/report"
	"toposense/internal/sim"
	"toposense/internal/source"
)

// Reconcile defaults. Budgets start at InitialBudget and climb one level per
// clean reconcile pass while they bind, so a domain's granted bandwidth
// converges from below — the convergence curve fig_federation plots. The
// loss thresholds are deliberately far apart: the leaf algorithm already
// steers receivers away from mildly lossy levels, so the parent only cuts on
// severe domain-wide distress and only raises on a clean bill.
const (
	DefaultLossLow  = 0.05
	DefaultLossHigh = 0.25
	InitialBudget   = 1
	// DefaultCutAfter is how many consecutive fresh exports must show severe
	// loss before the parent cuts. A budget raise makes every capped receiver
	// in the domain join the new layer at once, and that synchronized join can
	// spike loss for one report interval even at a perfectly sustainable
	// level; cutting (and ratcheting the learned ceiling) on that single
	// sample would lock the domain below its real capacity. Genuine overload
	// persists into the next export; a join transient does not.
	DefaultCutAfter = 2
	// DefaultRaiseAfter is the symmetric hysteresis for raises: the budget
	// must bind cleanly for this many consecutive fresh exports before one
	// more level is granted. A single receiver's momentary probe to the
	// budget level counts as binding for one export; without persistence the
	// parent would keep drip-feeding raises long after the domain settled,
	// and the churn clock would never stop.
	DefaultRaiseAfter = 2
)

// DomainConfig declares one leaf domain to the parent: where its controller
// lives and how much of its border link the domain is granted.
type DomainConfig struct {
	Domain int
	Leaf   netsim.NodeID // node the domain's leaf controller runs on
	// BorderBandwidth is the capacity (bits/s) of the border link connecting
	// the domain to the backbone; 0 leaves the domain ceiling at the full
	// layer stack.
	BorderBandwidth float64
	// Share is the fraction of the border bandwidth this domain's sessions
	// may claim together — the inter-domain fairness knob. 0 means 1.0.
	Share float64
}

// domainState is the parent's per-domain reconcile state: configuration,
// the derived level ceiling, the freshest export, and the budgets in force.
// learned starts at the bandwidth-derived ceiling and ratchets down on every
// cut: a level that showed severe loss while the budget bound there is never
// re-granted, so the cut/raise cycle cannot oscillate and churn provably
// terminates (one climb up, at most ceiling cuts down).
type domainState struct {
	cfg        DomainConfig
	ceiling    int
	learned    int // loss-learned ceiling, <= ceiling, never raised
	latest     *DomainExport
	seenPass   int64 // newest export pass already reconciled
	budgets    map[int]int
	streaks    map[int]int // per-session consecutive high-loss binding exports
	raises     map[int]int // per-session consecutive clean binding exports
	changes    int64
	lastChange sim.Time
}

// Parent is the controller of controllers. It consumes DomainExports in
// node context, and a global-scheduler ticker runs the reconcile loop:
// domains in id order, sessions in export order (sorted), adjusting each
// budget by at most one level per fresh export and pushing only the deltas.
type Parent struct {
	net      *netsim.Network
	node     *netsim.Node
	rates    []float64 // layer rates the ceilings are computed against
	interval sim.Time
	ticker   *sim.Ticker

	// Loss thresholds and the hysteresis depths; see the package defaults.
	LossLow, LossHigh    float64
	CutAfter, RaiseAfter int

	domains  []*domainState // sorted by domain id
	byDomain map[int]*domainState

	// Stats.
	ExportsRecv        int64
	Reconciles         int64
	BudgetChanges      int64 // budget entries pushed down (the churn number)
	ReconcileWallNanos int64 // host wall time inside reconcile (reporting only)

	obs *obs.Obs
}

// NewParent creates the parent controller at node. rates are the session
// layer rates domain ceilings are computed from; interval is the reconcile
// period (the natural choice is the leaf decision interval, so every
// reconcile pass sees at most one fresh export per domain).
func NewParent(net *netsim.Network, node *netsim.Node, rates []float64, interval sim.Time) *Parent {
	p := &Parent{
		net: net, node: node,
		rates: append([]float64(nil), rates...), interval: interval,
		LossLow: DefaultLossLow, LossHigh: DefaultLossHigh,
		CutAfter: DefaultCutAfter, RaiseAfter: DefaultRaiseAfter,
		byDomain: make(map[int]*domainState),
	}
	node.AttachAgent(p)
	return p
}

// SetObs attaches the observability bundle; nil keeps the zero-overhead path.
func (p *Parent) SetObs(o *obs.Obs) { p.obs = o }

// Node returns the node the parent runs on.
func (p *Parent) Node() *netsim.Node { return p.node }

// AddDomain registers a leaf domain. The domain's level ceiling is the
// highest cumulative-rate level that fits its granted share of the border
// bandwidth (at least level 1, so a domain is never starved outright).
// Call before Start.
func (p *Parent) AddDomain(cfg DomainConfig) {
	share := cfg.Share
	if share <= 0 || share > 1 {
		share = 1
	}
	ceiling := len(p.rates)
	if cfg.BorderBandwidth > 0 {
		ceiling = source.LevelForBandwidth(p.rates, cfg.BorderBandwidth*share)
		if ceiling < 1 {
			ceiling = 1
		}
	}
	ds := &domainState{
		cfg: cfg, ceiling: ceiling, learned: ceiling,
		budgets: make(map[int]int), streaks: make(map[int]int), raises: make(map[int]int),
	}
	p.domains = append(p.domains, ds)
	sort.Slice(p.domains, func(i, j int) bool { return p.domains[i].cfg.Domain < p.domains[j].cfg.Domain })
	p.byDomain[cfg.Domain] = ds
}

// Ceiling returns a domain's bandwidth-derived level ceiling (0 for an
// unknown domain).
func (p *Parent) Ceiling(domain int) int {
	if ds := p.byDomain[domain]; ds != nil {
		return ds.ceiling
	}
	return 0
}

// Learned returns a domain's loss-learned ceiling: the bandwidth ceiling
// lowered by every cut the domain has suffered. Budgets never climb past it.
func (p *Parent) Learned(domain int) int {
	if ds := p.byDomain[domain]; ds != nil {
		return ds.learned
	}
	return 0
}

// Budget returns the budget in force for (domain, session); 0 = none granted
// yet.
func (p *Parent) Budget(domain, session int) int {
	if ds := p.byDomain[domain]; ds != nil {
		return ds.budgets[session]
	}
	return 0
}

// ChangesFor returns how many budget entries the parent has pushed to one
// domain, and when the last push happened — the per-domain convergence
// numbers fig_federation reports.
func (p *Parent) ChangesFor(domain int) (changes int64, last sim.Time) {
	if ds := p.byDomain[domain]; ds != nil {
		return ds.changes, ds.lastChange
	}
	return 0, 0
}

// Start launches the reconcile ticker on the global scheduler: the loop
// reads state written by every domain's shard, so on a partitioned network
// it runs as a stop-the-world event at window barriers, like a leaf
// controller's decision pass.
func (p *Parent) Start() {
	if p.ticker != nil {
		return
	}
	p.ticker = sim.Every(sim.GlobalOf(p.net.Engine()), p.interval, p.reconcile)
}

// Stop halts the reconcile loop. Budgets already pushed stay in force at the
// leaves.
func (p *Parent) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
}

// Recv implements netsim.Agent: consume domain exports. The newest export
// per domain wins; the reconcile loop reads it at the next tick.
func (p *Parent) Recv(pkt *netsim.Packet) {
	e, ok := pkt.Payload.(*DomainExport)
	if !ok {
		return
	}
	ds := p.byDomain[e.Domain]
	if ds == nil {
		return // an unregistered domain's export is dropped, not acted on
	}
	p.ExportsRecv++
	if p.obs != nil {
		p.obs.FedExports.Inc()
	}
	ds.latest = e
}

// reconcile runs one declarative pass: compare each domain's observed state
// (its freshest export) against the desired state (budgets within the
// domain ceiling) and push the per-session deltas. Decisions read only
// simulated state; the host clock below feeds the latency histogram and
// nothing else.
func (p *Parent) reconcile() {
	start := time.Now()
	now := sim.GlobalOf(p.net.Engine()).Now()
	for _, ds := range p.domains {
		e := ds.latest
		if e == nil || e.Pass == ds.seenPass {
			continue // no fresh evidence: budgets hold steady
		}
		ds.seenPass = e.Pass
		var changed []SessionBudget
		for _, s := range e.Sessions {
			b, ok := ds.budgets[s.Session]
			if s.Receivers == 0 && s.Departures > 0 {
				// A drained session: every receiver departed this pass.
				// Silence from departure is not congestion evidence — hold
				// the budget where it climbed and reset the hysteresis, so
				// rejoining receivers resume at the earned level instead of
				// a cut one. A session only ever seen drained gets no
				// initial grant either.
				if ok {
					ds.streaks[s.Session] = 0
					ds.raises[s.Session] = 0
				}
				continue
			}
			if !ok {
				// First sighting of the session in this domain: grant the
				// initial budget and let it climb on later passes.
				ds.budgets[s.Session] = InitialBudget
				changed = append(changed, SessionBudget{Session: s.Session, MaxLevel: InitialBudget})
				continue
			}
			nb := b
			switch {
			case s.MaxLoss >= p.LossHigh && (s.TopLevel >= b || ds.streaks[s.Session] > 0) && b > 1:
				// Severe loss in a distress episode that STARTED while the
				// budget bound (TopLevel >= b opens the streak; the echo
				// exports after the receivers retreat keep it open). One
				// sample is not enough: a fresh raise makes the whole domain
				// join the new layer at once, which can spike loss for a
				// single interval even at a sustainable level. Once the
				// distress persists across CutAfter consecutive exports the
				// granted level is judged unsustainable: cut, and ratchet
				// the learned ceiling down so this level is never re-probed
				// — which also spares the domain's receivers the failed join
				// experiments that produced the loss. Severe loss with no
				// binding episode is the leaf algorithm's problem; adjusting
				// the budget then would be pure churn.
				ds.raises[s.Session] = 0
				ds.streaks[s.Session]++
				if ds.streaks[s.Session] >= p.CutAfter {
					ds.streaks[s.Session] = 0
					nb = b - 1
					if nb < ds.learned {
						ds.learned = nb
					}
				}
			case s.MeanLoss <= p.LossLow && s.TopLevel >= b && b < ds.learned:
				// Clean pass and the budget binds (receivers sit at it):
				// after RaiseAfter consecutive such exports, grant one more
				// level, up to the learned ceiling. The raise gate reads the
				// domain MEAN, not the max: the budget caps the strongest
				// receivers, so one weak receiver's steady moderate loss
				// (the leaf algorithm's problem) must not veto headroom for
				// everyone else. A budget above what the leaf algorithm
				// chooses on its own stops binding, so raises — and churn —
				// stop by themselves.
				ds.streaks[s.Session] = 0
				ds.raises[s.Session]++
				if ds.raises[s.Session] >= p.RaiseAfter {
					ds.raises[s.Session] = 0
					nb = b + 1
				}
			default:
				ds.streaks[s.Session] = 0
				ds.raises[s.Session] = 0
			}
			if nb != b {
				ds.budgets[s.Session] = nb
				changed = append(changed, SessionBudget{Session: s.Session, MaxLevel: nb})
			}
		}
		if len(changed) > 0 {
			ds.changes += int64(len(changed))
			ds.lastChange = now
			p.BudgetChanges += int64(len(changed))
			if p.obs != nil {
				for _, cb := range changed {
					p.obs.FedBudgetChurn.Inc()
					p.obs.FedBudgetLevel.Observe(float64(cb.MaxLevel))
				}
			}
			bu := &BudgetUpdate{Domain: ds.cfg.Domain, Sent: now, Budgets: changed}
			p.node.SendUnicast(report.NewControlPacket(p.node.ID, ds.cfg.Leaf, bu.WireSize(), now, bu))
		}
	}
	p.Reconciles++
	wall := int64(time.Since(start))
	p.ReconcileWallNanos += wall
	if p.obs != nil {
		p.obs.FedReconciles.Inc()
		p.obs.FedReconcileUs.Observe(float64(wall) / 1e3)
	}
}
