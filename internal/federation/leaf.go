package federation

import (
	"toposense/internal/controller"
	"toposense/internal/core"
	"toposense/internal/netsim"
	"toposense/internal/report"
	"toposense/internal/sim"
)

// Leaf adapts one domain's controller to the hierarchical control plane. It
// hooks the controller's pass observer to export a DomainExport after every
// decision pass — folding the pass's receiver states through a pooled
// report.Aggregate per session, so the summary arithmetic is exactly the
// aggregation layer's — and consumes BudgetUpdate packets from the parent,
// applying each granted budget as a level cap on the controller.
//
// The leaf is a second agent on the controller's node: exports and budget
// updates travel as ordinary unicast control packets across the simulated
// network, crossing (and competing on) the same links as the media.
type Leaf struct {
	Domain int

	node   *netsim.Node
	ctrl   *controller.Controller
	parent netsim.NodeID
	pass   int64

	// Stats.
	ExportsSent int64
	BudgetsRecv int64
	CapsApplied int64 // level caps installed (SetLevelCap calls)
}

// NewLeaf wires a leaf onto ctrl, exporting to the parent controller's node.
// It claims the controller's OnStep hook; install any other observer on the
// Leaf's own OnStep instead.
func NewLeaf(ctrl *controller.Controller, domain int, parent netsim.NodeID) *Leaf {
	l := &Leaf{Domain: domain, node: ctrl.Node(), ctrl: ctrl, parent: parent}
	ctrl.OnStep = l.export
	l.node.AttachAgent(l)
	return l
}

// Controller returns the wrapped domain controller.
func (l *Leaf) Controller() *controller.Controller { return l.ctrl }

// export builds and sends the domain summary for one completed pass. The
// input slice is sorted session-major, so each session's run folds into one
// aggregate whose summary fields are copied out; the aggregate itself is
// released immediately — pooled payloads never ride a federation packet, so
// a congestion-dropped export costs the pools nothing.
func (l *Leaf) export(now sim.Time, in core.Input, out []core.Suggestion) {
	l.pass++
	exp := &DomainExport{Domain: l.Domain, Leaf: l.node.ID, Pass: l.pass, Sent: now}
	// Sessions whose receivers departed this pass must appear in the export
	// even when no live receiver reported — otherwise the parent sees a
	// drained session simply vanish and counts its last summary's ghosts
	// until the next pass. departed is sorted and in.Reports is
	// session-major, so the two merge in order; nil (the churn-free case)
	// costs nothing.
	departed := l.ctrl.DepartedSessions()
	di := 0
	drain := func(before int, all bool) {
		for di < len(departed) && (all || departed[di] < before) {
			s := departed[di]
			exp.Sessions = append(exp.Sessions, SessionSummary{
				Session:    s,
				Worst:      netsim.NoNode,
				Departures: l.ctrl.PassDepartures(s),
			})
			di++
		}
	}
	for i := 0; i < len(in.Reports); {
		s := in.Reports[i].Session
		drain(s, false)
		ag := report.NewAggregate(s, l.node.ID)
		top := 0
		for ; i < len(in.Reports) && in.Reports[i].Session == s; i++ {
			st := in.Reports[i]
			ag.Fold(report.LossReport{
				Node: st.Node, Session: s, Level: st.Level,
				LossRate: st.LossRate, Bytes: st.Bytes,
			})
			if st.Level > top {
				top = st.Level
			}
		}
		exp.Sessions = append(exp.Sessions, SessionSummary{
			Session:    s,
			Receivers:  ag.Receivers(),
			Reports:    ag.ReportCount,
			Bytes:      ag.ByteTotal,
			MeanLoss:   ag.MeanLoss(),
			MaxLoss:    ag.MaxLoss,
			Worst:      ag.Worst,
			TopLevel:   top,
			Departures: l.ctrl.PassDepartures(s),
		})
		ag.Release()
		if di < len(departed) && departed[di] == s {
			di++ // folded into the live summary above
		}
	}
	drain(0, true)
	pkt := report.NewControlPacket(l.node.ID, l.parent, exp.WireSize(), now, exp)
	l.node.SendUnicast(pkt)
	l.ExportsSent++
}

// Recv implements netsim.Agent: apply budget updates from the parent. Every
// other payload addressed to this node belongs to the co-resident controller
// agent and is ignored here.
func (l *Leaf) Recv(p *netsim.Packet) {
	bu, ok := p.Payload.(*BudgetUpdate)
	if !ok || bu.Domain != l.Domain {
		return
	}
	l.BudgetsRecv++
	for _, b := range bu.Budgets {
		l.ctrl.SetLevelCap(b.Session, b.MaxLevel)
		l.CapsApplied++
	}
}
