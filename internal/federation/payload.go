// Package federation implements the hierarchical control plane — a
// controller of controllers. The paper's architecture (Section II, Figure 3)
// stations one TopoSense controller per domain; this package adds the tier
// above: every leaf controller exports a compact per-domain congestion
// summary after each decision pass, and a parent controller runs a
// declarative reconcile loop over those exports — desired state (per-domain
// session-level budgets bounded by each domain's share of its border-link
// bandwidth) against observed state (the summaries) — pushing budget updates
// down only when the two diverge. Leaf controllers enforce a budget as a
// hard cap on the levels the core algorithm may suggest.
//
// Determinism contract: every reconcile decision reads only simulated state
// (exports that arrived as simulated packets, budgets, configured shares).
// Host wall clocks are measured around the reconcile pass for reporting
// only — identical seeds produce identical budget sequences on the serial
// and sharded engines alike, because exports are consumed in node context
// and the reconcile pass runs as a stop-the-world global event, exactly
// like a leaf controller's decision pass.
package federation

import (
	"fmt"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Modeled wire sizes of the federation control payloads, in bytes. Like the
// report payload constants, the Go values carried are exact — Size is the
// modeled cost on the wire. An export is a fixed header plus one packed
// summary record per session; a budget update is a header plus a packed
// (session, level) pair per entry. Neither scales with the domain's receiver
// population — that is the point of the hierarchy.
const (
	ExportBaseSize    = 32
	ExportSessionSize = 40
	BudgetBaseSize    = 24
	BudgetEntrySize   = 6
)

// SessionSummary is one session's congestion digest inside a DomainExport:
// the associative subtree summary of a report.Aggregate (the leaf folds its
// pass input through one and copies these fields out) plus the highest
// subscription level any receiver in the domain reported. The parent reads
// nothing finer — per-receiver entries never leave a domain.
type SessionSummary struct {
	Session   int
	Receivers int           // distinct receivers folded in
	Reports   int64         // loss reports represented
	Bytes     int64         // sum of reported byte counts
	MeanLoss  float64       // mean reported loss rate
	MaxLoss   float64       // worst single reported loss rate
	Worst     netsim.NodeID // receiver that reported MaxLoss (NoNode when empty)
	TopLevel  int           // highest level any receiver reported
	// Departures is how many receivers deregistered from this session since
	// the previous pass. A summary with Receivers == 0 and Departures > 0 is
	// a drained session: the parent must hold its budget rather than treat
	// the silence as evidence. The count packs into the summary record's
	// existing padding, so ExportSessionSize is unchanged.
	Departures int
}

// DomainExport is the upward half of the federation protocol: one leaf
// controller's observed state after one decision pass. Pass numbers are the
// reconcile loop's freshness token — the parent adjusts a domain's budgets
// at most once per export, so a silent domain's budgets hold steady instead
// of drifting on stale evidence.
type DomainExport struct {
	Domain   int
	Leaf     netsim.NodeID // node the exporting leaf controller runs on
	Pass     int64         // leaf pass counter, strictly increasing
	Sent     sim.Time
	Sessions []SessionSummary // sorted by Session
}

// WireSize returns the modeled wire cost in bytes.
func (e *DomainExport) WireSize() int {
	return ExportBaseSize + len(e.Sessions)*ExportSessionSize
}

func (e *DomainExport) String() string {
	return fmt.Sprintf("domain-export d=%d leaf=%d pass=%d sessions=%d",
		e.Domain, e.Leaf, e.Pass, len(e.Sessions))
}

// SessionBudget grants one session a maximum subscription level inside one
// domain.
type SessionBudget struct {
	Session  int
	MaxLevel int
}

// BudgetUpdate is the downward half: the parent's desired state for one
// domain, carrying only the budgets that changed this reconcile pass. The
// leaf applies each entry as a level cap on its controller.
type BudgetUpdate struct {
	Domain  int
	Sent    sim.Time
	Budgets []SessionBudget // sorted by Session
}

// WireSize returns the modeled wire cost in bytes.
func (b *BudgetUpdate) WireSize() int {
	return BudgetBaseSize + len(b.Budgets)*BudgetEntrySize
}

func (b *BudgetUpdate) String() string {
	return fmt.Sprintf("budget-update d=%d entries=%d", b.Domain, len(b.Budgets))
}
