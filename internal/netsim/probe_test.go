package netsim

import (
	"testing"

	"toposense/internal/sim"
)

func TestLinkProbeSeesLifecycle(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 8e5, Delay: sim.Millisecond, QueueLimit: 2}
	e, _, a, b, _ := lineNetwork(t, cfg)
	link := a.LinkTo(b.ID)
	var probe CountingProbe
	link.Attach(&probe)

	const sent = 10
	for i := 0; i < sent; i++ {
		a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000, Seq: int64(i)})
	}
	e.Run()

	st := link.Stats()
	if probe.Enqueues != st.Enqueued {
		t.Errorf("probe Enqueues = %d, stats Enqueued = %d", probe.Enqueues, st.Enqueued)
	}
	if probe.Drops != st.Dropped {
		t.Errorf("probe Drops = %d, stats Dropped = %d", probe.Drops, st.Dropped)
	}
	if probe.Delivers != st.Delivered {
		t.Errorf("probe Delivers = %d, stats Delivered = %d", probe.Delivers, st.Delivered)
	}
	if probe.Enqueues+probe.Drops != sent {
		t.Errorf("enqueues+drops = %d, want %d", probe.Enqueues+probe.Drops, sent)
	}
	if probe.Drops == 0 {
		t.Error("expected drops on a 2-packet queue")
	}
}

func TestNetworkWideProbe(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	e, n, a, _, c := lineNetwork(t, cfg)
	var probe CountingProbe
	n.AttachProbe(&probe)

	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: c.ID, Group: NoGroup, Size: 1000})
	e.Run()

	// Two hops: the network-wide probe observes both links.
	if probe.Enqueues != 2 || probe.Delivers != 2 || probe.Drops != 0 {
		t.Fatalf("probe = %+v, want 2 enqueues, 2 delivers, 0 drops", probe)
	}

	// Links created after AttachProbe are covered too.
	d := n.AddNode("d")
	n.Connect(c, d, cfg)
	sink := &collector{}
	d.AttachAgent(sink)
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: d.ID, Group: NoGroup, Size: 1000})
	e.Run()
	if len(sink.got) != 1 {
		t.Fatal("packet not delivered to late-added node")
	}
	if probe.Delivers != 5 { // 2 earlier + 3 hops now
		t.Fatalf("Delivers = %d, want 5", probe.Delivers)
	}
}

func TestFuncProbeSkipsNilFields(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 1}
	e, _, a, b, _ := lineNetwork(t, cfg)
	drops := 0
	a.LinkTo(b.ID).Attach(&FuncProbe{OnDrop: func(*Link, *Packet) { drops++ }})
	for i := 0; i < 5; i++ {
		a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000})
	}
	e.Run()
	if drops != 3 {
		t.Fatalf("drops = %d, want 3", drops)
	}
}

func TestPooledPacketRecycled(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	e, n, a, _, c := lineNetwork(t, cfg)
	sink := &collector{}
	c.AttachAgent(sink)

	// Sequential sends: each packet is fully delivered (and recycled)
	// before the next is created, so one allocation serves all of them.
	for i := 0; i < 50; i++ {
		p := n.NewPacket()
		p.Kind = Control
		p.Src = a.ID
		p.Dst = c.ID
		p.Group = NoGroup
		p.Size = 1000
		p.Seq = int64(i)
		a.SendUnicast(p)
		p.Release()
		e.Run()
	}
	if len(sink.got) != 50 {
		t.Fatalf("delivered %d, want 50", len(sink.got))
	}
	if got := n.PacketAllocs(); got != 1 {
		t.Fatalf("PacketAllocs = %d, want 1 (pool not recycling)", got)
	}
}

func TestPooledPacketSharedAcrossLinks(t *testing.T) {
	// One pooled packet offered to two links at once (what multicast
	// replication does): both deliveries must complete before the struct
	// is recycled.
	e := sim.NewEngine(1)
	n := New(e)
	a, b, c := n.AddNode("a"), n.AddNode("b"), n.AddNode("c")
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	n.Connect(a, b, cfg)
	n.Connect(a, c, cfg)

	p := n.NewPacket()
	p.Kind = Control
	p.Src = a.ID
	p.Dst = b.ID
	p.Group = NoGroup
	p.Size = 500
	a.LinkTo(b.ID).Send(p)
	a.LinkTo(c.ID).Send(p)
	p.Release()
	if n.PacketAllocs() != 1 {
		t.Fatalf("PacketAllocs = %d", n.PacketAllocs())
	}
	// Still referenced by both links: a new packet must not reuse it.
	q := n.NewPacket()
	if q == p {
		t.Fatal("in-flight packet handed out again")
	}
	q.Release()
	e.Run()
	// Both links done: now the struct is free again.
	r := n.NewPacket()
	if r != p && r != q {
		t.Fatal("fully-delivered packet not recycled")
	}
	r.Release()
}

func TestPooledPacketDropReleases(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 1}
	e, n, a, b, _ := lineNetwork(t, cfg)
	for i := 0; i < 5; i++ {
		p := n.NewPacket()
		p.Kind = Control
		p.Src = a.ID
		p.Dst = b.ID
		p.Group = NoGroup
		p.Size = 1000
		p.Seq = int64(i)
		a.SendUnicast(p)
		p.Release()
	}
	e.Run()
	// 2 delivered (wire + queue), 3 dropped; every struct must be back in
	// the pool, so steady-state allocation stays put.
	before := n.PacketAllocs()
	for i := 0; i < 5; i++ {
		p := n.NewPacket()
		p.Release()
	}
	if got := n.PacketAllocs(); got != before {
		t.Fatalf("PacketAllocs grew %d -> %d: dropped packets leaked", before, got)
	}
}

func TestPriorityDropReleasesQueuedVictim(t *testing.T) {
	// Priority dropping replaces a queued high-layer packet with the
	// arrival; the victim's queue reference must be released exactly once.
	e := sim.NewEngine(1)
	n := New(e)
	a, b := n.AddNode("a"), n.AddNode("b")
	n.Connect(a, b, LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 1, Policy: DropPriority})
	link := a.LinkTo(b.ID)

	var dropped []int
	link.Attach(&FuncProbe{OnDrop: func(_ *Link, p *Packet) { dropped = append(dropped, p.Layer) }})

	mk := func(layer int) *Packet {
		p := n.NewPacket()
		p.Kind = Data
		p.Src = a.ID
		p.Dst = NoNode
		p.Group = GroupID(0)
		p.Layer = layer
		p.Size = 1000
		return p
	}
	// First occupies the wire, second queues (layer 6), third (layer 1)
	// evicts the queued layer-6 victim.
	for _, layer := range []int{1, 6, 1} {
		p := mk(layer)
		link.Send(p)
		p.Release()
	}
	// The victim must already be recycled; drain the rest. b has no
	// multicast handler, so arrivals are simply discarded after release.
	e.Run()
	if len(dropped) != 1 || dropped[0] != 6 {
		t.Fatalf("dropped layers %v, want [6]", dropped)
	}
	before := n.PacketAllocs()
	mk(1).Release()
	if got := n.PacketAllocs(); got != before {
		t.Fatalf("PacketAllocs grew %d -> %d: victim leaked", before, got)
	}
	if st := link.Stats(); st.Dropped != 1 || st.Enqueued != 2 {
		t.Fatalf("stats = %+v, want Dropped 1, Enqueued 2", st)
	}
}
