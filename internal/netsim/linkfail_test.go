package netsim

import (
	"reflect"
	"testing"

	"toposense/internal/sim"
)

func TestSendOnDownLinkDropped(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	e, _, a, b, _ := lineNetwork(t, cfg)
	sink := &collector{}
	b.AttachAgent(sink)
	l := a.LinkTo(b.ID)
	l.SetDown()
	if !l.Down() {
		t.Fatal("link not down after SetDown")
	}
	// Offer a packet straight to the failed link (as cached multicast
	// forwarding state would): it must be dropped on arrival.
	drops := 0
	l.Attach(&FuncProbe{OnDrop: func(*Link, *Packet) { drops++ }})
	l.Send(&Packet{Kind: Data, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000})
	e.Run()
	if len(sink.got) != 0 {
		t.Fatalf("delivered %d packets over a down link", len(sink.got))
	}
	st := l.Stats()
	if st.Dropped != 1 || st.Enqueued != 0 || drops != 1 {
		t.Errorf("stats = %+v, probe drops = %d; want 1 drop, 0 enqueued", st, drops)
	}
}

func TestSetDownDiscardsCarriedTraffic(t *testing.T) {
	// 1000B at 8e5 bps = 10ms serialization, 50ms propagation. Send 5
	// back-to-back and fail the link at t=25ms: packets 0,1 are in flight
	// (serialized at 10/20ms), packet 2 mid-serialization, 3-4 queued.
	// Everything the link carries at the failure is lost; only deliveries
	// that already completed (none: first arrives at 60ms) survive.
	cfg := LinkConfig{Bandwidth: 8e5, Delay: 50 * sim.Millisecond}
	e, _, a, b, _ := lineNetwork(t, cfg)
	sink := &collector{}
	b.AttachAgent(sink)
	for i := 0; i < 5; i++ {
		a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000, Seq: int64(i)})
	}
	l := a.LinkTo(b.ID)
	e.Schedule(25*sim.Millisecond, func() { l.SetDown() })
	e.Run() // must drain cleanly: squelched deliveries, aborted txDone
	if len(sink.got) != 0 {
		t.Fatalf("delivered %d packets, want 0 (all discarded by failure)", len(sink.got))
	}
	st := l.Stats()
	if st.Dropped != 5 || st.Delivered != 0 {
		t.Errorf("Dropped = %d, Delivered = %d; want 5, 0", st.Dropped, st.Delivered)
	}
	if st.Enqueued != 5 {
		t.Errorf("Enqueued = %d, want 5 (all were accepted before the failure)", st.Enqueued)
	}
	if l.Busy() || l.QueueLen() != 0 {
		t.Errorf("link not idle after discard: busy=%v queue=%d", l.Busy(), l.QueueLen())
	}
}

func TestLinkRecoversAfterSetUp(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	e, _, a, b, _ := lineNetwork(t, cfg)
	sink := &collector{}
	b.AttachAgent(sink)
	l := a.LinkTo(b.ID)
	l.SetDown()
	l.SetUp()
	if l.Down() {
		t.Fatal("link still down after SetUp")
	}
	a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000})
	e.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets after repair, want 1", len(sink.got))
	}
}

// squareNetwork builds a - b - d and a - c - d: two equal-length paths.
func squareNetwork(t *testing.T) (*sim.Engine, *Network, [4]*Node) {
	t.Helper()
	e := sim.NewEngine(1)
	n := New(e)
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	d := n.AddNode("d")
	n.Connect(a, b, cfg)
	n.Connect(a, c, cfg)
	n.Connect(b, d, cfg)
	n.Connect(c, d, cfg)
	return e, n, [4]*Node{a, b, c, d}
}

func TestReroutesAroundFailedLink(t *testing.T) {
	e, n, nd := squareNetwork(t)
	a, b, c, d := nd[0], nd[1], nd[2], nd[3]
	if got := n.NextHop(a.ID, d.ID); got != b.ID {
		t.Fatalf("NextHop(a,d) = %d, want %d (BFS tie-break)", got, b.ID)
	}
	a.LinkTo(b.ID).SetDown()
	if got := n.NextHop(a.ID, d.ID); got != c.ID {
		t.Fatalf("NextHop(a,d) = %d after failure, want %d", got, c.ID)
	}
	// Traffic actually flows over the alternate path.
	sink := &collector{}
	d.AttachAgent(sink)
	a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: d.ID, Group: NoGroup, Size: 1000})
	e.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d, want 1 via reroute", len(sink.got))
	}
	if got := c.LinkTo(d.ID).Stats().Delivered; got != 1 {
		t.Errorf("alternate link delivered %d, want 1", got)
	}
	// Repair restores the original route.
	a.LinkTo(b.ID).SetUp()
	if got := n.NextHop(a.ID, d.ID); got != b.ID {
		t.Errorf("NextHop(a,d) = %d after repair, want %d", got, b.ID)
	}
}

func TestRouteChangeNotification(t *testing.T) {
	_, n, nd := squareNetwork(t)
	a, b, d := nd[0], nd[1], nd[3]
	var got []RouteChange
	n.OnRouteChange(func(changes []RouteChange) {
		for _, ch := range changes {
			cp := ch
			cp.Nodes = append([]NodeID(nil), ch.Nodes...)
			got = append(got, cp)
		}
	})
	a.LinkTo(b.ID).SetDown()
	// Only destinations routed through a->b can change: b itself and d.
	// Toward b both a and c re-home (c routed c->a->b); toward d only a.
	want := []RouteChange{
		{Dst: b.ID, Nodes: []NodeID{a.ID, nd[2].ID}},
		{Dst: d.ID, Nodes: []NodeID{a.ID}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("changes after SetDown = %+v, want %+v", got, want)
	}
	got = nil
	a.LinkTo(b.ID).SetUp()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("changes after SetUp = %+v, want %+v", got, want)
	}
	// Redundant transitions are no-ops: no notification, no route churn.
	got = nil
	a.LinkTo(b.ID).SetUp()
	if len(got) != 0 {
		t.Fatalf("SetUp on an up link notified: %+v", got)
	}
}

func TestFailureDisconnectsAndUnroutableCounted(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	e, n, a, b, c := lineNetwork(t, cfg)
	b.LinkTo(c.ID).SetDown()
	if got := n.NextHop(a.ID, c.ID); got != NoNode {
		t.Fatalf("NextHop(a,c) = %d, want NoNode while cut off", got)
	}
	a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: c.ID, Group: NoGroup, Size: 100})
	e.Run()
	if n.Unroutable != 1 {
		t.Errorf("Unroutable = %d, want 1", n.Unroutable)
	}
	b.LinkTo(c.ID).SetUp()
	if got := n.NextHop(a.ID, c.ID); got != b.ID {
		t.Errorf("NextHop(a,c) = %d after repair, want %d", got, b.ID)
	}
}

func TestReverseLink(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	cfg := LinkConfig{Bandwidth: 1e6, Delay: 0}
	ab, ba := n.Connect(a, b, cfg)
	if ab.Reverse() != ba || ba.Reverse() != ab {
		t.Error("Reverse does not pair a symmetric connection")
	}
	if asym := n.ConnectAsym(a, c, cfg); asym.Reverse() != nil {
		t.Error("Reverse of an asymmetric link should be nil")
	}
}
