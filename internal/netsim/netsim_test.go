package netsim

import (
	"testing"

	"toposense/internal/sim"
)

// lineNetwork builds a -- b -- c with the given per-link config.
func lineNetwork(t *testing.T, cfg LinkConfig) (*sim.Engine, *Network, *Node, *Node, *Node) {
	t.Helper()
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	n.Connect(a, b, cfg)
	n.Connect(b, c, cfg)
	return e, n, a, b, c
}

type collector struct {
	got []*Packet
}

func (c *collector) Recv(p *Packet) { c.got = append(c.got, p) }

func TestUnicastDelivery(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: 200 * sim.Millisecond}
	e, _, a, _, c := lineNetwork(t, cfg)
	sink := &collector{}
	c.AttachAgent(sink)

	p := &Packet{Kind: Control, Src: a.ID, Dst: c.ID, Group: NoGroup, Size: 1000, Sent: e.Now()}
	a.SendUnicast(p)
	e.Run()

	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(sink.got))
	}
	// Two hops: 2 * (8ms serialization + 200ms propagation) = 416ms.
	want := 2 * (8*sim.Millisecond + 200*sim.Millisecond)
	if e.Now() != want {
		t.Errorf("delivery time %v, want %v", e.Now(), want)
	}
}

func TestLocalUnicastDelivery(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	e, _, a, _, _ := lineNetwork(t, cfg)
	sink := &collector{}
	a.AttachAgent(sink)
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: a.ID, Group: NoGroup, Size: 100})
	e.Run()
	if len(sink.got) != 1 {
		t.Fatalf("local delivery failed")
	}
	if a.RecvUnicast != 1 {
		t.Errorf("RecvUnicast = %d", a.RecvUnicast)
	}
}

func TestSerializationDelayOrdering(t *testing.T) {
	// Two packets sent back-to-back share the link serially.
	cfg := LinkConfig{Bandwidth: 8e5, Delay: 0} // 1000B = 10ms serialization
	e, _, a, b, _ := lineNetwork(t, cfg)
	sink := &collector{}
	b.AttachAgent(sink)
	var arrivals []sim.Time
	b.AttachAgent(agentFunc(func(p *Packet) { arrivals = append(arrivals, e.Now()) }))

	for i := 0; i < 3; i++ {
		a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000, Seq: int64(i)})
	}
	e.Run()
	want := []sim.Time{10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, arrivals[i], want[i])
		}
	}
	// FIFO order preserved.
	for i, p := range sink.got {
		if p.Seq != int64(i) {
			t.Errorf("packet %d has seq %d", i, p.Seq)
		}
	}
}

type agentFunc func(*Packet)

func (f agentFunc) Recv(p *Packet) { f(p) }

func TestDropTailOverflow(t *testing.T) {
	// Queue limit 2: one in flight + 2 queued = 3 accepted, rest dropped.
	cfg := LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 2}
	e, _, a, b, _ := lineNetwork(t, cfg)
	sink := &collector{}
	b.AttachAgent(sink)

	for i := 0; i < 10; i++ {
		a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000, Seq: int64(i)})
	}
	e.Run()

	link := a.LinkTo(b.ID)
	st := link.Stats()
	if st.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", st.Dropped)
	}
	if st.Enqueued != 3 {
		t.Errorf("Enqueued = %d, want 3", st.Enqueued)
	}
	if len(sink.got) != 3 {
		t.Errorf("delivered %d, want 3", len(sink.got))
	}
	if got := st.DropRate(); got != 0.7 {
		t.Errorf("DropRate = %g, want 0.7", got)
	}
	if st.PeakQueue != 2 {
		t.Errorf("PeakQueue = %d, want 2", st.PeakQueue)
	}
}

func TestDropObserver(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 1}
	e, _, a, b, _ := lineNetwork(t, cfg)
	var dropped []int64 // copy Seq, not the pointer: pooled packets recycle
	a.LinkTo(b.ID).Attach(&FuncProbe{OnDrop: func(_ *Link, p *Packet) { dropped = append(dropped, p.Seq) }})
	for i := 0; i < 5; i++ {
		a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000, Seq: int64(i)})
	}
	e.Run()
	if len(dropped) != 3 {
		t.Fatalf("observed %d drops, want 3", len(dropped))
	}
	// The dropped packets are the later ones (drop-tail).
	for i, seq := range dropped {
		if seq != int64(i+2) {
			t.Errorf("dropped[%d].Seq = %d, want %d", i, seq, i+2)
		}
	}
}

func TestLinkStatsReset(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: 0}
	e, _, a, b, _ := lineNetwork(t, cfg)
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 500})
	e.Run()
	l := a.LinkTo(b.ID)
	if l.Stats().TxBytes != 500 {
		t.Fatalf("TxBytes = %d", l.Stats().TxBytes)
	}
	l.ResetStats()
	if l.Stats() != (LinkStats{}) {
		t.Fatalf("stats not reset: %+v", l.Stats())
	}
}

func TestUnroutableCounted(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b") // isolated
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 100})
	e.Run()
	if n.Unroutable != 1 {
		t.Fatalf("Unroutable = %d, want 1", n.Unroutable)
	}
}

func TestNextHopRouting(t *testing.T) {
	// Star: hub h with leaves l0..l3. Every leaf routes via h.
	e := sim.NewEngine(1)
	n := New(e)
	h := n.AddNode("hub")
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	var leaves []*Node
	for i := 0; i < 4; i++ {
		l := n.AddNode("leaf")
		n.Connect(h, l, cfg)
		leaves = append(leaves, l)
	}
	if got := n.NextHop(leaves[0].ID, leaves[3].ID); got != h.ID {
		t.Errorf("NextHop(l0,l3) = %d, want hub %d", got, h.ID)
	}
	if got := n.NextHop(h.ID, leaves[2].ID); got != leaves[2].ID {
		t.Errorf("NextHop(hub,l2) = %d", got)
	}
	if got := n.NextHop(h.ID, h.ID); got != h.ID {
		t.Errorf("NextHop(h,h) = %d", got)
	}
}

func TestRoutingPicksShortestPath(t *testing.T) {
	// a-b-c-d plus shortcut a-d: route a->d must use the shortcut.
	e := sim.NewEngine(1)
	n := New(e)
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	d := n.AddNode("d")
	n.Connect(a, b, cfg)
	n.Connect(b, c, cfg)
	n.Connect(c, d, cfg)
	n.Connect(a, d, cfg)
	if got := n.NextHop(a.ID, d.ID); got != d.ID {
		t.Errorf("NextHop(a,d) = %d, want %d (direct)", got, d.ID)
	}
	if hops := n.PathHops(a.ID, d.ID); hops != 1 {
		t.Errorf("PathHops(a,d) = %d, want 1", hops)
	}
}

func TestPathDelayAndHops(t *testing.T) {
	cfg := LinkConfig{Bandwidth: 1e6, Delay: 200 * sim.Millisecond}
	_, n, a, _, c := lineNetwork(t, cfg)
	if got := n.PathDelay(a.ID, c.ID); got != 400*sim.Millisecond {
		t.Errorf("PathDelay = %v, want 400ms", got)
	}
	if got := n.PathHops(a.ID, c.ID); got != 2 {
		t.Errorf("PathHops = %d, want 2", got)
	}
	if got := n.PathDelay(a.ID, a.ID); got != 0 {
		t.Errorf("PathDelay self = %v", got)
	}
}

func TestPathDelayUnreachable(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	if got := n.PathDelay(a.ID, b.ID); got != -1 {
		t.Errorf("PathDelay = %v, want -1", got)
	}
	if got := n.PathHops(a.ID, b.ID); got != -1 {
		t.Errorf("PathHops = %d, want -1", got)
	}
}

func TestRoutesInvalidatedByTopologyChange(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	a := n.AddNode("a")
	b := n.AddNode("b")
	if n.NextHop(a.ID, b.ID) != NoNode {
		t.Fatal("unexpected route before connect")
	}
	n.Connect(a, b, cfg)
	if n.NextHop(a.ID, b.ID) != b.ID {
		t.Fatal("route not recomputed after connect")
	}
}

func TestDuplicateLinkPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	cfg := LinkConfig{Bandwidth: 1e6, Delay: 0}
	n.Connect(a, b, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate link")
		}
	}()
	n.Connect(a, b, cfg)
}

func TestInvalidLinkConfigPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	for _, cfg := range []LinkConfig{{Bandwidth: 0}, {Bandwidth: -5}, {Bandwidth: 1, Delay: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for cfg %+v", cfg)
				}
			}()
			n.ConnectAsym(a, b, cfg)
		}()
	}
}

func TestQueueLimitDefault(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.ConnectAsym(a, b, LinkConfig{Bandwidth: 1e6, Delay: 0})
	if l.QueueLimit != DefaultQueueLimit {
		t.Errorf("QueueLimit = %d, want %d", l.QueueLimit, DefaultQueueLimit)
	}
}

func TestSendUnicastRejectsMulticast(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.SendUnicast(&Packet{Group: GroupID(3)})
}

func TestPacketString(t *testing.T) {
	u := &Packet{Kind: Control, Src: 1, Dst: 2, Group: NoGroup, Size: 64}
	if u.Multicast() {
		t.Error("unicast packet reports Multicast")
	}
	m := &Packet{Kind: Data, Group: 4, Session: 1, Layer: 2, Seq: 9, Size: 1000}
	if !m.Multicast() {
		t.Error("multicast packet reports unicast")
	}
	if u.String() == "" || m.String() == "" {
		t.Error("empty String()")
	}
	if Data.String() != "data" || Control.String() != "control" || PacketKind(9).String() == "" {
		t.Error("PacketKind.String broken")
	}
}

func TestNodeAccessors(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	cfg := LinkConfig{Bandwidth: 1e6, Delay: 0}
	n.Connect(a, c, cfg)
	n.Connect(a, b, cfg)
	nbs := a.Neighbors()
	if len(nbs) != 2 || nbs[0] != b.ID || nbs[1] != c.ID {
		t.Errorf("Neighbors = %v, want sorted [b c]", nbs)
	}
	if len(a.Links()) != 2 {
		t.Errorf("Links = %d", len(a.Links()))
	}
	if n.NumNodes() != 3 || len(n.Nodes()) != 3 {
		t.Errorf("node count mismatch")
	}
	if n.Node(a.ID) != a {
		t.Errorf("Node lookup broken")
	}
	if a.String() == "" {
		t.Error("empty node String")
	}
	if a.LinkTo(b.ID).String() == "" {
		t.Error("empty link String")
	}
}

func TestNodeOutOfRangePanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Node(0)
}

func TestLinksEnumeration(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	cfg := LinkConfig{Bandwidth: 1e6, Delay: 0}
	n.Connect(a, b, cfg)
	n.ConnectAsym(b, c, cfg)
	if got := len(n.Links()); got != 3 {
		t.Errorf("Links = %d, want 3", got)
	}
}

func TestCongestionCollapseBytesConserved(t *testing.T) {
	// Offered load 2x capacity: delivered + dropped == offered.
	cfg := LinkConfig{Bandwidth: 1e5, Delay: 10 * sim.Millisecond, QueueLimit: 5}
	e, _, a, b, _ := lineNetwork(t, cfg)
	sink := &collector{}
	b.AttachAgent(sink)
	const offered = 200
	tick := 40 * sim.Millisecond // 1000B at 1e5bps = 80ms serialization: 2x overload
	for i := 0; i < offered; i++ {
		i := i
		e.Schedule(sim.Time(i)*tick, func() {
			a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 1000, Seq: int64(i)})
		})
	}
	e.Run()
	st := a.LinkTo(b.ID).Stats()
	if st.Enqueued+st.Dropped != offered {
		t.Errorf("enqueued %d + dropped %d != offered %d", st.Enqueued, st.Dropped, offered)
	}
	if st.Delivered != st.Enqueued {
		t.Errorf("delivered %d != enqueued %d after drain", st.Delivered, st.Enqueued)
	}
	if int64(len(sink.got)) != st.Delivered {
		t.Errorf("sink got %d, link delivered %d", len(sink.got), st.Delivered)
	}
	if st.Dropped == 0 {
		t.Error("expected drops under 2x overload")
	}
	// Delivered packets keep FIFO order.
	last := int64(-1)
	for _, p := range sink.got {
		if p.Seq <= last {
			t.Fatalf("reordered delivery: %d after %d", p.Seq, last)
		}
		last = p.Seq
	}
}

func TestDropPriorityProtectsBaseLayers(t *testing.T) {
	// Saturate a slow link with mixed-layer traffic under both policies:
	// priority dropping must deliver (nearly) all base-layer packets while
	// drop-tail loses them proportionally.
	run := func(policy DropPolicy) (base, high int) {
		e := sim.NewEngine(3)
		n := New(e)
		a := n.AddNode("a")
		b := n.AddNode("b")
		l := n.ConnectAsym(a, b, LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 5}) // 1000B = 10ms
		l.Policy = policy
		counts := map[int]int{}
		b.AttachAgent(agentFunc(func(p *Packet) { counts[p.Layer]++ }))
		// Offered 2x capacity: alternate layer-1 and layer-6 packets every
		// 10 ms (each stream alone fits; together they overload).
		for i := 0; i < 200; i++ {
			i := i
			layer := 1
			if i%2 == 1 {
				layer = 6
			}
			e.Schedule(sim.Time(i)*5*sim.Millisecond, func() {
				a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: b.ID, Group: NoGroup,
					Layer: layer, Seq: int64(i), Size: 1000})
			})
		}
		e.Run()
		return counts[1], counts[6]
	}
	dtBase, dtHigh := run(DropTail)
	prBase, prHigh := run(DropPriority)
	if prBase <= dtBase {
		t.Errorf("priority dropping did not protect the base layer: %d vs %d under drop-tail", prBase, dtBase)
	}
	if prBase < 95 {
		t.Errorf("priority dropping lost base packets: %d/100", prBase)
	}
	if prHigh >= dtHigh {
		t.Errorf("priority dropping should sacrifice the high layer: %d vs %d", prHigh, dtHigh)
	}
}

func TestDropPriorityCountersConsistent(t *testing.T) {
	e := sim.NewEngine(3)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.ConnectAsym(a, b, LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 3})
	l.Policy = DropPriority
	delivered := 0
	b.AttachAgent(agentFunc(func(p *Packet) { delivered++ }))
	const offered = 50
	for i := 0; i < offered; i++ {
		i := i
		e.Schedule(sim.Time(i)*3*sim.Millisecond, func() {
			a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: b.ID, Group: NoGroup,
				Layer: i%6 + 1, Seq: int64(i), Size: 1000})
		})
	}
	e.Run()
	st := l.Stats()
	if st.Enqueued+st.Dropped != offered {
		t.Errorf("enqueued %d + dropped %d != offered %d", st.Enqueued, st.Dropped, offered)
	}
	if int64(delivered) != st.Delivered || st.Delivered != st.Enqueued {
		t.Errorf("delivered %d, stats delivered %d, enqueued %d", delivered, st.Delivered, st.Enqueued)
	}
}

func TestDropPriorityProtectsControl(t *testing.T) {
	// Control packets (layer 0) survive a queue full of media.
	e := sim.NewEngine(3)
	n := New(e)
	a := n.AddNode("a")
	b := n.AddNode("b")
	l := n.ConnectAsym(a, b, LinkConfig{Bandwidth: 8e5, Delay: 0, QueueLimit: 2})
	l.Policy = DropPriority
	var gotControl bool
	b.AttachAgent(agentFunc(func(p *Packet) {
		if p.Kind == Control {
			gotControl = true
		}
	}))
	// Fill the queue with layer-5 media, then send one control packet.
	for i := 0; i < 5; i++ {
		a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: b.ID, Group: NoGroup, Layer: 5, Size: 1000})
	}
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 64})
	e.Run()
	if !gotControl {
		t.Error("control packet lost despite priority dropping")
	}
}
