package netsim

import (
	"fmt"
	"sort"
)

// Tree-mode routing. The all-pairs nextHop table costs O(N²) memory — at
// 10^5 nodes that is 80 GB of NodeIDs, far past any budget — but the
// large-topology generator families (star, k-ary tree, linear chains) are
// trees, where shortest paths are unique and a next hop is answerable from
// O(N) state: parent pointers plus an Euler-tour (tin/tout) interval per
// node. NextHop(src, dst) is then

//	dst in src's subtree → the child of src whose interval contains dst
//	otherwise            → parent[src]

// with the child found by binary search over src's tin-ordered children.
// Networks at or above treeRouteMinNodes nodes try this mode first and fall
// back to the dense tables when the graph is not a symmetric forest.
// Fault injection (Link.SetDown/SetUp) needs column diffs over dense
// tables, so it forces dense mode — see ensureDenseRoutes.

// treeRouteMinNodes is the node count at which ensureRoutes prefers tree
// routing over the dense all-pairs table. Every canonical paper topology is
// far below it, so golden figures keep routing through the dense tables.
// Variable, not constant, so white-box tests can lower it.
var treeRouteMinNodes = 2048

// maxDenseNodes bounds the dense all-pairs table: above it, the table
// would exceed ~8 GB and materializing one is a configuration error.
// Fault injection requires dense tables, so link failures in topologies
// past this size are rejected (panic) rather than thrashing the host.
var maxDenseNodes = 1 << 15

// treeRoutes answers next-hop queries over a spanning forest in O(log k)
// for k = the fan-out of src, with O(N) total memory.
type treeRoutes struct {
	parent []NodeID // parent in the BFS forest; NoNode at roots
	comp   []int32  // connected-component index
	tin    []int32  // Euler-tour entry time; subtree(v) = [tin[v], tout[v]]
	tout   []int32
	// Children in CSR form, tin-ordered: kids[kidHead[v]:kidHead[v+1]].
	kidHead []int32
	kids    []NodeID
}

// buildTreeRoutes returns tree-mode routing state, or nil if the live
// graph is not a symmetric forest (an asymmetric link, a down link, or a
// cycle) — callers then fall back to dense tables.
func (n *Network) buildTreeRoutes() *treeRoutes {
	num := len(n.nodes)
	// Count directed edges, requiring every link up and symmetric. Map
	// iteration order does not matter: we only count and compare.
	directed := 0
	for _, node := range n.nodes {
		for to, l := range node.links {
			if l.down {
				return nil
			}
			back, ok := n.nodes[to].links[node.ID]
			if !ok || back.down {
				return nil
			}
			directed++
		}
	}
	t := &treeRoutes{
		parent:  make([]NodeID, num),
		comp:    make([]int32, num),
		tin:     make([]int32, num),
		tout:    make([]int32, num),
		kidHead: make([]int32, num+1),
	}
	for i := range t.comp {
		t.parent[i] = NoNode
		t.comp[i] = -1
	}
	// BFS forest from ascending roots; Neighbors() is ascending, so parent
	// assignment matches the dense BFS tie-break (lowest ID wins).
	comps := int32(0)
	queue := make([]NodeID, 0, num)
	for root := 0; root < num; root++ {
		if t.comp[root] != -1 {
			continue
		}
		t.comp[root] = comps
		queue = append(queue[:0], NodeID(root))
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			for _, nb := range n.nodes[cur].Neighbors() {
				if t.comp[nb] != -1 {
					continue
				}
				t.comp[nb] = comps
				t.parent[nb] = cur
				queue = append(queue, nb)
			}
		}
		comps++
	}
	// A forest of c components over e undirected edges has e = num - c;
	// anything more means a cycle, so shortest paths are no longer unique
	// and the dense tables must arbitrate.
	if directed != 2*(num-int(comps)) {
		return nil
	}
	// Children in CSR form by two-pass counting over parent[]. Filling in
	// ascending v order keeps each node's kids ascending by ID — and BFS
	// from ascending roots discovers children in ID order too, so tin is
	// also ascending within kids: one array serves both searches.
	for v := 0; v < num; v++ {
		if p := t.parent[v]; p != NoNode {
			t.kidHead[p+1]++
		}
	}
	for i := 1; i <= num; i++ {
		t.kidHead[i] += t.kidHead[i-1]
	}
	t.kids = make([]NodeID, t.kidHead[num])
	next := make([]int32, num)
	copy(next, t.kidHead[:num])
	for v := 0; v < num; v++ {
		if p := t.parent[v]; p != NoNode {
			t.kids[next[p]] = NodeID(v)
			next[p]++
		}
	}
	// Iterative DFS over the CSR assigns tin at first visit; tout[v] is the
	// max tin in v's subtree, so the subtree test is a closed interval.
	timer := int32(0)
	type frame struct {
		v   NodeID
		kid int32
	}
	stack := make([]frame, 0, 64)
	for root := 0; root < num; root++ {
		if t.parent[root] != NoNode {
			continue
		}
		t.tin[root] = timer
		timer++
		stack = append(stack[:0], frame{NodeID(root), t.kidHead[root]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.kid < t.kidHead[f.v+1] {
				child := t.kids[f.kid]
				f.kid++
				t.tin[child] = timer
				timer++
				stack = append(stack, frame{child, t.kidHead[child]})
				continue
			}
			t.tout[f.v] = timer - 1
			stack = stack[:len(stack)-1]
		}
	}
	return t
}

// nextHop answers one query against the forest.
func (t *treeRoutes) nextHop(src, dst NodeID) NodeID {
	if src == dst {
		return dst
	}
	if t.comp[src] != t.comp[dst] {
		return NoNode
	}
	if !(t.tin[src] < t.tin[dst] && t.tin[dst] <= t.tout[src]) {
		// dst is outside src's subtree: the unique path starts upward.
		return t.parent[src]
	}
	// dst is below src: find the child whose Euler interval contains it —
	// the last child with tin <= tin[dst], since intervals partition the
	// subtree in tin order.
	lo, hi := t.kidHead[src], t.kidHead[src+1]
	target := t.tin[dst]
	i := int32(sort.Search(int(hi-lo), func(i int) bool {
		return t.tin[t.kids[lo+int32(i)]] > target
	}))
	return t.kids[lo+i-1]
}

// ensureDenseRoutes forces the dense all-pairs tables, permanently for
// this network: fault injection diffs whole columns, which tree mode
// cannot answer. Called by Link.SetDown/SetUp before flipping state.
func (n *Network) ensureDenseRoutes() {
	n.denseOnly = true
	n.tree = nil
	if n.nextHop != nil {
		return
	}
	if len(n.nodes) > maxDenseNodes {
		panic(fmt.Sprintf(
			"netsim: link fault injection needs dense routing tables, infeasible at %d nodes (max %d); use a smaller topology for failure experiments",
			len(n.nodes), maxDenseNodes))
	}
	n.computeRoutes()
}
