package netsim

import (
	"testing"

	"toposense/internal/sim"
)

// benchChain builds a linear chain of n+1 nodes and returns the endpoints.
// Links are fast enough that serialization, not propagation, dominates, and
// queues are deep enough that nothing drops — every injected packet crosses
// every hop.
func benchChain(e *sim.Engine, hops, queue int) (*Network, *Node, *Node) {
	net := New(e)
	prev := net.AddNode("n0")
	first := prev
	for i := 1; i <= hops; i++ {
		cur := net.AddNode("n")
		net.Connect(prev, cur, LinkConfig{
			Bandwidth:  1e9,
			Delay:      sim.Millisecond,
			QueueLimit: queue,
		})
		prev = cur
	}
	return net, first, prev
}

// benchInjectPaced drives n packets through the chain from inside the
// simulation, one new packet per serialization slot (8 µs for 1000 B at
// 1 Gbps), so the first link never queues more than a handful and — in the
// pooled variant — delivered packets are recycled while later ones are still
// being injected. mk builds (and sends) one packet.
func benchInjectPaced(e *sim.Engine, n int, mk func(i int)) {
	const gap = 8 * sim.Microsecond
	sent := 0
	var inject func()
	inject = func() {
		mk(sent)
		sent++
		if sent < n {
			e.Schedule(gap, inject)
		}
	}
	e.Schedule(0, inject)
	e.Run()
}

// BenchmarkChainForward pushes packets through an 8-hop chain and reports
// per-packet cost of the full forwarding plane: queueing, serialization,
// propagation and per-hop delivery. This is the packet-plane counterpart of
// the engine's schedule/fire benchmark. Packets are heap literals, so the
// one allocation per op is the packet itself.
func BenchmarkChainForward(b *testing.B) {
	const hops = 8
	b.ReportAllocs()
	e := sim.NewEngine(1)
	_, src, dst := benchChain(e, hops, 64)
	b.ResetTimer()
	benchInjectPaced(e, b.N, func(i int) {
		src.SendUnicast(&Packet{Kind: Control, Src: src.ID, Dst: dst.ID, Group: NoGroup, Size: 1000})
	})
	b.StopTimer()
	if got := dst.RecvUnicast; got != int64(b.N) {
		b.Fatalf("delivered %d packets, want %d", got, b.N)
	}
	b.ReportMetric(float64(b.N*hops)/b.Elapsed().Seconds(), "hops/s")
}

// BenchmarkChainForwardPooled is BenchmarkChainForward with packets drawn
// from the network's pool instead of allocated per send. Once the pool
// covers the ~1000 packets in flight across the chain's propagation delay,
// the steady state forwards with zero allocations per packet.
func BenchmarkChainForwardPooled(b *testing.B) {
	const hops = 8
	b.ReportAllocs()
	e := sim.NewEngine(1)
	net, src, dst := benchChain(e, hops, 64)
	b.ResetTimer()
	benchInjectPaced(e, b.N, func(i int) {
		p := net.NewPacket()
		p.Kind = Control
		p.Src = src.ID
		p.Dst = dst.ID
		p.Group = NoGroup
		p.Size = 1000
		src.SendUnicast(p)
		p.Release()
	})
	b.StopTimer()
	if got := dst.RecvUnicast; got != int64(b.N) {
		b.Fatalf("delivered %d packets, want %d", got, b.N)
	}
	b.ReportMetric(float64(b.N*hops)/b.Elapsed().Seconds(), "hops/s")
}
