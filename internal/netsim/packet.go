// Package netsim models a packet-switched network on top of the sim engine:
// nodes, unidirectional links with finite bandwidth, propagation delay and
// drop-tail FIFO queues, and hop-by-hop unicast forwarding over shortest
// paths. Multicast forwarding is layered on by package mcast through the
// Node's MulticastHandler hook.
//
// The model matches what the paper's ns simulations relied on: packets
// experience serialization delay (size/bandwidth), propagation delay
// (200 ms per link in the experiments) and drop-tail loss when a queue
// overflows. Nothing else — no link errors, no reordering within a link.
package netsim

import (
	"fmt"
	"sync/atomic"

	"toposense/internal/sim"
)

// NodeID identifies a node within one Network. IDs are dense, starting at 0,
// in creation order; they double as indices into routing tables.
type NodeID int

// NoNode is the zero-value-adjacent sentinel for "no node".
const NoNode NodeID = -1

// GroupID identifies a multicast group (one session layer maps to one group).
// Negative means "not a multicast packet".
type GroupID int

// NoGroup marks a unicast packet.
const NoGroup GroupID = -1

// PacketKind distinguishes media data from control traffic. Both kinds share
// links and queues — the paper's controller traffic competes with data and
// can be lost to congestion.
type PacketKind uint8

const (
	// Data is layered media traffic addressed to a multicast group.
	Data PacketKind = iota
	// Control is unicast control traffic: receiver reports, controller
	// suggestions, registration messages.
	Control
)

func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is a simulated packet. Packets are immutable once sent; forwarding
// shares the same *Packet across all tree branches, so handlers must not
// mutate one after sending.
//
// Packets come in two flavours. A literal (&Packet{...}) is garbage-collected
// as usual — the reference-counting methods are no-ops on it. A pooled packet
// (Network.NewPacket) is recycled through the network's free list: every link
// that accepts it takes a reference, the originator holds one until its Send
// call returns, and when the last reference drops the struct goes back to the
// pool. Handlers and probes must therefore never retain a *Packet beyond the
// callback that delivered it — copy the fields instead.
type Packet struct {
	Kind    PacketKind
	Src     NodeID  // originating node
	Dst     NodeID  // unicast destination; NoNode for multicast packets
	Group   GroupID // multicast group; NoGroup for unicast packets
	Session int     // session the packet belongs to (media and reports)
	Layer   int     // layer index (1-based) for media packets
	Seq     int64   // per-(session,layer) sequence number for loss detection
	Size    int     // bytes, including headers
	Sent    sim.Time
	Payload any // typed control payloads; nil for media

	pool *Network // owning pool; nil for literal packets
	refs int32    // outstanding references (pooled packets only)
}

// Multicast reports whether the packet is addressed to a group.
func (p *Packet) Multicast() bool { return p.Group != NoGroup }

// Pooled reports whether the packet came from a network's packet pool.
func (p *Packet) Pooled() bool { return p.pool != nil }

// ref takes one reference on a pooled packet; a no-op for literals. On a
// partitioned network a multicast packet is referenced concurrently by
// links in different shards, so the count moves atomically there.
func (p *Packet) ref() {
	if p.pool == nil {
		return
	}
	if p.pool.parallel {
		atomic.AddInt32(&p.refs, 1)
		return
	}
	p.refs++
}

// unref drops one reference; the last drop returns the packet to its pool.
// A no-op for literals.
func (p *Packet) unref() {
	if p.pool == nil {
		return
	}
	if p.pool.parallel {
		switch r := atomic.AddInt32(&p.refs, -1); {
		case r > 0:
			return
		case r < 0:
			panic(fmt.Sprintf("netsim: packet %v released below zero references", p))
		}
		// r == 0: this was the last holder; the struct is exclusively ours.
		pool := p.pool
		*p = Packet{}
		pool.poolMu.Lock()
		pool.pktFree = append(pool.pktFree, p)
		pool.poolMu.Unlock()
		return
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	if p.refs < 0 {
		panic(fmt.Sprintf("netsim: packet %v released below zero references", p))
	}
	pool := p.pool
	*p = Packet{} // clear fields (notably Payload) so nothing leaks via the pool
	pool.pktFree = append(pool.pktFree, p)
}

// Release drops the originator's reference on a pooled packet. The producer
// that called Network.NewPacket must call Release exactly once, after the
// Send/SendUnicast/SendMulticastLocal call returns. Safe (and a no-op) on
// literal packets, so producers can treat both flavours uniformly.
func (p *Packet) Release() { p.unref() }

func (p *Packet) String() string {
	if p.Multicast() {
		return fmt.Sprintf("%s s%d/l%d seq%d grp%d %dB", p.Kind, p.Session, p.Layer, p.Seq, p.Group, p.Size)
	}
	return fmt.Sprintf("%s %d->%d %dB", p.Kind, p.Src, p.Dst, p.Size)
}
