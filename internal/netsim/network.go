package netsim

import (
	"fmt"
	"sync"

	"toposense/internal/sim"
)

// Network owns the nodes and links of one simulated topology and the routing
// tables between them. It is bound to a single scheduler — the plain
// sim.Engine, or a sim.ShardedEngine once Partition has mapped each node to
// a shard.
type Network struct {
	engine sim.Scheduler
	nodes  []*Node

	// Sharded-run state (nil / false on single-threaded networks): the
	// engine the network was partitioned onto, the per-node domain labels,
	// and each node's shard scheduler. See Partition.
	se     *sim.ShardedEngine
	doms   []int
	scheds []sim.Scheduler
	// parallel switches the packet pool and the drop counters to their
	// synchronized variants. Single-threaded networks never pay for it.
	parallel bool
	poolMu   sync.Mutex

	// nextHop[src][dst] is the neighbor of src on the shortest path to dst,
	// or NoNode. Built lazily and invalidated on topology changes.
	nextHop [][]NodeID

	// tree is O(N) tree-mode routing, used instead of the O(N²) nextHop
	// table when the network is large and the live graph is a symmetric
	// forest (see routes_tree.go). denseOnly pins the network to the dense
	// tables once fault injection has been used.
	tree      *treeRoutes
	denseOnly bool

	// Unroutable counts unicast packets dropped for lack of a route.
	Unroutable int64

	// OnAddNode, if set, observes every node created after it is
	// installed. The multicast layer uses it to equip new nodes with a
	// forwarding handler automatically.
	OnAddNode func(*Node)

	// routeListeners observe routing-table updates caused by link state
	// changes (Link.SetDown / SetUp).
	routeListeners []func([]RouteChange)

	// probes observe packet events on every link of the network.
	probes []Probe

	// pktFree is the packet free list backing NewPacket; single-threaded
	// like everything else bound to the engine, so no sync.
	pktFree   []*Packet
	pktAllocs uint64
}

// New creates an empty network on the given scheduler. Passing the plain
// *sim.Engine keeps the fully deterministic single-threaded semantics;
// passing a *sim.ShardedEngine and later calling Partition runs the model
// as a conservative parallel simulation.
func New(engine sim.Scheduler) *Network {
	return &Network{engine: engine}
}

// Engine returns the scheduler the network was built on. On a partitioned
// network this is the engine handle, not any particular shard: model code
// that runs inside node events must use SchedulerFor/SchedulerBetween so
// its clock and queue are the owning shard's.
func (n *Network) Engine() sim.Scheduler { return n.engine }

// Partitioned reports whether the network executes on more than one shard.
func (n *Network) Partitioned() bool { return n.parallel }

// SchedulerFor returns the scheduler that owns id's events: the node's
// shard on a partitioned network, the network's engine otherwise.
func (n *Network) SchedulerFor(id NodeID) sim.Scheduler {
	if n.scheds == nil {
		return n.engine
	}
	return n.scheds[id]
}

// SchedulerBetween returns the scheduler that code running in from's
// context must use to schedule an event that will execute in to's context
// (protocol continuations traveling a link, like multicast grafts). On a
// partitioned network with from and to in different shards this is a
// cross-shard channel: the delay must be at least the lookahead — true by
// construction for anything riding a boundary link — and the schedule is
// not cancellable.
func (n *Network) SchedulerBetween(from, to NodeID) sim.Scheduler {
	if n.se == nil {
		return n.engine
	}
	return n.se.Cross(n.doms[from], n.doms[to])
}

// CrossPartition reports whether a and b live in different shards — i.e.
// whether an event scheduled between them executes in a different shard's
// context than the caller's, so it must not touch the caller's shard state.
func (n *Network) CrossPartition(a, b NodeID) bool {
	return n.parallel && n.doms[a] != n.doms[b]
}

// Partition maps each node onto a shard of se according to domains (one
// dense label per node, in node-ID order) and shapes se to match: the
// lookahead becomes the minimum propagation delay over partition-boundary
// links, routing tables are materialized eagerly (lazy builds would race),
// every link is bound to its endpoints' shard schedulers, and the packet
// pool switches to its synchronized variant. With zero or one distinct
// labels the engine stays degenerate — byte-identical to the plain Engine —
// and the network stays on the single-threaded fast paths.
//
// The topology must be complete: adding nodes or links after Partition
// panics. Fault injection is not supported on a partitioned network.
func (n *Network) Partition(se *sim.ShardedEngine, domains []int) {
	if n.se != nil {
		panic("netsim: Partition called twice")
	}
	if domains != nil && len(domains) != len(n.nodes) {
		panic(fmt.Sprintf("netsim: Partition with %d domain labels for %d nodes", len(domains), len(n.nodes)))
	}
	p := 1
	for _, d := range domains {
		if d < 0 {
			panic("netsim: negative domain label")
		}
		if d+1 > p {
			p = d + 1
		}
	}
	if p <= 1 {
		return // degenerate: single-threaded semantics on se
	}
	lookahead := sim.Time(-1)
	for _, node := range n.nodes {
		for _, l := range node.Links() {
			if domains[l.From] == domains[l.To] {
				continue
			}
			if l.Delay <= 0 {
				panic(fmt.Sprintf("netsim: partition-boundary link %v has zero delay", l))
			}
			if lookahead < 0 || l.Delay < lookahead {
				lookahead = l.Delay
			}
		}
	}
	if lookahead <= 0 {
		panic("netsim: partitioning has no boundary links between distinct domains")
	}
	se.SetPartitions(p, lookahead)
	n.se = se
	n.doms = domains
	n.parallel = true
	n.scheds = make([]sim.Scheduler, len(n.nodes))
	for i := range n.nodes {
		n.scheds[i] = se.Shard(domains[i])
	}
	n.ensureRoutes()
	for _, node := range n.nodes {
		for _, l := range node.Links() {
			l.sched = n.scheds[l.From]
			l.recvSched = n.scheds[l.To]
			if domains[l.From] != domains[l.To] {
				l.dsched = se.Cross(domains[l.From], domains[l.To])
				l.mu = &sync.Mutex{}
			} else {
				l.dsched = n.scheds[l.To]
			}
		}
	}
}

// AttachProbe registers a probe observing packet events on every link of
// the network, including links created later.
func (n *Network) AttachProbe(p Probe) { n.probes = append(n.probes, p) }

// NewPacket takes a zeroed packet from the network's pool (or allocates one
// the first time through), holding one reference for the caller. Fill in
// the fields, hand it to Send/SendUnicast/SendMulticastLocal, then call
// Release; the struct is recycled once every link that accepted it has
// delivered or dropped it.
func (n *Network) NewPacket() *Packet {
	if n.parallel {
		n.poolMu.Lock()
		defer n.poolMu.Unlock()
	}
	if k := len(n.pktFree); k > 0 {
		p := n.pktFree[k-1]
		n.pktFree[k-1] = nil
		n.pktFree = n.pktFree[:k-1]
		p.pool = n
		p.refs = 1
		return p
	}
	n.pktAllocs++
	return &Packet{pool: n, refs: 1}
}

// PacketAllocs returns how many packet structs the pool has ever allocated;
// in steady state this stops growing.
func (n *Network) PacketAllocs() uint64 { return n.pktAllocs }

// AddNode creates a node with a human-readable name and returns it.
func (n *Network) AddNode(name string) *Node {
	if n.se != nil {
		panic("netsim: AddNode on a partitioned network")
	}
	node := &Node{
		ID:    NodeID(len(n.nodes)),
		Name:  name,
		net:   n,
		links: make(map[NodeID]*Link),
	}
	n.nodes = append(n.nodes, node)
	n.nextHop, n.tree = nil, nil // invalidate routes
	if n.OnAddNode != nil {
		n.OnAddNode(node)
	}
	return node
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: no node %d", id))
	}
	return n.nodes[id]
}

// Nodes returns all nodes in ID order.
func (n *Network) Nodes() []*Node { return n.nodes }

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// LinkConfig carries the parameters of one direction of a connection.
type LinkConfig struct {
	Bandwidth  float64  // bits per second; must be > 0
	Delay      sim.Time // propagation delay
	QueueLimit int      // drop-tail capacity in packets; 0 means DefaultQueueLimit
	Policy     DropPolicy
}

// Connect creates a symmetric pair of links between a and b with identical
// parameters in both directions and returns them (a->b, b->a).
func (n *Network) Connect(a, b *Node, cfg LinkConfig) (*Link, *Link) {
	return n.addLink(a, b, cfg), n.addLink(b, a, cfg)
}

// ConnectAsym creates one unidirectional link from a to b.
func (n *Network) ConnectAsym(a, b *Node, cfg LinkConfig) *Link {
	return n.addLink(a, b, cfg)
}

func (n *Network) addLink(from, to *Node, cfg LinkConfig) *Link {
	if n.se != nil {
		panic("netsim: Connect on a partitioned network")
	}
	if cfg.Bandwidth <= 0 {
		panic("netsim: link bandwidth must be positive")
	}
	if cfg.Delay < 0 {
		panic("netsim: link delay must be nonnegative")
	}
	if _, dup := from.links[to.ID]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %v->%v", from, to))
	}
	ql := cfg.QueueLimit
	if ql == 0 {
		ql = DefaultQueueLimit
	}
	l := &Link{
		net:        n,
		From:       from.ID,
		To:         to.ID,
		Bandwidth:  cfg.Bandwidth,
		Delay:      cfg.Delay,
		QueueLimit: ql,
		Policy:     cfg.Policy,
	}
	// Bind the hot-path callbacks once so forwarding allocates no closures.
	l.deliver = func(p *Packet, via *Link) { n.nodes[via.To].deliver(p, via) }
	l.txDoneFn = l.txDone
	l.deliverFn = l.deliverHead
	// Single-scheduler default; Partition rebinds these per shard.
	l.sched, l.dsched, l.recvSched = n.engine, n.engine, n.engine
	from.links[to.ID] = l
	n.nextHop, n.tree = nil, nil
	return l
}

// Links returns every link in the network in (From, To) order.
func (n *Network) Links() []*Link {
	var out []*Link
	for _, node := range n.nodes {
		out = append(out, node.Links()...)
	}
	return out
}

// NextHop returns the neighbor of src on a shortest path (hop count) to dst,
// or NoNode if dst is unreachable. Routing tables are computed on first use
// after any topology change. Down links carry no routes.
func (n *Network) NextHop(src, dst NodeID) NodeID {
	n.ensureRoutes()
	if n.tree != nil {
		return n.tree.nextHop(src, dst)
	}
	return n.nextHop[src][dst]
}

// ensureRoutes materializes routing state if a topology change invalidated
// it: tree mode for large forests, the dense all-pairs tables otherwise.
// On trees the two answer identically (paths are unique and both tie-break
// toward the lowest node ID), so which mode serves a query is invisible.
func (n *Network) ensureRoutes() {
	if n.nextHop != nil || n.tree != nil {
		return
	}
	if !n.denseOnly && len(n.nodes) >= treeRouteMinNodes {
		if t := n.buildTreeRoutes(); t != nil {
			n.tree = t
			return
		}
	}
	n.computeRoutes()
}

// RouteChange describes one routing-table update: the set of nodes whose
// next hop toward Dst changed when a link changed state — including nodes
// for which Dst just became reachable or unreachable. Nodes are in
// ascending ID order; a notification carries one entry per affected
// destination, also ascending.
type RouteChange struct {
	Dst   NodeID
	Nodes []NodeID
}

// OnRouteChange registers fn to observe routing-table updates caused by
// link state changes (Link.SetDown / SetUp). Listeners run synchronously,
// in registration order, on the simulation goroutine, after the tables
// already reflect the new link state. The multicast layer listens here to
// repair its distribution trees. The slice passed to fn is only valid for
// the duration of the call.
func (n *Network) OnRouteChange(fn func([]RouteChange)) {
	n.routeListeners = append(n.routeListeners, fn)
}

// reverseAdjacency builds rev[to] = list of (from) with a live link
// from->to, in node order so BFS tie-breaks stay deterministic.
func (n *Network) reverseAdjacency() [][]NodeID {
	rev := make([][]NodeID, len(n.nodes))
	for _, node := range n.nodes {
		for _, nb := range node.Neighbors() {
			if node.links[nb].down {
				continue
			}
			rev[nb] = append(rev[nb], node.ID)
		}
	}
	return rev
}

// computeColumn fills col (one entry per node) with each node's next hop
// toward dst: one BFS from dst along reversed links, so paths follow link
// direction. The first hop discovered from a node toward dst is recorded;
// rev lists are in node order, so ties break deterministically by node ID.
func (n *Network) computeColumn(dst NodeID, rev [][]NodeID, col []NodeID) {
	num := len(n.nodes)
	for i := range col {
		col[i] = NoNode
	}
	dist := make([]int, num)
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, prev := range rev[cur] {
			if dist[prev] == -1 {
				dist[prev] = dist[cur] + 1
				// prev's shortest path runs prev -> cur -> ... -> dst.
				col[prev] = cur
				queue = append(queue, prev)
			}
		}
	}
	col[dst] = dst
}

// computeRoutes builds all-pairs next-hop tables, one BFS per destination.
func (n *Network) computeRoutes() {
	num := len(n.nodes)
	n.nextHop = make([][]NodeID, num)
	rev := n.reverseAdjacency()
	for dst := 0; dst < num; dst++ {
		n.nextHop[dst] = make([]NodeID, num)
	}
	col := make([]NodeID, num)
	for dst := 0; dst < num; dst++ {
		n.computeColumn(NodeID(dst), rev, col)
		for src := 0; src < num; src++ {
			n.nextHop[src][dst] = col[src]
		}
	}
}

// linkStateChanged incrementally recomputes routing after l flipped state
// and notifies route listeners of every next-hop change. Only the affected
// destination columns are rebuilt: when a link goes down, just the
// destinations whose shortest-path tree crossed it (the tree uses edge
// From->To exactly when From's next hop is To); when a link comes up any
// path may improve, so every column is rechecked. The caller (SetDown /
// SetUp) guarantees the tables were materialized before the flip.
func (n *Network) linkStateChanged(l *Link, wentDown bool) {
	num := len(n.nodes)
	rev := n.reverseAdjacency()
	col := make([]NodeID, num)
	var changes []RouteChange
	for dst := 0; dst < num; dst++ {
		if wentDown && n.nextHop[l.From][dst] != l.To {
			continue // this destination's tree never crossed the link
		}
		n.computeColumn(NodeID(dst), rev, col)
		var changed []NodeID
		for src := 0; src < num; src++ {
			if n.nextHop[src][dst] != col[src] {
				n.nextHop[src][dst] = col[src]
				changed = append(changed, NodeID(src))
			}
		}
		if len(changed) > 0 {
			changes = append(changes, RouteChange{Dst: NodeID(dst), Nodes: changed})
		}
	}
	if len(changes) == 0 {
		return
	}
	for _, fn := range n.routeListeners {
		fn(changes)
	}
}

// PathDelay returns the sum of propagation delays along the unicast route
// from src to dst, or -1 if unreachable. Useful for sanity checks ("max path
// latency 600 ms" in the paper's Topology A).
func (n *Network) PathDelay(src, dst NodeID) sim.Time {
	if src == dst {
		return 0
	}
	var total sim.Time
	cur := src
	for cur != dst {
		next := n.NextHop(cur, dst)
		if next == NoNode {
			return -1
		}
		total += n.nodes[cur].links[next].Delay
		cur = next
	}
	return total
}

// PathHops returns the hop count from src to dst, or -1 if unreachable.
func (n *Network) PathHops(src, dst NodeID) int {
	if src == dst {
		return 0
	}
	hops := 0
	cur := src
	for cur != dst {
		next := n.NextHop(cur, dst)
		if next == NoNode {
			return -1
		}
		hops++
		cur = next
		if hops > len(n.nodes) {
			return -1 // routing loop guard; cannot happen with BFS tables
		}
	}
	return hops
}
