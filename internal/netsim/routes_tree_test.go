package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"toposense/internal/sim"
)

// withTreeThreshold lowers the tree-mode threshold so small test
// topologies exercise it, restoring the default afterwards.
func withTreeThreshold(t *testing.T, min int) {
	t.Helper()
	old := treeRouteMinNodes
	treeRouteMinNodes = min
	t.Cleanup(func() { treeRouteMinNodes = old })
}

var flatCfg = LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}

// buildRandomTree grows a random tree of n nodes: each new node attaches
// to a uniformly random earlier one.
func buildRandomTree(e *sim.Engine, n int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	net := New(e)
	nodes := make([]*Node, n)
	nodes[0] = net.AddNode("n0")
	for i := 1; i < n; i++ {
		nodes[i] = net.AddNode(fmt.Sprintf("n%d", i))
		net.Connect(nodes[rng.Intn(i)], nodes[i], flatCfg)
	}
	return net
}

// TestTreeRoutesMatchDense checks that tree-mode NextHop answers exactly
// what the dense BFS tables would, for every (src, dst) pair, on a batch
// of random trees.
func TestTreeRoutesMatchDense(t *testing.T) {
	withTreeThreshold(t, 2)
	for seed := int64(1); seed <= 5; seed++ {
		net := buildRandomTree(sim.NewEngine(seed), 60, seed)
		net.ensureRoutes()
		if net.tree == nil {
			t.Fatalf("seed %d: tree mode not selected for a %d-node tree", seed, net.NumNodes())
		}
		// Dense tables on an identical twin.
		dense := buildRandomTree(sim.NewEngine(seed), 60, seed)
		dense.denseOnly = true
		for src := 0; src < net.NumNodes(); src++ {
			for dst := 0; dst < net.NumNodes(); dst++ {
				got := net.NextHop(NodeID(src), NodeID(dst))
				want := dense.NextHop(NodeID(src), NodeID(dst))
				if got != want {
					t.Fatalf("seed %d: NextHop(%d,%d) = %d, dense says %d", seed, src, dst, got, want)
				}
			}
		}
	}
}

// TestTreeRoutesDisconnected checks component handling: no route between
// trees of a forest, normal routes within each.
func TestTreeRoutesDisconnected(t *testing.T) {
	withTreeThreshold(t, 2)
	e := sim.NewEngine(1)
	net := New(e)
	a0, a1 := net.AddNode("a0"), net.AddNode("a1")
	b0, b1 := net.AddNode("b0"), net.AddNode("b1")
	net.Connect(a0, a1, flatCfg)
	net.Connect(b0, b1, flatCfg)
	net.ensureRoutes()
	if net.tree == nil {
		t.Fatal("tree mode not selected for a forest")
	}
	if got := net.NextHop(a0.ID, b1.ID); got != NoNode {
		t.Errorf("cross-component NextHop = %d, want NoNode", got)
	}
	if got := net.NextHop(a0.ID, a1.ID); got != a1.ID {
		t.Errorf("NextHop(a0,a1) = %d, want %d", got, a1.ID)
	}
	if got := net.NextHop(b1.ID, b0.ID); got != b0.ID {
		t.Errorf("NextHop(b1,b0) = %d, want %d", got, b0.ID)
	}
}

// TestTreeRoutesCycleFallsBack checks that a graph with a cycle rejects
// tree mode and routes through the dense tables.
func TestTreeRoutesCycleFallsBack(t *testing.T) {
	withTreeThreshold(t, 2)
	e := sim.NewEngine(1)
	net := New(e)
	var nodes []*Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, net.AddNode(fmt.Sprintf("n%d", i)))
	}
	for i := range nodes {
		net.Connect(nodes[i], nodes[(i+1)%4], flatCfg)
	}
	net.ensureRoutes()
	if net.tree != nil {
		t.Fatal("tree mode selected for a cycle")
	}
	if net.nextHop == nil {
		t.Fatal("dense tables not built on fallback")
	}
	if got := net.NextHop(nodes[0].ID, nodes[2].ID); got != nodes[1].ID {
		// Two equal paths; BFS tie-breaks toward the lower node ID.
		t.Errorf("NextHop(0,2) = %d, want %d", got, nodes[1].ID)
	}
}

// TestTreeRoutesAsymmetryFallsBack checks that a one-way link disqualifies
// tree mode (tree queries assume symmetric reachability).
func TestTreeRoutesAsymmetryFallsBack(t *testing.T) {
	withTreeThreshold(t, 2)
	e := sim.NewEngine(1)
	net := New(e)
	a, b, c := net.AddNode("a"), net.AddNode("b"), net.AddNode("c")
	net.Connect(a, b, flatCfg)
	net.ConnectAsym(b, c, flatCfg)
	net.ensureRoutes()
	if net.tree != nil {
		t.Fatal("tree mode selected despite an asymmetric link")
	}
}

// TestTreeRoutesFaultInjection checks that SetDown on a tree-routed
// network materializes dense tables, reroutes, and that SetUp restores
// the original next hops — with route-change listeners firing.
func TestTreeRoutesFaultInjection(t *testing.T) {
	withTreeThreshold(t, 2)
	e := sim.NewEngine(1)
	net := New(e)
	// src - mid - leaf plus a spare path src - alt - leaf would be a cycle;
	// keep it a tree and check unreachability instead.
	src, mid, leaf := net.AddNode("src"), net.AddNode("mid"), net.AddNode("leaf")
	down, _ := net.Connect(src, mid, flatCfg)
	net.Connect(mid, leaf, flatCfg)
	net.ensureRoutes()
	if net.tree == nil {
		t.Fatal("tree mode not selected")
	}
	var notified int
	net.OnRouteChange(func(ch []RouteChange) { notified += len(ch) })
	down.SetDown()
	down.Reverse().SetDown()
	if net.tree != nil || net.nextHop == nil {
		t.Fatal("fault injection did not switch to dense tables")
	}
	if got := net.NextHop(src.ID, leaf.ID); got != NoNode {
		t.Errorf("NextHop over failed link = %d, want NoNode", got)
	}
	if notified == 0 {
		t.Error("no route-change notifications on failure")
	}
	down.SetUp()
	down.Reverse().SetUp()
	if got := net.NextHop(src.ID, leaf.ID); got != mid.ID {
		t.Errorf("NextHop after repair = %d, want %d", got, mid.ID)
	}
	// The network stays dense after repair; tree mode would lose the
	// ability to diff the next failure.
	if !net.denseOnly {
		t.Error("denseOnly not pinned after fault injection")
	}
}

// TestTreeRoutesPathHelpers checks PathDelay/PathHops work through tree
// mode (they walk NextHop hop by hop).
func TestTreeRoutesPathHelpers(t *testing.T) {
	withTreeThreshold(t, 2)
	e := sim.NewEngine(1)
	net := New(e)
	a, b, c := net.AddNode("a"), net.AddNode("b"), net.AddNode("c")
	net.Connect(a, b, flatCfg)
	net.Connect(b, c, flatCfg)
	net.ensureRoutes()
	if net.tree == nil {
		t.Fatal("tree mode not selected")
	}
	if got := net.PathHops(a.ID, c.ID); got != 2 {
		t.Errorf("PathHops = %d, want 2", got)
	}
	if got := net.PathDelay(a.ID, c.ID); got != 2*sim.Millisecond {
		t.Errorf("PathDelay = %v, want 2ms", got)
	}
}
