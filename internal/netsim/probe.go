package netsim

// Probe observes the life of packets on a link: acceptance into the queue,
// loss to the drop policy, and hand-off to the receiving node. Probes are
// the one observation point of the packet plane — experiments, tracing and
// tests all attach here instead of patching ad-hoc callbacks onto links.
//
// A probe attaches either to a single link (Link.Attach) or to every link
// of a network, present and future (Network.AttachProbe). Callbacks run
// synchronously on the simulation goroutine, so they see a consistent world
// and must not block.
//
// Lifetime contract: with the pooled packet plane, the *Packet passed to a
// callback is only guaranteed valid for the duration of the call — a probe
// that wants to keep information must copy the fields it needs, never the
// pointer.
type Probe interface {
	// Enqueue is called when the link accepts a packet: queued behind the
	// transmitter or sent straight to the wire.
	Enqueue(l *Link, p *Packet)
	// Drop is called when the drop policy discards a packet: the arrival
	// under drop-tail, or the highest-layer queued packet under priority
	// dropping.
	Drop(l *Link, p *Packet)
	// Deliver is called when a packet finishes serialization plus
	// propagation and is handed to the receiving node, just before that
	// node processes it.
	Deliver(l *Link, p *Packet)
}

// FuncProbe adapts plain functions to the Probe interface; nil fields are
// skipped. It is the idiomatic way to observe one kind of event:
//
//	link.Attach(&netsim.FuncProbe{
//		OnDrop: func(l *netsim.Link, p *netsim.Packet) { drops++ },
//	})
type FuncProbe struct {
	OnEnqueue func(l *Link, p *Packet)
	OnDrop    func(l *Link, p *Packet)
	OnDeliver func(l *Link, p *Packet)
}

// Enqueue implements Probe.
func (f *FuncProbe) Enqueue(l *Link, p *Packet) {
	if f.OnEnqueue != nil {
		f.OnEnqueue(l, p)
	}
}

// Drop implements Probe.
func (f *FuncProbe) Drop(l *Link, p *Packet) {
	if f.OnDrop != nil {
		f.OnDrop(l, p)
	}
}

// Deliver implements Probe.
func (f *FuncProbe) Deliver(l *Link, p *Packet) {
	if f.OnDeliver != nil {
		f.OnDeliver(l, p)
	}
}

// CountingProbe tallies the events it sees — a ready-made Probe for tests
// and experiments that only need totals.
type CountingProbe struct {
	Enqueues, Drops, Delivers int64
}

// Enqueue implements Probe.
func (c *CountingProbe) Enqueue(*Link, *Packet) { c.Enqueues++ }

// Drop implements Probe.
func (c *CountingProbe) Drop(*Link, *Packet) { c.Drops++ }

// Deliver implements Probe.
func (c *CountingProbe) Deliver(*Link, *Packet) { c.Delivers++ }
