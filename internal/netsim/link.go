package netsim

import (
	"fmt"

	"toposense/internal/sim"
)

// DefaultQueueLimit is the drop-tail queue capacity in packets, matching the
// ns-2 default DropTail queue length the paper's simulations used.
const DefaultQueueLimit = 20

// DropPolicy selects what a full queue discards.
type DropPolicy uint8

const (
	// DropTail discards the arriving packet — the paper's policy ("a
	// drop-tail policy was used at all nodes").
	DropTail DropPolicy = iota
	// DropPriority discards the queued or arriving packet with the highest
	// layer number, protecting base layers — the router-based priority
	// dropping of Bajaj/Breslau/Shenker that the paper cites as effective
	// but hard to deploy. Non-media packets (control) count as layer 0 and
	// are therefore protected.
	DropPriority
)

// LinkStats accumulates per-link counters for the lifetime of a run.
type LinkStats struct {
	Enqueued  int64 // packets accepted into the queue (or straight to the wire)
	Delivered int64 // packets that finished serialization and were handed on
	Dropped   int64 // packets lost to drop-tail overflow
	TxBytes   int64 // bytes fully serialized onto the wire
	PeakQueue int   // high-water mark of queue occupancy (excluding in-flight)
}

// DropRate returns the fraction of offered packets lost on this link.
func (s LinkStats) DropRate() float64 {
	offered := s.Enqueued + s.Dropped
	if offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(offered)
}

// Link is a unidirectional channel between two nodes with a fixed bandwidth
// (bits/s), propagation delay, and a drop-tail FIFO queue of queueLimit
// packets. A bidirectional connection is a pair of Links.
type Link struct {
	net        *Network
	From, To   NodeID
	Bandwidth  float64 // bits per second
	Delay      sim.Time
	QueueLimit int
	Policy     DropPolicy

	queue   []*Packet
	busy    bool
	stats   LinkStats
	dropFn  func(*Packet) // optional drop observer (tracing, tests)
	deliver func(*Packet, *Link)
}

// Stats returns a copy of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of packets waiting (not counting the one being
// serialized).
func (l *Link) QueueLen() int { return len(l.queue) }

// Busy reports whether a packet is currently being serialized.
func (l *Link) Busy() bool { return l.busy }

// OnDrop registers an observer invoked for every packet the link drops.
func (l *Link) OnDrop(fn func(*Packet)) { l.dropFn = fn }

// ResetStats zeroes the counters (used between measurement intervals).
func (l *Link) ResetStats() { l.stats = LinkStats{} }

func (l *Link) String() string {
	return fmt.Sprintf("link %d->%d %.0fbps %v", l.From, l.To, l.Bandwidth, l.Delay)
}

// Send offers a packet to the link. If the transmitter is idle the packet
// goes straight to the wire; otherwise it queues, and when the queue is at
// its limit the Policy picks the victim: the arrival (drop-tail) or the
// highest-layer packet in queue (priority dropping).
func (l *Link) Send(p *Packet) {
	if !l.busy {
		l.stats.Enqueued++
		l.transmit(p)
		return
	}
	if len(l.queue) >= l.QueueLimit {
		victim := p
		if l.Policy == DropPriority {
			// Highest layer among queued packets and the arrival loses;
			// ties favour dropping the arrival (cheapest).
			vIdx := -1
			for i, q := range l.queue {
				if q.Layer > victim.Layer {
					victim, vIdx = q, i
				}
			}
			if vIdx >= 0 {
				// Replace the queued victim with the arrival; the victim's
				// Enqueued count transfers to the arrival, which delivers
				// in its place.
				l.queue[vIdx] = p
			}
		}
		l.stats.Dropped++
		if l.dropFn != nil {
			l.dropFn(victim)
		}
		return
	}
	l.stats.Enqueued++
	l.queue = append(l.queue, p)
	if len(l.queue) > l.stats.PeakQueue {
		l.stats.PeakQueue = len(l.queue)
	}
}

// transmit serializes p, then schedules its arrival after the propagation
// delay and starts on the next queued packet.
func (l *Link) transmit(p *Packet) {
	l.busy = true
	txTime := sim.TransmitTime(p.Size, l.Bandwidth)
	l.net.engine.Schedule(txTime, func() {
		l.stats.Delivered++
		l.stats.TxBytes += int64(p.Size)
		l.net.engine.Schedule(l.Delay, func() { l.deliver(p, l) })
		if len(l.queue) > 0 {
			next := l.queue[0]
			copy(l.queue, l.queue[1:])
			l.queue = l.queue[:len(l.queue)-1]
			l.transmit(next)
		} else {
			l.busy = false
		}
	})
}
