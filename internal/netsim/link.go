package netsim

import (
	"fmt"
	"sync"

	"toposense/internal/sim"
)

// DefaultQueueLimit is the drop-tail queue capacity in packets, matching the
// ns-2 default DropTail queue length the paper's simulations used.
const DefaultQueueLimit = 20

// DropPolicy selects what a full queue discards.
type DropPolicy uint8

const (
	// DropTail discards the arriving packet — the paper's policy ("a
	// drop-tail policy was used at all nodes").
	DropTail DropPolicy = iota
	// DropPriority discards the queued or arriving packet with the highest
	// layer number, protecting base layers — the router-based priority
	// dropping of Bajaj/Breslau/Shenker that the paper cites as effective
	// but hard to deploy. Non-media packets (control) count as layer 0 and
	// are therefore protected.
	DropPriority
)

// LinkStats accumulates per-link counters for the lifetime of a run.
type LinkStats struct {
	Enqueued  int64 // packets accepted into the queue (or straight to the wire)
	Delivered int64 // packets that finished serialization and were handed on
	Dropped   int64 // packets lost to drop-tail overflow or link failure
	TxBytes   int64 // bytes fully serialized onto the wire
	PeakQueue int   // high-water mark of queue occupancy (excluding in-flight)
}

// DropRate returns the fraction of offered packets lost on this link.
func (s LinkStats) DropRate() float64 {
	offered := s.Enqueued + s.Dropped
	if offered == 0 {
		return 0
	}
	return float64(s.Dropped) / float64(offered)
}

// Link is a unidirectional channel between two nodes with a fixed bandwidth
// (bits/s), propagation delay, and a drop-tail FIFO queue of queueLimit
// packets. A bidirectional connection is a pair of Links.
//
// The forwarding hot path is allocation-free: the serialization-done and
// delivery callbacks are bound once per link at construction, the waiting
// queue and the propagation pipeline are head-indexed slices whose backing
// arrays are reused, and pooled packets move through on reference counts
// instead of garbage.
type Link struct {
	net        *Network
	From, To   NodeID
	Bandwidth  float64 // bits per second
	Delay      sim.Time
	QueueLimit int
	Policy     DropPolicy

	// queue[qhead:] holds the packets waiting behind the transmitter.
	queue []*Packet
	qhead int
	busy  bool
	// txp is the packet currently being serialized (valid while busy).
	txp *Packet
	// inflight[ifhead:] holds serialized packets riding the propagation
	// delay, in arrival order (the delay is constant, so FIFO holds).
	inflight []*Packet
	ifhead   int

	// down marks a failed link: everything it is asked to carry is
	// dropped until SetUp. squelch counts delivery events already
	// scheduled for in-flight packets that SetDown discarded; deliverHead
	// swallows that many firings instead of indexing an emptied pipeline.
	down    bool
	squelch int

	stats  LinkStats
	probes []Probe

	// Bound once in addLink so the per-hop Schedule calls allocate no
	// closures.
	txDoneFn  func()
	deliverFn func()
	deliver   func(*Packet, *Link)

	// sched owns the transmitter side (Send/transmit/txDone run in From's
	// context); dsched carries the delivery schedule to the receiving side;
	// recvSched is the receiving context itself (its clock is the one probes
	// must read at delivery). All three are the network engine until
	// Partition rebinds them, and dsched differs from recvSched only on a
	// partition-boundary link, where it is a cross-shard channel.
	sched     sim.Scheduler
	dsched    sim.Scheduler
	recvSched sim.Scheduler
	// mu guards inflight/ifhead on partition-boundary links, where the
	// transmitting shard pushes and the receiving shard pops concurrently.
	// nil everywhere else: single-shard links never pay for it.
	mu *sync.Mutex
}

// NowTx returns the transmitting side's current time: the clock Send-path
// probe callbacks (Enqueue, Drop) must read.
func (l *Link) NowTx() sim.Time { return l.sched.Now() }

// NowRx returns the receiving side's current time: the clock delivery-path
// probe callbacks must read.
func (l *Link) NowRx() sim.Time { return l.recvSched.Now() }

// Stats returns a copy of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the number of packets waiting (not counting the one being
// serialized).
func (l *Link) QueueLen() int { return len(l.queue) - l.qhead }

// Busy reports whether a packet is currently being serialized.
func (l *Link) Busy() bool { return l.busy }

// Attach registers a probe observing this link's packet events.
func (l *Link) Attach(p Probe) { l.probes = append(l.probes, p) }

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.down }

// Reverse returns the opposite direction of this link's connection
// (To->From), or nil when the connection is asymmetric. Fault injection
// uses it to fail both directions of a physical link together.
func (l *Link) Reverse() *Link { return l.net.nodes[l.To].links[l.From] }

// SetDown fails the link. Everything the link is asked to carry while down
// is dropped: the waiting queue and the propagation pipeline are discarded
// immediately, the packet being serialized is aborted, and later Send calls
// lose their packet on arrival. Unicast routing recomputes around the
// failed link and route-change listeners (Network.OnRouteChange) are
// notified synchronously, so the multicast layer can repair its trees.
func (l *Link) SetDown() {
	if l.down {
		return
	}
	// Materialize the pre-change dense routing tables while the link is
	// still up, so the recomputation below can report exactly what changed.
	// (Tree-mode routing cannot diff columns, so fault injection pins the
	// network to dense tables.)
	l.net.ensureDenseRoutes()
	l.down = true
	l.dropCarried()
	l.net.linkStateChanged(l, true)
}

// SetUp repairs a failed link. Routing recomputes and route-change
// listeners are notified, exactly as for SetDown. The transmitter restarts
// idle: traffic the outage discarded is gone for good, as on a real link.
func (l *Link) SetUp() {
	if !l.down {
		return
	}
	l.net.ensureDenseRoutes()
	l.down = false
	l.net.linkStateChanged(l, false)
}

// dropCarried discards everything the link is currently carrying: queued
// packets, the packet mid-serialization, and serialized packets riding the
// propagation delay. Each loss is counted and announced like a queue drop.
func (l *Link) dropCarried() {
	for i := l.qhead; i < len(l.queue); i++ {
		p := l.queue[i]
		l.queue[i] = nil
		l.stats.Dropped++
		l.noteDrop(p)
		p.unref()
	}
	l.queue = l.queue[:0]
	l.qhead = 0
	if l.txp != nil {
		// Abort the serialization in progress. The already-scheduled
		// txDone still fires; it finds txp nil and just advances the
		// transmitter.
		p := l.txp
		l.txp = nil
		l.stats.Dropped++
		l.noteDrop(p)
		p.unref()
	}
	for i := l.ifhead; i < len(l.inflight); i++ {
		p := l.inflight[i]
		l.inflight[i] = nil
		// These finished serialization and were counted Delivered in
		// txDone; move them to Dropped so the ledger reflects that they
		// never reached the far end.
		l.stats.Delivered--
		l.stats.Dropped++
		l.squelch++
		l.noteDrop(p)
		p.unref()
	}
	l.inflight = l.inflight[:0]
	l.ifhead = 0
}

// ResetStats zeroes the counters (used between measurement intervals).
func (l *Link) ResetStats() { l.stats = LinkStats{} }

func (l *Link) String() string {
	return fmt.Sprintf("link %d->%d %.0fbps %v", l.From, l.To, l.Bandwidth, l.Delay)
}

func (l *Link) noteEnqueue(p *Packet) {
	for _, pr := range l.probes {
		pr.Enqueue(l, p)
	}
	for _, pr := range l.net.probes {
		pr.Enqueue(l, p)
	}
}

func (l *Link) noteDrop(p *Packet) {
	for _, pr := range l.probes {
		pr.Drop(l, p)
	}
	for _, pr := range l.net.probes {
		pr.Drop(l, p)
	}
}

func (l *Link) noteDeliver(p *Packet) {
	for _, pr := range l.probes {
		pr.Deliver(l, p)
	}
	for _, pr := range l.net.probes {
		pr.Deliver(l, p)
	}
}

// Send offers a packet to the link. If the transmitter is idle the packet
// goes straight to the wire; otherwise it queues, and when the queue is at
// its limit the Policy picks the victim: the arrival (drop-tail) or the
// highest-layer packet in queue (priority dropping). An accepted packet
// holds one reference until the link delivers (or drops) it. A down link
// accepts nothing: the packet is dropped on arrival.
func (l *Link) Send(p *Packet) {
	if l.down {
		l.stats.Dropped++
		l.noteDrop(p)
		return
	}
	if !l.busy {
		l.stats.Enqueued++
		p.ref()
		l.noteEnqueue(p)
		l.transmit(p)
		return
	}
	if l.QueueLen() >= l.QueueLimit {
		victim := p
		if l.Policy == DropPriority {
			// Highest layer among queued packets and the arrival loses;
			// ties favour dropping the arrival (cheapest).
			vIdx := -1
			for i := l.qhead; i < len(l.queue); i++ {
				if q := l.queue[i]; q.Layer > victim.Layer {
					victim, vIdx = q, i
				}
			}
			if vIdx >= 0 {
				// Replace the queued victim with the arrival; the victim's
				// Enqueued count (and queue reference) transfer to the
				// arrival, which delivers in its place.
				l.queue[vIdx] = p
				p.ref()
				l.stats.Dropped++
				l.noteDrop(victim)
				victim.unref()
				return
			}
		}
		l.stats.Dropped++
		l.noteDrop(victim)
		return
	}
	l.stats.Enqueued++
	p.ref()
	l.noteEnqueue(p)
	l.queue = append(l.queue, p)
	if qlen := l.QueueLen(); qlen > l.stats.PeakQueue {
		l.stats.PeakQueue = qlen
	}
}

// transmit starts serializing p; txDone fires when the last bit is on the
// wire.
func (l *Link) transmit(p *Packet) {
	l.busy = true
	l.txp = p
	l.sched.Schedule(sim.TransmitTime(p.Size, l.Bandwidth), l.txDoneFn)
}

// txDone finishes serialization: the packet enters the propagation pipeline
// and the transmitter moves on to the next queued packet.
func (l *Link) txDone() {
	p := l.txp
	if p == nil {
		// The serialization was aborted by SetDown; just advance the
		// transmitter (the queue is normally empty here, but packets may
		// have queued if the link came back up mid-abort).
		if l.qhead < len(l.queue) {
			next := l.queue[l.qhead]
			l.queue[l.qhead] = nil
			l.qhead++
			if l.qhead == len(l.queue) {
				l.queue = l.queue[:0]
				l.qhead = 0
			}
			l.transmit(next)
		} else {
			l.busy = false
		}
		return
	}
	l.txp = nil
	l.stats.Delivered++
	l.stats.TxBytes += int64(p.Size)
	if l.mu != nil {
		l.mu.Lock()
		l.inflight = append(l.inflight, p)
		l.mu.Unlock()
	} else {
		l.inflight = append(l.inflight, p)
	}
	l.dsched.Schedule(l.Delay, l.deliverFn)
	if l.qhead < len(l.queue) {
		next := l.queue[l.qhead]
		l.queue[l.qhead] = nil
		l.qhead++
		if l.qhead == len(l.queue) {
			l.queue = l.queue[:0]
			l.qhead = 0
		}
		l.transmit(next)
	} else {
		l.busy = false
	}
}

// deliverHead hands the oldest in-flight packet to the receiving node and
// drops the link's reference to it. Propagation delay is constant per link,
// so deliveries complete in exactly the order txDone pushed them.
func (l *Link) deliverHead() {
	if l.squelch > 0 {
		// This firing belonged to an in-flight packet a SetDown discarded.
		l.squelch--
		return
	}
	var p *Packet
	if l.mu != nil {
		l.mu.Lock()
		p = l.popInflight()
		l.mu.Unlock()
	} else {
		p = l.popInflight()
	}
	l.noteDeliver(p)
	l.deliver(p, l)
	p.unref()
}

// popInflight removes and returns the oldest in-flight packet. Boundary
// links call it under l.mu.
func (l *Link) popInflight() *Packet {
	p := l.inflight[l.ifhead]
	l.inflight[l.ifhead] = nil
	l.ifhead++
	if l.ifhead == len(l.inflight) {
		l.inflight = l.inflight[:0]
		l.ifhead = 0
	}
	return p
}
