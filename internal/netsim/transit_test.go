package netsim

import (
	"testing"

	"toposense/internal/sim"
)

// recordFilter consumes Control packets bound for sink, recording where it
// saw them; everything else passes.
type recordFilter struct {
	sink  NodeID
	seen  []NodeID
	kinds []PacketKind
}

func (f *recordFilter) FilterTransit(n *Node, p *Packet) bool {
	f.seen = append(f.seen, n.ID)
	f.kinds = append(f.kinds, p.Kind)
	return p.Kind == Control && p.Dst == f.sink
}

func TestTransitFilterConsumes(t *testing.T) {
	e := sim.NewEngine(1)
	net := New(e)
	a := net.AddNode("a")
	mid := net.AddNode("mid")
	c := net.AddNode("c")
	lc := LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond}
	net.Connect(a, mid, lc)
	net.Connect(mid, c, lc)

	f := &recordFilter{sink: c.ID}
	mid.SetTransitFilter(f)

	// A control packet for c is consumed at mid: never delivered.
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: c.ID, Group: NoGroup, Size: 100})
	e.Run()
	if c.RecvUnicast != 0 {
		t.Errorf("filtered packet was delivered anyway (RecvUnicast=%d)", c.RecvUnicast)
	}
	if len(f.seen) != 1 || f.seen[0] != mid.ID {
		t.Errorf("filter saw %v, want [mid]", f.seen)
	}

	// A data packet passes the filter untouched and arrives.
	a.SendUnicast(&Packet{Kind: Data, Src: a.ID, Dst: c.ID, Group: NoGroup, Size: 100})
	e.Run()
	if c.RecvUnicast != 1 {
		t.Errorf("passed packet not delivered (RecvUnicast=%d)", c.RecvUnicast)
	}
}

// TestTransitFilterSeesOriginSends pins the property the aggregation layer
// depends on: SendUnicast enters route() at the origin node, so an
// origin-installed filter intercepts the node's own outgoing packets too.
func TestTransitFilterSeesOriginSends(t *testing.T) {
	e := sim.NewEngine(1)
	net := New(e)
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.Connect(a, b, LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond})

	f := &recordFilter{sink: b.ID}
	a.SetTransitFilter(f)
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 64})
	e.Run()
	if len(f.seen) != 1 || f.seen[0] != a.ID {
		t.Errorf("origin filter saw %v, want [a]", f.seen)
	}
	if b.RecvUnicast != 0 {
		t.Error("consumed origin send was still delivered")
	}
}

// TestTransitFilterNotOnLocalDelivery: packets addressed to the node itself
// are delivered to its agents without consulting the filter — delivery is
// not transit.
func TestTransitFilterNotOnLocalDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	net := New(e)
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.Connect(a, b, LinkConfig{Bandwidth: 1e9, Delay: sim.Millisecond})

	f := &recordFilter{sink: b.ID}
	b.SetTransitFilter(f)
	a.SendUnicast(&Packet{Kind: Control, Src: a.ID, Dst: b.ID, Group: NoGroup, Size: 64})
	e.Run()
	if b.RecvUnicast != 1 {
		t.Errorf("packet not delivered at dst (RecvUnicast=%d)", b.RecvUnicast)
	}
	if len(f.seen) != 0 {
		t.Errorf("filter consulted on local delivery: %v", f.seen)
	}

	// Removing the filter restores plain forwarding through mid nodes.
	b.SetTransitFilter(nil)
	if b.transit != nil {
		t.Error("SetTransitFilter(nil) did not clear the filter")
	}
}
