package netsim

import (
	"fmt"
	"sync/atomic"
)

// Agent receives unicast packets addressed to the node it is attached to.
// Receivers, sources and the controller all implement Agent.
type Agent interface {
	// Recv is called once for each unicast packet whose Dst is this node.
	Recv(p *Packet)
}

// MulticastHandler is installed on every node by the multicast routing layer
// (package mcast). It decides replication: which outgoing links a multicast
// packet is forwarded on and which local agents receive it.
type MulticastHandler interface {
	// HandleMulticast is called when a multicast packet arrives at the node
	// (or is originated locally, with from == nil).
	HandleMulticast(n *Node, p *Packet, from *Link)
}

// TransitFilter observes unicast packets passing through a node on their way
// somewhere else — including packets originated at the node itself, since
// SendUnicast enters the forwarding path at the origin. Returning true
// consumes the packet: it is not forwarded further. The filter does not own
// the packet's references (the delivering link still unrefs it), so a filter
// that keeps any part of the payload must take ownership of the payload value
// itself, not retain the *Packet. The in-network report aggregation layer
// (mcast.Aggregator) is the one installer.
type TransitFilter interface {
	FilterTransit(n *Node, p *Packet) bool
}

// Node is a network element: a router, a source host or a receiver host —
// the distinction is only in which agents and handlers are attached.
type Node struct {
	ID   NodeID
	Name string

	net     *Network
	links   map[NodeID]*Link // outgoing links keyed by neighbor
	agents  []Agent
	mcast   MulticastHandler
	transit TransitFilter

	// RecvUnicast counts unicast packets delivered locally.
	RecvUnicast int64
}

func (n *Node) String() string { return fmt.Sprintf("%s(#%d)", n.Name, n.ID) }

// AttachAgent registers an agent for local unicast delivery.
func (n *Node) AttachAgent(a Agent) { n.agents = append(n.agents, a) }

// SetMulticastHandler installs the multicast forwarding logic.
func (n *Node) SetMulticastHandler(h MulticastHandler) { n.mcast = h }

// SetTransitFilter installs (or, with nil, removes) the node's transit
// filter. At most one filter per node; without one the forwarding path is
// exactly the pre-filter code plus a single nil check.
func (n *Node) SetTransitFilter(f TransitFilter) { n.transit = f }

// LinkTo returns the outgoing link to neighbor, or nil.
func (n *Node) LinkTo(neighbor NodeID) *Link { return n.links[neighbor] }

// Neighbors returns the IDs of directly connected nodes in ascending order.
func (n *Node) Neighbors() []NodeID {
	out := make([]NodeID, 0, len(n.links))
	for id := range n.links {
		out = append(out, id)
	}
	// Deterministic order matters: replication order affects queueing.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Links returns the node's outgoing links in ascending neighbor order.
func (n *Node) Links() []*Link {
	ids := n.Neighbors()
	out := make([]*Link, len(ids))
	for i, id := range ids {
		out[i] = n.links[id]
	}
	return out
}

// SendUnicast routes a unicast packet toward p.Dst using the network's
// next-hop tables. If Dst is the node itself the packet is delivered locally
// without touching a link.
func (n *Node) SendUnicast(p *Packet) {
	if p.Multicast() {
		panic("netsim: SendUnicast called with a multicast packet")
	}
	n.route(p)
}

// SendMulticastLocal hands a locally originated multicast packet to the
// multicast handler (which forwards it down the distribution tree).
func (n *Node) SendMulticastLocal(p *Packet) {
	if !p.Multicast() {
		panic("netsim: SendMulticastLocal called with a unicast packet")
	}
	if n.mcast == nil {
		panic(fmt.Sprintf("netsim: node %v has no multicast handler", n))
	}
	n.mcast.HandleMulticast(n, p, nil)
}

// deliver is the arrival point for packets coming off a link.
func (n *Node) deliver(p *Packet, from *Link) {
	if p.Multicast() {
		if n.mcast != nil {
			n.mcast.HandleMulticast(n, p, from)
		}
		return
	}
	n.route(p)
}

// route advances a unicast packet one step: local delivery or next hop.
func (n *Node) route(p *Packet) {
	if p.Dst == n.ID {
		n.RecvUnicast++
		for _, a := range n.agents {
			a.Recv(p)
		}
		return
	}
	if n.transit != nil && n.transit.FilterTransit(n, p) {
		return // consumed in-network (report aggregation)
	}
	next := n.net.NextHop(n.ID, p.Dst)
	if next == NoNode {
		// Unroutable packets are silently dropped, like in a real network.
		// Any shard can hit this; the counter is cold, so always atomic.
		atomic.AddInt64(&n.net.Unroutable, 1)
		return
	}
	n.links[next].Send(p)
}
