package netsim

import (
	"math/rand"
	"testing"

	"toposense/internal/sim"
)

// Property tests for the routing tables on random connected graphs.

// randConnected builds a random connected network of n nodes: a random
// spanning tree plus extra random edges.
func randConnected(rng *rand.Rand, n int) *Network {
	e := sim.NewEngine(1)
	net := New(e)
	cfg := LinkConfig{Bandwidth: 1e6, Delay: sim.Millisecond}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = net.AddNode("n")
	}
	for i := 1; i < n; i++ {
		net.Connect(nodes[i], nodes[rng.Intn(i)], cfg)
	}
	// Extra edges (avoiding duplicates).
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || nodes[a].LinkTo(nodes[b].ID) != nil {
			continue
		}
		net.Connect(nodes[a], nodes[b], cfg)
	}
	return net
}

func TestQuickRoutingReachesEveryPair(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		net := randConnected(rng, n)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				hops := net.PathHops(NodeID(src), NodeID(dst))
				if hops < 0 {
					t.Fatalf("seed %d: no route %d -> %d in a connected graph", seed, src, dst)
				}
				if hops >= n {
					t.Fatalf("seed %d: path %d -> %d has %d hops in an %d-node graph", seed, src, dst, hops, n)
				}
			}
		}
	}
}

func TestQuickRoutingShortestConsistency(t *testing.T) {
	// Next-hop consistency: hops(src,dst) == 1 + hops(nexthop,dst), the
	// defining property of shortest-path next-hop tables.
	for seed := int64(30); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 3
		net := randConnected(rng, n)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				next := net.NextHop(NodeID(src), NodeID(dst))
				if net.PathHops(NodeID(src), NodeID(dst)) != 1+net.PathHops(next, NodeID(dst)) {
					t.Fatalf("seed %d: inconsistent next hop %d -> %d via %d", seed, src, dst, next)
				}
			}
		}
	}
}

func TestQuickRoutingSymmetricHopCounts(t *testing.T) {
	// Links are created in symmetric pairs, so hop counts are symmetric
	// even when tie-breaking picks different paths.
	for seed := int64(60); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 3
		net := randConnected(rng, n)
		for src := 0; src < n; src++ {
			for dst := src + 1; dst < n; dst++ {
				a := net.PathHops(NodeID(src), NodeID(dst))
				b := net.PathHops(NodeID(dst), NodeID(src))
				if a != b {
					t.Fatalf("seed %d: asymmetric hop counts %d vs %d", seed, a, b)
				}
			}
		}
	}
}
