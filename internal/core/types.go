// Package core implements the TopoSense algorithm — the paper's primary
// contribution. TopoSense runs inside a per-domain controller agent. Each
// decision interval it consumes (a) the discovered multicast session
// topologies, possibly stale, and (b) receiver loss/byte reports, and
// produces a prescribed subscription level for every receiver.
//
// The algorithm's five stages follow Figure 4 of the paper:
//
//  1. compute a congestion state for every node of every session tree
//     (congestion.go);
//  2. estimate link capacities for shared links from observed loss and
//     throughput (capacity.go);
//  3. propagate bottleneck bandwidths through each tree (bottleneck.go);
//  4. share estimated capacity on shared links between competing sessions
//     (sharing.go);
//  5. compute per-node demand with the Table-I decision table and allocate
//     supply top-down (table.go, demand.go).
//
// The package is deliberately free of any dependency on the network
// simulator's machinery beyond identifier types: it operates on plain
// topology and report values, which keeps every stage unit-testable in
// isolation and mirrors the paper's statement that the algorithm works on
// "an internal image of the multicast tree topologies".
package core

import (
	"fmt"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// NodeID aliases the network node identifier.
type NodeID = netsim.NodeID

// Topology is the controller's image of one session's multicast tree: the
// overlay of the per-layer distribution trees (a tree, because layers are
// cumulative).
type Topology struct {
	Session int
	Root    NodeID
	// Parent maps every non-root on-tree node to its parent.
	Parent map[NodeID]NodeID
	// Children maps every on-tree node to its children.
	Children map[NodeID][]NodeID
	// Receivers marks the nodes with attached receivers (report sources).
	Receivers map[NodeID]bool
}

// Validate checks tree invariants: a real root, parent/child symmetry, no
// cycles, connectivity. The controller calls this on every discovered
// topology before feeding it to the algorithm.
func (t *Topology) Validate() error {
	if t.Root == netsim.NoNode {
		return fmt.Errorf("core: topology for session %d has no root", t.Session)
	}
	if _, hasParent := t.Parent[t.Root]; hasParent {
		return fmt.Errorf("core: root %d has a parent", t.Root)
	}
	for child, parent := range t.Parent {
		found := false
		for _, c := range t.Children[parent] {
			if c == child {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: node %d has parent %d but is not its child", child, parent)
		}
	}
	for parent, kids := range t.Children {
		for _, c := range kids {
			if t.Parent[c] != parent {
				return fmt.Errorf("core: node %d is child of %d but Parent says %d", c, parent, t.Parent[c])
			}
		}
	}
	// Reachability from the root must cover every node in Parent.
	seen := map[NodeID]bool{t.Root: true}
	stack := []NodeID{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children[n] {
			if seen[c] {
				return fmt.Errorf("core: node %d reached twice (cycle or diamond)", c)
			}
			seen[c] = true
			stack = append(stack, c)
		}
	}
	for child := range t.Parent {
		if !seen[child] {
			return fmt.Errorf("core: node %d unreachable from root", child)
		}
	}
	return nil
}

// BFSOrder returns the nodes top-down: the root first, every parent before
// its children. Reversing it yields a valid bottom-up order. Sibling order
// follows the Children slices, so it is deterministic.
func (t *Topology) BFSOrder() []NodeID {
	order := make([]NodeID, 0, len(t.Parent)+1)
	queue := []NodeID{t.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		queue = append(queue, t.Children[n]...)
	}
	return order
}

// IsLeaf reports whether the node has no children in this topology.
func (t *Topology) IsLeaf(n NodeID) bool { return len(t.Children[n]) == 0 }

// Edge identifies a directed physical link from Parent to Child. The same
// Edge appearing in several session topologies is a shared link.
type Edge struct {
	From, To NodeID
}

func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// EdgeTo returns the edge from n's parent to n, and false for the root.
func (t *Topology) EdgeTo(n NodeID) (Edge, bool) {
	p, ok := t.Parent[n]
	if !ok {
		return Edge{}, false
	}
	return Edge{From: p, To: n}, true
}

// ReceiverState is the controller's latest view of one receiver in one
// session, assembled from loss reports.
type ReceiverState struct {
	Node     NodeID
	Session  int
	Level    int     // subscription level during the reported interval
	LossRate float64 // fraction of expected packets missing, 0..1
	Bytes    int64   // bytes received over the controller's decision interval
}

// Suggestion is the algorithm's output: the subscription level receiver
// Node should use for Session.
type Suggestion struct {
	Node    NodeID
	Session int
	Level   int
}

// Input bundles everything one Step consumes.
type Input struct {
	Now        sim.Time
	Topologies []*Topology
	Reports    []ReceiverState
	// Subtrees carries per-subtree congestion summaries when the controller
	// consumes in-network aggregates; empty on the flat report path. The
	// decision pipeline reads Reports either way — summaries are the
	// O(branching) view kept for hierarchical control and explain output.
	Subtrees []SubtreeSummary
}
