package core

import (
	"math"
	"math/rand"
	"testing"

	"toposense/internal/sim"
)

func testConfig() Config {
	return NewConfig([]float64{32e3, 64e3, 128e3, 256e3, 512e3, 1024e3})
}

// newPass builds a standalone sessionPass for a topology with given leaf
// reports, the way Step's bind/report loop would.
func newPass(a *Algorithm, topo *Topology, reports []ReceiverState) *sessionPass {
	p := &sessionPass{}
	p.bind(topo)
	for i := range reports {
		if li, ok := p.index[reports[i].Node]; ok {
			p.report[li] = &reports[i]
		}
	}
	return p
}

// at translates a NodeID to its local index, so tests can keep addressing
// pass columns by the topology's node numbers.
func (p *sessionPass) at(n NodeID) int32 {
	i, ok := p.index[n]
	if !ok {
		panic("node not in pass")
	}
	return i
}

func (p *sessionPass) lossAt(n NodeID) float64   { return p.loss[p.at(n)] }
func (p *sessionPass) congestAt(n NodeID) bool   { return p.congest[p.at(n)] }
func (p *sessionPass) subBytesAt(n NodeID) int64 { return p.subBytes[p.at(n)] }
func (p *sessionPass) levelAt(n NodeID) int      { return p.level[p.at(n)] }
func (p *sessionPass) bneckAt(n NodeID) float64  { return p.bneck[p.at(n)] }
func (p *sessionPass) maxBWAt(n NodeID) float64  { return p.maxBW[p.at(n)] }
func (p *sessionPass) demandAt(n NodeID) int     { return p.demand[p.at(n)] }
func (p *sessionPass) supplyAt(n NodeID) int     { return p.supply[p.at(n)] }

func TestCongestionLeafThreshold(t *testing.T) {
	a := New(testConfig(), nil)
	topo := star(0, 2) // leaves 2, 3 under node 1
	p := newPass(a, topo, []ReceiverState{
		{Node: 2, Session: 0, Level: 3, LossRate: 0.10, Bytes: 1000},
		{Node: 3, Session: 0, Level: 2, LossRate: 0.01, Bytes: 800},
	})
	a.computeCongestion(p)
	if !p.congestAt(2) {
		t.Error("leaf 2 at 10% loss not congested")
	}
	if p.congestAt(3) {
		t.Error("leaf 3 at 1% loss congested")
	}
}

func TestCongestionInternalMinLoss(t *testing.T) {
	a := New(testConfig(), nil)
	topo := star(0, 3)
	p := newPass(a, topo, []ReceiverState{
		{Node: 2, Session: 0, LossRate: 0.30, Bytes: 500, Level: 4},
		{Node: 3, Session: 0, LossRate: 0.10, Bytes: 900, Level: 3},
		{Node: 4, Session: 0, LossRate: 0.02, Bytes: 1200, Level: 2},
	})
	a.computeCongestion(p)
	// Internal loss = min over children.
	if p.lossAt(1) != 0.02 {
		t.Errorf("internal loss = %g, want 0.02", p.lossAt(1))
	}
	// Max bytes in subtree.
	if p.subBytesAt(1) != 1200 || p.subBytesAt(0) != 1200 {
		t.Errorf("subBytes = %d/%d, want 1200", p.subBytesAt(1), p.subBytesAt(0))
	}
	// Level = max of children.
	if p.levelAt(1) != 4 {
		t.Errorf("internal level = %d, want 4", p.levelAt(1))
	}
	// One healthy child: the internal node is NOT congested.
	if p.congestAt(1) {
		t.Error("internal congested despite a healthy child")
	}
}

func TestCongestionInternalAllChildrenSimilar(t *testing.T) {
	a := New(testConfig(), nil)
	topo := star(0, 3)
	p := newPass(a, topo, []ReceiverState{
		{Node: 2, Session: 0, LossRate: 0.20, Bytes: 500},
		{Node: 3, Session: 0, LossRate: 0.22, Bytes: 500},
		{Node: 4, Session: 0, LossRate: 0.18, Bytes: 500},
	})
	a.computeCongestion(p)
	if !p.congestAt(1) {
		t.Error("internal node with uniformly lossy children not congested")
	}
}

func TestCongestionInternalDissimilarChildren(t *testing.T) {
	cfg := testConfig()
	cfg.SimilarBand = 0.2 // tight band
	a := New(cfg, nil)
	topo := star(0, 3)
	// A healthy sibling branch keeps the root itself uncongested, so node
	// 1's state reflects only the similarity rule.
	topo.Parent[9] = 0
	topo.Children[0] = append(topo.Children[0], 9)
	topo.Receivers[9] = true
	// All of node 1's children above threshold, but wildly different:
	// points at separate downstream bottlenecks, not the shared link.
	p := newPass(a, topo, []ReceiverState{
		{Node: 2, Session: 0, LossRate: 0.06, Bytes: 500},
		{Node: 3, Session: 0, LossRate: 0.30, Bytes: 500},
		{Node: 4, Session: 0, LossRate: 0.90, Bytes: 500},
		{Node: 9, Session: 0, LossRate: 0.0, Bytes: 500},
	})
	a.computeCongestion(p)
	if p.congestAt(1) {
		t.Error("internal congested despite dissimilar child losses")
	}
}

func TestCongestionPropagatesFromParent(t *testing.T) {
	a := New(testConfig(), nil)
	// chain 0 -> 1 -> 2 -> 3(receiver); plus a second receiver branch at
	// 1 so node 1 is internal with two congested children.
	topo := &Topology{
		Session: 0, Root: 0,
		Parent:    map[NodeID]NodeID{1: 0, 2: 1, 3: 2, 4: 1},
		Children:  map[NodeID][]NodeID{0: {1}, 1: {2, 4}, 2: {3}},
		Receivers: map[NodeID]bool{3: true, 4: true},
	}
	p := newPass(a, topo, []ReceiverState{
		{Node: 3, Session: 0, LossRate: 0.20, Bytes: 100},
		{Node: 4, Session: 0, LossRate: 0.21, Bytes: 100},
	})
	a.computeCongestion(p)
	if !p.congestAt(1) {
		t.Fatal("node 1 should be congested (similar lossy children)")
	}
	// Node 2 is internal: congested because its parent 1 is.
	if !p.congestAt(2) {
		t.Error("internal child of congested parent not congested")
	}
}

func TestCongestionUnreportedLeafAssumedClean(t *testing.T) {
	a := New(testConfig(), nil)
	topo := star(0, 2)
	p := newPass(a, topo, []ReceiverState{
		{Node: 2, Session: 0, LossRate: 0.50, Bytes: 100},
		// leaf 3 never reported
	})
	a.computeCongestion(p)
	if p.congestAt(3) {
		t.Error("silent leaf treated as congested")
	}
	if p.lossAt(1) != 0 {
		t.Errorf("internal min loss = %g, want 0 (silent child)", p.lossAt(1))
	}
}

func TestCapacityInfiniteUntilLoss(t *testing.T) {
	a := New(testConfig(), nil)
	topo := chain(0, 3)
	p := newPass(a, topo, []ReceiverState{{Node: 2, Session: 0, LossRate: 0.0, Bytes: 100_000, Level: 3}})
	a.computeCongestion(p)
	a.estimateCapacities(0, []*sessionPass{p})
	if _, ok := a.CapacityEstimate(Edge{From: 1, To: 2}); ok {
		t.Error("capacity pinned without loss")
	}
}

func TestCapacityPinnedOnLoss(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	// Two similarly lossy receivers behind node 1: the shared edge 0->1 is
	// pinnable (correlated losses localize the bottleneck).
	topo := star(0, 2)
	p := newPass(a, topo, []ReceiverState{
		{Node: 2, Session: 0, LossRate: 0.20, Bytes: 120_000, Level: 4},
		{Node: 3, Session: 0, LossRate: 0.21, Bytes: 110_000, Level: 4},
	})
	a.computeCongestion(p)
	a.estimateCapacities(0, []*sessionPass{p})
	got, ok := a.CapacityEstimate(Edge{From: 0, To: 1})
	if !ok {
		t.Fatal("capacity not pinned despite correlated loss")
	}
	// Observed = max bytes any receiver in the subtree got through 0->1.
	want := 120_000.0 * 8 / cfg.Interval.Seconds()
	if math.Abs(got-want) > 1 {
		t.Errorf("capacity = %g, want %g", got, want)
	}
}

func TestCapacityNotPinnedForSingleObserver(t *testing.T) {
	// One receiver behind a chain: its loss cannot be localized to any
	// edge, so nothing is pinned (single-session bottlenecks are handled
	// by the demand table).
	a := New(testConfig(), nil)
	topo := chain(0, 3)
	p := newPass(a, topo, []ReceiverState{{Node: 2, Session: 0, LossRate: 0.30, Bytes: 120_000, Level: 4}})
	a.computeCongestion(p)
	a.estimateCapacities(0, []*sessionPass{p})
	for _, e := range []Edge{{0, 1}, {1, 2}} {
		if _, ok := a.CapacityEstimate(e); ok {
			t.Errorf("edge %v pinned with a single observer", e)
		}
	}
}

func TestCapacityGrowthAndReset(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	topo := star(0, 2)
	lossy := []ReceiverState{
		{Node: 2, Session: 0, LossRate: 0.2, Bytes: 100_000, Level: 4},
		{Node: 3, Session: 0, LossRate: 0.21, Bytes: 90_000, Level: 4},
	}
	clean := []ReceiverState{
		{Node: 2, Session: 0, LossRate: 0, Bytes: 100_000, Level: 4},
		{Node: 3, Session: 0, LossRate: 0, Bytes: 90_000, Level: 4},
	}
	e := Edge{From: 0, To: 1}

	p := newPass(a, topo, lossy)
	a.computeCongestion(p)
	a.estimateCapacities(0, []*sessionPass{p})
	c0, ok := a.CapacityEstimate(e)
	if !ok {
		t.Fatal("not pinned")
	}

	// Next interval, no loss: estimate grows by CapacityGrowth.
	p2 := newPass(a, topo, clean)
	a.computeCongestion(p2)
	a.estimateCapacities(cfg.Interval, []*sessionPass{p2})
	c1, ok := a.CapacityEstimate(e)
	if !ok {
		t.Fatal("estimate vanished")
	}
	if math.Abs(c1-c0*(1+cfg.CapacityGrowth)) > 1e-6*c0 {
		t.Errorf("growth: %g -> %g, want factor %g", c0, c1, 1+cfg.CapacityGrowth)
	}

	// The estimate expires back to infinity after at most 1.5x the reset
	// period (per-link jitter randomizes the exact instant).
	p3 := newPass(a, topo, clean)
	a.computeCongestion(p3)
	a.estimateCapacities(cfg.CapacityResetPeriod*2, []*sessionPass{p3})
	if _, ok := a.CapacityEstimate(e); ok {
		t.Error("estimate survived well past the reset horizon")
	}
}

func TestCapacityNotPinnedWhenOneSessionHealthy(t *testing.T) {
	a := New(testConfig(), nil)
	// Two sessions share edge 0->1; only session 0 is losing (its own
	// downstream problem) — the shared link must stay infinite.
	t0 := chain(0, 3)
	t1 := chain(1, 3)
	p0 := newPass(a, t0, []ReceiverState{{Node: 2, Session: 0, LossRate: 0.30, Bytes: 50_000, Level: 4}})
	p1 := newPass(a, t1, []ReceiverState{{Node: 2, Session: 1, LossRate: 0.01, Bytes: 90_000, Level: 4}})
	a.computeCongestion(p0)
	a.computeCongestion(p1)
	a.estimateCapacities(0, []*sessionPass{p0, p1})
	if _, ok := a.CapacityEstimate(Edge{From: 0, To: 1}); ok {
		t.Error("shared link pinned while one session is healthy")
	}
}

func TestCapacitySharedLinkSumsSessions(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	t0 := chain(0, 3)
	t1 := chain(1, 3)
	p0 := newPass(a, t0, []ReceiverState{{Node: 2, Session: 0, LossRate: 0.30, Bytes: 50_000, Level: 4}})
	p1 := newPass(a, t1, []ReceiverState{{Node: 2, Session: 1, LossRate: 0.25, Bytes: 70_000, Level: 4}})
	a.computeCongestion(p0)
	a.computeCongestion(p1)
	a.estimateCapacities(0, []*sessionPass{p0, p1})
	got, ok := a.CapacityEstimate(Edge{From: 0, To: 1})
	if !ok {
		t.Fatal("shared link not pinned with both sessions lossy")
	}
	want := (50_000 + 70_000) * 8.0 / cfg.Interval.Seconds()
	if math.Abs(got-want) > 1 {
		t.Errorf("capacity = %g, want %g", got, want)
	}
}

func TestBottleneckPropagation(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	topo := chain(0, 4) // 0->1->2->3
	a.links[Edge{From: 0, To: 1}] = &linkState{capacity: 1e6}
	a.links[Edge{From: 1, To: 2}] = &linkState{capacity: 200e3}
	a.links[Edge{From: 2, To: 3}] = &linkState{capacity: 500e3}
	p := newPass(a, topo, nil)
	a.computeBottlenecks(p)
	if p.bneckAt(3) != 200e3 {
		t.Errorf("bottleneck at leaf = %g, want 200e3 (min on path)", p.bneckAt(3))
	}
	if p.bneckAt(1) != 1e6 {
		t.Errorf("bottleneck at 1 = %g", p.bneckAt(1))
	}
	if !math.IsInf(p.bneckAt(0), 1) {
		t.Errorf("root bottleneck should be +inf")
	}
	if p.maxBWAt(0) != 200e3 {
		t.Errorf("maxBW at root = %g, want 200e3", p.maxBWAt(0))
	}
}

func TestBottleneckMaxOverChildren(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	topo := star(0, 2) // 0 -> 1 -> {2, 3}
	a.links[Edge{From: 1, To: 2}] = &linkState{capacity: 100e3}
	a.links[Edge{From: 1, To: 3}] = &linkState{capacity: 500e3}
	p := newPass(a, topo, nil)
	a.computeBottlenecks(p)
	if p.maxBWAt(1) != 500e3 {
		t.Errorf("maxBW at 1 = %g, want 500e3 (fastest child)", p.maxBWAt(1))
	}
	if p.maxBWAt(2) != 100e3 || p.maxBWAt(3) != 500e3 {
		t.Errorf("leaf maxBW = %g/%g", p.maxBWAt(2), p.maxBWAt(3))
	}
}

// Property: bottleneck bandwidth is non-increasing from root to leaf.
func TestQuickBottleneckMonotone(t *testing.T) {
	cfg := testConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(cfg, nil)
		n := rng.Intn(20) + 2
		topo := &Topology{Session: 0, Root: 0,
			Parent: map[NodeID]NodeID{}, Children: map[NodeID][]NodeID{}, Receivers: map[NodeID]bool{}}
		for i := 1; i < n; i++ {
			p := NodeID(rng.Intn(i))
			topo.Parent[NodeID(i)] = p
			topo.Children[p] = append(topo.Children[p], NodeID(i))
			if rng.Intn(2) == 0 {
				a.links[Edge{From: p, To: NodeID(i)}] = &linkState{capacity: float64(rng.Intn(900)+100) * 1e3}
			}
		}
		p := newPass(a, topo, nil)
		a.computeBottlenecks(p)
		for child, parent := range topo.Parent {
			if p.bneckAt(child) > p.bneckAt(parent) {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 200); err != nil {
		t.Fatal(err)
	}
}

func TestShareBandwidthProportional(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	// Sessions 0 and 1 share edge 0->1; session 0's subtree can take 4
	// layers, session 1's only 1 (a 32k downstream bottleneck).
	t0 := chain(0, 3)
	t1 := chain(1, 3)
	a.links[Edge{From: 0, To: 1}] = &linkState{capacity: 512e3}
	a.links[Edge{From: 1, To: 2}] = &linkState{capacity: math.Inf(1)}
	p0 := newPass(a, t0, []ReceiverState{{Node: 2, Session: 0, Level: 4, Bytes: 1}})
	p1 := newPass(a, t1, []ReceiverState{{Node: 2, Session: 1, Level: 1, Bytes: 1}})
	a.computeCongestion(p0)
	a.computeCongestion(p1)
	// Session 1's own path is pinched by a separate per-session edge: give
	// session 1 a tighter downstream link. Both sessions share 0->1 only.
	// For this unit test, constrain session 1 via its avail: re-pin the
	// shared edge and check proportionality of weights.
	shares := a.shareBandwidth([]*sessionPass{p0, p1})
	s0 := shares[shareKey{Edge{0, 1}, 0}]
	s1 := shares[shareKey{Edge{0, 1}, 1}]
	if s0 == 0 || s1 == 0 {
		t.Fatalf("missing shares: %v", shares)
	}
	// Both subtrees look identical here (no per-session constraint), so
	// shares must be equal and sum to the capacity.
	if math.Abs(s0-s1) > 1 {
		t.Errorf("equal sessions got unequal shares: %g vs %g", s0, s1)
	}
	if math.Abs(s0+s1-512e3) > 1 {
		t.Errorf("shares do not sum to capacity: %g", s0+s1)
	}
}

func TestShareBandwidthRespectsDownstreamBottleneck(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	// Shared edge 0->1 at 992k. Session 1 has a 32k bottleneck deeper
	// (edge 1->2 pinned in ITS topology only is impossible — edges are
	// physical) so model it via distinct leaf edges: session 0 leaf at 2,
	// session 1 leaf at 3.
	t0 := &Topology{Session: 0, Root: 0,
		Parent:    map[NodeID]NodeID{1: 0, 2: 1},
		Children:  map[NodeID][]NodeID{0: {1}, 1: {2}},
		Receivers: map[NodeID]bool{2: true}}
	t1 := &Topology{Session: 1, Root: 0,
		Parent:    map[NodeID]NodeID{1: 0, 3: 1},
		Children:  map[NodeID][]NodeID{0: {1}, 1: {3}},
		Receivers: map[NodeID]bool{3: true}}
	a.links[Edge{From: 0, To: 1}] = &linkState{capacity: 992e3}
	a.links[Edge{From: 1, To: 3}] = &linkState{capacity: 32e3} // session 1 pinched
	p0 := newPass(a, t0, []ReceiverState{{Node: 2, Session: 0, Level: 4, Bytes: 1}})
	p1 := newPass(a, t1, []ReceiverState{{Node: 3, Session: 1, Level: 1, Bytes: 1}})
	a.computeCongestion(p0)
	a.computeCongestion(p1)
	shares := a.shareBandwidth([]*sessionPass{p0, p1})
	s0 := shares[shareKey{Edge{0, 1}, 0}]
	s1 := shares[shareKey{Edge{0, 1}, 1}]
	if s0 <= s1 {
		t.Errorf("unconstrained session got no more than pinched one: %g vs %g", s0, s1)
	}
	if s1 < 32e3 {
		t.Errorf("session below base layer: %g", s1)
	}
	// Session 0's weight: min(992k - 1*32k, ...) = 960k usable -> 4 layers
	// (480k); session 1: 32k -> 1 layer. Weights 480:32 over 992k.
	want0 := 992e3 * 480.0 / 512.0
	if math.Abs(s0-want0) > 1 {
		t.Errorf("s0 = %g, want %g", s0, want0)
	}
}

func TestShareBandwidthSkipsUnsharedAndUnpinned(t *testing.T) {
	cfg := testConfig()
	a := New(cfg, nil)
	t0 := chain(0, 3)
	a.links[Edge{From: 0, To: 1}] = &linkState{capacity: 512e3}
	p0 := newPass(a, t0, []ReceiverState{{Node: 2, Session: 0, Level: 2, Bytes: 1}})
	a.computeCongestion(p0)
	shares := a.shareBandwidth([]*sessionPass{p0})
	if len(shares) != 0 {
		t.Errorf("single-session link produced shares: %v", shares)
	}
	// Shared but unpinned link: also no shares.
	t1 := chain(1, 3)
	p1 := newPass(a, t1, []ReceiverState{{Node: 2, Session: 1, Level: 2, Bytes: 1}})
	a.computeCongestion(p1)
	delete(a.links, Edge{From: 0, To: 1})
	shares = a.shareBandwidth([]*sessionPass{p0, p1})
	if len(shares) != 0 {
		t.Errorf("unpinned shared link produced shares: %v", shares)
	}
}

// quickCheck runs a property with a bounded count.
func quickCheck(f func(int64) bool, n int) error {
	for i := 0; i < n; i++ {
		if !f(int64(i * 7919)) {
			return &quickError{seed: int64(i * 7919)}
		}
	}
	return nil
}

type quickError struct{ seed int64 }

func (e *quickError) Error() string { return "property failed at seed " + sim.Time(e.seed).String() }
