package core

import "math"

// computeBottlenecks implements stage 3. Top-down, each node's bottleneck
// bandwidth is the minimum estimated capacity on its path from the source.
// Bottom-up, each node's "maximum bandwidth it can handle" is the maximum
// bottleneck over its children — a parent serving a fast subtree and a slow
// subtree must itself carry what the fast subtree can take.
func (a *Algorithm) computeBottlenecks(p *sessionPass) {
	for i := range p.nodes { // top-down
		par := p.parent[i]
		if par < 0 {
			p.bneck[i] = math.Inf(1)
			continue
		}
		cap := math.Inf(1)
		if ls := a.links[Edge{From: p.nodes[par], To: p.nodes[i]}]; ls != nil {
			cap = ls.capacity
		}
		p.bneck[i] = math.Min(p.bneck[par], cap)
	}
	for i := int32(len(p.nodes)) - 1; i >= 0; i-- { // bottom-up
		kids := p.children(i)
		if len(kids) == 0 {
			p.maxBW[i] = p.bneck[i]
			continue
		}
		max := 0.0
		for _, c := range kids {
			if p.maxBW[c] > max {
				max = p.maxBW[c]
			}
		}
		// A transit node with its own receiver can itself demand up to its
		// bottleneck.
		if p.recv[i] && p.bneck[i] > max {
			max = p.bneck[i]
		}
		p.maxBW[i] = max
	}
}
