package core

import "math"

// computeBottlenecks implements stage 3. Top-down, each node's bottleneck
// bandwidth is the minimum estimated capacity on its path from the source.
// Bottom-up, each node's "maximum bandwidth it can handle" is the maximum
// bottleneck over its children — a parent serving a fast subtree and a slow
// subtree must itself carry what the fast subtree can take.
func (a *Algorithm) computeBottlenecks(p *sessionPass) {
	for _, n := range p.order { // top-down
		parent, ok := p.topo.Parent[n]
		if !ok {
			p.bneck[n] = math.Inf(1)
			continue
		}
		cap := math.Inf(1)
		if ls := a.links[Edge{From: parent, To: n}]; ls != nil {
			cap = ls.capacity
		}
		p.bneck[n] = math.Min(p.bneck[parent], cap)
	}
	for i := len(p.order) - 1; i >= 0; i-- { // bottom-up
		n := p.order[i]
		kids := p.topo.Children[n]
		if len(kids) == 0 {
			p.maxBW[n] = p.bneck[n]
			continue
		}
		max := 0.0
		for _, c := range kids {
			if p.maxBW[c] > max {
				max = p.maxBW[c]
			}
		}
		// A transit node with its own receiver can itself demand up to its
		// bottleneck.
		if p.topo.Receivers[n] && p.bneck[n] > max {
			max = p.bneck[n]
		}
		p.maxBW[n] = max
	}
}
