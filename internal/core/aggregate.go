package core

import (
	"fmt"
	"strings"
)

// SubtreeSummary is the aggregate-aware half of the algorithm's input: the
// compact congestion summary of one controller-adjacent subtree, distilled
// from an in-network report.Aggregate. The per-receiver entries still arrive
// through Input.Reports (the decision math is byte-identical to the
// unaggregated path); the summaries are the O(branching) view a hierarchical
// control plane reads without walking receivers — which subtree is worst,
// how much it pulls, and how its losses distribute over levels.
type SubtreeSummary struct {
	Session   int
	Origin    NodeID // tree node whose flush produced the summary
	Receivers int    // distinct receivers folded in
	Reports   int64  // loss reports represented
	Bytes     int64  // bytes received across the subtree
	MeanLoss  float64
	MaxLoss   float64
	Worst     NodeID // receiver that reported MaxLoss
}

func (s SubtreeSummary) String() string {
	return fmt.Sprintf("subtree s=%d origin=%d rx=%d reports=%d bytes=%d meanloss=%.3f maxloss=%.3f@%d",
		s.Session, s.Origin, s.Receivers, s.Reports, s.Bytes, s.MeanLoss, s.MaxLoss, s.Worst)
}

// Subtrees returns the subtree summaries the most recent Step consumed
// (nil on the unaggregated path). The slice is a copy.
func (a *Algorithm) Subtrees() []SubtreeSummary {
	return append([]SubtreeSummary(nil), a.lastSubtrees...)
}

// FormatSubtrees renders subtree summaries, one line each.
func FormatSubtrees(subs []SubtreeSummary) string {
	var b strings.Builder
	for _, s := range subs {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}
