package core

import "testing"

// TestLeafActionTable checks every cell of Table I for leaf nodes — 8
// histories x 3 BW relations.
func TestLeafActionTable(t *testing.T) {
	cases := []struct {
		hist uint8
		rel  BWRel
		want Action
	}{
		// BW Lesser.
		{0, BWLesser, ActAdd},
		{1, BWLesser, ActDropIfHighLoss},
		{2, BWLesser, ActMaintain},
		{3, BWLesser, ActReduceToSupplyOld},
		{4, BWLesser, ActMaintain},
		{5, BWLesser, ActMaintain},
		{6, BWLesser, ActMaintain},
		{7, BWLesser, ActHalveSupplyOld},
		// BW Equal.
		{0, BWEqual, ActAdd},
		{1, BWEqual, ActMaintain},
		{2, BWEqual, ActMaintain},
		{3, BWEqual, ActHalveSupplyOld},
		{4, BWEqual, ActAdd},
		{5, BWEqual, ActMaintain},
		{6, BWEqual, ActMaintain},
		{7, BWEqual, ActHalveSupplyOld},
		// BW Greater.
		{0, BWGreater, ActAdd},
		{1, BWGreater, ActMaintain},
		{2, BWGreater, ActMaintain},
		{3, BWGreater, ActHalveSupplyOldIfVeryHigh},
		{4, BWGreater, ActMaintain},
		{5, BWGreater, ActMaintain},
		{6, BWGreater, ActMaintain},
		{7, BWGreater, ActHalveSupplyOldIfVeryHigh},
	}
	for _, c := range cases {
		if got := LeafAction(c.hist, c.rel); got != c.want {
			t.Errorf("LeafAction(%d, %v) = %v, want %v", c.hist, c.rel, got, c.want)
		}
	}
}

// TestInternalActionTable checks every cell of Table I for internal nodes.
func TestInternalActionTable(t *testing.T) {
	cases := []struct {
		hist uint8
		rel  BWRel
		want Action
	}{
		{0, BWLesser, ActAccept},
		{0, BWEqual, ActAccept},
		{0, BWGreater, ActAccept},
		{4, BWLesser, ActAccept},
		{4, BWEqual, ActAccept},
		{4, BWGreater, ActAccept},
		{1, BWGreater, ActHalveSupplyRecent},
		{5, BWGreater, ActHalveSupplyRecent},
		{7, BWGreater, ActHalveSupplyRecent},
		{1, BWEqual, ActHalveSupplyOld},
		{1, BWLesser, ActHalveSupplyOld},
		{5, BWEqual, ActHalveSupplyOld},
		{5, BWLesser, ActHalveSupplyOld},
		{7, BWEqual, ActHalveSupplyOld},
		{7, BWLesser, ActHalveSupplyOld},
		{2, BWLesser, ActMaintain},
		{2, BWEqual, ActMaintain},
		{2, BWGreater, ActMaintain},
		{3, BWLesser, ActMaintain},
		{3, BWEqual, ActMaintain},
		{3, BWGreater, ActMaintain},
		{6, BWLesser, ActMaintain},
		{6, BWEqual, ActMaintain},
		{6, BWGreater, ActMaintain},
	}
	for _, c := range cases {
		if got := InternalAction(c.hist, c.rel); got != c.want {
			t.Errorf("InternalAction(%d, %v) = %v, want %v", c.hist, c.rel, got, c.want)
		}
	}
}

func TestTableHistoryMasked(t *testing.T) {
	// Histories beyond 3 bits must be masked, not misclassified.
	if LeafAction(8, BWLesser) != LeafAction(0, BWLesser) {
		t.Error("hist 8 should behave as hist 0")
	}
	if InternalAction(15, BWEqual) != InternalAction(7, BWEqual) {
		t.Error("hist 15 should behave as hist 7")
	}
}

func TestCompareBW(t *testing.T) {
	cases := []struct {
		earlier, later int64
		want           BWRel
	}{
		{0, 0, BWEqual},
		{100, 100, BWEqual},
		{100, 104, BWEqual},   // within 5%
		{104, 100, BWEqual},   // within 5%
		{100, 200, BWLesser},  // ramping up
		{200, 100, BWGreater}, // declining
		{0, 50, BWLesser},
		{50, 0, BWGreater},
	}
	for _, c := range cases {
		if got := CompareBW(c.earlier, c.later, 0.05); got != c.want {
			t.Errorf("CompareBW(%d, %d) = %v, want %v", c.earlier, c.later, got, c.want)
		}
	}
}

func TestCompareBWZeroTolerance(t *testing.T) {
	if CompareBW(100, 101, 0) != BWLesser {
		t.Error("zero tolerance must distinguish 100 vs 101")
	}
}

func TestActionStringsAndBackoff(t *testing.T) {
	all := []Action{ActMaintain, ActAdd, ActDropIfHighLoss, ActReduceToSupplyOld,
		ActHalveSupplyOld, ActHalveSupplyOldIfVeryHigh, ActHalveSupplyRecent, ActAccept}
	seen := map[string]bool{}
	for _, a := range all {
		s := a.String()
		if s == "" || s == "unknown" {
			t.Errorf("Action %d has bad String %q", a, s)
		}
		if seen[s] {
			t.Errorf("duplicate Action String %q", s)
		}
		seen[s] = true
	}
	if Action(99).String() != "unknown" {
		t.Error("out-of-range action String")
	}
	if !ActDropIfHighLoss.SetsBackoff() || !ActHalveSupplyOld.SetsBackoff() {
		t.Error("backoff-setting cells not flagged")
	}
	if ActMaintain.SetsBackoff() || ActAdd.SetsBackoff() {
		t.Error("non-backoff cells flagged")
	}
	for _, r := range []BWRel{BWLesser, BWEqual, BWGreater} {
		if r.String() == "" {
			t.Error("empty BWRel String")
		}
	}
}
