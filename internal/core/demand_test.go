package core

import (
	"testing"

	"toposense/internal/sim"
)

// These tests exercise the stage-5 demand/supply machinery directly through
// Step with hand-built inputs, checking the coordination rules the paper
// describes in prose: defer-to-congested-parent, back-off on the highest
// dropped layer, the reduction cool-down, and supply clamping.

// twoLeafTopo: root 0 -> hub 1 -> receivers 2 and 3.
func twoLeafTopo() *Topology { return star(0, 2) }

func TestDemandDeferToCongestedParent(t *testing.T) {
	// Both leaves heavily lossy with similar rates: the hub becomes
	// congested and acts; the leaves must NOT each take their own cut on
	// top of the hub's (which would double-reduce).
	cfg := testConfig()
	cfg.DisableCooldown = true // isolate the defer rule
	st := newStepper(cfg)
	topo := twoLeafTopo()
	reports := func(loss float64, bytes int64) []ReceiverState {
		return []ReceiverState{
			{Node: 2, Session: 0, Level: 4, LossRate: loss, Bytes: bytes},
			{Node: 3, Session: 0, Level: 4, LossRate: loss * 1.02, Bytes: bytes},
		}
	}
	st.step([]*Topology{topo}, reports(0, 120_000))
	st.step([]*Topology{topo}, reports(0, 120_000))
	// Three congested intervals: history reaches 7 at the hub.
	var last []Suggestion
	for i := 0; i < 3; i++ {
		last = st.step([]*Topology{topo}, reports(0.30, 120_000))
	}
	l2 := suggestionFor(last, 0, 2)
	l3 := suggestionFor(last, 0, 3)
	// Coordinated single reduction: both leaves get the same level and it
	// is a halving (4 -> 3 at most via cum(4)/2=240k -> 3), not a cascade
	// to 1.
	if l2 != l3 {
		t.Errorf("uncoordinated cuts: %d vs %d", l2, l3)
	}
	if l2 < 2 || l2 >= 4 {
		t.Errorf("reduction to %d, want one coordinated halving (2..3)", l2)
	}
}

func TestDemandBackoffArmsOnlyHighestLayer(t *testing.T) {
	cfg := testConfig()
	cfg.BackoffMin = 100 * sim.Second
	cfg.BackoffMax = 100 * sim.Second
	cfg.DisableCooldown = true
	st := newStepper(cfg)
	topo := chain(0, 3)
	// Force a two-layer reduction via hist 7 + Equal (halve old supply).
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0, Bytes: 100_000}})
	for i := 0; i < 4; i++ {
		st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0.30, Bytes: 100_000}})
	}
	if st.a.Backoffs() == 0 {
		t.Fatal("no backoffs armed")
	}
	// The receiver dropped below 4; only the topmost dropped layer should
	// be barred. Clean reports: the suggestion must climb again (lower
	// layers are not barred) but never reach past the barred layer 4.
	maxSeen := 0
	level := 2
	for i := 0; i < 6; i++ {
		bytes := int64(st.a.Config().CumRate(level) / 8 * st.a.Config().Interval.Seconds())
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: level, LossRate: 0, Bytes: bytes},
		})
		got := suggestionFor(sgs, 0, 2)
		if got > maxSeen {
			maxSeen = got
		}
		level = got
	}
	if maxSeen < 3 {
		t.Errorf("climb blocked below the barred layer: max %d", maxSeen)
	}
	if maxSeen >= 4 {
		t.Errorf("barred layer re-added during back-off: max %d", maxSeen)
	}
}

func TestDemandCooldownPreventsCompoundCuts(t *testing.T) {
	// With the cool-down enabled, three consecutive lossy intervals
	// produce at most one cut within the window, not a cascade.
	withCooldown := minLevelAfterCrash(t, false)
	withoutCooldown := minLevelAfterCrash(t, true)
	if withoutCooldown > withCooldown {
		t.Errorf("cooldown made cuts deeper: %d (on) vs %d (off)", withCooldown, withoutCooldown)
	}
	if withCooldown <= 1 && withoutCooldown > 1 {
		t.Errorf("cooldown failed to prevent the cascade: reached %d", withCooldown)
	}
}

func minLevelAfterCrash(t *testing.T, disable bool) int {
	t.Helper()
	cfg := testConfig()
	cfg.DisableCooldown = disable
	st := newStepper(cfg)
	topo := twoLeafTopo()
	reports := func(level int, loss float64, bytes int64) []ReceiverState {
		return []ReceiverState{
			{Node: 2, Session: 0, Level: level, LossRate: loss, Bytes: bytes},
			{Node: 3, Session: 0, Level: level, LossRate: loss * 1.02, Bytes: bytes},
		}
	}
	st.step([]*Topology{topo}, reports(5, 0, 200_000))
	st.step([]*Topology{topo}, reports(5, 0, 200_000))
	min := 6
	level := 5
	for i := 0; i < 4; i++ {
		sgs := st.step([]*Topology{topo}, reports(level, 0.4, 100_000))
		got := suggestionFor(sgs, 0, 2)
		if got < min {
			min = got
		}
		level = got
	}
	return min
}

func TestDemandUnknownActionDefaultsSafe(t *testing.T) {
	// Feeding an out-of-range Action through the internal helpers must
	// not panic and must behave like maintain/accept.
	a := New(testConfig(), nil)
	p := newPass(a, chain(0, 3), nil)
	if got := a.leafDemand(0, p, 2, 3, nil, Action(99)); got != 3 {
		t.Errorf("leaf unknown action -> %d, want 3", got)
	}
	if got := a.internalDemand(0, p, 1, 3, 4, nil, Action(99)); got != 4 {
		t.Errorf("internal unknown action -> %d, want agg 4", got)
	}
}

func TestClampLevel(t *testing.T) {
	cases := []struct {
		target, current, want int
	}{
		{0, 4, 1},  // never below base layer
		{-3, 4, 1}, // never below base layer
		{2, 4, 2},
		{5, 4, 4}, // a reduction never raises
		{3, 0, 0}, // nothing subscribed: nothing to reduce
	}
	for _, c := range cases {
		if got := clampLevel(c.target, c.current); got != c.want {
			t.Errorf("clampLevel(%d, %d) = %d, want %d", c.target, c.current, got, c.want)
		}
	}
}

func TestHalfLevel(t *testing.T) {
	a := New(testConfig(), nil)
	// cum(4) = 480k; half = 240k -> level 3 (cum(3)=224k).
	if got := a.halfLevel(4); got != 3 {
		t.Errorf("halfLevel(4) = %d, want 3", got)
	}
	// cum(1) = 32k; half = 16k -> level 0.
	if got := a.halfLevel(1); got != 0 {
		t.Errorf("halfLevel(1) = %d, want 0", got)
	}
	if got := a.halfLevel(0); got != 0 {
		t.Errorf("halfLevel(0) = %d, want 0", got)
	}
}

func TestSuppliesHelper(t *testing.T) {
	if o, r := supplies(nil); o != 0 || r != 0 {
		t.Errorf("nil state supplies = %d, %d", o, r)
	}
	st := &nodeState{supplyPrev: 3, supplyPrev2: 5}
	if o, r := supplies(st); o != 5 || r != 3 {
		t.Errorf("supplies = %d, %d", o, r)
	}
}

func TestDemandDisableBackoffAblation(t *testing.T) {
	cfg := testConfig()
	cfg.DisableBackoff = true
	st := newStepper(cfg)
	topo := chain(0, 3)
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0, Bytes: 100_000}})
	for i := 0; i < 4; i++ {
		st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0.30, Bytes: 100_000}})
	}
	if st.a.Backoffs() != 0 {
		t.Errorf("backoffs armed despite DisableBackoff: %d", st.a.Backoffs())
	}
}

func TestDemandNewReceiverZeroLevelBootstrap(t *testing.T) {
	// A leaf that reports level 0 (just registered, nothing joined yet)
	// must be pushed to at least the base layer.
	st := newStepper(testConfig())
	topo := chain(0, 3)
	sgs := st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 0, LossRate: 0, Bytes: 0}})
	if got := suggestionFor(sgs, 0, 2); got < 1 {
		t.Errorf("bootstrap suggestion %d", got)
	}
}

func TestSupplyNeverExceedsDemandOrParent(t *testing.T) {
	// White-box invariant sweep: run several intervals with mixed loss
	// and assert, inside a custom step, that supply <= demand and
	// supply[child] <= max(supply[parent], 1) throughout the tree.
	a := New(testConfig(), nil)
	topo := star(0, 3)
	reports := []ReceiverState{
		{Node: 2, Session: 0, Level: 3, LossRate: 0.0, Bytes: 80_000},
		{Node: 3, Session: 0, Level: 4, LossRate: 0.2, Bytes: 60_000},
		{Node: 4, Session: 0, Level: 2, LossRate: 0.5, Bytes: 20_000},
	}
	for i := 1; i <= 6; i++ {
		now := sim.Time(i) * a.cfg.Interval
		p := newPass(a, topo, reports)
		a.computeCongestion(p)
		a.estimateCapacities(now, []*sessionPass{p})
		a.computeBottlenecks(p)
		shares := a.shareBandwidth([]*sessionPass{p})
		a.computeDemand(now, p)
		a.allocateSupply(p, shares)
		for _, n := range p.nodes {
			if p.supplyAt(n) > p.demandAt(n) && !(p.topo.Receivers[n] && p.supplyAt(n) == 1) {
				t.Fatalf("interval %d: supply %d > demand %d at node %d", i, p.supplyAt(n), p.demandAt(n), n)
			}
			if parent, ok := p.topo.Parent[n]; ok {
				limit := p.supplyAt(parent)
				if limit < 1 {
					limit = 1 // receivers keep the base layer
				}
				if p.supplyAt(n) > limit {
					t.Fatalf("interval %d: child %d supply %d exceeds parent %d supply %d",
						i, n, p.supplyAt(n), parent, p.supplyAt(parent))
				}
			}
		}
		a.rollState(now, []*sessionPass{p})
	}
}
