package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds a linear topology 0 -> 1 -> ... -> n-1 with the last node a
// receiver.
func chain(session, n int) *Topology {
	t := &Topology{
		Session:   session,
		Root:      0,
		Parent:    map[NodeID]NodeID{},
		Children:  map[NodeID][]NodeID{},
		Receivers: map[NodeID]bool{},
	}
	for i := 1; i < n; i++ {
		t.Parent[NodeID(i)] = NodeID(i - 1)
		t.Children[NodeID(i-1)] = []NodeID{NodeID(i)}
	}
	t.Receivers[NodeID(n-1)] = true
	return t
}

// star builds root 0 with an intermediate node 1 and k receiver leaves
// 2..k+1 under it.
func star(session, k int) *Topology {
	t := &Topology{
		Session:   session,
		Root:      0,
		Parent:    map[NodeID]NodeID{1: 0},
		Children:  map[NodeID][]NodeID{0: {1}},
		Receivers: map[NodeID]bool{},
	}
	for i := 0; i < k; i++ {
		leaf := NodeID(2 + i)
		t.Parent[leaf] = 1
		t.Children[1] = append(t.Children[1], leaf)
		t.Receivers[leaf] = true
	}
	return t
}

func TestValidateGoodTrees(t *testing.T) {
	for _, topo := range []*Topology{chain(0, 1), chain(0, 5), star(0, 4)} {
		if err := topo.Validate(); err != nil {
			t.Errorf("valid tree rejected: %v", err)
		}
	}
}

func TestValidateRejectsNoRoot(t *testing.T) {
	topo := chain(0, 3)
	topo.Root = NodeIDNone
	if topo.Validate() == nil {
		t.Error("no-root tree accepted")
	}
}

func TestValidateRejectsRootWithParent(t *testing.T) {
	topo := chain(0, 3)
	topo.Parent[0] = 2
	if topo.Validate() == nil {
		t.Error("root-with-parent accepted")
	}
}

func TestValidateRejectsAsymmetry(t *testing.T) {
	topo := chain(0, 3)
	topo.Parent[9] = 0 // 9 claims parent 0, but 0 does not list it
	if topo.Validate() == nil {
		t.Error("parent/child asymmetry accepted")
	}
	topo2 := chain(0, 3)
	topo2.Children[2] = append(topo2.Children[2], 1) // cycle back to 1
	if topo2.Validate() == nil {
		t.Error("cycle accepted")
	}
}

func TestValidateRejectsUnreachable(t *testing.T) {
	topo := chain(0, 3)
	// Island: 5 -> 6 disconnected from the root.
	topo.Parent[6] = 5
	topo.Children[5] = []NodeID{6}
	if topo.Validate() == nil {
		t.Error("unreachable island accepted")
	}
}

func TestBFSOrderParentsFirst(t *testing.T) {
	topo := star(0, 5)
	order := topo.BFSOrder()
	pos := map[NodeID]int{}
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != 7 {
		t.Fatalf("order %v", order)
	}
	for child, parent := range topo.Parent {
		if pos[parent] >= pos[child] {
			t.Errorf("parent %d after child %d in %v", parent, child, order)
		}
	}
	if order[0] != topo.Root {
		t.Errorf("root not first: %v", order)
	}
}

// Property: random trees (built by attaching each node to a random earlier
// node) validate and BFS order visits every node exactly once, parents
// before children.
func TestQuickRandomTreeInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%30) + 1
		rng := rand.New(rand.NewSource(seed))
		topo := &Topology{
			Session:   0,
			Root:      0,
			Parent:    map[NodeID]NodeID{},
			Children:  map[NodeID][]NodeID{},
			Receivers: map[NodeID]bool{},
		}
		for i := 1; i < n; i++ {
			p := NodeID(rng.Intn(i))
			topo.Parent[NodeID(i)] = p
			topo.Children[p] = append(topo.Children[p], NodeID(i))
		}
		if err := topo.Validate(); err != nil {
			return false
		}
		order := topo.BFSOrder()
		if len(order) != n {
			return false
		}
		pos := map[NodeID]int{}
		for i, id := range order {
			if _, dup := pos[id]; dup {
				return false
			}
			pos[id] = i
		}
		for child, parent := range topo.Parent {
			if pos[parent] >= pos[child] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsLeafAndEdgeTo(t *testing.T) {
	topo := star(0, 2)
	if !topo.IsLeaf(2) || topo.IsLeaf(1) || topo.IsLeaf(0) {
		t.Error("IsLeaf misclassifies")
	}
	e, ok := topo.EdgeTo(2)
	if !ok || e.From != 1 || e.To != 2 {
		t.Errorf("EdgeTo(2) = %v, %v", e, ok)
	}
	if _, ok := topo.EdgeTo(0); ok {
		t.Error("root has an incoming edge")
	}
	if e.String() != "1->2" {
		t.Errorf("Edge.String = %q", e.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := NewConfig([]float64{32e3, 64e3})
	if c.PThreshold != DefaultPThreshold || c.Interval != DefaultInterval {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d", c.MaxLevel())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{LayerRates: []float64{0}},
		{LayerRates: []float64{-1}},
		{LayerRates: []float64{1}, PThreshold: 2},
		{LayerRates: []float64{1}, PThreshold: 0.1, EtaSimilar: 1.5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigNormalizePanicsOnEmptyRates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Config
	c.Normalize()
}

func TestCumRateAndLevelFor(t *testing.T) {
	c := NewConfig([]float64{32e3, 64e3, 128e3, 256e3})
	if c.CumRate(0) != 0 || c.CumRate(2) != 96e3 || c.CumRate(4) != 480e3 {
		t.Error("CumRate wrong")
	}
	if c.CumRate(99) != 480e3 {
		t.Error("CumRate should saturate")
	}
	if c.LevelFor(500e3) != 4 || c.LevelFor(100e3) != 2 || c.LevelFor(0) != 0 {
		t.Error("LevelFor wrong")
	}
}

// Property: LevelFor and CumRate are inverses in the sense that
// CumRate(LevelFor(b)) <= b < CumRate(LevelFor(b)+1).
func TestQuickLevelForCumRate(t *testing.T) {
	c := NewConfig([]float64{32e3, 64e3, 128e3, 256e3, 512e3, 1024e3})
	f := func(kb uint16) bool {
		b := float64(kb) * 1000
		l := c.LevelFor(b)
		if c.CumRate(l) > b {
			return false
		}
		if l < c.MaxLevel() && c.CumRate(l+1) <= b {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
