package core

import "math"

// computeCongestion implements stage 1 of the algorithm: label every node
// of the session tree CONGESTED or NOT-CONGESTED, compute each node's loss
// rate bottom-up (an internal node's loss is the minimum of its children's
// — if every child must shed load, the parent's effective demand drops to
// the least-loaded child's level), and record the maximum bytes received by
// any receiver in each subtree (used later to estimate shared-link
// capacities). Also derives each node's current subscription level as the
// maximum over its subtree's receivers.
func (a *Algorithm) computeCongestion(p *sessionPass) {
	// Bottom-up: leaves first. BFS order puts every child after its parent,
	// so walking the local indices backwards visits children first.
	for i := int32(len(p.nodes)) - 1; i >= 0; i-- {
		kids := p.children(i)
		loss := math.Inf(1)
		var bytes int64
		level := 0
		for _, c := range kids {
			if p.loss[c] < loss {
				loss = p.loss[c]
			}
			if p.subBytes[c] > bytes {
				bytes = p.subBytes[c]
			}
			if p.level[c] > level {
				level = p.level[c]
			}
		}
		// A receiver attached at this node (leaf, or a transit host with a
		// local member) contributes like a virtual child.
		if r := p.report[i]; r != nil && p.recv[i] {
			if r.LossRate < loss {
				loss = r.LossRate
			}
			if r.Bytes > bytes {
				bytes = r.Bytes
			}
			if r.Level > level {
				level = r.Level
			}
		}
		if math.IsInf(loss, 1) {
			// No children and no report: a receiver node the controller has
			// not heard from yet. Assume no loss.
			loss = 0
		}
		p.loss[i] = loss
		p.subBytes[i] = bytes
		p.level[i] = level
		count := 0
		if p.recv[i] {
			count = 1
		}
		for _, c := range kids {
			count += p.recvCount[c]
		}
		p.recvCount[i] = count

		if len(kids) == 0 {
			// "A leaf node is congested if the packet loss rate at that
			// node is higher than a threshold."
			p.congest[i] = p.loss[i] > a.cfg.PThreshold
			continue
		}
		p.congest[i] = a.internalSelfCongested(p, i)
	}
	// Top-down: an internal node is also congested when its parent is.
	for i := range p.nodes {
		par := p.parent[i]
		if par < 0 {
			continue
		}
		if p.congest[par] && !p.isLeaf(int32(i)) {
			p.congest[i] = true
		}
	}
}

// internalSelfCongested applies the paper's rule: an internal node is
// congested (on its own account) when every child's loss exceeds
// p_threshold and at least η_similar of the children have losses close to
// the mean child loss — i.e. the children are losing together, pointing at
// the shared upstream link rather than at independent downstream
// bottlenecks.
func (a *Algorithm) internalSelfCongested(p *sessionPass, i int32) bool {
	kids := p.children(i)
	if len(kids) == 0 {
		return false
	}
	mean := 0.0
	for _, c := range kids {
		if p.loss[c] <= a.cfg.PThreshold {
			return false
		}
		mean += p.loss[c]
	}
	mean /= float64(len(kids))
	similar := 0
	for _, c := range kids {
		if math.Abs(p.loss[c]-mean) <= a.cfg.SimilarBand*mean {
			similar++
		}
	}
	return float64(similar) >= a.cfg.EtaSimilar*float64(len(kids))
}
