package core

import "math"

// computeCongestion implements stage 1 of the algorithm: label every node
// of the session tree CONGESTED or NOT-CONGESTED, compute each node's loss
// rate bottom-up (an internal node's loss is the minimum of its children's
// — if every child must shed load, the parent's effective demand drops to
// the least-loaded child's level), and record the maximum bytes received by
// any receiver in each subtree (used later to estimate shared-link
// capacities). Also derives each node's current subscription level as the
// maximum over its subtree's receivers.
func (a *Algorithm) computeCongestion(p *sessionPass) {
	order := p.order
	// Bottom-up: leaves first.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		kids := p.topo.Children[n]
		loss := math.Inf(1)
		var bytes int64
		level := 0
		for _, c := range kids {
			if p.loss[c] < loss {
				loss = p.loss[c]
			}
			if p.subBytes[c] > bytes {
				bytes = p.subBytes[c]
			}
			if p.level[c] > level {
				level = p.level[c]
			}
		}
		// A receiver attached at this node (leaf, or a transit host with a
		// local member) contributes like a virtual child.
		if r, ok := p.report[n]; ok && p.topo.Receivers[n] {
			if r.LossRate < loss {
				loss = r.LossRate
			}
			if r.Bytes > bytes {
				bytes = r.Bytes
			}
			if r.Level > level {
				level = r.Level
			}
		}
		if math.IsInf(loss, 1) {
			// No children and no report: a receiver node the controller has
			// not heard from yet. Assume no loss.
			loss = 0
		}
		p.loss[n] = loss
		p.subBytes[n] = bytes
		p.level[n] = level
		count := 0
		if p.topo.Receivers[n] {
			count = 1
		}
		for _, c := range kids {
			count += p.recvCount[c]
		}
		p.recvCount[n] = count

		if p.topo.IsLeaf(n) {
			// "A leaf node is congested if the packet loss rate at that
			// node is higher than a threshold."
			p.congest[n] = p.loss[n] > a.cfg.PThreshold
			continue
		}
		p.congest[n] = a.internalSelfCongested(p, n)
	}
	// Top-down: an internal node is also congested when its parent is.
	for _, n := range order {
		parent, ok := p.topo.Parent[n]
		if !ok {
			continue
		}
		if p.congest[parent] && !p.topo.IsLeaf(n) {
			p.congest[n] = true
		}
	}
}

// internalSelfCongested applies the paper's rule: an internal node is
// congested (on its own account) when every child's loss exceeds
// p_threshold and at least η_similar of the children have losses close to
// the mean child loss — i.e. the children are losing together, pointing at
// the shared upstream link rather than at independent downstream
// bottlenecks.
func (a *Algorithm) internalSelfCongested(p *sessionPass, n NodeID) bool {
	kids := p.topo.Children[n]
	if len(kids) == 0 {
		return false
	}
	mean := 0.0
	for _, c := range kids {
		if p.loss[c] <= a.cfg.PThreshold {
			return false
		}
		mean += p.loss[c]
	}
	mean /= float64(len(kids))
	similar := 0
	for _, c := range kids {
		if math.Abs(p.loss[c]-mean) <= a.cfg.SimilarBand*mean {
			similar++
		}
	}
	return float64(similar) >= a.cfg.EtaSimilar*float64(len(kids))
}
