package core

import (
	"fmt"
	"strings"

	"toposense/internal/sim"
)

// Decision records how one node was evaluated in one interval: the Table-I
// inputs (history, bandwidth relation), the chosen cell, and the resulting
// demand/supply. Enable with Algorithm.Explain = true; the records answer
// "why did the controller tell receiver X to drop?" — the kind of operator
// question a deployed controller must be able to answer.
type Decision struct {
	At        sim.Time
	Session   int
	Node      NodeID
	Leaf      bool
	Congested bool
	Hist      uint8
	Rel       BWRel
	Action    Action
	Deferred  bool // parent congested: action left to the subtree root
	Cooling   bool // reduction suppressed by the post-cut cool-down
	Level     int  // current subscription entering the interval
	Demand    int
	Supply    int
}

// String renders one decision on one line.
func (d Decision) String() string {
	kind := "leaf"
	if !d.Leaf {
		kind = "node"
	}
	flags := ""
	if d.Congested {
		flags += " CONGESTED"
	}
	if d.Deferred {
		flags += " deferred"
	}
	if d.Cooling {
		flags += " cooling"
	}
	return fmt.Sprintf("%9.1fs s%d %s %-3d hist=%03b rel=%-7s act=%-28s lvl=%d demand=%d supply=%d%s",
		d.At.Seconds(), d.Session, kind, d.Node, d.Hist, d.Rel, d.Action, d.Level, d.Demand, d.Supply, flags)
}

// explainState buffers the most recent step's decisions.
type explainState struct {
	decisions []Decision
}

// EnableExplain turns on decision recording (records the most recent Step).
func (a *Algorithm) EnableExplain() {
	if a.explain == nil {
		a.explain = &explainState{}
	}
}

// LastDecisions returns the decisions of the most recent Step, sorted in
// evaluation (bottom-up) order per session. Nil when explain is off.
func (a *Algorithm) LastDecisions() []Decision {
	if a.explain == nil {
		return nil
	}
	return append([]Decision(nil), a.explain.decisions...)
}

// FormatDecisions renders a decision list, one line each.
func FormatDecisions(ds []Decision) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// record appends a decision when explain is enabled.
func (a *Algorithm) record(d Decision) {
	if a.explain != nil {
		a.explain.decisions = append(a.explain.decisions, d)
	}
}

// resetExplain clears the buffer at the start of a step.
func (a *Algorithm) resetExplain() {
	if a.explain != nil {
		a.explain.decisions = a.explain.decisions[:0]
	}
}
