package core

import (
	"math/rand"
	"testing"

	"toposense/internal/sim"
)

// stepper drives an Algorithm over synthetic intervals.
type stepper struct {
	a   *Algorithm
	now sim.Time
}

func newStepper(cfg Config) *stepper {
	return &stepper{a: New(cfg, rand.New(rand.NewSource(5)))}
}

func (s *stepper) step(topos []*Topology, reports []ReceiverState) []Suggestion {
	s.now += s.a.Config().Interval
	return s.a.Step(Input{Now: s.now, Topologies: topos, Reports: reports})
}

// suggestionFor extracts one receiver's suggested level (-1 if absent).
func suggestionFor(sgs []Suggestion, session int, node NodeID) int {
	for _, s := range sgs {
		if s.Session == session && s.Node == node {
			return s.Level
		}
	}
	return -1
}

func TestStepExplorationAddsOneLayerPerInterval(t *testing.T) {
	st := newStepper(testConfig())
	topo := chain(0, 3)
	level := 1
	for i := 0; i < 5; i++ {
		// Clean reports at the current level: bandwidth grows each
		// interval (BW lesser), history stays 0 -> Add.
		bytes := int64(st.a.Config().CumRate(level) / 8 * st.a.Config().Interval.Seconds())
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: level, LossRate: 0, Bytes: bytes},
		})
		got := suggestionFor(sgs, 0, 2)
		if got != level+1 {
			t.Fatalf("interval %d: suggestion %d, want %d (one layer at a time)", i, got, level+1)
		}
		level = got
	}
}

func TestStepCapsAtMaxLevel(t *testing.T) {
	st := newStepper(testConfig())
	topo := chain(0, 3)
	for i := 0; i < 12; i++ {
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: 6, LossRate: 0, Bytes: 500_000},
		})
		if got := suggestionFor(sgs, 0, 2); got > 6 {
			t.Fatalf("suggestion %d exceeds max level", got)
		}
	}
}

func TestStepCongestionDropsAndBacksOff(t *testing.T) {
	cfg := testConfig()
	st := newStepper(cfg)
	topo := chain(0, 3)
	// Two quiet intervals to seed history/bandwidth, then heavy loss with
	// declining bandwidth (BW greater is the painful row).
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0, Bytes: 120_000}})
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 5, LossRate: 0, Bytes: 120_000}})
	var got int
	for i := 0; i < 3; i++ {
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: 5, LossRate: 0.30, Bytes: 60_000},
		})
		got = suggestionFor(sgs, 0, 2)
	}
	if got >= 5 {
		t.Fatalf("no drop after sustained 30%% loss: suggestion %d", got)
	}
	if st.a.Backoffs() == 0 {
		t.Error("no back-off timers armed after a drop")
	}
}

func TestStepBackoffBlocksReAdd(t *testing.T) {
	cfg := testConfig()
	cfg.BackoffMin = 100 * sim.Second
	cfg.BackoffMax = 100 * sim.Second
	st := newStepper(cfg)
	topo := chain(0, 3)
	// Drive into a drop of layer 4.
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0, Bytes: 120_000}})
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0.30, Bytes: 120_000}})
	dropTo := -1
	for i := 0; i < 4 && dropTo < 0; i++ {
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: 4, LossRate: 0.30, Bytes: 60_000},
		})
		if got := suggestionFor(sgs, 0, 2); got < 4 {
			dropTo = got
		}
	}
	if dropTo < 0 {
		t.Fatal("never dropped")
	}
	// Now the network is clean again, but the dropped layer is backing
	// off: suggestions must not climb past dropTo.
	for i := 0; i < 5; i++ {
		bytes := int64(st.a.Config().CumRate(dropTo) / 8 * st.a.Config().Interval.Seconds())
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: dropTo, LossRate: 0, Bytes: bytes},
		})
		if got := suggestionFor(sgs, 0, 2); got > dropTo {
			t.Fatalf("re-added layer %d during back-off", got)
		}
	}
}

func TestStepBackoffExpires(t *testing.T) {
	cfg := testConfig()
	cfg.BackoffMin = 1 * sim.Second // expires within one interval (2s)
	cfg.BackoffMax = 1 * sim.Second
	st := newStepper(cfg)
	topo := chain(0, 3)
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0, Bytes: 120_000}})
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0.30, Bytes: 120_000}})
	for i := 0; i < 4; i++ {
		st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 4, LossRate: 0.30, Bytes: 60_000}})
	}
	// Clean reports: after the back-off lapses the algorithm explores
	// upward again within a few intervals.
	climbed := false
	level := 2
	for i := 0; i < 8; i++ {
		bytes := int64(st.a.Config().CumRate(level) / 8 * st.a.Config().Interval.Seconds())
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: level, LossRate: 0, Bytes: bytes},
		})
		if got := suggestionFor(sgs, 0, 2); got > level {
			climbed = true
			break
		}
	}
	if !climbed {
		t.Error("never resumed exploration after back-off expiry")
	}
}

func TestStepSubtreeCoordination(t *testing.T) {
	// Two receivers under one congested branch: the subtree root reduces,
	// and BOTH leaves get the reduced supply (coordination).
	cfg := testConfig()
	st := newStepper(cfg)
	topo := star(0, 2) // 0 -> 1 -> {2, 3}
	reports := func(level int, loss float64, bytes int64) []ReceiverState {
		return []ReceiverState{
			{Node: 2, Session: 0, Level: level, LossRate: loss, Bytes: bytes},
			{Node: 3, Session: 0, Level: level, LossRate: loss * 1.05, Bytes: bytes},
		}
	}
	st.step([]*Topology{topo}, reports(4, 0, 120_000))
	st.step([]*Topology{topo}, reports(4, 0, 120_000))
	var s2, s3 int
	for i := 0; i < 4; i++ {
		sgs := st.step([]*Topology{topo}, reports(4, 0.30, 60_000))
		s2, s3 = suggestionFor(sgs, 0, 2), suggestionFor(sgs, 0, 3)
		if s2 < 4 {
			break
		}
	}
	if s2 >= 4 || s3 >= 4 {
		t.Fatalf("subtree did not reduce: %d/%d", s2, s3)
	}
	if s2 != s3 {
		t.Errorf("coordinated receivers got different levels: %d vs %d", s2, s3)
	}
}

func TestStepCapacityClampsSupply(t *testing.T) {
	// Once a shared bottleneck's capacity is estimated, supply is clamped
	// by it even if demand wants more. Two receivers behind the edge make
	// it pinnable.
	cfg := testConfig()
	st := newStepper(cfg)
	topo := star(0, 2)
	bytes := int64(cfg.CumRate(2) / 8 * cfg.Interval.Seconds())
	reports := func(level int, loss float64) []ReceiverState {
		return []ReceiverState{
			{Node: 2, Session: 0, Level: level, LossRate: loss, Bytes: bytes},
			{Node: 3, Session: 0, Level: level, LossRate: loss * 1.04, Bytes: bytes},
		}
	}
	st.step([]*Topology{topo}, reports(3, 0))
	for i := 0; i < 3; i++ {
		st.step([]*Topology{topo}, reports(3, 0.30))
	}
	if _, ok := st.a.CapacityEstimate(Edge{From: 0, To: 1}); !ok {
		t.Fatal("capacity not estimated")
	}
	// Clean reports at level 2: history clears, the algorithm wants to
	// add, but the capacity estimate (~2 layers' worth) holds supply down.
	for i := 0; i < 3; i++ {
		sgs := st.step([]*Topology{topo}, reports(2, 0))
		if got := suggestionFor(sgs, 0, 2); got > 3 {
			t.Fatalf("supply %d blew past the estimated capacity", got)
		}
	}
}

func TestStepNeverBelowBaseLayer(t *testing.T) {
	st := newStepper(testConfig())
	topo := chain(0, 3)
	for i := 0; i < 10; i++ {
		sgs := st.step([]*Topology{topo}, []ReceiverState{
			{Node: 2, Session: 0, Level: 1, LossRate: 0.9, Bytes: 100},
		})
		if got := suggestionFor(sgs, 0, 2); got < 1 {
			t.Fatalf("suggestion %d below base layer", got)
		}
	}
}

func TestStepMultipleSessionsSortedOutput(t *testing.T) {
	st := newStepper(testConfig())
	t0 := chain(0, 3)
	t1 := chain(1, 4)
	sgs := st.step([]*Topology{t1, t0}, []ReceiverState{
		{Node: 3, Session: 1, Level: 1, Bytes: 100},
		{Node: 2, Session: 0, Level: 1, Bytes: 100},
	})
	if len(sgs) != 2 {
		t.Fatalf("suggestions = %v", sgs)
	}
	if sgs[0].Session != 0 || sgs[1].Session != 1 {
		t.Errorf("output not sorted: %v", sgs)
	}
}

func TestStepSkipsNilAndEmptyTopologies(t *testing.T) {
	st := newStepper(testConfig())
	empty := &Topology{Session: 0, Root: NodeIDNone}
	sgs := st.step([]*Topology{nil, empty}, nil)
	if len(sgs) != 0 {
		t.Errorf("suggestions from nil topologies: %v", sgs)
	}
}

func TestStepStateGC(t *testing.T) {
	cfg := testConfig()
	st := newStepper(cfg)
	topo := chain(0, 3)
	st.step([]*Topology{topo}, []ReceiverState{{Node: 2, Session: 0, Level: 1, Bytes: 100}})
	if len(st.a.nodes) == 0 {
		t.Fatal("no node state created")
	}
	// Session disappears; state must be GC'd after ~10 intervals.
	for i := 0; i < 12; i++ {
		st.step(nil, nil)
	}
	if len(st.a.nodes) != 0 {
		t.Errorf("%d node states survived GC", len(st.a.nodes))
	}
	if len(st.a.links) != 0 {
		t.Errorf("%d link states survived GC", len(st.a.links))
	}
}

func TestStepCountsSteps(t *testing.T) {
	st := newStepper(testConfig())
	for i := 0; i < 3; i++ {
		st.step(nil, nil)
	}
	if st.a.Steps() != 3 {
		t.Errorf("Steps = %d", st.a.Steps())
	}
}

func TestStepNewReceiverBootstrapsToBase(t *testing.T) {
	st := newStepper(testConfig())
	topo := chain(0, 3)
	// Receiver present in topology but never reported: suggest at least
	// the base layer.
	sgs := st.step([]*Topology{topo}, nil)
	if got := suggestionFor(sgs, 0, 2); got < 1 {
		t.Errorf("bootstrap suggestion = %d", got)
	}
}

func TestStepFairnessTwoSessionsSharedLink(t *testing.T) {
	// Both sessions push through one shared edge 0->1 with ~equal
	// subtrees; after sustained joint congestion the suggested levels must
	// be equal (inter-session fairness).
	cfg := testConfig()
	st := newStepper(cfg)
	t0 := &Topology{Session: 0, Root: 0,
		Parent:    map[NodeID]NodeID{1: 0, 2: 1},
		Children:  map[NodeID][]NodeID{0: {1}, 1: {2}},
		Receivers: map[NodeID]bool{2: true}}
	t1 := &Topology{Session: 1, Root: 0,
		Parent:    map[NodeID]NodeID{1: 0, 3: 1},
		Children:  map[NodeID][]NodeID{0: {1}, 1: {3}},
		Receivers: map[NodeID]bool{3: true}}
	topos := []*Topology{t0, t1}
	// Warm up clean at level 4, then joint loss at level 5.
	bytes := int64(cfg.CumRate(4) / 8 * cfg.Interval.Seconds())
	st.step(topos, []ReceiverState{
		{Node: 2, Session: 0, Level: 4, Bytes: bytes},
		{Node: 3, Session: 1, Level: 4, Bytes: bytes},
	})
	var last []Suggestion
	for i := 0; i < 4; i++ {
		last = st.step(topos, []ReceiverState{
			{Node: 2, Session: 0, Level: 5, LossRate: 0.25, Bytes: bytes},
			{Node: 3, Session: 1, Level: 5, LossRate: 0.26, Bytes: bytes},
		})
	}
	l0 := suggestionFor(last, 0, 2)
	l1 := suggestionFor(last, 1, 3)
	if l0 != l1 {
		t.Errorf("symmetric sessions diverged: %d vs %d", l0, l1)
	}
	if l0 >= 5 {
		t.Errorf("no reduction under joint congestion: %d", l0)
	}
}
