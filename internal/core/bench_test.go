package core

import (
	"fmt"
	"testing"

	"toposense/internal/sim"
)

// topologyB builds the controller's image of Topology B: sessions sessions
// rooted at distinct sources, all funneling through the shared backbone
// X(0) → Y(1) and fanning out to one receiver each — the same shape
// topology.BuildB hands the discovery layer, with the dense node numbering
// a real network produces.
func topologyB(sessions int) ([]*Topology, []ReceiverState) {
	topos := make([]*Topology, 0, sessions)
	reports := make([]ReceiverState, 0, sessions)
	const x, y = NodeID(0), NodeID(1)
	for s := 0; s < sessions; s++ {
		src := NodeID(2 + 2*s)
		rx := NodeID(3 + 2*s)
		topos = append(topos, &Topology{
			Session:   s,
			Root:      src,
			Parent:    map[NodeID]NodeID{x: src, y: x, rx: y},
			Children:  map[NodeID][]NodeID{src: {x}, x: {y}, y: {rx}},
			Receivers: map[NodeID]bool{rx: true},
		})
		reports = append(reports, ReceiverState{
			Node: rx, Session: s, Level: 4, LossRate: 0.0, Bytes: 240_000,
		})
	}
	return topos, reports
}

// BenchmarkStepTopologyB measures one full five-stage controller interval on
// Topology B. The steady variant is the dominant production regime — every
// receiver healthy, no reductions, no capacity pins — and must run with
// zero allocations per step; the congested variant exercises the pinning
// and reduction machinery on every interval.
func BenchmarkStepTopologyB(b *testing.B) {
	for _, sessions := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("steady/sessions-%d", sessions), func(b *testing.B) {
			cfg := NewConfig([]float64{32e3, 64e3, 128e3, 256e3, 512e3, 1024e3})
			alg := New(cfg, nil)
			topos, reports := topologyB(sessions)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := sim.Time(i+1) * cfg.Interval
				alg.Step(Input{Now: now, Topologies: topos, Reports: reports})
			}
		})
		b.Run(fmt.Sprintf("congested/sessions-%d", sessions), func(b *testing.B) {
			cfg := NewConfig([]float64{32e3, 64e3, 128e3, 256e3, 512e3, 1024e3})
			alg := New(cfg, nil)
			topos, reports := topologyB(sessions)
			for i := range reports {
				reports[i].LossRate = 0.12 // above p_threshold on the shared link
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := sim.Time(i+1) * cfg.Interval
				alg.Step(Input{Now: now, Topologies: topos, Reports: reports})
			}
		})
	}
}
