package core

import (
	"math"

	"toposense/internal/sim"
)

// computeDemand implements the demand half of stage 5: a bottom-up,
// breadth-first pass where each leaf consults Table I and each internal
// node aggregates its children's demands (the max, since layers are
// cumulative and a parent link must carry the union) before applying its
// own Table-I row. Two coordination rules from the paper:
//
//   - If a node's parent is congested, the node defers action to the parent
//     — congestion in a subtree is handled by the subtree's root.
//   - When a node reduces demand, a back-off timer is armed for each layer
//     being dropped, so no receiver in that subtree re-adds those layers
//     until the timer expires. (The paper arms the highest dropped layer;
//     we arm every dropped layer, which is equivalent under one-at-a-time
//     adds and also robust when a reduction sheds several layers at once.)
func (a *Algorithm) computeDemand(now sim.Time, p *sessionPass) {
	session := p.topo.Session
	for i := int32(len(p.nodes)) - 1; i >= 0; i-- {
		n := p.nodes[i]
		level := p.level[i]
		st := a.peekState(session, n)
		hist, rel := a.tableInputs(st, p, i)

		par := p.parent[i]
		parentCongested := par >= 0 && p.congest[par]
		leaf := p.isLeaf(i)

		var act Action
		if leaf {
			act = LeafAction(hist, rel)
			if parentCongested {
				// Defer to the subtree root: it will reduce for everyone.
				p.demand[i] = level
			} else {
				p.demand[i] = a.leafDemand(now, p, i, level, st, act)
			}
		} else {
			// Internal: aggregate children (plus a co-located receiver).
			agg := 0
			for _, c := range p.children(i) {
				if p.demand[c] > agg {
					agg = p.demand[c]
				}
			}
			if p.recv[i] && level > agg {
				agg = level
			}
			act = InternalAction(hist, rel)
			if parentCongested {
				p.demand[i] = agg
			} else {
				p.demand[i] = a.internalDemand(now, p, i, level, agg, st, act)
			}
		}

		if p.decisions != nil {
			p.decisions[i] = &Decision{
				At:        now,
				Session:   session,
				Node:      n,
				Leaf:      leaf,
				Congested: p.congest[i],
				Hist:      hist,
				Rel:       rel,
				Action:    act,
				Deferred:  parentCongested,
				Cooling:   a.coolingDown(now, st),
				Level:     level,
				Demand:    p.demand[i],
			}
		}
	}
}

// tableInputs assembles the Table-I keys for local node i: the 3-bit
// congestion history ending with the current interval, and the BW relation
// between the two preceding intervals' byte counts.
func (a *Algorithm) tableInputs(st *nodeState, p *sessionPass, i int32) (uint8, BWRel) {
	var prevHist uint8
	var bwOld int64
	if st != nil {
		prevHist = st.hist
		bwOld = st.bwPrev
	}
	bit := uint8(0)
	if p.congest[i] {
		bit = 1
	}
	hist := ((prevHist << 1) | bit) & 7
	rel := CompareBW(bwOld, p.subBytes[i], a.cfg.BWEqualTol)
	return hist, rel
}

// supplies returns the old (T0–Tn) and recent (Tn–T2n) allocated levels.
func supplies(st *nodeState) (old, recent int) {
	if st == nil {
		return 0, 0
	}
	return st.supplyPrev2, st.supplyPrev
}

// coolingDown reports whether the node's supply was reduced within the last
// two intervals. The reports the controller acts on lag the reduction by the
// feedback latency plus the bottleneck drain (queue flush and group-leave
// latency, often longer than one interval on slow links), so a further cut
// inside that window would compound reductions on stale feedback and
// overshoot far below the sustainable level.
func (a *Algorithm) coolingDown(now sim.Time, st *nodeState) bool {
	if a.cfg.DisableCooldown || st == nil || st.lastReduce == 0 {
		return false
	}
	return now-st.lastReduce < 2*a.cfg.Interval+a.cfg.Interval/2
}

func (a *Algorithm) leafDemand(now sim.Time, p *sessionPass, i int32, level int, st *nodeState, act Action) int {
	session := p.topo.Session
	n := p.nodes[i]
	oldSupply, _ := supplies(st)
	if a.coolingDown(now, st) && act != ActAdd && act != ActMaintain {
		return level
	}
	switch act {
	case ActAdd:
		next := level + 1
		if next > a.cfg.MaxLevel() {
			return level
		}
		if a.backingOff(now, p, n, next) {
			return level
		}
		return next
	case ActMaintain:
		return level
	case ActDropIfHighLoss:
		if p.loss[i] <= a.cfg.HighLoss {
			return level
		}
		d := clampLevel(level-1, level)
		a.armBackoffs(now, session, n, d, level)
		return d
	case ActReduceToSupplyOld:
		d := clampLevel(oldSupply, level)
		return d
	case ActHalveSupplyOld:
		d := clampLevel(a.halfLevel(oldSupply), level)
		a.armBackoffs(now, session, n, d, level)
		return d
	case ActHalveSupplyOldIfVeryHigh:
		if p.loss[i] <= a.cfg.VeryHighLoss {
			return level
		}
		return clampLevel(a.halfLevel(oldSupply), level)
	default:
		return level
	}
}

func (a *Algorithm) internalDemand(now sim.Time, p *sessionPass, i int32, level, agg int, st *nodeState, act Action) int {
	session := p.topo.Session
	n := p.nodes[i]
	oldSupply, recentSupply := supplies(st)
	if a.coolingDown(now, st) && (act == ActHalveSupplyRecent || act == ActHalveSupplyOld) {
		return agg
	}
	switch act {
	case ActAccept:
		return agg
	case ActMaintain:
		// Do not let the subtree grow through a recently congested node,
		// but honor reductions from below.
		if level > 0 && agg > level {
			return level
		}
		return agg
	case ActHalveSupplyRecent:
		d := minInt(agg, clampLevel(a.halfLevel(recentSupply), agg))
		a.armBackoffs(now, session, n, d, level)
		return d
	case ActHalveSupplyOld:
		d := minInt(agg, clampLevel(a.halfLevel(oldSupply), agg))
		a.armBackoffs(now, session, n, d, level)
		return d
	default:
		return agg
	}
}

// halfLevel converts "half the bandwidth of a supply level" back to layers.
func (a *Algorithm) halfLevel(supply int) int {
	return a.cfg.LevelFor(a.cfg.CumRate(supply) / 2)
}

// clampLevel bounds a reduction target to [1, current]: demand never drops
// below the base layer (every session keeps at least its base layer) and a
// "reduction" never raises demand above the current level.
func clampLevel(target, current int) int {
	if current < 1 {
		// A node not yet receiving anything has nothing to reduce.
		return current
	}
	if target < 1 {
		target = 1
	}
	if target > current {
		target = current
	}
	return target
}

// armBackoffs sets the back-off timer for the highest layer being dropped
// when demand falls from level to d — the paper's rule: "this node also
// sets a backoff timer for the highest layer being dropped so that this
// layer is not subscribed to by another receiver in the near future."
// Lower dropped layers stay free to be re-added (one at a time), so a
// too-deep reduction recovers quickly while the probing layer stays barred.
func (a *Algorithm) armBackoffs(now sim.Time, session int, n NodeID, d, level int) {
	if d < level {
		a.setBackoff(now, session, n, level)
	}
}

// allocateSupply implements the supply half of stage 5: a top-down pass
// that grants each node the minimum of its demand, its parent's supply and
// what the link from its parent can carry — the estimated capacity, further
// restricted to the session's fair share where the link is shared. Receiver
// nodes are never allocated below the base layer.
func (a *Algorithm) allocateSupply(p *sessionPass, shares map[shareKey]float64) {
	session := p.topo.Session
	for i := range p.nodes {
		par := p.parent[i]
		if par < 0 {
			p.supply[i] = minInt(p.demand[i], a.cfg.MaxLevel())
			if p.recv[i] && p.supply[i] < 1 {
				p.supply[i] = 1
			}
			continue
		}
		e := Edge{From: p.nodes[par], To: p.nodes[i]}
		bw := math.Inf(1)
		if ls := a.links[e]; ls != nil {
			bw = ls.capacity
		}
		if share, ok := shares[shareKey{edge: e, session: session}]; ok && share < bw {
			bw = share
		}
		allowed := a.cfg.MaxLevel()
		if !math.IsInf(bw, 1) {
			allowed = a.cfg.LevelFor(bw)
		}
		s := minInt(minInt(p.demand[i], p.supply[par]), allowed)
		if p.recv[i] && s < 1 {
			s = 1 // every registered receiver keeps the base layer
		}
		p.supply[i] = s
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
