package core

import (
	"fmt"
	"math"

	"toposense/internal/sim"
)

// Default algorithm parameters. The paper gives the structure of the
// algorithm but not every constant; defaults were chosen to reproduce the
// published behaviour on the paper's topologies and are exercised by the
// experiments in internal/experiments.
const (
	// DefaultPThreshold is p_threshold: a node with a higher loss rate is
	// considered congested.
	DefaultPThreshold = 0.05
	// DefaultHighLoss is the "loss rate is high" bar of Table I (leaf,
	// history 1, BW lesser).
	DefaultHighLoss = 0.10
	// DefaultVeryHighLoss is the "loss is very high" bar of Table I (leaf,
	// history 3/7, BW greater).
	DefaultVeryHighLoss = 0.25
	// DefaultEtaSimilar is η_similar: the fraction of children whose loss
	// must sit close to the mean before an internal node is declared
	// congested itself.
	DefaultEtaSimilar = 0.7
	// DefaultSimilarBand is the relative band around the mean child loss
	// that counts as "close".
	DefaultSimilarBand = 0.5
	// DefaultBWEqualTol is the relative tolerance within which bandwidth
	// received in two consecutive intervals counts as "Equal".
	DefaultBWEqualTol = 0.05
	// DefaultCapacityGrowth is the fractional growth applied to a finite
	// link-capacity estimate every interval ("the estimate is increased
	// every interval by a small amount").
	DefaultCapacityGrowth = 0.02
)

// Default timers.
const (
	DefaultInterval            = 4 * sim.Second
	DefaultBackoffMin          = 10 * sim.Second
	DefaultBackoffMax          = 30 * sim.Second
	DefaultCapacityResetPeriod = 60 * sim.Second
)

// Config parameterizes the algorithm. The zero value is not usable; use
// NewConfig or fill LayerRates and call Normalize.
type Config struct {
	// LayerRates is the advertised bandwidth of each layer, in bits/s,
	// index 0 = base layer. The paper assumes these are known beforehand.
	LayerRates []float64

	PThreshold   float64
	HighLoss     float64
	VeryHighLoss float64
	EtaSimilar   float64
	SimilarBand  float64
	BWEqualTol   float64

	// Interval is the decision interval: the time between Step calls.
	Interval sim.Time
	// BackoffMin/Max bound the random back-off applied to a dropped layer.
	BackoffMin, BackoffMax sim.Time
	// CapacityGrowth inflates finite capacity estimates each interval.
	CapacityGrowth float64
	// CapacityResetPeriod resets all estimates to infinity, forcing
	// re-estimation (the behaviour behind the paper's Figure 9 bursts).
	CapacityResetPeriod sim.Time

	// Ablation switches (all default off — the full system). They exist so
	// the benchmark harness can quantify each design choice's contribution;
	// production use should leave them false.

	// DisableCooldown turns off the post-reduction cool-down, letting
	// stale drain feedback compound successive cuts.
	DisableCooldown bool
	// DisableBackoff turns off the dropped-layer back-off timers,
	// removing the receivers' probe coordination.
	DisableBackoff bool
	// PinSingleObserver lets capacity estimation pin links observed by a
	// single receiver, mis-localizing path loss onto arbitrary edges.
	PinSingleObserver bool
}

// NewConfig returns a config with the given layer rates and all defaults.
func NewConfig(layerRates []float64) Config {
	c := Config{LayerRates: append([]float64(nil), layerRates...)}
	c.Normalize()
	return c
}

// Normalize fills zero fields with defaults and validates the result.
func (c *Config) Normalize() {
	if c.PThreshold == 0 {
		c.PThreshold = DefaultPThreshold
	}
	if c.HighLoss == 0 {
		c.HighLoss = DefaultHighLoss
	}
	if c.VeryHighLoss == 0 {
		c.VeryHighLoss = DefaultVeryHighLoss
	}
	if c.EtaSimilar == 0 {
		c.EtaSimilar = DefaultEtaSimilar
	}
	if c.SimilarBand == 0 {
		c.SimilarBand = DefaultSimilarBand
	}
	if c.BWEqualTol == 0 {
		c.BWEqualTol = DefaultBWEqualTol
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = DefaultBackoffMin
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.CapacityGrowth == 0 {
		c.CapacityGrowth = DefaultCapacityGrowth
	}
	if c.CapacityResetPeriod == 0 {
		c.CapacityResetPeriod = DefaultCapacityResetPeriod
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
}

// Validate checks config invariants.
func (c *Config) Validate() error {
	if len(c.LayerRates) == 0 {
		return fmt.Errorf("core: config needs at least one layer rate")
	}
	for i, r := range c.LayerRates {
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			return fmt.Errorf("core: layer %d rate %g invalid", i+1, r)
		}
	}
	if c.PThreshold <= 0 || c.PThreshold >= 1 {
		return fmt.Errorf("core: PThreshold %g out of (0,1)", c.PThreshold)
	}
	if c.EtaSimilar <= 0 || c.EtaSimilar > 1 {
		return fmt.Errorf("core: EtaSimilar %g out of (0,1]", c.EtaSimilar)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("core: Interval must be positive")
	}
	if c.BackoffMin <= 0 || c.BackoffMax < c.BackoffMin {
		return fmt.Errorf("core: backoff range [%v,%v] invalid", c.BackoffMin, c.BackoffMax)
	}
	return nil
}

// MaxLevel returns the number of layers.
func (c Config) MaxLevel() int { return len(c.LayerRates) }

// CumRate returns the cumulative bandwidth of a subscription to the first
// level layers. CumRate(0) is 0; levels beyond MaxLevel saturate.
func (c Config) CumRate(level int) float64 {
	if level > len(c.LayerRates) {
		level = len(c.LayerRates)
	}
	total := 0.0
	for i := 0; i < level; i++ {
		total += c.LayerRates[i]
	}
	return total
}

// LevelFor returns the highest subscription level whose cumulative rate
// fits within bps.
func (c Config) LevelFor(bps float64) int {
	total := 0.0
	for i, r := range c.LayerRates {
		total += r
		if total > bps {
			return i
		}
	}
	return len(c.LayerRates)
}
