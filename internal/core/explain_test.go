package core

import (
	"strings"
	"testing"
)

func TestExplainDisabledByDefault(t *testing.T) {
	st := newStepper(testConfig())
	st.step([]*Topology{chain(0, 3)}, []ReceiverState{{Node: 2, Session: 0, Level: 1, Bytes: 100}})
	if st.a.LastDecisions() != nil {
		t.Error("decisions recorded without EnableExplain")
	}
}

func TestExplainRecordsEveryNode(t *testing.T) {
	st := newStepper(testConfig())
	st.a.EnableExplain()
	st.a.EnableExplain() // idempotent
	topo := star(0, 2)   // 4 nodes
	st.step([]*Topology{topo}, []ReceiverState{
		{Node: 2, Session: 0, Level: 2, LossRate: 0, Bytes: 20_000},
		{Node: 3, Session: 0, Level: 2, LossRate: 0, Bytes: 20_000},
	})
	ds := st.a.LastDecisions()
	if len(ds) != 4 {
		t.Fatalf("decisions = %d, want 4 (every node)", len(ds))
	}
	seen := map[NodeID]Decision{}
	for _, d := range ds {
		seen[d.Node] = d
		if d.Supply < 0 || d.Demand < 0 {
			t.Errorf("negative demand/supply: %+v", d)
		}
		if d.At != st.now {
			t.Errorf("decision timestamp %v, want %v", d.At, st.now)
		}
	}
	if !seen[2].Leaf || !seen[3].Leaf {
		t.Error("leaves not marked Leaf")
	}
	if seen[0].Leaf || seen[1].Leaf {
		t.Error("internal nodes marked Leaf")
	}
	// Clean first interval: leaves should be Add with supply one above.
	if seen[2].Action != ActAdd {
		t.Errorf("leaf action = %v, want add", seen[2].Action)
	}
}

func TestExplainBufferResetEachStep(t *testing.T) {
	st := newStepper(testConfig())
	st.a.EnableExplain()
	topo := chain(0, 3)
	rep := []ReceiverState{{Node: 2, Session: 0, Level: 1, Bytes: 100}}
	st.step([]*Topology{topo}, rep)
	first := len(st.a.LastDecisions())
	st.step([]*Topology{topo}, rep)
	if got := len(st.a.LastDecisions()); got != first {
		t.Errorf("buffer grew across steps: %d -> %d", first, got)
	}
}

func TestExplainShowsCongestionAndDefer(t *testing.T) {
	cfg := testConfig()
	st := newStepper(cfg)
	st.a.EnableExplain()
	topo := star(0, 2)
	reports := func(loss float64) []ReceiverState {
		return []ReceiverState{
			{Node: 2, Session: 0, Level: 4, LossRate: loss, Bytes: 100_000},
			{Node: 3, Session: 0, Level: 4, LossRate: loss * 1.02, Bytes: 100_000},
		}
	}
	st.step([]*Topology{topo}, reports(0))
	st.step([]*Topology{topo}, reports(0.3))
	var leafDecision, hubDecision Decision
	for _, d := range st.a.LastDecisions() {
		switch d.Node {
		case 2:
			leafDecision = d
		case 1:
			hubDecision = d
		}
	}
	if !hubDecision.Congested {
		t.Error("hub not marked congested under correlated loss")
	}
	if !leafDecision.Deferred {
		t.Error("leaf under a congested hub not marked deferred")
	}
	out := FormatDecisions(st.a.LastDecisions())
	if !strings.Contains(out, "CONGESTED") || !strings.Contains(out, "deferred") {
		t.Errorf("formatted output missing flags:\n%s", out)
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Session: 1, Node: 7, Leaf: true, Hist: 3, Rel: BWEqual,
		Action: ActHalveSupplyOld, Level: 4, Demand: 2, Supply: 2, Cooling: true}
	s := d.String()
	for _, want := range []string{"s1", "leaf", "hist=011", "equal", "halve-old-supply", "cooling"} {
		if !strings.Contains(s, want) {
			t.Errorf("Decision.String missing %q: %s", want, s)
		}
	}
}
