package core

import (
	"math"

	"toposense/internal/sim"
)

// estimateCapacities implements stage 2 ("Estimate link bandwidths for all
// shared links"): maintain a capacity estimate for every link carried by
// two or more sessions. A shared link starts at infinity and is pinned to
// the observed throughput only when (1) the aggregate loss at the link's
// destination exceeds p_threshold and (2) every session sharing the link
// sees loss above p_threshold there — the paper's guard against blaming a
// shared link for one session's downstream bottleneck.
//
// Links carried by a single session are never pinned: with one receiver
// behind an edge the algorithm cannot localize its loss to that edge (the
// loss could be anywhere on the path), and a bad pin would starve the
// session until the next reset. Single-session bottlenecks are controlled
// reactively by the Table-I demand computation instead; capacity estimates
// exist to drive the inter-session sharing stage, which only concerns
// shared links.
// Finite estimates grow by CapacityGrowth each interval (reports can lag
// actual transmission) and all estimates reset to infinity every
// CapacityResetPeriod so that transient flows or downstream bottlenecks do
// not poison them forever.
func (a *Algorithm) estimateCapacities(now sim.Time, passes []*sessionPass) {
	// Periodic per-link reset: every pinned estimate expires back to
	// infinity after CapacityResetPeriod plus a random fraction, so that
	// independent subtrees re-explore at different times instead of
	// crashing in lockstep.
	for _, ls := range a.links {
		if !math.IsInf(ls.capacity, 1) && now >= ls.resetAt {
			ls.capacity = math.Inf(1)
		}
	}

	// Collect per-edge observations across sessions.
	type obs struct {
		losses    []float64 // one per session using the edge
		bytes     []int64   // max subtree bytes per session (observed volume)
		receivers int       // total receivers behind the edge
		congested bool      // any session's child node labeled CONGESTED
	}
	edges := make(map[Edge]*obs)
	for _, p := range passes {
		for _, n := range p.order {
			e, ok := p.topo.EdgeTo(n)
			if !ok {
				continue
			}
			o := edges[e]
			if o == nil {
				o = &obs{}
				edges[e] = o
			}
			o.losses = append(o.losses, p.loss[n])
			o.bytes = append(o.bytes, p.subBytes[n])
			o.receivers += p.recvCount[n]
			if p.congest[n] {
				o.congested = true
			}
		}
	}

	interval := a.cfg.Interval.Seconds()
	for _, e := range sortedEdges(edges) {
		o := edges[e]
		ls := a.links[e]
		if ls == nil {
			ls = &linkState{capacity: math.Inf(1)}
			a.links[e] = ls
		}
		ls.lastSeen = now

		// Record this interval's observed throughput: what the receivers
		// demonstrably got through the link, summed over sessions (each
		// session contributes its best subtree receiver).
		var bits float64
		for _, b := range o.bytes {
			bits += float64(b) * 8
		}
		ls.recordObserved(bits / interval)

		// Grow an existing finite estimate. A finite estimate is kept until
		// the periodic reset: the interval right after a drop observes the
		// queue-drain/leave-latency transient and would badly under-estimate
		// if allowed to re-pin ("links are assumed to be of infinite
		// capacity until ..." — estimation happens at the transition).
		if !math.IsInf(ls.capacity, 1) {
			ls.capacity *= 1 + a.cfg.CapacityGrowth
			continue
		}

		// An edge is only pinnable when at least two independent observers
		// sit behind it — several sessions, or several receivers of one
		// session whose correlated losses the congestion stage attributed
		// to this subtree. A single observer cannot localize its loss to
		// any particular edge of its path, and a wrong pin would starve it
		// until the next reset.
		if !a.cfg.PinSingleObserver && len(o.losses) < 2 && (o.receivers < 2 || !o.congested) {
			continue
		}

		// Conditions: every session's loss above threshold, and the
		// volume-weighted aggregate loss above threshold too.
		all := true
		var weighted, volume float64
		for i, l := range o.losses {
			if l <= a.cfg.PThreshold {
				all = false
			}
			w := float64(o.bytes[i])
			weighted += l * w
			volume += w
		}
		if !all || volume == 0 {
			continue
		}
		aggregate := weighted / volume
		if aggregate <= a.cfg.PThreshold {
			continue
		}
		// Pin to the best recent throughput: the loss conditions often
		// first hold on the drain interval after a drop, whose low byte
		// counts would freeze the link far below its true capacity for a
		// whole reset period. The preceding congested interval measured
		// what the link can actually carry.
		observed := ls.maxObserved()
		if observed <= 0 {
			continue
		}
		ls.capacity = observed
		jitter := sim.Time(a.rng.Int63n(int64(a.cfg.CapacityResetPeriod)/2 + 1))
		ls.resetAt = now + a.cfg.CapacityResetPeriod + jitter
	}
}
