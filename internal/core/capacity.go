package core

import (
	"math"
	"sort"

	"toposense/internal/sim"
)

// estimateCapacities implements stage 2 ("Estimate link bandwidths for all
// shared links"): maintain a capacity estimate for every link carried by
// two or more sessions. A shared link starts at infinity and is pinned to
// the observed throughput only when (1) the aggregate loss at the link's
// destination exceeds p_threshold and (2) every session sharing the link
// sees loss above p_threshold there — the paper's guard against blaming a
// shared link for one session's downstream bottleneck.
//
// Links carried by a single session are never pinned: with one receiver
// behind an edge the algorithm cannot localize its loss to that edge (the
// loss could be anywhere on the path), and a bad pin would starve the
// session until the next reset. Single-session bottlenecks are controlled
// reactively by the Table-I demand computation instead; capacity estimates
// exist to drive the inter-session sharing stage, which only concerns
// shared links.
// Finite estimates grow by CapacityGrowth each interval (reports can lag
// actual transmission) and all estimates reset to infinity every
// CapacityResetPeriod so that transient flows or downstream bottlenecks do
// not poison them forever.
func (a *Algorithm) estimateCapacities(now sim.Time, passes []*sessionPass) {
	// Periodic per-link reset: every pinned estimate expires back to
	// infinity after CapacityResetPeriod plus a random fraction, so that
	// independent subtrees re-explore at different times instead of
	// crashing in lockstep.
	for _, ls := range a.links {
		if !math.IsInf(ls.capacity, 1) && now >= ls.resetAt {
			ls.capacity = math.Inf(1)
		}
	}

	// Collect per-edge observations across sessions into the scratch arena:
	// index map, observation entries and the edge worklist all persist from
	// step to step and are reset, not rebuilt.
	s := &a.scratch
	if s.capIdx == nil {
		s.capIdx = make(map[Edge]int32)
	} else {
		clear(s.capIdx)
	}
	s.capEdges = s.capEdges[:0]
	for _, p := range passes {
		for i := 1; i < len(p.nodes); i++ { // every node but the root has an edge
			e := Edge{From: p.nodes[p.parent[i]], To: p.nodes[i]}
			oi, ok := s.capIdx[e]
			if !ok {
				oi = int32(len(s.capEdges))
				if int(oi) == len(s.capObs) {
					s.capObs = append(s.capObs, capObs{})
				}
				s.capObs[oi].reset()
				s.capIdx[e] = oi
				s.capEdges = append(s.capEdges, e)
			}
			o := &s.capObs[oi]
			o.losses = append(o.losses, p.loss[i])
			o.bytes = append(o.bytes, p.subBytes[i])
			o.receivers += p.recvCount[i]
			if p.congest[i] {
				o.congested = true
			}
		}
	}
	s.edgeSorter.s = s.capEdges
	sort.Sort(&s.edgeSorter)

	interval := a.cfg.Interval.Seconds()
	for _, e := range s.capEdges {
		o := &s.capObs[s.capIdx[e]]
		ls := a.links[e]
		if ls == nil {
			ls = &linkState{capacity: math.Inf(1)}
			a.links[e] = ls
		}
		ls.lastSeen = now

		// Record this interval's observed throughput: what the receivers
		// demonstrably got through the link, summed over sessions (each
		// session contributes its best subtree receiver).
		var bits float64
		for _, b := range o.bytes {
			bits += float64(b) * 8
		}
		ls.recordObserved(bits / interval)

		// Grow an existing finite estimate. A finite estimate is kept until
		// the periodic reset: the interval right after a drop observes the
		// queue-drain/leave-latency transient and would badly under-estimate
		// if allowed to re-pin ("links are assumed to be of infinite
		// capacity until ..." — estimation happens at the transition).
		if !math.IsInf(ls.capacity, 1) {
			ls.capacity *= 1 + a.cfg.CapacityGrowth
			continue
		}

		// An edge is only pinnable when at least two independent observers
		// sit behind it — several sessions, or several receivers of one
		// session whose correlated losses the congestion stage attributed
		// to this subtree. A single observer cannot localize its loss to
		// any particular edge of its path, and a wrong pin would starve it
		// until the next reset.
		if !a.cfg.PinSingleObserver && len(o.losses) < 2 && (o.receivers < 2 || !o.congested) {
			continue
		}

		// Conditions: every session's loss above threshold, and the
		// volume-weighted aggregate loss above threshold too.
		all := true
		var weighted, volume float64
		for i, l := range o.losses {
			if l <= a.cfg.PThreshold {
				all = false
			}
			w := float64(o.bytes[i])
			weighted += l * w
			volume += w
		}
		if !all || volume == 0 {
			continue
		}
		aggregate := weighted / volume
		if aggregate <= a.cfg.PThreshold {
			continue
		}
		// Pin to the best recent throughput: the loss conditions often
		// first hold on the drain interval after a drop, whose low byte
		// counts would freeze the link far below its true capacity for a
		// whole reset period. The preceding congested interval measured
		// what the link can actually carry.
		observed := ls.maxObserved()
		if observed <= 0 {
			continue
		}
		ls.capacity = observed
		jitter := sim.Time(a.rng.Int63n(int64(a.cfg.CapacityResetPeriod)/2 + 1))
		ls.resetAt = now + a.cfg.CapacityResetPeriod + jitter
	}
}
