package core

import (
	"math"
	"math/rand"
	"sort"

	"toposense/internal/sim"
)

// nodeKey addresses per-(session, node) persistent state.
type nodeKey struct {
	session int
	node    NodeID
}

// nodeState carries what the decision table needs across intervals.
type nodeState struct {
	hist        uint8 // 3-bit congestion history; bit 0 = newest interval
	bwPrev      int64 // bytes received in the most recent completed interval
	bwPrev2     int64 // bytes received in the interval before that
	supplyPrev  int   // level allocated last interval ("supply in Tn-T2n")
	supplyPrev2 int   // level allocated the interval before ("supply in T0-Tn")
	lastSeen    sim.Time
	// lastReduce is when the node's supply last went down; reductions are
	// suppressed for a cool-down after it (see coolingDown).
	lastReduce sim.Time
}

// backoffKey addresses a back-off timer: the named layer must not be
// re-added within the subtree rooted at node until the timer expires.
type backoffKey struct {
	session int
	node    NodeID
	layer   int
}

// linkState is the persistent capacity estimate for one physical edge.
type linkState struct {
	capacity float64 // bits/s; +Inf means "not yet estimated"
	lastSeen sim.Time
	// resetAt is when this estimate returns to infinity. Per-link jittered
	// deadlines keep independent subtrees from probing (and crashing) in
	// lockstep after a synchronized global reset.
	resetAt sim.Time
	// observed holds the last few intervals' measured throughput. Pinning
	// uses the max of this window: the interval that finally satisfies the
	// loss conditions is often the post-drop drain (reports lag actions by
	// the feedback latency), whose byte counts badly under-estimate the
	// link. The congested interval just before it carried the true
	// capacity.
	observed [3]float64
	obsIdx   int
}

func (ls *linkState) recordObserved(v float64) {
	ls.observed[ls.obsIdx] = v
	ls.obsIdx = (ls.obsIdx + 1) % len(ls.observed)
}

func (ls *linkState) maxObserved() float64 {
	max := 0.0
	for _, v := range ls.observed {
		if v > max {
			max = v
		}
	}
	return max
}

// Algorithm is the TopoSense decision engine. Create one per controller
// with New and call Step once per decision interval. It is not safe for
// concurrent use.
type Algorithm struct {
	cfg Config
	rng *rand.Rand

	nodes    map[nodeKey]*nodeState
	links    map[Edge]*linkState
	backoffs map[backoffKey]sim.Time

	lastCapacityReset sim.Time
	steps             int64
	explain           *explainState // non-nil once EnableExplain is called
}

// New creates an algorithm instance. The rng drives back-off randomization;
// pass a seeded source for reproducible runs.
func New(cfg Config, rng *rand.Rand) *Algorithm {
	cfg.Normalize()
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Algorithm{
		cfg:      cfg,
		rng:      rng,
		nodes:    make(map[nodeKey]*nodeState),
		links:    make(map[Edge]*linkState),
		backoffs: make(map[backoffKey]sim.Time),
	}
}

// Config returns the algorithm's configuration.
func (a *Algorithm) Config() Config { return a.cfg }

// Steps returns how many intervals have been processed.
func (a *Algorithm) Steps() int64 { return a.steps }

// sessionPass holds one session's per-step working state.
type sessionPass struct {
	topo      *Topology
	order     []NodeID // top-down BFS order
	report    map[NodeID]*ReceiverState
	loss      map[NodeID]float64   // min-over-children loss (stage 1)
	congest   map[NodeID]bool      // congestion state (stage 1)
	subBytes  map[NodeID]int64     // max bytes by any receiver in the subtree
	recvCount map[NodeID]int       // receivers in the subtree rooted at the node
	level     map[NodeID]int       // current subscription (leaf: report; internal: max of children)
	bneck     map[NodeID]float64   // bottleneck bandwidth root->node (stage 3)
	maxBW     map[NodeID]float64   // max bottleneck over children (stage 3)
	demand    map[NodeID]int       // stage 5 demand
	supply    map[NodeID]int       // stage 5 allocation
	decisions map[NodeID]*Decision // explain records, nil unless enabled
}

// Step runs one full decision interval over every session and returns the
// per-receiver subscription suggestions, sorted by (session, node).
func (a *Algorithm) Step(in Input) []Suggestion {
	a.steps++
	a.resetExplain()

	// Build per-session passes; skip sessions with no usable topology.
	passes := make([]*sessionPass, 0, len(in.Topologies))
	for _, topo := range in.Topologies {
		if topo == nil || topo.Root == NodeIDNone {
			continue
		}
		p := &sessionPass{
			topo:      topo,
			order:     topo.BFSOrder(),
			report:    make(map[NodeID]*ReceiverState),
			loss:      make(map[NodeID]float64),
			congest:   make(map[NodeID]bool),
			subBytes:  make(map[NodeID]int64),
			recvCount: make(map[NodeID]int),
			level:     make(map[NodeID]int),
			bneck:     make(map[NodeID]float64),
			maxBW:     make(map[NodeID]float64),
			demand:    make(map[NodeID]int),
			supply:    make(map[NodeID]int),
		}
		if a.explain != nil {
			p.decisions = make(map[NodeID]*Decision)
		}
		passes = append(passes, p)
	}
	for i := range in.Reports {
		r := &in.Reports[i]
		for _, p := range passes {
			if p.topo.Session == r.Session {
				p.report[r.Node] = r
			}
		}
	}

	// Stage 1: congestion states per session.
	for _, p := range passes {
		a.computeCongestion(p)
	}
	// Stage 2: link capacity estimation on the union of edges.
	a.estimateCapacities(in.Now, passes)
	// Stage 3: bottleneck bandwidths per session.
	for _, p := range passes {
		a.computeBottlenecks(p)
	}
	// Stage 4: inter-session bandwidth sharing on shared links.
	shares := a.shareBandwidth(passes)
	// Stage 5: demand computation + supply allocation.
	var out []Suggestion
	for _, p := range passes {
		a.computeDemand(in.Now, p)
		a.allocateSupply(p, shares)
		for _, n := range p.order {
			if p.topo.Receivers[n] {
				out = append(out, Suggestion{Node: n, Session: p.topo.Session, Level: p.supply[n]})
			}
			if p.decisions != nil {
				if d := p.decisions[n]; d != nil {
					d.Supply = p.supply[n]
					a.record(*d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Session != out[j].Session {
			return out[i].Session < out[j].Session
		}
		return out[i].Node < out[j].Node
	})

	// Roll per-node state forward and garbage-collect.
	a.rollState(in.Now, passes)
	a.expireBackoffs(in.Now)
	return out
}

// NodeIDNone mirrors netsim.NoNode without re-importing it everywhere.
const NodeIDNone = NodeID(-1)

// rollState pushes this interval's observations into the persistent
// per-node state and drops state for nodes gone from every topology.
func (a *Algorithm) rollState(now sim.Time, passes []*sessionPass) {
	for _, p := range passes {
		for _, n := range p.order {
			st := a.stateOf(p.topo.Session, n)
			bit := uint8(0)
			if p.congest[n] {
				bit = 1
			}
			st.hist = ((st.hist << 1) | bit) & 7
			st.bwPrev2 = st.bwPrev
			st.bwPrev = p.subBytes[n]
			// Record only genuine cuts — allocations that force current
			// subscribers down — not the natural end of an upward probe
			// (supply shrinking back toward the actual level).
			if p.supply[n] < st.supplyPrev && p.supply[n] < p.level[n] {
				st.lastReduce = now
			}
			st.supplyPrev2 = st.supplyPrev
			st.supplyPrev = p.supply[n]
			st.lastSeen = now
		}
	}
	// GC node state unseen for 10 intervals.
	horizon := now - 10*a.cfg.Interval
	for k, st := range a.nodes {
		if st.lastSeen < horizon {
			delete(a.nodes, k)
		}
	}
	for e, ls := range a.links {
		if ls.lastSeen < horizon {
			delete(a.links, e)
		}
	}
}

func (a *Algorithm) expireBackoffs(now sim.Time) {
	for k, until := range a.backoffs {
		if until <= now {
			delete(a.backoffs, k)
		}
	}
}

func (a *Algorithm) stateOf(session int, n NodeID) *nodeState {
	k := nodeKey{session, n}
	st, ok := a.nodes[k]
	if !ok {
		st = &nodeState{}
		a.nodes[k] = st
	}
	return st
}

// peekState returns nil when no state exists (first sighting of a node).
func (a *Algorithm) peekState(session int, n NodeID) *nodeState {
	return a.nodes[nodeKey{session, n}]
}

// backingOff reports whether adding `layer` within session at node n (or any
// of its ancestors, where subtree-level back-offs live) is currently barred.
func (a *Algorithm) backingOff(now sim.Time, p *sessionPass, n NodeID, layer int) bool {
	for cur := n; ; {
		if until, ok := a.backoffs[backoffKey{p.topo.Session, cur, layer}]; ok && until > now {
			return true
		}
		parent, ok := p.topo.Parent[cur]
		if !ok {
			return false
		}
		cur = parent
	}
}

// setBackoff arms a random back-off for the given dropped layer at node n.
func (a *Algorithm) setBackoff(now sim.Time, session int, n NodeID, layer int) {
	if layer < 1 || a.cfg.DisableBackoff {
		return
	}
	span := int64(a.cfg.BackoffMax - a.cfg.BackoffMin)
	var jitter sim.Time
	if span > 0 {
		jitter = sim.Time(a.rng.Int63n(span + 1))
	}
	a.backoffs[backoffKey{session, n, layer}] = now + a.cfg.BackoffMin + jitter
}

// Backoffs returns the number of live back-off timers (for tests/metrics).
func (a *Algorithm) Backoffs() int { return len(a.backoffs) }

// CapacityEstimate returns the current estimate for an edge in bits/s and
// whether one exists ( finite ).
func (a *Algorithm) CapacityEstimate(e Edge) (float64, bool) {
	ls, ok := a.links[e]
	if !ok || math.IsInf(ls.capacity, 1) {
		return math.Inf(1), false
	}
	return ls.capacity, true
}
