package core

import (
	"math"
	"math/rand"
	"sort"

	"toposense/internal/sim"
)

// nodeKey addresses per-(session, node) persistent state.
type nodeKey struct {
	session int
	node    NodeID
}

// nodeState carries what the decision table needs across intervals.
type nodeState struct {
	hist        uint8 // 3-bit congestion history; bit 0 = newest interval
	bwPrev      int64 // bytes received in the most recent completed interval
	bwPrev2     int64 // bytes received in the interval before that
	supplyPrev  int   // level allocated last interval ("supply in Tn-T2n")
	supplyPrev2 int   // level allocated the interval before ("supply in T0-Tn")
	lastSeen    sim.Time
	// lastReduce is when the node's supply last went down; reductions are
	// suppressed for a cool-down after it (see coolingDown).
	lastReduce sim.Time
}

// backoffKey addresses a back-off timer: the named layer must not be
// re-added within the subtree rooted at node until the timer expires.
type backoffKey struct {
	session int
	node    NodeID
	layer   int
}

// linkState is the persistent capacity estimate for one physical edge.
type linkState struct {
	capacity float64 // bits/s; +Inf means "not yet estimated"
	lastSeen sim.Time
	// resetAt is when this estimate returns to infinity. Per-link jittered
	// deadlines keep independent subtrees from probing (and crashing) in
	// lockstep after a synchronized global reset.
	resetAt sim.Time
	// observed holds the last few intervals' measured throughput. Pinning
	// uses the max of this window: the interval that finally satisfies the
	// loss conditions is often the post-drop drain (reports lag actions by
	// the feedback latency), whose byte counts badly under-estimate the
	// link. The congested interval just before it carried the true
	// capacity.
	observed [3]float64
	obsIdx   int
}

func (ls *linkState) recordObserved(v float64) {
	ls.observed[ls.obsIdx] = v
	ls.obsIdx = (ls.obsIdx + 1) % len(ls.observed)
}

func (ls *linkState) maxObserved() float64 {
	max := 0.0
	for _, v := range ls.observed {
		if v > max {
			max = v
		}
	}
	return max
}

// Algorithm is the TopoSense decision engine. Create one per controller
// with New and call Step once per decision interval. It is not safe for
// concurrent use.
type Algorithm struct {
	cfg Config
	rng *rand.Rand

	nodes    map[nodeKey]*nodeState
	links    map[Edge]*linkState
	backoffs map[backoffKey]sim.Time

	// scratch is the per-step working arena: every slice and map in it is
	// reset — never reallocated — at the start of each Step, so steady-state
	// intervals run without allocating.
	scratch stepScratch

	lastCapacityReset sim.Time
	steps             int64
	explain           *explainState // non-nil once EnableExplain is called
	// lastSubtrees retains the most recent Step's aggregate summaries for
	// Subtrees(); the controller owns the slice and never mutates it after
	// the call.
	lastSubtrees []SubtreeSummary
}

// New creates an algorithm instance. The rng drives back-off randomization;
// pass a seeded source for reproducible runs.
func New(cfg Config, rng *rand.Rand) *Algorithm {
	cfg.Normalize()
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Algorithm{
		cfg:      cfg,
		rng:      rng,
		nodes:    make(map[nodeKey]*nodeState),
		links:    make(map[Edge]*linkState),
		backoffs: make(map[backoffKey]sim.Time),
	}
}

// Config returns the algorithm's configuration.
func (a *Algorithm) Config() Config { return a.cfg }

// Steps returns how many intervals have been processed.
func (a *Algorithm) Steps() int64 { return a.steps }

// sessionPass holds one session's per-step working state, flattened onto
// dense local indices: node i is the i-th node of the session tree in BFS
// order, so a parent's index is always smaller than its children's. The
// localized tree and every per-node column are plain slices owned by the
// Algorithm's scratch arena; bind rebuilds them in place each Step.
type sessionPass struct {
	topo *Topology

	// Localized tree, rebuilt by bind.
	nodes    []NodeID         // local index -> NodeID, BFS order
	index    map[NodeID]int32 // NodeID -> local index (retained, cleared per step)
	parent   []int32          // local parent index; -1 at the root
	kidStart []int32          // children of i are kids[kidStart[i]:kidStart[i+1]]
	kids     []int32
	recv     []bool // node has an attached receiver

	// Per-node columns, indexed by local index.
	report    []*ReceiverState
	loss      []float64   // min-over-children loss (stage 1)
	congest   []bool      // congestion state (stage 1)
	subBytes  []int64     // max bytes by any receiver in the subtree
	recvCount []int       // receivers in the subtree rooted at the node
	level     []int       // current subscription (leaf: report; internal: max of children)
	bneck     []float64   // bottleneck bandwidth root->node (stage 3)
	maxBW     []float64   // max bottleneck over children (stage 3)
	demand    []int       // stage 5 demand
	supply    []int       // stage 5 allocation
	avail     []float64   // stage 4 scratch: bandwidth if other sessions sit at base
	possible  []int       // stage 4 scratch: max possible demand in layers
	decisions []*Decision // explain records, nil unless enabled
}

// children returns the local indices of node i's children.
func (p *sessionPass) children(i int32) []int32 {
	return p.kids[p.kidStart[i]:p.kidStart[i+1]]
}

// isLeaf reports whether local node i has no children in this topology.
func (p *sessionPass) isLeaf(i int32) bool { return p.kidStart[i] == p.kidStart[i+1] }

// bind points the pass at a topology and rebuilds the localized tree and
// per-node columns in place. Only capacity growth allocates; once the arena
// has seen the largest tree of the workload, bind is allocation-free.
func (p *sessionPass) bind(topo *Topology) {
	p.topo = topo
	if p.index == nil {
		p.index = make(map[NodeID]int32, len(topo.Parent)+1)
	} else {
		clear(p.index)
	}
	p.nodes = p.nodes[:0]
	p.parent = p.parent[:0]
	p.kidStart = p.kidStart[:0]
	p.kids = p.kids[:0]
	p.recv = p.recv[:0]

	p.nodes = append(p.nodes, topo.Root)
	p.index[topo.Root] = 0
	p.parent = append(p.parent, -1)
	p.recv = append(p.recv, topo.Receivers[topo.Root])
	// BFS using p.nodes itself as the queue; children of node i land
	// contiguously in p.kids, forming the CSR layout as a side effect.
	for i := 0; i < len(p.nodes); i++ {
		p.kidStart = append(p.kidStart, int32(len(p.kids)))
		for _, c := range topo.Children[p.nodes[i]] {
			ci := int32(len(p.nodes))
			p.index[c] = ci
			p.nodes = append(p.nodes, c)
			p.parent = append(p.parent, int32(i))
			p.recv = append(p.recv, topo.Receivers[c])
			p.kids = append(p.kids, ci)
		}
	}
	p.kidStart = append(p.kidStart, int32(len(p.kids)))

	n := len(p.nodes)
	p.report = resetSlice(p.report, n)
	p.loss = resetSlice(p.loss, n)
	p.congest = resetSlice(p.congest, n)
	p.subBytes = resetSlice(p.subBytes, n)
	p.recvCount = resetSlice(p.recvCount, n)
	p.level = resetSlice(p.level, n)
	p.bneck = resetSlice(p.bneck, n)
	p.maxBW = resetSlice(p.maxBW, n)
	p.demand = resetSlice(p.demand, n)
	p.supply = resetSlice(p.supply, n)
	p.avail = resetSlice(p.avail, n)
	p.possible = resetSlice(p.possible, n)
}

// resetSlice returns s with length n and every element zeroed, reusing the
// backing array whenever it is large enough.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// capObs aggregates one edge's per-session observations (stage 2).
type capObs struct {
	losses    []float64 // one per session using the edge
	bytes     []int64   // max subtree bytes per session (observed volume)
	receivers int       // total receivers behind the edge
	congested bool      // any session's child node labeled CONGESTED
}

func (o *capObs) reset() {
	o.losses = o.losses[:0]
	o.bytes = o.bytes[:0]
	o.receivers = 0
	o.congested = false
}

// edgeUse records which sessions cross one edge (stage 4).
type edgeUse struct {
	sessions []int32 // indices into the step's passes
	children []int32 // local index of the edge's child node in that pass
}

func (u *edgeUse) reset() {
	u.sessions = u.sessions[:0]
	u.children = u.children[:0]
}

// stepScratch is the reusable working set of one Step: session passes,
// per-edge aggregation entries, the suggestion output buffer and the typed
// sorters (sorting through pre-bound sort.Interface values avoids the
// per-call closure and header allocations of sort.Slice).
type stepScratch struct {
	passes   []sessionPass
	passPtrs []*sessionPass
	out      []Suggestion

	// Stage 2: per-edge observation arena.
	capIdx   map[Edge]int32
	capObs   []capObs
	capEdges []Edge

	// Stage 4: per-edge usage arena and fair shares.
	useIdx   map[Edge]int32
	uses     []edgeUse
	useEdges []Edge
	weights  []float64
	shares   map[shareKey]float64

	sugSorter  suggestionSorter
	edgeSorter edgeSorter
}

type suggestionSorter struct{ s []Suggestion }

func (x *suggestionSorter) Len() int      { return len(x.s) }
func (x *suggestionSorter) Swap(i, j int) { x.s[i], x.s[j] = x.s[j], x.s[i] }
func (x *suggestionSorter) Less(i, j int) bool {
	if x.s[i].Session != x.s[j].Session {
		return x.s[i].Session < x.s[j].Session
	}
	return x.s[i].Node < x.s[j].Node
}

type edgeSorter struct{ s []Edge }

func (x *edgeSorter) Len() int      { return len(x.s) }
func (x *edgeSorter) Swap(i, j int) { x.s[i], x.s[j] = x.s[j], x.s[i] }
func (x *edgeSorter) Less(i, j int) bool {
	if x.s[i].From != x.s[j].From {
		return x.s[i].From < x.s[j].From
	}
	return x.s[i].To < x.s[j].To
}

// Step runs one full decision interval over every session and returns the
// per-receiver subscription suggestions, sorted by (session, node). The
// returned slice is backed by the algorithm's scratch arena and is only
// valid until the next Step call; callers that need to keep it must copy.
func (a *Algorithm) Step(in Input) []Suggestion {
	a.steps++
	a.resetExplain()
	a.lastSubtrees = in.Subtrees

	s := &a.scratch
	// Bind per-session passes in the scratch arena; skip sessions with no
	// usable topology. Grow the arena first so the pass pointers stay valid.
	for len(s.passes) < len(in.Topologies) {
		s.passes = append(s.passes, sessionPass{})
	}
	s.passPtrs = s.passPtrs[:0]
	used := 0
	for _, topo := range in.Topologies {
		if topo == nil || topo.Root == NodeIDNone {
			continue
		}
		p := &s.passes[used]
		used++
		p.bind(topo)
		if a.explain != nil {
			p.decisions = resetSlice(p.decisions, len(p.nodes))
		} else {
			p.decisions = nil
		}
		s.passPtrs = append(s.passPtrs, p)
	}
	passes := s.passPtrs
	for i := range in.Reports {
		r := &in.Reports[i]
		for _, p := range passes {
			if p.topo.Session == r.Session {
				if li, ok := p.index[r.Node]; ok {
					p.report[li] = r
				}
			}
		}
	}

	// Stage 1: congestion states per session.
	for _, p := range passes {
		a.computeCongestion(p)
	}
	// Stage 2: link capacity estimation on the union of edges.
	a.estimateCapacities(in.Now, passes)
	// Stage 3: bottleneck bandwidths per session.
	for _, p := range passes {
		a.computeBottlenecks(p)
	}
	// Stage 4: inter-session bandwidth sharing on shared links.
	shares := a.shareBandwidth(passes)
	// Stage 5: demand computation + supply allocation.
	out := s.out[:0]
	for _, p := range passes {
		a.computeDemand(in.Now, p)
		a.allocateSupply(p, shares)
		for i := range p.nodes {
			if p.recv[i] {
				out = append(out, Suggestion{Node: p.nodes[i], Session: p.topo.Session, Level: p.supply[i]})
			}
			if p.decisions != nil {
				if d := p.decisions[i]; d != nil {
					d.Supply = p.supply[i]
					a.record(*d)
				}
			}
		}
	}
	s.out = out
	s.sugSorter.s = out
	sort.Sort(&s.sugSorter)

	// Roll per-node state forward and garbage-collect.
	a.rollState(in.Now, passes)
	a.expireBackoffs(in.Now)
	return out
}

// NodeIDNone mirrors netsim.NoNode without re-importing it everywhere.
const NodeIDNone = NodeID(-1)

// rollState pushes this interval's observations into the persistent
// per-node state and drops state for nodes gone from every topology.
func (a *Algorithm) rollState(now sim.Time, passes []*sessionPass) {
	for _, p := range passes {
		for i, n := range p.nodes {
			st := a.stateOf(p.topo.Session, n)
			bit := uint8(0)
			if p.congest[i] {
				bit = 1
			}
			st.hist = ((st.hist << 1) | bit) & 7
			st.bwPrev2 = st.bwPrev
			st.bwPrev = p.subBytes[i]
			// Record only genuine cuts — allocations that force current
			// subscribers down — not the natural end of an upward probe
			// (supply shrinking back toward the actual level).
			if p.supply[i] < st.supplyPrev && p.supply[i] < p.level[i] {
				st.lastReduce = now
			}
			st.supplyPrev2 = st.supplyPrev
			st.supplyPrev = p.supply[i]
			st.lastSeen = now
		}
	}
	// GC node state unseen for 10 intervals.
	horizon := now - 10*a.cfg.Interval
	for k, st := range a.nodes {
		if st.lastSeen < horizon {
			delete(a.nodes, k)
		}
	}
	for e, ls := range a.links {
		if ls.lastSeen < horizon {
			delete(a.links, e)
		}
	}
}

func (a *Algorithm) expireBackoffs(now sim.Time) {
	for k, until := range a.backoffs {
		if until <= now {
			delete(a.backoffs, k)
		}
	}
}

func (a *Algorithm) stateOf(session int, n NodeID) *nodeState {
	k := nodeKey{session, n}
	st, ok := a.nodes[k]
	if !ok {
		st = &nodeState{}
		a.nodes[k] = st
	}
	return st
}

// peekState returns nil when no state exists (first sighting of a node).
func (a *Algorithm) peekState(session int, n NodeID) *nodeState {
	return a.nodes[nodeKey{session, n}]
}

// backingOff reports whether adding `layer` within session at node n (or any
// of its ancestors, where subtree-level back-offs live) is currently barred.
func (a *Algorithm) backingOff(now sim.Time, p *sessionPass, n NodeID, layer int) bool {
	for cur := n; ; {
		if until, ok := a.backoffs[backoffKey{p.topo.Session, cur, layer}]; ok && until > now {
			return true
		}
		parent, ok := p.topo.Parent[cur]
		if !ok {
			return false
		}
		cur = parent
	}
}

// setBackoff arms a random back-off for the given dropped layer at node n.
func (a *Algorithm) setBackoff(now sim.Time, session int, n NodeID, layer int) {
	if layer < 1 || a.cfg.DisableBackoff {
		return
	}
	span := int64(a.cfg.BackoffMax - a.cfg.BackoffMin)
	var jitter sim.Time
	if span > 0 {
		jitter = sim.Time(a.rng.Int63n(span + 1))
	}
	a.backoffs[backoffKey{session, n, layer}] = now + a.cfg.BackoffMin + jitter
}

// Backoffs returns the number of live back-off timers (for tests/metrics).
func (a *Algorithm) Backoffs() int { return len(a.backoffs) }

// CapacityEstimate returns the current estimate for an edge in bits/s and
// whether one exists ( finite ).
func (a *Algorithm) CapacityEstimate(e Edge) (float64, bool) {
	ls, ok := a.links[e]
	if !ok || math.IsInf(ls.capacity, 1) {
		return math.Inf(1), false
	}
	return ls.capacity, true
}
