package core

import "math"

// shareKey addresses one session's share on one shared edge.
type shareKey struct {
	edge    Edge
	session int
}

// shareBandwidth implements stage 4: on every link carrying more than one
// session and having a finite capacity estimate, split the capacity among
// the sessions. Following the paper, each session's weight is its "maximum
// possible demand" — the layers it could use at that link if every other
// session took only its base layer — computed top-down per session and then
// folded bottom-up (an internal node's possible demand is the max over its
// children). The fair share of session i is then w_i·B/Σw_j, never below
// the base-layer rate. Weights are taken in bandwidth units (the cumulative
// rate of the possible demand) rather than raw layer counts, since layers
// double in rate and a layer-count ratio would starve high-rate sessions.
func (a *Algorithm) shareBandwidth(passes []*sessionPass) map[shareKey]float64 {
	// Which sessions use each edge.
	type edgeUse struct {
		sessions []int // indices into passes
		children []NodeID
	}
	edges := make(map[Edge]*edgeUse)
	for pi, p := range passes {
		for _, n := range p.order {
			e, ok := p.topo.EdgeTo(n)
			if !ok {
				continue
			}
			u := edges[e]
			if u == nil {
				u = &edgeUse{}
				edges[e] = u
			}
			u.sessions = append(u.sessions, pi)
			u.children = append(u.children, n)
		}
	}

	base := a.cfg.LayerRates[0]

	// Per session: top-down "available if others at base" bandwidth.
	avail := make([]map[NodeID]float64, len(passes))
	for pi, p := range passes {
		av := make(map[NodeID]float64, len(p.order))
		for _, n := range p.order {
			parent, ok := p.topo.Parent[n]
			if !ok {
				av[n] = math.Inf(1)
				continue
			}
			e := Edge{From: parent, To: n}
			bw := math.Inf(1)
			if ls := a.links[e]; ls != nil && !math.IsInf(ls.capacity, 1) {
				bw = ls.capacity
				// Subtract the base layers of the other sessions on e.
				if u := edges[e]; u != nil {
					others := 0
					for _, si := range u.sessions {
						if si != pi {
							others++
						}
					}
					bw -= float64(others) * base
				}
				if bw < base {
					bw = base // a session is never assumed below its base layer
				}
			}
			av[n] = math.Min(av[parent], bw)
		}
		avail[pi] = av
	}

	// Per session: bottom-up "maximum possible demand" in layers.
	possible := make([]map[NodeID]int, len(passes))
	for pi, p := range passes {
		poss := make(map[NodeID]int, len(p.order))
		for i := len(p.order) - 1; i >= 0; i-- {
			n := p.order[i]
			kids := p.topo.Children[n]
			if len(kids) == 0 {
				poss[n] = a.cfg.LevelFor(avail[pi][n])
				continue
			}
			max := 0
			for _, c := range kids {
				if poss[c] > max {
					max = poss[c]
				}
			}
			if p.topo.Receivers[n] {
				if own := a.cfg.LevelFor(avail[pi][n]); own > max {
					max = own
				}
			}
			poss[n] = max
		}
		possible[pi] = poss
	}

	// Fair shares on shared, finitely-estimated edges.
	shares := make(map[shareKey]float64)
	for _, e := range sortedEdges(edges) {
		u := edges[e]
		if len(u.sessions) < 2 {
			continue
		}
		ls := a.links[e]
		if ls == nil || math.IsInf(ls.capacity, 1) {
			continue
		}
		var total float64
		weights := make([]float64, len(u.sessions))
		for i, si := range u.sessions {
			x := possible[si][u.children[i]]
			if x < 1 {
				x = 1
			}
			weights[i] = a.cfg.CumRate(x)
			total += weights[i]
		}
		for i, si := range u.sessions {
			share := ls.capacity * weights[i] / total
			if share < base {
				share = base
			}
			shares[shareKey{edge: e, session: passes[si].topo.Session}] = share
		}
	}
	return shares
}
