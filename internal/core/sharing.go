package core

import (
	"math"
	"sort"
)

// shareKey addresses one session's share on one shared edge.
type shareKey struct {
	edge    Edge
	session int
}

// shareBandwidth implements stage 4: on every link carrying more than one
// session and having a finite capacity estimate, split the capacity among
// the sessions. Following the paper, each session's weight is its "maximum
// possible demand" — the layers it could use at that link if every other
// session took only its base layer — computed top-down per session and then
// folded bottom-up (an internal node's possible demand is the max over its
// children). The fair share of session i is then w_i·B/Σw_j, never below
// the base-layer rate. Weights are taken in bandwidth units (the cumulative
// rate of the possible demand) rather than raw layer counts, since layers
// double in rate and a layer-count ratio would starve high-rate sessions.
// The returned map lives in the scratch arena and is valid until the next
// Step.
func (a *Algorithm) shareBandwidth(passes []*sessionPass) map[shareKey]float64 {
	// Which sessions use each edge, gathered into the scratch arena.
	s := &a.scratch
	if s.useIdx == nil {
		s.useIdx = make(map[Edge]int32)
	} else {
		clear(s.useIdx)
	}
	s.useEdges = s.useEdges[:0]
	for pi, p := range passes {
		for i := 1; i < len(p.nodes); i++ {
			e := Edge{From: p.nodes[p.parent[i]], To: p.nodes[i]}
			ui, ok := s.useIdx[e]
			if !ok {
				ui = int32(len(s.useEdges))
				if int(ui) == len(s.uses) {
					s.uses = append(s.uses, edgeUse{})
				}
				s.uses[ui].reset()
				s.useIdx[e] = ui
				s.useEdges = append(s.useEdges, e)
			}
			u := &s.uses[ui]
			u.sessions = append(u.sessions, int32(pi))
			u.children = append(u.children, int32(i))
		}
	}

	base := a.cfg.LayerRates[0]

	// Per session: top-down "available if others at base" bandwidth.
	for pi, p := range passes {
		for i := range p.nodes {
			par := p.parent[i]
			if par < 0 {
				p.avail[i] = math.Inf(1)
				continue
			}
			e := Edge{From: p.nodes[par], To: p.nodes[i]}
			bw := math.Inf(1)
			if ls := a.links[e]; ls != nil && !math.IsInf(ls.capacity, 1) {
				bw = ls.capacity
				// Subtract the base layers of the other sessions on e.
				if ui, ok := s.useIdx[e]; ok {
					others := 0
					for _, si := range s.uses[ui].sessions {
						if int(si) != pi {
							others++
						}
					}
					bw -= float64(others) * base
				}
				if bw < base {
					bw = base // a session is never assumed below its base layer
				}
			}
			p.avail[i] = math.Min(p.avail[par], bw)
		}
	}

	// Per session: bottom-up "maximum possible demand" in layers.
	for _, p := range passes {
		for i := int32(len(p.nodes)) - 1; i >= 0; i-- {
			kids := p.children(i)
			if len(kids) == 0 {
				p.possible[i] = a.cfg.LevelFor(p.avail[i])
				continue
			}
			max := 0
			for _, c := range kids {
				if p.possible[c] > max {
					max = p.possible[c]
				}
			}
			if p.recv[i] {
				if own := a.cfg.LevelFor(p.avail[i]); own > max {
					max = own
				}
			}
			p.possible[i] = max
		}
	}

	// Fair shares on shared, finitely-estimated edges.
	if s.shares == nil {
		s.shares = make(map[shareKey]float64)
	} else {
		clear(s.shares)
	}
	s.edgeSorter.s = s.useEdges
	sort.Sort(&s.edgeSorter)
	for _, e := range s.useEdges {
		u := &s.uses[s.useIdx[e]]
		if len(u.sessions) < 2 {
			continue
		}
		ls := a.links[e]
		if ls == nil || math.IsInf(ls.capacity, 1) {
			continue
		}
		var total float64
		weights := s.weights[:0]
		for k, si := range u.sessions {
			x := passes[si].possible[u.children[k]]
			if x < 1 {
				x = 1
			}
			w := a.cfg.CumRate(x)
			weights = append(weights, w)
			total += w
		}
		s.weights = weights
		for k, si := range u.sessions {
			share := ls.capacity * weights[k] / total
			if share < base {
				share = base
			}
			s.shares[shareKey{edge: e, session: passes[si].topo.Session}] = share
		}
	}
	return s.shares
}
