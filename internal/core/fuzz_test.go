package core

import (
	"math/rand"
	"testing"

	"toposense/internal/sim"
)

// Randomized robustness tests: the algorithm must survive arbitrary (valid)
// topologies and arbitrary report values while preserving its output
// invariants. These complement the targeted stage tests with breadth.

// randTopology builds a random tree of up to maxNodes nodes for session s;
// every leaf is a receiver, and some internal nodes may be too.
func randTopology(rng *rand.Rand, session, maxNodes int) *Topology {
	n := rng.Intn(maxNodes-1) + 2
	topo := &Topology{
		Session:   session,
		Root:      NodeID(session * 1000),
		Parent:    map[NodeID]NodeID{},
		Children:  map[NodeID][]NodeID{},
		Receivers: map[NodeID]bool{},
	}
	ids := []NodeID{topo.Root}
	for i := 1; i < n; i++ {
		id := NodeID(session*1000 + i)
		parent := ids[rng.Intn(len(ids))]
		topo.Parent[id] = parent
		topo.Children[parent] = append(topo.Children[parent], id)
		ids = append(ids, id)
	}
	for _, id := range ids {
		if topo.IsLeaf(id) || rng.Intn(5) == 0 {
			if id != topo.Root {
				topo.Receivers[id] = true
			}
		}
	}
	return topo
}

// randReports produces reports for a random subset of a topology's
// receivers with arbitrary (but type-valid) values.
func randReports(rng *rand.Rand, topo *Topology, maxLevel int) []ReceiverState {
	var out []ReceiverState
	for node := range topo.Receivers {
		if rng.Intn(4) == 0 {
			continue // silent receiver
		}
		out = append(out, ReceiverState{
			Node:     node,
			Session:  topo.Session,
			Level:    rng.Intn(maxLevel + 1),
			LossRate: rng.Float64(),
			Bytes:    rng.Int63n(1_000_000),
		})
	}
	return out
}

func TestFuzzStepInvariants(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := New(cfg, rand.New(rand.NewSource(seed+1)))
		sessions := rng.Intn(4) + 1
		for step := 1; step <= 20; step++ {
			var topos []*Topology
			var reports []ReceiverState
			for s := 0; s < sessions; s++ {
				topo := randTopology(rng, s, 12)
				if err := topo.Validate(); err != nil {
					t.Fatalf("seed %d: generated invalid topology: %v", seed, err)
				}
				topos = append(topos, topo)
				reports = append(reports, randReports(rng, topo, cfg.MaxLevel())...)
			}
			out := a.Step(Input{
				Now:        sim.Time(step) * cfg.Interval,
				Topologies: topos,
				Reports:    reports,
			})
			for _, sg := range out {
				if sg.Level < 1 || sg.Level > cfg.MaxLevel() {
					t.Fatalf("seed %d step %d: suggestion out of range: %+v", seed, step, sg)
				}
				found := false
				for _, topo := range topos {
					if topo.Session == sg.Session && topo.Receivers[sg.Node] {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d step %d: suggestion for a non-receiver: %+v", seed, step, sg)
				}
			}
		}
	}
}

func TestFuzzStepDeterminism(t *testing.T) {
	cfg := testConfig()
	run := func() []Suggestion {
		rng := rand.New(rand.NewSource(123))
		a := New(cfg, rand.New(rand.NewSource(321)))
		var last []Suggestion
		for step := 1; step <= 15; step++ {
			topo := randTopology(rng, 0, 10)
			last = a.Step(Input{
				Now:        sim.Time(step) * cfg.Interval,
				Topologies: []*Topology{topo},
				Reports:    randReports(rng, topo, cfg.MaxLevel()),
			})
		}
		return last
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFuzzChangingTopologyBetweenSteps(t *testing.T) {
	// The tree seen by the algorithm mutates every interval (receivers
	// come and go, discovery is stale/torn): persistent state keyed by
	// (session, node) must never wedge or leak unboundedly.
	cfg := testConfig()
	rng := rand.New(rand.NewSource(77))
	a := New(cfg, rand.New(rand.NewSource(78)))
	for step := 1; step <= 200; step++ {
		topo := randTopology(rng, 0, 20)
		a.Step(Input{
			Now:        sim.Time(step) * cfg.Interval,
			Topologies: []*Topology{topo},
			Reports:    randReports(rng, topo, cfg.MaxLevel()),
		})
	}
	// GC horizon is 10 intervals over trees of <= 20 nodes: state must be
	// bounded, not grow with the 200 steps.
	if len(a.nodes) > 20*12 {
		t.Errorf("node state leaked: %d entries", len(a.nodes))
	}
	if len(a.links) > 20*12 {
		t.Errorf("link state leaked: %d entries", len(a.links))
	}
}

func TestFuzzExtremeReports(t *testing.T) {
	// Hostile report values — loss > 1 can't happen from our receiver but
	// the algorithm should still behave (a real deployment can't trust
	// receivers).
	cfg := testConfig()
	a := New(cfg, nil)
	topo := star(0, 3)
	extremes := []ReceiverState{
		{Node: 2, Session: 0, Level: 99, LossRate: 5.0, Bytes: 1 << 60},
		{Node: 3, Session: 0, Level: -7, LossRate: -1.0, Bytes: -5},
		{Node: 4, Session: 0, Level: 0, LossRate: 0, Bytes: 0},
	}
	for step := 1; step <= 10; step++ {
		out := a.Step(Input{
			Now:        sim.Time(step) * cfg.Interval,
			Topologies: []*Topology{topo},
			Reports:    extremes,
		})
		for _, sg := range out {
			if sg.Level < 1 || sg.Level > cfg.MaxLevel() {
				t.Fatalf("step %d: extreme inputs produced out-of-range suggestion %+v", step, sg)
			}
		}
	}
}
