package core

// This file encodes Table I of the paper: the decision table for computing
// demand at each node at time T2. The congestion-state history is a 3-bit
// integer — bit 2 is the state at T0, bit 1 at T1 and bit 0 at T2
// (CONGESTED = 1) — and the "BW Equality" column relates the bandwidth
// received in interval T0–T1 to that received in T1–T2.

// BWRel is the "BW Equality" column: how bandwidth received in the earlier
// interval (T0–T1) compares to the later one (T1–T2).
type BWRel int

const (
	// BWLesser: earlier interval carried less than the later (receiving
	// more recently — ramping up).
	BWLesser BWRel = iota
	// BWEqual: both intervals carried about the same (steady state).
	BWEqual
	// BWGreater: earlier interval carried more (receiving is declining).
	BWGreater
)

func (r BWRel) String() string {
	switch r {
	case BWLesser:
		return "lesser"
	case BWEqual:
		return "equal"
	default:
		return "greater"
	}
}

// CompareBW classifies two interval byte counts into a BWRel with relative
// tolerance tol: counts within tol of the larger are Equal.
func CompareBW(earlier, later int64, tol float64) BWRel {
	a, b := float64(earlier), float64(later)
	max := a
	if b > max {
		max = b
	}
	if max == 0 || absf(a-b) <= tol*max {
		return BWEqual
	}
	if a < b {
		return BWLesser
	}
	return BWGreater
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Action is one cell of Table I.
type Action int

const (
	// ActMaintain keeps the demand at the current subscription level.
	ActMaintain Action = iota
	// ActAdd adds the next layer, if it is not backing off.
	ActAdd
	// ActDropIfHighLoss drops one layer and sets the back-off timer, but
	// only when the loss rate is high (leaf, history 1, BW lesser).
	ActDropIfHighLoss
	// ActReduceToSupplyOld reduces demand to the supply in T0–Tn (the
	// earlier interval's allocation).
	ActReduceToSupplyOld
	// ActHalveSupplyOld reduces demand to half the supply in T0–Tn and
	// sets the back-off timer.
	ActHalveSupplyOld
	// ActHalveSupplyOldIfVeryHigh reduces demand to half the supply in
	// T0–Tn only when loss is very high (leaf, history 3/7, BW greater).
	ActHalveSupplyOldIfVeryHigh
	// ActHalveSupplyRecent reduces demand to half the supply in Tn–T2n
	// (the most recent allocation; internal, history 1/5/7, BW greater).
	ActHalveSupplyRecent
	// ActAccept accepts all demands of the child nodes (internal node).
	ActAccept
)

func (a Action) String() string {
	switch a {
	case ActMaintain:
		return "maintain"
	case ActAdd:
		return "add"
	case ActDropIfHighLoss:
		return "drop-if-high-loss"
	case ActReduceToSupplyOld:
		return "reduce-to-old-supply"
	case ActHalveSupplyOld:
		return "halve-old-supply"
	case ActHalveSupplyOldIfVeryHigh:
		return "halve-old-supply-if-very-high"
	case ActHalveSupplyRecent:
		return "halve-recent-supply"
	case ActAccept:
		return "accept"
	default:
		return "unknown"
	}
}

// SetsBackoff reports whether Table I attaches "set the backoff timer" to
// the action cell.
func (a Action) SetsBackoff() bool {
	switch a {
	case ActDropIfHighLoss, ActHalveSupplyOld:
		return true
	}
	return false
}

// LeafAction returns the Table-I cell for a leaf node with the given 3-bit
// congestion history and BW relation.
func LeafAction(hist uint8, rel BWRel) Action {
	hist &= 7
	switch rel {
	case BWLesser:
		switch hist {
		case 0:
			return ActAdd
		case 1:
			return ActDropIfHighLoss
		case 2, 4, 5, 6:
			return ActMaintain
		case 3:
			return ActReduceToSupplyOld
		default: // 7
			return ActHalveSupplyOld
		}
	case BWEqual:
		switch hist {
		case 0, 4:
			return ActAdd
		case 1, 2, 5, 6:
			return ActMaintain
		default: // 3, 7
			return ActHalveSupplyOld
		}
	default: // BWGreater
		switch hist {
		case 0:
			return ActAdd
		case 1, 2, 4, 5, 6:
			return ActMaintain
		default: // 3, 7
			return ActHalveSupplyOldIfVeryHigh
		}
	}
}

// InternalAction returns the Table-I cell for an internal node.
func InternalAction(hist uint8, rel BWRel) Action {
	hist &= 7
	switch hist {
	case 0, 4:
		return ActAccept
	case 2, 3, 6:
		return ActMaintain
	default: // 1, 5, 7
		if rel == BWGreater {
			return ActHalveSupplyRecent
		}
		return ActHalveSupplyOld
	}
}
