package report

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// aggCanonical renders everything Fold/Merge maintain, for byte comparison
// in the algebra tests.
func aggCanonical(a *Aggregate) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "s=%d reports=%d bytes=%d loss=%.9f max=%.9f worst=%d\n",
		a.Session, a.ReportCount, a.ByteTotal, a.LossTotal, a.MaxLoss, a.Worst)
	for l := range a.LevelReports {
		if a.LevelReports[l] != 0 || a.LevelLoss[l] != 0 {
			fmt.Fprintf(&sb, "level %d: %d %.9f\n", l, a.LevelReports[l], a.LevelLoss[l])
		}
	}
	for _, e := range a.Entries {
		fmt.Fprintf(&sb, "entry %d: lvl=%d n=%d loss=%.9f bytes=%d\n",
			e.Node, e.Level, e.Reports, e.LossSum, e.Bytes)
	}
	return sb.String()
}

func randReports(rng *rand.Rand, nodes []netsim.NodeID, n int) []LossReport {
	var rs []LossReport
	for i := 0; i < n; i++ {
		rs = append(rs, LossReport{
			Node:     nodes[rng.Intn(len(nodes))],
			Session:  1,
			Level:    rng.Intn(8),
			LossRate: float64(rng.Intn(1000)) / 1000, // exact in binary-friendly steps
			Bytes:    int64(rng.Intn(100_000)),
			Interval: 500 * sim.Millisecond,
		})
	}
	return rs
}

func foldAll(rs []LossReport) *Aggregate {
	a := NewAggregate(1, 50)
	for _, r := range rs {
		a.Fold(r)
	}
	return a
}

func TestAggregateFoldSummary(t *testing.T) {
	a := NewAggregate(2, 9)
	defer a.Release()
	a.Fold(LossReport{Node: 4, Session: 2, Level: 3, LossRate: 0.25, Bytes: 1000})
	a.Fold(LossReport{Node: 4, Session: 2, Level: 4, LossRate: 0.75, Bytes: 2000})
	a.Fold(LossReport{Node: 2, Session: 2, Level: 1, LossRate: 0.75, Bytes: 500})

	if a.Receivers() != 2 || a.ReportCount != 3 {
		t.Fatalf("receivers=%d reports=%d, want 2/3", a.Receivers(), a.ReportCount)
	}
	if a.ByteTotal != 3500 || a.LossTotal != 1.75 {
		t.Errorf("bytes=%d losstotal=%g", a.ByteTotal, a.LossTotal)
	}
	if got := a.MeanLoss(); got != 1.75/3 {
		t.Errorf("MeanLoss = %g", got)
	}
	// Max loss 0.75 is shared by nodes 4 and 2: the tie must break toward
	// the lower node ID regardless of fold order.
	if a.MaxLoss != 0.75 || a.Worst != 2 {
		t.Errorf("worst = %.2f@%d, want 0.75@2", a.MaxLoss, a.Worst)
	}
	// Entries sorted by node, later report's level winning.
	if a.Entries[0].Node != 2 || a.Entries[1].Node != 4 {
		t.Errorf("entries unsorted: %+v", a.Entries)
	}
	if e := a.Entries[1]; e.Level != 4 || e.Reports != 2 || e.LossSum != 1.0 || e.Bytes != 3000 {
		t.Errorf("node 4 entry: %+v", e)
	}
	if a.LevelReports[3] != 1 || a.LevelReports[4] != 1 || a.LevelReports[1] != 1 {
		t.Errorf("level histogram: %v", a.LevelReports)
	}
}

func TestAggregateLevelClamp(t *testing.T) {
	a := NewAggregate(0, 1)
	defer a.Release()
	a.Fold(LossReport{Node: 1, Level: -3, LossRate: 0.1})
	a.Fold(LossReport{Node: 2, Level: MaxAggLevel + 7, LossRate: 0.2})
	if a.LevelReports[0] != 1 || a.LevelReports[MaxAggLevel] != 1 {
		t.Errorf("clamp failed: %v", a.LevelReports)
	}
}

func TestAggregateMeanLossEmpty(t *testing.T) {
	a := NewAggregate(0, 1)
	defer a.Release()
	if a.MeanLoss() != 0 {
		t.Errorf("MeanLoss on empty = %g", a.MeanLoss())
	}
	if a.Worst != netsim.NoNode {
		t.Errorf("Worst on empty = %d", a.Worst)
	}
}

// TestMergeFoldEquivalence: merging subtree aggregates must be
// arithmetically identical to folding every underlying report into one
// aggregate — the property the controller's decision equivalence rests on.
func TestMergeFoldEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes := []netsim.NodeID{3, 5, 8, 13, 21, 34}
	for trial := 0; trial < 50; trial++ {
		rs := randReports(rng, nodes, 1+rng.Intn(40))
		whole := foldAll(rs)
		// Split contiguously: each receiver's reports keep their order, as
		// in-order delivery up one tree path guarantees.
		cut := rng.Intn(len(rs) + 1)
		left, right := foldAll(rs[:cut]), foldAll(rs[cut:])
		left.Merge(right)
		if got, want := aggCanonical(left), aggCanonical(whole); got != want {
			t.Fatalf("trial %d: merge != fold\nmerge:\n%s\nfold:\n%s", trial, got, want)
		}
		whole.Release()
		left.Release()
		right.Release()
	}
}

// TestMergeAssociative: (a+b)+c == a+(b+c), including when the same receiver
// appears on multiple sides.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nodes := []netsim.NodeID{2, 4, 6, 8}
	for trial := 0; trial < 50; trial++ {
		parts := [3][]LossReport{
			randReports(rng, nodes, rng.Intn(15)),
			randReports(rng, nodes, rng.Intn(15)),
			randReports(rng, nodes, rng.Intn(15)),
		}
		// (a+b)+c
		ab := foldAll(parts[0])
		b1 := foldAll(parts[1])
		ab.Merge(b1)
		c1 := foldAll(parts[2])
		ab.Merge(c1)
		// a+(b+c)
		bc := foldAll(parts[1])
		c2 := foldAll(parts[2])
		bc.Merge(c2)
		a2 := foldAll(parts[0])
		a2.Merge(bc)
		if got, want := aggCanonical(ab), aggCanonical(a2); got != want {
			t.Fatalf("trial %d: association order changed the result\n(a+b)+c:\n%s\na+(b+c):\n%s",
				trial, got, want)
		}
		for _, x := range []*Aggregate{ab, b1, c1, bc, c2, a2} {
			x.Release()
		}
	}
}

// TestMergeCommutativeDisjoint: over disjoint receiver sets — the only case
// a tree produces — a+b == b+a.
func TestMergeCommutativeDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		ra := randReports(rng, []netsim.NodeID{1, 3, 5}, 1+rng.Intn(20))
		rb := randReports(rng, []netsim.NodeID{2, 4, 6}, 1+rng.Intn(20))
		ab, b1 := foldAll(ra), foldAll(rb)
		ab.Merge(b1)
		ba, a1 := foldAll(rb), foldAll(ra)
		ba.Merge(a1)
		if got, want := aggCanonical(ab), aggCanonical(ba); got != want {
			t.Fatalf("trial %d: a+b != b+a on disjoint sets\na+b:\n%s\nb+a:\n%s", trial, got, want)
		}
		for _, x := range []*Aggregate{ab, b1, ba, a1} {
			x.Release()
		}
	}
}

func TestMergeDuplicateNodeLevel(t *testing.T) {
	a := NewAggregate(0, 1)
	b := NewAggregate(0, 2)
	a.Fold(LossReport{Node: 5, Level: 2, LossRate: 0.1, Bytes: 100})
	b.Fold(LossReport{Node: 5, Level: 6, LossRate: 0.3, Bytes: 200})
	a.Merge(b)
	if len(a.Entries) != 1 {
		t.Fatalf("want 1 merged entry, got %d", len(a.Entries))
	}
	e := a.Entries[0]
	// Sums combine; the right operand's level wins (the later arrival).
	if e.Level != 6 || e.Reports != 2 || e.LossSum != 0.4 || e.Bytes != 300 {
		t.Errorf("merged entry: %+v", e)
	}
	a.Release()
	b.Release()
}

func TestAggregateWireSize(t *testing.T) {
	a := NewAggregate(0, 1)
	defer a.Release()
	if a.WireSize() != AggregateBaseSize {
		t.Errorf("empty WireSize = %d", a.WireSize())
	}
	for i := 0; i < 10; i++ {
		a.Fold(LossReport{Node: netsim.NodeID(i)})
	}
	if got, want := a.WireSize(), AggregateBaseSize+10*AggregateEntrySize; got != want {
		t.Errorf("WireSize = %d, want %d", got, want)
	}
	// The aggregation claim depends on the entry record staying far below a
	// full LossReport on the wire.
	if AggregateEntrySize*8 > LossReportSize {
		t.Errorf("AggregateEntrySize %d too close to LossReportSize %d",
			AggregateEntrySize, LossReportSize)
	}
}

func TestSuggestionBatch(t *testing.T) {
	b := NewSuggestionBatch()
	defer b.Release()
	b.Sent = 3 * sim.Second
	b.Add(4, 0, 3)
	b.Add(9, 1, 5)
	if lvl, ok := b.Find(9, 1); !ok || lvl != 5 {
		t.Errorf("Find(9,1) = %d,%v", lvl, ok)
	}
	if _, ok := b.Find(9, 0); ok {
		t.Error("Find matched the wrong session")
	}
	if _, ok := b.Find(7, 0); ok {
		t.Error("Find matched an absent node")
	}
	if got, want := b.WireSize(), BatchBaseSize+2*BatchEntrySize; got != want {
		t.Errorf("WireSize = %d, want %d", got, want)
	}
	if s := b.String(); !strings.Contains(s, "n=2") {
		t.Errorf("String = %q", s)
	}
}

func TestPoolReuseResets(t *testing.T) {
	a := NewAggregate(3, 7)
	a.Fold(LossReport{Node: 1, Level: 2, LossRate: 0.5, Bytes: 100})
	a.Release()
	for i := 0; i < 10; i++ {
		b := NewAggregate(9, 9)
		if b.ReportCount != 0 || len(b.Entries) != 0 || b.MaxLoss != 0 || b.Worst != netsim.NoNode {
			t.Fatalf("pooled aggregate not reset: %+v", b)
		}
		b.Release()
	}
}

// TestFoldMergeNoAllocs pins the hot path's steady state at zero
// allocations: once an aggregate's entry slice has grown to its working
// set, folding and merging must not touch the heap.
func TestFoldMergeNoAllocs(t *testing.T) {
	nodes := []netsim.NodeID{10, 20, 30, 40, 50, 60, 70, 80}
	a := NewAggregate(0, 1)
	b := NewAggregate(0, 2)
	r := LossReport{Level: 3, LossRate: 0.125, Bytes: 1000}
	warm := func() {
		for _, n := range nodes {
			r.Node = n
			a.Fold(r)
			b.Fold(r)
		}
	}
	warm()
	a.Merge(b) // grow a's entries to the merged working set

	if avg := testing.AllocsPerRun(100, func() {
		for _, n := range nodes {
			r.Node = n
			a.Fold(r)
		}
	}); avg != 0 {
		t.Errorf("Fold allocates %.1f/run at steady state", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { a.Merge(b) }); avg != 0 {
		t.Errorf("Merge allocates %.1f/run at steady state", avg)
	}
}

func BenchmarkAggregateFold(b *testing.B) {
	a := NewAggregate(0, 1)
	defer a.Release()
	r := LossReport{Level: 3, LossRate: 0.125, Bytes: 1000, Interval: 500 * sim.Millisecond}
	const fanout = 64
	for i := 0; i < fanout; i++ {
		r.Node = netsim.NodeID(i * 3)
		a.Fold(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Node = netsim.NodeID((i % fanout) * 3)
		a.Fold(r)
	}
}

func BenchmarkAggregateMerge(b *testing.B) {
	const children, rxPerChild = 8, 16
	// a holds the union; each child is a disjoint block, the tree's shape.
	a := NewAggregate(0, 1)
	defer a.Release()
	var kids []*Aggregate
	r := LossReport{Level: 3, LossRate: 0.125, Bytes: 1000}
	for c := 0; c < children; c++ {
		kid := NewAggregate(0, netsim.NodeID(100+c))
		for i := 0; i < rxPerChild; i++ {
			r.Node = netsim.NodeID(c*rxPerChild + i)
			kid.Fold(r)
			a.Fold(r)
		}
		kids = append(kids, kid)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(kids[i%children])
	}
}
