package report

import (
	"fmt"
	"sync"
	"sync/atomic"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Wire sizes of the aggregated control payloads, in bytes. An Aggregate
// models a fixed header plus a packed per-receiver record (node id, level,
// loss, byte delta — deltas compress far below a full LossReport); a
// SuggestionBatch models a header plus a packed (node, level) pair per
// receiver. The payloads still carry exact Go values — Size is the modeled
// wire cost, like the flat-report constants above.
const (
	AggregateBaseSize  = 64
	AggregateEntrySize = 8
	BatchBaseSize      = 32
	BatchEntrySize     = 6
)

// MaxAggLevel caps the per-level histogram carried by an Aggregate; levels
// above it are clamped into the top slot. Sessions run far fewer layers in
// practice (the paper uses 6).
const MaxAggLevel = 15

// AggEntry is one receiver's folded feedback inside an Aggregate. The fields
// are sums over the folded reports, so folding N reports into an entry and
// consuming the entry is arithmetically identical to consuming the N reports
// one by one: mean loss is LossSum/Reports, exactly the controller's
// accumulator math.
type AggEntry struct {
	Node    netsim.NodeID
	Level   int // level of the most recent folded report
	Reports int32
	LossSum float64
	Bytes   int64
}

// Aggregate is the in-network merge of many LossReports flowing up one
// subtree toward the controller: per-receiver exact entries plus the compact
// subtree summary (receiver count, per-level loss histogram, max/mean loss,
// byte totals, worst-receiver pointer) the hierarchical control plane reads
// without touching entries at all.
//
// Aggregates are pooled: producers call NewAggregate, consumers Release.
// A released Aggregate stays readable until the pool reuses it (reset
// happens at Get, not at Put), so a consumer may Release inside the
// delivery callback and finish reading afterwards.
type Aggregate struct {
	Session  int
	Origin   netsim.NodeID // tree node whose flush produced this aggregate
	Interval sim.Time      // flush interval the aggregate covers
	Sent     sim.Time      // when the origin emitted it

	// Subtree summary, maintained incrementally by Fold/Merge.
	ReportCount int64   // loss reports represented
	ByteTotal   int64   // sum of reported byte counts
	LossTotal   float64 // sum of reported loss rates (mean = LossTotal/ReportCount)
	MaxLoss     float64 // worst single reported loss rate
	Worst       netsim.NodeID // receiver that reported MaxLoss (NoNode when empty)
	// Per-level loss histogram over folded reports: LevelReports[l] reports
	// arrived at (clamped) level l, summing LevelLoss[l] loss rate.
	LevelReports [MaxAggLevel + 1]int32
	LevelLoss    [MaxAggLevel + 1]float64

	// Entries holds one exact record per receiver, sorted by Node.
	Entries []AggEntry
}

var aggPool = sync.Pool{New: func() any { return new(Aggregate) }}

// Pool balance accounting: every New* bumps the live count, every Release
// drops it. sync.Pool has no accounting of its own, so these atomics are the
// only way a test can assert that a run returned every payload it took —
// the contract a deferred-release holder (mcast.Aggregator's lastBatch) is
// easiest to break. A payload on a packet that congestion drops is released
// by no one and falls to the garbage collector; it stays counted as live,
// so balance assertions belong in drop-free scenarios.
var aggLive, batchLive int64

// AggregatesLive returns how many pooled Aggregates are currently checked
// out (NewAggregate calls minus Release calls) across the process.
func AggregatesLive() int64 { return atomic.LoadInt64(&aggLive) }

// BatchesLive returns how many pooled SuggestionBatches are currently
// checked out (NewSuggestionBatch calls minus Release calls).
func BatchesLive() int64 { return atomic.LoadInt64(&batchLive) }

// NewAggregate takes a reset Aggregate from the pool.
func NewAggregate(session int, origin netsim.NodeID) *Aggregate {
	a := aggPool.Get().(*Aggregate)
	atomic.AddInt64(&aggLive, 1)
	a.Reset()
	a.Session = session
	a.Origin = origin
	return a
}

// Release returns the aggregate to the pool. The caller must be the last
// holder; the contents stay readable only until the pool hands it out again.
func (a *Aggregate) Release() {
	atomic.AddInt64(&aggLive, -1)
	aggPool.Put(a)
}

// Reset clears the aggregate, keeping the entry slice's capacity.
func (a *Aggregate) Reset() {
	entries := a.Entries[:0]
	*a = Aggregate{Entries: entries, Worst: netsim.NoNode}
}

// Receivers returns the number of distinct receivers folded in.
func (a *Aggregate) Receivers() int { return len(a.Entries) }

// MeanLoss returns the mean reported loss rate (0 when empty).
func (a *Aggregate) MeanLoss() float64 {
	if a.ReportCount == 0 {
		return 0
	}
	return a.LossTotal / float64(a.ReportCount)
}

// WireSize returns the modeled wire cost in bytes.
func (a *Aggregate) WireSize() int {
	return AggregateBaseSize + len(a.Entries)*AggregateEntrySize
}

func (a *Aggregate) String() string {
	return fmt.Sprintf("aggregate s=%d origin=%d rx=%d reports=%d meanloss=%.3f maxloss=%.3f@%d",
		a.Session, a.Origin, len(a.Entries), a.ReportCount, a.MeanLoss(), a.MaxLoss, a.Worst)
}

// clampLevel folds out-of-range levels into the histogram's edge slots.
func clampLevel(l int) int {
	if l < 0 {
		return 0
	}
	if l > MaxAggLevel {
		return MaxAggLevel
	}
	return l
}

// noteLoss updates the worst-receiver pointer. Strictly higher loss wins;
// ties break toward the lower node ID, which keeps the choice independent of
// fold/merge order.
func (a *Aggregate) noteLoss(rate float64, node netsim.NodeID) {
	if a.Worst == netsim.NoNode || rate > a.MaxLoss || (rate == a.MaxLoss && node < a.Worst) {
		a.MaxLoss = rate
		a.Worst = node
	}
}

// entry returns the record for node, inserting one in sorted position if
// missing. Binary search + shifted insert: entry counts are bounded by the
// subtree's receiver population, and the slice's capacity is reused across
// pool cycles, so the steady state allocates nothing.
func (a *Aggregate) entry(node netsim.NodeID) *AggEntry {
	lo, hi := 0, len(a.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Entries[mid].Node < node {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.Entries) && a.Entries[lo].Node == node {
		return &a.Entries[lo]
	}
	a.Entries = append(a.Entries, AggEntry{})
	copy(a.Entries[lo+1:], a.Entries[lo:])
	a.Entries[lo] = AggEntry{Node: node}
	return &a.Entries[lo]
}

// RemoveEntry drops node's folded record, debiting every summary field it
// contributed to, and reports whether the node was present. When the removed
// node was the worst receiver, the pointer is recomputed from the survivors
// using each entry's mean loss — exact for single-report entries and a
// conservative stand-in otherwise. RemoveEntry only runs on the departure
// path (a receiver that deregistered mid-flush), so it carries no
// fold-order-equivalence contract the way Fold/Merge do.
func (a *Aggregate) RemoveEntry(node netsim.NodeID) bool {
	lo, hi := 0, len(a.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Entries[mid].Node < node {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(a.Entries) || a.Entries[lo].Node != node {
		return false
	}
	e := a.Entries[lo]
	a.ReportCount -= int64(e.Reports)
	a.ByteTotal -= e.Bytes
	a.LossTotal -= e.LossSum
	l := clampLevel(e.Level)
	if a.LevelReports[l] -= e.Reports; a.LevelReports[l] < 0 {
		// Level can drift across folds (the histogram buckets by each
		// report's level, the entry keeps only the latest); clamp rather
		// than exporting a negative count.
		a.LevelReports[l] = 0
	}
	if a.LevelLoss[l] -= e.LossSum; a.LevelLoss[l] < 0 {
		a.LevelLoss[l] = 0
	}
	a.Entries = append(a.Entries[:lo], a.Entries[lo+1:]...)
	if a.Worst == node {
		a.MaxLoss = 0
		a.Worst = netsim.NoNode
		for i := range a.Entries {
			s := &a.Entries[i]
			if s.Reports > 0 {
				a.noteLoss(s.LossSum/float64(s.Reports), s.Node)
			}
		}
	}
	return true
}

// Fold absorbs one receiver's LossReport.
func (a *Aggregate) Fold(r LossReport) {
	e := a.entry(r.Node)
	e.Level = r.Level
	e.Reports++
	e.LossSum += r.LossRate
	e.Bytes += r.Bytes

	a.ReportCount++
	a.ByteTotal += r.Bytes
	a.LossTotal += r.LossRate
	l := clampLevel(r.Level)
	a.LevelReports[l]++
	a.LevelLoss[l] += r.LossRate
	a.noteLoss(r.LossRate, r.Node)
}

// Merge absorbs a child subtree's aggregate into a. All summary fields are
// sums (or order-independent maxima), so Merge is associative, and over
// disjoint receiver sets — the only case a tree produces, since a receiver
// reports up exactly one path — commutative as well. When the same node does
// appear on both sides its sums combine and b's Level wins (b is the later
// arrival under in-order delivery), which keeps Merge associative even then.
func (a *Aggregate) Merge(b *Aggregate) {
	a.ReportCount += b.ReportCount
	a.ByteTotal += b.ByteTotal
	a.LossTotal += b.LossTotal
	for i := range b.LevelReports {
		a.LevelReports[i] += b.LevelReports[i]
		a.LevelLoss[i] += b.LevelLoss[i]
	}
	if b.Worst != netsim.NoNode {
		a.noteLoss(b.MaxLoss, b.Worst)
	}

	n, m := len(a.Entries), len(b.Entries)
	if m == 0 {
		return
	}
	if n == 0 {
		a.Entries = append(a.Entries, b.Entries...)
		return
	}
	// Size the merged slice exactly (two-pointer duplicate count), then
	// merge from the back so nothing is overwritten before it is read.
	dups := 0
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case a.Entries[i].Node == b.Entries[j].Node:
			dups++
			i++
			j++
		case a.Entries[i].Node < b.Entries[j].Node:
			i++
		default:
			j++
		}
	}
	total := n + m - dups
	for len(a.Entries) < total {
		a.Entries = append(a.Entries, AggEntry{})
	}
	i, j, k := n-1, m-1, total-1
	for j >= 0 {
		switch {
		case i >= 0 && a.Entries[i].Node > b.Entries[j].Node:
			a.Entries[k] = a.Entries[i]
			i--
		case i >= 0 && a.Entries[i].Node == b.Entries[j].Node:
			e := a.Entries[i]
			be := b.Entries[j]
			e.Level = be.Level
			e.Reports += be.Reports
			e.LossSum += be.LossSum
			e.Bytes += be.Bytes
			a.Entries[k] = e
			i--
			j--
		default:
			a.Entries[k] = b.Entries[j]
			j--
		}
		k--
	}
}

// SugEntry is one receiver's prescription inside a SuggestionBatch.
type SugEntry struct {
	Node    netsim.NodeID
	Session int
	Level   int
}

// SuggestionBatch carries the controller's prescriptions for every receiver
// reached through one next hop, replacing per-receiver Suggestion unicasts.
// Interior nodes split it per next hop as it travels down the tree;
// receivers on a batch's stop read their own entry with Find. Batches are
// pooled like Aggregates: reset at Get, readable until reuse after Release.
type SuggestionBatch struct {
	Sent    sim.Time
	Entries []SugEntry
}

var batchPool = sync.Pool{New: func() any { return new(SuggestionBatch) }}

// NewSuggestionBatch takes an empty batch from the pool.
func NewSuggestionBatch() *SuggestionBatch {
	b := batchPool.Get().(*SuggestionBatch)
	atomic.AddInt64(&batchLive, 1)
	b.Sent = 0
	b.Entries = b.Entries[:0]
	return b
}

// Release returns the batch to the pool.
func (b *SuggestionBatch) Release() {
	atomic.AddInt64(&batchLive, -1)
	batchPool.Put(b)
}

// Add appends one prescription.
func (b *SuggestionBatch) Add(node netsim.NodeID, session, level int) {
	b.Entries = append(b.Entries, SugEntry{Node: node, Session: session, Level: level})
}

// Find returns the prescribed level for (node, session). Linear scan: by the
// last hop a batch holds only the receivers behind that hop.
func (b *SuggestionBatch) Find(node netsim.NodeID, session int) (level int, ok bool) {
	for i := range b.Entries {
		if b.Entries[i].Node == node && b.Entries[i].Session == session {
			return b.Entries[i].Level, true
		}
	}
	return 0, false
}

// WireSize returns the modeled wire cost in bytes.
func (b *SuggestionBatch) WireSize() int {
	return BatchBaseSize + len(b.Entries)*BatchEntrySize
}

func (b *SuggestionBatch) String() string {
	return fmt.Sprintf("suggestion-batch n=%d", len(b.Entries))
}
