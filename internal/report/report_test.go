package report

import (
	"strings"
	"testing"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

func TestLossReportRate(t *testing.T) {
	cases := []struct {
		bytes    int64
		interval sim.Time
		want     float64
	}{
		{12_000, sim.Second, 96_000},
		{0, sim.Second, 0},
		{1000, 0, 0},           // guard: zero interval
		{1000, -sim.Second, 0}, // guard: negative interval
		{250_000, 2 * sim.Second, 1e6},
	}
	for _, c := range cases {
		r := LossReport{Bytes: c.bytes, Interval: c.interval}
		if got := r.Rate(); got != c.want {
			t.Errorf("Rate(%d bytes, %v) = %g, want %g", c.bytes, c.interval, got, c.want)
		}
	}
}

func TestPayloadStrings(t *testing.T) {
	reg := Register{Node: 3, Session: 1, Level: 2}
	if s := reg.String(); !strings.Contains(s, "node=3") || !strings.Contains(s, "lvl=2") {
		t.Errorf("Register.String = %q", s)
	}
	lr := LossReport{Node: 4, Session: 2, Level: 3, LossRate: 0.125, Bytes: 999}
	if s := lr.String(); !strings.Contains(s, "loss=0.125") || !strings.Contains(s, "bytes=999") {
		t.Errorf("LossReport.String = %q", s)
	}
	sg := Suggestion{Node: 5, Session: 0, Level: 4}
	if s := sg.String(); !strings.Contains(s, "lvl=4") {
		t.Errorf("Suggestion.String = %q", s)
	}
}

func TestNewControlPacket(t *testing.T) {
	payload := Suggestion{Node: 7, Session: 1, Level: 3}
	p := NewControlPacket(2, 7, SuggestionSize, 5*sim.Second, payload)
	if p.Kind != netsim.Control {
		t.Error("not a control packet")
	}
	if p.Src != 2 || p.Dst != 7 {
		t.Errorf("addressing: %d -> %d", p.Src, p.Dst)
	}
	if p.Group != netsim.NoGroup || p.Multicast() {
		t.Error("control packet must be unicast")
	}
	if p.Size != SuggestionSize || p.Sent != 5*sim.Second {
		t.Errorf("size/time: %d, %v", p.Size, p.Sent)
	}
	if got, ok := p.Payload.(Suggestion); !ok || got != payload {
		t.Errorf("payload round trip: %#v", p.Payload)
	}
}

func TestWireSizesAreSmall(t *testing.T) {
	// Control traffic must stay negligible next to 1000-byte media packets:
	// the paper requires per-interval control traffic linear in receivers
	// and small.
	for name, size := range map[string]int{
		"register":   RegisterSize,
		"loss":       LossReportSize,
		"suggestion": SuggestionSize,
	} {
		if size <= 0 || size > 200 {
			t.Errorf("%s wire size %d out of sane range", name, size)
		}
	}
}
