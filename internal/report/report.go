// Package report defines the control-plane message payloads exchanged
// between receivers and the controller agent: registration, periodic
// loss/byte reports (the RTCP-like feedback the paper assumes), and the
// controller's subscription suggestions. These payloads ride in
// netsim.Packet.Payload on Control packets, so they share links and queues
// with media traffic and can be lost to congestion — as in the paper's
// simulations.
package report

import (
	"fmt"

	"toposense/internal/netsim"
	"toposense/internal/sim"
)

// Wire sizes in bytes. Loss reports are small, like RTCP receiver reports.
const (
	RegisterSize   = 64
	LossReportSize = 96
	SuggestionSize = 64
	DeregisterSize = 48
)

// Register announces a receiver to the controller when it starts
// subscribing to a session.
type Register struct {
	Node    netsim.NodeID // the receiver's node
	Session int
	Level   int // initial subscription level
}

func (r Register) String() string {
	return fmt.Sprintf("register node=%d s=%d lvl=%d", r.Node, r.Session, r.Level)
}

// Deregister announces a receiver's departure from a session: the
// controller must forget it (no further suggestions, no ghost entry in the
// next algorithm pass) and any in-network aggregation along the report path
// must purge its pending entries.
type Deregister struct {
	Node    netsim.NodeID // the departing receiver's node
	Session int
}

func (d Deregister) String() string {
	return fmt.Sprintf("deregister node=%d s=%d", d.Node, d.Session)
}

// LossReport is a receiver's periodic feedback for one session over one
// measurement interval.
type LossReport struct {
	Node     netsim.NodeID
	Session  int
	Level    int      // subscription level during the interval
	LossRate float64  // fraction of expected packets missing, 0..1
	Bytes    int64    // bytes received during the interval
	Interval sim.Time // length of the measurement interval
	Sent     sim.Time // when the receiver emitted the report
}

// Rate returns the received bandwidth in bits per second over the interval.
func (r LossReport) Rate() float64 {
	if r.Interval <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Interval.Seconds()
}

func (r LossReport) String() string {
	return fmt.Sprintf("report node=%d s=%d lvl=%d loss=%.3f bytes=%d", r.Node, r.Session, r.Level, r.LossRate, r.Bytes)
}

// Suggestion is the controller's prescribed subscription level for one
// receiver and session.
type Suggestion struct {
	Node    netsim.NodeID
	Session int
	Level   int
	Sent    sim.Time
}

func (s Suggestion) String() string {
	return fmt.Sprintf("suggest node=%d s=%d lvl=%d", s.Node, s.Session, s.Level)
}

// NewControlPacket wraps a payload in a unicast control packet from src to
// dst with the given wire size.
func NewControlPacket(src, dst netsim.NodeID, size int, now sim.Time, payload any) *netsim.Packet {
	return &netsim.Packet{
		Kind:    netsim.Control,
		Src:     src,
		Dst:     dst,
		Group:   netsim.NoGroup,
		Size:    size,
		Sent:    now,
		Payload: payload,
	}
}
