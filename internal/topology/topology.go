// Package topology builds the evaluation topologies of the paper's Figure 5
// — Topology A (one session, two receiver sets with different bandwidth
// constraints) and Topology B (N sessions, one receiver each, competing on
// a shared bottleneck link) — plus a tiered-Internet generator in the shape
// of the paper's Figure 2, and the large-scale star / ring-mesh / k-ary
// tree / linear-chain families (families.go) used by the fig_scale study.
//
// Every family is a Config registered behind the Generator registry
// (generator.go): construct a config, Validate it, Generate the Build — or
// resolve a "name,key=val,..." spec string with Parse. The historical
// BuildA/BuildB/BuildTiered entry points remain as thin wrappers.
//
// All links default to the paper's parameters: 200 ms propagation delay and
// drop-tail queues. The canonical topologies keep the source-to-receiver
// path at three hops, giving the 600 ms maximum path latency the paper
// quotes for its simulations.
package topology

import (
	"fmt"
	"math/rand"

	"toposense/internal/netsim"
	"toposense/internal/sim"
	"toposense/internal/source"
)

// Paper-standard link parameters.
const (
	DefaultDelay      = 200 * sim.Millisecond
	DefaultQueueLimit = netsim.DefaultQueueLimit
	// FatBandwidth is "not the bottleneck": used for backbone and leaf
	// access links.
	FatBandwidth = 100e6
)

// Build is the result of constructing an evaluation topology: the network
// plus the handles experiments need.
type Build struct {
	Net *netsim.Network
	// Sources holds the source node of each session (session i at index i).
	Sources []*netsim.Node
	// Controller is the node hosting the controller agent (a source node,
	// as in the paper, so control traffic shares the congested paths).
	Controller *netsim.Node
	// Receivers[i] lists the receiver nodes of session i.
	Receivers [][]*netsim.Node
	// Optimal[i][j] is the optimal subscription level of Receivers[i][j],
	// derived from the configured capacities.
	Optimal [][]int
	// Bottlenecks lists the constrained links, for instrumentation.
	Bottlenecks []*netsim.Link
	// Domains assigns each node (by ID) a partition label for the sharded
	// engine: label 0 holds the source and controller, labels 1..k the
	// link-delay-separated regions (tree root-child subtrees, star arms,
	// linear chains, tiered tier-1 subtrees). Every link between two
	// labels has positive propagation delay, which is what gives the
	// conservative parallel engine its lookahead. Nil means the family
	// offers no useful cut (Topology A/B, mesh) and a sharded engine
	// degenerates to one partition.
	Domains []int
}

// AllReceivers flattens the per-session receiver lists.
func (b *Build) AllReceivers() []*netsim.Node {
	var out []*netsim.Node
	for _, rs := range b.Receivers {
		out = append(out, rs...)
	}
	return out
}

// validLayers rejects layer counts the source model cannot express.
func validLayers(layers int) error {
	if layers < 0 || layers > 62 {
		return fmt.Errorf("Layers %d out of range [0, 62]", layers)
	}
	return nil
}

// AConfig parameterizes Topology A: one session; receiver set 1 sits behind
// a slow access link, set 2 behind a faster one.
type AConfig struct {
	ReceiversPerSet int      // 0 means 1
	Set1Bandwidth   float64  // bits/s; 0 means 100 Kbps (optimal: 2 layers)
	Set2Bandwidth   float64  // bits/s; 0 means 500 Kbps (optimal: 4 layers)
	Delay           sim.Time // 0 means DefaultDelay
	QueueLimit      int      // 0 means DefaultQueueLimit
	Layers          int      // 0 means source.DefaultLayers
}

// Validate implements Config: zero means default, anything else must be
// buildable.
func (c *AConfig) Validate() error {
	switch {
	case c.ReceiversPerSet < 0:
		return fmt.Errorf("topology a: ReceiversPerSet %d is negative", c.ReceiversPerSet)
	case c.Set1Bandwidth < 0 || c.Set2Bandwidth < 0:
		return fmt.Errorf("topology a: bandwidths must be positive (got %g, %g)", c.Set1Bandwidth, c.Set2Bandwidth)
	case c.Delay < 0:
		return fmt.Errorf("topology a: Delay %v is negative", c.Delay)
	case c.QueueLimit < 0:
		return fmt.Errorf("topology a: QueueLimit %d is negative", c.QueueLimit)
	}
	if err := validLayers(c.Layers); err != nil {
		return fmt.Errorf("topology a: %w", err)
	}
	return nil
}

func (c AConfig) withDefaults() AConfig {
	if c.ReceiversPerSet == 0 {
		c.ReceiversPerSet = 1
	}
	if c.Set1Bandwidth == 0 {
		c.Set1Bandwidth = 100e3
	}
	if c.Set2Bandwidth == 0 {
		c.Set2Bandwidth = 500e3
	}
	if c.Delay == 0 {
		c.Delay = DefaultDelay
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
	return c
}

// Generate constructs Topology A:
//
//	src ── hub ──(set1 bottleneck)── g1 ── set-1 receivers
//	            └(set2 bottleneck)── g2 ── set-2 receivers
//
// The set access links are the bottlenecks; the multicast stream crosses
// each once, so every receiver in a set shares the set's constraint — the
// paper's "two sets of receivers, each having different bandwidth
// constraints".
func (c *AConfig) Generate(e sim.Scheduler) (*Build, error) {
	cfg := c.withDefaults()
	n := netsim.New(e)
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	src := n.AddNode("src")
	hub := n.AddNode("hub")
	n.Connect(src, hub, fat)

	rates := source.Rates(cfg.Layers)
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	addSet := func(name string, bw float64) {
		gw := n.AddNode(name)
		down, _ := n.Connect(hub, gw, netsim.LinkConfig{Bandwidth: bw, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit})
		b.Bottlenecks = append(b.Bottlenecks, down)
		opt := source.LevelForBandwidth(rates, bw)
		for i := 0; i < cfg.ReceiversPerSet; i++ {
			rx := n.AddNode(fmt.Sprintf("%s-rx%d", name, i))
			n.Connect(gw, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			b.Optimal[0] = append(b.Optimal[0], opt)
		}
	}
	addSet("set1", cfg.Set1Bandwidth)
	addSet("set2", cfg.Set2Bandwidth)
	return b, nil
}

// BuildA constructs Topology A.
//
// Deprecated: use Generate (or the registry's "a" entry) and handle the
// error; BuildA panics on an invalid config.
func BuildA(e *sim.Engine, cfg AConfig) *Build {
	return MustGenerate(e, &cfg)
}

// BConfig parameterizes Topology B: Sessions independent sessions, one
// receiver each, all crossing one shared link sized PerSession × Sessions.
type BConfig struct {
	Sessions   int      // 0 means 1
	PerSession float64  // bits/s of shared capacity per session; 0 means 500 Kbps
	Delay      sim.Time // 0 means DefaultDelay
	QueueLimit int      // 0 means DefaultQueueLimit
	Layers     int      // 0 means source.DefaultLayers
}

// Validate implements Config.
func (c *BConfig) Validate() error {
	switch {
	case c.Sessions < 0:
		return fmt.Errorf("topology b: Sessions %d is negative", c.Sessions)
	case c.PerSession < 0:
		return fmt.Errorf("topology b: PerSession %g is negative", c.PerSession)
	case c.Delay < 0:
		return fmt.Errorf("topology b: Delay %v is negative", c.Delay)
	case c.QueueLimit < 0:
		return fmt.Errorf("topology b: QueueLimit %d is negative", c.QueueLimit)
	}
	if err := validLayers(c.Layers); err != nil {
		return fmt.Errorf("topology b: %w", err)
	}
	return nil
}

func (c BConfig) withDefaults() BConfig {
	if c.Sessions == 0 {
		c.Sessions = 1
	}
	if c.PerSession == 0 {
		c.PerSession = 500e3
	}
	if c.Delay == 0 {
		c.Delay = DefaultDelay
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
	return c
}

// Generate constructs Topology B:
//
//	src_i ── X ══(shared link, Sessions × PerSession)══ Y ── rx_i
//
// The shared link's capacity is scaled with the number of sessions so each
// session can ideally receive PerSession (4 layers at the default 500 Kbps),
// exactly as in the paper's inter-session fairness experiments.
func (c *BConfig) Generate(e sim.Scheduler) (*Build, error) {
	cfg := c.withDefaults()
	n := netsim.New(e)
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	x := n.AddNode("X")
	y := n.AddNode("Y")
	shared := cfg.PerSession * float64(cfg.Sessions)
	// The shared queue scales with session count so that per-session
	// buffering stays comparable as competition grows.
	sharedQ := cfg.QueueLimit * cfg.Sessions
	down, _ := n.Connect(x, y, netsim.LinkConfig{Bandwidth: shared, Delay: cfg.Delay, QueueLimit: sharedQ})

	rates := source.Rates(cfg.Layers)
	opt := source.LevelForBandwidth(rates, cfg.PerSession)
	b := &Build{Net: n, Bottlenecks: []*netsim.Link{down}}
	for s := 0; s < cfg.Sessions; s++ {
		src := n.AddNode(fmt.Sprintf("src%d", s))
		n.Connect(src, x, fat)
		rx := n.AddNode(fmt.Sprintf("rx%d", s))
		n.Connect(y, rx, fat)
		b.Sources = append(b.Sources, src)
		b.Receivers = append(b.Receivers, []*netsim.Node{rx})
		b.Optimal = append(b.Optimal, []int{opt})
	}
	b.Controller = b.Sources[0]
	return b, nil
}

// BuildB constructs Topology B.
//
// Deprecated: use Generate (or the registry's "b" entry) and handle the
// error; BuildB panics on an invalid config.
func BuildB(e *sim.Engine, cfg BConfig) *Build {
	return MustGenerate(e, &cfg)
}

// TieredConfig parameterizes the tiered-Internet generator (Figure 2): a
// national backbone tier fanning out into regional, local and institutional
// tiers with decreasing bandwidth — the "last mile" shape TopoSense
// exploits.
type TieredConfig struct {
	Seed int64
	// FanOut[i] is how many tier-i+1 nodes hang off each tier-i node.
	FanOut []int
	// Bandwidth[i] is the capacity of links from tier i to tier i+1.
	Bandwidth []float64
	// ReceiversPerLeaf attaches receivers at the deepest tier; 0 means 1.
	ReceiversPerLeaf int
	Delay            sim.Time
	QueueLimit       int
	Layers           int
}

// Validate implements Config.
func (c *TieredConfig) Validate() error {
	if len(c.FanOut) == 0 || len(c.FanOut) != len(c.Bandwidth) {
		return fmt.Errorf("topology tiered: FanOut and Bandwidth must be non-empty and equal length (got %d, %d)", len(c.FanOut), len(c.Bandwidth))
	}
	for i, f := range c.FanOut {
		if f < 1 {
			return fmt.Errorf("topology tiered: FanOut[%d] = %d, want >= 1", i, f)
		}
	}
	for i, bw := range c.Bandwidth {
		if bw <= 0 {
			return fmt.Errorf("topology tiered: Bandwidth[%d] = %g, want > 0", i, bw)
		}
	}
	switch {
	case c.ReceiversPerLeaf < 0:
		return fmt.Errorf("topology tiered: ReceiversPerLeaf %d is negative", c.ReceiversPerLeaf)
	case c.Delay < 0:
		return fmt.Errorf("topology tiered: Delay %v is negative", c.Delay)
	case c.QueueLimit < 0:
		return fmt.Errorf("topology tiered: QueueLimit %d is negative", c.QueueLimit)
	}
	if err := validLayers(c.Layers); err != nil {
		return fmt.Errorf("topology tiered: %w", err)
	}
	return nil
}

func (c TieredConfig) withDefaults() TieredConfig {
	if c.ReceiversPerLeaf == 0 {
		c.ReceiversPerLeaf = 1
	}
	if c.Delay == 0 {
		c.Delay = DefaultDelay
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
	return c
}

// Generate constructs a random tiered topology with one session rooted at
// the top tier. The optimal level of each receiver is the min bandwidth
// along its path.
func (c *TieredConfig) Generate(e sim.Scheduler) (*Build, error) {
	cfg := c.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netsim.New(e)
	rates := source.Rates(cfg.Layers)
	src := n.AddNode("src")
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	// Partition cut: the backbone source alone is domain 0; each tier-1
	// subtree is one domain behind its backbone downlink.
	b.Domains = []int{0}
	type tiered struct {
		node  *netsim.Node
		minBW float64
		dom   int
	}
	frontier := []tiered{{node: src, minBW: FatBandwidth}}
	for tier := 0; tier < len(cfg.FanOut); tier++ {
		var next []tiered
		for _, parent := range frontier {
			for k := 0; k < cfg.FanOut[tier]; k++ {
				child := n.AddNode(fmt.Sprintf("t%d-%d", tier+1, len(next)))
				dom := parent.dom
				if tier == 0 {
					dom = k + 1
				}
				b.Domains = append(b.Domains, dom)
				// Jitter capacity ±25% around the tier's nominal value.
				bw := cfg.Bandwidth[tier] * (0.75 + 0.5*rng.Float64())
				down, _ := n.Connect(parent.node, child, netsim.LinkConfig{
					Bandwidth: bw, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit,
				})
				minBW := parent.minBW
				if bw < minBW {
					minBW = bw
					b.Bottlenecks = append(b.Bottlenecks, down)
				}
				next = append(next, tiered{node: child, minBW: minBW, dom: dom})
			}
		}
		frontier = next
	}
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	for _, leaf := range frontier {
		for k := 0; k < cfg.ReceiversPerLeaf; k++ {
			rx := n.AddNode(fmt.Sprintf("%s-rx%d", leaf.node.Name, k))
			b.Domains = append(b.Domains, leaf.dom)
			n.Connect(leaf.node, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			b.Optimal[0] = append(b.Optimal[0], source.LevelForBandwidth(rates, leaf.minBW))
		}
	}
	return b, nil
}

// BuildTiered constructs a random tiered topology.
//
// Deprecated: use Generate (or the registry's "tiered" entry) and handle
// the error; BuildTiered panics on an invalid config.
func BuildTiered(e *sim.Engine, cfg TieredConfig) *Build {
	return MustGenerate(e, &cfg)
}

func init() {
	Register(Generator{
		Name:  "a",
		Title: "Topology A: two receiver sets behind different bottlenecks (paper Fig. 5)",
		New:   func() Config { return &AConfig{} },
		Keys: []Key{
			key("rxset", "receivers per set (default 1)", func(c *AConfig, v string) error { return parseInt(&c.ReceiversPerSet, v) }),
			key("bw1", "set-1 access bandwidth in bits/s (default 100e3)", func(c *AConfig, v string) error { return parseFloat(&c.Set1Bandwidth, v) }),
			key("bw2", "set-2 access bandwidth in bits/s (default 500e3)", func(c *AConfig, v string) error { return parseFloat(&c.Set2Bandwidth, v) }),
			key("delay", "per-link propagation delay in seconds (default 0.2)", func(c *AConfig, v string) error { return parseSeconds(&c.Delay, v) }),
			key("queue", "drop-tail queue limit in packets (default 20)", func(c *AConfig, v string) error { return parseInt(&c.QueueLimit, v) }),
			key("layers", "session layers (default 6)", func(c *AConfig, v string) error { return parseInt(&c.Layers, v) }),
		},
	})
	Register(Generator{
		Name:  "b",
		Title: "Topology B: N sessions competing on one shared link (paper Fig. 5)",
		New:   func() Config { return &BConfig{} },
		Keys: []Key{
			key("sessions", "competing sessions (default 1)", func(c *BConfig, v string) error { return parseInt(&c.Sessions, v) }),
			key("persession", "shared capacity per session in bits/s (default 500e3)", func(c *BConfig, v string) error { return parseFloat(&c.PerSession, v) }),
			key("delay", "per-link propagation delay in seconds (default 0.2)", func(c *BConfig, v string) error { return parseSeconds(&c.Delay, v) }),
			key("queue", "per-session queue limit in packets (default 20)", func(c *BConfig, v string) error { return parseInt(&c.QueueLimit, v) }),
			key("layers", "session layers (default 6)", func(c *BConfig, v string) error { return parseInt(&c.Layers, v) }),
		},
	})
	Register(Generator{
		Name:  "tiered",
		Title: "Tiered Internet: backbone fanning into slower tiers (paper Fig. 2)",
		New:   func() Config { return &TieredConfig{FanOut: []int{2, 3}, Bandwidth: []float64{10e6, 600e3}} },
		Keys: []Key{
			key("seed", "bandwidth-jitter seed (default 0)", func(c *TieredConfig, v string) error { return parseInt64(&c.Seed, v) }),
			key("fanout", "':'-separated per-tier fan-out (default 2:3)", func(c *TieredConfig, v string) error { return parseInts(&c.FanOut, v) }),
			key("bw", "':'-separated per-tier bandwidth in bits/s (default 10e6:600e3)", func(c *TieredConfig, v string) error { return parseFloats(&c.Bandwidth, v) }),
			key("rxleaf", "receivers per deepest-tier node (default 1)", func(c *TieredConfig, v string) error { return parseInt(&c.ReceiversPerLeaf, v) }),
			key("delay", "per-link propagation delay in seconds (default 0.2)", func(c *TieredConfig, v string) error { return parseSeconds(&c.Delay, v) }),
			key("queue", "drop-tail queue limit in packets (default 20)", func(c *TieredConfig, v string) error { return parseInt(&c.QueueLimit, v) }),
			key("layers", "session layers (default 6)", func(c *TieredConfig, v string) error { return parseInt(&c.Layers, v) }),
		},
	})
}
