// Package topology builds the evaluation topologies of the paper's Figure 5
// — Topology A (one session, two receiver sets with different bandwidth
// constraints) and Topology B (N sessions, one receiver each, competing on
// a shared bottleneck link) — plus a tiered-Internet generator in the shape
// of the paper's Figure 2 for broader testing.
//
// All links default to the paper's parameters: 200 ms propagation delay and
// drop-tail queues. Every built topology keeps the source-to-receiver path
// at three hops, giving the 600 ms maximum path latency the paper quotes
// for its simulations.
package topology

import (
	"fmt"
	"math/rand"

	"toposense/internal/netsim"
	"toposense/internal/sim"
	"toposense/internal/source"
)

// Paper-standard link parameters.
const (
	DefaultDelay      = 200 * sim.Millisecond
	DefaultQueueLimit = netsim.DefaultQueueLimit
	// FatBandwidth is "not the bottleneck": used for backbone and leaf
	// access links.
	FatBandwidth = 100e6
)

// Build is the result of constructing an evaluation topology: the network
// plus the handles experiments need.
type Build struct {
	Net *netsim.Network
	// Sources holds the source node of each session (session i at index i).
	Sources []*netsim.Node
	// Controller is the node hosting the controller agent (a source node,
	// as in the paper, so control traffic shares the congested paths).
	Controller *netsim.Node
	// Receivers[i] lists the receiver nodes of session i.
	Receivers [][]*netsim.Node
	// Optimal[i][j] is the optimal subscription level of Receivers[i][j],
	// derived from the configured capacities.
	Optimal [][]int
	// Bottlenecks lists the constrained links, for instrumentation.
	Bottlenecks []*netsim.Link
}

// AllReceivers flattens the per-session receiver lists.
func (b *Build) AllReceivers() []*netsim.Node {
	var out []*netsim.Node
	for _, rs := range b.Receivers {
		out = append(out, rs...)
	}
	return out
}

// AConfig parameterizes Topology A: one session; receiver set 1 sits behind
// a slow access link, set 2 behind a faster one.
type AConfig struct {
	ReceiversPerSet int
	Set1Bandwidth   float64  // bits/s; 0 means 100 Kbps (optimal: 2 layers)
	Set2Bandwidth   float64  // bits/s; 0 means 500 Kbps (optimal: 4 layers)
	Delay           sim.Time // 0 means DefaultDelay
	QueueLimit      int      // 0 means DefaultQueueLimit
	Layers          int      // 0 means source.DefaultLayers
}

func (c *AConfig) normalize() {
	if c.ReceiversPerSet <= 0 {
		c.ReceiversPerSet = 1
	}
	if c.Set1Bandwidth == 0 {
		c.Set1Bandwidth = 100e3
	}
	if c.Set2Bandwidth == 0 {
		c.Set2Bandwidth = 500e3
	}
	if c.Delay == 0 {
		c.Delay = DefaultDelay
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
}

// BuildA constructs Topology A:
//
//	src ── hub ──(set1 bottleneck)── g1 ── set-1 receivers
//	            └(set2 bottleneck)── g2 ── set-2 receivers
//
// The set access links are the bottlenecks; the multicast stream crosses
// each once, so every receiver in a set shares the set's constraint — the
// paper's "two sets of receivers, each having different bandwidth
// constraints".
func BuildA(e *sim.Engine, cfg AConfig) *Build {
	cfg.normalize()
	n := netsim.New(e)
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	src := n.AddNode("src")
	hub := n.AddNode("hub")
	n.Connect(src, hub, fat)

	rates := source.Rates(cfg.Layers)
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	addSet := func(name string, bw float64) {
		gw := n.AddNode(name)
		down, _ := n.Connect(hub, gw, netsim.LinkConfig{Bandwidth: bw, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit})
		b.Bottlenecks = append(b.Bottlenecks, down)
		opt := source.LevelForBandwidth(rates, bw)
		for i := 0; i < cfg.ReceiversPerSet; i++ {
			rx := n.AddNode(fmt.Sprintf("%s-rx%d", name, i))
			n.Connect(gw, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			b.Optimal[0] = append(b.Optimal[0], opt)
		}
	}
	addSet("set1", cfg.Set1Bandwidth)
	addSet("set2", cfg.Set2Bandwidth)
	return b
}

// BConfig parameterizes Topology B: Sessions independent sessions, one
// receiver each, all crossing one shared link sized PerSession × Sessions.
type BConfig struct {
	Sessions   int
	PerSession float64  // bits/s of shared capacity per session; 0 means 500 Kbps
	Delay      sim.Time // 0 means DefaultDelay
	QueueLimit int      // 0 means DefaultQueueLimit
	Layers     int      // 0 means source.DefaultLayers
}

func (c *BConfig) normalize() {
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.PerSession == 0 {
		c.PerSession = 500e3
	}
	if c.Delay == 0 {
		c.Delay = DefaultDelay
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.Layers == 0 {
		c.Layers = source.DefaultLayers
	}
}

// BuildB constructs Topology B:
//
//	src_i ── X ══(shared link, Sessions × PerSession)══ Y ── rx_i
//
// The shared link's capacity is scaled with the number of sessions so each
// session can ideally receive PerSession (4 layers at the default 500 Kbps),
// exactly as in the paper's inter-session fairness experiments.
func BuildB(e *sim.Engine, cfg BConfig) *Build {
	cfg.normalize()
	n := netsim.New(e)
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	x := n.AddNode("X")
	y := n.AddNode("Y")
	shared := cfg.PerSession * float64(cfg.Sessions)
	// The shared queue scales with session count so that per-session
	// buffering stays comparable as competition grows.
	sharedQ := cfg.QueueLimit * cfg.Sessions
	down, _ := n.Connect(x, y, netsim.LinkConfig{Bandwidth: shared, Delay: cfg.Delay, QueueLimit: sharedQ})

	rates := source.Rates(cfg.Layers)
	opt := source.LevelForBandwidth(rates, cfg.PerSession)
	b := &Build{Net: n, Bottlenecks: []*netsim.Link{down}}
	for s := 0; s < cfg.Sessions; s++ {
		src := n.AddNode(fmt.Sprintf("src%d", s))
		n.Connect(src, x, fat)
		rx := n.AddNode(fmt.Sprintf("rx%d", s))
		n.Connect(y, rx, fat)
		b.Sources = append(b.Sources, src)
		b.Receivers = append(b.Receivers, []*netsim.Node{rx})
		b.Optimal = append(b.Optimal, []int{opt})
	}
	b.Controller = b.Sources[0]
	return b
}

// TieredConfig parameterizes the tiered-Internet generator (Figure 2): a
// national backbone tier fanning out into regional, local and institutional
// tiers with decreasing bandwidth — the "last mile" shape TopoSense
// exploits.
type TieredConfig struct {
	Seed int64
	// FanOut[i] is how many tier-i+1 nodes hang off each tier-i node.
	FanOut []int
	// Bandwidth[i] is the capacity of links from tier i to tier i+1.
	Bandwidth []float64
	// ReceiversPerLeaf attaches receivers at the deepest tier.
	ReceiversPerLeaf int
	Delay            sim.Time
	QueueLimit       int
	Layers           int
}

// BuildTiered constructs a random tiered topology with one session rooted
// at the top tier. The optimal level of each receiver is the min bandwidth
// along its path.
func BuildTiered(e *sim.Engine, cfg TieredConfig) *Build {
	if len(cfg.FanOut) == 0 || len(cfg.FanOut) != len(cfg.Bandwidth) {
		panic("topology: FanOut and Bandwidth must be non-empty and equal length")
	}
	if cfg.ReceiversPerLeaf <= 0 {
		cfg.ReceiversPerLeaf = 1
	}
	if cfg.Delay == 0 {
		cfg.Delay = DefaultDelay
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.Layers == 0 {
		cfg.Layers = source.DefaultLayers
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netsim.New(e)
	rates := source.Rates(cfg.Layers)
	src := n.AddNode("src")
	b := &Build{
		Net:        n,
		Sources:    []*netsim.Node{src},
		Controller: src,
		Receivers:  [][]*netsim.Node{nil},
		Optimal:    [][]int{nil},
	}
	type tiered struct {
		node  *netsim.Node
		minBW float64
	}
	frontier := []tiered{{node: src, minBW: FatBandwidth}}
	for tier := 0; tier < len(cfg.FanOut); tier++ {
		var next []tiered
		for _, parent := range frontier {
			for k := 0; k < cfg.FanOut[tier]; k++ {
				child := n.AddNode(fmt.Sprintf("t%d-%d", tier+1, len(next)))
				// Jitter capacity ±25% around the tier's nominal value.
				bw := cfg.Bandwidth[tier] * (0.75 + 0.5*rng.Float64())
				down, _ := n.Connect(parent.node, child, netsim.LinkConfig{
					Bandwidth: bw, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit,
				})
				minBW := parent.minBW
				if bw < minBW {
					minBW = bw
					b.Bottlenecks = append(b.Bottlenecks, down)
				}
				next = append(next, tiered{node: child, minBW: minBW})
			}
		}
		frontier = next
	}
	fat := netsim.LinkConfig{Bandwidth: FatBandwidth, Delay: cfg.Delay, QueueLimit: cfg.QueueLimit}
	for _, leaf := range frontier {
		for k := 0; k < cfg.ReceiversPerLeaf; k++ {
			rx := n.AddNode(fmt.Sprintf("%s-rx%d", leaf.node.Name, k))
			n.Connect(leaf.node, rx, fat)
			b.Receivers[0] = append(b.Receivers[0], rx)
			b.Optimal[0] = append(b.Optimal[0], source.LevelForBandwidth(rates, leaf.minBW))
		}
	}
	return b
}
